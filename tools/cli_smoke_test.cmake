# Smoke test for dsct_cli: generate → solve → validate → simulate → serve.
function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

set(inst ${WORKDIR}/cli_instance.txt)
set(sched ${WORKDIR}/cli_schedule.txt)

run_step(${CLI} generate --tasks 8 --machines 2 --seed 7 --out ${inst})
run_step(${CLI} solve ${inst} --algo approx --out ${sched})
run_step(${CLI} validate ${inst} ${sched})
run_step(${CLI} simulate ${inst} ${sched})
run_step(${CLI} solve ${inst} --algo edf)
run_step(${CLI} solve ${inst} --algo edf3)
run_step(${CLI} solve ${inst} --algo frlp)
run_step(${CLI} solve ${inst} --algo mip --time-limit 10)
run_step(${CLI} info ${inst} --tasks)
# Serving loop: fault-free, then with the full fault model engaged.
run_step(${CLI} serve --policy approx --horizon 2 --backlog)
run_step(${CLI} serve --policy approx --horizon 2 --backlog --faults
         --fault-seed 99 --mtbf 1.5 --mttr 0.8 --slow-mtbf 3 --slow-mean 0.5
         --slow-factor 0.5 --shock-prob 0.4 --shock-factor 0.3
         --max-retries 2 --load-factor 8 --incidents)
