# Smoke test for dsct_cli: generate → solve → validate → simulate.
function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

set(inst ${WORKDIR}/cli_instance.txt)
set(sched ${WORKDIR}/cli_schedule.txt)

run_step(${CLI} generate --tasks 8 --machines 2 --seed 7 --out ${inst})
run_step(${CLI} solve ${inst} --algo approx --out ${sched})
run_step(${CLI} validate ${inst} ${sched})
run_step(${CLI} simulate ${inst} ${sched})
run_step(${CLI} solve ${inst} --algo edf)
run_step(${CLI} solve ${inst} --algo edf3)
run_step(${CLI} solve ${inst} --algo frlp)
run_step(${CLI} solve ${inst} --algo mip --time-limit 10)
run_step(${CLI} info ${inst} --tasks)
