# Smoke test for dsct_cli: solvers → generate → solve → validate → simulate
# → serve.
function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}\n${err}")
  endif()
  set(last_out "${out}" PARENT_SCOPE)
endfunction()

set(inst ${WORKDIR}/cli_instance.txt)
set(sched ${WORKDIR}/cli_schedule.txt)

# The registry listing must name every builtin solver.
run_step(${CLI} solvers)
foreach(solver approx fr-opt edf edf3 levels-opt mip-warm mip-cold fr-lp)
  if(NOT last_out MATCHES "${solver}")
    message(FATAL_ERROR "`solvers` output misses '${solver}':\n${last_out}")
  endif()
endforeach()

run_step(${CLI} generate --tasks 8 --machines 2 --seed 7 --out ${inst})
run_step(${CLI} solve ${inst} --algo approx --out ${sched})
run_step(${CLI} validate ${inst} ${sched})
run_step(${CLI} simulate ${inst} ${sched})
run_step(${CLI} solve ${inst} --algo edf)
run_step(${CLI} solve ${inst} --algo edf3)
run_step(${CLI} solve ${inst} --algo levels-opt)
run_step(${CLI} solve ${inst} --algo fr-opt)
# Aliases resolve through the registry exactly like primary names.
run_step(${CLI} solve ${inst} --algo frlp)
run_step(${CLI} solve ${inst} --algo dsct-ea-approx)
run_step(${CLI} solve ${inst} --algo mip --time-limit 10)
run_step(${CLI} solve ${inst} --algo mip-cold --time-limit 10)
run_step(${CLI} info ${inst} --tasks)
# Serving loop: fault-free, then with the full fault model engaged, then a
# registry policy with an explicit two-entry fallback chain.
run_step(${CLI} serve --policy approx --horizon 2 --backlog)
run_step(${CLI} serve --policy approx --horizon 2 --backlog --faults
         --fault-seed 99 --mtbf 1.5 --mttr 0.8 --slow-mtbf 3 --slow-mean 0.5
         --slow-factor 0.5 --shock-prob 0.4 --shock-factor 0.3
         --max-retries 2 --load-factor 8 --incidents)
run_step(${CLI} serve --policy levels-opt --fallback edf,edf3 --horizon 2
         --faults --fault-seed 99 --mtbf 1.5 --mttr 0.8 --incidents)
# Sharded primary: the coordinator must run and report its price loop.
run_step(${CLI} serve --policy approx --horizon 2 --backlog --shards 2
         --shard-seed 11)
if(NOT last_out MATCHES "sharded epochs")
  message(FATAL_ERROR "serve --shards misses the shard section:\n${last_out}")
endif()
# Availability layer: departures + battery, with the incident log exported
# as CSV.
set(incidents_csv ${WORKDIR}/cli_incidents.csv)
run_step(${CLI} serve --policy approx --horizon 2 --backlog --avail
         --avail-seed 7 --depart-mtbf 1.5 --depart-mean 1 --battery 12
         --battery-init 0.8 --recharge 10 --incidents
         --incidents-csv ${incidents_csv})
if(NOT EXISTS ${incidents_csv})
  message(FATAL_ERROR "--incidents-csv did not write ${incidents_csv}")
endif()
file(READ ${incidents_csv} incidents_head)
if(NOT incidents_head MATCHES "epoch,kind,depth,payload")
  message(FATAL_ERROR "incident CSV misses its header:\n${incidents_head}")
endif()

# Scenario DSL surface. `scenarios` must list the whole zoo without a parse
# error; serve --scenario must replay bit-identically run-to-run; explicit
# flags must override the file's values.
run_step(${CLI} scenarios ${SCENARIO_DIR})
foreach(name steady_web diurnal flash_crowd mixed_sla volunteer_fleet
        million_tasks)
  if(NOT last_out MATCHES "${name}")
    message(FATAL_ERROR "`scenarios` output misses '${name}':\n${last_out}")
  endif()
endforeach()

run_step(${CLI} serve --scenario ${SCENARIO_DIR}/diurnal.dsct --seed 7)
set(serve_a "${last_out}")
run_step(${CLI} serve --scenario ${SCENARIO_DIR}/diurnal.dsct --seed 7)
if(NOT serve_a STREQUAL last_out)
  message(FATAL_ERROR
          "serve --scenario is not bit-identical across runs:\n"
          "${serve_a}\n---\n${last_out}")
endif()
if(NOT serve_a MATCHES "scenario       : diurnal")
  message(FATAL_ERROR "serve --scenario misses the scenario line:\n${serve_a}")
endif()

# Flag override: a different seed must change the run, a clamped horizon must
# shrink the epoch count (12 s / 0.5 s = 24 epochs → 2 s / 0.5 s = 4).
run_step(${CLI} serve --scenario ${SCENARIO_DIR}/diurnal.dsct --seed 8)
if(serve_a STREQUAL last_out)
  message(FATAL_ERROR "--seed override did not change the scenario run")
endif()
run_step(${CLI} serve --scenario ${SCENARIO_DIR}/diurnal.dsct --seed 7
         --horizon 2 --policy edf3)
if(NOT last_out MATCHES "over 4 epochs")
  message(FATAL_ERROR "--horizon override did not clamp the run:\n${last_out}")
endif()

# Availability scenario end-to-end, and the million-task stress file with the
# horizon clamped to keep the smoke test fast.
run_step(${CLI} serve --scenario ${SCENARIO_DIR}/volunteer_fleet.dsct
         --horizon 3)
run_step(${CLI} serve --scenario ${SCENARIO_DIR}/million_tasks.dsct
         --horizon 2)

# Conflicting flags and malformed files fail loudly.
execute_process(COMMAND ${CLI} serve --scenario ${SCENARIO_DIR}/diurnal.dsct
                --gpus T4 RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "serve --scenario --gpus should have been rejected")
endif()
file(WRITE ${WORKDIR}/cli_bad.dsct "machine class {\n  bogus: 1\n}\n")
execute_process(COMMAND ${CLI} serve --scenario ${WORKDIR}/cli_bad.dsct
                RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "malformed scenario should have failed")
endif()
if(NOT "${out}${err}" MATCHES "cli_bad.dsct:2")
  message(FATAL_ERROR
          "malformed-scenario diagnostic misses file:line:\n${out}\n${err}")
endif()
