// dsct command-line tool.
//
//   dsct_cli solvers
//   dsct_cli generate --tasks N --machines M [--rho R] [--beta B]
//            [--theta-min T] [--theta-max T] [--seed S] --out FILE
//   dsct_cli solve INSTANCE [--algo NAME] [--time-limit SEC]
//            [--out SCHEDULE]
//   dsct_cli info INSTANCE [--tasks]
//   dsct_cli validate INSTANCE SCHEDULE
//   dsct_cli simulate INSTANCE SCHEDULE [--trace]
//   dsct_cli scenarios [DIR]
//   dsct_cli serve [--scenario FILE] [--policy NAME]
//            [--fallback NAME,NAME,...]
//            [--gpus T4,V100] [--rate R] [--horizon S] [--epoch S]
//            [--budget J] [--seed N] [--backlog] [--load-factor F]
//            [--faults] [--fault-seed N] [--mtbf S] [--mttr S]
//            [--slow-mtbf S] [--slow-mean S] [--slow-factor F]
//            [--shock-prob P] [--shock-factor F] [--max-retries N]
//            [--epoch-time-limit S] [--async] [--incidents]
//            [--avail] [--avail-seed N] [--depart-mtbf S] [--depart-mean S]
//            [--battery J] [--battery-init F] [--recharge W]
//            [--no-battery-cap] [--incidents-csv FILE]
//
// `--algo` and `--policy` accept any name or alias from the solver registry
// (run `dsct_cli solvers` for the list); `--policy` and `--fallback` are
// restricted to solvers with the integral capability.
//
// `serve --scenario FILE` loads a declarative scenario (DESIGN.md §16) and
// materialises fleet and request trace from it; explicit flags override the
// file's values (--seed, --horizon, --epoch, --budget, --policy, --fallback,
// --backlog, --load-factor, and the availability knobs). `--gpus`/`--rate`
// conflict with a scenario's own machine/task classes and are rejected.
// `scenarios` lists every *.dsct file in DIR (default: the repo zoo).
//
// Exit code 0 on success (and, for `validate`, a feasible schedule);
// 1 on usage errors, 2 on infeasibility.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dsct/dsct.h"
#include "util/csv.h"

namespace {

using namespace dsct;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double getDouble(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
  int getInt(const std::string& key, int fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stoi(it->second);
  }
};

Args parseArgs(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "1";  // boolean flag
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  dsct_cli solvers\n"
      "  dsct_cli generate --tasks N --machines M [--rho R] [--beta B]\n"
      "           [--theta-min T] [--theta-max T] [--seed S] --out FILE\n"
      "  dsct_cli solve INSTANCE [--algo NAME] [--time-limit SEC]\n"
      "           [--lp-engine revised|dense] [--out SCHEDULE] [--gantt]\n"
      "  dsct_cli info INSTANCE [--tasks]\n"
      "  dsct_cli validate INSTANCE SCHEDULE\n"
      "  dsct_cli simulate INSTANCE SCHEDULE [--trace]\n"
      "  dsct_cli scenarios [DIR]\n"
      "  dsct_cli serve [--scenario FILE] [--policy NAME]\n"
      "           [--fallback NAME,NAME,...]\n"
      "           [--gpus T4,V100] [--rate R] [--horizon S] [--epoch S]\n"
      "           [--budget J] [--seed N] [--backlog] [--load-factor F]\n"
      "           [--faults] [--fault-seed N] [--mtbf S] [--mttr S]\n"
      "           [--slow-mtbf S] [--slow-mean S] [--slow-factor F]\n"
      "           [--shock-prob P] [--shock-factor F] [--max-retries N]\n"
      "           [--epoch-time-limit S] [--async] [--incidents]\n"
      "           [--avail] [--avail-seed N] [--depart-mtbf S]\n"
      "           [--depart-mean S] [--battery J] [--battery-init F]\n"
      "           [--recharge W] [--no-battery-cap] [--incidents-csv FILE]\n"
      "           [--no-lp-warm] [--shards K] [--shard-seed N]\n"
      "\n"
      "NAME is any solver name or alias from `dsct_cli solvers`.\n";
  return 1;
}

/// Comma-separated list → vector of non-empty entries.
std::vector<std::string> splitList(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream stream(list);
  for (std::string item; std::getline(stream, item, ',');) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int cmdSolvers(const Args&) {
  Table table({"name", "aliases", "algorithm", "schedules", "capabilities"});
  for (const Solver* solver : SolverRegistry::instance().solvers()) {
    const SolverCapabilities caps = solver->capabilities();
    std::string aliases;
    for (const std::string& alias :
         SolverRegistry::instance().aliasesOf(solver->name())) {
      if (!aliases.empty()) aliases += ", ";
      aliases += alias;
    }
    std::string schedules;
    if (caps.integral) schedules = "integral";
    if (caps.fractional)
      schedules += schedules.empty() ? "fractional" : "+fractional";
    std::string flags;
    if (caps.exact) flags += "exact ";
    if (caps.usesProfileCache) flags += "cache ";
    if (caps.usesThreadPool) flags += "pool ";
    if (caps.availabilityAware) flags += "avail ";
    if (caps.usesLpWarmStart) flags += "lp-warm ";
    if (!caps.deterministic) flags += "nondeterministic ";
    if (!flags.empty()) flags.pop_back();
    table.addRow({solver->name(), aliases.empty() ? "-" : aliases,
                  solver->displayName(), schedules, flags.empty() ? "-" : flags});
  }
  table.print(std::cout);
  return 0;
}

int cmdGenerate(const Args& args) {
  if (!args.has("out")) return usage();
  ScenarioSpec spec;
  spec.numTasks = args.getInt("tasks", 20);
  spec.numMachines = args.getInt("machines", 3);
  spec.rho = args.getDouble("rho", 0.35);
  spec.beta = args.getDouble("beta", 0.5);
  const double thetaMin = args.getDouble("theta-min", 0.1);
  const double thetaMax = args.getDouble("theta-max", 1.0);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const Instance inst = makeScenario(spec, thetaMin, thetaMax, seed);
  io::writeInstanceFile(args.get("out", ""), inst);
  std::cout << "wrote " << args.get("out", "") << ": " << inst.numTasks()
            << " tasks, " << inst.numMachines() << " machines, budget "
            << inst.energyBudget() << " J\n";
  return 0;
}

void printSummary(const Instance& inst, const IntegralSchedule& schedule,
                  const std::string& algo) {
  const ValidationReport report = validate(inst, schedule);
  std::cout << "algorithm      : " << algo << '\n'
            << "total accuracy : " << schedule.totalAccuracy(inst) << '\n'
            << "avg accuracy   : " << schedule.averageAccuracy(inst) << '\n'
            << "energy         : " << schedule.energy(inst) << " / "
            << inst.energyBudget() << " J\n"
            << "scheduled      : " << schedule.numScheduled() << " / "
            << inst.numTasks() << '\n'
            << "validation     : " << report.summary() << '\n';
}

int cmdSolve(const Args& args) {
  if (args.positional.empty()) return usage();
  const Instance inst = io::readInstanceFile(args.positional[0]);
  const std::string algo = args.get("algo", "approx");
  const Solver* solver = SolverRegistry::instance().find(algo);
  if (solver == nullptr) {
    std::cerr << "unknown solver '" << algo
              << "' — run `dsct_cli solvers` for the list\n";
    return usage();
  }
  SolveContext context;
  context.mip.timeLimitSeconds = args.getDouble("time-limit", 60.0);
  context.lp.timeLimitSeconds = args.getDouble("time-limit", -1.0);
  const std::string engine = args.get("lp-engine", "revised");
  if (engine == "dense") {
    context.lp.engine = lp::LpEngine::kDense;
    context.mip.lp.engine = lp::LpEngine::kDense;
  } else if (engine != "revised") {
    std::cerr << "unknown --lp-engine '" << engine
              << "' (expected revised|dense)\n";
    return usage();
  }
  const SolveOutcome outcome = solver->solve(inst, context);
  if (outcome.lpCounters.pivots > 0) {
    std::cout << "lp pivots      : " << outcome.lpCounters.pivots << " ("
              << outcome.lpCounters.phase1Pivots << " phase-1, "
              << outcome.lpCounters.refactorizations << " refactorisations)\n";
  }
  if (!outcome.solved()) {
    std::cout << "status         : no solution within limits\n";
    return 2;
  }
  if (outcome.upperBound > 0.0) {
    std::cout << "upper bound    : " << outcome.upperBound << '\n';
  }
  if (outcome.guaranteeG > 0.0) {
    std::cout << "guarantee G    : " << outcome.guaranteeG << '\n';
  }
  if (!outcome.schedule.has_value()) {
    // Fractional-only solver: report the relaxation objective; there is no
    // integral schedule to validate, render, or persist.
    std::cout << "algorithm      : " << solver->displayName() << '\n'
              << "objective      : " << outcome.totalAccuracy << '\n'
              << "energy         : " << outcome.energy << " / "
              << inst.energyBudget() << " J\n";
    return 0;
  }
  printSummary(inst, *outcome.schedule, solver->name());
  if (args.has("gantt")) {
    std::cout << '\n' << renderGantt(inst, *outcome.schedule);
  }
  if (args.has("out")) {
    io::writeScheduleFile(args.get("out", ""), *outcome.schedule);
    std::cout << "schedule       : written to " << args.get("out", "") << '\n';
  }
  return 0;
}

int cmdInfo(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const Instance inst = io::readInstanceFile(args.positional[0]);
  std::cout << "tasks          : " << inst.numTasks() << '\n'
            << "machines       : " << inst.numMachines() << '\n'
            << "energy budget  : " << inst.energyBudget() << " J\n"
            << "horizon d_max  : " << inst.maxDeadline() << " s\n"
            << "total work     : " << inst.totalFmax() << " TFLOP\n"
            << "cluster speed  : " << inst.totalSpeed() << " TFLOPS\n"
            << "cluster power  : " << inst.totalPower() << " W\n";
  Table machines({"machine", "TFLOPS", "GFLOPS/W", "W"});
  for (const Machine& m : inst.machines()) {
    machines.addRow({m.name, formatFixed(m.speed, 2),
                     formatFixed(m.efficiency * 1e3, 1),
                     formatFixed(m.power(), 0)});
  }
  machines.print(std::cout);
  if (args.has("tasks")) {
    Table tasks({"task", "deadline (s)", "fmax (TFLOP)", "amax", "theta"});
    for (const Task& t : inst.tasks()) {
      tasks.addRow({t.name, formatFixed(t.deadline, 4),
                    formatFixed(t.fmax(), 3), formatFixed(t.amax(), 3),
                    formatFixed(t.accuracy.theta(), 3)});
    }
    tasks.print(std::cout);
  }
  const GuaranteeBreakdown g = approximationGuarantee(inst);
  std::cout << "approx bound G : " << g.g << " (theta range " << g.thetaMin
            << " .. " << g.thetaMax << ")\n";
  return 0;
}

int cmdValidate(const Args& args) {
  if (args.positional.size() != 2) return usage();
  const Instance inst = io::readInstanceFile(args.positional[0]);
  const IntegralSchedule schedule =
      io::readScheduleFile(args.positional[1], inst);
  const ValidationReport report = validate(inst, schedule);
  std::cout << report.summary() << '\n';
  return report.feasible ? 0 : 2;
}

int cmdSimulate(const Args& args) {
  if (args.positional.size() != 2) return usage();
  const Instance inst = io::readInstanceFile(args.positional[0]);
  const IntegralSchedule schedule =
      io::readScheduleFile(args.positional[1], inst);
  const sim::ExecutionResult exec = sim::executeSchedule(inst, schedule);
  std::cout << "total accuracy : " << exec.totalAccuracy << '\n'
            << "energy         : " << exec.totalEnergy << " J\n"
            << "makespan       : " << exec.makespan << " s\n"
            << "deadline misses: " << exec.deadlineMisses << '\n';
  if (args.has("trace")) std::cout << exec.trace.toString();
  return exec.deadlineMisses == 0 ? 0 : 2;
}

/// List every *.dsct file in a directory: one table row per scenario, parse
/// errors reported inline. Exit 2 if any file fails to parse.
int cmdScenarios(const Args& args) {
  const std::string dir = args.positional.empty()
#ifdef DSCT_SCENARIO_DIR
                              ? DSCT_SCENARIO_DIR
#else
                              ? "scenarios"
#endif
                              : args.positional[0];
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".dsct") files.push_back(entry.path());
  }
  if (ec) {
    std::cerr << "cannot list scenario directory '" << dir << "': "
              << ec.message() << '\n';
    return 1;
  }
  std::sort(files.begin(), files.end());
  Table table({"file", "name", "seed", "machines", "task classes", "horizon",
               "policy"});
  int failures = 0;
  for (const std::filesystem::path& path : files) {
    try {
      const Scenario sc = loadScenarioFile(path.string());
      int machineCount = 0;
      for (const MachineClass& mc : sc.machineClasses) {
        machineCount +=
            mc.count * static_cast<int>(std::max<std::size_t>(
                           mc.gpus.size(), 1));
      }
      std::string classes;
      for (const TaskClass& tc : sc.taskClasses) {
        if (!classes.empty()) classes += ", ";
        classes += tc.name;
      }
      table.addRow({path.filename().string(), sc.name,
                    std::to_string(sc.seed), std::to_string(machineCount),
                    classes, formatFixed(sc.serving.horizonSeconds, 1),
                    sc.serving.policy});
    } catch (const ScenarioError& e) {
      ++failures;
      std::cerr << "parse error: " << e.what() << '\n';
    }
  }
  table.print(std::cout);
  std::cout << files.size() << " scenario(s) in " << dir << '\n';
  return failures == 0 ? 0 : 2;
}

int cmdServe(const Args& args) {
  std::vector<Machine> machines;
  sim::ServingOptions options;
  std::string policy;
  std::string scenarioName;

  if (args.has("scenario")) {
    if (args.has("gpus") || args.has("rate")) {
      std::cerr << "--gpus/--rate conflict with --scenario (the scenario's "
                   "machine and task classes define fleet and load)\n";
      return usage();
    }
    Scenario sc = loadScenarioFile(args.get("scenario", ""));
    // Explicit flags override the file's values. Overrides are applied to
    // the Scenario BEFORE materialisation so e.g. a clamped --horizon also
    // shrinks the sampled arrival windows.
    if (args.has("seed")) {
      sc.seed = static_cast<std::uint64_t>(args.getInt("seed", 0));
    }
    if (args.has("horizon")) {
      sc.serving.horizonSeconds = args.getDouble("horizon", 0.0);
    }
    if (args.has("epoch")) {
      sc.serving.epochSeconds = args.getDouble("epoch", 0.0);
    }
    if (args.has("budget")) {
      sc.serving.energyBudgetPerEpoch = args.getDouble("budget", 0.0);
    }
    if (args.has("backlog")) sc.serving.carryBacklog = true;
    if (args.has("load-factor")) {
      sc.serving.admissionLoadFactor = args.getDouble("load-factor", 0.0);
    }
    if (args.has("fallback")) {
      sc.serving.fallback = splitList(args.get("fallback", ""));
    }
    if (args.has("avail")) sc.serving.availabilityEnabled = true;
    if (args.has("avail-seed")) {
      sc.serving.availSeed =
          static_cast<std::uint64_t>(args.getInt("avail-seed", 0));
    }
    if (args.has("depart-mtbf")) {
      sc.serving.departMtbfSeconds = args.getDouble("depart-mtbf", 0.0);
      sc.serving.availabilityEnabled = true;
    }
    if (args.has("depart-mean")) {
      sc.serving.departMeanSeconds = args.getDouble("depart-mean", 1.0);
    }
    if (args.has("battery")) {
      sc.serving.batteryCapacityJoules = args.getDouble("battery", 0.0);
      sc.serving.availabilityEnabled = true;
    }
    if (args.has("battery-init")) {
      sc.serving.batteryInitialFraction = args.getDouble("battery-init", 1.0);
    }
    if (args.has("recharge")) {
      sc.serving.rechargeWatts = args.getDouble("recharge", 0.0);
    }
    if (args.has("shards")) sc.serving.shards = args.getInt("shards", 0);
    if (args.has("shard-seed")) {
      sc.serving.shardSeed =
          static_cast<std::uint64_t>(args.getInt("shard-seed", 0));
    }
    policy = args.get("policy", sc.serving.policy);
    machines = materializeMachines(sc);
    options = makeServingOptions(sc);
    scenarioName = sc.name;
  } else {
    policy = args.get("policy", "approx");
    machines = machinesFromCatalog(splitList(args.get("gpus", "T4,V100")));
    if (args.has("fallback")) {
      options.fallbackChain = splitList(args.get("fallback", ""));
    }
    options.arrivalRatePerSecond = args.getDouble("rate", 18.0);
    options.horizonSeconds = args.getDouble("horizon", 5.0);
    options.epochSeconds = args.getDouble("epoch", 0.5);
    options.energyBudgetPerEpoch = args.getDouble("budget", 40.0);
    options.seed = static_cast<std::uint64_t>(args.getInt("seed", 2024));
    options.carryBacklog = args.has("backlog");
    options.admissionLoadFactor = args.getDouble("load-factor", 0.0);
    // Availability layer: departing/returning machines and battery-budgeted
    // fleets (DESIGN.md §15).
    options.availability.enabled = args.has("avail");
    options.availability.seed =
        static_cast<std::uint64_t>(args.getInt("avail-seed", 2025));
    options.availability.departMtbfSeconds =
        args.getDouble("depart-mtbf", 0.0);
    options.availability.departMeanSeconds =
        args.getDouble("depart-mean", 1.0);
    options.availability.batteryCapacityJoules =
        args.getDouble("battery", 0.0);
    options.availability.batteryInitialFraction =
        args.getDouble("battery-init", 1.0);
    options.availability.rechargeWatts = args.getDouble("recharge", 0.0);
    options.shards = args.getInt("shards", 0);
    options.shardSeed =
        static_cast<std::uint64_t>(args.getInt("shard-seed", 0));
  }

  const Solver* primary = SolverRegistry::instance().find(policy);
  if (primary == nullptr || !primary->capabilities().integral) {
    std::cerr << "unknown or non-integral serving policy '" << policy
              << "' — run `dsct_cli solvers` for the list\n";
    return usage();
  }

  options.faults.enabled = args.has("faults");
  options.faults.seed =
      static_cast<std::uint64_t>(args.getInt("fault-seed", 2024));
  options.faults.mtbfSeconds = args.getDouble("mtbf", 0.0);
  options.faults.mttrSeconds = args.getDouble("mttr", 1.0);
  options.faults.slowdownMtbfSeconds = args.getDouble("slow-mtbf", 0.0);
  options.faults.slowdownMeanSeconds = args.getDouble("slow-mean", 1.0);
  options.faults.slowdownFactor = args.getDouble("slow-factor", 0.5);
  options.faults.budgetShockProbability = args.getDouble("shock-prob", 0.0);
  options.faults.budgetShockFactor = args.getDouble("shock-factor", 1.0);
  options.faults.maxRetries = args.getInt("max-retries", 2);
  // Per-epoch solve budget (cooperative cancellation) and the async
  // double-buffered pipeline; see ServingOptions for semantics.
  options.epochTimeLimitSeconds = args.getDouble("epoch-time-limit", 0.0);
  options.asyncServing = args.has("async");
  options.availability.capGlobalBudget = !args.has("no-battery-cap");
  options.lpWarmStarts = !args.has("no-lp-warm");

  const sim::ServingStats s = sim::runServing(machines, policy, options);
  if (!scenarioName.empty()) {
    std::cout << "scenario       : " << scenarioName << " ("
              << args.get("scenario", "") << ")\n";
  }
  std::cout << "policy         : " << primary->displayName() << '\n'
            << "requests       : " << s.requests << " (" << s.served
            << " served over " << s.epochs << " epochs)\n"
            << "mean accuracy  : " << s.meanAccuracy << '\n'
            << "mean latency   : " << s.meanLatency << " s\n"
            << "energy         : " << s.totalEnergy << " J\n"
            << "deadline misses: " << s.deadlineMisses << '\n';
  if (!scenarioName.empty()) {
    std::cout << "miss penalty   : " << s.missPenalty << '\n';
  }
  if (options.faults.enabled || options.admissionLoadFactor > 0.0) {
    std::cout << "interruptions  : " << s.interruptions << " (" << s.retries
              << " retries, " << s.abandoned << " abandoned)\n"
              << "fallbacks      : " << s.fallbacks << " ("
              << s.policyFailures << " policy failures, "
              << s.validatorRejections << " validator rejections)\n"
              << "shed           : " << s.shed << '\n'
              << "shocked epochs : " << s.budgetShockEpochs << " ("
              << s.noMachineEpochs << " with no machine alive)\n";
  }
  if (options.epochTimeLimitSeconds > 0.0 || options.asyncServing) {
    std::cout << "solve timeouts : " << s.policyTimeouts << '\n'
              << "async epochs   : " << s.asyncEpochs << '\n';
  }
  if (options.availability.enabled) {
    std::cout << "departures     : " << s.machineDepartures
              << " machine-epochs\n"
              << "battery        : " << s.batteryExhaustions
              << " exhaustions, " << s.batteryCappedEpochs
              << " budget-capped epochs\n";
  }
  if (options.shards > 1) {
    std::cout << "sharded epochs : " << s.shardedEpochs << " ("
              << s.shardPriceIterations << " price iterations, "
              << s.shardPriceDivergences << " divergences)\n"
              << "shard top-ups  : " << s.shardTopUpCells << " cells, "
              << s.shardTopUpEnergy << " J\n";
  }
  if (s.lpPivots > 0) {
    std::cout << "lp pivots      : " << s.lpPivots << " ("
              << s.lpRefactorizations << " refactorisations)\n"
              << "lp warm starts : " << s.lpWarmStartsUsed << " used, "
              << s.lpWarmStartsRepaired << " repaired, "
              << s.lpWarmStartsRejected << " rejected\n";
  }
  if (args.has("incidents-csv")) {
    const std::string path = args.get("incidents-csv", "");
    CsvWriter csv(path, {"epoch", "kind", "depth", "payload"});
    for (const sim::EpochIncident& incident : s.incidents) {
      std::ostringstream payload;
      payload.precision(std::numeric_limits<double>::max_digits10);
      payload << incident.value;
      csv.addRow({std::to_string(incident.epoch), toString(incident.kind),
                  std::to_string(incident.depth), payload.str()});
    }
    std::cout << "incident log   : " << s.incidents.size() << " rows to "
              << path << '\n';
  }
  if (args.has("incidents")) {
    for (const sim::EpochIncident& incident : s.incidents) {
      std::cout << "incident       : epoch " << incident.epoch << ' '
                << toString(incident.kind) << " (" << incident.value;
      if (incident.kind == sim::IncidentKind::kPolicyTimeout) {
        std::cout << ", depth " << incident.depth;
      }
      std::cout << ")\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parseArgs(argc, argv);
  try {
    if (command == "solvers") return cmdSolvers(args);
    if (command == "generate") return cmdGenerate(args);
    if (command == "info") return cmdInfo(args);
    if (command == "solve") return cmdSolve(args);
    if (command == "validate") return cmdValidate(args);
    if (command == "simulate") return cmdSimulate(args);
    if (command == "scenarios") return cmdScenarios(args);
    if (command == "serve") return cmdServe(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
