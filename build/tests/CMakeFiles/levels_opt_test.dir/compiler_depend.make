# Empty compiler generated dependencies file for levels_opt_test.
# This may be replaced when dependencies are built.
