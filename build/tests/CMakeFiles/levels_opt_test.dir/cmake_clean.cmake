file(REMOVE_RECURSE
  "CMakeFiles/levels_opt_test.dir/levels_opt_test.cpp.o"
  "CMakeFiles/levels_opt_test.dir/levels_opt_test.cpp.o.d"
  "levels_opt_test"
  "levels_opt_test.pdb"
  "levels_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/levels_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
