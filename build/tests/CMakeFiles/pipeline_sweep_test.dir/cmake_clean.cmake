file(REMOVE_RECURSE
  "CMakeFiles/pipeline_sweep_test.dir/pipeline_sweep_test.cpp.o"
  "CMakeFiles/pipeline_sweep_test.dir/pipeline_sweep_test.cpp.o.d"
  "pipeline_sweep_test"
  "pipeline_sweep_test.pdb"
  "pipeline_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
