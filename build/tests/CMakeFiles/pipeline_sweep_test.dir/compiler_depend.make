# Empty compiler generated dependencies file for pipeline_sweep_test.
# This may be replaced when dependencies are built.
