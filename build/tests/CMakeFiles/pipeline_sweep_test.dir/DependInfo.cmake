
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pipeline_sweep_test.cpp" "tests/CMakeFiles/pipeline_sweep_test.dir/pipeline_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/pipeline_sweep_test.dir/pipeline_sweep_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dsct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/dsct_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/mipmodel/CMakeFiles/dsct_mipmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dsct_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dsct_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dsct_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dsct_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/accuracy/CMakeFiles/dsct_accuracy.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/dsct_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dsct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
