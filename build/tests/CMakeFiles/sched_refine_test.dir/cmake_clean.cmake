file(REMOVE_RECURSE
  "CMakeFiles/sched_refine_test.dir/sched_refine_test.cpp.o"
  "CMakeFiles/sched_refine_test.dir/sched_refine_test.cpp.o.d"
  "sched_refine_test"
  "sched_refine_test.pdb"
  "sched_refine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_refine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
