# Empty dependencies file for sched_topup_test.
# This may be replaced when dependencies are built.
