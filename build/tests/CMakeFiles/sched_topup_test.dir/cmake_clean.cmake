file(REMOVE_RECURSE
  "CMakeFiles/sched_topup_test.dir/sched_topup_test.cpp.o"
  "CMakeFiles/sched_topup_test.dir/sched_topup_test.cpp.o.d"
  "sched_topup_test"
  "sched_topup_test.pdb"
  "sched_topup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_topup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
