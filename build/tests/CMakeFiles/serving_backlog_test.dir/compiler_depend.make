# Empty compiler generated dependencies file for serving_backlog_test.
# This may be replaced when dependencies are built.
