file(REMOVE_RECURSE
  "CMakeFiles/serving_backlog_test.dir/serving_backlog_test.cpp.o"
  "CMakeFiles/serving_backlog_test.dir/serving_backlog_test.cpp.o.d"
  "serving_backlog_test"
  "serving_backlog_test.pdb"
  "serving_backlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_backlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
