file(REMOVE_RECURSE
  "CMakeFiles/accuracy_property_test.dir/accuracy_property_test.cpp.o"
  "CMakeFiles/accuracy_property_test.dir/accuracy_property_test.cpp.o.d"
  "accuracy_property_test"
  "accuracy_property_test.pdb"
  "accuracy_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
