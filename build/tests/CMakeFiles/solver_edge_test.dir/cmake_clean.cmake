file(REMOVE_RECURSE
  "CMakeFiles/solver_edge_test.dir/solver_edge_test.cpp.o"
  "CMakeFiles/solver_edge_test.dir/solver_edge_test.cpp.o.d"
  "solver_edge_test"
  "solver_edge_test.pdb"
  "solver_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
