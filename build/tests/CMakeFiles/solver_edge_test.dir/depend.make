# Empty dependencies file for solver_edge_test.
# This may be replaced when dependencies are built.
