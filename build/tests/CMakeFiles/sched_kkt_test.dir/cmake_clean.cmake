file(REMOVE_RECURSE
  "CMakeFiles/sched_kkt_test.dir/sched_kkt_test.cpp.o"
  "CMakeFiles/sched_kkt_test.dir/sched_kkt_test.cpp.o.d"
  "sched_kkt_test"
  "sched_kkt_test.pdb"
  "sched_kkt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_kkt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
