file(REMOVE_RECURSE
  "CMakeFiles/solver_mip_test.dir/solver_mip_test.cpp.o"
  "CMakeFiles/solver_mip_test.dir/solver_mip_test.cpp.o.d"
  "solver_mip_test"
  "solver_mip_test.pdb"
  "solver_mip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_mip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
