# Empty dependencies file for solver_mip_test.
# This may be replaced when dependencies are built.
