# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sched_single_machine_test.
