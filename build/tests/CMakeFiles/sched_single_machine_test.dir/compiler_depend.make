# Empty compiler generated dependencies file for sched_single_machine_test.
# This may be replaced when dependencies are built.
