file(REMOVE_RECURSE
  "CMakeFiles/sched_single_machine_test.dir/sched_single_machine_test.cpp.o"
  "CMakeFiles/sched_single_machine_test.dir/sched_single_machine_test.cpp.o.d"
  "sched_single_machine_test"
  "sched_single_machine_test.pdb"
  "sched_single_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_single_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
