file(REMOVE_RECURSE
  "CMakeFiles/sched_approx_test.dir/sched_approx_test.cpp.o"
  "CMakeFiles/sched_approx_test.dir/sched_approx_test.cpp.o.d"
  "sched_approx_test"
  "sched_approx_test.pdb"
  "sched_approx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_approx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
