file(REMOVE_RECURSE
  "CMakeFiles/solver_dive_test.dir/solver_dive_test.cpp.o"
  "CMakeFiles/solver_dive_test.dir/solver_dive_test.cpp.o.d"
  "solver_dive_test"
  "solver_dive_test.pdb"
  "solver_dive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_dive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
