# Empty compiler generated dependencies file for solver_dive_test.
# This may be replaced when dependencies are built.
