# Empty compiler generated dependencies file for solver_duals_test.
# This may be replaced when dependencies are built.
