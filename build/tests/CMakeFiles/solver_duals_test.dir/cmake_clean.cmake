file(REMOVE_RECURSE
  "CMakeFiles/solver_duals_test.dir/solver_duals_test.cpp.o"
  "CMakeFiles/solver_duals_test.dir/solver_duals_test.cpp.o.d"
  "solver_duals_test"
  "solver_duals_test.pdb"
  "solver_duals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_duals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
