file(REMOVE_RECURSE
  "CMakeFiles/mipmodel_test.dir/mipmodel_test.cpp.o"
  "CMakeFiles/mipmodel_test.dir/mipmodel_test.cpp.o.d"
  "mipmodel_test"
  "mipmodel_test.pdb"
  "mipmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mipmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
