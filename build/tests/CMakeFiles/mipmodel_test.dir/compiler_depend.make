# Empty compiler generated dependencies file for mipmodel_test.
# This may be replaced when dependencies are built.
