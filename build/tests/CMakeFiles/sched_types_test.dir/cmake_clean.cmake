file(REMOVE_RECURSE
  "CMakeFiles/sched_types_test.dir/sched_types_test.cpp.o"
  "CMakeFiles/sched_types_test.dir/sched_types_test.cpp.o.d"
  "sched_types_test"
  "sched_types_test.pdb"
  "sched_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
