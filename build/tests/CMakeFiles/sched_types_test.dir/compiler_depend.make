# Empty compiler generated dependencies file for sched_types_test.
# This may be replaced when dependencies are built.
