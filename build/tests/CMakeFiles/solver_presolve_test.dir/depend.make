# Empty dependencies file for solver_presolve_test.
# This may be replaced when dependencies are built.
