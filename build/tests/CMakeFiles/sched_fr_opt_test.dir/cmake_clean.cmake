file(REMOVE_RECURSE
  "CMakeFiles/sched_fr_opt_test.dir/sched_fr_opt_test.cpp.o"
  "CMakeFiles/sched_fr_opt_test.dir/sched_fr_opt_test.cpp.o.d"
  "sched_fr_opt_test"
  "sched_fr_opt_test.pdb"
  "sched_fr_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_fr_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
