# Empty compiler generated dependencies file for sched_fr_opt_test.
# This may be replaced when dependencies are built.
