# Empty compiler generated dependencies file for solver_scaling_test.
# This may be replaced when dependencies are built.
