file(REMOVE_RECURSE
  "CMakeFiles/solver_scaling_test.dir/solver_scaling_test.cpp.o"
  "CMakeFiles/solver_scaling_test.dir/solver_scaling_test.cpp.o.d"
  "solver_scaling_test"
  "solver_scaling_test.pdb"
  "solver_scaling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_scaling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
