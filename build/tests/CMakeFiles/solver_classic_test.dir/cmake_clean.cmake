file(REMOVE_RECURSE
  "CMakeFiles/solver_classic_test.dir/solver_classic_test.cpp.o"
  "CMakeFiles/solver_classic_test.dir/solver_classic_test.cpp.o.d"
  "solver_classic_test"
  "solver_classic_test.pdb"
  "solver_classic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_classic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
