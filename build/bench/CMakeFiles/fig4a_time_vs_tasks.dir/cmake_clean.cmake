file(REMOVE_RECURSE
  "CMakeFiles/fig4a_time_vs_tasks.dir/fig4a_time_vs_tasks.cpp.o"
  "CMakeFiles/fig4a_time_vs_tasks.dir/fig4a_time_vs_tasks.cpp.o.d"
  "fig4a_time_vs_tasks"
  "fig4a_time_vs_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_time_vs_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
