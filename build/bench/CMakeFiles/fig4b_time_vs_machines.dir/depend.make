# Empty dependencies file for fig4b_time_vs_machines.
# This may be replaced when dependencies are built.
