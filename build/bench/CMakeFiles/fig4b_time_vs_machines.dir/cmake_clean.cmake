file(REMOVE_RECURSE
  "CMakeFiles/fig4b_time_vs_machines.dir/fig4b_time_vs_machines.cpp.o"
  "CMakeFiles/fig4b_time_vs_machines.dir/fig4b_time_vs_machines.cpp.o.d"
  "fig4b_time_vs_machines"
  "fig4b_time_vs_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_time_vs_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
