# Empty compiler generated dependencies file for fig3_optimality_gap.
# This may be replaced when dependencies are built.
