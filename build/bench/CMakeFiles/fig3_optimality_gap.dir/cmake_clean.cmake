file(REMOVE_RECURSE
  "CMakeFiles/fig3_optimality_gap.dir/fig3_optimality_gap.cpp.o"
  "CMakeFiles/fig3_optimality_gap.dir/fig3_optimality_gap.cpp.o.d"
  "fig3_optimality_gap"
  "fig3_optimality_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_optimality_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
