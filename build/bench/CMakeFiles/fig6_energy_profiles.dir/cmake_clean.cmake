file(REMOVE_RECURSE
  "CMakeFiles/fig6_energy_profiles.dir/fig6_energy_profiles.cpp.o"
  "CMakeFiles/fig6_energy_profiles.dir/fig6_energy_profiles.cpp.o.d"
  "fig6_energy_profiles"
  "fig6_energy_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_energy_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
