# Empty dependencies file for fig6_energy_profiles.
# This may be replaced when dependencies are built.
