# Empty dependencies file for fig2_accuracy_function.
# This may be replaced when dependencies are built.
