file(REMOVE_RECURSE
  "CMakeFiles/fig2_accuracy_function.dir/fig2_accuracy_function.cpp.o"
  "CMakeFiles/fig2_accuracy_function.dir/fig2_accuracy_function.cpp.o.d"
  "fig2_accuracy_function"
  "fig2_accuracy_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_accuracy_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
