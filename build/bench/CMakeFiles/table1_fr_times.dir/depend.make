# Empty dependencies file for table1_fr_times.
# This may be replaced when dependencies are built.
