file(REMOVE_RECURSE
  "CMakeFiles/fig5_accuracy_vs_budget.dir/fig5_accuracy_vs_budget.cpp.o"
  "CMakeFiles/fig5_accuracy_vs_budget.dir/fig5_accuracy_vs_budget.cpp.o.d"
  "fig5_accuracy_vs_budget"
  "fig5_accuracy_vs_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_accuracy_vs_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
