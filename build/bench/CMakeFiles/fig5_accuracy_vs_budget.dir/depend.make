# Empty dependencies file for fig5_accuracy_vs_budget.
# This may be replaced when dependencies are built.
