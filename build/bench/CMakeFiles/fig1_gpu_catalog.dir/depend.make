# Empty dependencies file for fig1_gpu_catalog.
# This may be replaced when dependencies are built.
