file(REMOVE_RECURSE
  "CMakeFiles/fig1_gpu_catalog.dir/fig1_gpu_catalog.cpp.o"
  "CMakeFiles/fig1_gpu_catalog.dir/fig1_gpu_catalog.cpp.o.d"
  "fig1_gpu_catalog"
  "fig1_gpu_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_gpu_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
