# Empty compiler generated dependencies file for dsct_cli.
# This may be replaced when dependencies are built.
