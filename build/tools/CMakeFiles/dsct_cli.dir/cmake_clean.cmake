file(REMOVE_RECURSE
  "CMakeFiles/dsct_cli.dir/dsct_cli.cpp.o"
  "CMakeFiles/dsct_cli.dir/dsct_cli.cpp.o.d"
  "dsct_cli"
  "dsct_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsct_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
