# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(dsct_cli_pipeline "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/dsct_cli" "-DWORKDIR=/root/repo/build/tools" "-P" "/root/repo/tools/cli_smoke_test.cmake")
set_tests_properties(dsct_cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
