file(REMOVE_RECURSE
  "CMakeFiles/renewable_serving.dir/renewable_serving.cpp.o"
  "CMakeFiles/renewable_serving.dir/renewable_serving.cpp.o.d"
  "renewable_serving"
  "renewable_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renewable_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
