# Empty dependencies file for renewable_serving.
# This may be replaced when dependencies are built.
