# Empty dependencies file for mlaas_serving.
# This may be replaced when dependencies are built.
