file(REMOVE_RECURSE
  "CMakeFiles/mlaas_serving.dir/mlaas_serving.cpp.o"
  "CMakeFiles/mlaas_serving.dir/mlaas_serving.cpp.o.d"
  "mlaas_serving"
  "mlaas_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlaas_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
