file(REMOVE_RECURSE
  "CMakeFiles/dsct_sim.dir/cluster.cpp.o"
  "CMakeFiles/dsct_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/dsct_sim.dir/renewable.cpp.o"
  "CMakeFiles/dsct_sim.dir/renewable.cpp.o.d"
  "CMakeFiles/dsct_sim.dir/serving.cpp.o"
  "CMakeFiles/dsct_sim.dir/serving.cpp.o.d"
  "CMakeFiles/dsct_sim.dir/trace.cpp.o"
  "CMakeFiles/dsct_sim.dir/trace.cpp.o.d"
  "libdsct_sim.a"
  "libdsct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
