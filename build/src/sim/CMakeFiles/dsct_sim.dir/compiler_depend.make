# Empty compiler generated dependencies file for dsct_sim.
# This may be replaced when dependencies are built.
