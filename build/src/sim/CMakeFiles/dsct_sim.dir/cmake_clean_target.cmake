file(REMOVE_RECURSE
  "libdsct_sim.a"
)
