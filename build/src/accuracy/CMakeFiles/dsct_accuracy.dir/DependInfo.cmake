
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accuracy/exponential.cpp" "src/accuracy/CMakeFiles/dsct_accuracy.dir/exponential.cpp.o" "gcc" "src/accuracy/CMakeFiles/dsct_accuracy.dir/exponential.cpp.o.d"
  "/root/repo/src/accuracy/fit.cpp" "src/accuracy/CMakeFiles/dsct_accuracy.dir/fit.cpp.o" "gcc" "src/accuracy/CMakeFiles/dsct_accuracy.dir/fit.cpp.o.d"
  "/root/repo/src/accuracy/levels.cpp" "src/accuracy/CMakeFiles/dsct_accuracy.dir/levels.cpp.o" "gcc" "src/accuracy/CMakeFiles/dsct_accuracy.dir/levels.cpp.o.d"
  "/root/repo/src/accuracy/piecewise.cpp" "src/accuracy/CMakeFiles/dsct_accuracy.dir/piecewise.cpp.o" "gcc" "src/accuracy/CMakeFiles/dsct_accuracy.dir/piecewise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dsct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
