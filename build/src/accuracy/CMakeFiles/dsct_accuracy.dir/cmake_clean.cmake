file(REMOVE_RECURSE
  "CMakeFiles/dsct_accuracy.dir/exponential.cpp.o"
  "CMakeFiles/dsct_accuracy.dir/exponential.cpp.o.d"
  "CMakeFiles/dsct_accuracy.dir/fit.cpp.o"
  "CMakeFiles/dsct_accuracy.dir/fit.cpp.o.d"
  "CMakeFiles/dsct_accuracy.dir/levels.cpp.o"
  "CMakeFiles/dsct_accuracy.dir/levels.cpp.o.d"
  "CMakeFiles/dsct_accuracy.dir/piecewise.cpp.o"
  "CMakeFiles/dsct_accuracy.dir/piecewise.cpp.o.d"
  "libdsct_accuracy.a"
  "libdsct_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsct_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
