# Empty dependencies file for dsct_accuracy.
# This may be replaced when dependencies are built.
