file(REMOVE_RECURSE
  "libdsct_accuracy.a"
)
