# Empty compiler generated dependencies file for dsct_accuracy.
# This may be replaced when dependencies are built.
