
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrivals.cpp" "src/workload/CMakeFiles/dsct_workload.dir/arrivals.cpp.o" "gcc" "src/workload/CMakeFiles/dsct_workload.dir/arrivals.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/dsct_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/dsct_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/gpu_catalog.cpp" "src/workload/CMakeFiles/dsct_workload.dir/gpu_catalog.cpp.o" "gcc" "src/workload/CMakeFiles/dsct_workload.dir/gpu_catalog.cpp.o.d"
  "/root/repo/src/workload/model_catalog.cpp" "src/workload/CMakeFiles/dsct_workload.dir/model_catalog.cpp.o" "gcc" "src/workload/CMakeFiles/dsct_workload.dir/model_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/dsct_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/accuracy/CMakeFiles/dsct_accuracy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dsct_util.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/dsct_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
