file(REMOVE_RECURSE
  "CMakeFiles/dsct_workload.dir/arrivals.cpp.o"
  "CMakeFiles/dsct_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/dsct_workload.dir/generator.cpp.o"
  "CMakeFiles/dsct_workload.dir/generator.cpp.o.d"
  "CMakeFiles/dsct_workload.dir/gpu_catalog.cpp.o"
  "CMakeFiles/dsct_workload.dir/gpu_catalog.cpp.o.d"
  "CMakeFiles/dsct_workload.dir/model_catalog.cpp.o"
  "CMakeFiles/dsct_workload.dir/model_catalog.cpp.o.d"
  "libdsct_workload.a"
  "libdsct_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsct_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
