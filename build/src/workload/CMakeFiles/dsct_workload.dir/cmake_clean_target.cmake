file(REMOVE_RECURSE
  "libdsct_workload.a"
)
