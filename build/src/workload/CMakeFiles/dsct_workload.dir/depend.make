# Empty dependencies file for dsct_workload.
# This may be replaced when dependencies are built.
