file(REMOVE_RECURSE
  "libdsct_util.a"
)
