# Empty dependencies file for dsct_util.
# This may be replaced when dependencies are built.
