# Empty compiler generated dependencies file for dsct_util.
# This may be replaced when dependencies are built.
