file(REMOVE_RECURSE
  "CMakeFiles/dsct_util.dir/csv.cpp.o"
  "CMakeFiles/dsct_util.dir/csv.cpp.o.d"
  "CMakeFiles/dsct_util.dir/stats.cpp.o"
  "CMakeFiles/dsct_util.dir/stats.cpp.o.d"
  "CMakeFiles/dsct_util.dir/table.cpp.o"
  "CMakeFiles/dsct_util.dir/table.cpp.o.d"
  "CMakeFiles/dsct_util.dir/thread_pool.cpp.o"
  "CMakeFiles/dsct_util.dir/thread_pool.cpp.o.d"
  "libdsct_util.a"
  "libdsct_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsct_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
