file(REMOVE_RECURSE
  "CMakeFiles/dsct_experiments.dir/report.cpp.o"
  "CMakeFiles/dsct_experiments.dir/report.cpp.o.d"
  "CMakeFiles/dsct_experiments.dir/runner.cpp.o"
  "CMakeFiles/dsct_experiments.dir/runner.cpp.o.d"
  "CMakeFiles/dsct_experiments.dir/scenarios.cpp.o"
  "CMakeFiles/dsct_experiments.dir/scenarios.cpp.o.d"
  "libdsct_experiments.a"
  "libdsct_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsct_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
