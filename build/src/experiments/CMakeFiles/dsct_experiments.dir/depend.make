# Empty dependencies file for dsct_experiments.
# This may be replaced when dependencies are built.
