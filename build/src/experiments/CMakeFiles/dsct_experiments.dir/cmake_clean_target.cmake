file(REMOVE_RECURSE
  "libdsct_experiments.a"
)
