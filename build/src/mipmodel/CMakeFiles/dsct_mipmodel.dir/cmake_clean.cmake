file(REMOVE_RECURSE
  "CMakeFiles/dsct_mipmodel.dir/dsct_lp.cpp.o"
  "CMakeFiles/dsct_mipmodel.dir/dsct_lp.cpp.o.d"
  "CMakeFiles/dsct_mipmodel.dir/dsct_mip.cpp.o"
  "CMakeFiles/dsct_mipmodel.dir/dsct_mip.cpp.o.d"
  "libdsct_mipmodel.a"
  "libdsct_mipmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsct_mipmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
