# Empty dependencies file for dsct_mipmodel.
# This may be replaced when dependencies are built.
