file(REMOVE_RECURSE
  "libdsct_mipmodel.a"
)
