file(REMOVE_RECURSE
  "libdsct_baselines.a"
)
