# Empty compiler generated dependencies file for dsct_baselines.
# This may be replaced when dependencies are built.
