file(REMOVE_RECURSE
  "CMakeFiles/dsct_baselines.dir/edf_levels.cpp.o"
  "CMakeFiles/dsct_baselines.dir/edf_levels.cpp.o.d"
  "CMakeFiles/dsct_baselines.dir/edf_nocompress.cpp.o"
  "CMakeFiles/dsct_baselines.dir/edf_nocompress.cpp.o.d"
  "CMakeFiles/dsct_baselines.dir/levels_opt.cpp.o"
  "CMakeFiles/dsct_baselines.dir/levels_opt.cpp.o.d"
  "libdsct_baselines.a"
  "libdsct_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsct_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
