file(REMOVE_RECURSE
  "libdsct_sched.a"
)
