file(REMOVE_RECURSE
  "CMakeFiles/dsct_sched.dir/approx.cpp.o"
  "CMakeFiles/dsct_sched.dir/approx.cpp.o.d"
  "CMakeFiles/dsct_sched.dir/energy_profile.cpp.o"
  "CMakeFiles/dsct_sched.dir/energy_profile.cpp.o.d"
  "CMakeFiles/dsct_sched.dir/fr_opt.cpp.o"
  "CMakeFiles/dsct_sched.dir/fr_opt.cpp.o.d"
  "CMakeFiles/dsct_sched.dir/guarantee.cpp.o"
  "CMakeFiles/dsct_sched.dir/guarantee.cpp.o.d"
  "CMakeFiles/dsct_sched.dir/kkt.cpp.o"
  "CMakeFiles/dsct_sched.dir/kkt.cpp.o.d"
  "CMakeFiles/dsct_sched.dir/naive_solution.cpp.o"
  "CMakeFiles/dsct_sched.dir/naive_solution.cpp.o.d"
  "CMakeFiles/dsct_sched.dir/refine_profile.cpp.o"
  "CMakeFiles/dsct_sched.dir/refine_profile.cpp.o.d"
  "CMakeFiles/dsct_sched.dir/render.cpp.o"
  "CMakeFiles/dsct_sched.dir/render.cpp.o.d"
  "CMakeFiles/dsct_sched.dir/schedule.cpp.o"
  "CMakeFiles/dsct_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/dsct_sched.dir/single_machine.cpp.o"
  "CMakeFiles/dsct_sched.dir/single_machine.cpp.o.d"
  "CMakeFiles/dsct_sched.dir/types.cpp.o"
  "CMakeFiles/dsct_sched.dir/types.cpp.o.d"
  "CMakeFiles/dsct_sched.dir/validator.cpp.o"
  "CMakeFiles/dsct_sched.dir/validator.cpp.o.d"
  "libdsct_sched.a"
  "libdsct_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsct_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
