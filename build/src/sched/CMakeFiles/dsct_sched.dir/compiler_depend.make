# Empty compiler generated dependencies file for dsct_sched.
# This may be replaced when dependencies are built.
