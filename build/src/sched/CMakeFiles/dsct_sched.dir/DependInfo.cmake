
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/approx.cpp" "src/sched/CMakeFiles/dsct_sched.dir/approx.cpp.o" "gcc" "src/sched/CMakeFiles/dsct_sched.dir/approx.cpp.o.d"
  "/root/repo/src/sched/energy_profile.cpp" "src/sched/CMakeFiles/dsct_sched.dir/energy_profile.cpp.o" "gcc" "src/sched/CMakeFiles/dsct_sched.dir/energy_profile.cpp.o.d"
  "/root/repo/src/sched/fr_opt.cpp" "src/sched/CMakeFiles/dsct_sched.dir/fr_opt.cpp.o" "gcc" "src/sched/CMakeFiles/dsct_sched.dir/fr_opt.cpp.o.d"
  "/root/repo/src/sched/guarantee.cpp" "src/sched/CMakeFiles/dsct_sched.dir/guarantee.cpp.o" "gcc" "src/sched/CMakeFiles/dsct_sched.dir/guarantee.cpp.o.d"
  "/root/repo/src/sched/kkt.cpp" "src/sched/CMakeFiles/dsct_sched.dir/kkt.cpp.o" "gcc" "src/sched/CMakeFiles/dsct_sched.dir/kkt.cpp.o.d"
  "/root/repo/src/sched/naive_solution.cpp" "src/sched/CMakeFiles/dsct_sched.dir/naive_solution.cpp.o" "gcc" "src/sched/CMakeFiles/dsct_sched.dir/naive_solution.cpp.o.d"
  "/root/repo/src/sched/refine_profile.cpp" "src/sched/CMakeFiles/dsct_sched.dir/refine_profile.cpp.o" "gcc" "src/sched/CMakeFiles/dsct_sched.dir/refine_profile.cpp.o.d"
  "/root/repo/src/sched/render.cpp" "src/sched/CMakeFiles/dsct_sched.dir/render.cpp.o" "gcc" "src/sched/CMakeFiles/dsct_sched.dir/render.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/dsct_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/dsct_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/single_machine.cpp" "src/sched/CMakeFiles/dsct_sched.dir/single_machine.cpp.o" "gcc" "src/sched/CMakeFiles/dsct_sched.dir/single_machine.cpp.o.d"
  "/root/repo/src/sched/types.cpp" "src/sched/CMakeFiles/dsct_sched.dir/types.cpp.o" "gcc" "src/sched/CMakeFiles/dsct_sched.dir/types.cpp.o.d"
  "/root/repo/src/sched/validator.cpp" "src/sched/CMakeFiles/dsct_sched.dir/validator.cpp.o" "gcc" "src/sched/CMakeFiles/dsct_sched.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accuracy/CMakeFiles/dsct_accuracy.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/dsct_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dsct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
