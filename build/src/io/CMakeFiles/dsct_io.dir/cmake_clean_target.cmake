file(REMOVE_RECURSE
  "libdsct_io.a"
)
