file(REMOVE_RECURSE
  "CMakeFiles/dsct_io.dir/instance_io.cpp.o"
  "CMakeFiles/dsct_io.dir/instance_io.cpp.o.d"
  "libdsct_io.a"
  "libdsct_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsct_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
