# Empty compiler generated dependencies file for dsct_io.
# This may be replaced when dependencies are built.
