# Empty compiler generated dependencies file for dsct_solver.
# This may be replaced when dependencies are built.
