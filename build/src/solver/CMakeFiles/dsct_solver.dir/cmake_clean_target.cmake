file(REMOVE_RECURSE
  "libdsct_solver.a"
)
