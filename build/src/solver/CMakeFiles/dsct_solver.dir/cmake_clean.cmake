file(REMOVE_RECURSE
  "CMakeFiles/dsct_solver.dir/mip.cpp.o"
  "CMakeFiles/dsct_solver.dir/mip.cpp.o.d"
  "CMakeFiles/dsct_solver.dir/model.cpp.o"
  "CMakeFiles/dsct_solver.dir/model.cpp.o.d"
  "CMakeFiles/dsct_solver.dir/presolve.cpp.o"
  "CMakeFiles/dsct_solver.dir/presolve.cpp.o.d"
  "CMakeFiles/dsct_solver.dir/simplex.cpp.o"
  "CMakeFiles/dsct_solver.dir/simplex.cpp.o.d"
  "libdsct_solver.a"
  "libdsct_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsct_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
