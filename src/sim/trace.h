// Execution traces produced by the cluster simulator.
#pragma once

#include <string>
#include <vector>

namespace dsct::sim {

enum class EventKind {
  kTaskStart,
  kTaskFinish,
  kDeadlineMiss,
  kMachineIdle,  ///< machine has drained its queue
};

const char* toString(EventKind kind);

struct TraceEvent {
  double time = 0.0;
  EventKind kind = EventKind::kTaskStart;
  int task = -1;
  int machine = -1;
  double flops = 0.0;   ///< TFLOP completed so far for this task
  double energy = 0.0;  ///< cluster energy consumed so far (J)
};

/// Time-ordered event log.
class Trace {
 public:
  /// Events must be appended in non-decreasing time order.
  void append(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  std::vector<TraceEvent> eventsOfKind(EventKind kind) const;
  std::vector<TraceEvent> eventsOfMachine(int machine) const;

  /// Human-readable rendering (one line per event).
  std::string toString() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace dsct::sim
