// Discrete-event execution of an integral schedule on a simulated cluster.
//
// This is the execution-level ground truth for the scheduling algorithms:
// machines process their timelines task by task, energy is integrated from
// per-machine power draw, and deadline violations are observed rather than
// assumed. Tests assert that simulated energy/accuracy match the analytic
// schedule metrics.
#pragma once

#include <vector>

#include "sched/schedule.h"
#include "sched/types.h"
#include "sim/faults.h"
#include "sim/trace.h"

namespace dsct::sim {

struct TaskExecution {
  int task = -1;
  int machine = -1;
  double start = 0.0;
  double finish = 0.0;
  double flops = 0.0;     ///< TFLOP actually executed
  double accuracy = 0.0;  ///< a_j(flops)
  bool executed = false;  ///< false for dropped tasks (flops == 0, a_j(0))
  bool deadlineMet = true;
  /// Cut short (or never started) because its machine crashed mid-epoch.
  /// `flops` records the work completed before the crash.
  bool interrupted = false;
};

struct ExecutionResult {
  Trace trace;
  std::vector<TaskExecution> executions;  ///< indexed by task
  std::vector<double> machineBusySeconds;
  double totalEnergy = 0.0;  ///< J
  double makespan = 0.0;     ///< latest finish time
  double totalAccuracy = 0.0;
  int deadlineMisses = 0;
  int interruptions = 0;  ///< tasks interrupted by machine crashes
};

/// Execute `schedule` on the instance's machines.
ExecutionResult executeSchedule(const Instance& inst,
                                const IntegralSchedule& schedule);

/// Communication model (paper Section 7, future work #2): each task's input
/// must be transferred to its machine before execution. Transfers are
/// serialised on the target machine (they share its ingest link), consume
/// `joulesPerByte` and delay execution by bytes/bandwidth — so a schedule
/// that was feasible compute-wise can miss deadlines or blow the budget
/// once communication is accounted; the simulator observes both.
struct CommModel {
  /// Input size per task (bytes); empty means all zero (no communication).
  std::vector<double> taskBytes;
  double joulesPerByte = 0.0;
  double bytesPerSecond = 1e12;

  double transferSeconds(int task) const;
  double transferJoules(int task) const;
};

/// Execute with communication accounting. Energy includes transfer energy;
/// starts shift by the (serialised) transfer times.
ExecutionResult executeSchedule(const Instance& inst,
                                const IntegralSchedule& schedule,
                                const CommModel& comm);

/// Binds a FaultTrace (absolute simulation time) to one executeSchedule call
/// (local time starting at 0): `timeOffset` is the absolute time of local 0
/// and `machineMap[r]` names the trace machine behind the instance's machine
/// r (empty = identity). Inactive contexts select the fault-free fast path,
/// which is bit-identical to the pre-fault simulator.
///
/// `energyCutSeconds` adds battery exhaustion (DESIGN.md §15): machine r
/// stops delivering work at local time energyCutSeconds[r] — the instant its
/// energy store runs dry — with the same cut semantics as a crash (partial
/// FLOPs, `interrupted` flag, rest of the timeline abandoned). Empty means
/// no energy limits; entries of +infinity leave that machine uncut.
struct FaultContext {
  const FaultTrace* trace = nullptr;
  double timeOffset = 0.0;
  std::vector<int> machineMap;
  std::vector<double> energyCutSeconds;  ///< local seconds, per machine

  bool traceActive() const { return trace != nullptr && trace->enabled(); }
  bool active() const { return traceActive() || !energyCutSeconds.empty(); }
  int traceMachine(int machine) const {
    return machineMap.empty() ? machine
                              : machineMap[static_cast<std::size_t>(machine)];
  }
  /// Battery cut-off for `machine` in local time; +infinity when unlimited.
  double cutSeconds(int machine) const;
};

/// Execute under fault injection: a machine that crashes mid-epoch — or runs
/// out of stored energy (`energyCutSeconds`) — cuts its running task at that
/// instant (partial FLOPs and energy are recorded, the task is flagged
/// `interrupted`) and abandons the rest of its timeline; straggler windows
/// scale delivered FLOPs by the trace's slowdown factor while the machine
/// still occupies — and is billed for — its full slot.
ExecutionResult executeSchedule(const Instance& inst,
                                const IntegralSchedule& schedule,
                                const CommModel& comm,
                                const FaultContext& faults);

/// Conservative comm-aware instance transform: shrinks the budget by every
/// task's transfer energy and each deadline by its own transfer time, so a
/// schedule computed on the transformed instance stays feasible under
/// communication (per-machine transfer queueing is still only visible in
/// the simulator). Tasks whose deadline would go non-positive keep a tiny
/// positive deadline (they will simply receive no work).
Instance commAwareInstance(const Instance& inst, const CommModel& comm);

}  // namespace dsct::sim
