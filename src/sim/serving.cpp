#include "sim/serving.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "accuracy/fit.h"
#include "baselines/edf_levels.h"
#include "baselines/edf_nocompress.h"
#include "sched/approx.h"
#include "sim/renewable.h"
#include "util/check.h"
#include "util/rng.h"

namespace dsct::sim {

const char* toString(Policy policy) {
  switch (policy) {
    case Policy::kApprox: return "DSCT-EA-Approx";
    case Policy::kEdfNoCompression: return "EDF-NoCompression";
    case Policy::kEdfLevels: return "EDF-3CompressionLevels";
  }
  return "unknown";
}

namespace {

IntegralSchedule schedule(Policy policy, const Instance& inst) {
  switch (policy) {
    case Policy::kApprox:
      return solveApprox(inst).schedule;
    case Policy::kEdfNoCompression:
      return solveEdfNoCompression(inst).schedule;
    case Policy::kEdfLevels:
      return solveEdfLevels(inst).schedule;
  }
  DSCT_CHECK_MSG(false, "unknown policy");
  return solveEdfNoCompression(inst).schedule;
}

/// Shared driver core; `budgetFor(epochStart, epochEnd)` supplies each
/// epoch's energy budget.
ServingStats runServingImpl(
    const std::vector<Machine>& machines, Policy policy,
    const ServingOptions& options,
    const std::function<double(double, double)>& budgetFor) {
  DSCT_CHECK(!machines.empty());
  DSCT_CHECK(options.epochSeconds > 0.0);
  DSCT_CHECK(options.arrivalRatePerSecond > 0.0);

  Rng rng(options.seed);
  // Arrival stream: caller-provided times or a Poisson process.
  std::vector<double> arrivalTimes = options.arrivalTimes;
  if (arrivalTimes.empty()) {
    double t = rng.exponential(options.arrivalRatePerSecond);
    while (t < options.horizonSeconds) {
      arrivalTimes.push_back(t);
      t += rng.exponential(options.arrivalRatePerSecond);
    }
  } else {
    for (std::size_t i = 0; i + 1 < arrivalTimes.size(); ++i) {
      DSCT_CHECK_MSG(arrivalTimes[i] <= arrivalTimes[i + 1],
                     "arrivalTimes must be ascending");
    }
  }
  // In-flight requests. Without backlog carry-over a request lives for one
  // epoch; with it, a request re-enters later batches with its residual
  // accuracy function until its deadline passes or it is fully processed.
  struct Active {
    double arrival;
    double absoluteDeadline;
    PiecewiseLinearAccuracy accuracy;  ///< the request's full curve
    double flopsDone = 0.0;
    double lastFinish = 0.0;  ///< absolute completion time of the last slice
  };
  std::vector<Active> active;
  std::size_t next = 0;  // next unconsumed arrival

  ServingStats stats;
  double accuracySum = 0.0;
  double latencySum = 0.0;
  const auto finalize = [&](const Active& req) {
    ++stats.requests;
    accuracySum += req.accuracy.value(req.flopsDone);
    if (req.flopsDone > 0.0) {
      ++stats.served;
      latencySum += req.lastFinish - req.arrival;
    }
  };

  // Iterate over the integer epoch index and derive both boundaries by
  // multiplication: accumulating `epochStart += epochSeconds` compounds one
  // rounding error per epoch, which can admit an arrival into the wrong
  // epoch or run one epoch too many/few over long horizons.
  for (long long epoch = 0;; ++epoch) {
    const double epochStart = static_cast<double>(epoch) * options.epochSeconds;
    if (epochStart >= options.horizonSeconds) break;
    const double epochEnd =
        static_cast<double>(epoch + 1) * options.epochSeconds;
    // Admit this epoch's arrivals.
    while (next < arrivalTimes.size() && arrivalTimes[next] < epochEnd) {
      const double arrival = arrivalTimes[next];
      const double deadline =
          arrival + rng.uniform(options.relDeadlineLo, options.relDeadlineHi);
      active.push_back(Active{
          arrival, deadline,
          makePaperAccuracy(options.amin, options.amax,
                            rng.uniform(options.thetaLo, options.thetaHi),
                            options.segments),
          0.0, 0.0});
      ++next;
    }
    if (active.empty()) continue;
    ++stats.epochs;

    // Build a DSCT-EA instance with residual curves and deadlines relative
    // to the epoch end.
    std::vector<Task> tasks;
    tasks.reserve(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      const Active& req = active[i];
      const double rel = std::max(1e-3, req.absoluteDeadline - epochEnd);
      PiecewiseLinearAccuracy curve =
          req.flopsDone > 0.0 ? req.accuracy.suffix(req.flopsDone)
                              : req.accuracy;
      tasks.push_back(Task{rel, std::move(curve), "req-" + std::to_string(i)});
    }
    // Instance sorts by deadline; remember the active slot per sorted task.
    std::vector<std::size_t> order(active.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return tasks[a].deadline < tasks[b].deadline;
                     });

    Instance inst(tasks, machines,
                  std::max(0.0, budgetFor(epochStart, epochEnd)));
    const IntegralSchedule sched = schedule(policy, inst);
    const ExecutionResult exec = executeSchedule(inst, sched);

    stats.totalEnergy += exec.totalEnergy;
    for (int j = 0; j < inst.numTasks(); ++j) {
      const TaskExecution& te = exec.executions[static_cast<std::size_t>(j)];
      Active& req = active[order[static_cast<std::size_t>(j)]];
      if (te.executed && te.flops > 0.0) {
        req.flopsDone += te.flops;
        req.lastFinish = epochEnd + te.finish;
      }
      if (!te.deadlineMet) ++stats.deadlineMisses;
    }

    // Retire requests; with carry-over, keep those that still have usable
    // time next epoch and remaining accuracy headroom.
    std::vector<Active> carried;
    for (Active& req : active) {
      const bool complete =
          req.flopsDone >= req.accuracy.fmax() - 1e-9;
      const bool hasTimeNextEpoch =
          req.absoluteDeadline > epochEnd + options.epochSeconds;
      if (options.carryBacklog && !complete && hasTimeNextEpoch &&
          epochEnd + options.epochSeconds < options.horizonSeconds) {
        carried.push_back(std::move(req));
      } else {
        finalize(req);
      }
    }
    active = std::move(carried);
  }
  // Horizon over: retire whatever is still in flight. Arrivals at or past
  // the horizon (possible with caller-provided times) are outside the
  // simulation and not counted.
  for (const Active& req : active) finalize(req);

  if (stats.requests > 0) {
    stats.meanAccuracy = accuracySum / static_cast<double>(stats.requests);
  }
  if (stats.served > 0) {
    stats.meanLatency = latencySum / static_cast<double>(stats.served);
  }
  return stats;
}

}  // namespace

ServingStats runServing(const std::vector<Machine>& machines, Policy policy,
                        const ServingOptions& options) {
  return runServingImpl(machines, policy, options, [&options](double, double) {
    return options.energyBudgetPerEpoch;
  });
}

ServingStats runServing(const std::vector<Machine>& machines, Policy policy,
                        const ServingOptions& options,
                        const PowerTrace& supply) {
  return runServingImpl(machines, policy, options,
                        [&supply](double epochStart, double epochEnd) {
                          return supply.energyBetween(epochStart, epochEnd);
                        });
}

}  // namespace dsct::sim
