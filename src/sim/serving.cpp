#include "sim/serving.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "accuracy/fit.h"
#include "core/solver_api.h"
#include "core/solver_registry.h"
#include "sched/profile_cache.h"
#include "sched/validator.h"
#include "shard/coordinator.h"
#include "sim/epoch_pipeline.h"
#include "sim/renewable.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dsct::sim {

const char* toString(Policy policy) {
  switch (policy) {
    case Policy::kApprox: return "DSCT-EA-Approx";
    case Policy::kEdfNoCompression: return "EDF-NoCompression";
    case Policy::kEdfLevels: return "EDF-3CompressionLevels";
  }
  return "unknown";
}

const char* policyName(Policy policy) {
  switch (policy) {
    case Policy::kApprox: return "approx";
    case Policy::kEdfNoCompression: return "edf";
    case Policy::kEdfLevels: return "edf3";
  }
  return "unknown";
}

const char* toString(IncidentKind kind) {
  switch (kind) {
    case IncidentKind::kPolicyFailure: return "policy-failure";
    case IncidentKind::kPolicyTimeout: return "policy-timeout";
    case IncidentKind::kValidatorReject: return "validator-reject";
    case IncidentKind::kFallbackEngaged: return "fallback-engaged";
    case IncidentKind::kEmptySchedule: return "empty-schedule";
    case IncidentKind::kNoAliveMachines: return "no-alive-machines";
    case IncidentKind::kBudgetShock: return "budget-shock";
    case IncidentKind::kAdmissionShed: return "admission-shed";
    case IncidentKind::kMachineDeparted: return "machine-departed";
    case IncidentKind::kBatteryBudgetCapped: return "battery-budget-capped";
    case IncidentKind::kBatteryExhausted: return "battery-exhausted";
    case IncidentKind::kShardPriceDiverged: return "shard-price-diverged";
  }
  return "unknown";
}

namespace {

/// Resolve a solver name for serving and enforce the integral capability —
/// the executor needs a task→machine assignment, not a fractional profile.
const Solver& resolveServingSolver(const std::string& name) {
  const Solver& solver = SolverRegistry::instance().resolve(name);
  DSCT_CHECK_MSG(solver.capabilities().integral,
                 "serving policy '" << name
                                    << "' does not produce integral schedules");
  return solver;
}

/// Shared driver core; `budgetFor(epochStart, epochEnd)` supplies each
/// epoch's energy budget.
ServingStats runServingImpl(
    const std::vector<Machine>& machines, const std::string& policy,
    const ServingOptions& options,
    const std::function<double(double, double)>& budgetFor) {
  DSCT_CHECK(!machines.empty());
  DSCT_CHECK(options.epochSeconds > 0.0);
  const bool hasRequestTrace = !options.requestTrace.empty();
  if (hasRequestTrace) {
    DSCT_CHECK_MSG(options.arrivalTimes.empty(),
                   "requestTrace and arrivalTimes are mutually exclusive");
    for (std::size_t i = 0; i < options.requestTrace.size(); ++i) {
      const RequestSpec& spec = options.requestTrace[i];
      DSCT_CHECK_MSG(spec.relDeadline > 0.0 && spec.theta > 0.0 &&
                         spec.missPenalty >= 0.0,
                     "requestTrace[" << i << "] has relDeadline "
                                     << spec.relDeadline << ", theta "
                                     << spec.theta << ", missPenalty "
                                     << spec.missPenalty);
      DSCT_CHECK_MSG(i == 0 || options.requestTrace[i - 1].arrival <=
                                   spec.arrival,
                     "requestTrace arrivals must be ascending");
    }
  } else if (options.arrivalTimes.empty()) {
    // The rate feeds the Poisson generator only; an explicit arrival trace
    // makes it irrelevant and must not be rejected.
    DSCT_CHECK_MSG(options.arrivalRatePerSecond > 0.0,
                   "arrivalRatePerSecond must be positive when no explicit "
                   "arrivalTimes are supplied");
  }

  Rng rng(options.seed);
  // Arrival stream: a fully specified request trace, caller-provided times,
  // or a Poisson process.
  std::vector<double> arrivalTimes = options.arrivalTimes;
  if (hasRequestTrace) {
    arrivalTimes.reserve(options.requestTrace.size());
    for (const RequestSpec& spec : options.requestTrace) {
      arrivalTimes.push_back(spec.arrival);
    }
  } else if (arrivalTimes.empty()) {
    double t = rng.exponential(options.arrivalRatePerSecond);
    while (t < options.horizonSeconds) {
      arrivalTimes.push_back(t);
      t += rng.exponential(options.arrivalRatePerSecond);
    }
  } else {
    for (std::size_t i = 0; i + 1 < arrivalTimes.size(); ++i) {
      DSCT_CHECK_MSG(arrivalTimes[i] <= arrivalTimes[i + 1],
                     "arrivalTimes must be ascending");
    }
  }

  // Fault event stream — generated only when enabled, so the default path
  // draws no extra random numbers and stays bit-identical to the pre-fault
  // driver.
  FaultTrace faults;
  if (options.faults.enabled) {
    const long long numEpochs = static_cast<long long>(
        std::ceil(options.horizonSeconds / options.epochSeconds));
    faults = FaultTrace::generate(static_cast<int>(machines.size()),
                                  options.horizonSeconds, numEpochs,
                                  options.faults);
  }
  // Availability layer (DESIGN.md §15): a seeded departure schedule at
  // whole-epoch granularity plus per-machine battery stores. Generated only
  // when enabled, so the default path draws no extra random numbers and
  // stays bit-identical to the pre-availability driver.
  AvailabilityTrace avail;
  BatteryModel battery;
  if (options.availability.enabled) {
    const long long numEpochs = static_cast<long long>(
        std::ceil(options.horizonSeconds / options.epochSeconds));
    avail = AvailabilityTrace::generate(
        static_cast<int>(machines.size()), options.horizonSeconds, numEpochs,
        options.epochSeconds, options.availability);
    if (avail.batteryActive()) {
      battery =
          BatteryModel(static_cast<int>(machines.size()), options.availability);
    }
  }
  // The fallback chain (try primary → validate → walk options.fallbackChain)
  // runs only when some guard is active; otherwise scheduling is a single
  // unguarded call exactly as before.
  const bool guarded = options.faults.enabled || options.validateEpochs ||
                       options.epochTimeLimitSeconds > 0.0;

  // Resolve the primary policy and the fallback chain through the solver
  // registry up front, so a typo fails the run at epoch 0 rather than at the
  // first faulty epoch.
  const Solver& basePrimary = resolveServingSolver(policy);
  // Sharded serving wraps the primary in a run-local ShardedSolver: every
  // existing dispatch path (sync, async pipeline, guarded chain) then treats
  // the coordinated solve as a normal Solver. The coordinator is stateful
  // (per-cell caches, warm-start slots), which is safe here because the
  // driver keeps at most one solve in flight. Fallback attempts keep using
  // registry solvers directly, so the safety net never depends on the shard
  // layer.
  std::unique_ptr<shard::ShardedSolver> shardedPrimary;
  if (options.shards > 1) {
    shard::ShardOptions shardOptions;
    shardOptions.cells = options.shards;
    shardOptions.seed = options.shardSeed;
    shardedPrimary =
        std::make_unique<shard::ShardedSolver>(basePrimary, shardOptions);
  }
  const Solver& primary =
      shardedPrimary != nullptr ? *shardedPrimary : basePrimary;
  std::vector<const Solver*> chain;
  chain.reserve(options.fallbackChain.size());
  for (const std::string& name : options.fallbackChain) {
    chain.push_back(&resolveServingSolver(name));
  }

  // Cache/pool demand is capability-driven: the chain only contributes in
  // guarded runs (it is never consulted otherwise), which keeps unguarded
  // runs bit-identical to the pre-registry driver for every policy.
  bool wantsCache = primary.capabilities().usesProfileCache;
  bool wantsPool = primary.capabilities().usesThreadPool;
  bool wantsLpWarm = primary.capabilities().usesLpWarmStart;
  if (guarded) {
    for (const Solver* fb : chain) {
      wantsCache = wantsCache || fb->capabilities().usesProfileCache;
      wantsPool = wantsPool || fb->capabilities().usesThreadPool;
      wantsLpWarm = wantsLpWarm || fb->capabilities().usesLpWarmStart;
    }
  }

  // Cross-solve evaluation cache carried across epochs. Epochs with an
  // identical batch on an identical machine state (idle stretches, carried
  // backlog, fallback re-solves) reuse earlier FR-OPT evaluations instead of
  // solving cold; any change to the epoch instance changes the fingerprint.
  std::optional<ProfileCache> crossCache;
  if (options.crossSolveCache && wantsCache) {
    crossCache.emplace();
  }
  // Worker pool for the parallel cached evaluation path, carried across the
  // run's epochs like the cache. Results are bit-identical with or without
  // it — the pool only changes where the work runs.
  std::unique_ptr<ThreadPool> solverPool;
  // Sharded runs always get a pool: the coordinator fans the per-cell
  // solves out on it (cells run their own fan-outs inline on the workers).
  // Pool placement never changes results — reductions are index-ordered.
  if ((options.parallelCachedEval && wantsPool) || shardedPrimary != nullptr) {
    solverPool = std::make_unique<ThreadPool>(options.solverThreads);
  }
  // Cross-epoch LP warm-start slot, carried like the cache: one epoch's
  // optimal basis seeds the next epoch's LP when the instance structure
  // matches. The driver drains every background solve before starting the
  // next, so the slot is never touched by two solves at once.
  std::optional<LpWarmStartSlot> lpWarmSlot;
  if (options.lpWarmStarts && wantsLpWarm) lpWarmSlot.emplace();
  // LP telemetry summed over every solve of the run (primary, fallback, and
  // async alike); folded into ServingStats at the end.
  lp::LpCounters lpTotals;
  const auto noteLp = [&lpTotals](const SolveOutcome& outcome) {
    lpTotals.add(outcome.lpCounters);
  };
  SolveContext solveCtx;
  solveCtx.frOpt.sharedCache = crossCache ? &*crossCache : nullptr;
  solveCtx.frOpt.pool = solverPool.get();
  solveCtx.frOpt.parallelCachedEval = options.parallelCachedEval;
  solveCtx.lpWarm = lpWarmSlot ? &*lpWarmSlot : nullptr;
  // Per-epoch availability hints, refilled before each epoch's solves and
  // handed only to capability-gated solvers. Declared at driver scope so the
  // async pipeline's context can point at it across the submission.
  AvailabilityHints epochHints;
  const auto applyAvailability = [&](SolveContext& ctx, const Solver& solver) {
    if (!epochHints.machineEnergyCaps.empty() &&
        solver.capabilities().availabilityAware) {
      ctx.availability = &epochHints;
    }
  };
  const auto scheduleEpoch = [&](const Solver& solver, const Instance& inst) {
    SolveContext ctx = solveCtx;
    applyAvailability(ctx, solver);
    SolveOutcome outcome = solver.solve(inst, ctx);
    noteLp(outcome);
    DSCT_CHECK_MSG(outcome.schedule.has_value(),
                   "solver '" << solver.name()
                              << "' returned no integral schedule");
    return std::move(*outcome.schedule);
  };
  // Same solve with a cancel token threaded through the context; the shared
  // resources (cache, pool) are untouched, so a null token is bit-identical
  // to scheduleEpoch's solve.
  const auto solveWithCancel = [&](const Solver& solver, const Instance& inst,
                                   const CancelToken* token) {
    SolveContext ctx = solveCtx;
    ctx.cancel = token;
    applyAvailability(ctx, solver);
    return solver.solve(inst, ctx);
  };

  const auto nowSeconds = [&options]() {
    return options.clock ? options.clock() : steadyNowSeconds();
  };

  // Background solve lane for async serving. The driver drains every
  // submitted future within its epoch, so at most one solve is in flight
  // and the shared cache/pool are never used from two threads at once.
  std::unique_ptr<AsyncSolvePipeline> pipeline;
  if (options.asyncServing) pipeline = std::make_unique<AsyncSolvePipeline>();
  // Double-buffering is allowed only when executing an epoch cannot change
  // the next epoch's batch or budget: backlog carry-over, fault injection,
  // availability (battery drain couples execution into the next budget),
  // and admission control all feed execution results back into later
  // epochs, so those modes drain the solve before executing instead.
  const bool overlapEligible = options.asyncServing && !options.carryBacklog &&
                               !options.faults.enabled &&
                               !options.availability.enabled &&
                               options.admissionLoadFactor <= 0.0;

  // In-flight requests. Without backlog carry-over a request lives for one
  // epoch; with it, a request re-enters later batches with its residual
  // accuracy function until its deadline passes or it is fully processed.
  // Fault recovery reuses the same residual path: an interrupted request
  // re-enters with its partial FLOPs until its retry budget runs out.
  struct Active {
    double arrival;
    double absoluteDeadline;
    PiecewiseLinearAccuracy accuracy;  ///< the request's full curve
    double flopsDone = 0.0;
    double lastFinish = 0.0;  ///< absolute completion time of the last slice
    int retryCount = 0;       ///< epochs in which this request was interrupted
    bool interrupted = false; ///< interrupted in the current epoch
    double missPenalty = 1.0; ///< SLA weight per missed deadline
  };
  std::vector<Active> active;
  std::size_t next = 0;  // next unconsumed arrival

  ServingStats stats;
  // Fold the coordinator's per-solve stats into the run totals after every
  // sharded primary solve; a price loop that hit its cap outside the budget
  // tolerance is logged as an incident (payload: the accepted λ).
  const auto noteShard = [&](long long epoch) {
    if (shardedPrimary == nullptr) return;
    const shard::ShardStats& ss = shardedPrimary->lastStats();
    ++stats.shardedEpochs;
    stats.shardPriceIterations += ss.priceIterations;
    stats.shardTopUpCells += ss.topUpCells;
    stats.shardTopUpEnergy += ss.topUpEnergy;
    if (!ss.converged) {
      ++stats.shardPriceDivergences;
      stats.incidents.push_back(
          {epoch, IncidentKind::kShardPriceDiverged, ss.finalPrice});
    }
  };
  double accuracySum = 0.0;
  double latencySum = 0.0;
  const auto finalize = [&](const Active& req) {
    ++stats.requests;
    accuracySum += req.accuracy.value(req.flopsDone);
    if (req.flopsDone > 0.0) {
      ++stats.served;
      latencySum += req.lastFinish - req.arrival;
    } else if (hasRequestTrace &&
               req.absoluteDeadline <= options.horizonSeconds) {
      // SLA accounting for supplied traces: a request whose deadline expired
      // inside the horizon without receiving any service missed its SLA.
      // Only trace mode counts these — the legacy generator path keeps its
      // executed-late-only semantics bit-identically.
      ++stats.deadlineMisses;
      stats.missPenalty += req.missPenalty;
    }
  };

  // Double-buffered execution stash for async serving: epoch k's plan is
  // executed while epoch k+1's solve runs on the pipeline thread. Only used
  // when overlapEligible — execution then cannot feed back into later
  // batches, so retire() degenerates to finalize-everything, which is
  // exactly what the flush does.
  struct PendingExec {
    Instance inst;
    IntegralSchedule sched;
    std::vector<Active> batch;
    std::vector<std::size_t> order;
    double epochEnd = 0.0;
  };
  std::optional<PendingExec> pendingExec;
  const auto flushPending = [&]() {
    if (!pendingExec.has_value()) return;
    PendingExec& p = *pendingExec;
    // Overlap mode implies faults are disabled, so the default FaultContext
    // reproduces the inline execution path exactly (no interruptions).
    const ExecutionResult exec =
        executeSchedule(p.inst, p.sched, CommModel{}, FaultContext{});
    stats.totalEnergy += exec.totalEnergy;
    for (int j = 0; j < p.inst.numTasks(); ++j) {
      const TaskExecution& te = exec.executions[static_cast<std::size_t>(j)];
      Active& req = p.batch[p.order[static_cast<std::size_t>(j)]];
      if (te.executed && te.flops > 0.0) {
        req.flopsDone += te.flops;
        req.lastFinish = p.epochEnd + te.finish;
      }
      if (!te.deadlineMet) {
        ++stats.deadlineMisses;
        stats.missPenalty += req.missPenalty;
      }
    }
    for (const Active& req : p.batch) finalize(req);
    pendingExec.reset();
  };

  // Iterate over the integer epoch index and derive both boundaries by
  // multiplication: accumulating `epochStart += epochSeconds` compounds one
  // rounding error per epoch, which can admit an arrival into the wrong
  // epoch or run one epoch too many/few over long horizons.
  for (long long epoch = 0;; ++epoch) {
    const double epochStart = static_cast<double>(epoch) * options.epochSeconds;
    if (epochStart >= options.horizonSeconds) break;
    const double epochEnd =
        static_cast<double>(epoch + 1) * options.epochSeconds;
    // Battery recharge at every epoch boundary — including idle or departed
    // epochs, before any early exits below, so a drained volunteer device
    // recovers while it sits out.
    if (battery.active() && epoch > 0) battery.recharge(options.epochSeconds);
    // Admit this epoch's arrivals. A request trace supplies the per-request
    // deadline/θ/penalty directly (no RNG draws); otherwise both are drawn
    // from the workload RNG exactly as before.
    while (next < arrivalTimes.size() && arrivalTimes[next] < epochEnd) {
      const double arrival = arrivalTimes[next];
      double relDeadline, theta, missPenalty;
      if (hasRequestTrace) {
        const RequestSpec& spec = options.requestTrace[next];
        relDeadline = spec.relDeadline;
        theta = spec.theta;
        missPenalty = spec.missPenalty;
      } else {
        relDeadline =
            rng.uniform(options.relDeadlineLo, options.relDeadlineHi);
        theta = rng.uniform(options.thetaLo, options.thetaHi);
        missPenalty = 1.0;
      }
      active.push_back(Active{
          arrival, arrival + relDeadline,
          makePaperAccuracy(options.amin, options.amax, theta,
                            options.segments),
          0.0, 0.0, 0, false, missPenalty});
      ++next;
    }
    if (active.empty()) continue;
    ++stats.epochs;

    // Retire requests; with carry-over, keep those that still have usable
    // time next epoch and remaining accuracy headroom. Interrupted requests
    // additionally re-enter (their residual suffix carries the partial
    // FLOPs) until the retry budget is exhausted.
    const auto retire = [&]() {
      std::vector<Active> carried;
      for (Active& req : active) {
        const bool complete =
            req.flopsDone >= req.accuracy.fmax() - 1e-9;
        const bool hasTimeNextEpoch =
            req.absoluteDeadline > epochEnd + options.epochSeconds;
        const bool nextEpochRuns =
            epochEnd + options.epochSeconds < options.horizonSeconds;
        const bool carryNormal = options.carryBacklog && !complete &&
                                 hasTimeNextEpoch && nextEpochRuns;
        // Battery exhaustion spills through the same retry path as crashes
        // (the executor flags cut tasks `interrupted` either way); both share
        // options.faults.maxRetries — identical to faults.maxRetries() when
        // the fault trace is enabled.
        const bool retryPathActive = faults.enabled() || battery.active();
        const bool carryRetry =
            retryPathActive && req.interrupted && !complete &&
            hasTimeNextEpoch && nextEpochRuns &&
            req.retryCount <= options.faults.maxRetries;
        if (carryNormal || carryRetry) {
          if (req.interrupted) {
            ++stats.retries;
            req.interrupted = false;
          }
          carried.push_back(std::move(req));
        } else {
          if (req.interrupted && !complete && hasTimeNextEpoch &&
              nextEpochRuns && req.retryCount > options.faults.maxRetries) {
            ++stats.abandoned;
          }
          finalize(req);
        }
      }
      active = std::move(carried);
    };

    // Replan against the machines that are actually in the fleet and alive
    // at the epoch boundary: departed machines (availability trace) are
    // excluded for the whole epoch, crashed machines until they recover; a
    // machine that recovers/returns mid-epoch rejoins next epoch.
    std::vector<int> aliveIdx;
    std::vector<Machine> aliveMachines;
    const bool filterMachines = faults.enabled() || avail.enabled();
    if (filterMachines) {
      int departedHere = 0;
      for (int r = 0; r < static_cast<int>(machines.size()); ++r) {
        if (!avail.presentInEpoch(r, epoch)) {
          ++departedHere;
          continue;
        }
        if (faults.enabled() && !faults.aliveAt(r, epochStart)) continue;
        aliveIdx.push_back(r);
        aliveMachines.push_back(machines[static_cast<std::size_t>(r)]);
      }
      if (departedHere > 0) {
        stats.machineDepartures += departedHere;
        stats.incidents.push_back({epoch, IncidentKind::kMachineDeparted,
                                   static_cast<double>(departedHere)});
      }
      if (aliveIdx.empty()) {
        ++stats.noMachineEpochs;
        stats.incidents.push_back(
            {epoch, IncidentKind::kNoAliveMachines, 0.0});
        retire();
        continue;
      }
    }
    const std::vector<Machine>& instMachines =
        filterMachines ? aliveMachines : machines;

    // Admission control: shed the requests with the least remaining accuracy
    // headroom when the batch exceeds the configured load factor.
    if (options.admissionLoadFactor > 0.0) {
      const std::size_t cap = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(options.admissionLoadFactor *
                                                static_cast<double>(
                                                    instMachines.size()))));
      if (active.size() > cap) {
        std::vector<std::size_t> byHeadroom(active.size());
        for (std::size_t i = 0; i < byHeadroom.size(); ++i) byHeadroom[i] = i;
        std::stable_sort(byHeadroom.begin(), byHeadroom.end(),
                         [&](std::size_t a, std::size_t b) {
                           const auto headroom = [&](const Active& req) {
                             return req.accuracy.amax() -
                                    req.accuracy.value(req.flopsDone);
                           };
                           return headroom(active[a]) > headroom(active[b]);
                         });
        std::vector<bool> keep(active.size(), false);
        for (std::size_t k = 0; k < cap; ++k) keep[byHeadroom[k]] = true;
        std::vector<Active> kept;
        kept.reserve(cap);
        int shedHere = 0;
        for (std::size_t i = 0; i < active.size(); ++i) {
          if (keep[i]) {
            kept.push_back(std::move(active[i]));
          } else {
            finalize(active[i]);
            ++shedHere;
          }
        }
        active = std::move(kept);
        stats.shed += shedHere;
        stats.incidents.push_back({epoch, IncidentKind::kAdmissionShed,
                                   static_cast<double>(shedHere)});
      }
    }

    // Build a DSCT-EA instance with residual curves and deadlines relative
    // to the epoch end.
    std::vector<Task> tasks;
    tasks.reserve(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      const Active& req = active[i];
      const double rel = std::max(1e-3, req.absoluteDeadline - epochEnd);
      PiecewiseLinearAccuracy curve =
          req.flopsDone > 0.0 ? req.accuracy.suffix(req.flopsDone)
                              : req.accuracy;
      tasks.push_back(Task{rel, std::move(curve), "req-" + std::to_string(i)});
    }
    // Instance sorts by deadline; remember the active slot per sorted task.
    std::vector<std::size_t> order(active.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return tasks[a].deadline < tasks[b].deadline;
                     });

    double budget = std::max(0.0, budgetFor(epochStart, epochEnd));
    const double shock = faults.budgetFactor(epoch);
    if (shock != 1.0) {
      budget *= shock;
      ++stats.budgetShockEpochs;
      stats.incidents.push_back({epoch, IncidentKind::kBudgetShock, shock});
    }
    // Battery coupling: the fleet cannot spend energy it has not stored, so
    // the epoch budget is capped at Σ charge over the present machines.
    // Per-machine caps are also handed to availability-aware solvers so they
    // can avoid over-assigning a nearly-empty machine in the first place.
    epochHints.machineEnergyCaps.clear();
    if (battery.active()) {
      double stored = 0.0;
      epochHints.machineEnergyCaps.reserve(aliveIdx.size());
      for (int r : aliveIdx) {
        const double charge = battery.charge(r);
        stored += charge;
        epochHints.machineEnergyCaps.push_back(charge);
      }
      if (options.availability.capGlobalBudget && stored < budget) {
        budget = stored;
        ++stats.batteryCappedEpochs;
        stats.incidents.push_back(
            {epoch, IncidentKind::kBatteryBudgetCapped, stored});
      }
    }
    Instance inst(tasks, instMachines, budget);

    // Async serving: submit the primary solve to the pipeline thread BEFORE
    // flushing the previous epoch's deferred execution, so the solve and
    // the execution overlap. A primary attempt that is known a priori to be
    // an injected failure is not submitted — solving it would waste the
    // pipeline slot on a result the chain discards unsolved.
    struct AsyncPrimary {
      SolveContext ctx;
      std::unique_ptr<CancelToken> token;
      double granted = std::numeric_limits<double>::infinity();
      double start = 0.0;
      std::future<SolveOutcome> fut;
      bool submitted = false;
    } asyncPrimary;
    if (pipeline != nullptr) {
      const bool injected = guarded && faults.policyFailureInjected(epoch) &&
                            faults.injectFailureDepth() > 0;
      if (!injected) {
        asyncPrimary.ctx = solveCtx;
        applyAvailability(asyncPrimary.ctx, primary);
        if (guarded && options.epochTimeLimitSeconds > 0.0) {
          asyncPrimary.granted = options.epochTimeLimitSeconds;
          asyncPrimary.start = nowSeconds();
          asyncPrimary.token = std::make_unique<CancelToken>(
              options.epochTimeLimitSeconds, options.clock);
          asyncPrimary.ctx.cancel = asyncPrimary.token.get();
        }
        asyncPrimary.fut = pipeline->submit(primary, inst, asyncPrimary.ctx);
        asyncPrimary.submitted = true;
        ++stats.asyncEpochs;
      }
    }
    // The in-flight solve references this scope's instance, context, and
    // token; drain it even if execution or scheduling below throws.
    struct FutureDrain {
      AsyncPrimary* p;
      ~FutureDrain() {
        if (p->submitted && p->fut.valid()) p->fut.wait();
      }
    } futureDrain{&asyncPrimary};

    // Overlap window: the previous epoch's schedule executes here while (in
    // async mode) this epoch's solve is already running.
    flushPending();

    // Schedule the epoch. Guarded mode wraps the primary policy in the
    // configurable fallback chain: exception / injected failure / solve-
    // budget timeout / validator rejection each demote the epoch to the
    // next chain entry, and if every entry is rejected too the epoch serves
    // an empty schedule rather than executing an infeasible one.
    IntegralSchedule sched = [&]() -> IntegralSchedule {
      if (!guarded) {
        if (asyncPrimary.submitted) {
          SolveOutcome outcome = asyncPrimary.fut.get();
          noteLp(outcome);
          noteShard(epoch);
          DSCT_CHECK_MSG(outcome.schedule.has_value(),
                         "solver '" << primary.name()
                                    << "' returned no integral schedule");
          return std::move(*outcome.schedule);
        }
        IntegralSchedule s = scheduleEpoch(primary, inst);
        noteShard(epoch);
        return s;
      }
      // depth 0 = the primary policy, depth k = the k-th fallback attempt.
      // Injected failures fail every attempt below the trace's
      // injectFailureDepth (default 1: primary only, the pre-chain
      // semantics); real exceptions keep the historical log shape and are
      // recorded for the primary only.
      //
      // The solve budget (epochTimeLimitSeconds) is shared by the whole
      // attempt chain and anchored at the moment the primary started — its
      // async submission time in async mode. Each attempt receives a
      // CancelToken carrying the *remaining* budget, polled cooperatively
      // inside the solvers; once the budget is blown, later attempts run
      // unguarded (the chain must still serve the epoch, and the blowout is
      // already on the incident log).
      const bool limited = options.epochTimeLimitSeconds > 0.0;
      const double chainStart = !limited                ? 0.0
                                : asyncPrimary.submitted ? asyncPrimary.start
                                                         : nowSeconds();
      const double chainDeadline = chainStart + options.epochTimeLimitSeconds;
      const auto attempt =
          [&](const Solver& solver, int depth) -> std::optional<IntegralSchedule> {
        if (faults.policyFailureInjected(epoch) &&
            depth < faults.injectFailureDepth()) {
          ++stats.policyFailures;
          stats.incidents.push_back({epoch, IncidentKind::kPolicyFailure,
                                     static_cast<double>(depth)});
          return std::nullopt;
        }
        const bool isAsyncPrimary = depth == 0 && asyncPrimary.submitted;
        std::unique_ptr<CancelToken> token;
        double granted = std::numeric_limits<double>::infinity();
        double attemptStart = 0.0;
        if (isAsyncPrimary) {
          granted = asyncPrimary.granted;
          attemptStart = asyncPrimary.start;
        } else if (limited) {
          attemptStart = nowSeconds();
          granted = chainDeadline - attemptStart;
          if (granted > 0.0) {
            token = std::make_unique<CancelToken>(granted, options.clock);
          }
        }
        const CancelToken* activeToken =
            isAsyncPrimary ? asyncPrimary.token.get() : token.get();
        std::optional<IntegralSchedule> s;
        bool cancelledOutcome = false;
        try {
          SolveOutcome outcome =
              isAsyncPrimary ? asyncPrimary.fut.get()
                             : solveWithCancel(solver, inst, activeToken);
          noteLp(outcome);
          if (depth == 0) noteShard(epoch);
          cancelledOutcome = outcome.cancelled();
          if (!cancelledOutcome) {
            // Inside the try: a missing schedule is a policy failure the
            // chain absorbs, same as any other solver exception.
            DSCT_CHECK_MSG(outcome.schedule.has_value(),
                           "solver '" << solver.name()
                                      << "' returned no integral schedule");
            s = std::move(*outcome.schedule);
          }
        } catch (const std::exception&) {
          if (depth == 0) {
            ++stats.policyFailures;
            stats.incidents.push_back(
                {epoch, IncidentKind::kPolicyFailure, 0.0});
          }
          return std::nullopt;
        }
        // An attempt times out when the solver observed its token and
        // stopped early (kCancelled), or — for slow non-cooperative spans —
        // when it ran past its granted budget post hoc. Unguarded attempts
        // (activeToken == nullptr, budget already blown) are never flagged.
        const double elapsed = limited ? nowSeconds() - attemptStart : 0.0;
        if (cancelledOutcome ||
            (activeToken != nullptr && elapsed > granted)) {
          if (depth == 0) ++stats.policyFailures;
          ++stats.policyTimeouts;
          stats.incidents.push_back(
              {epoch, IncidentKind::kPolicyTimeout, elapsed, depth});
          return std::nullopt;
        }
        if (!validate(inst, *s).feasible) {
          ++stats.validatorRejections;
          stats.incidents.push_back(
              {epoch, IncidentKind::kValidatorReject, 0.0});
          return std::nullopt;
        }
        return s;
      };
      std::optional<IntegralSchedule> s = attempt(primary, 0);
      if (!s.has_value()) {
        int depth = 1;
        for (const Solver* fb : chain) {
          // A chain entry equal to the primary would just repeat the failed
          // attempt; skip it (this reproduces the historical "edf3 does not
          // fall back to itself" rule under the default chain). Sharded runs
          // compare against the inner solver — an unsharded retry of the
          // same algorithm is still the same failed attempt.
          if (fb == &basePrimary) continue;
          s = attempt(*fb, depth++);
          if (s.has_value()) {
            ++stats.fallbacks;
            stats.incidents.push_back(
                {epoch, IncidentKind::kFallbackEngaged, 0.0});
            break;
          }
        }
      }
      if (!s.has_value()) {
        ++stats.fallbacks;
        stats.incidents.push_back({epoch, IncidentKind::kEmptySchedule, 0.0});
        s = IntegralSchedule::build(
            inst,
            std::vector<int>(static_cast<std::size_t>(inst.numTasks()), -1),
            std::vector<double>(static_cast<std::size_t>(inst.numTasks()),
                                0.0));
      }
      return *std::move(s);
    }();

    if (overlapEligible) {
      // Defer this epoch's execution: it runs inside the next iteration's
      // overlap window (or in the post-loop flush at the horizon), while
      // the next epoch's solve is in flight.
      pendingExec.emplace(PendingExec{std::move(inst), std::move(sched),
                                      std::move(active), std::move(order),
                                      epochEnd});
      active.clear();
      continue;
    }

    FaultContext ctx;
    if (faults.enabled()) {
      ctx.trace = &faults;
      ctx.timeOffset = epochStart;
      ctx.machineMap = aliveIdx;
    }
    // Battery discounting: a machine whose store cannot cover the energy of
    // its assigned timeline is cut at the instant the store runs dry — the
    // same semantics as a crash, so the residual spills through the existing
    // retry/backlog path. Machines within their charge keep the exact
    // unfaulted execution (empty cut vector, +inf cuts elsewhere).
    if (battery.active()) {
      std::vector<double> cuts(instMachines.size(),
                               std::numeric_limits<double>::infinity());
      int exhaustedHere = 0;
      for (std::size_t i = 0; i < instMachines.size(); ++i) {
        const double power = instMachines[i].power();
        double assignedSeconds = 0.0;
        for (const ScheduledTask& e : sched.timeline(static_cast<int>(i))) {
          assignedSeconds += e.duration;
        }
        const double assigned = assignedSeconds * power;
        const double charge = battery.charge(aliveIdx[i]);
        if (assigned > charge + 1e-9) {
          cuts[i] = power > 0.0
                        ? charge / power
                        : std::numeric_limits<double>::infinity();
          ++exhaustedHere;
        }
      }
      if (exhaustedHere > 0) {
        ctx.energyCutSeconds = std::move(cuts);
        stats.batteryExhaustions += exhaustedHere;
        stats.incidents.push_back({epoch, IncidentKind::kBatteryExhausted,
                                   static_cast<double>(exhaustedHere)});
      }
    }
    const ExecutionResult exec = executeSchedule(inst, sched, CommModel{}, ctx);
    if (battery.active()) {
      // Drain by the energy actually consumed (busy seconds × power), which
      // a cut bounds at the machine's stored charge up to rounding.
      for (std::size_t i = 0; i < instMachines.size(); ++i) {
        battery.drain(aliveIdx[i],
                      exec.machineBusySeconds[i] * instMachines[i].power());
      }
    }

    stats.totalEnergy += exec.totalEnergy;
    for (int j = 0; j < inst.numTasks(); ++j) {
      const TaskExecution& te = exec.executions[static_cast<std::size_t>(j)];
      Active& req = active[order[static_cast<std::size_t>(j)]];
      if (te.executed && te.flops > 0.0) {
        req.flopsDone += te.flops;
        req.lastFinish = epochEnd + te.finish;
      }
      if (te.interrupted) {
        req.interrupted = true;
        ++req.retryCount;
        ++stats.interruptions;
      }
      if (!te.deadlineMet) {
        ++stats.deadlineMisses;
        stats.missPenalty += req.missPenalty;
      }
    }

    retire();
  }
  // Horizon over: flush the last deferred epoch, then retire whatever is
  // still in flight. Arrivals at or past the horizon (possible with
  // caller-provided times) are outside the simulation and not counted.
  flushPending();
  for (const Active& req : active) finalize(req);

  if (stats.requests > 0) {
    stats.meanAccuracy = accuracySum / static_cast<double>(stats.requests);
  }
  if (stats.served > 0) {
    stats.meanLatency = latencySum / static_cast<double>(stats.served);
  }
  stats.lpPivots = lpTotals.pivots;
  stats.lpRefactorizations = lpTotals.refactorizations;
  stats.lpWarmStartsUsed = lpTotals.warmStartsUsed;
  stats.lpWarmStartsRepaired = lpTotals.warmStartsRepaired;
  stats.lpWarmStartsRejected = lpTotals.warmStartsRejected;
  if (crossCache) {
    const ProfileCacheCounters cc = crossCache->counters();
    stats.profileCacheHits = cc.hits;
    stats.profileCacheMisses = cc.misses;
    stats.profileCacheInvalidations = cc.invalidations;
    stats.profileCacheContended = cc.contended;
    stats.profileCacheShards = static_cast<long long>(crossCache->shardCount());
  }
  return stats;
}

}  // namespace

ServingStats runServing(const std::vector<Machine>& machines,
                        const std::string& policy,
                        const ServingOptions& options) {
  return runServingImpl(machines, policy, options, [&options](double, double) {
    return options.energyBudgetPerEpoch;
  });
}

ServingStats runServing(const std::vector<Machine>& machines,
                        const std::string& policy,
                        const ServingOptions& options,
                        const PowerTrace& supply) {
  return runServingImpl(machines, policy, options,
                        [&supply](double epochStart, double epochEnd) {
                          return supply.energyBetween(epochStart, epochEnd);
                        });
}

ServingStats runServing(const std::vector<Machine>& machines, Policy policy,
                        const ServingOptions& options) {
  return runServing(machines, std::string(policyName(policy)), options);
}

ServingStats runServing(const std::vector<Machine>& machines, Policy policy,
                        const ServingOptions& options,
                        const PowerTrace& supply) {
  return runServing(machines, std::string(policyName(policy)), options, supply);
}

}  // namespace dsct::sim
