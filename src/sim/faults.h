// Deterministic fault injection for the cluster simulator and serving loop.
//
// A FaultTrace is a seeded, pre-generated event stream over the whole
// simulation horizon: per-machine crash/recovery intervals (renewal process
// with exponential up/down times), per-machine multiplicative slowdown
// (straggler) windows, and per-epoch energy-budget shock factors. The trace
// is a pure function of (FaultOptions, machine count, horizon), so two runs
// with the same seed replay bit-identical fault histories regardless of what
// the scheduler does — the basis of the deterministic-replay regression
// tests. See DESIGN.md §10.
#pragma once

#include <cstdint>
#include <vector>

namespace dsct::sim {

struct FaultOptions {
  /// Master switch. When false, runServing takes the exact pre-fault code
  /// path (no trace is generated, no RNG draws happen) and output is
  /// bit-identical to a build without fault support.
  bool enabled = false;
  /// Seed for the fault event stream, independent of the workload seed so
  /// the same arrival trace can be replayed under different fault histories.
  std::uint64_t seed = 2024;

  /// Mean up-time between machine crashes (s); <= 0 disables crashes.
  double mtbfSeconds = 0.0;
  /// Mean down-time per crash (s).
  double mttrSeconds = 1.0;

  /// Mean time between straggler windows per machine (s); <= 0 disables.
  double slowdownMtbfSeconds = 0.0;
  /// Mean straggler window length (s).
  double slowdownMeanSeconds = 1.0;
  /// Effective-speed multiplier inside a straggler window, in (0, 1].
  double slowdownFactor = 0.5;

  /// Per-epoch probability that the granted energy budget is shocked.
  double budgetShockProbability = 0.0;
  /// Budget multiplier applied in a shocked epoch (e.g. 0.3 = 70% dip).
  double budgetShockFactor = 1.0;

  /// How many times an interrupted request may re-enter later batches
  /// before it is abandoned.
  int maxRetries = 2;

  /// Epoch indices at which the primary policy is forced to fail (counts as
  /// a policy failure and engages the fallback chain). Deterministic hook
  /// for testing solver-failure recovery without a real crash.
  std::vector<long long> injectPolicyFailureEpochs;
  /// How many scheduling attempts fail on an injected epoch: 1 (default)
  /// fails only the primary policy — the pre-chain semantics — while k > 1
  /// additionally fails the first k−1 fallback-chain attempts, exercising
  /// deeper entries of ServingOptions::fallbackChain.
  int injectFailureDepth = 1;
};

/// Half-open interval [start, end) in absolute simulation seconds.
struct FaultInterval {
  double start = 0.0;
  double end = 0.0;
};

class FaultTrace {
 public:
  /// Disabled trace: every machine always alive, factor 1 everywhere.
  FaultTrace() = default;

  /// Explicit trace for tests: hand-placed downtime/slowdown windows and
  /// per-epoch budget factors. Intervals must be sorted and disjoint per
  /// machine; budgetFactors may be shorter than the epoch count (missing
  /// epochs default to 1).
  FaultTrace(std::vector<std::vector<FaultInterval>> downtime,
             std::vector<std::vector<FaultInterval>> slowdown,
             double slowdownFactor, std::vector<double> budgetFactors,
             std::vector<long long> injectPolicyFailureEpochs, int maxRetries,
             int injectFailureDepth = 1);

  /// Sample a trace from `options` over [0, horizonSeconds) for
  /// `numMachines` machines and `numEpochs` scheduling epochs.
  static FaultTrace generate(int numMachines, double horizonSeconds,
                             long long numEpochs, const FaultOptions& options);

  bool enabled() const { return enabled_; }
  int numMachines() const { return static_cast<int>(downtime_.size()); }

  /// Is `machine` up at absolute time t?
  bool aliveAt(int machine, double t) const;

  /// Start of the first downtime interval at or after t; +infinity if none.
  /// A machine already down at t reports t itself.
  double nextCrashAt(int machine, double t) const;

  /// Work-equivalent seconds delivered by `machine` over [t0, t1]: the
  /// interval length minus slowdownLossSeconds. Downtime is NOT subtracted
  /// here — crash handling cuts the interval.
  double effectiveSeconds(int machine, double t0, double t1) const;

  /// Work-seconds lost to straggler windows over [t0, t1]:
  /// (1 − slowdownFactor) times the total overlap. Exactly 0.0 when no
  /// window overlaps, so fault-free intervals lose nothing — not even a
  /// floating-point ulp (the simulator relies on this for bit-identical
  /// replay of unaffected tasks).
  double slowdownLossSeconds(int machine, double t0, double t1) const;

  /// Budget multiplier for scheduling epoch `epoch` (1 when unshocked or
  /// out of range).
  double budgetFactor(long long epoch) const;

  bool policyFailureInjected(long long epoch) const;
  /// Number of scheduling attempts (primary first, then fallbacks) that fail
  /// on an injected epoch; always >= 1.
  int injectFailureDepth() const { return injectFailureDepth_; }

  int maxRetries() const { return maxRetries_; }
  const std::vector<FaultInterval>& downtime(int machine) const;
  const std::vector<FaultInterval>& slowdown(int machine) const;

 private:
  bool enabled_ = false;
  double slowdownFactor_ = 1.0;
  int maxRetries_ = 2;
  int injectFailureDepth_ = 1;
  std::vector<std::vector<FaultInterval>> downtime_;   ///< per machine, sorted
  std::vector<std::vector<FaultInterval>> slowdown_;   ///< per machine, sorted
  std::vector<double> budgetFactors_;                  ///< per epoch
  std::vector<long long> injectedFailures_;            ///< sorted epoch ids
};

}  // namespace dsct::sim
