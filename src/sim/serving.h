// Online MLaaS serving driver.
//
// Simulates an inference service: requests arrive as a Poisson process, each
// with a task efficiency θ and a relative deadline; every `epoch` seconds
// the pending batch is scheduled by a pluggable policy under a per-epoch
// energy budget and executed on the simulated cluster. This is the
// "cloud inference service" substrate motivating the paper's problem.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/types.h"
#include "sim/cluster.h"

namespace dsct::sim {

enum class Policy {
  kApprox,            ///< DSCT-EA-APPROX (the paper's algorithm)
  kEdfNoCompression,  ///< EDF, full models only
  kEdfLevels,         ///< EDF with 3 discrete compression levels
};

const char* toString(Policy policy);

struct ServingOptions {
  double arrivalRatePerSecond = 20.0;
  /// Explicit arrival times (seconds, ascending, < horizon); when non-empty
  /// they replace the internally generated Poisson stream — use with
  /// ArrivalProcess::diurnal for day/night load shapes.
  std::vector<double> arrivalTimes;
  double horizonSeconds = 10.0;
  double epochSeconds = 1.0;
  /// Relative deadline drawn uniformly from this range (seconds).
  double relDeadlineLo = 0.5;
  double relDeadlineHi = 2.0;
  /// Energy budget granted per scheduling epoch (J).
  double energyBudgetPerEpoch = 100.0;
  double thetaLo = 0.1;
  double thetaHi = 4.9;
  double amin = 1e-3;
  double amax = 0.82;
  int segments = 5;
  /// Carry partially processed requests into later epochs: a request whose
  /// deadline extends beyond the epoch re-enters the next batch with its
  /// *residual* accuracy function (PiecewiseLinearAccuracy::suffix), so the
  /// FLOPs invested earlier are not wasted. Off by default (the paper's
  /// one-shot batching).
  bool carryBacklog = false;
  std::uint64_t seed = 1;
};

struct ServingStats {
  int requests = 0;
  int served = 0;            ///< requests that executed with > 0 FLOPs
  int deadlineMisses = 0;
  double meanAccuracy = 0.0; ///< over all requests (dropped count a_min)
  double totalEnergy = 0.0;  ///< J over the whole run
  double meanLatency = 0.0;  ///< completion − arrival, over served requests
  int epochs = 0;
};

ServingStats runServing(const std::vector<Machine>& machines, Policy policy,
                        const ServingOptions& options);

class PowerTrace;

/// Renewable-powered serving (paper Section 7, future work): each epoch's
/// energy budget is the energy the power trace supplies during that epoch
/// (options.energyBudgetPerEpoch is ignored). Unused energy is not stored —
/// a batteryless deployment; adding storage is a one-line change in the
/// budget accounting and deliberately left to the caller.
ServingStats runServing(const std::vector<Machine>& machines, Policy policy,
                        const ServingOptions& options,
                        const PowerTrace& supply);

}  // namespace dsct::sim
