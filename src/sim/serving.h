// Online MLaaS serving driver.
//
// Simulates an inference service: requests arrive as a Poisson process, each
// with a task efficiency θ and a relative deadline; every `epoch` seconds
// the pending batch is scheduled by a pluggable policy under a per-epoch
// energy budget and executed on the simulated cluster. This is the
// "cloud inference service" substrate motivating the paper's problem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sched/types.h"
#include "sim/availability.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "util/cancel.h"

namespace dsct::sim {

/// Legacy policy selector; each value maps onto a registry solver name via
/// policyName(). New policies need no enum entry — pass any registered,
/// integral-capable solver name to the string overloads of runServing.
enum class Policy {
  kApprox,            ///< DSCT-EA-APPROX (the paper's algorithm)
  kEdfNoCompression,  ///< EDF, full models only
  kEdfLevels,         ///< EDF with 3 discrete compression levels
};

const char* toString(Policy policy);
/// Registry name of the solver backing `policy` ("approx", "edf", "edf3").
const char* policyName(Policy policy);

/// One externally supplied serving request: arrival time plus the
/// per-request attributes the driver would otherwise draw from its own RNG.
/// The scenario DSL (workload/scenario.h) materialises task classes into a
/// RequestSpec trace; hand-built traces work the same way. `missPenalty` is
/// the request's SLA weight, added to ServingStats::missPenalty every time
/// the request misses a deadline — executed past it, or (trace mode only)
/// expired inside the horizon without receiving any service.
struct RequestSpec {
  double arrival = 0.0;      ///< seconds from the run start, ascending
  double relDeadline = 1.0;  ///< relative deadline (s), > 0
  double theta = 1.0;        ///< task efficiency θ, > 0
  double missPenalty = 1.0;  ///< SLA miss-penalty weight, >= 0

  friend bool operator==(const RequestSpec&, const RequestSpec&) = default;
};

struct ServingOptions {
  double arrivalRatePerSecond = 20.0;
  /// Explicit arrival times (seconds, ascending, < horizon); when non-empty
  /// they replace the internally generated Poisson stream — use with
  /// ArrivalProcess::diurnal for day/night load shapes.
  std::vector<double> arrivalTimes;
  /// Fully specified request trace (ascending arrivals). When non-empty it
  /// replaces BOTH the arrival stream and the per-request deadline/θ draws:
  /// no workload RNG is consumed for admitted requests, so a trace replays
  /// bit-identically regardless of `seed`. Mutually exclusive with
  /// `arrivalTimes`.
  std::vector<RequestSpec> requestTrace;
  double horizonSeconds = 10.0;
  double epochSeconds = 1.0;
  /// Relative deadline drawn uniformly from this range (seconds).
  double relDeadlineLo = 0.5;
  double relDeadlineHi = 2.0;
  /// Energy budget granted per scheduling epoch (J).
  double energyBudgetPerEpoch = 100.0;
  double thetaLo = 0.1;
  double thetaHi = 4.9;
  double amin = 1e-3;
  double amax = 0.82;
  int segments = 5;
  /// Carry partially processed requests into later epochs: a request whose
  /// deadline extends beyond the epoch re-enters the next batch with its
  /// *residual* accuracy function (PiecewiseLinearAccuracy::suffix), so the
  /// FLOPs invested earlier are not wasted. Off by default (the paper's
  /// one-shot batching).
  bool carryBacklog = false;
  std::uint64_t seed = 1;

  /// Fault injection (crashes, stragglers, budget shocks) and the retry
  /// budget for interrupted requests. When `faults.enabled` is false the
  /// driver takes the exact pre-fault code path (regression-pinned).
  FaultOptions faults;
  /// Availability layer (DESIGN.md §15): seeded departure/return windows
  /// exclude machines from whole epochs, and a per-machine battery drains
  /// with executed work and recharges at a fixed rate — capping the epoch
  /// budget at the fleet's stored energy and cutting machines that run dry
  /// (the residual spills through the faults retry/backlog path, bounded by
  /// faults.maxRetries). When `availability.enabled` is false the driver
  /// takes the exact pre-availability code path (regression-pinned).
  AvailabilityOptions availability;
  /// Admission control: when > 0, at most ceil(admissionLoadFactor × alive
  /// machines) requests enter an epoch's batch; the excess requests with the
  /// least remaining accuracy headroom are shed (finalized at their current
  /// accuracy) instead of letting the solver starve the whole batch. 0 (the
  /// default) disables shedding.
  double admissionLoadFactor = 0.0;
  /// Per-epoch wall-clock budget for the whole scheduling attempt chain
  /// (s). Every attempt receives a CancelToken carrying the *remaining*
  /// budget, polled cooperatively inside the solvers, so a deadline-missing
  /// solve is stopped mid-solve instead of discarded post-hoc. Once the
  /// budget is blown, later fallback attempts run unguarded — the chain
  /// must still serve the epoch, and the blowout is already on the incident
  /// log. <= 0 (default) disables the budget. Deterministic under an
  /// injected `clock`; with the default steady clock it is wall-clock based
  /// and therefore not replay-deterministic.
  double epochTimeLimitSeconds = 0.0;
  /// Run epoch solves on a background thread, double-buffered with
  /// execution: while epoch k's schedule executes, epoch k+1's solve is
  /// already running. The driver always drains the solve future (the
  /// cooperative token, not a wall-clock wait, enforces the deadline), so
  /// results are bit-identical to synchronous serving for deterministic
  /// policies; only the wall-clock overlap differs. Overlap is suppressed
  /// (solves still run on the background thread, without pipelining) when
  /// execution feeds back into the next epoch's batch: backlog carry-over,
  /// fault injection, or admission control.
  bool asyncServing = false;
  /// Clock used for the epoch solve budget (seconds, monotonic). Empty uses
  /// std::chrono::steady_clock. An injected clock must be callable from the
  /// background solve thread concurrently with the driver (make it atomic);
  /// tests inject a fake clock to make timeout behaviour deterministic.
  ClockFn clock{};
  /// Ordered fallback chain, as solver-registry names: when the primary
  /// policy fails (throw, injected failure, timeout, validator rejection) in
  /// a guarded run, each chain entry is attempted in order — skipping
  /// entries equal to the primary — and the first feasible schedule serves
  /// the epoch; if every entry fails the epoch serves an empty schedule.
  /// The default single-entry chain reproduces the historical hardcoded
  /// EDF-3-levels demotion bit-identically. Every entry must name a
  /// registered solver with the `integral` capability.
  std::vector<std::string> fallbackChain{"edf3"};
  /// Run the feasibility validator on every epoch's schedule and fall back
  /// when it rejects. Implied by faults.enabled; off by default to keep the
  /// default path bit-identical to the pre-fault driver.
  bool validateEpochs = false;
  /// Carry a cross-solve ProfileCache (sched/profile_cache.h) across the
  /// run's epochs, so FR-OPT re-solves of an already-seen (instance,
  /// machine-state) pair reuse earlier evaluations. kApprox only; the cache
  /// key fingerprints the whole epoch instance, so crashes (alive-machine
  /// replans) and budget shocks can never serve stale answers. Results are
  /// bit-identical with the cache on or off (pinned by
  /// tests/serving_backlog_test.cpp); only the work differs.
  bool crossSolveCache = true;
  /// Run FR-OPT's batch evaluations on a worker pool whose workers read the
  /// sharded cross-solve cache concurrently; writes stay single-threaded and
  /// index-ordered inside the evaluator's commit phase, so serving results
  /// are bit-identical with this flag on or off (pinned by
  /// tests/serving_backlog_test.cpp). kApprox only.
  bool parallelCachedEval = false;
  /// Worker threads for parallelCachedEval; 0 means hardware concurrency.
  std::size_t solverThreads = 0;
  /// Carry an LP warm-start slot (core/solver_api.h LpWarmStartSlot) across
  /// the run's epochs for solvers with the `usesLpWarmStart` capability
  /// ("fr-lp", "mip-warm"): the final basis of one epoch's optimal LP seeds
  /// the next epoch's solve when the instance's structural fingerprint
  /// matches (bound/RHS drift only). Results are bit-identical with this on
  /// or off (pinned by tests/solver_warm_start_test.cpp); only the pivot
  /// work differs — see ServingStats' lp* counters.
  bool lpWarmStarts = true;
  /// Shard the primary policy's epoch solves into K budget-partitioned
  /// cells coordinated by the Lagrangian energy-price loop (DESIGN.md §18,
  /// shard/coordinator.h): the epoch instance is split deterministically,
  /// the global budget is priced across the cells, the cells solve in
  /// parallel on the run's worker pool, and leftover energy tops up
  /// budget-bound cells. <= 1 (default) keeps the unsharded path
  /// bit-identically (tests/serving_shard_test.cpp pins this). Fallback
  /// attempts stay unsharded — a shard-layer problem must not take the
  /// safety net down with it.
  int shards = 0;
  /// Partitioner seed for the sharded path (see shard::PartitionOptions).
  std::uint64_t shardSeed = 0;
};

/// One line of the per-epoch incident log.
enum class IncidentKind {
  kPolicyFailure,     ///< a scheduling attempt threw (or failure was injected)
  kPolicyTimeout,     ///< primary policy exceeded epochTimeLimitSeconds
  kValidatorReject,   ///< a schedule failed the feasibility validator
  kFallbackEngaged,   ///< epoch served by a fallback-chain entry
  kEmptySchedule,     ///< the whole chain failed; epoch served nothing
  kNoAliveMachines,   ///< every machine was down at the epoch boundary
  kBudgetShock,       ///< epoch budget scaled by the shock factor
  kAdmissionShed,     ///< requests shed by admission control
  kMachineDeparted,   ///< machines out of the fleet this epoch (availability)
  kBatteryBudgetCapped,  ///< epoch budget capped at the fleet's stored energy
  kBatteryExhausted,  ///< machines whose battery ran dry mid-epoch
  kShardPriceDiverged,  ///< shard price loop hit its iteration cap without
                        ///< reaching the budget tolerance (payload: final λ)
};

const char* toString(IncidentKind kind);

struct EpochIncident {
  long long epoch = 0;
  IncidentKind kind = IncidentKind::kPolicyFailure;
  /// Kind-specific payload:
  ///  - kPolicyFailure: attempt depth (0 = primary, k > 0 = k-th fallback);
  ///  - kPolicyTimeout: the attempt's elapsed solve seconds (NOT 0 — this
  ///    was previously misdocumented);
  ///  - kBudgetShock: the budget shock factor;
  ///  - kAdmissionShed: number of requests shed;
  ///  - kMachineDeparted: number of machines departed this epoch;
  ///  - kBatteryBudgetCapped: the capped budget (Σ present stored energy, J);
  ///  - kBatteryExhausted: number of machines cut dry this epoch;
  ///  - 0 for every other kind.
  double value = 0.0;
  /// Attempt depth for kPolicyTimeout (0 = primary policy, k > 0 = k-th
  /// fallback attempt); 0 for other kinds (kPolicyFailure keeps its depth
  /// in `value` for log-shape compatibility).
  int depth = 0;

  bool operator==(const EpochIncident&) const = default;
};

struct ServingStats {
  int requests = 0;
  int served = 0;            ///< requests that executed with > 0 FLOPs
  /// Tasks executed past their deadline; with a request trace, additionally
  /// requests whose deadline expired inside the horizon with zero service
  /// (dropped requests violated their SLA). The generator path keeps the
  /// executed-late-only semantics bit-identically.
  int deadlineMisses = 0;
  /// Σ RequestSpec::missPenalty over missed deadlines — the SLA-weighted
  /// companion of deadlineMisses (equal to it when every weight is 1, e.g.
  /// whenever no request trace is supplied).
  double missPenalty = 0.0;
  double meanAccuracy = 0.0; ///< over all requests (dropped count a_min)
  double totalEnergy = 0.0;  ///< J over the whole run
  double meanLatency = 0.0;  ///< completion − arrival, over served requests
  int epochs = 0;

  // Fault-tolerance counters (all zero on the fault-free path).
  int interruptions = 0;       ///< request slices cut by machine crashes
  int retries = 0;             ///< interrupted requests re-admitted later
  int abandoned = 0;           ///< interrupted requests out of retry budget
  int shed = 0;                ///< requests dropped by admission control
  int fallbacks = 0;           ///< epochs not served by the primary policy
  int policyFailures = 0;      ///< primary-policy throws/timeouts/injections
  int policyTimeouts = 0;      ///< attempts over the epoch solve budget
                               ///< (any depth; cancelled mid-solve or post hoc)
  int asyncEpochs = 0;         ///< epochs whose primary solve ran on the
                               ///< async pipeline thread
  int validatorRejections = 0; ///< schedules rejected by the validator gate
  int budgetShockEpochs = 0;
  int noMachineEpochs = 0;     ///< epochs with every machine crashed/departed

  // Availability counters (all zero when availability is off).
  int machineDepartures = 0;   ///< machine-epochs spent out of the fleet
  int batteryExhaustions = 0;  ///< machines cut mid-epoch by an empty store
  int batteryCappedEpochs = 0; ///< epochs whose budget the fleet's stored
                               ///< energy capped below the granted budget

  // Shard-coordinator counters (all zero when ServingOptions::shards <= 1).
  int shardedEpochs = 0;                ///< primary solves that ran sharded
  long long shardPriceIterations = 0;   ///< Σ outer price-loop iterations
  int shardTopUpCells = 0;              ///< Σ cells re-solved by top-up
  double shardTopUpEnergy = 0.0;        ///< Σ Joules granted by top-up
  int shardPriceDivergences = 0;        ///< solves whose price loop hit its
                                        ///< cap outside the budget tolerance
  std::vector<EpochIncident> incidents;

  // Cross-solve ProfileCache traffic over the whole run (all zero when
  // ServingOptions::crossSolveCache is off or the policy is not kApprox).
  long long profileCacheHits = 0;
  long long profileCacheMisses = 0;
  long long profileCacheInvalidations = 0;
  long long profileCacheContended = 0;  ///< shard-mutex contention events
  long long profileCacheShards = 0;     ///< shard count of the run's cache

  // LP work over the whole run, summed from SolveOutcome::lpCounters (all
  // zero for policies without an LP). used/repaired count every warm basis
  // the engine accepted — the cross-epoch slot AND the MIP's intra-solve
  // node-basis inheritance, so they are nonzero for MIP policies even with
  // lpWarmStarts off. Rejections can only come from the cross-epoch slot
  // (stale fingerprint/shape), so lpWarmStartsRejected is zero whenever
  // lpWarmStarts is off.
  long long lpPivots = 0;
  long long lpRefactorizations = 0;
  long long lpWarmStartsUsed = 0;      ///< warm basis feasible: phase 1 skipped
  long long lpWarmStartsRepaired = 0;  ///< warm basis installed, phase 1 ran
  long long lpWarmStartsRejected = 0;  ///< stale fingerprint/shape: cold solve
};

ServingStats runServing(const std::vector<Machine>& machines, Policy policy,
                        const ServingOptions& options);

/// Registry-name overload: `policy` may be any solver registered in
/// core/solver_registry.h that has the `integral` capability ("approx",
/// "edf", "edf3", "levels-opt", "mip-warm", ... — see `dsct_cli solvers`).
ServingStats runServing(const std::vector<Machine>& machines,
                        const std::string& policy,
                        const ServingOptions& options);

class PowerTrace;

/// Renewable-powered serving (paper Section 7, future work): each epoch's
/// energy budget is the energy the power trace supplies during that epoch
/// (options.energyBudgetPerEpoch is ignored). Unused energy is not stored —
/// a batteryless deployment; adding storage is a one-line change in the
/// budget accounting and deliberately left to the caller.
ServingStats runServing(const std::vector<Machine>& machines, Policy policy,
                        const ServingOptions& options,
                        const PowerTrace& supply);

ServingStats runServing(const std::vector<Machine>& machines,
                        const std::string& policy,
                        const ServingOptions& options,
                        const PowerTrace& supply);

}  // namespace dsct::sim
