#include "sim/cluster.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.h"

namespace dsct::sim {

namespace {

/// Pending simulator event; min-heap by (time, machine, sequence).
struct PendingEvent {
  double time;
  int machine;
  long sequence;
  EventKind kind;
  int task;
  double flops;
  bool interrupted = false;
};

struct Later {
  bool operator()(const PendingEvent& a, const PendingEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.machine != b.machine) return a.machine > b.machine;
    return a.sequence > b.sequence;
  }
};

}  // namespace

double FaultContext::cutSeconds(int machine) const {
  if (energyCutSeconds.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  DSCT_CHECK(machine >= 0 &&
             machine < static_cast<int>(energyCutSeconds.size()));
  return energyCutSeconds[static_cast<std::size_t>(machine)];
}

double CommModel::transferSeconds(int task) const {
  if (taskBytes.empty()) return 0.0;
  DSCT_CHECK(task >= 0 && task < static_cast<int>(taskBytes.size()));
  DSCT_CHECK(bytesPerSecond > 0.0);
  return taskBytes[static_cast<std::size_t>(task)] / bytesPerSecond;
}

double CommModel::transferJoules(int task) const {
  if (taskBytes.empty()) return 0.0;
  DSCT_CHECK(task >= 0 && task < static_cast<int>(taskBytes.size()));
  return taskBytes[static_cast<std::size_t>(task)] * joulesPerByte;
}

ExecutionResult executeSchedule(const Instance& inst,
                                const IntegralSchedule& schedule) {
  return executeSchedule(inst, schedule, CommModel{});
}

ExecutionResult executeSchedule(const Instance& inst,
                                const IntegralSchedule& schedule,
                                const CommModel& comm) {
  return executeSchedule(inst, schedule, comm, FaultContext{});
}

ExecutionResult executeSchedule(const Instance& inst,
                                const IntegralSchedule& schedule,
                                const CommModel& comm,
                                const FaultContext& faults) {
  DSCT_CHECK(schedule.numTasks() == inst.numTasks());
  DSCT_CHECK(comm.taskBytes.empty() ||
             static_cast<int>(comm.taskBytes.size()) == inst.numTasks());
  ExecutionResult result;
  result.executions.assign(static_cast<std::size_t>(inst.numTasks()), {});
  result.machineBusySeconds.assign(
      static_cast<std::size_t>(inst.numMachines()), 0.0);

  // Seed per-task records (dropped tasks keep floor accuracy).
  for (int j = 0; j < inst.numTasks(); ++j) {
    TaskExecution& exec = result.executions[static_cast<std::size_t>(j)];
    exec.task = j;
    exec.accuracy = inst.task(j).accuracy.value(0.0);
  }

  std::priority_queue<PendingEvent, std::vector<PendingEvent>, Later> queue;
  long sequence = 0;
  std::vector<double> transferEnergyAtStart(
      static_cast<std::size_t>(inst.numTasks()), 0.0);
  if (!faults.active()) {
    for (int r = 0; r < inst.numMachines(); ++r) {
      // Walk the machine's timeline re-deriving starts: each task's input
      // transfer is serialised on the machine's ingest link before execution.
      double clock = 0.0;
      for (const ScheduledTask& e : schedule.timeline(r)) {
        // A zero-work slot never fetches its input: schedulers may park a
        // starved task (e.g. one whose transfer exceeds its deadline) in a
        // zero-duration slot, and paying the transfer for it would serialise
        // dead bytes in front of real work.
        const double transfer =
            e.duration > 0.0 ? comm.transferSeconds(e.task) : 0.0;
        const double execStart = clock + transfer;
        const double execEnd = execStart + e.duration;
        const double flops = e.duration * inst.machine(r).speed;
        transferEnergyAtStart[static_cast<std::size_t>(e.task)] =
            e.duration > 0.0 ? comm.transferJoules(e.task) : 0.0;
        queue.push(
            {execStart, r, sequence++, EventKind::kTaskStart, e.task, 0.0});
        queue.push(
            {execEnd, r, sequence++, EventKind::kTaskFinish, e.task, flops});
        clock = execEnd;
      }
      queue.push({clock, r, sequence++, EventKind::kMachineIdle, -1, 0.0});
    }
  } else {
    const bool traceActive = faults.traceActive();
    for (int r = 0; r < inst.numMachines(); ++r) {
      const int tr = faults.traceMachine(r);
      // First crash at or after the epoch start, in local time; a machine
      // already down at the offset interrupts everything at local 0, and
      // everything from the crash to the end of the timeline is lost (the
      // machine rejoins only at the next epoch's replan). Battery exhaustion
      // (FaultContext::energyCutSeconds) cuts with identical semantics at
      // the earlier of the two instants.
      const double traceCrash =
          traceActive ? faults.trace->nextCrashAt(tr, faults.timeOffset) -
                            faults.timeOffset
                      : std::numeric_limits<double>::infinity();
      const double crashLocal = std::min(traceCrash, faults.cutSeconds(r));
      double clock = 0.0;
      for (const ScheduledTask& e : schedule.timeline(r)) {
        const double transfer =
            e.duration > 0.0 ? comm.transferSeconds(e.task) : 0.0;
        const double execStart = clock + transfer;
        const double execEnd = execStart + e.duration;
        clock = execEnd;
        if (execStart >= crashLocal) {
          TaskExecution& exec =
              result.executions[static_cast<std::size_t>(e.task)];
          exec.machine = r;
          exec.interrupted = true;
          ++result.interruptions;
          continue;
        }
        const bool cut = execEnd > crashLocal;
        const double finish = cut ? crashLocal : execEnd;
        // Straggler windows shrink delivered FLOPs, not the occupied slot.
        // The loss is subtracted from the scheduled duration rather than
        // re-deriving it from finish - execStart, so a task untouched by any
        // fault reproduces the default path's FLOPs bit for bit.
        const double occupied = cut ? finish - execStart : e.duration;
        const double lost =
            traceActive
                ? faults.trace->slowdownLossSeconds(
                      tr, faults.timeOffset + execStart,
                      faults.timeOffset + finish)
                : 0.0;
        const double flops =
            std::max(0.0, lost > 0.0 ? occupied - lost : occupied) *
            inst.machine(r).speed;
        transferEnergyAtStart[static_cast<std::size_t>(e.task)] =
            e.duration > 0.0 ? comm.transferJoules(e.task) : 0.0;
        queue.push(
            {execStart, r, sequence++, EventKind::kTaskStart, e.task, 0.0});
        queue.push(
            {finish, r, sequence++, EventKind::kTaskFinish, e.task, flops,
             cut});
      }
      const double drained =
          std::min(std::max(crashLocal, 0.0), clock);
      queue.push({drained, r, sequence++, EventKind::kMachineIdle, -1, 0.0});
    }
  }

  double energy = 0.0;
  while (!queue.empty()) {
    const PendingEvent e = queue.top();
    queue.pop();
    switch (e.kind) {
      case EventKind::kTaskStart: {
        TaskExecution& exec =
            result.executions[static_cast<std::size_t>(e.task)];
        exec.machine = e.machine;
        exec.start = e.time;
        energy += transferEnergyAtStart[static_cast<std::size_t>(e.task)];
        result.trace.append(
            {e.time, EventKind::kTaskStart, e.task, e.machine, 0.0, energy});
        break;
      }
      case EventKind::kTaskFinish: {
        TaskExecution& exec =
            result.executions[static_cast<std::size_t>(e.task)];
        exec.finish = e.time;
        exec.flops = e.flops;
        exec.executed = true;
        if (e.interrupted) {
          exec.interrupted = true;
          ++result.interruptions;
        }
        exec.accuracy = inst.task(e.task).accuracy.value(e.flops);
        const double busy = exec.finish - exec.start;
        result.machineBusySeconds[static_cast<std::size_t>(e.machine)] += busy;
        energy += busy * inst.machine(e.machine).power();
        result.makespan = std::max(result.makespan, e.time);
        result.trace.append({e.time, EventKind::kTaskFinish, e.task, e.machine,
                             e.flops, energy});
        if (e.time > inst.task(e.task).deadline + 1e-9) {
          exec.deadlineMet = false;
          ++result.deadlineMisses;
          result.trace.append({e.time, EventKind::kDeadlineMiss, e.task,
                               e.machine, e.flops, energy});
        }
        break;
      }
      case EventKind::kMachineIdle:
        result.trace.append(
            {e.time, EventKind::kMachineIdle, -1, e.machine, 0.0, energy});
        break;
      case EventKind::kDeadlineMiss:
        break;  // never enqueued
    }
  }

  result.totalEnergy = energy;
  for (const TaskExecution& exec : result.executions) {
    result.totalAccuracy += exec.accuracy;
  }
  return result;
}

Instance commAwareInstance(const Instance& inst, const CommModel& comm) {
  double commEnergy = 0.0;
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(inst.numTasks()));
  for (int j = 0; j < inst.numTasks(); ++j) {
    commEnergy += comm.transferJoules(j);
    Task task = inst.task(j);
    const double transfer = comm.transferSeconds(j);
    if (transfer >= task.deadline) {
      // The input cannot arrive before the deadline. Instance rejects
      // non-positive deadlines, so keep a tiny positive one, and flatten the
      // accuracy curve to its floor: with zero marginal gain everywhere no
      // scheduler has a reason to assign the task any work.
      task.deadline = 1e-9;
      const double floor = task.accuracy.value(0.0);
      task.accuracy = PiecewiseLinearAccuracy::fromPoints(
          {0.0, task.accuracy.fmax()}, {floor, floor});
    } else {
      task.deadline -= transfer;
    }
    tasks.push_back(std::move(task));
  }
  const double budget = std::max(0.0, inst.energyBudget() - commEnergy);
  return Instance(std::move(tasks), inst.machines(), budget);
}

}  // namespace dsct::sim
