#include "sim/cluster.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace dsct::sim {

namespace {

/// Pending simulator event; min-heap by (time, machine, sequence).
struct PendingEvent {
  double time;
  int machine;
  long sequence;
  EventKind kind;
  int task;
  double flops;
};

struct Later {
  bool operator()(const PendingEvent& a, const PendingEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.machine != b.machine) return a.machine > b.machine;
    return a.sequence > b.sequence;
  }
};

}  // namespace

double CommModel::transferSeconds(int task) const {
  if (taskBytes.empty()) return 0.0;
  DSCT_CHECK(task >= 0 && task < static_cast<int>(taskBytes.size()));
  DSCT_CHECK(bytesPerSecond > 0.0);
  return taskBytes[static_cast<std::size_t>(task)] / bytesPerSecond;
}

double CommModel::transferJoules(int task) const {
  if (taskBytes.empty()) return 0.0;
  DSCT_CHECK(task >= 0 && task < static_cast<int>(taskBytes.size()));
  return taskBytes[static_cast<std::size_t>(task)] * joulesPerByte;
}

ExecutionResult executeSchedule(const Instance& inst,
                                const IntegralSchedule& schedule) {
  return executeSchedule(inst, schedule, CommModel{});
}

ExecutionResult executeSchedule(const Instance& inst,
                                const IntegralSchedule& schedule,
                                const CommModel& comm) {
  DSCT_CHECK(schedule.numTasks() == inst.numTasks());
  DSCT_CHECK(comm.taskBytes.empty() ||
             static_cast<int>(comm.taskBytes.size()) == inst.numTasks());
  ExecutionResult result;
  result.executions.assign(static_cast<std::size_t>(inst.numTasks()), {});
  result.machineBusySeconds.assign(
      static_cast<std::size_t>(inst.numMachines()), 0.0);

  // Seed per-task records (dropped tasks keep floor accuracy).
  for (int j = 0; j < inst.numTasks(); ++j) {
    TaskExecution& exec = result.executions[static_cast<std::size_t>(j)];
    exec.task = j;
    exec.accuracy = inst.task(j).accuracy.value(0.0);
  }

  std::priority_queue<PendingEvent, std::vector<PendingEvent>, Later> queue;
  long sequence = 0;
  std::vector<double> transferEnergyAtStart(
      static_cast<std::size_t>(inst.numTasks()), 0.0);
  for (int r = 0; r < inst.numMachines(); ++r) {
    // Walk the machine's timeline re-deriving starts: each task's input
    // transfer is serialised on the machine's ingest link before execution.
    double clock = 0.0;
    for (const ScheduledTask& e : schedule.timeline(r)) {
      const double transfer = comm.transferSeconds(e.task);
      const double execStart = clock + transfer;
      const double execEnd = execStart + e.duration;
      const double flops = e.duration * inst.machine(r).speed;
      transferEnergyAtStart[static_cast<std::size_t>(e.task)] =
          comm.transferJoules(e.task);
      queue.push(
          {execStart, r, sequence++, EventKind::kTaskStart, e.task, 0.0});
      queue.push(
          {execEnd, r, sequence++, EventKind::kTaskFinish, e.task, flops});
      clock = execEnd;
    }
    queue.push({clock, r, sequence++, EventKind::kMachineIdle, -1, 0.0});
  }

  double energy = 0.0;
  while (!queue.empty()) {
    const PendingEvent e = queue.top();
    queue.pop();
    switch (e.kind) {
      case EventKind::kTaskStart: {
        TaskExecution& exec =
            result.executions[static_cast<std::size_t>(e.task)];
        exec.machine = e.machine;
        exec.start = e.time;
        energy += transferEnergyAtStart[static_cast<std::size_t>(e.task)];
        result.trace.append(
            {e.time, EventKind::kTaskStart, e.task, e.machine, 0.0, energy});
        break;
      }
      case EventKind::kTaskFinish: {
        TaskExecution& exec =
            result.executions[static_cast<std::size_t>(e.task)];
        exec.finish = e.time;
        exec.flops = e.flops;
        exec.executed = true;
        exec.accuracy = inst.task(e.task).accuracy.value(e.flops);
        const double busy = exec.finish - exec.start;
        result.machineBusySeconds[static_cast<std::size_t>(e.machine)] += busy;
        energy += busy * inst.machine(e.machine).power();
        result.makespan = std::max(result.makespan, e.time);
        result.trace.append({e.time, EventKind::kTaskFinish, e.task, e.machine,
                             e.flops, energy});
        if (e.time > inst.task(e.task).deadline + 1e-9) {
          exec.deadlineMet = false;
          ++result.deadlineMisses;
          result.trace.append({e.time, EventKind::kDeadlineMiss, e.task,
                               e.machine, e.flops, energy});
        }
        break;
      }
      case EventKind::kMachineIdle:
        result.trace.append(
            {e.time, EventKind::kMachineIdle, -1, e.machine, 0.0, energy});
        break;
      case EventKind::kDeadlineMiss:
        break;  // never enqueued
    }
  }

  result.totalEnergy = energy;
  for (const TaskExecution& exec : result.executions) {
    result.totalAccuracy += exec.accuracy;
  }
  return result;
}

Instance commAwareInstance(const Instance& inst, const CommModel& comm) {
  double commEnergy = 0.0;
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(inst.numTasks()));
  for (int j = 0; j < inst.numTasks(); ++j) {
    commEnergy += comm.transferJoules(j);
    Task task = inst.task(j);
    task.deadline =
        std::max(1e-9, task.deadline - comm.transferSeconds(j));
    tasks.push_back(std::move(task));
  }
  const double budget = std::max(0.0, inst.energyBudget() - commEnergy);
  return Instance(std::move(tasks), inst.machines(), budget);
}

}  // namespace dsct::sim
