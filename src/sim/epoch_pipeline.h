// Background solve lane for the serving loop's double-buffered epochs.
//
// One worker thread (a PR 4 bounded-queue ThreadPool of size 1) runs epoch
// solves off the driver thread: while epoch k's schedule executes on the
// simulated cluster, epoch k+1's solve is already in flight. The driver
// always drains the returned future before reusing any of the referenced
// state — deadlines are enforced by the cooperative CancelToken inside the
// SolveContext, never by abandoning the future — so at most one background
// solve exists at a time and shared resources (the cross-solve ProfileCache,
// the solver worker pool) are never touched from two threads at once.
#pragma once

#include <future>

#include "core/solver_api.h"
#include "sched/types.h"
#include "util/thread_pool.h"

namespace dsct::sim {

class AsyncSolvePipeline {
 public:
  AsyncSolvePipeline();

  /// Run `solver.solve(inst, context)` on the pipeline thread. The caller
  /// must keep `solver`, `inst`, and `context` (including the CancelToken
  /// that `context.cancel` points at) alive until the future is drained;
  /// exceptions thrown by the solve propagate out of `future::get()`.
  std::future<SolveOutcome> submit(const Solver& solver, const Instance& inst,
                                   const SolveContext& context);

 private:
  ThreadPool pool_;
};

}  // namespace dsct::sim
