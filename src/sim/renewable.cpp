#include "sim/renewable.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace dsct::sim {

PowerTrace::PowerTrace(std::vector<double> times, std::vector<double> watts)
    : times_(std::move(times)), watts_(std::move(watts)) {
  DSCT_CHECK_MSG(!times_.empty(), "empty power trace");
  DSCT_CHECK_MSG(times_.size() == watts_.size(), "trace arity mismatch");
  DSCT_CHECK_MSG(times_.front() == 0.0, "trace must start at t=0");
  for (std::size_t i = 0; i + 1 < times_.size(); ++i) {
    DSCT_CHECK_MSG(times_[i] < times_[i + 1],
                   "trace times must be strictly increasing");
  }
  for (double w : watts_) {
    DSCT_CHECK_MSG(w >= 0.0, "negative power in trace");
  }
}

PowerTrace PowerTrace::constant(double watts) {
  return PowerTrace({0.0}, {watts});
}

PowerTrace PowerTrace::solarDay(double peakWatts, double dayLengthSeconds,
                                double sunriseFraction, double sunsetFraction,
                                int samples, double noise, Rng& rng) {
  DSCT_CHECK(peakWatts >= 0.0);
  DSCT_CHECK(dayLengthSeconds > 0.0);
  DSCT_CHECK(samples >= 2);
  DSCT_CHECK(0.0 <= sunriseFraction && sunriseFraction < sunsetFraction &&
             sunsetFraction <= 1.0);
  DSCT_CHECK(noise >= 0.0 && noise < 1.0);
  std::vector<double> times;
  std::vector<double> watts;
  times.reserve(static_cast<std::size_t>(samples));
  watts.reserve(static_cast<std::size_t>(samples));
  const double sunrise = sunriseFraction * dayLengthSeconds;
  const double sunset = sunsetFraction * dayLengthSeconds;
  for (int i = 0; i < samples; ++i) {
    const double t = dayLengthSeconds * static_cast<double>(i) /
                     static_cast<double>(samples);
    times.push_back(t);
    if (t < sunrise || t >= sunset) {
      watts.push_back(0.0);
      continue;
    }
    const double phase = (t - sunrise) / (sunset - sunrise);
    const double clearSky = peakWatts * std::sin(std::numbers::pi * phase);
    const double flicker =
        noise > 0.0 ? rng.uniform(1.0 - noise, 1.0 + noise) : 1.0;
    watts.push_back(std::max(0.0, clearSky * flicker));
  }
  return PowerTrace(std::move(times), std::move(watts));
}

double PowerTrace::powerAt(double t) const {
  if (t < 0.0) return 0.0;
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto idx = static_cast<std::size_t>(it - times_.begin()) - 1;
  return watts_[idx];
}

double PowerTrace::energyBetween(double t0, double t1) const {
  DSCT_CHECK_MSG(t0 <= t1, "inverted interval");
  t0 = std::max(0.0, t0);
  t1 = std::max(0.0, t1);
  if (t0 >= t1) return 0.0;
  double energy = 0.0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    const double segStart = times_[i];
    const double segEnd =
        (i + 1 < times_.size()) ? times_[i + 1]
                                : std::max(t1, segStart);
    const double lo = std::max(t0, segStart);
    const double hi = std::min(t1, segEnd);
    if (hi > lo) energy += watts_[i] * (hi - lo);
    if (segEnd >= t1) break;
  }
  return energy;
}

double PowerTrace::peakPower() const {
  return *std::max_element(watts_.begin(), watts_.end());
}

}  // namespace dsct::sim
