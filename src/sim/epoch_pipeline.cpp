#include "sim/epoch_pipeline.h"

namespace dsct::sim {

// Queue capacity 1: the driver submits the next epoch only after draining
// the previous future, so a deeper queue would never fill.
AsyncSolvePipeline::AsyncSolvePipeline() : pool_(1, 1) {}

std::future<SolveOutcome> AsyncSolvePipeline::submit(
    const Solver& solver, const Instance& inst, const SolveContext& context) {
  return pool_.submit(
      [&solver, &inst, &context] { return solver.solve(inst, context); });
}

}  // namespace dsct::sim
