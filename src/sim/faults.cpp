#include "sim/faults.h"

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/rng.h"

namespace dsct::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Alternating renewal process: up-times ~ Exp(1/meanUp), down-times
/// ~ Exp(1/meanDown), clipped to [0, horizon). Each machine gets its own
/// derived seed so traces are stable under machine-count changes.
std::vector<FaultInterval> sampleWindows(double meanUp, double meanDown,
                                         double horizon, std::uint64_t seed) {
  std::vector<FaultInterval> windows;
  if (meanUp <= 0.0 || meanDown <= 0.0 || horizon <= 0.0) return windows;
  Rng rng(seed);
  double t = rng.exponential(1.0 / meanUp);
  while (t < horizon) {
    const double down = rng.exponential(1.0 / meanDown);
    windows.push_back({t, std::min(horizon, t + down)});
    t += down + rng.exponential(1.0 / meanUp);
  }
  return windows;
}

void checkSortedDisjoint(const std::vector<std::vector<FaultInterval>>& all) {
  for (const auto& windows : all) {
    for (std::size_t i = 0; i < windows.size(); ++i) {
      DSCT_CHECK_MSG(windows[i].start <= windows[i].end,
                     "fault interval with negative length");
      if (i > 0) {
        DSCT_CHECK_MSG(windows[i - 1].end <= windows[i].start,
                       "fault intervals must be sorted and disjoint");
      }
    }
  }
}

}  // namespace

FaultTrace::FaultTrace(std::vector<std::vector<FaultInterval>> downtime,
                       std::vector<std::vector<FaultInterval>> slowdown,
                       double slowdownFactor,
                       std::vector<double> budgetFactors,
                       std::vector<long long> injectPolicyFailureEpochs,
                       int maxRetries, int injectFailureDepth)
    : enabled_(true),
      slowdownFactor_(slowdownFactor),
      maxRetries_(maxRetries),
      injectFailureDepth_(injectFailureDepth),
      downtime_(std::move(downtime)),
      slowdown_(std::move(slowdown)),
      budgetFactors_(std::move(budgetFactors)),
      injectedFailures_(std::move(injectPolicyFailureEpochs)) {
  DSCT_CHECK_MSG(slowdownFactor_ > 0.0 && slowdownFactor_ <= 1.0,
                 "slowdownFactor must be in (0, 1]");
  DSCT_CHECK(maxRetries_ >= 0);
  DSCT_CHECK(injectFailureDepth_ >= 1);
  if (slowdown_.empty()) {
    slowdown_.resize(downtime_.size());
  }
  DSCT_CHECK(slowdown_.size() == downtime_.size());
  checkSortedDisjoint(downtime_);
  checkSortedDisjoint(slowdown_);
  std::sort(injectedFailures_.begin(), injectedFailures_.end());
}

FaultTrace FaultTrace::generate(int numMachines, double horizonSeconds,
                                long long numEpochs,
                                const FaultOptions& options) {
  DSCT_CHECK(numMachines > 0);
  // Reject degenerate option fields loudly instead of silently sampling an
  // empty or nonsensical trace.
  DSCT_CHECK_MSG(options.mtbfSeconds >= 0.0,
                 "mtbfSeconds must be non-negative (" << options.mtbfSeconds
                                                      << ")");
  DSCT_CHECK_MSG(options.mttrSeconds >= 0.0,
                 "mttrSeconds must be non-negative (" << options.mttrSeconds
                                                      << ")");
  DSCT_CHECK_MSG(options.mttrSeconds > 0.0 || options.mtbfSeconds <= 0.0,
                 "mttrSeconds must be positive when crashes are enabled");
  DSCT_CHECK_MSG(options.slowdownMtbfSeconds >= 0.0,
                 "slowdownMtbfSeconds must be non-negative ("
                     << options.slowdownMtbfSeconds << ")");
  DSCT_CHECK_MSG(options.slowdownMeanSeconds >= 0.0,
                 "slowdownMeanSeconds must be non-negative ("
                     << options.slowdownMeanSeconds << ")");
  DSCT_CHECK_MSG(
      options.slowdownMeanSeconds > 0.0 || options.slowdownMtbfSeconds <= 0.0,
      "slowdownMeanSeconds must be positive when stragglers are enabled");
  DSCT_CHECK_MSG(options.slowdownFactor > 0.0 && options.slowdownFactor <= 1.0,
                 "slowdownFactor must be in (0, 1] ("
                     << options.slowdownFactor << ")");
  DSCT_CHECK_MSG(options.budgetShockProbability >= 0.0 &&
                     options.budgetShockProbability <= 1.0,
                 "budgetShockProbability must be in [0, 1] ("
                     << options.budgetShockProbability << ")");
  DSCT_CHECK_MSG(options.budgetShockFactor >= 0.0,
                 "budgetShockFactor must be non-negative ("
                     << options.budgetShockFactor << ")");
  DSCT_CHECK_MSG(options.maxRetries >= 0, "maxRetries must be non-negative ("
                                              << options.maxRetries << ")");
  std::vector<std::vector<FaultInterval>> downtime;
  std::vector<std::vector<FaultInterval>> slowdown;
  downtime.reserve(static_cast<std::size_t>(numMachines));
  slowdown.reserve(static_cast<std::size_t>(numMachines));
  for (int r = 0; r < numMachines; ++r) {
    // Distinct SplitMix64 streams per (machine, process kind).
    downtime.push_back(sampleWindows(
        options.mtbfSeconds, options.mttrSeconds, horizonSeconds,
        deriveSeed(options.seed, static_cast<std::uint64_t>(2 * r))));
    slowdown.push_back(sampleWindows(
        options.slowdownMtbfSeconds, options.slowdownMeanSeconds,
        horizonSeconds,
        deriveSeed(options.seed, static_cast<std::uint64_t>(2 * r + 1))));
  }
  std::vector<double> budgetFactors;
  if (options.budgetShockProbability > 0.0 && numEpochs > 0) {
    Rng rng(deriveSeed(options.seed, 0xB0D6E7ULL));
    budgetFactors.reserve(static_cast<std::size_t>(numEpochs));
    for (long long e = 0; e < numEpochs; ++e) {
      budgetFactors.push_back(rng.bernoulli(options.budgetShockProbability)
                                  ? options.budgetShockFactor
                                  : 1.0);
    }
  }
  return FaultTrace(std::move(downtime), std::move(slowdown),
                    options.slowdownMtbfSeconds > 0.0 ? options.slowdownFactor
                                                      : 1.0,
                    std::move(budgetFactors),
                    options.injectPolicyFailureEpochs, options.maxRetries,
                    options.injectFailureDepth);
}

bool FaultTrace::aliveAt(int machine, double t) const {
  if (!enabled_) return true;
  for (const FaultInterval& w : downtime(machine)) {
    if (t < w.start) return true;  // sorted: no earlier window covers t
    if (t < w.end) return false;
  }
  return true;
}

double FaultTrace::nextCrashAt(int machine, double t) const {
  if (!enabled_) return kInf;
  for (const FaultInterval& w : downtime(machine)) {
    if (t < w.start) return w.start;
    if (t < w.end) return t;  // already down
  }
  return kInf;
}

double FaultTrace::effectiveSeconds(int machine, double t0, double t1) const {
  DSCT_CHECK(t1 >= t0);
  return (t1 - t0) - slowdownLossSeconds(machine, t0, t1);
}

double FaultTrace::slowdownLossSeconds(int machine, double t0,
                                       double t1) const {
  double lost = 0.0;
  if (!enabled_ || slowdownFactor_ >= 1.0) return lost;
  for (const FaultInterval& w : slowdown(machine)) {
    if (w.start >= t1) break;
    const double overlap = std::min(t1, w.end) - std::max(t0, w.start);
    if (overlap > 0.0) lost += overlap * (1.0 - slowdownFactor_);
  }
  return lost;
}

double FaultTrace::budgetFactor(long long epoch) const {
  if (!enabled_ || epoch < 0 ||
      epoch >= static_cast<long long>(budgetFactors_.size())) {
    return 1.0;
  }
  return budgetFactors_[static_cast<std::size_t>(epoch)];
}

bool FaultTrace::policyFailureInjected(long long epoch) const {
  return enabled_ && std::binary_search(injectedFailures_.begin(),
                                        injectedFailures_.end(), epoch);
}

const std::vector<FaultInterval>& FaultTrace::downtime(int machine) const {
  DSCT_CHECK(machine >= 0 && machine < numMachines());
  return downtime_[static_cast<std::size_t>(machine)];
}

const std::vector<FaultInterval>& FaultTrace::slowdown(int machine) const {
  DSCT_CHECK(machine >= 0 && machine < numMachines());
  return slowdown_[static_cast<std::size_t>(machine)];
}

}  // namespace dsct::sim
