#include "sim/trace.h"

#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace dsct::sim {

const char* toString(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskStart: return "start";
    case EventKind::kTaskFinish: return "finish";
    case EventKind::kDeadlineMiss: return "deadline_miss";
    case EventKind::kMachineIdle: return "idle";
  }
  return "unknown";
}

void Trace::append(TraceEvent event) {
  DSCT_CHECK_MSG(events_.empty() || event.time >= events_.back().time - 1e-9,
                 "trace events must be time-ordered");
  events_.push_back(event);
}

std::vector<TraceEvent> Trace::eventsOfKind(EventKind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> Trace::eventsOfMachine(int machine) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.machine == machine) out.push_back(e);
  }
  return out;
}

std::string Trace::toString() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6);
  for (const TraceEvent& e : events_) {
    os << '[' << e.time << "] " << dsct::sim::toString(e.kind)
       << " task=" << e.task
       << " machine=" << e.machine << " flops=" << e.flops
       << " energy=" << e.energy << '\n';
  }
  return os.str();
}

}  // namespace dsct::sim
