#include "sim/availability.h"

#include <algorithm>

#include "sim/faults.h"
#include "util/check.h"
#include "util/rng.h"

namespace dsct::sim {

namespace {

/// Absence windows for one machine: present stretches ~ Exp(1/meanPresent),
/// absences ~ Exp(1/meanAbsent), clipped to [0, horizon). Same alternating
/// renewal idiom as the fault layer's sampleWindows, with a per-machine
/// derived seed so traces are stable under machine-count changes.
std::vector<FaultInterval> sampleAbsences(double meanPresent,
                                          double meanAbsent, double horizon,
                                          std::uint64_t seed) {
  std::vector<FaultInterval> windows;
  if (meanPresent <= 0.0 || meanAbsent <= 0.0 || horizon <= 0.0) {
    return windows;
  }
  Rng rng(seed);
  double t = rng.exponential(1.0 / meanPresent);
  while (t < horizon) {
    const double away = rng.exponential(1.0 / meanAbsent);
    windows.push_back({t, std::min(horizon, t + away)});
    t += away + rng.exponential(1.0 / meanPresent);
  }
  return windows;
}

void validateOptions(const AvailabilityOptions& options) {
  DSCT_CHECK_MSG(options.departMtbfSeconds >= 0.0,
                 "departMtbfSeconds must be non-negative ("
                     << options.departMtbfSeconds << ")");
  DSCT_CHECK_MSG(
      options.departMeanSeconds > 0.0 || options.departMtbfSeconds <= 0.0,
      "departMeanSeconds must be positive when departures are enabled ("
          << options.departMeanSeconds << ")");
  DSCT_CHECK_MSG(options.batteryCapacityJoules >= 0.0,
                 "batteryCapacityJoules must be non-negative ("
                     << options.batteryCapacityJoules << ")");
  DSCT_CHECK_MSG(options.batteryInitialFraction >= 0.0 &&
                     options.batteryInitialFraction <= 1.0,
                 "batteryInitialFraction must be in [0, 1] ("
                     << options.batteryInitialFraction << ")");
  DSCT_CHECK_MSG(
      options.rechargeWatts >= 0.0,
      "rechargeWatts must be non-negative (" << options.rechargeWatts << ")");
}

}  // namespace

AvailabilityTrace::AvailabilityTrace(std::vector<std::vector<bool>> absent,
                                     AvailabilityOptions options)
    : enabled_(true), options_(options), absent_(std::move(absent)) {
  validateOptions(options_);
  numEpochs_ =
      absent_.empty() ? 0 : static_cast<long long>(absent_.front().size());
  for (const auto& machine : absent_) {
    DSCT_CHECK_MSG(static_cast<long long>(machine.size()) == numEpochs_,
                   "every machine must cover the same number of epochs");
  }
}

AvailabilityTrace AvailabilityTrace::generate(int numMachines,
                                              double horizonSeconds,
                                              long long numEpochs,
                                              double epochSeconds,
                                              const AvailabilityOptions&
                                                  options) {
  DSCT_CHECK(numMachines > 0);
  DSCT_CHECK(numEpochs >= 0);
  DSCT_CHECK(epochSeconds > 0.0);
  validateOptions(options);
  std::vector<std::vector<bool>> absent(
      static_cast<std::size_t>(numMachines),
      std::vector<bool>(static_cast<std::size_t>(numEpochs), false));
  for (int m = 0; m < numMachines; ++m) {
    const std::vector<FaultInterval> windows = sampleAbsences(
        options.departMtbfSeconds, options.departMeanSeconds, horizonSeconds,
        deriveSeed(options.seed, static_cast<std::uint64_t>(m)));
    // Snap to whole epochs: machine m is departed for epoch e iff an absence
    // window covers the epoch's start.
    for (const FaultInterval& w : windows) {
      for (long long e = 0; e < numEpochs; ++e) {
        const double epochStart = static_cast<double>(e) * epochSeconds;
        if (epochStart >= w.start && epochStart < w.end) {
          absent[static_cast<std::size_t>(m)][static_cast<std::size_t>(e)] =
              true;
        }
      }
    }
  }
  return AvailabilityTrace(std::move(absent), options);
}

bool AvailabilityTrace::presentInEpoch(int machine, long long epoch) const {
  if (!enabled_ || epoch < 0 || epoch >= numEpochs_) return true;
  DSCT_CHECK(machine >= 0 && machine < numMachines());
  return !absent_[static_cast<std::size_t>(machine)]
                 [static_cast<std::size_t>(epoch)];
}

int AvailabilityTrace::absentCount(long long epoch) const {
  if (!enabled_ || epoch < 0 || epoch >= numEpochs_) return 0;
  int count = 0;
  for (const auto& machine : absent_) {
    if (machine[static_cast<std::size_t>(epoch)]) ++count;
  }
  return count;
}

BatteryModel::BatteryModel(int numMachines,
                           const AvailabilityOptions& options)
    : capacity_(options.batteryCapacityJoules),
      rechargeWatts_(options.rechargeWatts) {
  validateOptions(options);
  DSCT_CHECK(numMachines > 0);
  if (capacity_ <= 0.0) return;  // stays inactive
  charge_.assign(static_cast<std::size_t>(numMachines),
                 capacity_ * options.batteryInitialFraction);
}

double BatteryModel::charge(int machine) const {
  DSCT_CHECK(machine >= 0 &&
             machine < static_cast<int>(charge_.size()));
  return charge_[static_cast<std::size_t>(machine)];
}

void BatteryModel::drain(int machine, double joules) {
  DSCT_CHECK(machine >= 0 &&
             machine < static_cast<int>(charge_.size()));
  DSCT_CHECK(joules >= 0.0);
  double& c = charge_[static_cast<std::size_t>(machine)];
  c = std::max(0.0, c - joules);
}

void BatteryModel::recharge(double seconds) {
  DSCT_CHECK(seconds >= 0.0);
  if (rechargeWatts_ <= 0.0) return;
  const double credit = rechargeWatts_ * seconds;
  for (double& c : charge_) c = std::min(capacity_, c + credit);
}

}  // namespace dsct::sim
