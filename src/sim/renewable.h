// Renewable power supply traces (paper Section 7, future work #1).
//
// A PowerTrace is piecewise-constant available power over time; per-epoch
// energy budgets for the serving driver are obtained by integrating the
// trace. Includes a solar-day generator (half-sine between sunrise and
// sunset with multiplicative noise) for green-datacenter scenarios.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace dsct::sim {

class PowerTrace {
 public:
  /// Piecewise-constant: power watts[i] holds on [times[i], times[i+1]),
  /// watts.back() holds from times.back() on. times must start at 0 and be
  /// strictly increasing; watts non-negative.
  PowerTrace(std::vector<double> times, std::vector<double> watts);

  static PowerTrace constant(double watts);

  /// Half-sine solar profile over [0, dayLength]: 0 before sunrise/after
  /// sunset, peakWatts at solar noon; `samples` steps; multiplicative noise
  /// uniform in [1−noise, 1+noise] (cloud flicker).
  static PowerTrace solarDay(double peakWatts, double dayLengthSeconds,
                             double sunriseFraction, double sunsetFraction,
                             int samples, double noise, Rng& rng);

  /// Instantaneous available power (W) at time t (clamped below 0 to 0).
  double powerAt(double t) const;

  /// ∫ power dt over [t0, t1] in Joules.
  double energyBetween(double t0, double t1) const;

  std::size_t numSteps() const { return times_.size(); }
  double peakPower() const;

 private:
  std::vector<double> times_;
  std::vector<double> watts_;
};

}  // namespace dsct::sim
