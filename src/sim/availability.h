// Availability layer for volunteer/edge fleets (BOINC-style deployments).
//
// Two orthogonal extensions of the machine model, layered on top of the
// fault-injection substrate of sim/faults:
//
//  * Departure/return windows: machines that leave the fleet for *whole
//    scheduling epochs* and come back later. Unlike a crash (which cuts a
//    running slice mid-epoch and is replanned around), a departed machine is
//    simply excluded from the epoch's instance — no work is assigned, no
//    interruption happens, and the machine rejoins silently at its return
//    epoch.
//  * A battery model: each machine carries an energy store that drains in
//    proportion to the energy of the work it actually executes and recharges
//    at a fixed rate every epoch (also while departed — a volunteer device
//    charging at home). The machine's *effective* per-epoch contribution is
//    its current charge, and the global budget B is capped at
//    min(B, Σ_present charge_m) when AvailabilityOptions::capGlobalBudget
//    is set.
//
// Like FaultTrace, an AvailabilityTrace is a pure function of
// (AvailabilityOptions, machine count, horizon): two generate() calls with
// the same seed produce bit-identical departure schedules and battery
// parameters regardless of anything the scheduler later decides. Battery
// *state* (charge histories under drain) lives in BatteryModel, owned by the
// serving loop. See DESIGN.md §15.
#pragma once

#include <cstdint>
#include <vector>

namespace dsct::sim {

struct AvailabilityOptions {
  /// Master switch. When false, runServing draws no availability RNG and
  /// takes the exact pre-availability code path (regression-pinned).
  bool enabled = false;
  /// Seed for the departure stream, independent of the workload and fault
  /// seeds so each layer can be replayed in isolation.
  std::uint64_t seed = 2025;

  /// Mean present stretch between departures (s); 0 disables departures,
  /// negative values are rejected loudly.
  double departMtbfSeconds = 0.0;
  /// Mean absence length (s); must be positive when departures are enabled.
  double departMeanSeconds = 1.0;

  /// Per-machine battery capacity (J); 0 disables the battery model,
  /// negative values are rejected loudly.
  double batteryCapacityJoules = 0.0;
  /// Initial charge as a fraction of capacity, in [0, 1].
  double batteryInitialFraction = 1.0;
  /// Recharge rate (J/s), credited every epoch — present or departed — and
  /// clamped at capacity.
  double rechargeWatts = 0.0;
  /// Cap the per-epoch global energy budget at the fleet's total stored
  /// energy: B_epoch = min(B_epoch, Σ_present charge_m).
  bool capGlobalBudget = true;

  friend bool operator==(const AvailabilityOptions&,
                         const AvailabilityOptions&) = default;
};

/// Seeded, deterministic per-machine departure schedule at whole-epoch
/// granularity, plus the (immutable) battery parameters.
class AvailabilityTrace {
 public:
  /// Disabled trace: every machine present in every epoch, no battery.
  AvailabilityTrace() = default;

  /// Explicit trace for tests: `absent[m][e]` marks machine m departed for
  /// epoch e. All machines must cover the same number of epochs.
  AvailabilityTrace(std::vector<std::vector<bool>> absent,
                    AvailabilityOptions options);

  /// Sample a trace over [0, horizonSeconds) for `numMachines` machines and
  /// `numEpochs` epochs of `epochSeconds` each. Departure windows follow an
  /// alternating renewal process (present ~ Exp(1/departMtbf), absent
  /// ~ Exp(1/departMean)) snapped to whole epochs: a machine is departed
  /// for epoch e iff an absence window covers the epoch's start. Option
  /// fields are validated loudly (DSCT_CHECK) before any sampling.
  static AvailabilityTrace generate(int numMachines, double horizonSeconds,
                                    long long numEpochs, double epochSeconds,
                                    const AvailabilityOptions& options);

  bool enabled() const { return enabled_; }
  int numMachines() const { return static_cast<int>(absent_.size()); }
  long long numEpochs() const { return numEpochs_; }

  /// Is `machine` part of the fleet for scheduling epoch `epoch`? True when
  /// the trace is disabled or the epoch is out of range.
  bool presentInEpoch(int machine, long long epoch) const;

  /// Number of machines departed for `epoch`.
  int absentCount(long long epoch) const;

  /// Battery model switched on (capacity > 0 on an enabled trace)?
  bool batteryActive() const {
    return enabled_ && options_.batteryCapacityJoules > 0.0;
  }

  const AvailabilityOptions& options() const { return options_; }

  friend bool operator==(const AvailabilityTrace&,
                         const AvailabilityTrace&) = default;

 private:
  bool enabled_ = false;
  long long numEpochs_ = 0;
  AvailabilityOptions options_{};
  std::vector<std::vector<bool>> absent_;  ///< [machine][epoch]
};

/// Runtime per-machine energy store. Owned by the serving loop: charge
/// drains by the energy each epoch's execution actually consumed and
/// recharges by rechargeWatts · epochSeconds at every epoch boundary. The
/// model is inactive (active() == false, no storage) unless constructed
/// from a trace with batteryActive().
class BatteryModel {
 public:
  /// Inactive model (no battery accounting).
  BatteryModel() = default;

  /// Per-machine stores at capacity · initialFraction.
  BatteryModel(int numMachines, const AvailabilityOptions& options);

  bool active() const { return !charge_.empty(); }
  double capacityJoules() const { return capacity_; }

  /// Current stored energy of `machine` (J).
  double charge(int machine) const;

  /// Remove `joules` from `machine`'s store (clamped at 0).
  void drain(int machine, double joules);

  /// Credit every machine with rechargeWatts · seconds, clamped at
  /// capacity. Exact no-op when the recharge rate is 0.
  void recharge(double seconds);

 private:
  double capacity_ = 0.0;
  double rechargeWatts_ = 0.0;
  std::vector<double> charge_;
};

}  // namespace dsct::sim
