// Declarative scenario DSL: text files describing whole serving experiments.
//
// A scenario file is a sequence of line-oriented blocks (DESIGN.md §16):
//
//   scenario {                      # optional run-wide settings
//     name: steady-web
//     seed: 42
//   }
//   machine class {                 # one or more
//     name: pool
//     gpus: T4, V100                # catalog entries, each replicated...
//     count: 2                      # ...this many times; OR a random class:
//     # speed: 4 12                 #   TFLOPS uniform range
//     # efficiency: 10 40           #   GFLOPS/W uniform range
//     # seed: 7
//   }
//   sla class {                     # optional tiers referenced by task classes
//     name: gold
//     tightness: 0.6                # multiplies relative deadlines (> 0)
//     miss penalty: 4               # ServingStats::missPenalty weight (>= 0)
//   }
//   task class {                    # one or more
//     name: web
//     arrival: poisson 18           # or: diurnal BASE PEAK PERIOD
//                                   #     mmpp LOW HIGH DWELL_LO DWELL_HI
//                                   #     flash-crowd BASE BURST START DECAY
//     theta: 0.1 4.9                # task-efficiency uniform range
//     deadline: 0.5 2.0             # relative-deadline uniform range (s)
//     sla: gold                     # optional tier reference
//     start: 0                      # arrival window within the horizon
//     end: 10
//     seed: 11                      # per-class stream; 0 = derive from master
//   }
//   serving {                       # the run configuration
//     horizon: 10                   # seconds
//     epoch: 0.5
//     budget: 40                    # J per epoch
//     policy: approx                # solver-registry name
//     fallback: edf3, edf           # optional fallback chain
//     backlog: on
//     load factor: 8                # optional admission control
//     departures: 2 1               # availability: MTBF, mean absence (s)
//     battery: 12 10 0.8            # capacity J, recharge W [, init fraction]
//     avail seed: 2025
//   }
//
// `#` starts a comment; blank lines are ignored; `{` may sit on the header
// line or alone on the next one. Every diagnostic — malformed constructs and
// invalid field values alike — is a ScenarioError naming file and line.
//
// Materialisation is a pure function of the parsed Scenario: machines expand
// per machine class (catalog entries or seeded uniform draws), each task
// class samples its arrival process and per-request deadline/θ from its own
// seeded stream over [start, end) ∩ [0, horizon), SLA tightness multiplies
// the drawn deadlines and the miss-penalty weight rides along, and the merged
// trace (stable-sorted by arrival) feeds ServingOptions::requestTrace or a
// batch Instance. Two materialisations of one scenario are bit-identical.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sched/types.h"
#include "sim/serving.h"
#include "workload/arrivals.h"

namespace dsct {

/// Parse or validation failure, always carrying the offending source line.
class ScenarioError : public std::runtime_error {
 public:
  ScenarioError(const std::string& file, int line, const std::string& what)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " + what),
        line_(line) {}

  int line() const { return line_; }

 private:
  int line_;
};

/// Parsed `arrival:` clause; materialised via toProcess().
struct ArrivalSpec {
  ArrivalProcess::Kind kind = ArrivalProcess::Kind::kPoisson;
  double rate = 1.0;          ///< poisson λ; diurnal/flash base; MMPP low rate
  double peakRate = 1.0;      ///< diurnal peak; MMPP high rate
  double periodSeconds = 1.0; ///< diurnal
  double dwellLowSeconds = 1.0;   ///< MMPP mean low-state dwell
  double dwellHighSeconds = 1.0;  ///< MMPP mean high-state dwell
  double burstFactor = 1.0;   ///< flash crowd peak multiple of base
  double startSeconds = 0.0;  ///< flash crowd spike time
  double decaySeconds = 1.0;  ///< flash crowd decay constant

  ArrivalProcess toProcess() const;

  friend bool operator==(const ArrivalSpec&, const ArrivalSpec&) = default;
};

/// SLA tier: per-class deadline tightness and miss-penalty weight.
struct SlaTier {
  std::string name;
  double deadlineTightness = 1.0;  ///< multiplies relative deadlines, > 0
  double missPenalty = 1.0;        ///< weight per missed deadline, >= 0
  int line = 0;                    ///< header line in the source file

  friend bool operator==(const SlaTier&, const SlaTier&) = default;
};

struct MachineClass {
  std::string name;
  int count = 1;  ///< replications (of each gpu, or random draws)
  std::vector<std::string> gpus;  ///< catalog names; empty = random class
  double speedLoTflops = 1.0;     ///< uniform range when gpus is empty
  double speedHiTflops = 20.0;
  double effLoGflopsPerWatt = 5.0;
  double effHiGflopsPerWatt = 60.0;
  std::uint64_t seed = 0;  ///< 0 = derive from the scenario master seed
  int line = 0;

  friend bool operator==(const MachineClass&, const MachineClass&) = default;
};

struct TaskClass {
  std::string name;
  ArrivalSpec arrival;
  double thetaLo = 0.1;
  double thetaHi = 4.9;
  double relDeadlineLo = 0.5;
  double relDeadlineHi = 2.0;
  std::string sla;  ///< tier name; empty = tightness 1, penalty 1
  double startSeconds = 0.0;
  double endSeconds = -1.0;  ///< < 0 = the serving horizon
  std::uint64_t seed = 0;    ///< 0 = derive from the scenario master seed
  int line = 0;

  friend bool operator==(const TaskClass&, const TaskClass&) = default;
};

/// The `serving { ... }` block: run length, budget, policy, and the
/// availability knobs (DESIGN.md §15).
struct ServingBlock {
  double horizonSeconds = 10.0;
  double epochSeconds = 1.0;
  double energyBudgetPerEpoch = 100.0;
  std::string policy = "approx";
  std::vector<std::string> fallback;  ///< empty keeps the registry default
  bool carryBacklog = false;
  double admissionLoadFactor = 0.0;
  bool availabilityEnabled = false;
  double departMtbfSeconds = 0.0;
  double departMeanSeconds = 1.0;
  double batteryCapacityJoules = 0.0;
  double batteryInitialFraction = 1.0;
  double rechargeWatts = 0.0;
  std::uint64_t availSeed = 2025;
  /// Cell count for the sharded primary (ServingOptions::shards); <= 1 keeps
  /// the unsharded path.
  int shards = 0;
  std::uint64_t shardSeed = 0;
  int line = 0;

  friend bool operator==(const ServingBlock&, const ServingBlock&) = default;
};

struct Scenario {
  std::string name;
  std::uint64_t seed = 1;
  std::vector<MachineClass> machineClasses;
  std::vector<TaskClass> taskClasses;
  std::vector<SlaTier> slaTiers;
  ServingBlock serving;
  std::string sourceFile = "<string>";  ///< for diagnostics only

  /// Tier by name; nullptr when `name` is empty or unknown.
  const SlaTier* findSla(const std::string& name) const;

  friend bool operator==(const Scenario& a, const Scenario& b) {
    return a.name == b.name && a.seed == b.seed &&
           a.machineClasses == b.machineClasses &&
           a.taskClasses == b.taskClasses && a.slaTiers == b.slaTiers &&
           a.serving == b.serving;
  }
};

/// Parse scenario text. Throws ScenarioError (file:line-prefixed) on any
/// malformed construct or invalid field value; a returned Scenario is fully
/// validated and materialisable.
Scenario parseScenario(std::string_view text,
                       const std::string& filename = "<string>");

/// Read and parse a scenario file; the file name feeds every diagnostic.
Scenario loadScenarioFile(const std::string& path);

/// Expand the machine classes: catalog entries replicated `count` times,
/// random classes drawn from their seeded uniform ranges.
std::vector<Machine> materializeMachines(const Scenario& scenario);

/// Sample every task class over its arrival window and merge the result into
/// one trace, stable-sorted by arrival time. Deterministic per scenario.
std::vector<sim::RequestSpec> materializeRequests(const Scenario& scenario);

/// ServingOptions for the scenario: serving-block settings plus the
/// materialised request trace. The caller picks the policy
/// (scenario.serving.policy) and may override any field afterwards.
sim::ServingOptions makeServingOptions(const Scenario& scenario);

/// Batch snapshot of the whole run: one task per materialised request with
/// its absolute deadline (arrival + SLA-tightened relative deadline), the
/// expanded machines, and budget = per-epoch budget × epoch count.
Instance materializeInstance(const Scenario& scenario);

}  // namespace dsct
