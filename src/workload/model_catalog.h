// Catalog of slimmable inference model families.
//
// Each entry describes an OFA/AutoSlim-style compressible network by its
// full-size compute cost and accuracy ceiling; tasks are derived by fitting
// the usual 5-segment concave accuracy curve to the family's exponential
// profile. Numbers are representative of published ImageNet-1k results
// (paper Section 6 uses ofa-resnet: a_max 0.82, a_min 1/1000).
#pragma once

#include <string>
#include <vector>

#include "sched/types.h"

namespace dsct {

struct ModelSpec {
  std::string name;
  double fullTflop;  ///< compute for the uncompressed network (per request)
  double amax;       ///< top-1 accuracy of the full network
  double amin = 1e-3;
  int segments = 5;

  /// The task-efficiency θ implied by the spec: the fitted accuracy curve
  /// reaches amax at ~fullTflop.
  double theta() const;

  /// Build a task with the family's accuracy curve and the given deadline.
  Task toTask(double deadlineSeconds, const std::string& taskName = {}) const;
};

/// Embedded families, ordered by increasing compute.
const std::vector<ModelSpec>& modelCatalog();

const ModelSpec& modelByName(const std::string& name);

}  // namespace dsct
