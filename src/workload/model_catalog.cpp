#include "workload/model_catalog.h"

#include <cmath>

#include "accuracy/fit.h"
#include "util/check.h"
#include "workload/generator.h"

namespace dsct {

double ModelSpec::theta() const {
  DSCT_CHECK(fullTflop > 0.0);
  // makePaperAccuracy covers all but eps of the accuracy range by
  // f = ln(1/eps)·(amax−amin)/θ; invert so the curve tops out at fullTflop.
  return std::log(1.0 / GeneratorDefaults::kCoverageEps) * (amax - amin) /
         fullTflop;
}

Task ModelSpec::toTask(double deadlineSeconds,
                       const std::string& taskName) const {
  return Task{deadlineSeconds,
              makePaperAccuracy(amin, amax, theta(), segments),
              taskName.empty() ? name : taskName};
}

const std::vector<ModelSpec>& modelCatalog() {
  // Compute costs are per batch of 1000 images (TFLOP); accuracies are
  // representative ImageNet-1k top-1 numbers for slimmable variants.
  static const std::vector<ModelSpec> catalog = {
      {"mobilenet-v3", 0.3, 0.752},
      {"efficientnet-b0", 0.8, 0.772},
      {"resnet-50", 4.1, 0.80},
      {"ofa-resnet", 4.5, 0.82},  // the paper's model
      {"efficientnet-b4", 8.8, 0.829},
      {"vit-base", 17.6, 0.846},
  };
  return catalog;
}

const ModelSpec& modelByName(const std::string& name) {
  for (const ModelSpec& spec : modelCatalog()) {
    if (spec.name == name) return spec;
  }
  DSCT_CHECK_MSG(false, "unknown model: " << name);
  return modelCatalog().front();  // unreachable
}

}  // namespace dsct
