// Arrival processes for the serving simulator.
//
// Four load shapes, all sampled deterministically from an explicit Rng:
//  * Poisson       — homogeneous rate λ.
//  * Diurnal       — non-homogeneous (thinning-sampled) day/night cycle,
//                    λ(t) = base + (peak − base)·(1 − cos(2πt/period))/2.
//  * MMPP          — 2-state Markov-modulated Poisson process (bursty load):
//                    an alternating low/high modulating chain with
//                    exponential dwell times; arrivals are Poisson at the
//                    current state's rate.
//  * Flash crowd   — a baseline rate with a sudden spike at a fixed time
//                    decaying exponentially back to the baseline,
//                    λ(t) = base + base·(burst − 1)·e^{−(t−t₀)/decay} for
//                    t ≥ t₀ (viral-event load).
#pragma once

#include <vector>

#include "util/rng.h"

namespace dsct {

class ArrivalProcess {
 public:
  enum class Kind { kPoisson, kDiurnal, kMmpp, kFlashCrowd };

  /// Constant rate λ (requests/second).
  static ArrivalProcess poisson(double ratePerSecond);

  /// Diurnal rate oscillating between base (at t = 0) and peak (half a
  /// period later).
  static ArrivalProcess diurnal(double baseRatePerSecond,
                                double peakRatePerSecond,
                                double periodSeconds);

  /// 2-state MMPP: the chain starts in the low state, dwells are
  /// exponential with the given means, and arrivals within a state are
  /// Poisson at that state's rate. Both rates and both dwell means must be
  /// positive.
  static ArrivalProcess mmpp(double rateLowPerSecond, double rateHighPerSecond,
                             double meanLowDwellSeconds,
                             double meanHighDwellSeconds);

  /// Flash crowd: baseline rate everywhere, times `burstFactor` (>= 1) at
  /// t = startSeconds, decaying exponentially back to the baseline with the
  /// given time constant.
  static ArrivalProcess flashCrowd(double baseRatePerSecond,
                                   double burstFactor, double startSeconds,
                                   double decaySeconds);

  Kind kind() const { return kind_; }

  /// Rate λ(t). For MMPP the modulating chain is random, so this reports
  /// the *stationary mean* rate — sample() is the real semantics.
  double rateAt(double t) const;

  /// Sample arrival times in [0, horizon). Poisson, diurnal, and flash
  /// crowd are thinning-sampled (exact for any bounded λ); MMPP simulates
  /// the modulating chain and draws homogeneous arrivals per dwell segment.
  std::vector<double> sample(double horizonSeconds, Rng& rng) const;

  double maxRate() const { return peak_; }

 private:
  ArrivalProcess(Kind kind, double base, double peak, double period)
      : kind_(kind), base_(base), peak_(peak), period_(period) {}

  std::vector<double> sampleMmpp(double horizonSeconds, Rng& rng) const;

  Kind kind_ = Kind::kPoisson;
  double base_;    ///< poisson/diurnal/flash base rate; MMPP low rate
  double peak_;    ///< max rate (thinning envelope); MMPP high rate
  double period_;  ///< diurnal period; <= 0 means constant rate
  double startSeconds_ = 0.0;  ///< flash crowd: spike time
  double decaySeconds_ = 1.0;  ///< flash crowd: decay time constant
  double dwellLow_ = 1.0;      ///< MMPP: mean low-state dwell (s)
  double dwellHigh_ = 1.0;     ///< MMPP: mean high-state dwell (s)
};

}  // namespace dsct
