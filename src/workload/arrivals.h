// Arrival processes for the serving simulator.
//
// Homogeneous Poisson plus a non-homogeneous (thinning-sampled) diurnal
// process: social-network style inference load with a smooth day/night
// cycle, λ(t) = base + (peak − base)·(1 − cos(2πt/period))/2.
#pragma once

#include <vector>

#include "util/rng.h"

namespace dsct {

class ArrivalProcess {
 public:
  /// Constant rate λ (requests/second).
  static ArrivalProcess poisson(double ratePerSecond);

  /// Diurnal rate oscillating between base (at t = 0) and peak (half a
  /// period later).
  static ArrivalProcess diurnal(double baseRatePerSecond,
                                double peakRatePerSecond,
                                double periodSeconds);

  /// Rate λ(t).
  double rateAt(double t) const;

  /// Sample arrival times in [0, horizon) by thinning (exact for any
  /// bounded λ).
  std::vector<double> sample(double horizonSeconds, Rng& rng) const;

  double maxRate() const { return peak_; }

 private:
  ArrivalProcess(double base, double peak, double period)
      : base_(base), peak_(peak), period_(period) {}

  double base_;
  double peak_;
  double period_;  ///< <= 0 means constant rate
};

}  // namespace dsct
