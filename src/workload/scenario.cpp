#include "workload/scenario.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "accuracy/fit.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/gpu_catalog.h"

namespace dsct {

namespace {

// --- Lexical helpers --------------------------------------------------------

std::string trim(std::string s) {
  const auto notSpace = [](unsigned char c) { return std::isspace(c) == 0; };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), notSpace));
  s.erase(std::find_if(s.rbegin(), s.rend(), notSpace).base(), s.end());
  return s;
}

/// Cut the `#` comment and trim.
std::string stripLine(const std::string& line) {
  const auto hash = line.find('#');
  return trim(hash == std::string::npos ? line : line.substr(0, hash));
}

/// Lowercase and collapse internal whitespace runs — keys and block headers
/// are matched in this normal form ("Miss  Penalty" == "miss penalty").
std::string normalizeKey(const std::string& raw) {
  std::string out;
  bool pendingSpace = false;
  for (const char c : trim(raw)) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pendingSpace = !out.empty();
      continue;
    }
    if (pendingSpace) out += ' ';
    pendingSpace = false;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> splitWs(const std::string& value) {
  std::vector<std::string> out;
  std::istringstream stream(value);
  for (std::string tok; stream >> tok;) out.push_back(tok);
  return out;
}

std::vector<std::string> splitCommaList(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream stream(value);
  for (std::string item; std::getline(stream, item, ',');) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// One `key: value` body line with its source position.
struct KeyLine {
  std::string key;    ///< normalized
  std::string value;  ///< trimmed, original case
  int line = 0;
};

// --- The parser -------------------------------------------------------------

class Parser {
 public:
  Parser(std::string_view text, const std::string& filename)
      : file_(filename) {
    std::string line;
    std::istringstream stream{std::string(text)};
    while (std::getline(stream, line)) lines_.push_back(line);
  }

  Scenario parse() {
    Scenario sc;
    sc.sourceFile = file_;
    bool sawAnyBlock = false;
    std::size_t i = 0;
    while (i < lines_.size()) {
      const int headerLine = static_cast<int>(i) + 1;
      std::string text = stripLine(lines_[i]);
      if (text.empty()) {
        ++i;
        continue;
      }
      if (text == "}") {
        fail(headerLine, "unbalanced '}' — no block is open here");
      }
      bool braceOnHeader = false;
      if (text.back() == '{') {
        braceOnHeader = true;
        text = trim(text.substr(0, text.size() - 1));
      }
      const std::string header = normalizeKey(text);
      if (header != "scenario" && header != "machine class" &&
          header != "task class" && header != "sla class" &&
          header != "serving") {
        fail(headerLine,
             "unknown block '" + text +
                 "' — expected 'machine class', 'task class', 'sla class', "
                 "'serving', or 'scenario'");
      }
      ++i;
      if (!braceOnHeader) {
        while (i < lines_.size() && stripLine(lines_[i]).empty()) ++i;
        if (i >= lines_.size() || stripLine(lines_[i]) != "{") {
          fail(headerLine,
               "block '" + header + "' is missing its opening '{'");
        }
        ++i;
      }
      const std::vector<KeyLine> body = readBody(i, header, headerLine);
      dispatchBlock(sc, header, headerLine, body);
      sawAnyBlock = true;
    }
    if (!sawAnyBlock) {
      fail(1, "scenario file is empty — expected at least one block");
    }
    finalize(sc);
    return sc;
  }

 private:
  [[noreturn]] void fail(int line, const std::string& msg) const {
    throw ScenarioError(file_, line, msg);
  }

  /// Read `key: value` lines until the closing '}'; advances `i` past it.
  std::vector<KeyLine> readBody(std::size_t& i, const std::string& header,
                                int headerLine) {
    std::vector<KeyLine> body;
    while (i < lines_.size()) {
      const int bodyLine = static_cast<int>(i) + 1;
      const std::string text = stripLine(lines_[i]);
      ++i;
      if (text.empty()) continue;
      if (text == "}") return body;
      if (text == "{") {
        fail(bodyLine, "unexpected '{' inside block '" + header + "'");
      }
      const auto colon = text.find(':');
      if (colon == std::string::npos) {
        fail(bodyLine, "expected 'key: value' inside '" + header +
                           "', got '" + text + "'");
      }
      KeyLine kl;
      kl.key = normalizeKey(text.substr(0, colon));
      kl.value = trim(text.substr(colon + 1));
      kl.line = bodyLine;
      if (kl.key.empty()) fail(bodyLine, "empty key before ':'");
      if (kl.value.empty()) {
        fail(bodyLine, "empty value for '" + kl.key + "'");
      }
      body.push_back(std::move(kl));
    }
    fail(headerLine,
         "block '" + header + "' opened here is never closed — missing '}'");
  }

  double parseNumber(const KeyLine& kl, const std::string& token) const {
    const char* begin = token.c_str();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end != begin + token.size() || token.empty() || !std::isfinite(v)) {
      fail(kl.line,
           "non-numeric value '" + token + "' for '" + kl.key + "'");
    }
    return v;
  }

  double parseSingleNumber(const KeyLine& kl) const {
    const std::vector<std::string> toks = splitWs(kl.value);
    if (toks.size() != 1) {
      fail(kl.line, "'" + kl.key + "' takes one number, got '" + kl.value +
                        "'");
    }
    return parseNumber(kl, toks[0]);
  }

  /// `lo [hi]` — one number means a degenerate range.
  std::pair<double, double> parseRange(const KeyLine& kl) const {
    const std::vector<std::string> toks = splitWs(kl.value);
    if (toks.empty() || toks.size() > 2) {
      fail(kl.line, "'" + kl.key + "' takes 'lo [hi]', got '" + kl.value +
                        "'");
    }
    const double lo = parseNumber(kl, toks[0]);
    const double hi = toks.size() == 2 ? parseNumber(kl, toks[1]) : lo;
    if (hi < lo) {
      fail(kl.line, "'" + kl.key + "' range is descending (" + kl.value +
                        ")");
    }
    return {lo, hi};
  }

  std::uint64_t parseSeed(const KeyLine& kl) const {
    const std::vector<std::string> toks = splitWs(kl.value);
    if (toks.size() != 1 || toks[0].empty() || toks[0][0] == '-') {
      fail(kl.line, "'" + kl.key + "' takes one non-negative integer, got '" +
                        kl.value + "'");
    }
    const char* begin = toks[0].c_str();
    char* end = nullptr;
    const unsigned long long v = std::strtoull(begin, &end, 10);
    if (end != begin + toks[0].size()) {
      fail(kl.line,
           "non-numeric value '" + toks[0] + "' for '" + kl.key + "'");
    }
    return static_cast<std::uint64_t>(v);
  }

  bool parseOnOff(const KeyLine& kl) const {
    const std::string v = normalizeKey(kl.value);
    if (v == "on" || v == "true" || v == "yes") return true;
    if (v == "off" || v == "false" || v == "no") return false;
    fail(kl.line,
         "'" + kl.key + "' must be on/off, got '" + kl.value + "'");
  }

  /// Field validation with the offending line: positive unless stated.
  void require(bool ok, const KeyLine& kl, const std::string& what) const {
    if (!ok) {
      fail(kl.line, "'" + kl.key + "' " + what + " (got '" + kl.value + "')");
    }
  }

  ArrivalSpec parseArrival(const KeyLine& kl) const {
    std::vector<std::string> toks = splitWs(kl.value);
    const std::string process = normalizeKey(toks.empty() ? "" : toks[0]);
    const auto expectArgs = [&](std::size_t n, const char* shape) {
      if (toks.size() - 1 != n) {
        fail(kl.line, "'" + process + "' arrival takes " + shape + ", got " +
                          std::to_string(toks.size() - 1) + " argument(s)");
      }
    };
    ArrivalSpec spec;
    if (process == "poisson") {
      expectArgs(1, "1 argument (rate)");
      spec.kind = ArrivalProcess::Kind::kPoisson;
      spec.rate = parseNumber(kl, toks[1]);
      require(spec.rate > 0.0, kl, "rate must be positive");
    } else if (process == "diurnal") {
      expectArgs(3, "3 arguments (base peak period)");
      spec.kind = ArrivalProcess::Kind::kDiurnal;
      spec.rate = parseNumber(kl, toks[1]);
      spec.peakRate = parseNumber(kl, toks[2]);
      spec.periodSeconds = parseNumber(kl, toks[3]);
      require(spec.rate >= 0.0, kl, "base rate must be non-negative");
      require(spec.peakRate >= spec.rate && spec.peakRate > 0.0, kl,
              "peak rate must be positive and >= the base rate");
      require(spec.periodSeconds > 0.0, kl, "period must be positive");
    } else if (process == "mmpp") {
      expectArgs(4, "4 arguments (rate-low rate-high dwell-low dwell-high)");
      spec.kind = ArrivalProcess::Kind::kMmpp;
      spec.rate = parseNumber(kl, toks[1]);
      spec.peakRate = parseNumber(kl, toks[2]);
      spec.dwellLowSeconds = parseNumber(kl, toks[3]);
      spec.dwellHighSeconds = parseNumber(kl, toks[4]);
      require(spec.rate > 0.0, kl, "low rate must be positive");
      require(spec.peakRate >= spec.rate, kl,
              "high rate must be >= the low rate");
      require(spec.dwellLowSeconds > 0.0 && spec.dwellHighSeconds > 0.0, kl,
              "dwell times must be positive");
    } else if (process == "flash-crowd" || process == "flash crowd") {
      expectArgs(4, "4 arguments (base burst-factor start decay)");
      spec.kind = ArrivalProcess::Kind::kFlashCrowd;
      spec.rate = parseNumber(kl, toks[1]);
      spec.burstFactor = parseNumber(kl, toks[2]);
      spec.startSeconds = parseNumber(kl, toks[3]);
      spec.decaySeconds = parseNumber(kl, toks[4]);
      require(spec.rate > 0.0, kl, "base rate must be positive");
      require(spec.burstFactor >= 1.0, kl, "burst factor must be >= 1");
      require(spec.startSeconds >= 0.0, kl,
              "burst start must be non-negative");
      require(spec.decaySeconds > 0.0, kl, "decay must be positive");
    } else {
      fail(kl.line, "unknown arrival process '" +
                        (toks.empty() ? kl.value : toks[0]) +
                        "' — expected poisson, diurnal, mmpp, or flash-crowd");
    }
    return spec;
  }

  void dispatchBlock(Scenario& sc, const std::string& header, int headerLine,
                     const std::vector<KeyLine>& body) {
    if (header == "scenario") {
      parseScenarioBlock(sc, headerLine, body);
    } else if (header == "machine class") {
      parseMachineClass(sc, headerLine, body);
    } else if (header == "task class") {
      parseTaskClass(sc, headerLine, body);
    } else if (header == "sla class") {
      parseSlaClass(sc, headerLine, body);
    } else {
      parseServingBlock(sc, headerLine, body);
    }
  }

  void parseScenarioBlock(Scenario& sc, int headerLine,
                          const std::vector<KeyLine>& body) {
    if (scenarioLine_ != 0) {
      fail(headerLine, "duplicate scenario block (first declared at line " +
                           std::to_string(scenarioLine_) + ")");
    }
    scenarioLine_ = headerLine;
    for (const KeyLine& kl : body) {
      if (kl.key == "name") {
        sc.name = kl.value;
      } else if (kl.key == "seed") {
        sc.seed = parseSeed(kl);
      } else {
        fail(kl.line, "unknown key '" + kl.key + "' in scenario block");
      }
    }
  }

  void parseMachineClass(Scenario& sc, int headerLine,
                         const std::vector<KeyLine>& body) {
    MachineClass mc;
    mc.line = headerLine;
    bool sawRange = false;
    for (const KeyLine& kl : body) {
      if (kl.key == "name") {
        mc.name = kl.value;
      } else if (kl.key == "count") {
        const double v = parseSingleNumber(kl);
        require(v >= 1.0 && v == std::floor(v) && v <= 1e9, kl,
                "must be a positive integer");
        mc.count = static_cast<int>(v);
      } else if (kl.key == "gpus") {
        mc.gpus = splitCommaList(kl.value);
        require(!mc.gpus.empty(), kl, "needs at least one catalog name");
        for (const std::string& g : mc.gpus) {
          try {
            gpuByName(g);
          } catch (const CheckError&) {
            fail(kl.line, "unknown GPU '" + g + "' — not in the catalog");
          }
        }
      } else if (kl.key == "speed") {
        std::tie(mc.speedLoTflops, mc.speedHiTflops) = parseRange(kl);
        require(mc.speedLoTflops > 0.0, kl, "must be positive (TFLOPS)");
        sawRange = true;
      } else if (kl.key == "efficiency") {
        std::tie(mc.effLoGflopsPerWatt, mc.effHiGflopsPerWatt) =
            parseRange(kl);
        require(mc.effLoGflopsPerWatt > 0.0, kl,
                "must be positive (GFLOPS/W)");
        sawRange = true;
      } else if (kl.key == "seed") {
        mc.seed = parseSeed(kl);
      } else {
        fail(kl.line, "unknown key '" + kl.key + "' in machine class");
      }
    }
    if (mc.name.empty()) fail(headerLine, "machine class needs a 'name'");
    if (!mc.gpus.empty() && sawRange) {
      fail(headerLine, "machine class '" + mc.name +
                           "' mixes 'gpus' with 'speed'/'efficiency' — a "
                           "class is either catalog-backed or random");
    }
    for (const MachineClass& other : sc.machineClasses) {
      if (other.name == mc.name) {
        fail(headerLine, "duplicate machine class name '" + mc.name +
                             "' (first declared at line " +
                             std::to_string(other.line) + ")");
      }
    }
    sc.machineClasses.push_back(std::move(mc));
  }

  void parseSlaClass(Scenario& sc, int headerLine,
                     const std::vector<KeyLine>& body) {
    SlaTier tier;
    tier.line = headerLine;
    for (const KeyLine& kl : body) {
      if (kl.key == "name") {
        tier.name = kl.value;
      } else if (kl.key == "tightness" || kl.key == "deadline tightness") {
        tier.deadlineTightness = parseSingleNumber(kl);
        require(tier.deadlineTightness > 0.0, kl, "must be positive");
      } else if (kl.key == "miss penalty" || kl.key == "penalty") {
        tier.missPenalty = parseSingleNumber(kl);
        require(tier.missPenalty >= 0.0, kl, "must be non-negative");
      } else {
        fail(kl.line, "unknown key '" + kl.key + "' in sla class");
      }
    }
    if (tier.name.empty()) fail(headerLine, "sla class needs a 'name'");
    for (const SlaTier& other : sc.slaTiers) {
      if (other.name == tier.name) {
        fail(headerLine, "duplicate sla class name '" + tier.name +
                             "' (first declared at line " +
                             std::to_string(other.line) + ")");
      }
    }
    sc.slaTiers.push_back(std::move(tier));
  }

  void parseTaskClass(Scenario& sc, int headerLine,
                      const std::vector<KeyLine>& body) {
    TaskClass tc;
    tc.line = headerLine;
    int endLine = 0;
    for (const KeyLine& kl : body) {
      if (kl.key == "name") {
        tc.name = kl.value;
      } else if (kl.key == "arrival") {
        tc.arrival = parseArrival(kl);
      } else if (kl.key == "theta") {
        std::tie(tc.thetaLo, tc.thetaHi) = parseRange(kl);
        require(tc.thetaLo > 0.0, kl, "must be positive");
      } else if (kl.key == "deadline") {
        std::tie(tc.relDeadlineLo, tc.relDeadlineHi) = parseRange(kl);
        require(tc.relDeadlineLo > 0.0, kl, "must be positive (seconds)");
      } else if (kl.key == "sla") {
        tc.sla = kl.value;
      } else if (kl.key == "start") {
        tc.startSeconds = parseSingleNumber(kl);
        require(tc.startSeconds >= 0.0, kl, "must be non-negative");
      } else if (kl.key == "end") {
        tc.endSeconds = parseSingleNumber(kl);
        require(tc.endSeconds > 0.0, kl, "must be positive");
        endLine = kl.line;
      } else if (kl.key == "seed") {
        tc.seed = parseSeed(kl);
      } else {
        fail(kl.line, "unknown key '" + kl.key + "' in task class");
      }
    }
    if (tc.name.empty()) fail(headerLine, "task class needs a 'name'");
    if (tc.endSeconds >= 0.0 && tc.endSeconds <= tc.startSeconds) {
      fail(endLine != 0 ? endLine : headerLine,
           "task class '" + tc.name + "' has end <= start");
    }
    for (const TaskClass& other : sc.taskClasses) {
      if (other.name == tc.name) {
        fail(headerLine, "duplicate task class name '" + tc.name +
                             "' (first declared at line " +
                             std::to_string(other.line) + ")");
      }
    }
    sc.taskClasses.push_back(std::move(tc));
  }

  void parseServingBlock(Scenario& sc, int headerLine,
                         const std::vector<KeyLine>& body) {
    if (servingLine_ != 0) {
      fail(headerLine, "duplicate serving block (first declared at line " +
                           std::to_string(servingLine_) + ")");
    }
    servingLine_ = headerLine;
    ServingBlock& s = sc.serving;
    s.line = headerLine;
    for (const KeyLine& kl : body) {
      if (kl.key == "horizon") {
        s.horizonSeconds = parseSingleNumber(kl);
        require(s.horizonSeconds > 0.0, kl, "must be positive (seconds)");
      } else if (kl.key == "epoch") {
        s.epochSeconds = parseSingleNumber(kl);
        require(s.epochSeconds > 0.0, kl, "must be positive (seconds)");
      } else if (kl.key == "budget") {
        s.energyBudgetPerEpoch = parseSingleNumber(kl);
        require(s.energyBudgetPerEpoch >= 0.0, kl,
                "must be non-negative (J per epoch)");
      } else if (kl.key == "policy") {
        s.policy = kl.value;
      } else if (kl.key == "fallback") {
        s.fallback = splitCommaList(kl.value);
        require(!s.fallback.empty(), kl, "needs at least one solver name");
      } else if (kl.key == "backlog") {
        s.carryBacklog = parseOnOff(kl);
      } else if (kl.key == "load factor") {
        s.admissionLoadFactor = parseSingleNumber(kl);
        require(s.admissionLoadFactor >= 0.0, kl, "must be non-negative");
      } else if (kl.key == "departures") {
        const std::vector<std::string> toks = splitWs(kl.value);
        if (toks.size() != 2) {
          fail(kl.line,
               "'departures' takes 2 numbers (mtbf mean-absence), got '" +
                   kl.value + "'");
        }
        s.departMtbfSeconds = parseNumber(kl, toks[0]);
        s.departMeanSeconds = parseNumber(kl, toks[1]);
        require(s.departMtbfSeconds >= 0.0, kl,
                "mtbf must be non-negative (seconds)");
        require(s.departMeanSeconds > 0.0, kl,
                "mean absence must be positive (seconds)");
        s.availabilityEnabled = true;
      } else if (kl.key == "battery") {
        const std::vector<std::string> toks = splitWs(kl.value);
        if (toks.size() != 2 && toks.size() != 3) {
          fail(kl.line,
               "'battery' takes 'capacity recharge [initial-fraction]', "
               "got '" +
                   kl.value + "'");
        }
        s.batteryCapacityJoules = parseNumber(kl, toks[0]);
        s.rechargeWatts = parseNumber(kl, toks[1]);
        if (toks.size() == 3) {
          s.batteryInitialFraction = parseNumber(kl, toks[2]);
        }
        require(s.batteryCapacityJoules >= 0.0, kl,
                "capacity must be non-negative (J)");
        require(s.rechargeWatts >= 0.0, kl,
                "recharge must be non-negative (W)");
        require(s.batteryInitialFraction >= 0.0 &&
                    s.batteryInitialFraction <= 1.0,
                kl, "initial fraction must be in [0, 1]");
        s.availabilityEnabled = true;
      } else if (kl.key == "avail seed") {
        s.availSeed = parseSeed(kl);
      } else if (kl.key == "shards") {
        const double v = parseSingleNumber(kl);
        require(v >= 0.0 && v == std::floor(v), kl,
                "must be a non-negative integer (cell count)");
        s.shards = static_cast<int>(v);
      } else if (kl.key == "shard seed") {
        s.shardSeed = parseSeed(kl);
      } else {
        fail(kl.line, "unknown key '" + kl.key + "' in serving block");
      }
    }
  }

  void finalize(const Scenario& sc) const {
    if (sc.machineClasses.empty()) {
      fail(1, "scenario declares no machine class");
    }
    if (sc.taskClasses.empty()) {
      fail(1, "scenario declares no task class");
    }
    for (const TaskClass& tc : sc.taskClasses) {
      if (!tc.sla.empty() && sc.findSla(tc.sla) == nullptr) {
        fail(tc.line, "task class '" + tc.name +
                          "' references unknown sla class '" + tc.sla + "'");
      }
    }
  }

  std::string file_;
  std::vector<std::string> lines_;
  int scenarioLine_ = 0;
  int servingLine_ = 0;
};

/// Per-class RNG stream: an explicit class seed wins; otherwise derive a
/// distinct stream from the scenario master seed (machine classes and task
/// classes live in disjoint stream ranges).
std::uint64_t classSeed(const Scenario& sc, std::uint64_t explicitSeed,
                        std::uint64_t stream) {
  return explicitSeed != 0 ? explicitSeed : deriveSeed(sc.seed, stream);
}

}  // namespace

ArrivalProcess ArrivalSpec::toProcess() const {
  switch (kind) {
    case ArrivalProcess::Kind::kPoisson:
      return ArrivalProcess::poisson(rate);
    case ArrivalProcess::Kind::kDiurnal:
      return ArrivalProcess::diurnal(rate, peakRate, periodSeconds);
    case ArrivalProcess::Kind::kMmpp:
      return ArrivalProcess::mmpp(rate, peakRate, dwellLowSeconds,
                                  dwellHighSeconds);
    case ArrivalProcess::Kind::kFlashCrowd:
      return ArrivalProcess::flashCrowd(rate, burstFactor, startSeconds,
                                        decaySeconds);
  }
  DSCT_CHECK_MSG(false, "unreachable arrival kind");
}

const SlaTier* Scenario::findSla(const std::string& slaName) const {
  if (slaName.empty()) return nullptr;
  for (const SlaTier& tier : slaTiers) {
    if (tier.name == slaName) return &tier;
  }
  return nullptr;
}

Scenario parseScenario(std::string_view text, const std::string& filename) {
  return Parser(text, filename).parse();
}

Scenario loadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ScenarioError(path, 1, "cannot open scenario file");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseScenario(buffer.str(), path);
}

std::vector<Machine> materializeMachines(const Scenario& scenario) {
  std::vector<Machine> out;
  for (std::size_t c = 0; c < scenario.machineClasses.size(); ++c) {
    const MachineClass& mc = scenario.machineClasses[c];
    if (!mc.gpus.empty()) {
      for (int k = 0; k < mc.count; ++k) {
        for (const std::string& g : mc.gpus) {
          Machine m = gpuByName(g).toMachine();
          m.name = mc.name + "-" + g + "-" + std::to_string(k);
          out.push_back(std::move(m));
        }
      }
    } else {
      Rng rng(classSeed(scenario, mc.seed, 1000 + c));
      for (int k = 0; k < mc.count; ++k) {
        Machine m;
        m.speed = rng.uniform(mc.speedLoTflops, mc.speedHiTflops);
        // File values are GFLOPS/W (the human-scale unit of the catalog
        // tables); Machine::efficiency is TFLOP/J.
        m.efficiency =
            rng.uniform(mc.effLoGflopsPerWatt, mc.effHiGflopsPerWatt) * 1e-3;
        m.name = mc.name + "-" + std::to_string(k);
        out.push_back(std::move(m));
      }
    }
  }
  return out;
}

std::vector<sim::RequestSpec> materializeRequests(const Scenario& scenario) {
  std::vector<sim::RequestSpec> out;
  const double horizon = scenario.serving.horizonSeconds;
  for (std::size_t c = 0; c < scenario.taskClasses.size(); ++c) {
    const TaskClass& tc = scenario.taskClasses[c];
    const double start = tc.startSeconds;
    const double end =
        tc.endSeconds < 0.0 ? horizon : std::min(tc.endSeconds, horizon);
    if (end <= start) continue;
    const SlaTier* tier = scenario.findSla(tc.sla);
    const double tightness = tier != nullptr ? tier->deadlineTightness : 1.0;
    const double penalty = tier != nullptr ? tier->missPenalty : 1.0;
    Rng rng(classSeed(scenario, tc.seed, 2000 + c));
    const ArrivalProcess process = tc.arrival.toProcess();
    // Arrivals are sampled first (one contiguous draw chain), then each
    // request's deadline and θ — a fixed order, so the class stream replays
    // bit-identically.
    const std::vector<double> times = process.sample(end - start, rng);
    out.reserve(out.size() + times.size());
    for (const double t : times) {
      sim::RequestSpec req;
      req.arrival = start + t;
      req.relDeadline =
          rng.uniform(tc.relDeadlineLo, tc.relDeadlineHi) * tightness;
      req.theta = rng.uniform(tc.thetaLo, tc.thetaHi);
      req.missPenalty = penalty;
      out.push_back(req);
    }
  }
  // Merge the class streams by arrival; stable, so ties keep class order.
  std::stable_sort(out.begin(), out.end(),
                   [](const sim::RequestSpec& a, const sim::RequestSpec& b) {
                     return a.arrival < b.arrival;
                   });
  return out;
}

sim::ServingOptions makeServingOptions(const Scenario& scenario) {
  const ServingBlock& s = scenario.serving;
  sim::ServingOptions o;
  o.horizonSeconds = s.horizonSeconds;
  o.epochSeconds = s.epochSeconds;
  o.energyBudgetPerEpoch = s.energyBudgetPerEpoch;
  o.carryBacklog = s.carryBacklog;
  o.admissionLoadFactor = s.admissionLoadFactor;
  o.seed = scenario.seed;
  if (!s.fallback.empty()) o.fallbackChain = s.fallback;
  o.requestTrace = materializeRequests(scenario);
  // An empty trace would silently fall back to the driver's internal Poisson
  // generator — reject it loudly instead.
  DSCT_CHECK_MSG(!o.requestTrace.empty(),
                 "scenario '" << scenario.name
                              << "' materialised zero requests — widen the "
                                 "arrival windows or raise the rates");
  o.availability.enabled = s.availabilityEnabled;
  o.availability.seed = s.availSeed;
  o.availability.departMtbfSeconds = s.departMtbfSeconds;
  o.availability.departMeanSeconds = s.departMeanSeconds;
  o.availability.batteryCapacityJoules = s.batteryCapacityJoules;
  o.availability.batteryInitialFraction = s.batteryInitialFraction;
  o.availability.rechargeWatts = s.rechargeWatts;
  o.shards = s.shards;
  o.shardSeed = s.shardSeed;
  return o;
}

Instance materializeInstance(const Scenario& scenario) {
  const std::vector<sim::RequestSpec> requests =
      materializeRequests(scenario);
  // Accuracy-curve shape parameters mirror the serving driver's defaults so
  // the batch snapshot and the serving run see the same tasks.
  const sim::ServingOptions defaults;
  std::vector<Task> tasks;
  tasks.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const sim::RequestSpec& req = requests[i];
    tasks.push_back(Task{req.arrival + req.relDeadline,
                         makePaperAccuracy(defaults.amin, defaults.amax,
                                           req.theta, defaults.segments),
                         "req-" + std::to_string(i)});
  }
  const double epochs = std::ceil(scenario.serving.horizonSeconds /
                                  scenario.serving.epochSeconds);
  return Instance(std::move(tasks), materializeMachines(scenario),
                  scenario.serving.energyBudgetPerEpoch * epochs);
}

}  // namespace dsct
