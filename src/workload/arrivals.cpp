#include "workload/arrivals.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace dsct {

ArrivalProcess ArrivalProcess::poisson(double ratePerSecond) {
  DSCT_CHECK(ratePerSecond > 0.0);
  return ArrivalProcess(Kind::kPoisson, ratePerSecond, ratePerSecond, 0.0);
}

ArrivalProcess ArrivalProcess::diurnal(double baseRatePerSecond,
                                       double peakRatePerSecond,
                                       double periodSeconds) {
  DSCT_CHECK(baseRatePerSecond >= 0.0);
  DSCT_CHECK(peakRatePerSecond >= baseRatePerSecond);
  DSCT_CHECK(peakRatePerSecond > 0.0);
  DSCT_CHECK(periodSeconds > 0.0);
  return ArrivalProcess(Kind::kDiurnal, baseRatePerSecond, peakRatePerSecond,
                        periodSeconds);
}

ArrivalProcess ArrivalProcess::mmpp(double rateLowPerSecond,
                                    double rateHighPerSecond,
                                    double meanLowDwellSeconds,
                                    double meanHighDwellSeconds) {
  DSCT_CHECK(rateLowPerSecond > 0.0);
  DSCT_CHECK(rateHighPerSecond >= rateLowPerSecond);
  DSCT_CHECK(meanLowDwellSeconds > 0.0);
  DSCT_CHECK(meanHighDwellSeconds > 0.0);
  ArrivalProcess p(Kind::kMmpp, rateLowPerSecond, rateHighPerSecond, 0.0);
  p.dwellLow_ = meanLowDwellSeconds;
  p.dwellHigh_ = meanHighDwellSeconds;
  return p;
}

ArrivalProcess ArrivalProcess::flashCrowd(double baseRatePerSecond,
                                          double burstFactor,
                                          double startSeconds,
                                          double decaySeconds) {
  DSCT_CHECK(baseRatePerSecond > 0.0);
  DSCT_CHECK(burstFactor >= 1.0);
  DSCT_CHECK(startSeconds >= 0.0);
  DSCT_CHECK(decaySeconds > 0.0);
  ArrivalProcess p(Kind::kFlashCrowd, baseRatePerSecond,
                   baseRatePerSecond * burstFactor, 0.0);
  p.startSeconds_ = startSeconds;
  p.decaySeconds_ = decaySeconds;
  return p;
}

double ArrivalProcess::rateAt(double t) const {
  switch (kind_) {
    case Kind::kPoisson:
      return base_;
    case Kind::kDiurnal: {
      const double phase = 2.0 * std::numbers::pi * t / period_;
      return base_ + (peak_ - base_) * (1.0 - std::cos(phase)) / 2.0;
    }
    case Kind::kMmpp:
      // Stationary mean of the alternating chain; the sampled intensity is
      // base_ or peak_ depending on the (random) modulating state.
      return (base_ * dwellLow_ + peak_ * dwellHigh_) /
             (dwellLow_ + dwellHigh_);
    case Kind::kFlashCrowd:
      if (t < startSeconds_) return base_;
      return base_ + (peak_ - base_) *
                         std::exp(-(t - startSeconds_) / decaySeconds_);
  }
  return base_;
}

std::vector<double> ArrivalProcess::sample(double horizonSeconds,
                                           Rng& rng) const {
  DSCT_CHECK(horizonSeconds >= 0.0);
  if (kind_ == Kind::kMmpp) return sampleMmpp(horizonSeconds, rng);
  std::vector<double> arrivals;
  // Thinning: draw a homogeneous Poisson at the max rate and accept each
  // point with probability λ(t)/λ_max. A constant-rate process accepts
  // every point without drawing (bit-compatible with the original
  // Poisson-only sampler).
  double t = 0.0;
  for (;;) {
    t += rng.exponential(peak_);
    if (t >= horizonSeconds) break;
    if (kind_ == Kind::kPoisson ||
        rng.uniform(0.0, 1.0) * peak_ <= rateAt(t)) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

std::vector<double> ArrivalProcess::sampleMmpp(double horizonSeconds,
                                               Rng& rng) const {
  std::vector<double> arrivals;
  // Alternate low/high dwell segments; within each segment arrivals are
  // homogeneous Poisson at the segment's rate. Restarting the exponential
  // clock at every state switch is distribution-preserving (memorylessness)
  // and keeps the draw order a simple deterministic alternation:
  // dwell, arrivals…, dwell, arrivals…
  bool high = false;
  double segStart = 0.0;
  while (segStart < horizonSeconds) {
    const double dwell = rng.exponential(1.0 / (high ? dwellHigh_ : dwellLow_));
    const double segEnd = std::min(horizonSeconds, segStart + dwell);
    const double rate = high ? peak_ : base_;
    double t = segStart;
    for (;;) {
      t += rng.exponential(rate);
      if (t >= segEnd) break;
      arrivals.push_back(t);
    }
    segStart += dwell;
    high = !high;
  }
  return arrivals;
}

}  // namespace dsct
