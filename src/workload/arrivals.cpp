#include "workload/arrivals.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace dsct {

ArrivalProcess ArrivalProcess::poisson(double ratePerSecond) {
  DSCT_CHECK(ratePerSecond > 0.0);
  return ArrivalProcess(ratePerSecond, ratePerSecond, 0.0);
}

ArrivalProcess ArrivalProcess::diurnal(double baseRatePerSecond,
                                       double peakRatePerSecond,
                                       double periodSeconds) {
  DSCT_CHECK(baseRatePerSecond >= 0.0);
  DSCT_CHECK(peakRatePerSecond >= baseRatePerSecond);
  DSCT_CHECK(peakRatePerSecond > 0.0);
  DSCT_CHECK(periodSeconds > 0.0);
  return ArrivalProcess(baseRatePerSecond, peakRatePerSecond, periodSeconds);
}

double ArrivalProcess::rateAt(double t) const {
  if (period_ <= 0.0) return base_;
  const double phase = 2.0 * std::numbers::pi * t / period_;
  return base_ + (peak_ - base_) * (1.0 - std::cos(phase)) / 2.0;
}

std::vector<double> ArrivalProcess::sample(double horizonSeconds,
                                           Rng& rng) const {
  DSCT_CHECK(horizonSeconds >= 0.0);
  std::vector<double> arrivals;
  // Thinning: draw a homogeneous Poisson at the max rate and accept each
  // point with probability λ(t)/λ_max.
  double t = 0.0;
  for (;;) {
    t += rng.exponential(peak_);
    if (t >= horizonSeconds) break;
    if (period_ <= 0.0 || rng.uniform(0.0, 1.0) * peak_ <= rateAt(t)) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

}  // namespace dsct
