// Synthetic server-GPU catalog following the efficiency-vs-speed trend of
// Desislavov et al. (paper Fig. 1): newer/faster inference devices are also
// more energy efficient, roughly linearly in speed.
//
// The paper only uses the *trend* (speeds ~1-20 TFLOPS, efficiencies
// ~5-60 GFLOPS/W); the entries below are representative data-centre GPUs
// with spec-sheet-scale numbers clipped into that envelope.
#pragma once

#include <string>
#include <vector>

#include "sched/types.h"

namespace dsct {

struct GpuSpec {
  std::string name;
  double speedTflops;       ///< dense FP32-equivalent inference throughput
  double efficiencyGflopsPerWatt;

  Machine toMachine() const;
};

/// The embedded catalog, ordered by increasing speed.
const std::vector<GpuSpec>& gpuCatalog();

/// Find a GPU by name; throws CheckError when absent.
const GpuSpec& gpuByName(const std::string& name);

/// Convert the whole catalog (or a subset by names) to machines.
std::vector<Machine> machinesFromCatalog();
std::vector<Machine> machinesFromCatalog(const std::vector<std::string>& names);

/// Least-squares linear fit efficiency ≈ a + b·speed over the catalog —
/// the "linear improvement" trend the paper reads off Fig. 1.
struct LinearTrend {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearTrend efficiencyTrend();

}  // namespace dsct
