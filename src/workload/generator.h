// Synthetic workload generation following Section 6 of the paper.
//
// Scenarios are parameterised by:
//  * task heterogeneity μ = θ_max / θ_min (spread of task efficiencies),
//  * deadline tolerance ρ = m² · d_max / (Σ_j f_j^max · Σ_r s_r),
//  * energy budget ratio β = B / (d_max · Σ_r P_r).
// Machine speeds are uniform in [1, 20] TFLOPS and efficiencies uniform in
// [5, 60] GFLOPS/W; accuracy functions are 5-segment fits of exponential
// curves with a_min = 0.001, a_max = 0.82.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/types.h"
#include "util/rng.h"

namespace dsct {

struct GeneratorDefaults {
  static constexpr double kAmin = 1.0 / 1000.0;  ///< random guess, 1000 classes
  static constexpr double kAmax = 0.82;          ///< ofa-resnet on ImageNet-1k
  static constexpr int kSegments = 5;
  static constexpr double kCoverageEps = 0.01;
  static constexpr double kMinSpeed = 1.0;       ///< TFLOPS
  static constexpr double kMaxSpeed = 20.0;      ///< TFLOPS
  static constexpr double kMinEff = 5e-3;        ///< TFLOP/J (5 GFLOPS/W)
  static constexpr double kMaxEff = 60e-3;       ///< TFLOP/J (60 GFLOPS/W)
};

/// Machines with uniformly distributed speed and efficiency (paper Fig. 1
/// envelope).
std::vector<Machine> makeUniformMachines(int m, Rng& rng);

/// Task efficiencies uniform in [thetaMin, thetaMax].
std::vector<double> makeThetasUniform(int n, double thetaMin, double thetaMax,
                                      Rng& rng);

/// The paper's "Earliest High Efficient Tasks" scenario: the earliest
/// `fracHigh` of tasks (by deadline order) get θ in [hiLo, hiHi], the rest
/// θ in [loLo, loHi].
std::vector<double> makeThetasEarliestHighEfficient(int n, double fracHigh,
                                                    double hiLo, double hiHi,
                                                    double loLo, double loHi,
                                                    Rng& rng);

/// How the energy budget ratio β is normalised.
enum class BudgetMode {
  /// B = β · d_max · Σ_r P_r — the paper's formula. Matches Fig. 6's naive
  /// profile numbers, but with loose deadlines (ρ large) the budget stops
  /// binding well below β = 1.
  kHorizonPower,
  /// B = β · E_ref, where E_ref is the energy consumed by the deadline-only
  /// optimum (DSCT-EA-FR-OPT with unlimited budget). β = 1 grants exactly
  /// enough energy for the best deadline-feasible schedule, so the whole
  /// β ∈ (0, 1) range is binding — the regime Fig. 5 sweeps.
  kWorkloadEnergy,
};

struct ScenarioSpec {
  int numTasks = 100;
  int numMachines = 5;
  double rho = 0.35;   ///< deadline tolerance level
  double beta = 0.5;   ///< energy budget ratio
  BudgetMode budgetMode = BudgetMode::kHorizonPower;
  double amin = GeneratorDefaults::kAmin;
  double amax = GeneratorDefaults::kAmax;
  int segments = GeneratorDefaults::kSegments;
  double coverageEps = GeneratorDefaults::kCoverageEps;
};

/// Assemble an instance: builds accuracy functions from `thetas` (one per
/// task, in deadline order), derives d_max from ρ, draws deadlines uniformly
/// in (0, d_max] (forcing max{d_j} = d_max so β is exact), and sets
/// B = β · d_max · Σ_r P_r.
Instance buildInstance(std::vector<Machine> machines,
                       const std::vector<double>& thetas,
                       const ScenarioSpec& spec, Rng& rng);

/// One-call scenario used by most experiments: uniform machines + uniform
/// task efficiencies in [thetaMin, thetaMax].
Instance makeScenario(const ScenarioSpec& spec, double thetaMin,
                      double thetaMax, std::uint64_t seed);

}  // namespace dsct
