#include "workload/gpu_catalog.h"

#include <cmath>

#include "util/check.h"

namespace dsct {

Machine GpuSpec::toMachine() const {
  // 1 GFLOPS/W == 1e-3 TFLOP/J.
  return Machine{speedTflops, efficiencyGflopsPerWatt * 1e-3, name};
}

const std::vector<GpuSpec>& gpuCatalog() {
  static const std::vector<GpuSpec> catalog = {
      {"K80", 4.1, 14.0},        {"M60", 4.8, 16.0},
      {"P4", 5.5, 22.0},         {"M40", 7.0, 28.0},
      {"T4", 8.1, 33.0},         {"RTX-A2000", 8.0, 36.0},
      {"P100", 9.3, 37.0},       {"A30", 10.3, 42.0},
      {"V100", 14.0, 47.0},      {"A10", 15.7, 50.0},
      {"A40", 18.0, 55.0},       {"A100", 19.5, 60.0},
  };
  return catalog;
}

const GpuSpec& gpuByName(const std::string& name) {
  for (const GpuSpec& gpu : gpuCatalog()) {
    if (gpu.name == name) return gpu;
  }
  DSCT_CHECK_MSG(false, "unknown GPU: " << name);
  // Unreachable; silences missing-return warnings.
  return gpuCatalog().front();
}

std::vector<Machine> machinesFromCatalog() {
  std::vector<Machine> machines;
  machines.reserve(gpuCatalog().size());
  for (const GpuSpec& gpu : gpuCatalog()) machines.push_back(gpu.toMachine());
  return machines;
}

std::vector<Machine> machinesFromCatalog(
    const std::vector<std::string>& names) {
  std::vector<Machine> machines;
  machines.reserve(names.size());
  for (const std::string& name : names) {
    machines.push_back(gpuByName(name).toMachine());
  }
  return machines;
}

LinearTrend efficiencyTrend() {
  const auto& catalog = gpuCatalog();
  const double n = static_cast<double>(catalog.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (const GpuSpec& gpu : catalog) {
    sx += gpu.speedTflops;
    sy += gpu.efficiencyGflopsPerWatt;
    sxx += gpu.speedTflops * gpu.speedTflops;
    sxy += gpu.speedTflops * gpu.efficiencyGflopsPerWatt;
    syy += gpu.efficiencyGflopsPerWatt * gpu.efficiencyGflopsPerWatt;
  }
  LinearTrend trend;
  const double denom = n * sxx - sx * sx;
  DSCT_CHECK(denom > 0.0);
  trend.slope = (n * sxy - sx * sy) / denom;
  trend.intercept = (sy - trend.slope * sx) / n;
  const double ssTot = syy - sy * sy / n;
  double ssRes = 0.0;
  for (const GpuSpec& gpu : catalog) {
    const double pred = trend.intercept + trend.slope * gpu.speedTflops;
    ssRes += (gpu.efficiencyGflopsPerWatt - pred) *
             (gpu.efficiencyGflopsPerWatt - pred);
  }
  trend.r2 = ssTot > 0.0 ? 1.0 - ssRes / ssTot : 1.0;
  return trend;
}

}  // namespace dsct
