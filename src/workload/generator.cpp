#include "workload/generator.h"

#include <algorithm>
#include <string>

#include <limits>

#include "accuracy/fit.h"
#include "sched/fr_opt.h"
#include "util/check.h"

namespace dsct {

std::vector<Machine> makeUniformMachines(int m, Rng& rng) {
  DSCT_CHECK(m >= 1);
  std::vector<Machine> machines;
  machines.reserve(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    Machine machine;
    machine.speed = rng.uniform(GeneratorDefaults::kMinSpeed,
                                GeneratorDefaults::kMaxSpeed);
    machine.efficiency =
        rng.uniform(GeneratorDefaults::kMinEff, GeneratorDefaults::kMaxEff);
    machine.name = "machine-" + std::to_string(r);
    machines.push_back(std::move(machine));
  }
  return machines;
}

std::vector<double> makeThetasUniform(int n, double thetaMin, double thetaMax,
                                      Rng& rng) {
  DSCT_CHECK(n >= 0);
  DSCT_CHECK_MSG(thetaMin > 0.0 && thetaMax >= thetaMin,
                 "invalid theta range [" << thetaMin << ", " << thetaMax << "]");
  std::vector<double> thetas(static_cast<std::size_t>(n));
  for (double& theta : thetas) theta = rng.uniform(thetaMin, thetaMax);
  return thetas;
}

std::vector<double> makeThetasEarliestHighEfficient(int n, double fracHigh,
                                                    double hiLo, double hiHi,
                                                    double loLo, double loHi,
                                                    Rng& rng) {
  DSCT_CHECK(fracHigh >= 0.0 && fracHigh <= 1.0);
  std::vector<double> thetas(static_cast<std::size_t>(n));
  const int cut = static_cast<int>(fracHigh * static_cast<double>(n));
  for (int j = 0; j < n; ++j) {
    thetas[static_cast<std::size_t>(j)] =
        j < cut ? rng.uniform(hiLo, hiHi) : rng.uniform(loLo, loHi);
  }
  return thetas;
}

Instance buildInstance(std::vector<Machine> machines,
                       const std::vector<double>& thetas,
                       const ScenarioSpec& spec, Rng& rng) {
  const int n = static_cast<int>(thetas.size());
  DSCT_CHECK(!machines.empty());

  // Accuracy functions first: d_max depends on Σ_j f_j^max.
  std::vector<PiecewiseLinearAccuracy> accuracies;
  accuracies.reserve(static_cast<std::size_t>(n));
  double totalFmax = 0.0;
  for (double theta : thetas) {
    accuracies.push_back(makePaperAccuracy(spec.amin, spec.amax, theta,
                                           spec.segments, spec.coverageEps));
    totalFmax += accuracies.back().fmax();
  }
  double totalSpeed = 0.0;
  double totalPower = 0.0;
  for (const Machine& machine : machines) {
    totalSpeed += machine.speed;
    totalPower += machine.power();
  }

  // ρ = m²·d_max / (Σ_j f_j^max · Σ_r s_r) — the paper's deadline tolerance.
  const double mm = static_cast<double>(machines.size());
  const double dmax = n > 0
                          ? spec.rho * totalFmax * totalSpeed / (mm * mm)
                          : 0.0;

  // Deadlines uniform in (0, d_max], with the largest pinned to d_max so the
  // β normalisation below is exact; sorted ascending. Task j (deadline rank
  // j) receives accuracy function j, matching scenario definitions that
  // speak of "the earliest tasks".
  std::vector<double> deadlines(static_cast<std::size_t>(n));
  for (int j = 0; j + 1 < n; ++j) {
    deadlines[static_cast<std::size_t>(j)] = rng.uniform(0.0, dmax);
  }
  if (n > 0) deadlines[static_cast<std::size_t>(n - 1)] = dmax;
  std::sort(deadlines.begin(), deadlines.end());

  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    tasks.push_back(Task{deadlines[static_cast<std::size_t>(j)],
                         accuracies[static_cast<std::size_t>(j)],
                         "task-" + std::to_string(j)});
  }

  if (spec.budgetMode == BudgetMode::kWorkloadEnergy) {
    // Reference energy: what the deadline-only optimum would consume.
    Instance unconstrained(tasks, machines,
                           std::numeric_limits<double>::max());
    const double reference = solveFrOpt(unconstrained).energy;
    return Instance(std::move(tasks), std::move(machines),
                    spec.beta * reference);
  }
  // β = B / (d_max · Σ_r P_r) — the paper's normalisation.
  const double budget = spec.beta * dmax * totalPower;
  return Instance(std::move(tasks), std::move(machines), budget);
}

Instance makeScenario(const ScenarioSpec& spec, double thetaMin,
                      double thetaMax, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Machine> machines = makeUniformMachines(spec.numMachines, rng);
  const std::vector<double> thetas =
      makeThetasUniform(spec.numTasks, thetaMin, thetaMax, rng);
  return buildInstance(std::move(machines), thetas, spec, rng);
}

}  // namespace dsct
