// EDF-LevelsOpt: discrete compression levels with *optimal* energy
// allocation (a stronger variant of the Lee & Song-style baseline).
//
// Routing is greedy (each task goes, in EDF order, to the machine where its
// highest deadline-feasible level is largest; ties to the least-loaded
// machine), but the level chosen per task is then decided globally by an
// exact multiple-choice knapsack over the energy budget (DP on a
// discretised budget; costs are rounded *up*, so the budget is never
// exceeded and the result is optimal for the chosen routing up to the
// discretisation resolution).
#pragma once

#include <vector>

#include "accuracy/levels.h"
#include "baselines/edf_nocompress.h"
#include "sched/types.h"

namespace dsct {

struct EdfLevelsOptOptions {
  std::vector<double> accuracyTargets{0.27, 0.55, 0.82};
  /// Budget discretisation buckets for the knapsack DP.
  int budgetBuckets = 2048;
  /// Cooperative stop token, polled per task in both the routing pass and
  /// the knapsack DP; tasks the DP never reached stay dropped.
  const CancelToken* cancel = nullptr;
  /// Optional per-machine energy caps (J, indexed like the instance's
  /// machines): the availability layer's battery charges (DESIGN.md §15).
  /// Enforced conservatively at routing time — a level counts as feasible on
  /// machine r only if reserving its energy on top of the levels already
  /// reserved there stays within cap_r. The knapsack only ever shrinks the
  /// reserved levels, so the caps hold for the final schedule. Null is
  /// bit-identical to a build without this field.
  const std::vector<double>* machineEnergyCaps = nullptr;
};

/// The per-task level menu after routing: the machine the task would run
/// on and the deadline-feasible levels there (ascending flops). An empty
/// level list means the task is dropped by routing.
struct LevelMenu {
  int machine = -1;
  std::vector<CompressionLevel> levels;
};

/// Routing step alone (exposed for testing). `machineEnergyCaps` filters
/// levels whose reserved energy would overdraw a machine's battery (see
/// EdfLevelsOptOptions::machineEnergyCaps); null means uncapped.
std::vector<LevelMenu> buildLevelMenus(
    const Instance& inst, const std::vector<double>& accuracyTargets,
    const std::vector<double>* machineEnergyCaps = nullptr);

BaselineResult solveEdfLevelsOpt(const Instance& inst,
                                 const EdfLevelsOptOptions& options = {});

}  // namespace dsct
