// EDF-3CompressionLevels baseline (paper Section 6, after Lee & Song [11]).
//
// Like EDF-NoCompression, but each task may run at one of a small number of
// discrete compression levels (by default the paper's 27% / 55% / 82%
// accuracy targets). For each task the scheduler picks, over machines in
// least-loaded order, the highest level that fits the deadline and the
// remaining energy budget.
#pragma once

#include <vector>

#include "baselines/edf_nocompress.h"
#include "sched/schedule.h"
#include "sched/types.h"

namespace dsct {

struct EdfLevelsOptions {
  /// Accuracy targets defining the discrete levels (clamped per task).
  std::vector<double> accuracyTargets{0.27, 0.55, 0.82};
  /// Cooperative stop token, polled per task; unplaced tasks stay dropped.
  const CancelToken* cancel = nullptr;
  /// Optional per-machine energy caps (J, indexed like the instance's
  /// machines): a level only fits on machine r if r's accumulated energy
  /// stays within (*machineEnergyCaps)[r] — the availability layer's
  /// battery charge (DESIGN.md §15). Null means uncapped, and the result
  /// is bit-identical to a build without this field.
  const std::vector<double>* machineEnergyCaps = nullptr;
};

BaselineResult solveEdfLevels(const Instance& inst,
                              const EdfLevelsOptions& options = {});

}  // namespace dsct
