// EDF-NoCompression baseline (paper Section 6).
//
// Tasks are considered in Earliest-Deadline-First order and placed, fully
// uncompressed (f_j^max FLOPs), on the least-loaded machine where they fit
// both their deadline and the remaining energy budget. Tasks that fit
// nowhere are dropped and retain their floor accuracy a_j(0).
#pragma once

#include "sched/schedule.h"
#include "sched/types.h"

namespace dsct {

struct BaselineResult {
  IntegralSchedule schedule;
  int scheduledTasks = 0;
  int droppedTasks = 0;
  double totalAccuracy = 0.0;
  double energy = 0.0;
};

BaselineResult solveEdfNoCompression(const Instance& inst);

}  // namespace dsct
