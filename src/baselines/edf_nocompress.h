// EDF-NoCompression baseline (paper Section 6).
//
// Tasks are considered in Earliest-Deadline-First order and placed, fully
// uncompressed (f_j^max FLOPs), on the least-loaded machine where they fit
// both their deadline and the remaining energy budget. Tasks that fit
// nowhere are dropped and retain their floor accuracy a_j(0).
#pragma once

#include "sched/schedule.h"
#include "sched/types.h"
#include "util/cancel.h"

namespace dsct {

struct BaselineResult {
  IntegralSchedule schedule;
  int scheduledTasks = 0;
  int droppedTasks = 0;
  double totalAccuracy = 0.0;
  double energy = 0.0;
  /// True when the solve stopped early at a cancel-token poll point; the
  /// schedule covers only the tasks placed so far (the rest are dropped).
  bool cancelled = false;
};

BaselineResult solveEdfNoCompression(const Instance& inst,
                                     const CancelToken* cancel = nullptr);

}  // namespace dsct
