#include "baselines/levels_opt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace dsct {

std::vector<LevelMenu> buildLevelMenus(
    const Instance& inst, const std::vector<double>& accuracyTargets,
    const std::vector<double>* machineEnergyCaps) {
  const int n = inst.numTasks();
  const int m = inst.numMachines();
  std::vector<LevelMenu> menus(static_cast<std::size_t>(n));
  // Tentative loads assume each task runs its largest feasible level; the
  // knapsack below only ever *shrinks* levels, so tasks start no later than
  // assumed here and deadlines stay satisfied. The same argument covers the
  // per-machine energy caps: `reserved` tracks the largest-level energy per
  // machine, and shrinking only releases energy.
  std::vector<double> load(static_cast<std::size_t>(m), 0.0);
  std::vector<double> reserved(static_cast<std::size_t>(m), 0.0);
  const auto capOf = [&](int r) {
    if (machineEnergyCaps == nullptr ||
        static_cast<std::size_t>(r) >= machineEnergyCaps->size()) {
      return std::numeric_limits<double>::infinity();
    }
    return (*machineEnergyCaps)[static_cast<std::size_t>(r)];
  };

  for (int j = 0; j < n; ++j) {
    const Task& task = inst.task(j);
    const auto levels = levelsForTargets(task.accuracy, accuracyTargets);
    int bestMachine = -1;
    std::size_t bestCount = 0;
    for (int r = 0; r < m; ++r) {
      // Count levels feasible on r given the current load. Levels are
      // ascending in flops, so the feasible ones are a prefix.
      std::size_t feasible = 0;
      for (const CompressionLevel& level : levels) {
        const double time = level.flops / inst.machine(r).speed;
        const double joules = level.flops / inst.machine(r).efficiency;
        if (load[static_cast<std::size_t>(r)] + time <=
                task.deadline + 1e-12 &&
            reserved[static_cast<std::size_t>(r)] + joules <=
                capOf(r) + 1e-12) {
          ++feasible;
        }
      }
      if (feasible > bestCount ||
          (feasible == bestCount && feasible > 0 && bestMachine >= 0 &&
           load[static_cast<std::size_t>(r)] <
               load[static_cast<std::size_t>(bestMachine)])) {
        bestCount = feasible;
        bestMachine = r;
      }
    }
    if (bestMachine < 0 || bestCount == 0) continue;  // dropped by routing
    LevelMenu& menu = menus[static_cast<std::size_t>(j)];
    menu.machine = bestMachine;
    menu.levels.assign(levels.begin(),
                       levels.begin() + static_cast<std::ptrdiff_t>(bestCount));
    // Reserve the largest feasible level's time and energy.
    load[static_cast<std::size_t>(bestMachine)] +=
        menu.levels.back().flops / inst.machine(bestMachine).speed;
    reserved[static_cast<std::size_t>(bestMachine)] +=
        menu.levels.back().flops / inst.machine(bestMachine).efficiency;
  }
  return menus;
}

BaselineResult solveEdfLevelsOpt(const Instance& inst,
                                 const EdfLevelsOptOptions& options) {
  DSCT_CHECK(options.budgetBuckets >= 1);
  const int n = inst.numTasks();
  const std::vector<LevelMenu> menus = buildLevelMenus(
      inst, options.accuracyTargets, options.machineEnergyCaps);
  bool cancelled = false;

  // --- multiple-choice knapsack over the energy budget ---
  const double budget = inst.energyBudget();
  if (budget <= 0.0) {
    // No energy: everything is dropped at its floor accuracy.
    BaselineResult result{
        IntegralSchedule::build(
            inst, std::vector<int>(static_cast<std::size_t>(n), -1),
            std::vector<double>(static_cast<std::size_t>(n), 0.0)),
        0, n, 0.0, 0.0};
    result.totalAccuracy = result.schedule.totalAccuracy(inst);
    return result;
  }
  const int q = options.budgetBuckets;
  const double bucket = budget / static_cast<double>(q);
  // Energy cost in buckets, rounded up (never exceeds the real budget).
  const auto cost = [&](int task, const CompressionLevel& level) {
    const int r = menus[static_cast<std::size_t>(task)].machine;
    const double joules = level.flops / inst.machine(r).efficiency;
    return static_cast<long>(std::ceil(joules / bucket - 1e-12));
  };

  constexpr double kNoValue = -1.0;
  // dp[b] = max extra accuracy (above the floor) using <= b buckets.
  std::vector<double> dp(static_cast<std::size_t>(q) + 1, 0.0);
  // choice[task][b] = selected level index (−1 = drop) at the DP step.
  std::vector<std::vector<int>> choice(
      static_cast<std::size_t>(n),
      std::vector<int>(static_cast<std::size_t>(q) + 1, -1));

  for (int j = 0; j < n; ++j) {
    if (stopRequested(options.cancel)) {
      cancelled = true;
      break;  // tasks the DP never reached keep choice -1 (dropped)
    }
    const LevelMenu& menu = menus[static_cast<std::size_t>(j)];
    if (menu.machine < 0) continue;
    const double floor = inst.task(j).amin();
    std::vector<double> nextDp(static_cast<std::size_t>(q) + 1, kNoValue);
    for (int b = 0; b <= q; ++b) {
      // Option: drop (keep the floor accuracy; no energy).
      nextDp[static_cast<std::size_t>(b)] = dp[static_cast<std::size_t>(b)];
      for (std::size_t l = 0; l < menu.levels.size(); ++l) {
        const long c = cost(j, menu.levels[l]);
        if (c > b) continue;
        const double gain = menu.levels[l].accuracy - floor;
        const double candidate =
            dp[static_cast<std::size_t>(b - c)] + gain;
        if (candidate > nextDp[static_cast<std::size_t>(b)]) {
          nextDp[static_cast<std::size_t>(b)] = candidate;
          choice[static_cast<std::size_t>(j)][static_cast<std::size_t>(b)] =
              static_cast<int>(l);
        }
      }
    }
    dp = std::move(nextDp);
  }

  // --- reconstruct choices ---
  std::vector<int> machineOf(static_cast<std::size_t>(n), -1);
  std::vector<double> duration(static_cast<std::size_t>(n), 0.0);
  long b = q;
  for (int j = n; j-- > 0;) {
    const LevelMenu& menu = menus[static_cast<std::size_t>(j)];
    if (menu.machine < 0) continue;
    const int l = choice[static_cast<std::size_t>(j)][static_cast<std::size_t>(b)];
    if (l < 0) continue;  // dropped by the knapsack
    const CompressionLevel& level =
        menu.levels[static_cast<std::size_t>(l)];
    machineOf[static_cast<std::size_t>(j)] = menu.machine;
    duration[static_cast<std::size_t>(j)] =
        level.flops / inst.machine(menu.machine).speed;
    b -= cost(j, level);
    DSCT_DCHECK(b >= 0);
  }

  BaselineResult result{IntegralSchedule::build(inst, std::move(machineOf),
                                                std::move(duration)),
                        0, 0, 0.0, 0.0};
  result.scheduledTasks = result.schedule.numScheduled();
  result.droppedTasks = n - result.scheduledTasks;
  result.totalAccuracy = result.schedule.totalAccuracy(inst);
  result.energy = result.schedule.energy(inst);
  result.cancelled = cancelled;
  return result;
}

}  // namespace dsct
