#include "baselines/edf_levels.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "accuracy/levels.h"
#include "util/check.h"

namespace dsct {

BaselineResult solveEdfLevels(const Instance& inst,
                              const EdfLevelsOptions& options) {
  const int n = inst.numTasks();
  const int m = inst.numMachines();
  std::vector<double> load(static_cast<std::size_t>(m), 0.0);
  std::vector<double> machineEnergy(static_cast<std::size_t>(m), 0.0);
  const std::vector<double>* caps = options.machineEnergyCaps;
  DSCT_CHECK(caps == nullptr || static_cast<int>(caps->size()) == m);
  double energyUsed = 0.0;

  std::vector<int> machineOf(static_cast<std::size_t>(n), -1);
  std::vector<double> duration(static_cast<std::size_t>(n), 0.0);

  bool cancelled = false;
  for (int j = 0; j < n; ++j) {
    if (stopRequested(options.cancel)) {
      cancelled = true;
      break;  // remaining tasks stay dropped at their floor accuracy
    }
    const Task& task = inst.task(j);
    const std::vector<CompressionLevel> levels =
        levelsForTargets(task.accuracy, options.accuracyTargets);

    // Machines in least-loaded-first order.
    std::vector<int> order(static_cast<std::size_t>(m));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return load[static_cast<std::size_t>(a)] <
             load[static_cast<std::size_t>(b)];
    });

    int chosenMachine = -1;
    double chosenTime = 0.0;
    double chosenAccuracy = -1.0;
    for (int r : order) {
      const Machine& machine = inst.machine(r);
      // Highest level first (levels are sorted by increasing flops).
      for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
        const double time = it->flops / machine.speed;
        const bool meetsDeadline =
            load[static_cast<std::size_t>(r)] + time <= task.deadline + 1e-12;
        const bool meetsBudget =
            energyUsed + time * machine.power() <=
            inst.energyBudget() + 1e-9;
        const bool meetsCap =
            caps == nullptr ||
            machineEnergy[static_cast<std::size_t>(r)] +
                    time * machine.power() <=
                (*caps)[static_cast<std::size_t>(r)] + 1e-9;
        if (!meetsDeadline || !meetsBudget || !meetsCap) continue;
        if (it->accuracy > chosenAccuracy) {
          chosenMachine = r;
          chosenTime = time;
          chosenAccuracy = it->accuracy;
        }
        break;  // lower levels on this machine can only be worse
      }
      // The least-loaded machine that fits the top level is optimal for this
      // greedy; but a more loaded machine may still fit a *higher* level, so
      // keep scanning until the top level has been achieved.
      if (chosenAccuracy >= levels.back().accuracy - 1e-12 &&
          chosenMachine >= 0) {
        break;
      }
    }
    if (chosenMachine < 0) continue;  // dropped
    machineOf[static_cast<std::size_t>(j)] = chosenMachine;
    duration[static_cast<std::size_t>(j)] = chosenTime;
    load[static_cast<std::size_t>(chosenMachine)] += chosenTime;
    const double joules = chosenTime * inst.machine(chosenMachine).power();
    machineEnergy[static_cast<std::size_t>(chosenMachine)] += joules;
    energyUsed += joules;
  }

  BaselineResult result{IntegralSchedule::build(inst, std::move(machineOf),
                                                std::move(duration)),
                        0, 0, 0.0, 0.0};
  result.scheduledTasks = result.schedule.numScheduled();
  result.droppedTasks = n - result.scheduledTasks;
  result.totalAccuracy = result.schedule.totalAccuracy(inst);
  result.energy = result.schedule.energy(inst);
  result.cancelled = cancelled;
  return result;
}

}  // namespace dsct
