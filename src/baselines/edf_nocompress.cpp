#include "baselines/edf_nocompress.h"

#include <vector>

namespace dsct {

BaselineResult solveEdfNoCompression(const Instance& inst,
                                     const CancelToken* cancel) {
  const int n = inst.numTasks();
  const int m = inst.numMachines();
  std::vector<double> load(static_cast<std::size_t>(m), 0.0);
  double energyUsed = 0.0;

  std::vector<int> machineOf(static_cast<std::size_t>(n), -1);
  std::vector<double> duration(static_cast<std::size_t>(n), 0.0);

  bool cancelled = false;
  for (int j = 0; j < n; ++j) {
    if (stopRequested(cancel)) {
      cancelled = true;
      break;  // remaining tasks stay dropped at their floor accuracy
    }
    const Task& task = inst.task(j);
    int best = -1;
    double bestLoad = 0.0;
    for (int r = 0; r < m; ++r) {
      const Machine& machine = inst.machine(r);
      const double time = task.fmax() / machine.speed;
      const bool meetsDeadline =
          load[static_cast<std::size_t>(r)] + time <= task.deadline + 1e-12;
      const bool meetsBudget =
          energyUsed + time * machine.power() <= inst.energyBudget() + 1e-9;
      if (!meetsDeadline || !meetsBudget) continue;
      if (best < 0 || load[static_cast<std::size_t>(r)] < bestLoad) {
        best = r;
        bestLoad = load[static_cast<std::size_t>(r)];
      }
    }
    if (best < 0) continue;  // dropped: keeps floor accuracy a_j(0)
    const double time = task.fmax() / inst.machine(best).speed;
    machineOf[static_cast<std::size_t>(j)] = best;
    duration[static_cast<std::size_t>(j)] = time;
    load[static_cast<std::size_t>(best)] += time;
    energyUsed += time * inst.machine(best).power();
  }

  BaselineResult result{IntegralSchedule::build(inst, std::move(machineOf),
                                                std::move(duration)),
                        0, 0, 0.0, 0.0};
  result.scheduledTasks = result.schedule.numScheduled();
  result.droppedTasks = n - result.scheduledTasks;
  result.totalAccuracy = result.schedule.totalAccuracy(inst);
  result.energy = result.schedule.energy(inst);
  result.cancelled = cancelled;
  return result;
}

}  // namespace dsct
