// Algorithm 2 of the paper: ComputeNaiveSolution.
//
// Builds the naive energy profile (most-efficient machines first), collapses
// the profile-limited cluster into an equivalent unit-speed single machine
// via "temporary deadlines" d_j^temp = Σ_r s_r · min(d_j, p_r), solves it
// with Algorithm 1, and redistributes the resulting per-task work across
// machines with the common-clock rule (least-efficient machines are filled
// to their profile and dropped from the active set).
#pragma once

#include "sched/energy_profile.h"
#include "sched/schedule.h"
#include "sched/types.h"

namespace dsct {

struct NaiveSolution {
  FractionalSchedule schedule;
  EnergyProfile profile;  ///< the naive profile the schedule respects
};

NaiveSolution computeNaiveSolution(const Instance& inst);

/// The core of Algorithm 2, generalised to an arbitrary (budget-feasible)
/// energy profile: the optimal fractional schedule subject to per-machine
/// load caps `profile` and the deadline constraints. Used with the naive
/// profile by computeNaiveSolution and with refined profiles by DSCT-EA-
/// FR-OPT's refine/re-solve iteration.
FractionalSchedule solveForProfile(const Instance& inst,
                                   const EnergyProfile& profile);

/// As above, but reusing a pre-sorted segment list (see sortSegmentJobs) and
/// a pre-computed single-machine work vector, so hot-path callers (the
/// ProfileEvaluator) skip the per-call flatten + sort + reduction. `work`
/// must be the result of scheduleSingleMachineSorted on the profile's
/// temporary deadlines.
FractionalSchedule distributeWork(const Instance& inst,
                                  const EnergyProfile& profile,
                                  const std::vector<double>& work);

/// The temporary deadlines used by the single-machine reduction (exposed for
/// testing): d_j^temp in TFLOP on the unit-speed equivalent machine.
std::vector<double> temporaryDeadlines(const Instance& inst,
                                       const EnergyProfile& profile);

}  // namespace dsct
