// Text rendering of integral schedules: a per-machine ASCII Gantt chart
// used by the CLI and example programs.
#pragma once

#include <string>

#include "sched/schedule.h"
#include "sched/types.h"

namespace dsct {

struct RenderOptions {
  int width = 72;          ///< columns used for the timeline
  bool showAccuracy = true;
};

/// One line per machine, tasks shown as [j---] blocks proportional to their
/// duration, followed by a per-task summary.
std::string renderGantt(const Instance& inst, const IntegralSchedule& schedule,
                        const RenderOptions& options = {});

}  // namespace dsct
