// Algorithm 4 of the paper: DSCT-EA-FR-OPT — optimal solution of the
// fractional relaxation via ComputeNaiveSolution + RefineProfile, with
// profile-space escape searches driven by the ProfileEvaluator engine.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "sched/energy_profile.h"
#include "sched/profile_cache.h"
#include "sched/profile_evaluator.h"
#include "sched/refine_profile.h"
#include "sched/schedule.h"
#include "sched/types.h"

namespace dsct {

class ThreadPool;

/// Per-solve observability: how much work the profile searches did and where
/// the wall time went (rendered by bench/micro_algorithms and
/// bench/table1_fr_times).
struct FrOptCounters {
  long long evaluations = 0;       ///< fused profile evaluations
  long long cacheHits = 0;         ///< memoised evaluations served
  long long scheduleSolves = 0;    ///< full n×m schedule materialisations
  long long directionLpSolves = 0; ///< direction-search LP solves
  int outerRounds = 0;             ///< fixed-point rounds executed
  int pairMoves = 0;               ///< adopted pairwise profile transfers
  int directionSteps = 0;          ///< adopted direction-search steps
  double expandSeconds = 0.0;      ///< wall time in expansion candidates
  double refineSeconds = 0.0;      ///< wall time in RefineProfile
  double pairSeconds = 0.0;        ///< wall time in the pairwise search
  double directionSeconds = 0.0;   ///< wall time in the direction search
  double totalSeconds = 0.0;       ///< whole solve

  // RefineProfile's incremental slack engine (summed over refine calls).
  long long slackQueries = 0;
  long long slackHits = 0;          ///< served from the (task, machine) memo
  long long slackRebuilds = 0;      ///< per-machine column recomputations
  long long slackInvalidations = 0; ///< machine version bumps

  // Cross-solve ProfileCache traffic attributable to this solve (all zero
  // when no cache is attached via FrOptOptions::sharedCache).
  long long crossHits = 0;
  long long crossMisses = 0;
  long long crossInvalidations = 0;
  long long crossContended = 0;  ///< shard-mutex contention events
  long long crossShards = 0;     ///< shard count of the attached cache
};

struct FrOptOptions {
  RefineOptions refine;
  /// Worker threads for the independent profile evaluations (expansion
  /// candidates, pairwise directions, derivative probes). 0 runs serially;
  /// both modes produce bit-identical schedules — evaluations are pure
  /// functions of their profile and all reductions are index-ordered.
  std::size_t threads = 0;
  /// Borrowed pool (overrides `threads`). Safe to pass the pool whose worker
  /// is running this solve: the fan-out then executes inline.
  ThreadPool* pool = nullptr;
  /// Borrowed cross-solve evaluation cache (see profile_cache.h). Attaching
  /// one never changes the solution — shared hits are bit-identical to
  /// fresh evaluations — it only skips repeated work across solves. The
  /// serving loop passes one cache across all of a run's epochs.
  ProfileCache* sharedCache = nullptr;
  /// With both a pool and `sharedCache` set, batch evaluations look the
  /// shared cache up from the worker threads (the cache is sharded and
  /// thread-safe) and stage misses per index; new entries are committed
  /// single-threaded in index order. Schedules, objectives, and cache
  /// contents stay bit-identical to the serial path
  /// (tests/sched_concurrent_cache_test.cpp).
  bool parallelCachedEval = false;
  /// Cooperative stop token, polled at the outer fixed-point rounds and
  /// inside the pair/direction escape searches (and forwarded to
  /// RefineProfile's round loop). On early exit the incumbent schedule is
  /// returned with `cancelled` set — it is feasible but may be suboptimal.
  const CancelToken* cancel = nullptr;
  /// Optional per-machine energy caps (J, indexed like the instance's
  /// machines): the availability layer's battery charges (DESIGN.md §15).
  /// A cap is one more projection in the profile search — machine r's load
  /// never exceeds cap_r / P_r seconds, in the naive start, the expansion
  /// candidates, the pairwise transfers, the direction search, and
  /// RefineProfile's grow side. Null means uncapped and is bit-identical to
  /// a build without this field.
  const std::vector<double>* machineEnergyCaps = nullptr;
};

struct FrOptResult {
  FractionalSchedule schedule;
  EnergyProfile naiveProfile;    ///< profile before refinement
  EnergyProfile refinedProfile;  ///< realised machine loads after refinement
  RefineStats refineStats;
  FrOptCounters counters;
  double totalAccuracy = 0.0;
  double energy = 0.0;  ///< Joules actually consumed
  /// True when the solve stopped early at a cancel-token poll point.
  bool cancelled = false;
};

FrOptResult solveFrOpt(const Instance& inst,
                       const RefineOptions& refineOptions = {});
FrOptResult solveFrOpt(const Instance& inst, const FrOptOptions& options);

/// One pairwise-transfer step (exposed for testing): the best energy-moving
/// transfer over all machine pairs starting from `loads`, or nullopt when no
/// direction improves on `baseAccuracy`. Every probed move conserves energy:
/// the search interval is capped at min(donor energy, headroom-to-horizon of
/// the recipient), so no probe silently discards energy at the horizon.
struct PairMove {
  int from = -1;
  int to = -1;
  double delta = 0.0;     ///< Joules moved from `from` to `to`
  double accuracy = 0.0;  ///< evaluator accuracy of `profile`
  EnergyProfile profile;  ///< loads after the move
};
/// Validator hook for property tests: invoked with every profile the pair
/// search is about to evaluate (screen probes, ternary-search probes, and
/// the final move profile), together with the direction and transfer size
/// that produced it. When a ThreadPool is supplied the hook runs on worker
/// threads and must be thread-safe.
using PairProbeHook =
    std::function<void(int from, int to, double delta,
                       const EnergyProfile& probe)>;

/// `maxLoads` optionally caps each recipient's load (seconds): the per-
/// machine energy caps translated to time, min'd with the horizon. Null
/// means horizon-only, the historical behaviour.
std::optional<PairMove> bestPairMove(const Instance& inst,
                                     const ProfileEvaluator& evaluator,
                                     const EnergyProfile& loads,
                                     double baseAccuracy,
                                     ThreadPool* pool = nullptr,
                                     const PairProbeHook* probeHook = nullptr,
                                     const EnergyProfile* maxLoads = nullptr);

}  // namespace dsct
