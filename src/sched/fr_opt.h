// Algorithm 4 of the paper: DSCT-EA-FR-OPT — optimal solution of the
// fractional relaxation via ComputeNaiveSolution + RefineProfile.
#pragma once

#include "sched/energy_profile.h"
#include "sched/refine_profile.h"
#include "sched/schedule.h"
#include "sched/types.h"

namespace dsct {

struct FrOptResult {
  FractionalSchedule schedule;
  EnergyProfile naiveProfile;    ///< profile before refinement
  EnergyProfile refinedProfile;  ///< realised machine loads after refinement
  RefineStats refineStats;
  double totalAccuracy = 0.0;
  double energy = 0.0;  ///< Joules actually consumed
};

FrOptResult solveFrOpt(const Instance& inst,
                       const RefineOptions& refineOptions = {});

}  // namespace dsct
