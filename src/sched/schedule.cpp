#include "sched/schedule.h"

#include <cmath>
#include <numeric>

#include "util/check.h"

namespace dsct {

FractionalSchedule::FractionalSchedule(int numTasks, int numMachines)
    : n_(numTasks), m_(numMachines),
      t_(static_cast<std::size_t>(numTasks) * static_cast<std::size_t>(numMachines),
         0.0) {
  DSCT_CHECK(numTasks >= 0);
  DSCT_CHECK(numMachines > 0);
}

std::size_t FractionalSchedule::index(int j, int r) const {
  DSCT_DCHECK(j >= 0 && j < n_);
  DSCT_DCHECK(r >= 0 && r < m_);
  return static_cast<std::size_t>(j) * static_cast<std::size_t>(m_) +
         static_cast<std::size_t>(r);
}

void FractionalSchedule::set(int j, int r, double seconds) {
  DSCT_CHECK_MSG(seconds >= -1e-9, "negative processing time " << seconds);
  t_[index(j, r)] = std::max(0.0, seconds);
}

double FractionalSchedule::flops(const Instance& inst, int j) const {
  double f = 0.0;
  for (int r = 0; r < m_; ++r) f += inst.machine(r).speed * at(j, r);
  return f;
}

double FractionalSchedule::taskAccuracy(const Instance& inst, int j) const {
  return inst.task(j).accuracy.value(flops(inst, j));
}

double FractionalSchedule::totalAccuracy(const Instance& inst) const {
  double total = 0.0;
  for (int j = 0; j < n_; ++j) total += taskAccuracy(inst, j);
  return total;
}

double FractionalSchedule::totalError(const Instance& inst) const {
  return static_cast<double>(n_) - totalAccuracy(inst);
}

double FractionalSchedule::energy(const Instance& inst) const {
  double joules = 0.0;
  for (int r = 0; r < m_; ++r) {
    joules += machineLoad(r) * inst.machine(r).power();
  }
  return joules;
}

double FractionalSchedule::machineLoad(int r) const {
  double load = 0.0;
  for (int j = 0; j < n_; ++j) load += at(j, r);
  return load;
}

std::vector<double> FractionalSchedule::machineLoads() const {
  std::vector<double> loads(static_cast<std::size_t>(m_));
  for (int r = 0; r < m_; ++r) loads[static_cast<std::size_t>(r)] = machineLoad(r);
  return loads;
}

double FractionalSchedule::prefixTime(int j, int r) const {
  double prefix = 0.0;
  for (int i = 0; i <= j; ++i) prefix += at(i, r);
  return prefix;
}

IntegralSchedule IntegralSchedule::build(const Instance& inst,
                                         std::vector<int> machineOf,
                                         std::vector<double> duration) {
  const int n = inst.numTasks();
  const int m = inst.numMachines();
  DSCT_CHECK(static_cast<int>(machineOf.size()) == n);
  DSCT_CHECK(static_cast<int>(duration.size()) == n);
  IntegralSchedule s;
  s.machineOf_ = std::move(machineOf);
  s.duration_ = std::move(duration);
  s.start_.assign(static_cast<std::size_t>(n), 0.0);
  s.timelines_.assign(static_cast<std::size_t>(m), {});
  std::vector<double> clock(static_cast<std::size_t>(m), 0.0);
  for (int j = 0; j < n; ++j) {
    const int r = s.machineOf_[static_cast<std::size_t>(j)];
    if (r < 0) {
      s.duration_[static_cast<std::size_t>(j)] = 0.0;
      continue;
    }
    DSCT_CHECK_MSG(r < m, "machine index out of range");
    const double dur = s.duration_[static_cast<std::size_t>(j)];
    DSCT_CHECK_MSG(dur >= -1e-9, "negative duration");
    const double start = clock[static_cast<std::size_t>(r)];
    s.start_[static_cast<std::size_t>(j)] = start;
    s.timelines_[static_cast<std::size_t>(r)].push_back(
        {j, start, std::max(0.0, dur)});
    clock[static_cast<std::size_t>(r)] += std::max(0.0, dur);
  }
  return s;
}

const std::vector<ScheduledTask>& IntegralSchedule::timeline(int r) const {
  DSCT_CHECK(r >= 0 && r < static_cast<int>(timelines_.size()));
  return timelines_[static_cast<std::size_t>(r)];
}

double IntegralSchedule::flops(const Instance& inst, int j) const {
  const int r = machineOf(j);
  if (r < 0) return 0.0;
  return inst.machine(r).speed * duration(j);
}

double IntegralSchedule::taskAccuracy(const Instance& inst, int j) const {
  return inst.task(j).accuracy.value(flops(inst, j));
}

double IntegralSchedule::totalAccuracy(const Instance& inst) const {
  double total = 0.0;
  for (int j = 0; j < numTasks(); ++j) total += taskAccuracy(inst, j);
  return total;
}

double IntegralSchedule::averageAccuracy(const Instance& inst) const {
  if (numTasks() == 0) return 0.0;
  return totalAccuracy(inst) / static_cast<double>(numTasks());
}

double IntegralSchedule::totalError(const Instance& inst) const {
  return static_cast<double>(numTasks()) - totalAccuracy(inst);
}

double IntegralSchedule::energy(const Instance& inst) const {
  double joules = 0.0;
  for (int r = 0; r < inst.numMachines(); ++r) {
    joules += machineLoad(r) * inst.machine(r).power();
  }
  return joules;
}

double IntegralSchedule::machineLoad(int r) const {
  const auto& tl = timeline(r);
  return std::accumulate(tl.begin(), tl.end(), 0.0,
                         [](double acc, const ScheduledTask& e) {
                           return acc + e.duration;
                         });
}

std::vector<double> IntegralSchedule::machineLoads() const {
  std::vector<double> loads(timelines_.size());
  for (std::size_t r = 0; r < timelines_.size(); ++r) {
    loads[r] = machineLoad(static_cast<int>(r));
  }
  return loads;
}

int IntegralSchedule::numScheduled() const {
  int count = 0;
  for (int j = 0; j < numTasks(); ++j) {
    if (machineOf(j) >= 0 && duration(j) > 0.0) ++count;
  }
  return count;
}

FractionalSchedule IntegralSchedule::toFractional(const Instance& inst) const {
  FractionalSchedule f(inst.numTasks(), inst.numMachines());
  for (int j = 0; j < numTasks(); ++j) {
    const int r = machineOf(j);
    if (r >= 0) f.set(j, r, duration(j));
  }
  return f;
}

}  // namespace dsct
