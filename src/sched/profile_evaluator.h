// Profile-evaluation engine for DSCT-EA-FR-OPT's inner loop.
//
// Every step of the FR-OPT fixed-point iteration (expansion candidates, the
// pairwise transfer search, the direction search) asks the same question
// thousands of times: "what is the optimal total accuracy under per-machine
// load caps p?". Answering it from scratch re-flattens and re-sorts the
// segment jobs and materialises a full n×m schedule each time. This engine
// precomputes the sorted segment list once per instance, answers the
// accuracy question in a single fused pass (temporary deadlines →
// Algorithm 1 → accuracy, no schedule matrix), memoises answers keyed on
// the quantised profile vector, and exposes counters so benchmarks can see
// where the work goes. Batch evaluation optionally fans misses across a
// ThreadPool — and, in the parallel cached mode, reads the sharded
// cross-solve cache from the workers; every mode computes bit-identical
// values and commits cache writes single-threaded in index order, so results
// and cache contents are deterministic regardless of interleaving.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "sched/energy_profile.h"
#include "sched/profile_cache.h"
#include "sched/schedule.h"
#include "sched/single_machine.h"
#include "sched/types.h"

namespace dsct {

class ThreadPool;

/// Observability counters for one evaluator (and, via FrOptResult, one
/// FR-OPT solve).
struct EvaluatorCounters {
  long long evaluations = 0;    ///< fused profile evaluations performed
  long long cacheHits = 0;      ///< memoised answers served
  long long scheduleSolves = 0; ///< full n×m schedule materialisations
};

class ProfileEvaluator {
 public:
  /// `shared` (optional, borrowed) is a cross-solve ProfileCache consulted
  /// on local-memo misses and fed every newly computed answer. Shared hits
  /// are bit-identical to fresh evaluations (exact-bit keys; see
  /// profile_cache.h), so attaching a cache never changes results. Stores
  /// happen on the coordinating thread only; lookups run there too unless
  /// evaluateBatch's parallel cached mode is requested (the cache is sharded
  /// and thread-safe, so workers may read it concurrently).
  explicit ProfileEvaluator(const Instance& inst,
                            ProfileCache* shared = nullptr);

  ProfileEvaluator(const ProfileEvaluator&) = delete;
  ProfileEvaluator& operator=(const ProfileEvaluator&) = delete;

  const Instance& instance() const { return inst_; }

  /// Optimal total accuracy under per-machine load caps `profile`, without
  /// materialising the schedule. Pure and thread-safe; no memoisation.
  double evaluate(const EnergyProfile& profile) const;

  /// Memoised evaluate(). Not thread-safe — call from the coordinating
  /// thread only; worker threads use evaluate() or evaluateBatch().
  double cached(const EnergyProfile& profile);

  /// Evaluate many profiles, serving memoised answers and computing the
  /// misses — in index order serially, or via `pool` when given. With
  /// `parallelCachedEval` set (and a pool and a shared cache attached), the
  /// workers additionally look the sharded shared cache up concurrently and
  /// stage their results per index; a single-threaded commit phase then
  /// inserts new answers into both caches in index order. All modes produce
  /// bit-identical values *and* bit-identical cache contents — evaluations
  /// are pure functions of their profile, lookups never mutate, and every
  /// write happens in the index-ordered commit phase regardless of how the
  /// workers interleave (tests/sched_concurrent_cache_test.cpp).
  std::vector<double> evaluateBatch(std::span<const EnergyProfile> profiles,
                                    ThreadPool* pool,
                                    bool parallelCachedEval = false);

  /// Full optimal schedule for `profile` (Algorithm 2's core), reusing the
  /// pre-sorted segment list. Thread-safe.
  FractionalSchedule schedule(const EnergyProfile& profile) const;

  /// Snapshot of the counters accumulated so far.
  EvaluatorCounters counters() const;

 private:
  using CacheKey = std::vector<std::int64_t>;
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const;
  };

  CacheKey keyOf(const EnergyProfile& profile) const;
  std::vector<double> workFor(const EnergyProfile& profile) const;

  const Instance& inst_;
  std::vector<SegmentJob> sortedSegments_;  ///< slope-desc, built once
  double quantum_;  ///< cache-key resolution (seconds of profile)

  ProfileCache* shared_;           ///< cross-solve cache (may be null)
  std::uint64_t fingerprint_ = 0;  ///< instance fingerprint (when shared)

  std::unordered_map<CacheKey, double, CacheKeyHash> cache_;
  mutable std::atomic<long long> evaluations_{0};
  mutable std::atomic<long long> scheduleSolves_{0};
  long long cacheHits_ = 0;
};

}  // namespace dsct
