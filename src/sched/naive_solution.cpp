#include "sched/naive_solution.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sched/single_machine.h"
#include "util/check.h"

namespace dsct {

namespace {
constexpr double kTimeTol = 1e-12;
}

std::vector<double> temporaryDeadlines(const Instance& inst,
                                       const EnergyProfile& profile) {
  DSCT_CHECK(static_cast<int>(profile.size()) == inst.numMachines());
  std::vector<double> temp(static_cast<std::size_t>(inst.numTasks()), 0.0);
  for (int j = 0; j < inst.numTasks(); ++j) {
    const double dj = inst.task(j).deadline;
    double capacity = 0.0;
    for (int r = 0; r < inst.numMachines(); ++r) {
      capacity += inst.machine(r).speed *
                  std::min(dj, profile[static_cast<std::size_t>(r)]);
    }
    temp[static_cast<std::size_t>(j)] = capacity;
  }
  return temp;
}

FractionalSchedule solveForProfile(const Instance& inst,
                                   const EnergyProfile& profile) {
  // --- single-machine reduction (Algorithm 2 lines 6-9) ---
  // On the unit-speed equivalent machine, "time" is TFLOP, so Algorithm 1
  // returns the FLOP quota w_j of each task.
  DSCT_CHECK(static_cast<int>(profile.size()) == inst.numMachines());
  if (inst.numTasks() == 0) {
    return FractionalSchedule(0, inst.numMachines());
  }
  const std::vector<double> temp = temporaryDeadlines(inst, profile);
  const std::vector<double> work =
      scheduleSingleMachine(temp, 1.0, makeSegmentJobs(inst.tasks()));
  return distributeWork(inst, profile, work);
}

FractionalSchedule distributeWork(const Instance& inst,
                                  const EnergyProfile& profile,
                                  const std::vector<double>& work) {
  DSCT_CHECK(static_cast<int>(profile.size()) == inst.numMachines());
  DSCT_CHECK(static_cast<int>(work.size()) == inst.numTasks());
  const int n = inst.numTasks();
  const int m = inst.numMachines();
  FractionalSchedule schedule(n, m);
  if (n == 0) return schedule;

  // --- distribute work across machines (lines 10-21) ---
  // Invariant: all machines still in the active set share a common clock T
  // (every active machine has processed each previous task for the same
  // duration). The active machine with the smallest profile is always the
  // first to fill up, keeping T <= min(active profiles); deadline
  // feasibility follows from the temporary-deadline capacity argument
  // (DESIGN.md §6).
  std::vector<int> active;
  active.reserve(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) active.push_back(r);
  // Sort by profile descending so the smallest-profile machine sits at the
  // back; ties resolved toward lower efficiency leaving the back first.
  std::stable_sort(active.begin(), active.end(), [&](int a, int b) {
    const double pa = profile[static_cast<std::size_t>(a)];
    const double pb = profile[static_cast<std::size_t>(b)];
    if (pa != pb) return pa > pb;
    return inst.machine(a).efficiency > inst.machine(b).efficiency;
  });
  double clock = 0.0;
  double activeSpeed = 0.0;
  for (int r : active) activeSpeed += inst.machine(r).speed;

  for (int j = 0; j < n; ++j) {
    double w = work[static_cast<std::size_t>(j)];  // TFLOP still to place
    while (w > kTimeTol && !active.empty()) {
      const int kMin = active.back();  // smallest remaining profile
      const double pMin = profile[static_cast<std::size_t>(kMin)];
      const double tau = w / activeSpeed;
      if (clock + tau > pMin + kTimeTol) {
        // kMin would overflow its profile: fill it exactly and drop it.
        const double delta = std::max(0.0, pMin - clock);
        if (delta > 0.0) {
          schedule.add(j, kMin, delta);
          w -= inst.machine(kMin).speed * delta;
        }
        activeSpeed -= inst.machine(kMin).speed;
        active.pop_back();
        continue;
      }
      for (int r : active) schedule.add(j, r, tau);
      clock += tau;
      w = 0.0;
    }
    // Any residual w (active set exhausted) is dropped: the task is capped
    // by the cluster's profile capacity, exactly as in the paper.
  }
  return schedule;
}

NaiveSolution computeNaiveSolution(const Instance& inst) {
  EnergyProfile profile = naiveProfile(inst);
  FractionalSchedule schedule = solveForProfile(inst, profile);
  return NaiveSolution{std::move(schedule), std::move(profile)};
}

}  // namespace dsct
