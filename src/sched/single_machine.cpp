#include "sched/single_machine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sched/suffix_slack_tree.h"
#include "util/check.h"

namespace dsct {

std::vector<SegmentJob> makeSegmentJobs(std::span<const Task> tasks) {
  std::vector<SegmentJob> segments;
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    const PiecewiseLinearAccuracy& acc = tasks[j].accuracy;
    for (int k = 0; k < acc.numSegments(); ++k) {
      const AccuracySegment seg = acc.segment(k);
      segments.push_back(
          {static_cast<int>(j), k, seg.slope, seg.flops()});
    }
  }
  return segments;
}

void sortSegmentJobs(std::vector<SegmentJob>& segments) {
  // Non-increasing slope; ties broken by (task, position) for determinism.
  // Within a task, concavity already orders segments by position.
  std::sort(segments.begin(), segments.end(),
            [](const SegmentJob& a, const SegmentJob& b) {
              if (a.slope != b.slope) return a.slope > b.slope;
              if (a.task != b.task) return a.task < b.task;
              return a.position < b.position;
            });
}

std::vector<double> scheduleSingleMachineSorted(
    std::span<const double> deadlines, double speed,
    std::span<const SegmentJob> sortedSegments) {
  const int n = static_cast<int>(deadlines.size());
  std::vector<double> t(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return t;

  // slack_i = d_i − prefix_i; a segment of task j may grow t_j by
  // min_{i >= j} slack_i (lines 6-7 of Algorithm 1, extended to include j
  // itself), after which every slack at or after j shrinks by the grant.
  SuffixSlackTree slack(deadlines);

  for (const SegmentJob& seg : sortedSegments) {
    // Zero-slope segments add no accuracy; granting them slack only inflates
    // energy and (for flattened comm-starved tasks) invents phantom work.
    // They sort last, so skipping them cannot change any other allocation.
    if (seg.slope <= 0.0) continue;
    const std::size_t j = static_cast<std::size_t>(seg.task);
    const double contribution =
        std::max(0.0, std::min(seg.flops / speed, slack.suffixMin(j)));
    if (contribution <= 0.0) continue;
    t[j] += contribution;
    slack.suffixAdd(j, -contribution);
  }
  return t;
}

std::vector<double> scheduleSingleMachine(std::span<const double> deadlines,
                                          double speed,
                                          std::vector<SegmentJob> segments) {
  DSCT_CHECK_MSG(speed > 0.0, "machine speed must be positive");
  const int n = static_cast<int>(deadlines.size());
  for (int j = 0; j + 1 < n; ++j) {
    DSCT_CHECK_MSG(deadlines[static_cast<std::size_t>(j)] <=
                       deadlines[static_cast<std::size_t>(j + 1)] + 1e-12,
                   "deadlines must be non-decreasing");
  }
  for (const SegmentJob& seg : segments) {
    DSCT_CHECK_MSG(seg.task >= 0 && seg.task < n,
                   "segment references unknown task " << seg.task);
    DSCT_CHECK(seg.flops >= 0.0);
    DSCT_CHECK(seg.slope >= 0.0);
  }

  sortSegmentJobs(segments);
  return scheduleSingleMachineSorted(deadlines, speed, segments);
}

std::vector<double> scheduleSingleMachine(std::span<const Task> tasks,
                                          double speed) {
  std::vector<double> deadlines;
  deadlines.reserve(tasks.size());
  for (const Task& task : tasks) deadlines.push_back(task.deadline);
  return scheduleSingleMachine(deadlines, speed, makeSegmentJobs(tasks));
}

}  // namespace dsct
