#include "sched/single_machine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace dsct {

namespace {

/// Lazy segment tree over the per-task slacks v_i = d_i − prefix_i with two
/// operations, both on suffix ranges [j, n): minimum query and uniform add.
/// Granting `c` seconds to task j shrinks every slack at or after j by `c`,
/// so Algorithm 1's inner loops become O(log n) instead of O(n).
class SuffixSlackTree {
 public:
  explicit SuffixSlackTree(std::span<const double> initial)
      : n_(initial.size()) {
    size_ = 1;
    while (size_ < std::max<std::size_t>(1, n_)) size_ <<= 1;
    min_.assign(2 * size_, std::numeric_limits<double>::infinity());
    add_.assign(2 * size_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) min_[size_ + i] = initial[i];
    for (std::size_t i = size_ - 1; i >= 1; --i) {
      min_[i] = std::min(min_[2 * i], min_[2 * i + 1]);
    }
  }

  /// min_{i >= j} v_i (infinity for j >= n).
  double suffixMin(std::size_t j) const {
    if (j >= n_) return std::numeric_limits<double>::infinity();
    return rangeMin(1, 0, size_, j, n_);
  }

  /// v_i += delta for all i >= j.
  void suffixAdd(std::size_t j, double delta) {
    if (j >= n_) return;
    rangeAdd(1, 0, size_, j, n_, delta);
  }

 private:
  double rangeMin(std::size_t node, std::size_t lo, std::size_t hi,
                  std::size_t ql, std::size_t qr) const {
    if (qr <= lo || hi <= ql) {
      return std::numeric_limits<double>::infinity();
    }
    if (ql <= lo && hi <= qr) return min_[node] + add_[node];
    const std::size_t mid = (lo + hi) / 2;
    return add_[node] + std::min(rangeMin(2 * node, lo, mid, ql, qr),
                                 rangeMin(2 * node + 1, mid, hi, ql, qr));
  }

  void rangeAdd(std::size_t node, std::size_t lo, std::size_t hi,
                std::size_t ql, std::size_t qr, double delta) {
    if (qr <= lo || hi <= ql) return;
    if (ql <= lo && hi <= qr) {
      add_[node] += delta;
      return;
    }
    const std::size_t mid = (lo + hi) / 2;
    rangeAdd(2 * node, lo, mid, ql, qr, delta);
    rangeAdd(2 * node + 1, mid, hi, ql, qr, delta);
    min_[node] = std::min(min_[2 * node] + add_[2 * node],
                          min_[2 * node + 1] + add_[2 * node + 1]);
  }

  std::size_t n_;
  std::size_t size_;
  std::vector<double> min_;  ///< subtree minimum, excluding this node's add
  std::vector<double> add_;  ///< pending uniform add for the whole subtree
};

}  // namespace

std::vector<SegmentJob> makeSegmentJobs(std::span<const Task> tasks) {
  std::vector<SegmentJob> segments;
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    const PiecewiseLinearAccuracy& acc = tasks[j].accuracy;
    for (int k = 0; k < acc.numSegments(); ++k) {
      const AccuracySegment seg = acc.segment(k);
      segments.push_back(
          {static_cast<int>(j), k, seg.slope, seg.flops()});
    }
  }
  return segments;
}

void sortSegmentJobs(std::vector<SegmentJob>& segments) {
  // Non-increasing slope; ties broken by (task, position) for determinism.
  // Within a task, concavity already orders segments by position.
  std::sort(segments.begin(), segments.end(),
            [](const SegmentJob& a, const SegmentJob& b) {
              if (a.slope != b.slope) return a.slope > b.slope;
              if (a.task != b.task) return a.task < b.task;
              return a.position < b.position;
            });
}

std::vector<double> scheduleSingleMachineSorted(
    std::span<const double> deadlines, double speed,
    std::span<const SegmentJob> sortedSegments) {
  const int n = static_cast<int>(deadlines.size());
  std::vector<double> t(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return t;

  // slack_i = d_i − prefix_i; a segment of task j may grow t_j by
  // min_{i >= j} slack_i (lines 6-7 of Algorithm 1, extended to include j
  // itself), after which every slack at or after j shrinks by the grant.
  SuffixSlackTree slack(deadlines);

  for (const SegmentJob& seg : sortedSegments) {
    // Zero-slope segments add no accuracy; granting them slack only inflates
    // energy and (for flattened comm-starved tasks) invents phantom work.
    // They sort last, so skipping them cannot change any other allocation.
    if (seg.slope <= 0.0) continue;
    const std::size_t j = static_cast<std::size_t>(seg.task);
    const double contribution =
        std::max(0.0, std::min(seg.flops / speed, slack.suffixMin(j)));
    if (contribution <= 0.0) continue;
    t[j] += contribution;
    slack.suffixAdd(j, -contribution);
  }
  return t;
}

std::vector<double> scheduleSingleMachine(std::span<const double> deadlines,
                                          double speed,
                                          std::vector<SegmentJob> segments) {
  DSCT_CHECK_MSG(speed > 0.0, "machine speed must be positive");
  const int n = static_cast<int>(deadlines.size());
  for (int j = 0; j + 1 < n; ++j) {
    DSCT_CHECK_MSG(deadlines[static_cast<std::size_t>(j)] <=
                       deadlines[static_cast<std::size_t>(j + 1)] + 1e-12,
                   "deadlines must be non-decreasing");
  }
  for (const SegmentJob& seg : segments) {
    DSCT_CHECK_MSG(seg.task >= 0 && seg.task < n,
                   "segment references unknown task " << seg.task);
    DSCT_CHECK(seg.flops >= 0.0);
    DSCT_CHECK(seg.slope >= 0.0);
  }

  sortSegmentJobs(segments);
  return scheduleSingleMachineSorted(deadlines, speed, segments);
}

std::vector<double> scheduleSingleMachine(std::span<const Task> tasks,
                                          double speed) {
  std::vector<double> deadlines;
  deadlines.reserve(tasks.size());
  for (const Task& task : tasks) deadlines.push_back(task.deadline);
  return scheduleSingleMachine(deadlines, speed, makeSegmentJobs(tasks));
}

}  // namespace dsct
