#include "sched/single_machine.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dsct {

std::vector<SegmentJob> makeSegmentJobs(std::span<const Task> tasks) {
  std::vector<SegmentJob> segments;
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    const PiecewiseLinearAccuracy& acc = tasks[j].accuracy;
    for (int k = 0; k < acc.numSegments(); ++k) {
      const AccuracySegment seg = acc.segment(k);
      segments.push_back(
          {static_cast<int>(j), k, seg.slope, seg.flops()});
    }
  }
  return segments;
}

std::vector<double> scheduleSingleMachine(std::span<const double> deadlines,
                                          double speed,
                                          std::vector<SegmentJob> segments) {
  DSCT_CHECK_MSG(speed > 0.0, "machine speed must be positive");
  const int n = static_cast<int>(deadlines.size());
  for (int j = 0; j + 1 < n; ++j) {
    DSCT_CHECK_MSG(deadlines[static_cast<std::size_t>(j)] <=
                       deadlines[static_cast<std::size_t>(j + 1)] + 1e-12,
                   "deadlines must be non-decreasing");
  }
  for (const SegmentJob& seg : segments) {
    DSCT_CHECK_MSG(seg.task >= 0 && seg.task < n,
                   "segment references unknown task " << seg.task);
    DSCT_CHECK(seg.flops >= 0.0);
    DSCT_CHECK(seg.slope >= 0.0);
  }

  // Non-increasing slope; ties broken by (task, position) for determinism.
  // Within a task, concavity already orders segments by position.
  std::sort(segments.begin(), segments.end(),
            [](const SegmentJob& a, const SegmentJob& b) {
              if (a.slope != b.slope) return a.slope > b.slope;
              if (a.task != b.task) return a.task < b.task;
              return a.position < b.position;
            });

  std::vector<double> t(static_cast<std::size_t>(n), 0.0);
  // prefix[i] = Σ_{k<=i} t_k, kept incrementally updated.
  std::vector<double> prefix(static_cast<std::size_t>(n), 0.0);

  for (const SegmentJob& seg : segments) {
    const int j = seg.task;
    double contribution = seg.flops / speed;
    // A segment may grow t_j only while every prefix constraint at and after
    // j keeps slack (lines 6-7 of Algorithm 1, extended to include j itself).
    for (int i = j; i < n && contribution > 0.0; ++i) {
      contribution = std::min(
          contribution,
          deadlines[static_cast<std::size_t>(i)] -
              prefix[static_cast<std::size_t>(i)]);
    }
    contribution = std::max(0.0, contribution);
    if (contribution <= 0.0) continue;
    t[static_cast<std::size_t>(j)] += contribution;
    for (int i = j; i < n; ++i) {
      prefix[static_cast<std::size_t>(i)] += contribution;
    }
  }
  return t;
}

std::vector<double> scheduleSingleMachine(std::span<const Task> tasks,
                                          double speed) {
  std::vector<double> deadlines;
  deadlines.reserve(tasks.size());
  for (const Task& task : tasks) deadlines.push_back(task.deadline);
  return scheduleSingleMachine(deadlines, speed, makeSegmentJobs(tasks));
}

}  // namespace dsct
