// Feasibility validation for DSCT-EA solutions.
//
// Checks the constraint system of the paper's MIP (1b)-(1f) / relaxation
// (3c)-(3e): per-machine EDF prefix deadlines, per-task FLOP caps, and the
// global energy budget. Used by tests and by the simulator as ground truth.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.h"
#include "sched/types.h"

namespace dsct {

struct ValidationReport {
  bool feasible = true;
  std::vector<std::string> violations;
  double maxDeadlineViolation = 0.0;  ///< seconds past the worst deadline
  double energyExcess = 0.0;          ///< Joules over budget
  double maxFlopsExcess = 0.0;        ///< TFLOP over the worst f_j^max

  void addViolation(std::string message);
  std::string summary() const;
};

struct ValidationOptions {
  double timeTol = 1e-6;    ///< seconds
  double energyTol = 1e-5;  ///< Joules (absolute, pre-scaled by budget below)
  double flopsTol = 1e-6;   ///< TFLOP
  /// Tolerances are also scaled relative to instance magnitudes:
  /// effective tol = max(absolute, rel * scale).
  double relTol = 1e-9;
};

ValidationReport validate(const Instance& inst, const FractionalSchedule& s,
                          const ValidationOptions& options = {});
ValidationReport validate(const Instance& inst, const IntegralSchedule& s,
                          const ValidationOptions& options = {});

}  // namespace dsct
