#include "sched/energy_profile.h"

#include <algorithm>

#include "util/check.h"

namespace dsct {

double profileEnergy(const Instance& inst, const EnergyProfile& profile) {
  DSCT_CHECK(static_cast<int>(profile.size()) == inst.numMachines());
  double joules = 0.0;
  for (int r = 0; r < inst.numMachines(); ++r) {
    joules += profile[static_cast<std::size_t>(r)] * inst.machine(r).power();
  }
  return joules;
}

EnergyProfile naiveProfile(const Instance& inst) {
  return naiveProfile(inst, inst.maxDeadline());
}

EnergyProfile naiveProfile(const Instance& inst, double horizon) {
  DSCT_CHECK(horizon >= 0.0);
  EnergyProfile profile(static_cast<std::size_t>(inst.numMachines()), 0.0);
  double remaining = inst.energyBudget();
  for (int r : inst.machinesByEfficiencyDesc()) {
    const double power = inst.machine(r).power();
    const double p = std::min(remaining / power, horizon);
    profile[static_cast<std::size_t>(r)] = std::max(0.0, p);
    remaining -= profile[static_cast<std::size_t>(r)] * power;
    if (remaining <= 0.0) break;
  }
  return profile;
}

double energyMarginalGain(const Instance& inst,
                          const FractionalSchedule& schedule, int task,
                          int machine) {
  const double f = schedule.flops(inst, task);
  return inst.machine(machine).efficiency *
         inst.task(task).accuracy.marginalGain(f);
}

double energyMarginalLoss(const Instance& inst,
                          const FractionalSchedule& schedule, int task,
                          int machine) {
  const double f = schedule.flops(inst, task);
  return inst.machine(machine).efficiency *
         inst.task(task).accuracy.marginalLoss(f);
}

}  // namespace dsct
