#include "sched/validator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dsct {

void ValidationReport::addViolation(std::string message) {
  feasible = false;
  violations.push_back(std::move(message));
}

std::string ValidationReport::summary() const {
  if (feasible) return "feasible";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const std::string& v : violations) os << "\n  - " << v;
  return os.str();
}

namespace {

void checkCommon(const Instance& inst, const FractionalSchedule& s,
                 const ValidationOptions& options, ValidationReport& report) {
  const int n = inst.numTasks();
  const int m = inst.numMachines();

  // Deadlines: prefix sums per machine (constraint 1b/3c).
  for (int r = 0; r < m; ++r) {
    double prefix = 0.0;
    for (int j = 0; j < n; ++j) {
      prefix += s.at(j, r);
      const double tol = std::max(options.timeTol,
                                  options.relTol * inst.task(j).deadline);
      const double excess = prefix - inst.task(j).deadline;
      if (excess > tol) {
        report.maxDeadlineViolation =
            std::max(report.maxDeadlineViolation, excess);
        std::ostringstream os;
        os << "deadline: task " << j << " machine " << r << " prefix "
           << prefix << " > d=" << inst.task(j).deadline;
        report.addViolation(os.str());
      }
    }
  }

  // FLOP caps (constraint 1c/3d).
  for (int j = 0; j < n; ++j) {
    const double f = s.flops(inst, j);
    const double fmax = inst.task(j).fmax();
    const double tol = std::max(options.flopsTol, options.relTol * fmax);
    if (f > fmax + tol) {
      report.maxFlopsExcess = std::max(report.maxFlopsExcess, f - fmax);
      std::ostringstream os;
      os << "fmax: task " << j << " flops " << f << " > fmax=" << fmax;
      report.addViolation(os.str());
    }
  }

  // Energy budget (constraint 1f/3e).
  const double energy = s.energy(inst);
  const double budget = inst.energyBudget();
  const double tol = std::max(options.energyTol, options.relTol * budget);
  if (energy > budget + tol) {
    report.energyExcess = energy - budget;
    std::ostringstream os;
    os << "energy: " << energy << " J > budget " << budget << " J";
    report.addViolation(os.str());
  }

  // Non-negative times are enforced structurally by FractionalSchedule.
}

}  // namespace

ValidationReport validate(const Instance& inst, const FractionalSchedule& s,
                          const ValidationOptions& options) {
  ValidationReport report;
  if (s.numTasks() != inst.numTasks() ||
      s.numMachines() != inst.numMachines()) {
    report.addViolation("schedule shape does not match instance");
    return report;
  }
  checkCommon(inst, s, options, report);
  return report;
}

ValidationReport validate(const Instance& inst, const IntegralSchedule& s,
                          const ValidationOptions& options) {
  ValidationReport report;
  if (s.numTasks() != inst.numTasks()) {
    report.addViolation("schedule shape does not match instance");
    return report;
  }
  // Integral-specific structure: timelines stack in task (deadline) order and
  // each task finishes by its deadline.
  for (int r = 0; r < inst.numMachines(); ++r) {
    double clock = 0.0;
    int previous = -1;
    for (const ScheduledTask& e : s.timeline(r)) {
      if (e.task <= previous) {
        std::ostringstream os;
        os << "order: machine " << r << " runs task " << e.task
           << " after task " << previous;
        report.addViolation(os.str());
      }
      previous = e.task;
      if (std::fabs(e.start - clock) > options.timeTol) {
        std::ostringstream os;
        os << "gap: machine " << r << " task " << e.task << " starts at "
           << e.start << ", expected " << clock;
        report.addViolation(os.str());
      }
      clock = e.end();
    }
  }
  checkCommon(inst, s.toFractional(inst), options, report);
  return report;
}

}  // namespace dsct
