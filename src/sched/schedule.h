// Solution representations: fractional (task split across machines, the
// DSCT-EA-FR relaxation) and integral (one machine per task, DSCT-EA).
#pragma once

#include <vector>

#include "sched/types.h"

namespace dsct {

/// Matrix of processing times t_jr (seconds of task j on machine r).
class FractionalSchedule {
 public:
  FractionalSchedule(int numTasks, int numMachines);

  int numTasks() const { return n_; }
  int numMachines() const { return m_; }

  double at(int j, int r) const { return t_[index(j, r)]; }
  void set(int j, int r, double seconds);
  void add(int j, int r, double seconds) { set(j, r, at(j, r) + seconds); }

  /// f_j = Σ_r s_r · t_jr (TFLOP dedicated to task j).
  double flops(const Instance& inst, int j) const;
  double taskAccuracy(const Instance& inst, int j) const;
  /// Σ_j a_j(f_j) — the objective (maximisation form).
  double totalAccuracy(const Instance& inst) const;
  /// Σ_j (1 − a_j(f_j)) — the paper's minimisation objective (1a).
  double totalError(const Instance& inst) const;
  /// Σ_jr t_jr · P_r (Joules).
  double energy(const Instance& inst) const;
  /// Σ_j t_jr (seconds of work on machine r).
  double machineLoad(int r) const;
  std::vector<double> machineLoads() const;
  /// Σ_{i <= j} t_ir — prefix completion time of task j's slot on machine r.
  double prefixTime(int j, int r) const;

 private:
  std::size_t index(int j, int r) const;

  int n_;
  int m_;
  std::vector<double> t_;
};

/// One entry of a machine's timeline.
struct ScheduledTask {
  int task = -1;
  double start = 0.0;
  double duration = 0.0;

  double end() const { return start + duration; }
};

/// Integral schedule: each task runs on at most one machine; per-machine
/// timelines are in task (deadline) order, back to back from time 0.
class IntegralSchedule {
 public:
  /// machineOf[j] in [-1, m); duration[j] >= 0 (ignored when unscheduled).
  /// Start times are derived by stacking tasks per machine in task order.
  static IntegralSchedule build(const Instance& inst,
                                std::vector<int> machineOf,
                                std::vector<double> duration);

  int numTasks() const { return static_cast<int>(machineOf_.size()); }
  int machineOf(int j) const { return machineOf_[static_cast<std::size_t>(j)]; }
  double duration(int j) const { return duration_[static_cast<std::size_t>(j)]; }
  double start(int j) const { return start_[static_cast<std::size_t>(j)]; }

  const std::vector<ScheduledTask>& timeline(int r) const;

  double flops(const Instance& inst, int j) const;
  double taskAccuracy(const Instance& inst, int j) const;
  double totalAccuracy(const Instance& inst) const;
  double averageAccuracy(const Instance& inst) const;
  double totalError(const Instance& inst) const;
  double energy(const Instance& inst) const;
  double machineLoad(int r) const;
  std::vector<double> machineLoads() const;
  int numScheduled() const;

  /// View as a fractional schedule (for shared validation/metrics).
  FractionalSchedule toFractional(const Instance& inst) const;

 private:
  std::vector<int> machineOf_;
  std::vector<double> duration_;
  std::vector<double> start_;
  std::vector<std::vector<ScheduledTask>> timelines_;
};

}  // namespace dsct
