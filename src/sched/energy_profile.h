// Energy profiles (Section 3.2 of the paper).
//
// The energy profile p_r of machine r is the maximum amount of work
// (seconds) allowed on that machine; a profile collection is budget-feasible
// when Σ_r p_r · P_r <= B. The *naive* profile fills machines in order of
// decreasing energy efficiency up to the horizon d^max until the budget is
// exhausted.
#pragma once

#include <vector>

#include "sched/schedule.h"
#include "sched/types.h"

namespace dsct {

/// Seconds of allowed work per machine (indexed like Instance machines).
using EnergyProfile = std::vector<double>;

/// Total energy consumed when every machine is used up to its profile.
double profileEnergy(const Instance& inst, const EnergyProfile& profile);

/// The naive profile: machines in non-increasing efficiency order get
/// p_r = min((B − spent)/P_r, d^max).
EnergyProfile naiveProfile(const Instance& inst);

/// Naive profile against an arbitrary horizon (used by tests and by the
/// serving simulator when the batch horizon differs from d^max).
EnergyProfile naiveProfile(const Instance& inst, double horizon);

// --- Energy marginal gain / loss (paper Section 3.2) -----------------------
// For task j on machine r at allocation f_j: the accuracy gained (lost) per
// Joule when the processing time of j on r is increased (decreased):
//   gain = E_r · a'+_j(f_j),   loss = E_r · a'−_j(f_j).
// These are the quantities RefineProfile's accuracy-per-Joule ψ ordering and
// the KKT checker's condition 2 are built on.

double energyMarginalGain(const Instance& inst,
                          const FractionalSchedule& schedule, int task,
                          int machine);
double energyMarginalLoss(const Instance& inst,
                          const FractionalSchedule& schedule, int task,
                          int machine);

}  // namespace dsct
