// Incremental deadline-slack engine for RefineProfile (Algorithm 3).
//
// RefineProfile asks, once per candidate (segment, machine) pair, for the
// deadline slack of (task j, machine r): min_{i >= j} (d_i − prefix_i(r)).
// Computing that from scratch is an O(n) column scan, and the scan used to
// run for every candidate even when no transfer had touched machine r since
// the last scan — the dominant cost of FR-OPT on large n (FrOptCounters'
// refineSeconds).
//
// The engine keeps, per machine, the exact leaf slacks v_i = d_i −
// prefix_i(r) in a SuffixSlackTree (the same tree Algorithm 1 uses) plus a
// (task, machine)-keyed memo of answered queries, both guarded by a
// per-machine version counter. A transfer between two machines bumps only
// those two machines' versions: every other machine's memoised slacks and
// tree stay valid. Stale trees are rebuilt lazily, on the first query after
// an invalidation.
//
// Bit-identity contract: slack() returns exactly what the scratch column
// scan returns, bit for bit. The tree's leaves are filled from the same
// left-to-right prefix summation the scan performs, the tree is only ever
// rebuilt (never lazily shifted with suffixAdd, whose internal add chains
// would re-associate the sums), and a suffix *minimum* over unmodified
// leaves is exact in floating point. The differential harness in
// tests/sched_slack_cache_test.cpp enforces this over the shared corpus.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/schedule.h"
#include "sched/suffix_slack_tree.h"
#include "sched/types.h"

namespace dsct {

/// Observability counters for one engine (surfaced through RefineStats and
/// FrOptCounters; printed by bench/ablation_refine and bench/fig4a/fig4b).
struct SlackCounters {
  long long queries = 0;        ///< slack() calls
  long long hits = 0;           ///< served from the (task, machine) memo
  long long rebuilds = 0;       ///< per-machine column recomputations
  long long invalidations = 0;  ///< machine version bumps (2 per transfer)
};

class SlackEngine {
 public:
  /// `incremental` false forces the scratch column scan on every query —
  /// the reference path the differential tests compare against.
  SlackEngine(const Instance& inst, const FractionalSchedule& schedule,
              bool incremental);

  SlackEngine(const SlackEngine&) = delete;
  SlackEngine& operator=(const SlackEngine&) = delete;

  /// Deadline slack of (task, machine): the largest amount by which
  /// t_{task,machine} can grow without violating any deadline at or after
  /// `task` on `machine`. Bit-identical to the scratch scan in both modes.
  double slack(int task, int machine);

  /// Notify the engine that a transfer moved time between
  /// (growTask, growMachine) and (shrinkTask, shrinkMachine); invalidates
  /// exactly those two machines' slacks.
  void onTransfer(int growMachine, int shrinkMachine);

  const SlackCounters& counters() const { return counters_; }

 private:
  double scratchSlack(int task, int machine) const;
  void rebuildMachine(int machine);

  const Instance& inst_;
  const FractionalSchedule& schedule_;
  const bool incremental_;

  std::vector<SuffixSlackTree> trees_;          ///< one per machine
  std::vector<std::uint64_t> machineVersion_;   ///< bumped by onTransfer
  std::vector<std::uint64_t> treeVersion_;      ///< version trees_ reflects
  std::vector<std::uint64_t> memoVersion_;      ///< n×m, 0 = never memoised
  std::vector<double> memo_;                    ///< n×m memoised slacks
  std::vector<double> leafBuffer_;              ///< scratch for rebuilds
  SlackCounters counters_;
};

}  // namespace dsct
