// Core problem types for DSCT-EA: machines, tasks, instances.
//
// Units: speed TFLOPS, efficiency TFLOP/J, power W, time s, energy J,
// work TFLOP (see DESIGN.md §2).
#pragma once

#include <string>
#include <vector>

#include "accuracy/piecewise.h"

namespace dsct {

struct Machine {
  double speed = 1.0;       ///< s_r, TFLOPS
  double efficiency = 1.0;  ///< E_r, TFLOP/J
  std::string name;

  /// P_r = s_r / E_r, in Watts.
  double power() const { return speed / efficiency; }
};

struct Task {
  double deadline = 0.0;  ///< d_j, seconds
  PiecewiseLinearAccuracy accuracy;
  std::string name;

  double fmax() const { return accuracy.fmax(); }
  double amax() const { return accuracy.amax(); }
  double amin() const { return accuracy.amin(); }
};

/// A DSCT-EA instance. Tasks are kept sorted by non-decreasing deadline
/// (the paper's canonical ordering; all algorithms assume it).
class Instance {
 public:
  Instance(std::vector<Task> tasks, std::vector<Machine> machines,
           double energyBudget);

  int numTasks() const { return static_cast<int>(tasks_.size()); }
  int numMachines() const { return static_cast<int>(machines_.size()); }
  const Task& task(int j) const { return tasks_[static_cast<std::size_t>(j)]; }
  const Machine& machine(int r) const {
    return machines_[static_cast<std::size_t>(r)];
  }
  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<Machine>& machines() const { return machines_; }
  double energyBudget() const { return energyBudget_; }

  /// d^max = max_j d_j (0 for empty instances).
  double maxDeadline() const;
  /// Σ_j f_j^max (TFLOP).
  double totalFmax() const;
  /// Σ_r s_r (TFLOPS).
  double totalSpeed() const;
  /// Σ_r P_r (W).
  double totalPower() const;
  /// Σ_j a_j^max — trivial upper bound on the objective.
  double totalAmax() const;
  /// Σ_j a_j(0) — objective when nothing is processed.
  double totalAmin() const;

  /// Machine indices sorted by non-increasing energy efficiency (ties by
  /// index for determinism). This is the paper's machine ordering.
  std::vector<int> machinesByEfficiencyDesc() const;

 private:
  std::vector<Task> tasks_;
  std::vector<Machine> machines_;
  double energyBudget_;
};

}  // namespace dsct
