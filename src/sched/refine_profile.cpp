#include "sched/refine_profile.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace dsct {

namespace {

/// One (accuracy segment, machine) pair, the unit of the refinement search.
struct Pair {
  int task;
  int segment;
  int machine;
  double slope;  ///< segment slope (accuracy per TFLOP)
  double psi;    ///< accuracy-per-Joule ψ = slope · E_r
  double fLo;
  double fHi;
};

constexpr double kPsiTol = 1e-12;

}  // namespace

RefineStats refineProfile(const Instance& inst, FractionalSchedule& schedule,
                          const RefineOptions& options) {
  RefineStats stats;
  const int n = inst.numTasks();
  const int m = inst.numMachines();
  if (n == 0) return stats;

  // Static pair list sorted by non-increasing accuracy-per-Joule.
  std::vector<Pair> pairs;
  for (int j = 0; j < n; ++j) {
    const PiecewiseLinearAccuracy& acc = inst.task(j).accuracy;
    for (int k = 0; k < acc.numSegments(); ++k) {
      const AccuracySegment seg = acc.segment(k);
      for (int r = 0; r < m; ++r) {
        const double e = inst.machine(r).efficiency;
        pairs.push_back({j, k, r, seg.slope, seg.slope * e, seg.fLo, seg.fHi});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.psi != b.psi) return a.psi > b.psi;
    if (a.task != b.task) return a.task < b.task;
    if (a.segment != b.segment) return a.segment < b.segment;
    return a.machine < b.machine;
  });

  // Current FLOP allocation per task, updated incrementally.
  std::vector<double> flops(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    flops[static_cast<std::size_t>(j)] = schedule.flops(inst, j);
  }

  // Deadline slacks, served from the incremental engine (or the scratch scan
  // when options.incrementalSlack is off — bit-identical either way).
  SlackEngine slackEngine(inst, schedule, options.incrementalSlack);

  // Per-machine energy draw, tracked incrementally when caps are active so
  // growth never pushes a machine past its battery charge.
  const std::vector<double>* caps = options.machineEnergyCaps;
  std::vector<double> machineEnergy;
  if (caps != nullptr) {
    machineEnergy = schedule.machineLoads();
    for (int r = 0; r < m; ++r) {
      machineEnergy[static_cast<std::size_t>(r)] *= inst.machine(r).power();
    }
  }

  for (stats.rounds = 0; stats.rounds < options.maxRounds; ++stats.rounds) {
    if (stopRequested(options.cancel)) break;
    long transfersThisRound = 0;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const Pair& grow = pairs[p];
      if (grow.slope <= 0.0) continue;  // flat segments can only donate
      const Machine& mr = inst.machine(grow.machine);
      const double fj = flops[static_cast<std::size_t>(grow.task)];
      // Fill at most to the end of this segment; earlier (steeper) segments
      // were already offered growth by higher-ψ pairs, so the realised
      // marginal gain is at least grow.slope per TFLOP (concavity).
      const double growFlops = grow.fHi - fj;
      if (growFlops <= 1e-12) continue;
      const double slack = slackEngine.slack(grow.task, grow.machine);
      double eAdd = std::min(growFlops / mr.efficiency,
                             std::max(0.0, slack) * mr.power());
      if (caps != nullptr &&
          static_cast<std::size_t>(grow.machine) < caps->size()) {
        eAdd = std::min(
            eAdd, std::max(0.0, (*caps)[static_cast<std::size_t>(
                                    grow.machine)] -
                                    machineEnergy[static_cast<std::size_t>(
                                        grow.machine)]));
      }
      if (eAdd <= options.tol) continue;

      // Scan donors from the cheapest ψ upward (paper line 9's reverse
      // iteration); stop once donors are no cheaper than the grower.
      for (std::size_t q = pairs.size(); q-- > p + 1 && eAdd > options.tol;) {
        const Pair& shrink = pairs[q];
        if (shrink.psi >= grow.psi - kPsiTol) break;
        const double tShrink = schedule.at(shrink.task, shrink.machine);
        if (tShrink <= 1e-12) continue;
        const Machine& ms = inst.machine(shrink.machine);
        const double fj2 = flops[static_cast<std::size_t>(shrink.task)];
        const double usedInSeg =
            std::clamp(fj2 - shrink.fLo, 0.0, shrink.fHi - shrink.fLo);
        if (usedInSeg <= 1e-12) continue;
        const double eSub =
            std::min(usedInSeg / ms.efficiency, tShrink * ms.power());
        const double eTransfer = std::min(eAdd, eSub);
        if (eTransfer <= options.tol) continue;

        schedule.add(grow.task, grow.machine, eTransfer / mr.power());
        flops[static_cast<std::size_t>(grow.task)] +=
            eTransfer * mr.efficiency;
        schedule.set(shrink.task, shrink.machine,
                     std::max(0.0, tShrink - eTransfer / ms.power()));
        flops[static_cast<std::size_t>(shrink.task)] -=
            eTransfer * ms.efficiency;

        slackEngine.onTransfer(grow.machine, shrink.machine);
        if (caps != nullptr) {
          machineEnergy[static_cast<std::size_t>(grow.machine)] += eTransfer;
          machineEnergy[static_cast<std::size_t>(shrink.machine)] -=
              eTransfer;
        }

        eAdd -= eTransfer;
        stats.energyMoved += eTransfer;
        ++stats.transfers;
        ++transfersThisRound;
      }
    }
    if (transfersThisRound == 0) break;
  }
  stats.slack = slackEngine.counters();
  return stats;
}

}  // namespace dsct
