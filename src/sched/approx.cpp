#include "sched/approx.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.h"

namespace dsct {

namespace {

/// Budget top-up pass (implementation refinement over the paper's
/// Algorithm 5): after rounding, spend any leftover energy budget by
/// greedily extending the task with the best accuracy-per-Joule, subject to
/// deadline slack on its machine. Strictly improves accuracy, keeps
/// feasibility (so SOL <= OPT still holds), and makes the algorithm
/// converge to a_max in the generous regime exactly as the paper's Fig. 5
/// reports.
void topUp(const Instance& inst, std::vector<int>& machineOf,
           std::vector<double>& duration,
           const std::vector<double>* machineEnergyCaps) {
  const int n = inst.numTasks();
  const int m = inst.numMachines();

  // Give dropped tasks a zero-duration slot on some machine so the top-up
  // can grow them; pick the machine with the most slack at their position.
  const auto slackAt = [&](int j, int r) {
    double prefix = 0.0;
    double slack = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      if (machineOf[static_cast<std::size_t>(i)] == r || i == j) {
        prefix += (i == j && machineOf[static_cast<std::size_t>(i)] != r)
                      ? 0.0
                      : duration[static_cast<std::size_t>(i)];
      }
      if (i >= j &&
          (machineOf[static_cast<std::size_t>(i)] == r || i == j)) {
        slack = std::min(slack, inst.task(i).deadline - prefix);
      }
    }
    return slack;
  };
  for (int j = 0; j < n; ++j) {
    if (machineOf[static_cast<std::size_t>(j)] >= 0) continue;
    int best = -1;
    double bestSlack = 0.0;
    for (int r = 0; r < m; ++r) {
      const double slack = slackAt(j, r);
      if (slack > bestSlack) {
        bestSlack = slack;
        best = r;
      }
    }
    if (best >= 0) {
      machineOf[static_cast<std::size_t>(j)] = best;
      duration[static_cast<std::size_t>(j)] = 0.0;
    }
  }

  double budget = inst.energyBudget();
  std::vector<double> machineEnergy(static_cast<std::size_t>(m), 0.0);
  for (int j = 0; j < n; ++j) {
    const int r = machineOf[static_cast<std::size_t>(j)];
    if (r >= 0) {
      const double e =
          duration[static_cast<std::size_t>(j)] * inst.machine(r).power();
      budget -= e;
      machineEnergy[static_cast<std::size_t>(r)] += e;
    }
  }
  // Remaining battery charge of machine r in seconds of load, or +inf when
  // uncapped. Growth on a drained machine is blocked like exhausted slack.
  const auto capSeconds = [&](int r) {
    if (machineEnergyCaps == nullptr ||
        static_cast<std::size_t>(r) >= machineEnergyCaps->size()) {
      return std::numeric_limits<double>::infinity();
    }
    const double power = inst.machine(r).power();
    if (power <= 0.0) return std::numeric_limits<double>::infinity();
    return std::max(0.0,
                    (*machineEnergyCaps)[static_cast<std::size_t>(r)] -
                        machineEnergy[static_cast<std::size_t>(r)]) /
           power;
  };

  // Greedy extension: repeatedly grow the (task, machine) slot with the
  // highest marginal accuracy-per-Joule. A slot whose deadline slack is
  // exhausted is blocked permanently (nothing ever shrinks here, so slack
  // never returns). Each productive step completes a segment, a deadline,
  // or the budget, so the loop is bounded by O(n·(K + 2)).
  std::vector<char> blocked(static_cast<std::size_t>(n), 0);
  const int maxSteps = n * 16 + 64;
  for (int step = 0; step < maxSteps && budget > 1e-12; ++step) {
    int bestTask = -1;
    double bestPsi = 0.0;
    for (int j = 0; j < n; ++j) {
      if (blocked[static_cast<std::size_t>(j)]) continue;
      const int r = machineOf[static_cast<std::size_t>(j)];
      if (r < 0) continue;
      const double f =
          duration[static_cast<std::size_t>(j)] * inst.machine(r).speed;
      const double gain = inst.task(j).accuracy.marginalGain(f);
      if (gain <= 0.0) continue;
      const double psi = gain * inst.machine(r).efficiency;
      if (psi > bestPsi) {
        bestPsi = psi;
        bestTask = j;
      }
    }
    if (bestTask < 0) break;
    const int r = machineOf[static_cast<std::size_t>(bestTask)];
    const Machine& machine = inst.machine(r);
    const Task& task = inst.task(bestTask);
    const double f =
        duration[static_cast<std::size_t>(bestTask)] * machine.speed;
    // Grow at most to the end of the current segment (the marginal gain is
    // constant there), the deadline slack, and the remaining budget.
    const int seg = task.accuracy.segmentOf(f);
    const double fTarget =
        std::min(task.fmax(), task.accuracy.breakpoint(seg + 1));
    const double delta =
        std::min({(fTarget - f) / machine.speed, slackAt(bestTask, r),
                  budget / machine.power(), capSeconds(r)});
    if (delta <= 1e-15) {
      blocked[static_cast<std::size_t>(bestTask)] = 1;
      continue;
    }
    duration[static_cast<std::size_t>(bestTask)] += delta;
    budget -= delta * machine.power();
    machineEnergy[static_cast<std::size_t>(r)] += delta * machine.power();
  }
}

}  // namespace

IntegralSchedule roundFractional(
    const Instance& inst, const FractionalSchedule& fractional,
    const std::vector<double>* machineEnergyCaps) {
  const int n = inst.numTasks();
  const int m = inst.numMachines();
  constexpr double kTol = 1e-12;

  // Machine quotas: the fractional load of each machine. Keeping the rounded
  // loads within these quotas keeps total energy within the fractional
  // energy, hence within the budget.
  const std::vector<double> wmax = fractional.machineLoads();
  std::vector<double> w(static_cast<std::size_t>(m), 0.0);

  std::vector<int> machineOf(static_cast<std::size_t>(n), -1);
  std::vector<double> duration(static_cast<std::size_t>(n), 0.0);

  // --- placement (lines 7-12): least-loaded non-full machine ---
  for (int j = 0; j < n; ++j) {
    int best = -1;
    for (int r = 0; r < m; ++r) {
      const double room = wmax[static_cast<std::size_t>(r)] -
                          w[static_cast<std::size_t>(r)];
      if (room <= kTol) continue;
      if (best < 0 ||
          w[static_cast<std::size_t>(r)] < w[static_cast<std::size_t>(best)]) {
        best = r;
      }
    }
    if (best < 0) break;  // all machine quotas exhausted; remaining tasks drop
    const double quotaFlops = fractional.flops(inst, j);
    const double desired = quotaFlops / inst.machine(best).speed;
    const double granted =
        std::min(desired, wmax[static_cast<std::size_t>(best)] -
                              w[static_cast<std::size_t>(best)]);
    machineOf[static_cast<std::size_t>(j)] = best;
    duration[static_cast<std::size_t>(j)] = std::max(0.0, granted);
    w[static_cast<std::size_t>(best)] += duration[static_cast<std::size_t>(j)];
  }

  // --- deadline repair (lines 13-19): cut and shift ---
  // Tasks are stacked per machine in deadline order; cutting a task lets all
  // later tasks on the machine start earlier, so one forward pass per
  // machine suffices.
  std::vector<double> clock(static_cast<std::size_t>(m), 0.0);
  for (int j = 0; j < n; ++j) {
    const int r = machineOf[static_cast<std::size_t>(j)];
    if (r < 0) continue;
    const double start = clock[static_cast<std::size_t>(r)];
    double dur = duration[static_cast<std::size_t>(j)];
    const double dj = inst.task(j).deadline;
    if (start + dur > dj) {
      dur = std::max(0.0, dj - start);  // cut the violating tail
      duration[static_cast<std::size_t>(j)] = dur;
    }
    // fmax safety: rounding can only reduce a task's FLOPs relative to the
    // fractional solution when speeds are heterogeneous... except when the
    // chosen machine is faster than the fractional mix; clamp to fmax.
    const double fmaxSeconds = inst.task(j).fmax() / inst.machine(r).speed;
    if (dur > fmaxSeconds) {
      dur = fmaxSeconds;
      duration[static_cast<std::size_t>(j)] = dur;
    }
    clock[static_cast<std::size_t>(r)] += dur;
  }

  // --- budget top-up (implementation refinement; see topUp above) ---
  topUp(inst, machineOf, duration, machineEnergyCaps);

  return IntegralSchedule::build(inst, std::move(machineOf),
                                 std::move(duration));
}

ApproxResult solveApprox(const Instance& inst,
                         const RefineOptions& refineOptions) {
  FrOptOptions options;
  options.refine = refineOptions;
  return solveApprox(inst, options);
}

ApproxResult solveApprox(const Instance& inst, const FrOptOptions& options) {
  FrOptResult fr = solveFrOpt(inst, options);
  IntegralSchedule rounded =
      roundFractional(inst, fr.schedule, options.machineEnergyCaps);
  ApproxResult result{std::move(rounded), std::move(fr),
                      approximationGuarantee(inst), 0.0, 0.0, 0.0};
  result.totalAccuracy = result.schedule.totalAccuracy(inst);
  result.upperBound = result.fractional.totalAccuracy;
  result.energy = result.schedule.energy(inst);
  return result;
}

}  // namespace dsct
