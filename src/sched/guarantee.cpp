#include "sched/guarantee.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dsct {

GuaranteeBreakdown approximationGuarantee(const Instance& inst) {
  GuaranteeBreakdown out;
  double thetaMin = std::numeric_limits<double>::infinity();
  double thetaMax = 0.0;
  double amin = std::numeric_limits<double>::infinity();
  double amax = 0.0;
  for (const Task& task : inst.tasks()) {
    amin = std::min(amin, task.amin());
    amax = std::max(amax, task.amax());
    const PiecewiseLinearAccuracy& acc = task.accuracy;
    for (int k = 0; k < acc.numSegments(); ++k) {
      const double slope = acc.slope(k);
      if (slope <= 0.0) continue;
      thetaMin = std::min(thetaMin, slope);
      thetaMax = std::max(thetaMax, slope);
    }
  }
  if (inst.numTasks() == 0 || !std::isfinite(thetaMin) || thetaMax <= 0.0) {
    return out;  // no positive slopes: nothing to lose, G = 0
  }
  out.thetaMin = thetaMin;
  out.thetaMax = thetaMax;
  out.accuracyRange = std::max(0.0, amax - amin);
  out.g = static_cast<double>(inst.numMachines()) * out.accuracyRange *
          (1.0 + std::log(thetaMax / thetaMin));
  return out;
}

}  // namespace dsct
