// Algorithm 3 of the paper: RefineProfile.
//
// Starting from the naive-profile solution, transfers energy from
// (segment, machine) pairs with low accuracy-per-Joule ψ = slope · E_r to
// pairs with high ψ, subject to deadline slack, until no beneficial transfer
// remains. Combined with ComputeNaiveSolution this yields the optimal
// fractional solution (KKT argument in the paper, cross-checked against the
// LP in our tests).
#pragma once

#include "sched/schedule.h"
#include "sched/slack_engine.h"
#include "sched/types.h"
#include "util/cancel.h"

namespace dsct {

struct RefineOptions {
  /// Upper bound on full passes over the pair list; each pass that performs
  /// at least one transfer is followed by another, so this is a safety net.
  int maxRounds = 64;
  double tol = 1e-10;  ///< minimum transferred energy (J)
  /// Serve deadline slacks from the incremental SlackEngine (memo + suffix
  /// trees with per-machine version invalidation). False forces the O(n)
  /// scratch scan on every query; both modes are bit-identical (the
  /// differential harness in tests/sched_slack_cache_test.cpp enforces it).
  bool incrementalSlack = true;
  /// Cooperative stop token, polled at round boundaries. The schedule stays
  /// valid on early exit (transfers are atomic); only optimality is lost.
  const CancelToken* cancel = nullptr;
  /// Optional per-machine energy caps (J, indexed like the instance's
  /// machines): the availability layer's battery charges (DESIGN.md §15).
  /// Growth on machine r is additionally bounded by cap_r minus its current
  /// energy draw; shrink moves only release energy, so a schedule that starts
  /// under its caps stays under them. Null is bit-identical to a build
  /// without this field.
  const std::vector<double>* machineEnergyCaps = nullptr;
};

struct RefineStats {
  int rounds = 0;
  long transfers = 0;
  double energyMoved = 0.0;  ///< total Joules re-allocated
  SlackCounters slack;       ///< slack-engine cache behaviour
};

/// Refines `schedule` in place. Total energy consumption never increases;
/// total accuracy never decreases.
RefineStats refineProfile(const Instance& inst, FractionalSchedule& schedule,
                          const RefineOptions& options = {});

}  // namespace dsct
