#include "sched/slack_engine.h"

#include <limits>

#include "util/check.h"

namespace dsct {

SlackEngine::SlackEngine(const Instance& inst,
                         const FractionalSchedule& schedule, bool incremental)
    : inst_(inst), schedule_(schedule), incremental_(incremental) {
  const std::size_t n = static_cast<std::size_t>(inst.numTasks());
  const std::size_t m = static_cast<std::size_t>(inst.numMachines());
  if (!incremental_) return;
  trees_.resize(m);
  // Version 0 marks "never built / never memoised"; the first bump to 1
  // happens in rebuildMachine, so fresh memo slots can never alias a live
  // version.
  machineVersion_.assign(m, 1);
  treeVersion_.assign(m, 0);
  memoVersion_.assign(n * m, 0);
  memo_.assign(n * m, 0.0);
  leafBuffer_.resize(n);
}

double SlackEngine::scratchSlack(int task, int machine) const {
  // The reference scan (the pre-engine deadlineSlack): sequential prefix
  // sums over the machine column, early exit at the first exhausted slack.
  double prefix = 0.0;
  for (int i = 0; i < task; ++i) prefix += schedule_.at(i, machine);
  double slack = std::numeric_limits<double>::infinity();
  for (int i = task; i < inst_.numTasks(); ++i) {
    prefix += schedule_.at(i, machine);
    slack = std::min(slack, inst_.task(i).deadline - prefix);
    if (slack <= 0.0) return 0.0;
  }
  return slack;
}

void SlackEngine::rebuildMachine(int machine) {
  // Same prefix summation the scratch scan performs, so the leaves carry
  // exactly the scan's values; suffixMin over them is then exact.
  double prefix = 0.0;
  for (int i = 0; i < inst_.numTasks(); ++i) {
    prefix += schedule_.at(i, machine);
    leafBuffer_[static_cast<std::size_t>(i)] =
        inst_.task(i).deadline - prefix;
  }
  trees_[static_cast<std::size_t>(machine)].assign(leafBuffer_);
  treeVersion_[static_cast<std::size_t>(machine)] =
      machineVersion_[static_cast<std::size_t>(machine)];
  ++counters_.rebuilds;
}

double SlackEngine::slack(int task, int machine) {
  ++counters_.queries;
  if (!incremental_) return scratchSlack(task, machine);

  const std::size_t r = static_cast<std::size_t>(machine);
  const std::size_t idx =
      static_cast<std::size_t>(task) *
          static_cast<std::size_t>(inst_.numMachines()) +
      r;
  if (memoVersion_[idx] == machineVersion_[r]) {
    ++counters_.hits;
    return memo_[idx];
  }
  if (treeVersion_[r] != machineVersion_[r]) rebuildMachine(machine);
  const double min = trees_[r].suffixMin(static_cast<std::size_t>(task));
  // The scratch scan returns a literal 0.0 the moment a running minimum
  // drops to or below zero; mirror that (it also normalises −0.0).
  const double value = min <= 0.0 ? 0.0 : min;
  memo_[idx] = value;
  memoVersion_[idx] = machineVersion_[r];
  return value;
}

void SlackEngine::onTransfer(int growMachine, int shrinkMachine) {
  if (!incremental_) return;
  ++machineVersion_[static_cast<std::size_t>(growMachine)];
  ++counters_.invalidations;
  if (shrinkMachine != growMachine) {
    ++machineVersion_[static_cast<std::size_t>(shrinkMachine)];
    ++counters_.invalidations;
  }
}

}  // namespace dsct
