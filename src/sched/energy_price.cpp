#include "sched/energy_price.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace dsct {

namespace {

/// (ψ, energy) items for every positive-slope segment, deadline-capped.
std::vector<std::pair<double, double>> demandItems(const Instance& inst) {
  std::vector<std::pair<double, double>> items;
  if (inst.numMachines() == 0) return items;
  double bestEff = 0.0;
  for (const Machine& machine : inst.machines()) {
    bestEff = std::max(bestEff, machine.efficiency);
  }
  if (bestEff <= 0.0) return items;
  const double totalSpeed = inst.totalSpeed();
  for (int j = 0; j < inst.numTasks(); ++j) {
    const Task& task = inst.task(j);
    // The whole fleet working for this task until its deadline bounds its
    // usable FLOPs; segments past that point can never be funded.
    const double fCap = std::min(task.fmax(), task.deadline * totalSpeed);
    if (fCap <= 0.0) continue;
    for (int k = 0; k < task.accuracy.numSegments(); ++k) {
      const AccuracySegment seg = task.accuracy.segment(k);
      if (seg.slope <= 0.0) continue;
      const double width = std::min(seg.fHi, fCap) - seg.fLo;
      if (width <= 0.0) continue;
      items.emplace_back(seg.slope * bestEff, width / bestEff);
    }
  }
  return items;
}

double horizonCapacity(const Instance& inst) {
  const double horizon = inst.maxDeadline();
  double cap = 0.0;
  for (const Machine& machine : inst.machines()) {
    cap += horizon * machine.power();
  }
  return cap;
}

}  // namespace

PricedDemandCurve::PricedDemandCurve(const Instance& inst)
    : capEnergy_(horizonCapacity(inst)) {
  std::vector<std::pair<double, double>> items = demandItems(inst);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  double cumulative = 0.0;
  for (const auto& [psi, joules] : items) {
    cumulative += joules;
    if (!psi_.empty() && psi_.back() == psi) {
      energy_.back() = cumulative;  // merge equal-ψ steps
    } else {
      psi_.push_back(psi);
      energy_.push_back(cumulative);
    }
  }
}

double PricedDemandCurve::demandAt(double lambda) const {
  // Fund every step with ψ strictly above λ: the first index at or below λ
  // (ψ descending) is the end of the funded prefix.
  const auto it = std::lower_bound(
      psi_.begin(), psi_.end(), lambda,
      [](double psi, double value) { return psi > value; });
  if (it == psi_.begin()) return 0.0;
  const double funded =
      energy_[static_cast<std::size_t>(it - psi_.begin()) - 1];
  return std::min(funded, capEnergy_);
}

double PricedDemandCurve::largestPsiAtMost(double price) const {
  // psi_ is descending: the first element <= price is the largest such.
  const auto it = std::lower_bound(
      psi_.begin(), psi_.end(), price,
      [](double psi, double value) { return psi > value; });
  return it == psi_.end() ? 0.0 : *it;
}

double pricedEnergyDemand(const Instance& inst, double lambda) {
  return PricedDemandCurve(inst).demandAt(lambda);
}

}  // namespace dsct
