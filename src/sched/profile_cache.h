// Cross-solve evaluation cache for the ProfileEvaluator engine.
//
// ProfileEvaluator's per-solve memo dies with the solve: the serving loop's
// epoch-to-epoch re-solves (Algorithm 5 / FR-OPT) start cold every epoch
// even when consecutive epochs schedule the same batch (idle periods,
// carried backlog with no new arrivals, fallback re-solves). A ProfileCache
// outlives individual solves: runServing constructs one per run and hands it
// to every FR-OPT solve; bench drivers can share one across replications.
//
// Key = (instance fingerprint, exact profile bits). The fingerprint hashes
// everything an evaluation depends on — task deadlines and accuracy curves,
// machine speeds and efficiencies, the energy budget — so a machine crash
// (the serving loop re-plans on the alive subset) or a budget shock changes
// the fingerprint and cannot serve stale answers. Profiles are keyed on
// their exact bit patterns, not quantised: a hit therefore returns exactly
// what a fresh evaluation of that profile would compute, which is what makes
// cache-enabled serving runs bit-identical to cache-disabled runs
// (tests/serving_backlog_test.cpp pins this, faults included).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sched/energy_profile.h"
#include "sched/types.h"

namespace dsct {

/// Everything an evaluation depends on, hashed (FNV-1a over the raw bit
/// patterns — exact, no tolerance).
std::uint64_t instanceFingerprint(const Instance& inst);

struct ProfileCacheCounters {
  long long hits = 0;
  long long misses = 0;          ///< lookups that found nothing
  long long invalidations = 0;   ///< entries dropped by the capacity sweep
};

class ProfileCache {
 public:
  /// `maxEntries` bounds memory across a long serving run; exceeding it
  /// clears the cache (counted as invalidations) rather than tracking LRU
  /// order — re-solves cluster in time, so a full sweep rarely hurts.
  explicit ProfileCache(std::size_t maxEntries = 1 << 20);

  ProfileCache(const ProfileCache&) = delete;
  ProfileCache& operator=(const ProfileCache&) = delete;

  std::optional<double> lookup(std::uint64_t fingerprint,
                               const EnergyProfile& profile);
  void store(std::uint64_t fingerprint, const EnergyProfile& profile,
             double value);

  std::size_t size() const { return entries_.size(); }
  const ProfileCacheCounters& counters() const { return counters_; }

 private:
  struct Key {
    std::uint64_t fingerprint = 0;
    std::vector<std::uint64_t> profileBits;  ///< exact doubles, bit-cast

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  static Key keyOf(std::uint64_t fingerprint, const EnergyProfile& profile);

  std::unordered_map<Key, double, KeyHash> entries_;
  std::size_t maxEntries_;
  ProfileCacheCounters counters_;
};

}  // namespace dsct
