// Cross-solve evaluation cache for the ProfileEvaluator engine.
//
// ProfileEvaluator's per-solve memo dies with the solve: the serving loop's
// epoch-to-epoch re-solves (Algorithm 5 / FR-OPT) start cold every epoch
// even when consecutive epochs schedule the same batch (idle periods,
// carried backlog with no new arrivals, fallback re-solves). A ProfileCache
// outlives individual solves: runServing constructs one per run and hands it
// to every FR-OPT solve; bench drivers can share one across replications.
//
// Key = (instance fingerprint, exact profile bits). The fingerprint hashes
// everything an evaluation depends on — task deadlines and accuracy curves,
// machine speeds and efficiencies, the energy budget — so a machine crash
// (the serving loop re-plans on the alive subset) or a budget shock changes
// the fingerprint and cannot serve stale answers. Profiles are keyed on
// their exact bit patterns, not quantised: a hit therefore returns exactly
// what a fresh evaluation of that profile would compute, which is what makes
// cache-enabled serving runs bit-identical to cache-disabled runs
// (tests/serving_backlog_test.cpp pins this, faults included).
//
// Concurrency: the cache is sharded — a fixed power-of-two number of shards,
// each a (mutex, hash map, counters) triple, with the FNV hash of the key
// selecting the shard — so lookups and stores are safe from any thread.
// Worker threads of the evaluator's parallel batch mode read it
// concurrently; writes are funnelled through the evaluator's single-threaded
// commit phase in index order, which is what keeps cache contents
// bit-identical to a serial run (DESIGN.md §12,
// tests/sched_concurrent_cache_test.cpp).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sched/energy_profile.h"
#include "sched/types.h"

namespace dsct {

/// Everything an evaluation depends on, hashed (FNV-1a over the raw bit
/// patterns — exact, no tolerance).
std::uint64_t instanceFingerprint(const Instance& inst);

struct ProfileCacheCounters {
  long long hits = 0;
  long long misses = 0;          ///< lookups that found nothing
  long long invalidations = 0;   ///< entries dropped by per-shard sweeps
  long long contended = 0;       ///< lookups/stores that found the shard
                                 ///< mutex held by another thread
};

class ProfileCache {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  /// `maxEntries` bounds memory across a long serving run, split evenly over
  /// the shards; a shard exceeding its slice clears itself (counted as
  /// invalidations) rather than tracking LRU order — re-solves cluster in
  /// time, so a full sweep rarely hurts. `shards` is rounded up to a power
  /// of two.
  explicit ProfileCache(std::size_t maxEntries = 1 << 20,
                        std::size_t shards = kDefaultShards);

  ProfileCache(const ProfileCache&) = delete;
  ProfileCache& operator=(const ProfileCache&) = delete;

  /// Thread-safe (locks only the owning shard).
  std::optional<double> lookup(std::uint64_t fingerprint,
                               const EnergyProfile& profile);
  /// Thread-safe. Never overwrites: the first value stored for a key wins
  /// (values are pure functions of the key, so later stores are identical).
  void store(std::uint64_t fingerprint, const EnergyProfile& profile,
             double value);

  std::size_t size() const;
  std::size_t shardCount() const { return shards_.size(); }
  /// Aggregated snapshot over all shards.
  ProfileCacheCounters counters() const;
  /// Order-independent FNV digest over every (key, value) entry, exact bits.
  /// Two caches hold identical contents iff their sizes and digests match
  /// (up to hash collision); the concurrency differential harness compares
  /// serial and parallel runs through it.
  std::uint64_t contentDigest() const;

 private:
  struct Key {
    std::uint64_t fingerprint = 0;
    std::vector<std::uint64_t> profileBits;  ///< exact doubles, bit-cast

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, double, KeyHash> entries;
    ProfileCacheCounters counters;  ///< guarded by `mutex`
  };

  static Key keyOf(std::uint64_t fingerprint, const EnergyProfile& profile);
  Shard& shardFor(const Key& key);

  std::vector<Shard> shards_;
  std::size_t shardMask_ = 0;
  std::size_t maxPerShard_ = 0;
};

}  // namespace dsct
