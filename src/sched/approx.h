// Algorithm 5 of the paper: DSCT-EA-APPROX.
//
// Rounds the optimal fractional solution to an integral one: tasks are
// placed (in deadline order) on the least-loaded machine whose fractional
// load quota w^max_r is not yet exhausted; each task receives its fractional
// FLOP quota translated to time on the chosen machine, clamped by the
// machine quota; deadline violations are then repaired by cutting and
// shifting. Satisfies OPT − G <= SOL <= OPT with G from guarantee.h.
#pragma once

#include "sched/fr_opt.h"
#include "sched/guarantee.h"
#include "sched/schedule.h"
#include "sched/types.h"

namespace dsct {

struct ApproxResult {
  IntegralSchedule schedule;
  FrOptResult fractional;       ///< the relaxation used for rounding
  GuaranteeBreakdown guarantee;
  double totalAccuracy = 0.0;   ///< SOL
  double upperBound = 0.0;      ///< OPT of the relaxation (DSCT-EA-UB)
  double energy = 0.0;          ///< Joules consumed by the integral schedule

  double optimalityGap() const { return upperBound - totalAccuracy; }
};

ApproxResult solveApprox(const Instance& inst,
                         const RefineOptions& refineOptions = {});
/// Full-options overload: threading and the cross-solve ProfileCache the
/// serving loop carries across epochs (FrOptOptions::sharedCache).
ApproxResult solveApprox(const Instance& inst, const FrOptOptions& options);

/// Rounding step alone (exposed for tests): integralises a fractional
/// solution using per-machine load quotas `wmax`. Placement never exceeds
/// the fractional per-machine loads, so if the fractional solution respects
/// per-machine energy caps the rounded one does too; `machineEnergyCaps`
/// (J, nullable — see FrOptOptions) only constrains the budget top-up pass,
/// which is the one step that can grow a machine past its fractional load.
IntegralSchedule roundFractional(
    const Instance& inst, const FractionalSchedule& fractional,
    const std::vector<double>* machineEnergyCaps = nullptr);

}  // namespace dsct
