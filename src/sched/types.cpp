#include "sched/types.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace dsct {

Instance::Instance(std::vector<Task> tasks, std::vector<Machine> machines,
                   double energyBudget)
    : tasks_(std::move(tasks)),
      machines_(std::move(machines)),
      energyBudget_(energyBudget) {
  DSCT_CHECK_MSG(!machines_.empty(), "instance needs at least one machine");
  DSCT_CHECK_MSG(energyBudget_ >= 0.0, "negative energy budget");
  for (const Machine& m : machines_) {
    DSCT_CHECK_MSG(m.speed > 0.0, "machine speed must be positive");
    DSCT_CHECK_MSG(m.efficiency > 0.0, "machine efficiency must be positive");
  }
  for (const Task& t : tasks_) {
    DSCT_CHECK_MSG(t.deadline >= 0.0, "negative deadline");
  }
  std::stable_sort(tasks_.begin(), tasks_.end(),
                   [](const Task& a, const Task& b) {
                     return a.deadline < b.deadline;
                   });
}

double Instance::maxDeadline() const {
  return tasks_.empty() ? 0.0 : tasks_.back().deadline;
}

double Instance::totalFmax() const {
  return std::accumulate(tasks_.begin(), tasks_.end(), 0.0,
                         [](double acc, const Task& t) { return acc + t.fmax(); });
}

double Instance::totalSpeed() const {
  return std::accumulate(
      machines_.begin(), machines_.end(), 0.0,
      [](double acc, const Machine& m) { return acc + m.speed; });
}

double Instance::totalPower() const {
  return std::accumulate(
      machines_.begin(), machines_.end(), 0.0,
      [](double acc, const Machine& m) { return acc + m.power(); });
}

double Instance::totalAmax() const {
  return std::accumulate(tasks_.begin(), tasks_.end(), 0.0,
                         [](double acc, const Task& t) { return acc + t.amax(); });
}

double Instance::totalAmin() const {
  return std::accumulate(tasks_.begin(), tasks_.end(), 0.0,
                         [](double acc, const Task& t) { return acc + t.amin(); });
}

std::vector<int> Instance::machinesByEfficiencyDesc() const {
  std::vector<int> order(machines_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return machines_[static_cast<std::size_t>(a)].efficiency >
           machines_[static_cast<std::size_t>(b)].efficiency;
  });
  return order;
}

}  // namespace dsct
