#include "sched/render.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace dsct {

std::string renderGantt(const Instance& inst, const IntegralSchedule& schedule,
                        const RenderOptions& options) {
  DSCT_CHECK(options.width >= 16);
  std::ostringstream os;
  // Time scale: the latest deadline or completion.
  double horizon = inst.maxDeadline();
  for (int r = 0; r < inst.numMachines(); ++r) {
    const auto& timeline = schedule.timeline(r);
    if (!timeline.empty()) {
      horizon = std::max(horizon, timeline.back().end());
    }
  }
  if (horizon <= 0.0) horizon = 1.0;
  const double perColumn = horizon / static_cast<double>(options.width);

  for (int r = 0; r < inst.numMachines(); ++r) {
    std::string lane(static_cast<std::size_t>(options.width), '.');
    for (const ScheduledTask& e : schedule.timeline(r)) {
      if (e.duration <= 0.0) continue;
      const int c0 = std::clamp(
          static_cast<int>(std::floor(e.start / perColumn)), 0,
          options.width - 1);
      const int c1 = std::clamp(
          static_cast<int>(std::ceil(e.end() / perColumn)) - 1, c0,
          options.width - 1);
      const std::string label = std::to_string(e.task);
      for (int c = c0; c <= c1; ++c) {
        const std::size_t li = static_cast<std::size_t>(c - c0);
        lane[static_cast<std::size_t>(c)] =
            li < label.size() ? label[li] : '-';
      }
    }
    os << std::left << std::setw(14)
       << (inst.machine(r).name.empty() ? "machine-" + std::to_string(r)
                                        : inst.machine(r).name)
       << " |" << lane << "|\n";
  }
  std::ostringstream horizonLabel;
  horizonLabel << std::fixed << std::setprecision(2) << horizon << " s";
  os << std::left << std::setw(14) << "" << " 0" << std::right
     << std::setw(options.width) << horizonLabel.str() << '\n';

  if (options.showAccuracy) {
    os << "tasks:";
    for (int j = 0; j < inst.numTasks(); ++j) {
      os << ' ' << j << "=("
         << std::fixed << std::setprecision(3)
         << schedule.taskAccuracy(inst, j) << ')';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace dsct
