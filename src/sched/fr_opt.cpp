#include "sched/fr_opt.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sched/naive_solution.h"
#include "solver/model.h"
#include "solver/simplex.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dsct {

namespace {

constexpr double kImprovementTol = 1e-10;

/// Per-machine load ceiling (seconds): the horizon, tightened to
/// cap_r / P_r where per-machine energy caps apply (DESIGN.md §15). Every
/// profile move below projects onto these ceilings, so a capped solve never
/// proposes a load the machine's battery cannot deliver.
EnergyProfile loadCeilings(const Instance& inst,
                           const std::vector<double>* machineEnergyCaps) {
  const double horizon = inst.maxDeadline();
  EnergyProfile ceilings(static_cast<std::size_t>(inst.numMachines()),
                         horizon);
  if (machineEnergyCaps != nullptr) {
    for (int r = 0; r < inst.numMachines(); ++r) {
      const std::size_t i = static_cast<std::size_t>(r);
      if (i >= machineEnergyCaps->size()) break;
      const double power = inst.machine(r).power();
      if (power <= 0.0) continue;
      ceilings[i] =
          std::min(ceilings[i], std::max(0.0, (*machineEnergyCaps)[i]) / power);
    }
  }
  return ceilings;
}

/// Grant unused budget to machines below their ceiling, most efficient
/// first. With strict deadlines the funded machines cannot always absorb
/// their naive profiles (their loads stall below p_r); the leftover energy
/// then buys *parallel* capacity on so-far unfunded machines.
EnergyProfile expandProfile(const Instance& inst, const EnergyProfile& loads,
                            double leftover, const EnergyProfile& ceilings) {
  EnergyProfile profile = loads;
  for (int r : inst.machinesByEfficiencyDesc()) {
    if (leftover <= 0.0) break;
    const double power = inst.machine(r).power();
    const double grow =
        std::min(ceilings[static_cast<std::size_t>(r)] -
                     profile[static_cast<std::size_t>(r)],
                 leftover / power);
    if (grow <= 0.0) continue;
    profile[static_cast<std::size_t>(r)] += grow;
    leftover -= grow * power;
  }
  return profile;
}

/// Expansion candidates: the efficiency-greedy profile above, plus one
/// profile per machine that grants the whole leftover to that machine. With
/// binding deadlines the best recipient is not necessarily the most
/// efficient machine — a fast machine adds capacity inside every deadline
/// window — so each candidate is evaluated by re-solving.
std::vector<EnergyProfile> expansionCandidates(const Instance& inst,
                                               const EnergyProfile& loads,
                                               double leftover,
                                               const EnergyProfile& ceilings) {
  std::vector<EnergyProfile> candidates;
  candidates.push_back(expandProfile(inst, loads, leftover, ceilings));
  for (int r = 0; r < inst.numMachines(); ++r) {
    const double power = inst.machine(r).power();
    const double grow = std::min(ceilings[static_cast<std::size_t>(r)] -
                                     loads[static_cast<std::size_t>(r)],
                                 leftover / power);
    if (grow <= 0.0) continue;
    EnergyProfile profile = loads;
    profile[static_cast<std::size_t>(r)] += grow;
    candidates.push_back(std::move(profile));
  }
  return candidates;
}

}  // namespace

std::optional<PairMove> bestPairMove(const Instance& inst,
                                     const ProfileEvaluator& evaluator,
                                     const EnergyProfile& loads,
                                     double baseAccuracy, ThreadPool* pool,
                                     const PairProbeHook* probeHook,
                                     const EnergyProfile* maxLoads) {
  const double horizon = inst.maxDeadline();
  const int m = inst.numMachines();
  const auto ceilingOf = [&](int r) {
    return maxLoads != nullptr ? (*maxLoads)[static_cast<std::size_t>(r)]
                               : horizon;
  };

  struct Direction {
    int from;
    int to;
    double cap;  ///< largest energy-conserving transfer (J)
  };
  std::vector<Direction> directions;
  for (int from = 0; from < m; ++from) {
    const double available =
        loads[static_cast<std::size_t>(from)] * inst.machine(from).power();
    if (available <= 1e-12) continue;
    for (int to = 0; to < m; ++to) {
      if (to == from) continue;
      // The recipient can absorb at most its headroom to the horizon (or
      // its energy-cap ceiling when one applies). A larger transfer would
      // have to clamp the recipient while still deducting the full delta
      // from the donor — destroying energy — so the probe values past this
      // cap are meaningless and the old uncapped screen (probes at
      // available/2, available/64, available) could dismiss a direction
      // whose entire improvement region lies within the much smaller cap.
      const double headroom =
          (ceilingOf(to) - loads[static_cast<std::size_t>(to)]) *
          inst.machine(to).power();
      const double cap = std::min(available, headroom);
      if (cap <= 1e-12) continue;
      directions.push_back({from, to, cap});
    }
  }

  // Each direction is an independent concave 1-D search against the shared
  // base loads: pure work, fanned across the pool when one is given. The
  // reduction below is index-ordered, so serial and parallel runs pick the
  // same move.
  const auto probe = [&](std::size_t k) -> PairMove {
    const Direction& dir = directions[k];
    const double powerFrom = inst.machine(dir.from).power();
    const double powerTo = inst.machine(dir.to).power();
    const auto valueAt = [&](double delta) {
      EnergyProfile profile = loads;
      profile[static_cast<std::size_t>(dir.from)] -= delta / powerFrom;
      // delta <= cap keeps the recipient at or below the horizon: energy is
      // conserved without clamping.
      profile[static_cast<std::size_t>(dir.to)] += delta / powerTo;
      if (probeHook != nullptr) (*probeHook)(dir.from, dir.to, delta, profile);
      return evaluator.evaluate(profile);
    };
    PairMove move;
    move.from = dir.from;
    move.to = dir.to;
    move.accuracy = baseAccuracy;
    // Quick screen: skip directions with no improvement anywhere.
    if (valueAt(dir.cap / 2.0) <= baseAccuracy + kImprovementTol &&
        valueAt(dir.cap / 64.0) <= baseAccuracy + kImprovementTol &&
        valueAt(dir.cap) <= baseAccuracy + kImprovementTol) {
      return move;  // not improving; filtered by the reduction
    }
    // V(delta) is concave (LP value of its right-hand side): ternary search
    // pins the best transfer size along this direction.
    double lo = 0.0;
    double hi = dir.cap;
    for (int iter = 0; iter < 48 && hi - lo > 1e-12 * dir.cap; ++iter) {
      const double m1 = lo + (hi - lo) / 3.0;
      const double m2 = hi - (hi - lo) / 3.0;
      if (valueAt(m1) < valueAt(m2)) {
        lo = m1;
      } else {
        hi = m2;
      }
    }
    move.delta = (lo + hi) / 2.0;
    move.profile = loads;
    move.profile[static_cast<std::size_t>(dir.from)] -= move.delta / powerFrom;
    move.profile[static_cast<std::size_t>(dir.to)] += move.delta / powerTo;
    if (probeHook != nullptr) {
      (*probeHook)(dir.from, dir.to, move.delta, move.profile);
    }
    move.accuracy = evaluator.evaluate(move.profile);
    return move;
  };

  std::vector<PairMove> moves;
  if (pool != nullptr && directions.size() > 1) {
    moves = pool->parallelMap(directions.size(), probe);
  } else {
    moves.reserve(directions.size());
    for (std::size_t k = 0; k < directions.size(); ++k) {
      moves.push_back(probe(k));
    }
  }

  std::optional<PairMove> best;
  for (PairMove& move : moves) {
    if (move.accuracy <= baseAccuracy + kImprovementTol) continue;
    if (!best || move.accuracy > best->accuracy) best = std::move(move);
  }
  return best;
}

FrOptResult solveFrOpt(const Instance& inst,
                       const RefineOptions& refineOptions) {
  FrOptOptions options;
  options.refine = refineOptions;
  return solveFrOpt(inst, options);
}

FrOptResult solveFrOpt(const Instance& inst, const FrOptOptions& options) {
  const Stopwatch totalWatch;
  ProfileEvaluator evaluator(inst, options.sharedCache);
  // Attribute only this solve's cross-solve cache traffic to its counters.
  const ProfileCacheCounters crossBefore =
      options.sharedCache != nullptr ? options.sharedCache->counters()
                                     : ProfileCacheCounters{};

  std::unique_ptr<ThreadPool> ownedPool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && options.threads > 0) {
    ownedPool = std::make_unique<ThreadPool>(options.threads);
    pool = ownedPool.get();
  }

  NaiveSolution naive = computeNaiveSolution(inst);
  FrOptResult result{std::move(naive.schedule), std::move(naive.profile),
                     {}, {}, {}, 0.0, 0.0, false};

  // Per-machine load ceilings: the horizon, tightened by the energy caps.
  // With caps active the naive start is projected onto the capped box and
  // re-materialised, so every later move starts from a cap-feasible profile.
  const bool capped = options.machineEnergyCaps != nullptr;
  const EnergyProfile ceilings = loadCeilings(inst, options.machineEnergyCaps);
  if (capped) {
    EnergyProfile clamped = result.naiveProfile;
    bool changed = false;
    for (std::size_t r = 0; r < clamped.size(); ++r) {
      if (clamped[r] > ceilings[r]) {
        clamped[r] = ceilings[r];
        changed = true;
      }
    }
    if (changed) {
      result.schedule = evaluator.schedule(clamped);
      result.naiveProfile = std::move(clamped);
    }
  }

  // Cooperative stop: polled at the outer rounds and inside the escape
  // searches. Marks the result cancelled exactly when a poll fires, so a
  // solve that runs to completion never reports cancellation.
  const auto stopNow = [&]() {
    if (stopRequested(options.cancel)) {
      result.cancelled = true;
      return true;
    }
    return false;
  };

  // Forward the token (and the energy caps) into RefineProfile's round loop.
  RefineOptions refineOptions = options.refine;
  if (refineOptions.cancel == nullptr) refineOptions.cancel = options.cancel;
  if (refineOptions.machineEnergyCaps == nullptr) {
    refineOptions.machineEnergyCaps = options.machineEnergyCaps;
  }

  // Alternate three fixed-point steps until none improves:
  //  * expandProfile — spend leftover budget on additional parallel
  //    capacity (complementary slackness on the budget row);
  //  * refineProfile — move energy between (segment, machine) pairs
  //    (explores the profile space, Algorithm 3);
  //  * solveForProfile — re-derive the optimal allocation for the current
  //    machine loads (Algorithm 2's core, exact for any given profile).
  // The plain paper pipeline is one refine pass; the extra steps repair the
  // cases a transfer-only pass cannot reach (DESIGN.md §6).
  constexpr int kMaxOuterRounds = 16;
  double currentAccuracy = result.schedule.totalAccuracy(inst);

  // Adopt `profile` when it beats the incumbent. The fused evaluator value
  // screens candidates cheaply; a full schedule is materialised only on
  // improvement, and the final comparison re-checks on the materialised
  // accuracy (it can differ from the fused sum in the last ulp).
  const auto maybeAdoptProfile = [&](const EnergyProfile& profile) {
    if (evaluator.cached(profile) <= currentAccuracy + kImprovementTol) {
      return false;
    }
    FractionalSchedule candidate = evaluator.schedule(profile);
    const double accuracy = candidate.totalAccuracy(inst);
    if (accuracy <= currentAccuracy + kImprovementTol) return false;
    result.schedule = std::move(candidate);
    currentAccuracy = accuracy;
    return true;
  };

  // Escape step for plateaus of the first-order moves: move a quantum of
  // *profile energy* between machines and re-solve. Because the optimal
  // value is a concave function of the profile vector (LP value of its
  // RHS), a pairwise line search over transfer sizes recovers composite
  // moves that single (segment, machine) transfers cannot express. Best-
  // improvement rounds: every direction is probed against the same base,
  // the best move is adopted, then the search restarts from the new loads.
  const auto pairSearch = [&]() {
    bool improved = false;
    for (;;) {
      if (stopNow()) break;
      const EnergyProfile loads = result.schedule.machineLoads();
      const std::optional<PairMove> move =
          bestPairMove(inst, evaluator, loads, currentAccuracy, pool, nullptr,
                       capped ? &ceilings : nullptr);
      if (!move.has_value() || !maybeAdoptProfile(move->profile)) break;
      ++result.counters.pairMoves;
      improved = true;
    }
    return improved;
  };

  // Direction search over the profile polytope
  // {p : Σ p_r P_r <= B, 0 <= p_r <= d_max}. V(p) — the optimal accuracy
  // for profile caps p — is concave (LP value as a function of its RHS) but
  // kinked: at a kink, directional derivatives are superadditive, so a
  // joint multi-machine move can improve while every pairwise move fails.
  // We therefore compute both one-sided derivatives per machine and solve a
  // tiny direction LP (split d = u − v); a concave line search along the
  // resulting direction then takes the step.
  const auto directionSearch = [&]() {
    const double horizon = inst.maxDeadline();
    const int m = inst.numMachines();
    bool improvedAny = false;
    EnergyProfile p = result.schedule.machineLoads();
    for (int iter = 0; iter < 24; ++iter) {
      if (stopNow()) break;
      const double v0 = evaluator.cached(p);
      const double eps = std::max(1e-10, 1e-7 * horizon);
      // The 2m one-sided derivative probes are independent: batch them
      // through the evaluator (fanning across the pool when given).
      std::vector<EnergyProfile> probes;
      std::vector<int> probeMachine;  ///< r for probe i; up if >= 0 else ~r
      for (int r = 0; r < m; ++r) {
        if (p[static_cast<std::size_t>(r)] + eps <=
            ceilings[static_cast<std::size_t>(r)]) {
          EnergyProfile q = p;
          q[static_cast<std::size_t>(r)] += eps;
          probes.push_back(std::move(q));
          probeMachine.push_back(r);
        }
        if (p[static_cast<std::size_t>(r)] >= eps) {
          EnergyProfile q = p;
          q[static_cast<std::size_t>(r)] -= eps;
          probes.push_back(std::move(q));
          probeMachine.push_back(~r);
        }
      }
      const std::vector<double> probeValues =
          evaluator.evaluateBatch(probes, pool, options.parallelCachedEval);
      std::vector<double> gainUp(static_cast<std::size_t>(m), 0.0);
      std::vector<double> lossDown(static_cast<std::size_t>(m), 0.0);
      for (std::size_t i = 0; i < probes.size(); ++i) {
        if (probeMachine[i] >= 0) {
          gainUp[static_cast<std::size_t>(probeMachine[i])] =
              (probeValues[i] - v0) / eps;
        } else {
          lossDown[static_cast<std::size_t>(~probeMachine[i])] =
              (v0 - probeValues[i]) / eps;
        }
      }
      // Direction LP: max Σ gainUp_r u_r − Σ lossDown_r v_r
      //   s.t. Σ P_r (u_r − v_r) <= budget slack,
      //        0 <= u_r <= ceiling_r − p_r, 0 <= v_r <= p_r
      // (ceiling_r = d_max, tightened by the per-machine energy cap).
      lp::Model dir;
      dir.setMaximize(true);
      std::vector<std::pair<int, double>> budgetRow;
      for (int r = 0; r < m; ++r) {
        const double power = inst.machine(r).power();
        const int u = dir.addVariable(
            0.0,
            std::max(0.0, ceilings[static_cast<std::size_t>(r)] -
                              p[static_cast<std::size_t>(r)]),
            gainUp[static_cast<std::size_t>(r)]);
        const int v = dir.addVariable(0.0, p[static_cast<std::size_t>(r)],
                                      -lossDown[static_cast<std::size_t>(r)]);
        budgetRow.emplace_back(u, power);
        budgetRow.emplace_back(v, -power);
      }
      double slack = inst.energyBudget();
      for (int r = 0; r < m; ++r) {
        slack -= p[static_cast<std::size_t>(r)] * inst.machine(r).power();
      }
      dir.addConstraint(std::move(budgetRow), lp::Sense::kLe,
                        std::max(0.0, slack));
      ++result.counters.directionLpSolves;
      const lp::LpResult dirRes = lp::solveLp(dir);
      if (dirRes.status != lp::SolveStatus::kOptimal ||
          dirRes.objective <= 1e-9) {
        break;  // no improving direction at this kink
      }
      EnergyProfile direction(static_cast<std::size_t>(m), 0.0);
      for (int r = 0; r < m; ++r) {
        direction[static_cast<std::size_t>(r)] =
            dirRes.x[static_cast<std::size_t>(2 * r)] -
            dirRes.x[static_cast<std::size_t>(2 * r + 1)];
      }
      // Concave line search along p + t·direction, t in [0, 1].
      const auto at = [&](double t) {
        EnergyProfile q = p;
        for (int r = 0; r < m; ++r) {
          q[static_cast<std::size_t>(r)] = std::clamp(
              q[static_cast<std::size_t>(r)] +
                  t * direction[static_cast<std::size_t>(r)],
              0.0, ceilings[static_cast<std::size_t>(r)]);
        }
        return q;
      };
      double lo = 0.0, hi = 1.0;
      for (int ls = 0; ls < 48 && hi - lo > 1e-12; ++ls) {
        const double m1 = lo + (hi - lo) / 3.0;
        const double m2 = hi - (hi - lo) / 3.0;
        if (evaluator.cached(at(m1)) < evaluator.cached(at(m2))) {
          lo = m1;
        } else {
          hi = m2;
        }
      }
      // Prefer the full step when the line search plateaus at the boundary.
      EnergyProfile next = at((lo + hi) / 2.0);
      if (evaluator.cached(at(1.0)) >= evaluator.cached(next)) next = at(1.0);
      if (evaluator.cached(next) <= v0 + kImprovementTol) break;
      p = std::move(next);
      if (maybeAdoptProfile(p)) {
        ++result.counters.directionSteps;
        improvedAny = true;
      }
    }
    return improvedAny;
  };

  double best = currentAccuracy;
  for (int round = 0; round < kMaxOuterRounds; ++round) {
    if (stopNow()) break;
    ++result.counters.outerRounds;

    {
      const Stopwatch watch;
      const double leftover =
          inst.energyBudget() - result.schedule.energy(inst);
      if (leftover > 1e-12 * std::max(1.0, inst.energyBudget())) {
        const EnergyProfile loads = result.schedule.machineLoads();
        const std::vector<EnergyProfile> candidates =
            expansionCandidates(inst, loads, leftover, ceilings);
        const std::vector<double> values =
            evaluator.evaluateBatch(candidates, pool,
                                    options.parallelCachedEval);
        // Adopting only the argmax (first on ties) matches the sequential
        // adopt-each-improving-candidate chain: the chain's final incumbent
        // is exactly the first maximal improving candidate.
        std::size_t bestIdx = candidates.size();
        double bestValue = currentAccuracy + kImprovementTol;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          if (values[i] > bestValue) {
            bestValue = values[i];
            bestIdx = i;
          }
        }
        if (bestIdx < candidates.size()) {
          maybeAdoptProfile(candidates[bestIdx]);
        }
      }
      result.counters.expandSeconds += watch.elapsedSeconds();
    }

    RefineStats stats;
    {
      const Stopwatch watch;
      stats = refineProfile(inst, result.schedule, refineOptions);
      result.refineStats.rounds += stats.rounds;
      result.refineStats.transfers += stats.transfers;
      result.refineStats.energyMoved += stats.energyMoved;
      result.refineStats.slack.queries += stats.slack.queries;
      result.refineStats.slack.hits += stats.slack.hits;
      result.refineStats.slack.rebuilds += stats.slack.rebuilds;
      result.refineStats.slack.invalidations += stats.slack.invalidations;
      // refineProfile mutates the schedule in place; refresh the incumbent
      // accuracy before re-solving for the refined loads.
      currentAccuracy = result.schedule.totalAccuracy(inst);
      maybeAdoptProfile(result.schedule.machineLoads());
      result.counters.refineSeconds += watch.elapsedSeconds();
    }

    if (stats.transfers == 0 && currentAccuracy <= best + kImprovementTol) {
      // First-order fixed point reached: try the pairwise profile search,
      // then the Frank-Wolfe refinement, before concluding.
      bool escaped;
      {
        const Stopwatch watch;
        escaped = pairSearch();
        result.counters.pairSeconds += watch.elapsedSeconds();
      }
      if (!escaped) {
        const Stopwatch watch;
        escaped = directionSearch();
        result.counters.directionSeconds += watch.elapsedSeconds();
      }
      if (!escaped) break;
    }
    best = std::max(best, currentAccuracy);
  }

  result.refinedProfile = result.schedule.machineLoads();
  result.totalAccuracy = result.schedule.totalAccuracy(inst);
  result.energy = result.schedule.energy(inst);

  const EvaluatorCounters ec = evaluator.counters();
  result.counters.evaluations = ec.evaluations;
  result.counters.cacheHits = ec.cacheHits;
  result.counters.scheduleSolves = ec.scheduleSolves;
  result.counters.slackQueries = result.refineStats.slack.queries;
  result.counters.slackHits = result.refineStats.slack.hits;
  result.counters.slackRebuilds = result.refineStats.slack.rebuilds;
  result.counters.slackInvalidations = result.refineStats.slack.invalidations;
  if (options.sharedCache != nullptr) {
    const ProfileCacheCounters crossAfter = options.sharedCache->counters();
    result.counters.crossHits = crossAfter.hits - crossBefore.hits;
    result.counters.crossMisses = crossAfter.misses - crossBefore.misses;
    result.counters.crossInvalidations =
        crossAfter.invalidations - crossBefore.invalidations;
    result.counters.crossContended =
        crossAfter.contended - crossBefore.contended;
    result.counters.crossShards =
        static_cast<long long>(options.sharedCache->shardCount());
  }
  result.counters.totalSeconds = totalWatch.elapsedSeconds();
  return result;
}

}  // namespace dsct
