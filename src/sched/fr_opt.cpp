#include "sched/fr_opt.h"

#include <algorithm>
#include <utility>

#include "sched/naive_solution.h"
#include "solver/model.h"
#include "solver/simplex.h"

namespace dsct {

namespace {

/// Grant unused budget to machines below the horizon, most efficient first.
/// With strict deadlines the funded machines cannot always absorb their
/// naive profiles (their loads stall below p_r); the leftover energy then
/// buys *parallel* capacity on so-far unfunded machines.
EnergyProfile expandProfile(const Instance& inst, const EnergyProfile& loads,
                            double leftover) {
  EnergyProfile profile = loads;
  const double horizon = inst.maxDeadline();
  for (int r : inst.machinesByEfficiencyDesc()) {
    if (leftover <= 0.0) break;
    const double power = inst.machine(r).power();
    const double grow = std::min(
        horizon - profile[static_cast<std::size_t>(r)], leftover / power);
    if (grow <= 0.0) continue;
    profile[static_cast<std::size_t>(r)] += grow;
    leftover -= grow * power;
  }
  return profile;
}

/// Expansion candidates: the efficiency-greedy profile above, plus one
/// profile per machine that grants the whole leftover to that machine. With
/// binding deadlines the best recipient is not necessarily the most
/// efficient machine — a fast machine adds capacity inside every deadline
/// window — so each candidate is evaluated by re-solving.
std::vector<EnergyProfile> expansionCandidates(const Instance& inst,
                                               const EnergyProfile& loads,
                                               double leftover) {
  std::vector<EnergyProfile> candidates;
  candidates.push_back(expandProfile(inst, loads, leftover));
  const double horizon = inst.maxDeadline();
  for (int r = 0; r < inst.numMachines(); ++r) {
    const double power = inst.machine(r).power();
    const double grow = std::min(
        horizon - loads[static_cast<std::size_t>(r)], leftover / power);
    if (grow <= 0.0) continue;
    EnergyProfile profile = loads;
    profile[static_cast<std::size_t>(r)] += grow;
    candidates.push_back(std::move(profile));
  }
  return candidates;
}

}  // namespace

FrOptResult solveFrOpt(const Instance& inst,
                       const RefineOptions& refineOptions) {
  NaiveSolution naive = computeNaiveSolution(inst);
  FrOptResult result{std::move(naive.schedule), std::move(naive.profile),
                     {}, {}, 0.0, 0.0};

  // Alternate three fixed-point steps until none improves:
  //  * expandProfile — spend leftover budget on additional parallel
  //    capacity (complementary slackness on the budget row);
  //  * refineProfile — move energy between (segment, machine) pairs
  //    (explores the profile space, Algorithm 3);
  //  * solveForProfile — re-derive the optimal allocation for the current
  //    machine loads (Algorithm 2's core, exact for any given profile).
  // The plain paper pipeline is one refine pass; the extra steps repair the
  // cases a transfer-only pass cannot reach (DESIGN.md §6).
  constexpr int kMaxOuterRounds = 16;
  constexpr double kImprovementTol = 1e-10;
  const auto maybeAdopt = [&](FractionalSchedule candidate) {
    if (candidate.totalAccuracy(inst) >
        result.schedule.totalAccuracy(inst) + kImprovementTol) {
      result.schedule = std::move(candidate);
      return true;
    }
    return false;
  };

  // Escape step for plateaus of the first-order moves: move a quantum of
  // *profile energy* from machine r to machine r' and re-solve. Because the
  // optimal value is a concave function of the profile vector (LP value of
  // its RHS), a pairwise line search over transfer sizes recovers composite
  // moves that single (segment, machine) transfers cannot express.
  const auto pairSearch = [&]() {
    const double horizon = inst.maxDeadline();
    bool improved = false;
    for (int from = 0; from < inst.numMachines(); ++from) {
      for (int to = 0; to < inst.numMachines(); ++to) {
        if (to == from) continue;
        const EnergyProfile loads = result.schedule.machineLoads();
        const double available = loads[static_cast<std::size_t>(from)] *
                                 inst.machine(from).power();
        if (available <= 1e-12) continue;
        const auto valueAt = [&](double delta) {
          EnergyProfile profile = loads;
          profile[static_cast<std::size_t>(from)] -=
              delta / inst.machine(from).power();
          profile[static_cast<std::size_t>(to)] =
              std::min(horizon, profile[static_cast<std::size_t>(to)] +
                                    delta / inst.machine(to).power());
          return solveForProfile(inst, profile).totalAccuracy(inst);
        };
        // V(delta) is concave (LP value of its right-hand side): ternary
        // search pins the best transfer size along this direction.
        double lo = 0.0;
        double hi = available;
        const double base = result.schedule.totalAccuracy(inst);
        // Quick screen: skip directions with no improvement anywhere.
        if (valueAt(hi / 2.0) <= base + kImprovementTol &&
            valueAt(hi / 64.0) <= base + kImprovementTol &&
            valueAt(hi) <= base + kImprovementTol) {
          continue;
        }
        for (int iter = 0; iter < 48 && hi - lo > 1e-12 * available; ++iter) {
          const double m1 = lo + (hi - lo) / 3.0;
          const double m2 = hi - (hi - lo) / 3.0;
          if (valueAt(m1) < valueAt(m2)) {
            lo = m1;
          } else {
            hi = m2;
          }
        }
        const double delta = (lo + hi) / 2.0;
        EnergyProfile profile = loads;
        profile[static_cast<std::size_t>(from)] -=
            delta / inst.machine(from).power();
        profile[static_cast<std::size_t>(to)] =
            std::min(horizon, profile[static_cast<std::size_t>(to)] +
                                  delta / inst.machine(to).power());
        if (maybeAdopt(solveForProfile(inst, profile))) improved = true;
      }
    }
    return improved;
  };

  // Direction search over the profile polytope
  // {p : Σ p_r P_r <= B, 0 <= p_r <= d_max}. V(p) — the optimal accuracy
  // for profile caps p — is concave (LP value as a function of its RHS) but
  // kinked: at a kink, directional derivatives are superadditive, so a
  // joint multi-machine move can improve while every pairwise move fails.
  // We therefore compute both one-sided derivatives per machine and solve a
  // tiny direction LP (split d = u − v); a concave line search along the
  // resulting direction then takes the step.
  const auto directionSearch = [&]() {
    const double horizon = inst.maxDeadline();
    const int m = inst.numMachines();
    bool improvedAny = false;
    const auto value = [&](const EnergyProfile& q) {
      return solveForProfile(inst, q).totalAccuracy(inst);
    };
    EnergyProfile p = result.schedule.machineLoads();
    for (int iter = 0; iter < 24; ++iter) {
      const double v0 = value(p);
      const double eps = std::max(1e-10, 1e-7 * horizon);
      std::vector<double> gainUp(static_cast<std::size_t>(m), 0.0);
      std::vector<double> lossDown(static_cast<std::size_t>(m), 0.0);
      for (int r = 0; r < m; ++r) {
        if (p[static_cast<std::size_t>(r)] + eps <= horizon) {
          EnergyProfile q = p;
          q[static_cast<std::size_t>(r)] += eps;
          gainUp[static_cast<std::size_t>(r)] = (value(q) - v0) / eps;
        }
        if (p[static_cast<std::size_t>(r)] >= eps) {
          EnergyProfile q = p;
          q[static_cast<std::size_t>(r)] -= eps;
          lossDown[static_cast<std::size_t>(r)] = (v0 - value(q)) / eps;
        }
      }
      // Direction LP: max Σ gainUp_r u_r − Σ lossDown_r v_r
      //   s.t. Σ P_r (u_r − v_r) <= budget slack,
      //        0 <= u_r <= d_max − p_r, 0 <= v_r <= p_r.
      lp::Model dir;
      dir.setMaximize(true);
      std::vector<std::pair<int, double>> budgetRow;
      for (int r = 0; r < m; ++r) {
        const double power = inst.machine(r).power();
        const int u = dir.addVariable(
            0.0, std::max(0.0, horizon - p[static_cast<std::size_t>(r)]),
            gainUp[static_cast<std::size_t>(r)]);
        const int v = dir.addVariable(0.0, p[static_cast<std::size_t>(r)],
                                      -lossDown[static_cast<std::size_t>(r)]);
        budgetRow.emplace_back(u, power);
        budgetRow.emplace_back(v, -power);
      }
      double slack = inst.energyBudget();
      for (int r = 0; r < m; ++r) {
        slack -= p[static_cast<std::size_t>(r)] * inst.machine(r).power();
      }
      dir.addConstraint(std::move(budgetRow), lp::Sense::kLe,
                        std::max(0.0, slack));
      const lp::LpResult dirRes = lp::solveLp(dir);
      if (dirRes.status != lp::SolveStatus::kOptimal ||
          dirRes.objective <= 1e-9) {
        break;  // no improving direction at this kink
      }
      EnergyProfile direction(static_cast<std::size_t>(m), 0.0);
      for (int r = 0; r < m; ++r) {
        direction[static_cast<std::size_t>(r)] =
            dirRes.x[static_cast<std::size_t>(2 * r)] -
            dirRes.x[static_cast<std::size_t>(2 * r + 1)];
      }
      // Concave line search along p + t·direction, t in [0, 1].
      const auto at = [&](double t) {
        EnergyProfile q = p;
        for (int r = 0; r < m; ++r) {
          q[static_cast<std::size_t>(r)] = std::clamp(
              q[static_cast<std::size_t>(r)] +
                  t * direction[static_cast<std::size_t>(r)],
              0.0, horizon);
        }
        return q;
      };
      double lo = 0.0, hi = 1.0;
      for (int ls = 0; ls < 48 && hi - lo > 1e-12; ++ls) {
        const double m1 = lo + (hi - lo) / 3.0;
        const double m2 = hi - (hi - lo) / 3.0;
        if (value(at(m1)) < value(at(m2))) {
          lo = m1;
        } else {
          hi = m2;
        }
      }
      // Prefer the full step when the line search plateaus at the boundary.
      EnergyProfile next = at((lo + hi) / 2.0);
      if (value(at(1.0)) >= value(next)) next = at(1.0);
      if (value(next) <= v0 + kImprovementTol) break;
      p = std::move(next);
      if (maybeAdopt(solveForProfile(inst, p))) improvedAny = true;
    }
    return improvedAny;
  };

  double best = result.schedule.totalAccuracy(inst);
  for (int round = 0; round < kMaxOuterRounds; ++round) {
    const double leftover =
        inst.energyBudget() - result.schedule.energy(inst);
    if (leftover > 1e-12 * std::max(1.0, inst.energyBudget())) {
      const EnergyProfile loads = result.schedule.machineLoads();
      for (const EnergyProfile& candidate :
           expansionCandidates(inst, loads, leftover)) {
        maybeAdopt(solveForProfile(inst, candidate));
      }
    }

    const RefineStats stats =
        refineProfile(inst, result.schedule, refineOptions);
    result.refineStats.rounds += stats.rounds;
    result.refineStats.transfers += stats.transfers;
    result.refineStats.energyMoved += stats.energyMoved;

    maybeAdopt(solveForProfile(inst, result.schedule.machineLoads()));

    const double current = result.schedule.totalAccuracy(inst);
    if (stats.transfers == 0 && current <= best + kImprovementTol) {
      // First-order fixed point reached: try the pairwise profile search,
      // then the Frank-Wolfe refinement, before concluding.
      if (!pairSearch() && !directionSearch()) break;
    }
    best = std::max(best, result.schedule.totalAccuracy(inst));
  }

  result.refinedProfile = result.schedule.machineLoads();
  result.totalAccuracy = result.schedule.totalAccuracy(inst);
  result.energy = result.schedule.energy(inst);
  return result;
}

}  // namespace dsct
