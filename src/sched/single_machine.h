// Algorithm 1 of the paper: exact fractional scheduling on one machine with
// piecewise-linear accuracy functions.
//
// Greedy water-filling over accuracy segments in non-increasing slope order:
// each segment receives as much processing time as the prefix deadline
// constraints of the task and all later tasks allow. A lazy segment tree
// over the suffix slacks d_i − prefix_i makes each grant O(log n), so the
// whole pass is O(S log n) for S segments.
#pragma once

#include <span>
#include <vector>

#include "sched/types.h"

namespace dsct {

/// One linear segment of a task's accuracy function, as consumed by the
/// single-machine scheduler (the paper's `listSegments` entries).
struct SegmentJob {
  int task = 0;       ///< owning task index
  int position = 0;   ///< segment index within the task's accuracy function
  double slope = 0.0; ///< accuracy per TFLOP
  double flops = 0.0; ///< TFLOP needed to fully process the segment
};

/// Flatten the accuracy functions of `tasks` into segment jobs.
std::vector<SegmentJob> makeSegmentJobs(std::span<const Task> tasks);

/// Sort segment jobs into Algorithm 1's processing order: non-increasing
/// slope, ties broken by (task, position) for determinism.
void sortSegmentJobs(std::vector<SegmentJob>& segments);

/// Algorithm 1. `deadlines` must be non-decreasing; returns per-task
/// processing times t_j (seconds) on a machine of the given speed (TFLOPS),
/// maximising total accuracy under prefix deadline constraints
/// Σ_{i<=j} t_i <= d_j.
std::vector<double> scheduleSingleMachine(std::span<const double> deadlines,
                                          double speed,
                                          std::vector<SegmentJob> segments);

/// Core of Algorithm 1 for callers that keep a pre-sorted segment list
/// (see sortSegmentJobs); skips validation and the per-call sort, so
/// repeated profile evaluations pay only the water-filling pass.
std::vector<double> scheduleSingleMachineSorted(
    std::span<const double> deadlines, double speed,
    std::span<const SegmentJob> sortedSegments);

/// Convenience overload operating directly on an instance's tasks
/// (single machine, ignoring energy).
std::vector<double> scheduleSingleMachine(std::span<const Task> tasks,
                                          double speed);

}  // namespace dsct
