// Lagrangian energy pricing (DESIGN.md §18): how much energy an instance
// "wants" when every Joule costs λ units of accuracy.
//
// The paper's KKT analysis prices the energy budget: at the fractional
// optimum every funded (segment, machine) pair has accuracy-per-Joule
// ψ = slope · E_r at least the budget row's dual price, and every unfunded
// pair at most it. The demand oracle below exploits that structure directly:
// at price λ it funds exactly the accuracy segments whose ψ on the fleet's
// most efficient machine exceeds λ, capped by each task's deadline-window
// capacity and the fleet's horizon energy capacity. The resulting demand
// D(λ) is a non-increasing step function of λ — the monotone curve the shard
// coordinator bisects to split one global budget across cells.
//
// The oracle is deliberately optimistic (it ignores task interleaving):
// feasibility is enforced by the full per-cell solves that run at the
// resulting budgets, and the coordinator rescales the per-cell demands so
// they always sum to at most B.
#pragma once

#include <vector>

#include "sched/types.h"

namespace dsct {

/// The energy (J) `inst` demands at energy price `lambda` (accuracy/J):
/// every accuracy segment with ψ = slope · E* > λ on the most efficient
/// machine E* is funded, task FLOPs capped by the work the whole fleet could
/// deliver inside the task's deadline, the total capped at the fleet's
/// horizon energy capacity. Non-increasing in λ; λ <= 0 funds everything.
double pricedEnergyDemand(const Instance& inst, double lambda);

/// Precomputed demand curve for repeated evaluation (the shard
/// coordinator's price loop evaluates one curve per cell per iteration).
/// demandAt(λ) matches pricedEnergyDemand(inst, λ) exactly.
class PricedDemandCurve {
 public:
  explicit PricedDemandCurve(const Instance& inst);

  /// D(λ), a non-increasing step function; O(log segments) per call.
  double demandAt(double lambda) const;
  /// The largest ψ over all funded segments (0 for empty instances); above
  /// this price the demand is 0.
  double maxPsi() const { return psi_.empty() ? 0.0 : psi_.front(); }
  /// The fleet's horizon energy capacity Σ_r d_max · P_r — demand never
  /// exceeds it.
  double capEnergy() const { return capEnergy_; }
  /// The largest segment ψ that is <= `price` (0 when none): the only values
  /// where D(λ) changes. Bisection snaps its probes here, so the price loop
  /// terminates as soon as a bracket holds no breakpoint instead of halving
  /// floats forever.
  double largestPsiAtMost(double price) const;

 private:
  std::vector<double> psi_;     ///< distinct segment ψ values, descending
  std::vector<double> energy_;  ///< energy_[i]: J demanded when λ < psi_[i]
  double capEnergy_ = 0.0;
};

}  // namespace dsct
