// Lazy segment tree over per-task deadline slacks v_i = d_i − prefix_i with
// two operations, both on suffix ranges [j, n): minimum query and uniform
// add. Granting `c` seconds to task j shrinks every slack at or after j by
// `c`, so Algorithm 1's inner loops become O(log n) instead of O(n).
//
// Shared between Algorithm 1 (single_machine.cpp, which uses the lazy
// suffixAdd path) and RefineProfile's incremental slack engine
// (slack_engine.cpp, which only rebuilds via assign() and queries — min over
// unmodified leaves is exact in floating point, which is what makes the
// engine bit-identical to a scratch recomputation; see DESIGN.md §11).
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace dsct {

class SuffixSlackTree {
 public:
  SuffixSlackTree() = default;
  explicit SuffixSlackTree(std::span<const double> initial) { assign(initial); }

  /// (Re)build from leaf values, reusing storage when the size is unchanged.
  /// All pending adds are cleared: queries afterwards return exact minima
  /// over the given leaves.
  void assign(std::span<const double> initial) {
    n_ = initial.size();
    std::size_t size = 1;
    while (size < std::max<std::size_t>(1, n_)) size <<= 1;
    if (size != size_ || min_.empty()) {
      size_ = size;
      min_.assign(2 * size_, std::numeric_limits<double>::infinity());
      add_.assign(2 * size_, 0.0);
    } else {
      std::fill(min_.begin(), min_.end(),
                std::numeric_limits<double>::infinity());
      std::fill(add_.begin(), add_.end(), 0.0);
    }
    for (std::size_t i = 0; i < n_; ++i) min_[size_ + i] = initial[i];
    for (std::size_t i = size_ - 1; i >= 1; --i) {
      min_[i] = std::min(min_[2 * i], min_[2 * i + 1]);
    }
  }

  /// min_{i >= j} v_i (infinity for j >= n).
  double suffixMin(std::size_t j) const {
    if (j >= n_) return std::numeric_limits<double>::infinity();
    return rangeMin(1, 0, size_, j, n_);
  }

  /// v_i += delta for all i >= j.
  void suffixAdd(std::size_t j, double delta) {
    if (j >= n_) return;
    rangeAdd(1, 0, size_, j, n_, delta);
  }

 private:
  double rangeMin(std::size_t node, std::size_t lo, std::size_t hi,
                  std::size_t ql, std::size_t qr) const {
    if (qr <= lo || hi <= ql) {
      return std::numeric_limits<double>::infinity();
    }
    if (ql <= lo && hi <= qr) return min_[node] + add_[node];
    const std::size_t mid = (lo + hi) / 2;
    return add_[node] + std::min(rangeMin(2 * node, lo, mid, ql, qr),
                                 rangeMin(2 * node + 1, mid, hi, ql, qr));
  }

  void rangeAdd(std::size_t node, std::size_t lo, std::size_t hi,
                std::size_t ql, std::size_t qr, double delta) {
    if (qr <= lo || hi <= ql) return;
    if (ql <= lo && hi <= qr) {
      add_[node] += delta;
      return;
    }
    const std::size_t mid = (lo + hi) / 2;
    rangeAdd(2 * node, lo, mid, ql, qr, delta);
    rangeAdd(2 * node + 1, mid, hi, ql, qr, delta);
    min_[node] = std::min(min_[2 * node] + add_[2 * node],
                          min_[2 * node + 1] + add_[2 * node + 1]);
  }

  std::size_t n_ = 0;
  std::size_t size_ = 0;
  std::vector<double> min_;  ///< subtree minimum, excluding this node's add
  std::vector<double> add_;  ///< pending uniform add for the whole subtree
};

}  // namespace dsct
