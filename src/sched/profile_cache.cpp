#include "sched/profile_cache.h"

#include <bit>

namespace dsct {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

inline void mix(std::uint64_t& h, double v) {
  mix(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t instanceFingerprint(const Instance& inst) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(inst.numTasks()));
  mix(h, static_cast<std::uint64_t>(inst.numMachines()));
  mix(h, inst.energyBudget());
  for (const Machine& machine : inst.machines()) {
    mix(h, machine.speed);
    mix(h, machine.efficiency);
  }
  for (const Task& task : inst.tasks()) {
    mix(h, task.deadline);
    const PiecewiseLinearAccuracy& acc = task.accuracy;
    mix(h, static_cast<std::uint64_t>(acc.numSegments()));
    for (int k = 0; k <= acc.numSegments(); ++k) {
      mix(h, acc.breakpoint(k));
      mix(h, acc.valueAt(k));
    }
  }
  return h;
}

ProfileCache::ProfileCache(std::size_t maxEntries)
    : maxEntries_(std::max<std::size_t>(1, maxEntries)) {}

std::size_t ProfileCache::KeyHash::operator()(const Key& key) const {
  std::uint64_t h = kFnvOffset;
  mix(h, key.fingerprint);
  for (std::uint64_t bits : key.profileBits) mix(h, bits);
  return static_cast<std::size_t>(h);
}

ProfileCache::Key ProfileCache::keyOf(std::uint64_t fingerprint,
                                      const EnergyProfile& profile) {
  Key key;
  key.fingerprint = fingerprint;
  key.profileBits.reserve(profile.size());
  for (double p : profile) {
    key.profileBits.push_back(std::bit_cast<std::uint64_t>(p));
  }
  return key;
}

std::optional<double> ProfileCache::lookup(std::uint64_t fingerprint,
                                           const EnergyProfile& profile) {
  const auto it = entries_.find(keyOf(fingerprint, profile));
  if (it == entries_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  return it->second;
}

void ProfileCache::store(std::uint64_t fingerprint,
                         const EnergyProfile& profile, double value) {
  if (entries_.size() >= maxEntries_) {
    counters_.invalidations += static_cast<long long>(entries_.size());
    entries_.clear();
  }
  entries_.emplace(keyOf(fingerprint, profile), value);
}

}  // namespace dsct
