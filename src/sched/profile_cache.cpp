#include "sched/profile_cache.h"

#include <algorithm>
#include <bit>

namespace dsct {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

inline void mix(std::uint64_t& h, double v) {
  mix(h, std::bit_cast<std::uint64_t>(v));
}

std::size_t roundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t instanceFingerprint(const Instance& inst) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(inst.numTasks()));
  mix(h, static_cast<std::uint64_t>(inst.numMachines()));
  mix(h, inst.energyBudget());
  for (const Machine& machine : inst.machines()) {
    mix(h, machine.speed);
    mix(h, machine.efficiency);
  }
  for (const Task& task : inst.tasks()) {
    mix(h, task.deadline);
    const PiecewiseLinearAccuracy& acc = task.accuracy;
    mix(h, static_cast<std::uint64_t>(acc.numSegments()));
    for (int k = 0; k <= acc.numSegments(); ++k) {
      mix(h, acc.breakpoint(k));
      mix(h, acc.valueAt(k));
    }
  }
  return h;
}

ProfileCache::ProfileCache(std::size_t maxEntries, std::size_t shards)
    : shards_(roundUpPow2(std::max<std::size_t>(1, shards))) {
  shardMask_ = shards_.size() - 1;
  maxPerShard_ = std::max<std::size_t>(1, maxEntries / shards_.size());
}

std::size_t ProfileCache::KeyHash::operator()(const Key& key) const {
  std::uint64_t h = kFnvOffset;
  mix(h, key.fingerprint);
  for (std::uint64_t bits : key.profileBits) mix(h, bits);
  return static_cast<std::size_t>(h);
}

ProfileCache::Key ProfileCache::keyOf(std::uint64_t fingerprint,
                                      const EnergyProfile& profile) {
  Key key;
  key.fingerprint = fingerprint;
  key.profileBits.reserve(profile.size());
  for (double p : profile) {
    key.profileBits.push_back(std::bit_cast<std::uint64_t>(p));
  }
  return key;
}

ProfileCache::Shard& ProfileCache::shardFor(const Key& key) {
  // High bits of the same FNV hash the map buckets on: decorrelated from the
  // bucket index, and all profile coordinates contribute to the choice.
  const std::uint64_t h = static_cast<std::uint64_t>(KeyHash{}(key));
  return shards_[static_cast<std::size_t>(h >> 32) & shardMask_];
}

std::optional<double> ProfileCache::lookup(std::uint64_t fingerprint,
                                           const EnergyProfile& profile) {
  const Key key = keyOf(fingerprint, profile);
  Shard& shard = shardFor(key);
  const bool contended = !shard.mutex.try_lock();
  if (contended) shard.mutex.lock();
  std::lock_guard<std::mutex> lock(shard.mutex, std::adopt_lock);
  if (contended) ++shard.counters.contended;
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.counters.misses;
    return std::nullopt;
  }
  ++shard.counters.hits;
  return it->second;
}

void ProfileCache::store(std::uint64_t fingerprint,
                         const EnergyProfile& profile, double value) {
  Key key = keyOf(fingerprint, profile);
  Shard& shard = shardFor(key);
  const bool contended = !shard.mutex.try_lock();
  if (contended) shard.mutex.lock();
  std::lock_guard<std::mutex> lock(shard.mutex, std::adopt_lock);
  if (contended) ++shard.counters.contended;
  if (shard.entries.size() >= maxPerShard_) {
    shard.counters.invalidations +=
        static_cast<long long>(shard.entries.size());
    shard.entries.clear();
  }
  shard.entries.emplace(std::move(key), value);
}

std::size_t ProfileCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

ProfileCacheCounters ProfileCache::counters() const {
  ProfileCacheCounters total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.counters.hits;
    total.misses += shard.counters.misses;
    total.invalidations += shard.counters.invalidations;
    total.contended += shard.counters.contended;
  }
  return total;
}

std::uint64_t ProfileCache::contentDigest() const {
  // Wrapping sum of per-entry hashes: independent of shard layout and of
  // iteration order, so any two caches with the same entry set agree.
  std::uint64_t digest = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, value] : shard.entries) {
      std::uint64_t h = static_cast<std::uint64_t>(KeyHash{}(key));
      mix(h, value);
      digest += h;
    }
  }
  return digest;
}

}  // namespace dsct
