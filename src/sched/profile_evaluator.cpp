#include "sched/profile_evaluator.h"

#include <algorithm>
#include <cmath>

#include "sched/naive_solution.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace dsct {

ProfileEvaluator::ProfileEvaluator(const Instance& inst, ProfileCache* shared)
    : inst_(inst), shared_(shared) {
  sortedSegments_ = makeSegmentJobs(inst.tasks());
  sortSegmentJobs(sortedSegments_);
  // Key resolution well below any meaningful profile difference (the line
  // searches stop at 1e-12 of their interval) but coarse enough that a
  // re-evaluation of the same point hits the cache despite rounding noise.
  quantum_ = std::max(inst.maxDeadline(), 1e-9) * 1e-13;
  if (shared_ != nullptr) fingerprint_ = instanceFingerprint(inst);
}

std::size_t ProfileEvaluator::CacheKeyHash::operator()(
    const CacheKey& key) const {
  // FNV-1a over the quantised coordinates.
  std::uint64_t h = 1469598103934665603ull;
  for (std::int64_t v : key) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

ProfileEvaluator::CacheKey ProfileEvaluator::keyOf(
    const EnergyProfile& profile) const {
  CacheKey key(profile.size());
  for (std::size_t r = 0; r < profile.size(); ++r) {
    key[r] = static_cast<std::int64_t>(std::llround(profile[r] / quantum_));
  }
  return key;
}

std::vector<double> ProfileEvaluator::workFor(
    const EnergyProfile& profile) const {
  const std::vector<double> temp = temporaryDeadlines(inst_, profile);
  return scheduleSingleMachineSorted(temp, 1.0, sortedSegments_);
}

double ProfileEvaluator::evaluate(const EnergyProfile& profile) const {
  DSCT_DCHECK(static_cast<int>(profile.size()) == inst_.numMachines());
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<double> work = workFor(profile);
  double total = 0.0;
  for (int j = 0; j < inst_.numTasks(); ++j) {
    total += inst_.task(j).accuracy.value(work[static_cast<std::size_t>(j)]);
  }
  return total;
}

double ProfileEvaluator::cached(const EnergyProfile& profile) {
  CacheKey key = keyOf(profile);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cacheHits_;
    return it->second;
  }
  // The shared cache is consulted only after the local memo (so attaching
  // one cannot change which quantised key serves a lookup) and keys on the
  // exact profile bits, so a hit equals a fresh evaluation bit for bit.
  if (shared_ != nullptr) {
    if (const std::optional<double> hit =
            shared_->lookup(fingerprint_, profile)) {
      cache_.emplace(std::move(key), *hit);
      return *hit;
    }
  }
  const double value = evaluate(profile);
  if (shared_ != nullptr) shared_->store(fingerprint_, profile, value);
  cache_.emplace(std::move(key), value);
  return value;
}

std::vector<double> ProfileEvaluator::evaluateBatch(
    std::span<const EnergyProfile> profiles, ThreadPool* pool,
    bool parallelCachedEval) {
  std::vector<double> out(profiles.size(), 0.0);
  // Local-memo pass on the coordinating thread, in index order. Misses stay
  // pending; their memo inserts are deferred to the commit phase (see there).
  std::vector<std::size_t> pending;
  std::vector<CacheKey> pendingKeys;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    CacheKey key = keyOf(profiles[i]);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++cacheHits_;
      out[i] = it->second;
      continue;
    }
    pending.push_back(i);
    pendingKeys.push_back(std::move(key));
  }

  // Resolve the pending indices into per-index staging slots. Neither branch
  // writes a cache here: workers only *read* the sharded shared cache and
  // compute, so the interleaving of threads cannot influence what any index
  // resolves to.
  struct Staged {
    double value = 0.0;
    bool fromShared = false;
  };
  std::vector<Staged> staged;
  const bool pooled = pool != nullptr && pending.size() > 1;
  if (pooled && parallelCachedEval && shared_ != nullptr) {
    // Parallel cached mode: shared-cache lookups happen on the workers.
    staged = pool->parallelMap(pending.size(), [&](std::size_t k) -> Staged {
      const EnergyProfile& profile = profiles[pending[k]];
      if (const std::optional<double> hit =
              shared_->lookup(fingerprint_, profile)) {
        return {*hit, true};
      }
      return {evaluate(profile), false};
    });
  } else {
    // Serial shared lookups on the coordinating thread; the remaining pure
    // evaluations may still fan across the pool.
    staged.resize(pending.size());
    std::vector<std::size_t> toCompute;
    for (std::size_t k = 0; k < pending.size(); ++k) {
      if (shared_ != nullptr) {
        if (const std::optional<double> hit =
                shared_->lookup(fingerprint_, profiles[pending[k]])) {
          staged[k] = {*hit, true};
          continue;
        }
      }
      toCompute.push_back(k);
    }
    std::vector<double> values;
    if (pooled && toCompute.size() > 1) {
      values = pool->parallelMap(toCompute.size(), [&](std::size_t idx) {
        return evaluate(profiles[pending[toCompute[idx]]]);
      });
    } else {
      values.reserve(toCompute.size());
      for (std::size_t idx = 0; idx < toCompute.size(); ++idx) {
        values.push_back(evaluate(profiles[pending[toCompute[idx]]]));
      }
    }
    for (std::size_t idx = 0; idx < toCompute.size(); ++idx) {
      staged[toCompute[idx]] = {values[idx], false};
    }
  }

  // Commit phase: single-threaded, in index order — the only place either
  // cache is written, so cache contents are identical across all modes.
  // Shared-cache hits join the same deferred memoisation as computed misses:
  // memoising them inline would let an intra-batch quantised-key collision
  // serve a shared value where the cache-less run computes its own, breaking
  // the "attaching a cache never changes results" contract.
  for (std::size_t k = 0; k < pending.size(); ++k) {
    out[pending[k]] = staged[k].value;
    if (!staged[k].fromShared && shared_ != nullptr) {
      shared_->store(fingerprint_, profiles[pending[k]], staged[k].value);
    }
    cache_.emplace(std::move(pendingKeys[k]), staged[k].value);
  }
  return out;
}

FractionalSchedule ProfileEvaluator::schedule(
    const EnergyProfile& profile) const {
  DSCT_DCHECK(static_cast<int>(profile.size()) == inst_.numMachines());
  scheduleSolves_.fetch_add(1, std::memory_order_relaxed);
  if (inst_.numTasks() == 0) {
    return FractionalSchedule(0, inst_.numMachines());
  }
  return distributeWork(inst_, profile, workFor(profile));
}

EvaluatorCounters ProfileEvaluator::counters() const {
  EvaluatorCounters c;
  c.evaluations = evaluations_.load(std::memory_order_relaxed);
  c.scheduleSolves = scheduleSolves_.load(std::memory_order_relaxed);
  c.cacheHits = cacheHits_;
  return c;
}

}  // namespace dsct
