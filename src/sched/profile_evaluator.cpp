#include "sched/profile_evaluator.h"

#include <algorithm>
#include <cmath>

#include "sched/naive_solution.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace dsct {

ProfileEvaluator::ProfileEvaluator(const Instance& inst, ProfileCache* shared)
    : inst_(inst), shared_(shared) {
  sortedSegments_ = makeSegmentJobs(inst.tasks());
  sortSegmentJobs(sortedSegments_);
  // Key resolution well below any meaningful profile difference (the line
  // searches stop at 1e-12 of their interval) but coarse enough that a
  // re-evaluation of the same point hits the cache despite rounding noise.
  quantum_ = std::max(inst.maxDeadline(), 1e-9) * 1e-13;
  if (shared_ != nullptr) fingerprint_ = instanceFingerprint(inst);
}

std::size_t ProfileEvaluator::CacheKeyHash::operator()(
    const CacheKey& key) const {
  // FNV-1a over the quantised coordinates.
  std::uint64_t h = 1469598103934665603ull;
  for (std::int64_t v : key) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

ProfileEvaluator::CacheKey ProfileEvaluator::keyOf(
    const EnergyProfile& profile) const {
  CacheKey key(profile.size());
  for (std::size_t r = 0; r < profile.size(); ++r) {
    key[r] = static_cast<std::int64_t>(std::llround(profile[r] / quantum_));
  }
  return key;
}

std::vector<double> ProfileEvaluator::workFor(
    const EnergyProfile& profile) const {
  const std::vector<double> temp = temporaryDeadlines(inst_, profile);
  return scheduleSingleMachineSorted(temp, 1.0, sortedSegments_);
}

double ProfileEvaluator::evaluate(const EnergyProfile& profile) const {
  DSCT_DCHECK(static_cast<int>(profile.size()) == inst_.numMachines());
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<double> work = workFor(profile);
  double total = 0.0;
  for (int j = 0; j < inst_.numTasks(); ++j) {
    total += inst_.task(j).accuracy.value(work[static_cast<std::size_t>(j)]);
  }
  return total;
}

double ProfileEvaluator::cached(const EnergyProfile& profile) {
  CacheKey key = keyOf(profile);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cacheHits_;
    return it->second;
  }
  // The shared cache is consulted only after the local memo (so attaching
  // one cannot change which quantised key serves a lookup) and keys on the
  // exact profile bits, so a hit equals a fresh evaluation bit for bit.
  if (shared_ != nullptr) {
    if (const std::optional<double> hit =
            shared_->lookup(fingerprint_, profile)) {
      cache_.emplace(std::move(key), *hit);
      return *hit;
    }
  }
  const double value = evaluate(profile);
  if (shared_ != nullptr) shared_->store(fingerprint_, profile, value);
  cache_.emplace(std::move(key), value);
  return value;
}

std::vector<double> ProfileEvaluator::batch(
    std::span<const EnergyProfile> profiles, ThreadPool* pool) {
  std::vector<double> out(profiles.size(), 0.0);
  // Local-memo misses, in index order. Shared-cache hits resolve their value
  // immediately but join the same deferred memoisation pass as computed
  // misses: memoising them inline would let an intra-batch quantised-key
  // collision serve a shared value where the cache-less run computes its
  // own, breaking the "attaching a cache never changes results" contract.
  std::vector<std::size_t> pending;
  std::vector<CacheKey> pendingKeys;
  std::vector<char> resolved;  ///< 1 = out[i] already holds a shared hit
  std::vector<std::size_t> toCompute;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    CacheKey key = keyOf(profiles[i]);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++cacheHits_;
      out[i] = it->second;
      continue;
    }
    bool fromShared = false;
    if (shared_ != nullptr) {
      if (const std::optional<double> hit =
              shared_->lookup(fingerprint_, profiles[i])) {
        out[i] = *hit;
        fromShared = true;
      }
    }
    if (!fromShared) toCompute.push_back(i);
    pending.push_back(i);
    pendingKeys.push_back(std::move(key));
    resolved.push_back(fromShared ? 1 : 0);
  }
  std::vector<double> values;
  if (pool != nullptr && toCompute.size() > 1) {
    values = pool->parallelMap(toCompute.size(), [&](std::size_t k) {
      return evaluate(profiles[toCompute[k]]);
    });
  } else {
    values.reserve(toCompute.size());
    for (std::size_t k = 0; k < toCompute.size(); ++k) {
      values.push_back(evaluate(profiles[toCompute[k]]));
    }
  }
  std::size_t computed = 0;
  for (std::size_t k = 0; k < pending.size(); ++k) {
    if (!resolved[k]) {
      out[pending[k]] = values[computed];
      if (shared_ != nullptr) {
        shared_->store(fingerprint_, profiles[pending[k]], values[computed]);
      }
      ++computed;
    }
    cache_.emplace(std::move(pendingKeys[k]), out[pending[k]]);
  }
  return out;
}

FractionalSchedule ProfileEvaluator::schedule(
    const EnergyProfile& profile) const {
  DSCT_DCHECK(static_cast<int>(profile.size()) == inst_.numMachines());
  scheduleSolves_.fetch_add(1, std::memory_order_relaxed);
  if (inst_.numTasks() == 0) {
    return FractionalSchedule(0, inst_.numMachines());
  }
  return distributeWork(inst_, profile, workFor(profile));
}

EvaluatorCounters ProfileEvaluator::counters() const {
  EvaluatorCounters c;
  c.evaluations = evaluations_.load(std::memory_order_relaxed);
  c.scheduleSolves = scheduleSolves_.load(std::memory_order_relaxed);
  c.cacheHits = cacheHits_;
  return c;
}

}  // namespace dsct
