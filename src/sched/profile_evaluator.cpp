#include "sched/profile_evaluator.h"

#include <algorithm>
#include <cmath>

#include "sched/naive_solution.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace dsct {

ProfileEvaluator::ProfileEvaluator(const Instance& inst) : inst_(inst) {
  sortedSegments_ = makeSegmentJobs(inst.tasks());
  sortSegmentJobs(sortedSegments_);
  // Key resolution well below any meaningful profile difference (the line
  // searches stop at 1e-12 of their interval) but coarse enough that a
  // re-evaluation of the same point hits the cache despite rounding noise.
  quantum_ = std::max(inst.maxDeadline(), 1e-9) * 1e-13;
}

std::size_t ProfileEvaluator::CacheKeyHash::operator()(
    const CacheKey& key) const {
  // FNV-1a over the quantised coordinates.
  std::uint64_t h = 1469598103934665603ull;
  for (std::int64_t v : key) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

ProfileEvaluator::CacheKey ProfileEvaluator::keyOf(
    const EnergyProfile& profile) const {
  CacheKey key(profile.size());
  for (std::size_t r = 0; r < profile.size(); ++r) {
    key[r] = static_cast<std::int64_t>(std::llround(profile[r] / quantum_));
  }
  return key;
}

std::vector<double> ProfileEvaluator::workFor(
    const EnergyProfile& profile) const {
  const std::vector<double> temp = temporaryDeadlines(inst_, profile);
  return scheduleSingleMachineSorted(temp, 1.0, sortedSegments_);
}

double ProfileEvaluator::evaluate(const EnergyProfile& profile) const {
  DSCT_DCHECK(static_cast<int>(profile.size()) == inst_.numMachines());
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<double> work = workFor(profile);
  double total = 0.0;
  for (int j = 0; j < inst_.numTasks(); ++j) {
    total += inst_.task(j).accuracy.value(work[static_cast<std::size_t>(j)]);
  }
  return total;
}

double ProfileEvaluator::cached(const EnergyProfile& profile) {
  CacheKey key = keyOf(profile);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cacheHits_;
    return it->second;
  }
  const double value = evaluate(profile);
  cache_.emplace(std::move(key), value);
  return value;
}

std::vector<double> ProfileEvaluator::batch(
    std::span<const EnergyProfile> profiles, ThreadPool* pool) {
  std::vector<double> out(profiles.size(), 0.0);
  std::vector<std::size_t> misses;
  std::vector<CacheKey> missKeys;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    CacheKey key = keyOf(profiles[i]);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++cacheHits_;
      out[i] = it->second;
    } else {
      misses.push_back(i);
      missKeys.push_back(std::move(key));
    }
  }
  std::vector<double> values;
  if (pool != nullptr && misses.size() > 1) {
    values = pool->parallelMap(misses.size(), [&](std::size_t k) {
      return evaluate(profiles[misses[k]]);
    });
  } else {
    values.reserve(misses.size());
    for (std::size_t k = 0; k < misses.size(); ++k) {
      values.push_back(evaluate(profiles[misses[k]]));
    }
  }
  for (std::size_t k = 0; k < misses.size(); ++k) {
    out[misses[k]] = values[k];
    cache_.emplace(std::move(missKeys[k]), values[k]);
  }
  return out;
}

FractionalSchedule ProfileEvaluator::schedule(
    const EnergyProfile& profile) const {
  DSCT_DCHECK(static_cast<int>(profile.size()) == inst_.numMachines());
  scheduleSolves_.fetch_add(1, std::memory_order_relaxed);
  if (inst_.numTasks() == 0) {
    return FractionalSchedule(0, inst_.numMachines());
  }
  return distributeWork(inst_, profile, workFor(profile));
}

EvaluatorCounters ProfileEvaluator::counters() const {
  EvaluatorCounters c;
  c.evaluations = evaluations_.load(std::memory_order_relaxed);
  c.scheduleSolves = scheduleSolves_.load(std::memory_order_relaxed);
  c.cacheHits = cacheHits_;
  return c;
}

}  // namespace dsct
