// KKT-style optimality conditions for DSCT-EA-FR solutions (Section 3.2).
//
// The conditions are phrased as "no improving local move exists":
//  * on one machine, shifting time from an earlier to a later task (always
//    prefix-feasible) must not increase accuracy;
//  * across machines, moving energy from any allocation to any task with
//    deadline slack and remaining FLOP headroom must not increase accuracy;
//  * leftover budget implies no task can still absorb useful energy.
// These are exactly the paper's marginal-gain / energy-marginal-gain
// conditions and are used as property tests for DSCT-EA-FR-OPT.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.h"
#include "sched/types.h"

namespace dsct {

struct KktReport {
  bool satisfied = true;
  std::vector<std::string> failures;
  /// Largest ψ improvement an admissible move could achieve (0 if optimal).
  double worstImprovement = 0.0;

  void addFailure(std::string message, double improvement);
  std::string summary() const;
};

struct KktOptions {
  double timeTol = 1e-7;    ///< slack threshold (seconds)
  double flopsTol = 1e-7;   ///< FLOP headroom threshold (TFLOP)
  double energyTol = 1e-6;  ///< leftover-budget threshold (J)
  double gainTol = 1e-6;    ///< improvement threshold (accuracy per J or TFLOP)
};

KktReport checkKkt(const Instance& inst, const FractionalSchedule& schedule,
                   const KktOptions& options = {});

}  // namespace dsct
