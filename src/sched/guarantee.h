// Additive performance guarantee of DSCT-EA-APPROX (paper Eq. 14):
//   G = m · (a_max − a_min) · (1 + ln(θ_max / θ_min))
// where θ_max is the steepest and θ_min the shallowest positive marginal
// gain across all tasks' accuracy segments. OPT − G <= SOL <= OPT.
#pragma once

#include "sched/types.h"

namespace dsct {

struct GuaranteeBreakdown {
  double thetaMin = 0.0;      ///< min positive segment slope
  double thetaMax = 0.0;      ///< max segment slope
  double accuracyRange = 0.0; ///< max a_max − min a_min across tasks
  double g = 0.0;             ///< the additive guarantee
};

GuaranteeBreakdown approximationGuarantee(const Instance& inst);

}  // namespace dsct
