#include "sched/kkt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

namespace dsct {

void KktReport::addFailure(std::string message, double improvement) {
  satisfied = false;
  failures.push_back(std::move(message));
  worstImprovement = std::max(worstImprovement, improvement);
}

std::string KktReport::summary() const {
  if (satisfied) return "KKT satisfied";
  std::ostringstream os;
  os << failures.size() << " KKT failure(s), worst improvement "
     << worstImprovement << ':';
  for (const std::string& f : failures) os << "\n  - " << f;
  return os.str();
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

KktReport checkKkt(const Instance& inst, const FractionalSchedule& schedule,
                   const KktOptions& options) {
  KktReport report;
  const int n = inst.numTasks();
  const int m = inst.numMachines();
  if (n == 0) return report;

  // Marginal gains/losses at the current allocation, snapped by flopsTol so
  // allocations numerically at a breakpoint read the correct one-sided slope.
  std::vector<double> flops(static_cast<std::size_t>(n));
  std::vector<double> gain(static_cast<std::size_t>(n));
  std::vector<double> loss(static_cast<std::size_t>(n));
  std::vector<bool> headroom(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const auto& acc = inst.task(j).accuracy;
    const double f = schedule.flops(inst, j);
    flops[static_cast<std::size_t>(j)] = f;
    gain[static_cast<std::size_t>(j)] = acc.marginalGain(f + options.flopsTol);
    loss[static_cast<std::size_t>(j)] = acc.marginalLoss(f - options.flopsTol);
    headroom[static_cast<std::size_t>(j)] = f < acc.fmax() - options.flopsTol;
  }

  // Deadline slack per (task, machine): min_{i>=j}(d_i − prefix_i(r)).
  std::vector<std::vector<double>> slack(
      static_cast<std::size_t>(m),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (int r = 0; r < m; ++r) {
    double prefix = 0.0;
    std::vector<double> room(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      prefix += schedule.at(j, r);
      room[static_cast<std::size_t>(j)] = inst.task(j).deadline - prefix;
    }
    double suffixMin = kInf;
    for (int j = n; j-- > 0;) {
      suffixMin = std::min(suffixMin, room[static_cast<std::size_t>(j)]);
      slack[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)] =
          suffixMin;
    }
  }

  // --- Condition 1: forward time shifts on one machine ---
  // Moving time from task j to a later task j' on the same machine is always
  // prefix-feasible; optimality requires gain(j') <= loss(j).
  for (int r = 0; r < m; ++r) {
    double minLossSoFar = kInf;
    int minLossTask = -1;
    for (int j = 0; j < n; ++j) {
      if (headroom[static_cast<std::size_t>(j)] &&
          gain[static_cast<std::size_t>(j)] >
              minLossSoFar + options.gainTol) {
        std::ostringstream os;
        os << "machine " << r << ": shifting time from task " << minLossTask
           << " (loss " << minLossSoFar << ") to task " << j << " (gain "
           << gain[static_cast<std::size_t>(j)] << ") improves accuracy";
        report.addFailure(os.str(), gain[static_cast<std::size_t>(j)] -
                                        minLossSoFar);
      }
      if (schedule.at(j, r) > options.timeTol &&
          loss[static_cast<std::size_t>(j)] < minLossSoFar) {
        minLossSoFar = loss[static_cast<std::size_t>(j)];
        minLossTask = j;
      }
    }
  }

  // --- Condition 2: energy moves between allocations ---
  // Donor: any (j, r) with t_jr > 0; energy marginal loss = loss(j) · E_r.
  // Recipient: any (j', r') with FLOP headroom and deadline slack; energy
  // marginal gain = gain(j') · E_r'. A move is a no-op only when donor and
  // recipient are the same (task, machine) pair, so we track the two best
  // candidates on each side.
  struct Candidate {
    double psi;
    int task;
    int machine;
  };
  Candidate donor1{kInf, -1, -1}, donor2{kInf, -1, -1};
  Candidate recip1{-kInf, -1, -1}, recip2{-kInf, -1, -1};
  for (int r = 0; r < m; ++r) {
    const double e = inst.machine(r).efficiency;
    for (int j = 0; j < n; ++j) {
      if (schedule.at(j, r) > options.timeTol) {
        const double psi = loss[static_cast<std::size_t>(j)] * e;
        if (psi < donor1.psi) {
          donor2 = donor1;
          donor1 = {psi, j, r};
        } else if (psi < donor2.psi) {
          donor2 = {psi, j, r};
        }
      }
      if (headroom[static_cast<std::size_t>(j)] &&
          slack[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)] >
              options.timeTol) {
        const double psi = gain[static_cast<std::size_t>(j)] * e;
        if (psi > recip1.psi) {
          recip2 = recip1;
          recip1 = {psi, j, r};
        } else if (psi > recip2.psi) {
          recip2 = {psi, j, r};
        }
      }
    }
  }
  const auto checkMove = [&](const Candidate& donor, const Candidate& recip) {
    if (donor.task < 0 || recip.task < 0) return;
    if (donor.task == recip.task && donor.machine == recip.machine) return;
    if (recip.psi > donor.psi + options.gainTol) {
      std::ostringstream os;
      os << "energy move from task " << donor.task << "@machine "
         << donor.machine << " (psi " << donor.psi << ") to task "
         << recip.task << "@machine " << recip.machine << " (psi "
         << recip.psi << ") improves accuracy";
      report.addFailure(os.str(), recip.psi - donor.psi);
    }
  };
  if (donor1.task == recip1.task && donor1.machine == recip1.machine) {
    checkMove(donor1, recip2);
    checkMove(donor2, recip1);
  } else {
    checkMove(donor1, recip1);
  }

  // --- Condition 3: leftover budget must be unusable ---
  const double leftover = inst.energyBudget() - schedule.energy(inst);
  if (leftover > options.energyTol && recip1.task >= 0 &&
      recip1.psi > options.gainTol) {
    std::ostringstream os;
    os << "budget leftover " << leftover << " J while task " << recip1.task
       << "@machine " << recip1.machine << " could absorb energy at psi "
       << recip1.psi;
    report.addFailure(os.str(), recip1.psi);
  }

  return report;
}

}  // namespace dsct
