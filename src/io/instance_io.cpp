#include "io/instance_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"

namespace dsct::io {

namespace {

/// Tokenised, comment-stripped line reader that tracks line numbers for
/// error messages.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next non-empty line's tokens; empty vector at EOF.
  std::vector<std::string> next() {
    std::string line;
    while (std::getline(is_, line)) {
      ++lineNumber_;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream ss(line);
      std::vector<std::string> tokens;
      std::string token;
      while (ss >> token) tokens.push_back(token);
      if (!tokens.empty()) return tokens;
    }
    return {};
  }

  int lineNumber() const { return lineNumber_; }

 private:
  std::istream& is_;
  int lineNumber_ = 0;
};

double parseDouble(const std::string& token, int line) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    DSCT_CHECK_MSG(false, "line " << line << ": expected number, got '"
                                  << token << "'");
  }
  DSCT_CHECK_MSG(consumed == token.size(),
                 "line " << line << ": trailing characters in '" << token
                         << "'");
  return value;
}

int parseInt(const std::string& token, int line) {
  const double value = parseDouble(token, line);
  const int asInt = static_cast<int>(value);
  DSCT_CHECK_MSG(static_cast<double>(asInt) == value,
                 "line " << line << ": expected integer, got '" << token
                         << "'");
  return asInt;
}

/// Names are written as single tokens; spaces are escaped as '\s'.
std::string escapeName(const std::string& name) {
  std::string out;
  for (char ch : name) {
    if (ch == ' ') {
      out += "\\s";
    } else {
      out += ch;
    }
  }
  return out.empty() ? std::string("_") : out;
}

std::string unescapeName(const std::string& token) {
  std::string out;
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] == '\\' && i + 1 < token.size() && token[i + 1] == 's') {
      out += ' ';
      ++i;
    } else {
      out += token[i];
    }
  }
  return out == "_" ? std::string() : out;
}

}  // namespace

void writeInstance(std::ostream& os, const Instance& inst) {
  os << "dsct-instance v1\n";
  os << std::setprecision(17);
  os << "budget " << inst.energyBudget() << '\n';
  for (const Machine& m : inst.machines()) {
    os << "machine " << escapeName(m.name) << ' ' << m.speed << ' '
       << m.efficiency << '\n';
  }
  for (const Task& t : inst.tasks()) {
    const PiecewiseLinearAccuracy& acc = t.accuracy;
    os << "task " << escapeName(t.name) << ' ' << t.deadline << ' '
       << (acc.numSegments() + 1);
    for (int k = 0; k <= acc.numSegments(); ++k) {
      os << ' ' << acc.breakpoint(k) << ' ' << acc.valueAt(k);
    }
    os << '\n';
  }
}

void writeInstanceFile(const std::string& path, const Instance& inst) {
  std::ofstream out(path);
  DSCT_CHECK_MSG(out, "cannot open " << path << " for writing");
  writeInstance(out, inst);
}

Instance readInstance(std::istream& is) {
  LineReader reader(is);
  auto header = reader.next();
  DSCT_CHECK_MSG(header.size() == 2 && header[0] == "dsct-instance" &&
                     header[1] == "v1",
                 "line " << reader.lineNumber()
                         << ": expected 'dsct-instance v1' header");
  double budget = 0.0;
  bool sawBudget = false;
  std::vector<Machine> machines;
  std::vector<Task> tasks;
  for (auto tokens = reader.next(); !tokens.empty(); tokens = reader.next()) {
    const int line = reader.lineNumber();
    if (tokens[0] == "budget") {
      DSCT_CHECK_MSG(tokens.size() == 2, "line " << line << ": budget <J>");
      budget = parseDouble(tokens[1], line);
      sawBudget = true;
    } else if (tokens[0] == "machine") {
      DSCT_CHECK_MSG(tokens.size() == 4,
                     "line " << line << ": machine <name> <speed> <eff>");
      machines.push_back(Machine{parseDouble(tokens[2], line),
                                 parseDouble(tokens[3], line),
                                 unescapeName(tokens[1])});
    } else if (tokens[0] == "task") {
      DSCT_CHECK_MSG(tokens.size() >= 4,
                     "line " << line
                             << ": task <name> <deadline> <numPoints> ...");
      const double deadline = parseDouble(tokens[2], line);
      const int points = parseInt(tokens[3], line);
      DSCT_CHECK_MSG(points >= 2, "line " << line << ": need >= 2 points");
      DSCT_CHECK_MSG(tokens.size() == 4 + 2 * static_cast<std::size_t>(points),
                     "line " << line << ": expected " << 2 * points
                             << " coordinates");
      std::vector<double> flops;
      std::vector<double> values;
      for (int k = 0; k < points; ++k) {
        flops.push_back(
            parseDouble(tokens[4 + 2 * static_cast<std::size_t>(k)], line));
        values.push_back(
            parseDouble(tokens[5 + 2 * static_cast<std::size_t>(k)], line));
      }
      tasks.push_back(Task{
          deadline,
          PiecewiseLinearAccuracy::fromPoints(std::move(flops),
                                              std::move(values)),
          unescapeName(tokens[1])});
    } else {
      DSCT_CHECK_MSG(false,
                     "line " << line << ": unknown directive '" << tokens[0]
                             << "'");
    }
  }
  DSCT_CHECK_MSG(sawBudget, "missing 'budget' line");
  return Instance(std::move(tasks), std::move(machines), budget);
}

Instance readInstanceFile(const std::string& path) {
  std::ifstream in(path);
  DSCT_CHECK_MSG(in, "cannot open " << path);
  return readInstance(in);
}

void writeSchedule(std::ostream& os, const IntegralSchedule& schedule) {
  os << "dsct-schedule v1\n";
  os << std::setprecision(17);
  for (int j = 0; j < schedule.numTasks(); ++j) {
    os << "assign " << j << ' ' << schedule.machineOf(j) << ' '
       << schedule.duration(j) << '\n';
  }
}

void writeScheduleFile(const std::string& path,
                       const IntegralSchedule& schedule) {
  std::ofstream out(path);
  DSCT_CHECK_MSG(out, "cannot open " << path << " for writing");
  writeSchedule(out, schedule);
}

IntegralSchedule readSchedule(std::istream& is, const Instance& inst) {
  LineReader reader(is);
  auto header = reader.next();
  DSCT_CHECK_MSG(header.size() == 2 && header[0] == "dsct-schedule" &&
                     header[1] == "v1",
                 "line " << reader.lineNumber()
                         << ": expected 'dsct-schedule v1' header");
  std::vector<int> machineOf(static_cast<std::size_t>(inst.numTasks()), -1);
  std::vector<double> duration(static_cast<std::size_t>(inst.numTasks()), 0.0);
  for (auto tokens = reader.next(); !tokens.empty(); tokens = reader.next()) {
    const int line = reader.lineNumber();
    DSCT_CHECK_MSG(tokens.size() == 4 && tokens[0] == "assign",
                   "line " << line
                           << ": assign <task> <machine> <duration>");
    const int task = parseInt(tokens[1], line);
    DSCT_CHECK_MSG(task >= 0 && task < inst.numTasks(),
                   "line " << line << ": task index out of range");
    const int machine = parseInt(tokens[2], line);
    DSCT_CHECK_MSG(machine >= -1 && machine < inst.numMachines(),
                   "line " << line << ": machine index out of range");
    machineOf[static_cast<std::size_t>(task)] = machine;
    duration[static_cast<std::size_t>(task)] = parseDouble(tokens[3], line);
  }
  return IntegralSchedule::build(inst, std::move(machineOf),
                                 std::move(duration));
}

IntegralSchedule readScheduleFile(const std::string& path,
                                  const Instance& inst) {
  std::ifstream in(path);
  DSCT_CHECK_MSG(in, "cannot open " << path);
  return readSchedule(in, inst);
}

}  // namespace dsct::io
