// Plain-text serialisation of instances and schedules.
//
// Format (line-oriented, '#' comments, whitespace-separated):
//   dsct-instance v1
//   budget <J>
//   machine <name> <speed_tflops> <efficiency_tflop_per_joule>
//   task <name> <deadline_s> <numPoints> <f0> <a0> <f1> <a1> ...
//
//   dsct-schedule v1
//   assign <taskIndex> <machineIndex> <duration_s>   # one line per task;
//                                                    # machineIndex -1 drops
//
// Task accuracy points are the piecewise-linear breakpoints (f in TFLOP,
// a in [0,1], f0 == 0). Instances read back sorted by deadline, exactly as
// the Instance constructor guarantees.
#pragma once

#include <iosfwd>
#include <string>

#include "sched/schedule.h"
#include "sched/types.h"

namespace dsct::io {

void writeInstance(std::ostream& os, const Instance& inst);
void writeInstanceFile(const std::string& path, const Instance& inst);

/// Throws CheckError with a line-number message on malformed input.
Instance readInstance(std::istream& is);
Instance readInstanceFile(const std::string& path);

void writeSchedule(std::ostream& os, const IntegralSchedule& schedule);
void writeScheduleFile(const std::string& path,
                       const IntegralSchedule& schedule);

/// Reads assignments and rebuilds the timeline against `inst`.
IntegralSchedule readSchedule(std::istream& is, const Instance& inst);
IntegralSchedule readScheduleFile(const std::string& path,
                                  const Instance& inst);

}  // namespace dsct::io
