// Process-wide solver registry: resolve any algorithm by name.
//
// The registry replaces the four hand-rolled dispatch layers that existed
// before it (the serving loop's Policy switch, experiments/scenarios.cpp's
// per-algorithm blocks, per-bench dispatch, and dsct_cli string matching).
// Adding a policy is now one registration: it immediately becomes available
// to `dsct_cli solve --algo`, `dsct_cli serve --policy`, the serving
// fallback chain, the experiment harness, and the benches.
//
// Builtin registrations (name — aliases — display name):
//   approx     — dsct-ea-approx     — DSCT-EA-Approx (Algorithm 5)
//   fr-opt     — fropt              — DSCT-EA-FR-OPT (Algorithm 4)
//   edf        — edf-nocompress     — EDF-NoCompression
//   edf3       — edf-levels         — EDF-3CompressionLevels
//   levels-opt — edf3-opt           — EDF-LevelsOpt (knapsack-optimal)
//   mip-warm   — mip                — branch-and-bound warm-started by approx
//   mip-cold   —                    — cold branch-and-bound (Fig. 4 baseline)
//   fr-lp      — frlp               — fractional relaxation via the simplex
//
// Lookups are thread-safe; registration normally happens before threads
// fan out but is guarded by the same mutex.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/solver_api.h"

namespace dsct {

class SolverRegistry {
 public:
  /// The process-wide registry, builtins pre-registered.
  static SolverRegistry& instance();

  /// Register a solver under solver->name() plus `aliases`. Throws on a
  /// duplicate name or alias.
  void add(std::unique_ptr<Solver> solver,
           std::vector<std::string> aliases = {});

  /// Lookup by name or alias; nullptr when unknown.
  const Solver* find(const std::string& nameOrAlias) const;
  /// Lookup by name or alias; throws CheckError naming the known solvers.
  const Solver& resolve(const std::string& nameOrAlias) const;

  /// Registered solvers in registration order.
  std::vector<const Solver*> solvers() const;
  /// Primary names in registration order.
  std::vector<std::string> names() const;
  /// Aliases registered for `name` (empty when none / unknown).
  std::vector<std::string> aliasesOf(const std::string& name) const;

  SolverRegistry(const SolverRegistry&) = delete;
  SolverRegistry& operator=(const SolverRegistry&) = delete;

 private:
  SolverRegistry();  // registers the builtins

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Solver>> solvers_;          // registration order
  std::unordered_map<std::string, const Solver*> byName_; // names + aliases
  std::unordered_map<std::string, std::vector<std::string>> aliases_;
};

/// Convenience for lambda-based registration: wraps `fn` in a Solver.
std::unique_ptr<Solver> makeSolver(
    std::string name, std::string displayName, SolverCapabilities capabilities,
    std::function<SolveOutcome(const Instance&, const SolveContext&)> fn);

}  // namespace dsct
