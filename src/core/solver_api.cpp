#include "core/solver_api.h"

#include "util/timer.h"

namespace dsct {

const char* toString(OutcomeStatus status) {
  switch (status) {
    case OutcomeStatus::kOk: return "ok";
    case OutcomeStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

SolveOutcome Solver::solve(const Instance& inst,
                           const SolveContext& context) const {
  Stopwatch watch;
  SolveOutcome outcome = doSolve(inst, context);
  outcome.solver = name();
  outcome.wallSeconds = watch.elapsedSeconds();
  return outcome;
}

void fillFromIntegral(const Instance& inst, SolveOutcome& outcome) {
  const IntegralSchedule& schedule = *outcome.schedule;
  outcome.totalAccuracy = schedule.totalAccuracy(inst);
  outcome.energy = schedule.energy(inst);
  outcome.scheduledTasks = schedule.numScheduled();
  outcome.droppedTasks = inst.numTasks() - schedule.numScheduled();
  outcome.machineLoads = schedule.machineLoads();
}

void fillFromFractional(const Instance& inst, SolveOutcome& outcome) {
  const FractionalSchedule& schedule = *outcome.fractional;
  outcome.totalAccuracy = schedule.totalAccuracy(inst);
  outcome.energy = schedule.energy(inst);
  outcome.machineLoads = schedule.machineLoads();
  int scheduled = 0;
  for (int j = 0; j < inst.numTasks(); ++j) {
    if (schedule.flops(inst, j) > 0.0) ++scheduled;
  }
  outcome.scheduledTasks = scheduled;
  outcome.droppedTasks = inst.numTasks() - scheduled;
}

}  // namespace dsct
