#include "core/solver_registry.h"

#include <sstream>
#include <utility>

#include "baselines/edf_levels.h"
#include "baselines/edf_nocompress.h"
#include "baselines/levels_opt.h"
#include "mipmodel/dsct_lp.h"
#include "mipmodel/dsct_mip.h"
#include "sched/approx.h"
#include "sched/energy_price.h"
#include "sched/fr_opt.h"
#include "util/check.h"

namespace dsct {

namespace {

class FunctionSolver final : public Solver {
 public:
  FunctionSolver(
      std::string name, std::string displayName,
      SolverCapabilities capabilities,
      std::function<SolveOutcome(const Instance&, const SolveContext&)> fn)
      : name_(std::move(name)),
        displayName_(std::move(displayName)),
        capabilities_(capabilities),
        fn_(std::move(fn)) {}

  const std::string& name() const override { return name_; }
  const std::string& displayName() const override { return displayName_; }
  SolverCapabilities capabilities() const override { return capabilities_; }

 protected:
  SolveOutcome doSolve(const Instance& inst,
                       const SolveContext& context) const override {
    return fn_(inst, context);
  }

 private:
  std::string name_;
  std::string displayName_;
  SolverCapabilities capabilities_;
  std::function<SolveOutcome(const Instance&, const SolveContext&)> fn_;
};

SolveOutcome fromBaseline(const Instance& inst, BaselineResult res) {
  SolveOutcome outcome;
  if (res.cancelled) outcome.status = OutcomeStatus::kCancelled;
  outcome.schedule = std::move(res.schedule);
  fillFromIntegral(inst, outcome);
  return outcome;
}

/// Copy the context's FR-OPT option slice with the context-level token
/// injected (an explicitly supplied option token wins) and the availability
/// layer's per-machine energy caps attached when present.
FrOptOptions frOptWithCancel(const SolveContext& context) {
  FrOptOptions options = context.frOpt;
  if (options.cancel == nullptr) options.cancel = context.cancel;
  if (options.machineEnergyCaps == nullptr &&
      context.availability != nullptr &&
      !context.availability->machineEnergyCaps.empty()) {
    options.machineEnergyCaps = &context.availability->machineEnergyCaps;
  }
  return options;
}

/// SolveContext::energyPrice for price-guided solvers: under a price λ >= 0
/// the instance's budget is capped at the λ-priced energy demand (the shard
/// coordinator's outer loop, DESIGN.md §18). Returns nullopt — solve the
/// instance unchanged — when no price is set or the demand already exceeds
/// the budget; the λ < 0 default is therefore bit-identical to a build
/// without pricing.
std::optional<Instance> pricedInstance(const Instance& inst,
                                       const SolveContext& context) {
  if (context.energyPrice < 0.0) return std::nullopt;
  const double cap = pricedEnergyDemand(inst, context.energyPrice);
  if (cap >= inst.energyBudget()) return std::nullopt;
  return Instance(inst.tasks(), inst.machines(), cap);
}

SolveOutcome solveMipOutcome(const Instance& inst, const SolveContext& context,
                             bool warmStart) {
  bool cancelled = false;
  std::optional<ApproxResult> warm;
  if (warmStart) {
    warm = solveApprox(inst, frOptWithCancel(context));
    cancelled = warm->fractional.cancelled;
  }
  lp::MipOptions mipOptions = context.mip;
  if (mipOptions.cancel == nullptr) mipOptions.cancel = context.cancel;
  // The LP warm-start slot rides with the warm-started MIP only; mip-cold is
  // the deliberately cold reference point and ignores it.
  LpWarmStartSlot* slot = warmStart ? context.lpWarm : nullptr;
  const MipSolveSummary summary =
      solveDsctMip(inst, mipOptions, warm ? &warm->schedule : nullptr,
                   slot != nullptr ? &slot->basis : nullptr,
                   slot != nullptr ? slot->structure : 0);
  SolveOutcome outcome;
  if (cancelled || summary.result.cancelled) {
    outcome.status = OutcomeStatus::kCancelled;
  }
  outcome.lpCounters = summary.result.lpCounters;
  if (slot != nullptr && !summary.result.rootBasis.empty()) {
    slot->structure = summary.lpStructure;
    slot->basis = summary.result.rootBasis;
  }
  outcome.upperBound = summary.result.bestBound;
  if (summary.schedule.has_value()) {
    outcome.schedule = *summary.schedule;
    fillFromIntegral(inst, outcome);
  }
  return outcome;
}

}  // namespace

std::unique_ptr<Solver> makeSolver(
    std::string name, std::string displayName, SolverCapabilities capabilities,
    std::function<SolveOutcome(const Instance&, const SolveContext&)> fn) {
  return std::make_unique<FunctionSolver>(std::move(name),
                                          std::move(displayName), capabilities,
                                          std::move(fn));
}

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry registry;
  return registry;
}

void SolverRegistry::add(std::unique_ptr<Solver> solver,
                         std::vector<std::string> aliases) {
  DSCT_CHECK(solver != nullptr);
  const std::lock_guard<std::mutex> lock(mutex_);
  const Solver* raw = solver.get();
  DSCT_CHECK_MSG(byName_.emplace(raw->name(), raw).second,
                 "duplicate solver name: " + raw->name());
  for (const std::string& alias : aliases) {
    DSCT_CHECK_MSG(byName_.emplace(alias, raw).second,
                   "duplicate solver alias: " + alias);
  }
  aliases_.emplace(raw->name(), std::move(aliases));
  solvers_.push_back(std::move(solver));
}

const Solver* SolverRegistry::find(const std::string& nameOrAlias) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = byName_.find(nameOrAlias);
  return it == byName_.end() ? nullptr : it->second;
}

const Solver& SolverRegistry::resolve(const std::string& nameOrAlias) const {
  const Solver* solver = find(nameOrAlias);
  if (solver == nullptr) {
    std::ostringstream msg;
    msg << "unknown solver '" << nameOrAlias << "' (registered:";
    for (const std::string& name : names()) msg << ' ' << name;
    msg << ')';
    DSCT_CHECK_MSG(false, msg.str());
  }
  return *solver;
}

std::vector<const Solver*> SolverRegistry::solvers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Solver*> out;
  out.reserve(solvers_.size());
  for (const auto& solver : solvers_) out.push_back(solver.get());
  return out;
}

std::vector<std::string> SolverRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& solver : solvers_) out.push_back(solver->name());
  return out;
}

std::vector<std::string> SolverRegistry::aliasesOf(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = aliases_.find(name);
  return it == aliases_.end() ? std::vector<std::string>{} : it->second;
}

SolverRegistry::SolverRegistry() {
  SolverCapabilities approxCaps;
  approxCaps.integral = true;
  approxCaps.fractional = true;
  approxCaps.usesProfileCache = true;
  approxCaps.usesThreadPool = true;
  approxCaps.availabilityAware = true;  // honours per-machine energy caps
  approxCaps.priceGuided = true;
  add(makeSolver(
          "approx", "DSCT-EA-Approx", approxCaps,
          [](const Instance& inst, const SolveContext& context) {
            const std::optional<Instance> priced =
                pricedInstance(inst, context);
            ApproxResult res = solveApprox(priced.has_value() ? *priced : inst,
                                           frOptWithCancel(context));
            SolveOutcome outcome;
            if (res.fractional.cancelled) {
              outcome.status = OutcomeStatus::kCancelled;
            }
            outcome.counters = res.fractional.counters;
            outcome.fractional = std::move(res.fractional.schedule);
            outcome.schedule = std::move(res.schedule);
            fillFromIntegral(inst, outcome);
            outcome.upperBound = res.upperBound;
            outcome.guaranteeG = res.guarantee.g;
            return outcome;
          }),
      {"dsct-ea-approx"});

  SolverCapabilities frOptCaps;
  frOptCaps.integral = false;
  frOptCaps.fractional = true;
  frOptCaps.usesProfileCache = true;
  frOptCaps.usesThreadPool = true;
  frOptCaps.availabilityAware = true;  // honours per-machine energy caps
  frOptCaps.priceGuided = true;
  add(makeSolver(
          "fr-opt", "DSCT-EA-FR-OPT", frOptCaps,
          [](const Instance& inst, const SolveContext& context) {
            const std::optional<Instance> priced =
                pricedInstance(inst, context);
            FrOptResult res = solveFrOpt(priced.has_value() ? *priced : inst,
                                         frOptWithCancel(context));
            SolveOutcome outcome;
            if (res.cancelled) outcome.status = OutcomeStatus::kCancelled;
            outcome.counters = res.counters;
            outcome.fractional = std::move(res.schedule);
            fillFromFractional(inst, outcome);
            // A fractional optimum is its own upper bound; the realised
            // loads are the refined profile (Fig. 6 plots them).
            outcome.upperBound = res.totalAccuracy;
            outcome.machineLoads = std::move(res.refinedProfile);
            return outcome;
          }),
      {"fropt"});

  add(makeSolver("edf", "EDF-NoCompression", SolverCapabilities{},
                 [](const Instance& inst, const SolveContext& context) {
                   return fromBaseline(
                       inst, solveEdfNoCompression(inst, context.cancel));
                 }),
      {"edf-nocompress"});

  SolverCapabilities edf3Caps;
  edf3Caps.availabilityAware = true;  // honours per-machine energy caps
  add(makeSolver("edf3", "EDF-3CompressionLevels", edf3Caps,
                 [](const Instance& inst, const SolveContext& context) {
                   EdfLevelsOptions options;
                   options.cancel = context.cancel;
                   if (context.availability != nullptr &&
                       !context.availability->machineEnergyCaps.empty()) {
                     options.machineEnergyCaps =
                         &context.availability->machineEnergyCaps;
                   }
                   return fromBaseline(inst, solveEdfLevels(inst, options));
                 }),
      {"edf-levels"});

  SolverCapabilities levelsOptCaps;
  levelsOptCaps.availabilityAware = true;  // honours per-machine energy caps
  add(makeSolver("levels-opt", "EDF-LevelsOpt", levelsOptCaps,
                 [](const Instance& inst, const SolveContext& context) {
                   EdfLevelsOptOptions options;
                   options.cancel = context.cancel;
                   if (context.availability != nullptr &&
                       !context.availability->machineEnergyCaps.empty()) {
                     options.machineEnergyCaps =
                         &context.availability->machineEnergyCaps;
                   }
                   return fromBaseline(inst, solveEdfLevelsOpt(inst, options));
                 }),
      {"edf3-opt"});

  SolverCapabilities mipCaps;
  mipCaps.integral = true;
  mipCaps.exact = true;
  mipCaps.deterministic = false;  // the incumbent depends on the time limit
  SolverCapabilities mipWarmCaps = mipCaps;
  mipWarmCaps.usesProfileCache = true;  // via the approx warm start
  mipWarmCaps.usesThreadPool = true;
  mipWarmCaps.usesLpWarmStart = true;  // root relaxation basis carry
  add(makeSolver("mip-warm", "DSCT-EA-Opt (MIP, warm-started)", mipWarmCaps,
                 [](const Instance& inst, const SolveContext& context) {
                   return solveMipOutcome(inst, context, /*warmStart=*/true);
                 }),
      {"mip"});
  add(makeSolver("mip-cold", "DSCT-EA-Opt (MIP, cold)", mipCaps,
                 [](const Instance& inst, const SolveContext& context) {
                   return solveMipOutcome(inst, context, /*warmStart=*/false);
                 }));

  SolverCapabilities frLpCaps;
  frLpCaps.integral = false;
  frLpCaps.fractional = true;
  frLpCaps.exact = true;
  frLpCaps.usesLpWarmStart = true;
  add(makeSolver(
          "fr-lp", "DSCT-EA-FR (LP via simplex)", frLpCaps,
          [](const Instance& inst, const SolveContext& context) {
            const DsctLp lpModel = buildFractionalLp(inst);
            lp::LpOptions lpOptions = context.lp;
            if (lpOptions.cancel == nullptr) lpOptions.cancel = context.cancel;
            SolveOutcome outcome;
            LpWarmStartSlot* slot = context.lpWarm;
            std::uint64_t structure = 0;
            if (slot != nullptr) {
              structure = lp::structuralFingerprint(lpModel.model);
              if (!slot->basis.empty()) {
                if (slot->structure == structure) {
                  lpOptions.warmBasis = &slot->basis;
                } else {
                  // Structure drifted since the snapshot: solve cold.
                  ++outcome.lpCounters.warmStartsAttempted;
                  ++outcome.lpCounters.warmStartsRejected;
                }
              }
            }
            const lp::LpResult res = lp::solveLp(lpModel.model, lpOptions);
            outcome.lpCounters.add(res.counters);
            if (res.cancelled) outcome.status = OutcomeStatus::kCancelled;
            if (res.status == lp::SolveStatus::kOptimal) {
              if (slot != nullptr) {
                slot->structure = structure;
                slot->basis = res.basis;
              }
              outcome.fractional = extractFractional(inst, lpModel, res.x);
              fillFromFractional(inst, outcome);
              outcome.upperBound = res.objective;
            }
            return outcome;
          }),
      {"frlp"});
}

}  // namespace dsct
