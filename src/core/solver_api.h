// Unified solver API: one interface from the algorithms to the serving
// loop, the experiment harness, the benches, and the CLI.
//
// Every algorithm in the repo (Algorithm 5 APPROX, Algorithm 4 FR-OPT, the
// EDF baselines, the knapsack-optimal level baseline, and the MIP/LP paths)
// is exposed as a `Solver`: `name()` is the registry key callers dispatch
// on, `capabilities()` says what the solver produces and which shared
// resources it honours, and `solve()` returns a `SolveOutcome` that
// normalizes the previously incompatible result structs (ApproxResult,
// FrOptResult, BaselineResult, MipSolveSummary, LpResult).
//
// A `SolveContext` carries everything callers used to re-plumb ad hoc: the
// FR-OPT options (refine configuration, worker pool, the cross-solve
// ProfileCache the serving loop shares across epochs) and the LP/MIP time
// limits. Passing the same context to every solve is what makes an
// experiment run exercise the exact configuration the serving loop does.
//
// Dispatching through this API is numerically invisible: a registry solve
// calls the same underlying function with the same options, so outcomes are
// bit-identical to direct `solveApprox`/`solveFrOpt`/... calls
// (tests/core_solver_registry_test.cpp pins this).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/energy_profile.h"
#include "sched/fr_opt.h"
#include "sched/schedule.h"
#include "sched/types.h"
#include "solver/mip.h"
#include "solver/simplex.h"
#include "util/cancel.h"

namespace dsct {

/// How a solve ended.
enum class OutcomeStatus {
  kOk,         ///< ran to its natural completion
  kCancelled,  ///< stopped early at a cooperative poll point (deadline or
               ///< explicit cancel); any returned schedule is partial work
};

const char* toString(OutcomeStatus status);

/// What a solver produces and which SolveContext resources it honours.
struct SolverCapabilities {
  /// Produces an integral (one machine per task) schedule — required for
  /// execution on the simulated cluster and for the serving loop.
  bool integral = true;
  /// Produces a fractional schedule (the DSCT-EA-FR relaxation).
  bool fractional = false;
  /// Honours SolveContext::frOpt.sharedCache (cross-solve ProfileCache).
  bool usesProfileCache = false;
  /// Honours SolveContext::frOpt.pool / parallelCachedEval.
  bool usesThreadPool = false;
  /// Exact method (MIP / LP) rather than an approximation or heuristic.
  bool exact = false;
  /// Repeat solves of the same instance under the same context are
  /// bit-identical. False for wall-clock-limited searches (the MIP paths),
  /// whose incumbent depends on where the limit cuts the tree.
  bool deterministic = true;
  /// Honours SolveContext::lpWarm: the solver re-enters its LP from the
  /// basis saved by a structurally identical earlier solve (cross-epoch
  /// serving) and stores its final basis back into the slot. Warm starts
  /// change only the pivot path, never the reported optimum, so outcomes
  /// stay bit-identical with the slot absent (tests/solver_warm_start_test).
  bool usesLpWarmStart = false;
  /// Honours SolveContext::availability: the solver discounts machines by
  /// their per-machine energy caps (battery charge) instead of treating the
  /// global budget as the only energy constraint. Solvers without this flag
  /// still run under availability — the serving loop cuts over-assigned
  /// machines at execution time — but cannot avoid the exhaustion spill.
  bool availabilityAware = false;
  /// Honours SolveContext::energyPrice: under a price λ >= 0 the solver caps
  /// its energy appetite at the λ-priced demand — the energy whose marginal
  /// accuracy-per-Joule ψ exceeds λ (DESIGN.md §18). The shard coordinator
  /// uses this to make per-cell solves consistent with the outer price loop;
  /// a negative price (the default) leaves the solve bit-identical to one
  /// without this field.
  bool priceGuided = false;
};

/// Per-epoch availability hints for capability-gated solvers (DESIGN.md
/// §15): machineEnergyCaps[r] is the stored energy (J) of the instance's
/// machine r this epoch; empty means no per-machine limits.
struct AvailabilityHints {
  std::vector<double> machineEnergyCaps;
};

/// Cross-solve LP warm-start slot: the final basis of the last optimal LP a
/// solver ran, tagged with the structural fingerprint of the model it came
/// from. Owned by the caller (the serving loop keeps one per run); a solver
/// reuses the basis only when the fingerprint matches the model it just
/// built, so bound/RHS drift reuses the basis and any structural change
/// falls back to a cold start. Not synchronised — must not be shared by
/// concurrent solves (the serving loop has at most one solve in flight).
struct LpWarmStartSlot {
  std::uint64_t structure = 0;
  lp::LpBasis basis;
};

/// Shared per-call configuration, threaded through every dispatch layer
/// instead of each one re-plumbing options ad hoc.
struct SolveContext {
  /// Refine options, worker pool, cross-solve ProfileCache, parallel cached
  /// evaluation — consumed by the approx / fr-opt solvers.
  FrOptOptions frOpt;
  /// Branch-and-bound options (time limit, node limit) for the MIP solvers.
  lp::MipOptions mip;
  /// Simplex options (time limit) for the fr-lp solver.
  lp::LpOptions lp;
  /// Cooperative cancellation/deadline token, polled by every registered
  /// solver at its iteration boundaries. Null means "never cancel". The
  /// token must outlive the solve call (the serving loop keeps it alive
  /// until the background future is drained).
  const CancelToken* cancel = nullptr;
  /// Per-machine energy caps for availability-aware solvers; null means
  /// none. Only solvers whose capabilities declare `availabilityAware`
  /// read this. Must outlive the solve call (same rule as `cancel`).
  const AvailabilityHints* availability = nullptr;
  /// Cross-solve LP warm-start slot; null disables warm starts. Only
  /// solvers whose capabilities declare `usesLpWarmStart` read/write it.
  /// Must outlive the solve call and must not be shared by concurrent
  /// solves (same rules as `cancel`).
  LpWarmStartSlot* lpWarm = nullptr;
  /// Lagrangian energy price λ (accuracy per Joule) from the shard
  /// coordinator's outer loop (DESIGN.md §18). Negative (the default) means
  /// unpriced; only solvers whose capabilities declare `priceGuided` read
  /// it. A priced solve caps its effective budget at
  /// min(B, pricedEnergyDemand(inst, λ)) — energy whose marginal accuracy
  /// rate falls below λ is left unspent for other cells.
  double energyPrice = -1.0;
};

/// Normalized result of any solver: schedule(s), objective, energy, wall
/// time, and the FR-OPT work/cache/slack telemetry (zeroed when the solver
/// has none).
struct SolveOutcome {
  std::string solver;  ///< registry name of the producing solver

  /// Integral schedule (absent for fractional-only solvers, and for exact
  /// solvers that proved nothing within their limits).
  std::optional<IntegralSchedule> schedule;
  /// Fractional schedule (the relaxation used for rounding, or the solver's
  /// primary output for fractional-only solvers).
  std::optional<FractionalSchedule> fractional;

  double totalAccuracy = 0.0;  ///< SOL of the returned schedule
  double energy = 0.0;         ///< Joules consumed by the returned schedule
  /// Proven bound on the optimum: the fractional OPT for approx, the
  /// branch-and-bound bound for the MIPs; 0 when the solver proves none.
  double upperBound = 0.0;
  /// The additive approximation bound G (approx only; 0 otherwise).
  double guaranteeG = 0.0;
  int scheduledTasks = 0;  ///< tasks receiving > 0 work
  int droppedTasks = 0;
  /// Realised per-machine loads (seconds): the refined profile for
  /// fractional solvers, the timeline loads for integral ones.
  EnergyProfile machineLoads;
  double wallSeconds = 0.0;  ///< stamped by Solver::solve

  /// FR-OPT work counters incl. cross-solve cache and slack-engine traffic;
  /// all zero for solvers without that telemetry.
  FrOptCounters counters;

  /// LP work/warm-start telemetry summed over every LP the solve ran
  /// (node LPs for the MIP paths); all zero for solvers without an LP.
  lp::LpCounters lpCounters;

  /// How the solve ended. kCancelled only when the solver actually
  /// returned early from a poll point — a solve that completes just before
  /// its deadline stays kOk even if the token expires afterwards.
  OutcomeStatus status = OutcomeStatus::kOk;

  /// Did the solver produce any schedule at all?
  bool solved() const { return schedule.has_value() || fractional.has_value(); }
  /// Was the solve stopped early by its CancelToken?
  bool cancelled() const { return status == OutcomeStatus::kCancelled; }
};

/// The unified solver interface. Implementations are stateless (all mutable
/// state lives in the SolveContext resources), so one registered instance
/// may be solved from many threads concurrently.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry key (stable, lower-case, e.g. "approx", "edf3", "mip-warm").
  virtual const std::string& name() const = 0;
  /// Paper-style label for tables and logs (e.g. "DSCT-EA-Approx").
  virtual const std::string& displayName() const = 0;
  virtual SolverCapabilities capabilities() const = 0;

  /// Solve `inst` under `context`; stamps SolveOutcome::solver/wallSeconds.
  SolveOutcome solve(const Instance& inst, const SolveContext& context) const;

 protected:
  virtual SolveOutcome doSolve(const Instance& inst,
                               const SolveContext& context) const = 0;
};

// --- Outcome builders shared by the builtin solvers (exposed so external
// --- registrations can normalize their results the same way) --------------

/// Fill schedule-derived fields (accuracy, energy, counts, loads) from an
/// integral schedule.
void fillFromIntegral(const Instance& inst, SolveOutcome& outcome);

/// Fill schedule-derived fields from the outcome's fractional schedule.
void fillFromFractional(const Instance& inst, SolveOutcome& outcome);

}  // namespace dsct
