// Fitting concave piecewise-linear accuracy functions to smooth models.
//
// The paper constructs each task's accuracy function by "performing a linear
// regression with 5 segments over an exponential accuracy function"
// (Section 6). Two fitters are provided:
//   * fitInterpolate — samples the model at breakpoints (chords of a concave
//     function are automatically concave), then rescales affinely so the fit
//     hits amin at 0 and amax at fmax exactly;
//   * fitLeastSquares — continuous piecewise-linear least squares with fixed
//     breakpoints (hat-function basis), followed by a pool-adjacent-violators
//     projection of the slopes onto the non-increasing cone (concavity).
#pragma once

#include <functional>
#include <vector>

#include "accuracy/exponential.h"
#include "accuracy/piecewise.h"

namespace dsct {

enum class BreakpointSpacing {
  kUniform,    ///< equally spaced in f
  kGeometric,  ///< denser near 0, where the exponential curve bends
};

/// Breakpoint grid 0 = f0 < ... < fK = fmax.
std::vector<double> makeBreakpoints(double fmax, int segments,
                                    BreakpointSpacing spacing);

/// Chord interpolation of `model` on the given breakpoints, affinely rescaled
/// to pass through (0, amin) and (fmax, amax).
PiecewiseLinearAccuracy fitInterpolate(const ExponentialAccuracyModel& model,
                                       std::vector<double> breakpoints);

/// Continuous piecewise-linear least squares over `samplesPerSegment` dense
/// samples of `fn` per segment, projected to concavity. fn must be defined on
/// [0, breakpoints.back()].
PiecewiseLinearAccuracy fitLeastSquares(
    const std::function<double(double)>& fn, std::vector<double> breakpoints,
    int samplesPerSegment = 64);

/// The paper's task construction: 5 geometric segments fitted on an
/// exponential model of efficiency theta, covering all but `eps` of the
/// accuracy range. fmax is where the fit reaches amax.
PiecewiseLinearAccuracy makePaperAccuracy(double amin, double amax,
                                          double theta, int segments = 5,
                                          double eps = 0.01);

/// Non-increasing isotonic regression (pool adjacent violators) with weights;
/// exposed for testing.
std::vector<double> isotonicNonIncreasing(const std::vector<double>& ys,
                                          const std::vector<double>& weights);

}  // namespace dsct
