#include "accuracy/exponential.h"

#include <cmath>

#include "util/check.h"

namespace dsct {

ExponentialAccuracyModel::ExponentialAccuracyModel(double amin, double amax,
                                                   double theta)
    : amin_(amin), amax_(amax), theta_(theta) {
  DSCT_CHECK_MSG(amax > amin, "amax must exceed amin");
  DSCT_CHECK_MSG(amin >= 0.0 && amax <= 1.0, "accuracies must lie in [0,1]");
  DSCT_CHECK_MSG(theta > 0.0, "task efficiency must be positive");
  lambda_ = theta_ / (amax_ - amin_);
}

double ExponentialAccuracyModel::value(double f) const {
  if (f <= 0.0) return amin_;
  return amax_ - (amax_ - amin_) * std::exp(-lambda_ * f);
}

double ExponentialAccuracyModel::derivative(double f) const {
  if (f < 0.0) f = 0.0;
  return theta_ * std::exp(-lambda_ * f);
}

double ExponentialAccuracyModel::flopsForCoverage(double eps) const {
  DSCT_CHECK_MSG(eps > 0.0 && eps < 1.0, "coverage eps must be in (0,1)");
  return std::log(1.0 / eps) / lambda_;
}

}  // namespace dsct
