#include "accuracy/fit.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dsct {

namespace {

/// Solve the dense symmetric system A x = b by Gaussian elimination with
/// partial pivoting. A is row-major n×n. Small n (breakpoint count), so a
/// dense direct solve is appropriate.
std::vector<double> solveDense(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  DSCT_CHECK(a.size() == n * n);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    DSCT_CHECK_MSG(std::fabs(a[pivot * n + col]) > 1e-12,
                   "singular normal equations in least-squares fit");
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[pivot * n + k], a[col * n + k]);
      }
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a[i * n + k] * x[k];
    x[i] = acc / a[i * n + i];
  }
  return x;
}

/// Rebuild a concave PWL function from fitted breakpoint values: slopes are
/// projected to the non-increasing, non-negative cone and values re-anchored
/// at v0.
PiecewiseLinearAccuracy rebuildConcave(const std::vector<double>& breakpoints,
                                       const std::vector<double>& values) {
  const std::size_t segments = breakpoints.size() - 1;
  std::vector<double> slopes(segments);
  std::vector<double> weights(segments);
  for (std::size_t k = 0; k < segments; ++k) {
    const double df = breakpoints[k + 1] - breakpoints[k];
    slopes[k] = (values[k + 1] - values[k]) / df;
    weights[k] = df;
  }
  std::vector<double> projected = isotonicNonIncreasing(slopes, weights);
  for (double& s : projected) s = std::max(0.0, s);
  std::vector<double> out(values.size());
  out[0] = std::clamp(values[0], 0.0, 1.0);
  for (std::size_t k = 0; k < segments; ++k) {
    out[k + 1] = out[k] + projected[k] * (breakpoints[k + 1] - breakpoints[k]);
  }
  // Clamp into [0,1] while preserving monotonicity/concavity: accuracy values
  // should already lie in range; numerical excess is shaved off the top by
  // uniform rescale of the gains.
  if (out.back() > 1.0) {
    const double scale = (1.0 - out.front()) / (out.back() - out.front());
    for (std::size_t k = 1; k < out.size(); ++k) {
      out[k] = out.front() + (out[k] - out.front()) * scale;
    }
  }
  return PiecewiseLinearAccuracy::fromPoints(breakpoints, out);
}

}  // namespace

std::vector<double> makeBreakpoints(double fmax, int segments,
                                    BreakpointSpacing spacing) {
  DSCT_CHECK(fmax > 0.0);
  DSCT_CHECK(segments >= 1);
  std::vector<double> bp(static_cast<std::size_t>(segments) + 1);
  bp[0] = 0.0;
  const auto segCount = static_cast<double>(segments);
  if (spacing == BreakpointSpacing::kUniform) {
    for (int k = 1; k <= segments; ++k) {
      bp[static_cast<std::size_t>(k)] = fmax * static_cast<double>(k) / segCount;
    }
  } else {
    // Geometric: segment lengths grow by a fixed ratio so early segments
    // (where a concave curve bends fastest) are short. Ratio 2 doubles each
    // segment length; lengths L, 2L, 4L, ... summing to fmax.
    constexpr double kRatio = 2.0;
    const double total = (std::pow(kRatio, segCount) - 1.0) / (kRatio - 1.0);
    double f = 0.0;
    double len = fmax / total;
    for (int k = 1; k <= segments; ++k) {
      f += len;
      bp[static_cast<std::size_t>(k)] = f;
      len *= kRatio;
    }
    bp.back() = fmax;  // kill accumulated round-off
  }
  return bp;
}

PiecewiseLinearAccuracy fitInterpolate(const ExponentialAccuracyModel& model,
                                       std::vector<double> breakpoints) {
  DSCT_CHECK(breakpoints.size() >= 2);
  std::vector<double> values(breakpoints.size());
  for (std::size_t k = 0; k < breakpoints.size(); ++k) {
    values[k] = model.value(breakpoints[k]);
  }
  // Affine rescale so the fit spans exactly [amin, amax]; an affine map of a
  // concave function stays concave.
  const double lo = values.front();
  const double hi = values.back();
  DSCT_CHECK(hi > lo);
  const double scale = (model.amax() - model.amin()) / (hi - lo);
  for (double& v : values) {
    v = model.amin() + (v - lo) * scale;
  }
  return PiecewiseLinearAccuracy::fromPoints(std::move(breakpoints),
                                             std::move(values));
}

PiecewiseLinearAccuracy fitLeastSquares(
    const std::function<double(double)>& fn, std::vector<double> breakpoints,
    int samplesPerSegment) {
  DSCT_CHECK(breakpoints.size() >= 2);
  DSCT_CHECK(samplesPerSegment >= 2);
  const std::size_t nv = breakpoints.size();
  std::vector<double> ata(nv * nv, 0.0);
  std::vector<double> atb(nv, 0.0);
  // Hat-function basis: on segment k, a sample at x contributes to values
  // v_k and v_{k+1} with weights (1-u) and u, u = (x-f_k)/(f_{k+1}-f_k).
  for (std::size_t k = 0; k + 1 < nv; ++k) {
    const double f0 = breakpoints[k];
    const double f1 = breakpoints[k + 1];
    for (int s = 0; s < samplesPerSegment; ++s) {
      const double u = (static_cast<double>(s) + 0.5) /
                       static_cast<double>(samplesPerSegment);
      const double x = f0 + u * (f1 - f0);
      const double y = fn(x);
      const double w0 = 1.0 - u;
      const double w1 = u;
      ata[k * nv + k] += w0 * w0;
      ata[k * nv + (k + 1)] += w0 * w1;
      ata[(k + 1) * nv + k] += w0 * w1;
      ata[(k + 1) * nv + (k + 1)] += w1 * w1;
      atb[k] += w0 * y;
      atb[k + 1] += w1 * y;
    }
  }
  const std::vector<double> values = solveDense(std::move(ata), std::move(atb));
  return rebuildConcave(breakpoints, values);
}

PiecewiseLinearAccuracy makePaperAccuracy(double amin, double amax,
                                          double theta, int segments,
                                          double eps) {
  const ExponentialAccuracyModel model(amin, amax, theta);
  const double fmax = model.flopsForCoverage(eps);
  auto bp = makeBreakpoints(fmax, segments, BreakpointSpacing::kGeometric);
  return fitInterpolate(model, std::move(bp));
}

std::vector<double> isotonicNonIncreasing(const std::vector<double>& ys,
                                          const std::vector<double>& weights) {
  DSCT_CHECK(ys.size() == weights.size());
  // PAV on the negated sequence solves the non-increasing case via the
  // classic non-decreasing algorithm; we implement non-increasing directly:
  // merge adjacent blocks whenever a later block's mean exceeds an earlier
  // block's mean.
  struct Block {
    double sum;     // weighted sum
    double weight;  // total weight
    std::size_t count;
    double mean() const { return sum / weight; }
  };
  std::vector<Block> blocks;
  blocks.reserve(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    DSCT_CHECK(weights[i] > 0.0);
    blocks.push_back({ys[i] * weights[i], weights[i], 1});
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].mean() < blocks.back().mean()) {
      Block merged{
          blocks[blocks.size() - 2].sum + blocks.back().sum,
          blocks[blocks.size() - 2].weight + blocks.back().weight,
          blocks[blocks.size() - 2].count + blocks.back().count,
      };
      blocks.pop_back();
      blocks.back() = merged;
    }
  }
  std::vector<double> out;
  out.reserve(ys.size());
  for (const Block& b : blocks) {
    for (std::size_t i = 0; i < b.count; ++i) out.push_back(b.mean());
  }
  return out;
}

}  // namespace dsct
