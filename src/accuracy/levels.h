// Discrete compression levels for the EDF-3CompressionLevels baseline.
//
// The paper's baseline picks among a small set of model sizes, e.g. the three
// levels reaching 27%, 55% and 82% top-1 accuracy. Given a task's continuous
// accuracy function, this module derives the (flops, accuracy) pairs for a
// list of target accuracies.
#pragma once

#include <vector>

#include "accuracy/piecewise.h"

namespace dsct {

struct CompressionLevel {
  double flops = 0.0;     ///< TFLOP required to run at this level
  double accuracy = 0.0;  ///< accuracy achieved
};

/// Levels sorted by increasing flops. Targets above the task's amax are
/// clamped to amax; duplicates after clamping are removed.
std::vector<CompressionLevel> levelsForTargets(
    const PiecewiseLinearAccuracy& accuracy,
    const std::vector<double>& accuracyTargets);

/// The paper's default three levels (0.27, 0.55, 0.82).
std::vector<CompressionLevel> paperThreeLevels(
    const PiecewiseLinearAccuracy& accuracy);

}  // namespace dsct
