#include "accuracy/levels.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dsct {

std::vector<CompressionLevel> levelsForTargets(
    const PiecewiseLinearAccuracy& accuracy,
    const std::vector<double>& accuracyTargets) {
  std::vector<CompressionLevel> levels;
  levels.reserve(accuracyTargets.size());
  for (double target : accuracyTargets) {
    const double clamped = std::clamp(target, accuracy.amin(), accuracy.amax());
    const double flops = accuracy.inverse(clamped);
    levels.push_back({flops, accuracy.value(flops)});
  }
  std::sort(levels.begin(), levels.end(),
            [](const CompressionLevel& a, const CompressionLevel& b) {
              return a.flops < b.flops;
            });
  levels.erase(std::unique(levels.begin(), levels.end(),
                           [](const CompressionLevel& a,
                              const CompressionLevel& b) {
                             return std::fabs(a.flops - b.flops) < 1e-12;
                           }),
               levels.end());
  return levels;
}

std::vector<CompressionLevel> paperThreeLevels(
    const PiecewiseLinearAccuracy& accuracy) {
  return levelsForTargets(accuracy, {0.27, 0.55, 0.82});
}

}  // namespace dsct
