// Exponential accuracy model a(f) = amax − (amax − amin)·exp(−λ f).
//
// This is the analytic stand-in for the measured Once-For-All accuracy/FLOPs
// curves (paper Fig. 2 and [5]): accuracy saturates exponentially in the
// compute budget. The parameter θ = a'(0) is the paper's "task efficiency";
// λ = θ / (amax − amin).
#pragma once

namespace dsct {

class ExponentialAccuracyModel {
 public:
  /// theta is the initial slope a'(0) in accuracy per TFLOP.
  ExponentialAccuracyModel(double amin, double amax, double theta);

  double amin() const { return amin_; }
  double amax() const { return amax_; }
  double theta() const { return theta_; }
  double lambda() const { return lambda_; }

  double value(double f) const;

  /// Derivative a'(f).
  double derivative(double f) const;

  /// FLOPs needed so the remaining gap to amax is eps·(amax − amin);
  /// i.e. value(f) = amax − eps·(amax − amin).
  double flopsForCoverage(double eps) const;

 private:
  double amin_;
  double amax_;
  double theta_;
  double lambda_;
};

}  // namespace dsct
