// Concave piecewise-linear accuracy functions a(f) over FLOPs f ∈ [0, fmax].
//
// This is the accuracy model of the paper (Section 3.1): slimmable-network
// accuracy as a function of the number of floating-point operations spent on
// the task, approximated by K linear segments with non-increasing slopes.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace dsct {

/// A single linear segment of an accuracy function, in the representation
/// used by the scheduling algorithms: the k-th segment spans
/// [breakpoint(k), breakpoint(k+1)] in FLOPs with constant slope.
struct AccuracySegment {
  double slope = 0.0;   ///< accuracy gained per TFLOP on this segment
  double fLo = 0.0;     ///< start breakpoint (TFLOP)
  double fHi = 0.0;     ///< end breakpoint (TFLOP)

  double flops() const { return fHi - fLo; }
};

/// Immutable concave piecewise-linear function.
///
/// Invariants (validated at construction):
///  * breakpoints strictly increasing, starting at 0;
///  * values non-decreasing (slopes >= 0);
///  * slopes non-increasing (concavity);
///  * all values within [0, 1].
class PiecewiseLinearAccuracy {
 public:
  /// Build from breakpoints f[0..K] (f[0] == 0) and values a[0..K].
  static PiecewiseLinearAccuracy fromPoints(std::vector<double> flops,
                                            std::vector<double> values);

  /// A single-segment linear function from (0, a0) to (fmax, a1).
  static PiecewiseLinearAccuracy linear(double a0, double a1, double fmax);

  int numSegments() const { return static_cast<int>(flops_.size()) - 1; }
  double fmax() const { return flops_.back(); }
  double amin() const { return values_.front(); }
  double amax() const { return values_.back(); }

  double breakpoint(int k) const { return flops_[static_cast<std::size_t>(k)]; }
  double valueAt(int k) const { return values_[static_cast<std::size_t>(k)]; }
  double slope(int k) const { return slopes_[static_cast<std::size_t>(k)]; }

  /// a(f); clamps f into [0, fmax].
  double value(double f) const;

  /// Index of the segment containing f; right-open convention, with
  /// f >= fmax mapping to the last segment.
  int segmentOf(double f) const;

  /// Right derivative a'+(f): slope of the segment to the right of f
  /// (0 for f >= fmax). This is the paper's "marginal gain".
  double marginalGain(double f) const;

  /// Left derivative a'-(f): slope of the segment to the left of f
  /// (slope(0) for f <= 0). This is the paper's "marginal loss".
  double marginalLoss(double f) const;

  /// Minimum FLOPs achieving accuracy >= a, for a in [amin, amax].
  double inverse(double a) const;

  /// Segment view for the scheduling algorithms.
  AccuracySegment segment(int k) const;

  /// First-segment slope — the paper's "task efficiency" θ.
  double theta() const { return slopes_.front(); }

  /// Residual function after `fDone` FLOPs have been executed:
  /// suffix(fDone)(f) == value(fDone + f), with fmax reduced accordingly.
  /// Used by the serving driver to carry partially processed requests into
  /// the next scheduling epoch. Requires fDone < fmax (a fully processed
  /// task has no residual function).
  PiecewiseLinearAccuracy suffix(double fDone) const;

  bool operator==(const PiecewiseLinearAccuracy&) const = default;

 private:
  PiecewiseLinearAccuracy(std::vector<double> flops,
                          std::vector<double> values);

  std::vector<double> flops_;   ///< breakpoints, size K+1, flops_[0] == 0
  std::vector<double> values_;  ///< accuracy at breakpoints, size K+1
  std::vector<double> slopes_;  ///< per-segment slopes, size K
};

}  // namespace dsct
