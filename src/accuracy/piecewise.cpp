#include "accuracy/piecewise.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dsct {

namespace {
constexpr double kSlopeTol = 1e-9;
}

PiecewiseLinearAccuracy::PiecewiseLinearAccuracy(std::vector<double> flops,
                                                 std::vector<double> values)
    : flops_(std::move(flops)), values_(std::move(values)) {
  DSCT_CHECK_MSG(flops_.size() >= 2, "need at least one segment");
  DSCT_CHECK_MSG(flops_.size() == values_.size(), "points arity mismatch");
  DSCT_CHECK_MSG(flops_.front() == 0.0, "first breakpoint must be 0");
  slopes_.reserve(flops_.size() - 1);
  for (std::size_t k = 0; k + 1 < flops_.size(); ++k) {
    const double df = flops_[k + 1] - flops_[k];
    DSCT_CHECK_MSG(df > 0.0, "breakpoints must be strictly increasing");
    const double slope = (values_[k + 1] - values_[k]) / df;
    DSCT_CHECK_MSG(slope >= -kSlopeTol, "accuracy must be non-decreasing");
    slopes_.push_back(std::max(0.0, slope));
  }
  for (std::size_t k = 0; k + 1 < slopes_.size(); ++k) {
    DSCT_CHECK_MSG(slopes_[k] >= slopes_[k + 1] - kSlopeTol,
                   "slopes must be non-increasing (concavity), got "
                       << slopes_[k] << " then " << slopes_[k + 1]);
  }
  for (double a : values_) {
    DSCT_CHECK_MSG(a >= -kSlopeTol && a <= 1.0 + kSlopeTol,
                   "accuracy out of [0,1]: " << a);
  }
}

PiecewiseLinearAccuracy PiecewiseLinearAccuracy::fromPoints(
    std::vector<double> flops, std::vector<double> values) {
  return PiecewiseLinearAccuracy(std::move(flops), std::move(values));
}

PiecewiseLinearAccuracy PiecewiseLinearAccuracy::linear(double a0, double a1,
                                                        double fmax) {
  return fromPoints({0.0, fmax}, {a0, a1});
}

double PiecewiseLinearAccuracy::value(double f) const {
  if (f <= 0.0) return values_.front();
  if (f >= fmax()) return values_.back();
  const int k = segmentOf(f);
  const auto uk = static_cast<std::size_t>(k);
  return values_[uk] + slopes_[uk] * (f - flops_[uk]);
}

int PiecewiseLinearAccuracy::segmentOf(double f) const {
  if (f >= fmax()) return numSegments() - 1;
  if (f <= 0.0) return 0;
  // First breakpoint strictly greater than f; segment is the one before it.
  const auto it = std::upper_bound(flops_.begin(), flops_.end(), f);
  return static_cast<int>(it - flops_.begin()) - 1;
}

double PiecewiseLinearAccuracy::marginalGain(double f) const {
  if (f >= fmax()) return 0.0;
  if (f <= 0.0) return slopes_.front();
  const auto it = std::lower_bound(flops_.begin(), flops_.end(), f);
  if (it != flops_.end() && *it == f) {
    // Exactly at a breakpoint: slope of the segment to the right.
    const auto k = static_cast<std::size_t>(it - flops_.begin());
    return slopes_[k];
  }
  return slopes_[static_cast<std::size_t>(segmentOf(f))];
}

double PiecewiseLinearAccuracy::marginalLoss(double f) const {
  if (f <= 0.0) return slopes_.front();
  if (f >= fmax()) return slopes_.back();
  const auto it = std::lower_bound(flops_.begin(), flops_.end(), f);
  if (it != flops_.end() && *it == f) {
    // Exactly at a breakpoint: slope of the segment to the left.
    const auto k = static_cast<std::size_t>(it - flops_.begin());
    return slopes_[k - 1];
  }
  return slopes_[static_cast<std::size_t>(segmentOf(f))];
}

double PiecewiseLinearAccuracy::inverse(double a) const {
  DSCT_CHECK_MSG(a >= amin() - kSlopeTol && a <= amax() + kSlopeTol,
                 "inverse target " << a << " outside [" << amin() << ", "
                                   << amax() << "]");
  if (a <= amin()) return 0.0;
  if (a >= amax()) return fmax();
  // Find the segment whose value range contains a.
  const auto it = std::lower_bound(values_.begin(), values_.end(), a);
  const auto k = static_cast<std::size_t>(it - values_.begin());
  // values_[k-1] < a <= values_[k]; slope on segment k-1 is positive here.
  const double slope = slopes_[k - 1];
  DSCT_CHECK(slope > 0.0);
  return flops_[k - 1] + (a - values_[k - 1]) / slope;
}

PiecewiseLinearAccuracy PiecewiseLinearAccuracy::suffix(double fDone) const {
  DSCT_CHECK_MSG(fDone < fmax() - 1e-15,
                 "suffix of a fully processed function (fDone=" << fDone
                     << ", fmax=" << fmax() << ")");
  fDone = std::max(0.0, fDone);
  std::vector<double> flops{0.0};
  std::vector<double> values{value(fDone)};
  const int first = segmentOf(fDone);
  for (int k = first; k < numSegments(); ++k) {
    const double fHi = flops_[static_cast<std::size_t>(k) + 1];
    if (fHi - fDone <= 1e-15) continue;  // fDone sits on this breakpoint
    flops.push_back(fHi - fDone);
    values.push_back(values_[static_cast<std::size_t>(k) + 1]);
  }
  return PiecewiseLinearAccuracy(std::move(flops), std::move(values));
}

AccuracySegment PiecewiseLinearAccuracy::segment(int k) const {
  DSCT_CHECK(k >= 0 && k < numSegments());
  const auto uk = static_cast<std::size_t>(k);
  return AccuracySegment{slopes_[uk], flops_[uk], flops_[uk + 1]};
}

}  // namespace dsct
