// The full DSCT-EA Mixed-Integer Program (paper (1a)-(1g)).
//
// Reproduces the role of the commercial solver baseline (DSCT-EA-Opt in
// Fig. 4): exact at small sizes, honest time-limited behaviour beyond.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sched/schedule.h"
#include "sched/types.h"
#include "solver/mip.h"
#include "solver/model.h"

namespace dsct {

struct DsctMip {
  lp::Model model;  ///< maximisation of Σ z_j
  int numTasks = 0;
  int numMachines = 0;

  int tVar(int j, int r) const { return j * numMachines + r; }
  int xVar(int j, int r) const {
    return numTasks * numMachines + j * numMachines + r;
  }
  int zVar(int j) const { return 2 * numTasks * numMachines + j; }
};

DsctMip buildMip(const Instance& inst);

/// Turn an integral schedule into a feasible MIP starting point (x, t, z);
/// used to warm-start branch-and-bound with the approximation algorithm's
/// solution.
std::vector<double> mipStart(const Instance& inst, const DsctMip& mip,
                             const IntegralSchedule& schedule);

/// Read a MIP solution back into an integral schedule.
IntegralSchedule extractIntegral(const Instance& inst, const DsctMip& mip,
                                 const std::vector<double>& x);

struct MipSolveSummary {
  lp::MipResult result;
  std::optional<IntegralSchedule> schedule;
  double totalAccuracy = 0.0;
  /// structuralFingerprint of the built LP/MIP model; pair it with
  /// result.rootBasis when carrying the basis to a later epoch's solve.
  std::uint64_t lpStructure = 0;
};

/// Convenience wrapper: build, warm-start (optional), solve, extract.
///
/// `rootBasis` (with the fingerprint it was taken under) warm-starts the
/// root relaxation when the newly built model has the same structural
/// fingerprint — the cross-epoch serving path. A stale basis is counted as
/// rejected in result.lpCounters and the solve proceeds cold; it can never
/// change the reported optimum.
MipSolveSummary solveDsctMip(const Instance& inst,
                             const lp::MipOptions& options,
                             const IntegralSchedule* warmStart = nullptr,
                             const lp::LpBasis* rootBasis = nullptr,
                             std::uint64_t rootBasisStructure = 0);

}  // namespace dsct
