#include "mipmodel/dsct_mip.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace dsct {

DsctMip buildMip(const Instance& inst) {
  DsctMip out;
  out.numTasks = inst.numTasks();
  out.numMachines = inst.numMachines();
  lp::Model& model = out.model;
  model.setMaximize(true);

  const int n = inst.numTasks();
  const int m = inst.numMachines();

  // Same cap as the link row's big-M: implied by (1b)/(1c), so the optimum
  // is unchanged, but as a *bound* it stays out of the simplex row space.
  for (int j = 0; j < n; ++j) {
    for (int r = 0; r < m; ++r) {
      const double tCap = std::min(inst.task(j).deadline,
                                   inst.task(j).fmax() / inst.machine(r).speed);
      model.addVariable(0.0, tCap, 0.0, lp::VarType::kContinuous,
                        "t_" + std::to_string(j) + "_" + std::to_string(r));
    }
  }
  for (int j = 0; j < n; ++j) {
    for (int r = 0; r < m; ++r) {
      model.addBinary(0.0, "x_" + std::to_string(j) + "_" + std::to_string(r));
    }
  }
  for (int j = 0; j < n; ++j) {
    model.addVariable(0.0, 1.0, 1.0, lp::VarType::kContinuous,
                      "z_" + std::to_string(j));
  }

  // (1a) via epigraph variables: z_j <= alpha_jk Σ_r s_r t_jr + b_jk.
  for (int j = 0; j < n; ++j) {
    const PiecewiseLinearAccuracy& acc = inst.task(j).accuracy;
    for (int k = 0; k < acc.numSegments(); ++k) {
      const double alpha = acc.slope(k);
      const double intercept = acc.valueAt(k) - alpha * acc.breakpoint(k);
      std::vector<std::pair<int, double>> row;
      row.emplace_back(out.zVar(j), 1.0);
      for (int r = 0; r < m; ++r) {
        row.emplace_back(out.tVar(j, r), -alpha * inst.machine(r).speed);
      }
      model.addConstraint(std::move(row), lp::Sense::kLe, intercept,
                          "acc_" + std::to_string(j) + "_" + std::to_string(k));
    }
  }

  // (1b) prefix deadlines per machine.
  for (int r = 0; r < m; ++r) {
    for (int j = 0; j < n; ++j) {
      std::vector<std::pair<int, double>> row;
      for (int i = 0; i <= j; ++i) row.emplace_back(out.tVar(i, r), 1.0);
      model.addConstraint(std::move(row), lp::Sense::kLe,
                          inst.task(j).deadline,
                          "ddl_" + std::to_string(j) + "_" + std::to_string(r));
    }
  }

  // (1c) FLOP cap (aggregated form; equivalent under (1d)-(1e)).
  for (int j = 0; j < n; ++j) {
    std::vector<std::pair<int, double>> row;
    for (int r = 0; r < m; ++r) {
      row.emplace_back(out.tVar(j, r), inst.machine(r).speed);
    }
    model.addConstraint(std::move(row), lp::Sense::kLe, inst.task(j).fmax(),
                        "fmax_" + std::to_string(j));
  }

  // (1d) linking t_jr <= M_jr x_jr with the tightest valid big-M.
  for (int j = 0; j < n; ++j) {
    for (int r = 0; r < m; ++r) {
      const double bigM = std::min(inst.task(j).deadline,
                                   inst.task(j).fmax() / inst.machine(r).speed);
      model.addConstraint({{out.tVar(j, r), 1.0}, {out.xVar(j, r), -bigM}},
                          lp::Sense::kLe, 0.0,
                          "link_" + std::to_string(j) + "_" + std::to_string(r));
    }
  }

  // (1e) each task is assigned exactly one machine.
  for (int j = 0; j < n; ++j) {
    std::vector<std::pair<int, double>> row;
    for (int r = 0; r < m; ++r) row.emplace_back(out.xVar(j, r), 1.0);
    model.addConstraint(std::move(row), lp::Sense::kEq, 1.0,
                        "assign_" + std::to_string(j));
  }

  // (1f) energy budget.
  {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < n; ++j) {
      for (int r = 0; r < m; ++r) {
        row.emplace_back(out.tVar(j, r), inst.machine(r).power());
      }
    }
    model.addConstraint(std::move(row), lp::Sense::kLe, inst.energyBudget(),
                        "energy");
  }

  return out;
}

std::vector<double> mipStart(const Instance& inst, const DsctMip& mip,
                             const IntegralSchedule& schedule) {
  std::vector<double> x(static_cast<std::size_t>(mip.model.numVariables()),
                        0.0);
  for (int j = 0; j < inst.numTasks(); ++j) {
    int r = schedule.machineOf(j);
    double duration = schedule.duration(j);
    if (r < 0) {
      r = 0;  // (1e) requires an assignment even for zero-time tasks
      duration = 0.0;
    }
    x[static_cast<std::size_t>(mip.xVar(j, r))] = 1.0;
    x[static_cast<std::size_t>(mip.tVar(j, r))] = duration;
    // For a concave PWL function, a(f) = min_k(alpha_k f + b_k), so setting
    // z_j to the achieved accuracy satisfies every segment row tightly.
    const double f = inst.machine(r).speed * duration;
    x[static_cast<std::size_t>(mip.zVar(j))] =
        inst.task(j).accuracy.value(f);
  }
  return x;
}

IntegralSchedule extractIntegral(const Instance& inst, const DsctMip& mip,
                                 const std::vector<double>& x) {
  DSCT_CHECK(static_cast<int>(x.size()) == mip.model.numVariables());
  std::vector<int> machineOf(static_cast<std::size_t>(inst.numTasks()), -1);
  std::vector<double> duration(static_cast<std::size_t>(inst.numTasks()), 0.0);
  for (int j = 0; j < inst.numTasks(); ++j) {
    int best = 0;
    for (int r = 1; r < inst.numMachines(); ++r) {
      if (x[static_cast<std::size_t>(mip.xVar(j, r))] >
          x[static_cast<std::size_t>(mip.xVar(j, best))]) {
        best = r;
      }
    }
    machineOf[static_cast<std::size_t>(j)] = best;
    duration[static_cast<std::size_t>(j)] =
        std::max(0.0, x[static_cast<std::size_t>(mip.tVar(j, best))]);
  }
  return IntegralSchedule::build(inst, std::move(machineOf),
                                 std::move(duration));
}

MipSolveSummary solveDsctMip(const Instance& inst,
                             const lp::MipOptions& options,
                             const IntegralSchedule* warmStart,
                             const lp::LpBasis* rootBasis,
                             std::uint64_t rootBasisStructure) {
  DsctMip mip = buildMip(inst);
  lp::MipOptions opts = options;
  if (warmStart != nullptr) {
    opts.initialSolution = mipStart(inst, mip, *warmStart);
  }
  const std::uint64_t structure = lp::structuralFingerprint(mip.model);
  bool staleBasis = false;
  if (rootBasis != nullptr && !rootBasis->empty()) {
    if (rootBasisStructure == structure) {
      opts.lp.warmBasis = rootBasis;
    } else {
      staleBasis = true;  // drifted structure: solve cold, count the miss
    }
  }
  MipSolveSummary summary{lp::solveMip(mip.model, opts), std::nullopt, 0.0,
                          structure};
  if (staleBasis) {
    ++summary.result.lpCounters.warmStartsAttempted;
    ++summary.result.lpCounters.warmStartsRejected;
  }
  if (summary.result.hasSolution) {
    summary.schedule = extractIntegral(inst, mip, summary.result.x);
    summary.totalAccuracy = summary.schedule->totalAccuracy(inst);
  }
  return summary;
}

}  // namespace dsct
