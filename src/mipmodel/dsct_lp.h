// Fractional relaxation DSCT-EA-FR as a linear program (paper (3a)-(3f)).
//
// Used to cross-validate DSCT-EA-FR-OPT (they must agree to LP tolerance)
// and to reproduce Table 1 (combinatorial algorithm vs general LP solver).
#pragma once

#include "sched/schedule.h"
#include "sched/types.h"
#include "solver/model.h"

namespace dsct {

struct DsctLp {
  lp::Model model;  ///< maximisation of Σ z_j
  int numTasks = 0;
  int numMachines = 0;

  /// Variable index of t_jr.
  int tVar(int j, int r) const { return j * numMachines + r; }
  /// Variable index of z_j.
  int zVar(int j) const { return numTasks * numMachines + j; }
};

DsctLp buildFractionalLp(const Instance& inst);

/// Read the t_jr block of an LP solution back into a schedule.
FractionalSchedule extractFractional(const Instance& inst, const DsctLp& lp,
                                     const std::vector<double>& x);

}  // namespace dsct
