#include "mipmodel/dsct_lp.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace dsct {

DsctLp buildFractionalLp(const Instance& inst) {
  DsctLp out;
  out.numTasks = inst.numTasks();
  out.numMachines = inst.numMachines();
  lp::Model& model = out.model;
  model.setMaximize(true);

  const int n = inst.numTasks();
  const int m = inst.numMachines();

  // t_jr in [0, min(d_j, f_j^max / s_r)]. The cap is implied by the deadline
  // prefix row (i = j term) and the FLOP row, so the optimum is unchanged —
  // but stating it as a *bound* lets the bounded-variable simplex keep these
  // columns out of the row space entirely.
  for (int j = 0; j < n; ++j) {
    for (int r = 0; r < m; ++r) {
      const double tCap = std::min(
          inst.task(j).deadline, inst.task(j).fmax() / inst.machine(r).speed);
      model.addVariable(0.0, tCap, 0.0, lp::VarType::kContinuous,
                        "t_" + std::to_string(j) + "_" + std::to_string(r));
    }
  }
  // z_j in [0, 1], objective +1 (maximise total accuracy).
  for (int j = 0; j < n; ++j) {
    model.addVariable(0.0, 1.0, 1.0, lp::VarType::kContinuous,
                      "z_" + std::to_string(j));
  }

  // (3b) z_j <= alpha_jk * Σ_r s_r t_jr + b_jk for every segment k.
  for (int j = 0; j < n; ++j) {
    const PiecewiseLinearAccuracy& acc = inst.task(j).accuracy;
    for (int k = 0; k < acc.numSegments(); ++k) {
      const double alpha = acc.slope(k);
      const double intercept = acc.valueAt(k) - alpha * acc.breakpoint(k);
      std::vector<std::pair<int, double>> row;
      row.reserve(static_cast<std::size_t>(m) + 1);
      row.emplace_back(out.zVar(j), 1.0);
      for (int r = 0; r < m; ++r) {
        row.emplace_back(out.tVar(j, r), -alpha * inst.machine(r).speed);
      }
      model.addConstraint(std::move(row), lp::Sense::kLe, intercept,
                          "acc_" + std::to_string(j) + "_" + std::to_string(k));
    }
  }

  // (3c) prefix deadlines: Σ_{i<=j} t_ir <= d_j per machine.
  for (int r = 0; r < m; ++r) {
    for (int j = 0; j < n; ++j) {
      std::vector<std::pair<int, double>> row;
      row.reserve(static_cast<std::size_t>(j) + 1);
      for (int i = 0; i <= j; ++i) row.emplace_back(out.tVar(i, r), 1.0);
      model.addConstraint(std::move(row), lp::Sense::kLe,
                          inst.task(j).deadline,
                          "ddl_" + std::to_string(j) + "_" + std::to_string(r));
    }
  }

  // (3d) Σ_r s_r t_jr <= f_j^max.
  for (int j = 0; j < n; ++j) {
    std::vector<std::pair<int, double>> row;
    row.reserve(static_cast<std::size_t>(m));
    for (int r = 0; r < m; ++r) {
      row.emplace_back(out.tVar(j, r), inst.machine(r).speed);
    }
    model.addConstraint(std::move(row), lp::Sense::kLe, inst.task(j).fmax(),
                        "fmax_" + std::to_string(j));
  }

  // (3e) energy budget: Σ_jr P_r t_jr <= B.
  {
    std::vector<std::pair<int, double>> row;
    row.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(m));
    for (int j = 0; j < n; ++j) {
      for (int r = 0; r < m; ++r) {
        row.emplace_back(out.tVar(j, r), inst.machine(r).power());
      }
    }
    model.addConstraint(std::move(row), lp::Sense::kLe, inst.energyBudget(),
                        "energy");
  }

  return out;
}

FractionalSchedule extractFractional(const Instance& inst, const DsctLp& lp,
                                     const std::vector<double>& x) {
  DSCT_CHECK(static_cast<int>(x.size()) == lp.model.numVariables());
  FractionalSchedule s(inst.numTasks(), inst.numMachines());
  for (int j = 0; j < inst.numTasks(); ++j) {
    for (int r = 0; r < inst.numMachines(); ++r) {
      s.set(j, r, std::max(0.0, x[static_cast<std::size_t>(lp.tVar(j, r))]));
    }
  }
  return s;
}

}  // namespace dsct
