#include "shard/coordinator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "sched/energy_price.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace dsct::shard {

namespace {

void addCounters(FrOptCounters& into, const FrOptCounters& from) {
  into.evaluations += from.evaluations;
  into.cacheHits += from.cacheHits;
  into.scheduleSolves += from.scheduleSolves;
  into.directionLpSolves += from.directionLpSolves;
  into.outerRounds += from.outerRounds;
  into.pairMoves += from.pairMoves;
  into.directionSteps += from.directionSteps;
  into.expandSeconds += from.expandSeconds;
  into.refineSeconds += from.refineSeconds;
  into.pairSeconds += from.pairSeconds;
  into.directionSeconds += from.directionSeconds;
  into.totalSeconds += from.totalSeconds;
  into.slackQueries += from.slackQueries;
  into.slackHits += from.slackHits;
  into.slackRebuilds += from.slackRebuilds;
  into.slackInvalidations += from.slackInvalidations;
  into.crossHits += from.crossHits;
  into.crossMisses += from.crossMisses;
  into.crossInvalidations += from.crossInvalidations;
  into.crossContended += from.crossContended;
  into.crossShards += from.crossShards;
}

/// One cell's static slice of the global instance.
struct Cell {
  std::vector<int> machines;  ///< global machine indices, ascending
  std::vector<int> tasks;     ///< global task indices, ascending (deadline)
  std::vector<Task> taskSlice;
  std::vector<Machine> machineSlice;
};

Instance cellInstance(const Cell& cell, double budget) {
  // Tasks enter in global deadline order, so the ctor's stable re-sort
  // preserves the index mapping cell.tasks[local] == global.
  return Instance(cell.taskSlice, cell.machineSlice, std::max(0.0, budget));
}

}  // namespace

ShardCoordinator::ShardCoordinator(const Solver& inner, ShardOptions options)
    : inner_(inner), options_(options) {}

SolveOutcome ShardCoordinator::solve(const Instance& inst,
                                     const SolveContext& context) {
  stats_ = ShardStats{};
  const int k = std::clamp(options_.cells, 1, std::max(1, inst.numMachines()));
  stats_.cells = k;
  if (k <= 1 || inst.numTasks() == 0) {
    // Single cell: delegate with the context untouched — bit-identical to
    // solving without a coordinator.
    SolveOutcome outcome = inner_.solve(inst, context);
    stats_.converged = true;
    stats_.budgetAssigned = inst.energyBudget();
    stats_.budgetUsed = outcome.energy;
    if (outcome.cancelled()) stats_.cancelledCells = 1;
    return outcome;
  }

  // --- partition and slice ---
  PartitionOptions popt;
  popt.cells = k;
  popt.seed = options_.seed;
  popt.balanceFactor = options_.balanceFactor;
  popt.taskAffinity = options_.taskAffinity;
  const Partition part = partitionInstance(inst, popt);
  const auto machinesOf = part.machinesOf();
  const auto tasksOf = part.tasksOf();
  std::vector<Cell> cells(static_cast<std::size_t>(k));
  for (std::size_t c = 0; c < cells.size(); ++c) {
    cells[c].machines = machinesOf[c];
    cells[c].tasks = tasksOf[c];
    cells[c].machineSlice.reserve(cells[c].machines.size());
    for (const int r : cells[c].machines) {
      cells[c].machineSlice.push_back(inst.machine(r));
    }
    cells[c].taskSlice.reserve(cells[c].tasks.size());
    for (const int j : cells[c].tasks) {
      cells[c].taskSlice.push_back(inst.task(j));
    }
  }

  // --- outer price loop: bisection on λ over the summed demand curves ---
  const double budget = inst.energyBudget();
  std::vector<PricedDemandCurve> curves;
  curves.reserve(cells.size());
  for (const Cell& cell : cells) {
    curves.emplace_back(cellInstance(cell, budget));
  }
  const auto demandAt = [&](double lambda) {
    double d = 0.0;
    for (const PricedDemandCurve& curve : curves) d += curve.demandAt(lambda);
    return d;
  };
  double lambda = 0.0;
  double demand = demandAt(0.0);
  ++stats_.priceIterations;
  if (demand <= budget) {
    // Generous budget: everything is funded at price 0.
    stats_.converged = true;
  } else {
    // Invariant: demand(lo) > B >= demand(hi). hi starts at the largest ψ,
    // where demand is 0. D(λ) only changes at segment-ψ breakpoints, so
    // every probe snaps down to the largest breakpoint in (lo, mid] — a
    // half with no breakpoint is constant and moves for free, and once the
    // bracket holds no interior breakpoint, hi IS the critical price: the
    // remaining slack is a structural step gap for the top-up pass to
    // redistribute, not a convergence failure.
    double lo = 0.0;
    double hi = 0.0;
    for (const PricedDemandCurve& curve : curves) {
      hi = std::max(hi, curve.maxPsi());
    }
    double hiDemand = demandAt(hi);
    const auto breakpointAtMost = [&](double price) {
      double bp = 0.0;
      for (const PricedDemandCurve& curve : curves) {
        bp = std::max(bp, curve.largestPsiAtMost(price));
      }
      return bp;
    };
    // Largest breakpoint strictly below `price` (0 when none).
    const auto breakpointBelow = [&](double price) {
      return breakpointAtMost(
          std::nextafter(price, -std::numeric_limits<double>::infinity()));
    };
    double loDemand = demand;
    int sameSide = 0;  // +1: lo moved last, -1: hi moved last
    while (stats_.priceIterations < options_.maxPriceIterations) {
      if (breakpointBelow(hi) <= lo) {
        // No breakpoint left inside (lo, hi): hi is exactly critical.
        stats_.converged = true;
        break;
      }
      // Probe by secant toward D = B — the curve is near-linear at scale,
      // so interpolation lands in the tolerance band in a handful of
      // evaluations where blind halving needs log2 of the price range. The
      // Illinois-style guard (midpoint after two same-side moves) keeps the
      // worst case at bisection speed.
      double guess = 0.5 * (lo + hi);
      if (std::abs(sameSide) < 2 && loDemand > hiDemand) {
        const double t = (loDemand - budget) / (loDemand - hiDemand);
        const double secant = lo + t * (hi - lo);
        if (secant > lo && secant < hi) guess = secant;
      }
      if (guess <= lo || guess >= hi) break;  // bracket collapsed to one step
      const double probe = breakpointAtMost(guess);
      if (probe <= lo) {
        // No breakpoint in (lo, guess]: D is flat there, still above B.
        lo = guess;
        continue;
      }
      const double d = demandAt(probe);
      ++stats_.priceIterations;
      if (d <= budget) {
        hi = probe;
        hiDemand = d;
        sameSide = sameSide < 0 ? sameSide - 1 : -1;
        // Close enough: the funded demand is within tolerance below B.
        if (budget - d <= options_.budgetTolerance * budget) {
          stats_.converged = true;
          break;
        }
      } else {
        lo = probe;
        loDemand = d;
        sameSide = sameSide > 0 ? sameSide + 1 : 1;
      }
    }
    lambda = hi;
    demand = hiDemand;
  }
  stats_.finalPrice = lambda;

  // --- per-cell budgets: demand shares, rescaled to fit B ---
  std::vector<double> cellBudget(cells.size(), 0.0);
  double assigned = 0.0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    cellBudget[c] = curves[c].demandAt(lambda);
    assigned += cellBudget[c];
  }
  if (assigned > budget && assigned > 0.0) {
    const double scale = budget / assigned;
    for (double& b : cellBudget) b *= scale;
    assigned = budget;
  }
  stats_.budgetAssigned = assigned;

  // --- per-cell cross-epoch state ---
  if (cellStates_.size() != cells.size()) {
    cellStates_.clear();
    cellStates_.resize(cells.size());
    for (CellState& state : cellStates_) {
      state.cache =
          std::make_unique<ProfileCache>(options_.cacheEntriesPerCell);
    }
  }

  // --- per-cell availability slices ---
  std::vector<AvailabilityHints> cellHints;
  if (context.availability != nullptr &&
      !context.availability->machineEnergyCaps.empty()) {
    const std::vector<double>& caps = context.availability->machineEnergyCaps;
    cellHints.resize(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      cellHints[c].machineEnergyCaps.reserve(cells[c].machines.size());
      for (const int r : cells[c].machines) {
        cellHints[c].machineEnergyCaps.push_back(
            static_cast<std::size_t>(r) < caps.size()
                ? caps[static_cast<std::size_t>(r)]
                : 0.0);
      }
    }
  }

  // --- parallel cell solves ---
  // The pool is forwarded into each cell solve: a cell solving on a worker
  // runs its own fan-outs inline (ThreadPool is re-entrant), so nesting is
  // deadlock-free. energyPrice = λ keeps price-guided solvers consistent
  // with the outer loop; B_c never exceeds the cell's demand at λ, so the
  // priced budget cap is inactive here and active only for solvers that
  // would otherwise overreach.
  const auto solveCell = [&](std::size_t c, double cellB,
                             double price) -> SolveOutcome {
    if (cells[c].tasks.empty()) return SolveOutcome{};
    SolveContext cellContext = context;
    cellContext.frOpt.sharedCache = cellStates_[c].cache.get();
    cellContext.lpWarm = &cellStates_[c].lpWarm;
    cellContext.availability =
        cellHints.empty() ? nullptr : &cellHints[c];
    cellContext.energyPrice = price;
    return inner_.solve(cellInstance(cells[c], cellB), cellContext);
  };
  ThreadPool* pool = context.frOpt.pool;
  std::vector<SolveOutcome> outcomes;
  if (pool != nullptr) {
    outcomes = pool->parallelMap(cells.size(), [&](std::size_t c) {
      return solveCell(c, cellBudget[c], lambda);
    });
  } else {
    outcomes.reserve(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      outcomes.push_back(solveCell(c, cellBudget[c], lambda));
    }
  }

  bool cancelled = false;
  double used = 0.0;
  for (const SolveOutcome& outcome : outcomes) {
    used += outcome.energy;
    if (outcome.cancelled()) {
      cancelled = true;
      ++stats_.cancelledCells;
    }
  }

  // --- top-up: hand the run's leftover energy to budget-bound cells ---
  // A cell that spent (almost) its whole share is the one the budget
  // constrained; give it a slice of the global slack proportional to its
  // remaining horizon capacity and re-solve unpriced (a price would cap the
  // enlarged budget right back to the old demand).
  if (options_.topUp && !cancelled) {
    const double slack = budget - used;
    std::vector<std::size_t> bound;
    double headroom = 0.0;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].tasks.empty()) continue;
      if (outcomes[c].energy >= cellBudget[c] * (1.0 - 1e-6) &&
          curves[c].capEnergy() > outcomes[c].energy + 1e-12) {
        bound.push_back(c);
        headroom += curves[c].capEnergy() - outcomes[c].energy;
      }
    }
    if (slack > options_.budgetTolerance * budget * 0.1 && !bound.empty() &&
        headroom > 0.0) {
      std::vector<double> topBudget(cells.size(), 0.0);
      for (const std::size_t c : bound) {
        const double share =
            slack * (curves[c].capEnergy() - outcomes[c].energy) / headroom;
        topBudget[c] = cellBudget[c] + share;
        stats_.topUpEnergy += share;
      }
      stats_.topUpCells = static_cast<int>(bound.size());
      const auto resolveCell = [&](std::size_t i) {
        const std::size_t c = bound[i];
        return solveCell(c, topBudget[c], -1.0);
      };
      std::vector<SolveOutcome> topped;
      if (pool != nullptr) {
        topped = pool->parallelMap(bound.size(), resolveCell);
      } else {
        topped.reserve(bound.size());
        for (std::size_t i = 0; i < bound.size(); ++i) {
          topped.push_back(resolveCell(i));
        }
      }
      for (std::size_t i = 0; i < bound.size(); ++i) {
        const std::size_t c = bound[i];
        if (topped[i].cancelled()) {
          cancelled = true;
          ++stats_.cancelledCells;
          continue;
        }
        // Keep the better of the two solves (the top-up budget is a
        // superset, so it should not lose; guard against tie-break drift).
        if (topped[i].totalAccuracy >= outcomes[c].totalAccuracy) {
          cellBudget[c] = topBudget[c];
          outcomes[c] = std::move(topped[i]);
        }
      }
      used = 0.0;
      for (const SolveOutcome& outcome : outcomes) used += outcome.energy;
    }
  }
  stats_.budgetUsed = used;

  // --- merge: index-ordered recombination into the global instance ---
  SolveOutcome merged;
  bool allIntegral = true;
  bool anyFractional = false;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (cells[c].tasks.empty()) continue;
    if (!outcomes[c].schedule.has_value()) allIntegral = false;
    if (outcomes[c].fractional.has_value()) anyFractional = true;
    merged.upperBound += outcomes[c].upperBound;
    addCounters(merged.counters, outcomes[c].counters);
    merged.lpCounters.add(outcomes[c].lpCounters);
  }
  if (allIntegral) {
    // Cell timelines stack their tasks in deadline order from 0; the global
    // rebuild stacks the same subsets on the same machines, so start times
    // and deadline feasibility carry over exactly.
    std::vector<int> machineOf(static_cast<std::size_t>(inst.numTasks()), -1);
    std::vector<double> duration(static_cast<std::size_t>(inst.numTasks()),
                                 0.0);
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].tasks.empty()) continue;
      const IntegralSchedule& cellSched = *outcomes[c].schedule;
      for (std::size_t local = 0; local < cells[c].tasks.size(); ++local) {
        const int r = cellSched.machineOf(static_cast<int>(local));
        if (r < 0) continue;
        const std::size_t global =
            static_cast<std::size_t>(cells[c].tasks[local]);
        machineOf[global] = cells[c].machines[static_cast<std::size_t>(r)];
        duration[global] = cellSched.duration(static_cast<int>(local));
      }
    }
    merged.schedule = IntegralSchedule::build(inst, std::move(machineOf),
                                              std::move(duration));
    fillFromIntegral(inst, merged);
  } else if (anyFractional) {
    FractionalSchedule global(inst.numTasks(), inst.numMachines());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].tasks.empty() || !outcomes[c].fractional.has_value()) {
        continue;
      }
      const FractionalSchedule& cellFrac = *outcomes[c].fractional;
      for (std::size_t local = 0; local < cells[c].tasks.size(); ++local) {
        for (std::size_t lr = 0; lr < cells[c].machines.size(); ++lr) {
          const double t = cellFrac.at(static_cast<int>(local),
                                       static_cast<int>(lr));
          if (t > 0.0) {
            global.set(cells[c].tasks[local], cells[c].machines[lr], t);
          }
        }
      }
    }
    merged.fractional = std::move(global);
    fillFromFractional(inst, merged);
  }
  // Note: the summed upper bound is a bound for the *partitioned* problem
  // (each cell's optimum at its budget share), not for the joint optimum —
  // the coordinator's objective gap is measured against an unsharded solve
  // in bench/fig10_sharded_scale.
  if (cancelled) merged.status = OutcomeStatus::kCancelled;
  stats_.budgetUsed = merged.energy;
  return merged;
}

ShardedSolver::ShardedSolver(const Solver& inner, ShardOptions options)
    : coordinator_(inner, options),
      name_("sharded-" + inner.name()),
      displayName_(inner.displayName() + " (sharded, K=" +
                   std::to_string(options.cells) + ")") {}

SolverCapabilities ShardedSolver::capabilities() const {
  SolverCapabilities caps = coordinator_.inner().capabilities();
  // The coordinator owns per-cell caches and warm-start slots, so the
  // context-level ones are unused; keep the flags as the inner solver's so
  // callers still provision the shared pool. Determinism is preserved: the
  // partition, the price loop, and the index-ordered merge are all pure.
  return caps;
}

SolveOutcome ShardedSolver::doSolve(const Instance& inst,
                                    const SolveContext& context) const {
  return coordinator_.solve(inst, context);
}

}  // namespace dsct::shard
