// Shard coordinator (DESIGN.md §18): budget-partitioned cells coordinated
// by a Lagrangian energy price.
//
// The only coupling between machines in DSCT-EA is the global energy budget
// B — remove it and the problem decomposes by machine. The coordinator
// exploits that: it partitions machines+tasks into K cells, runs an outer
// price search on the energy price λ using each cell's PricedDemandCurve
// (energy_price.h) to find the price at which the cells' combined appetite
// fits B, hands every cell its demand share B_c as an independent budget,
// solves the cells in parallel through the regular Solver interface, and
// finally re-solves budget-bound cells with the run's leftover energy (the
// top-up pass). Each cell keeps its own cross-epoch ProfileCache and LP
// warm-start slot, so sharded serving retains the single-cell reuse wins.
//
// With K <= 1 the coordinator delegates to the inner solver with the
// context untouched — bit-identical to not having a coordinator at all
// (tests/shard_coordinator_test.cpp pins this).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/solver_api.h"
#include "sched/profile_cache.h"
#include "shard/partitioner.h"

namespace dsct::shard {

struct ShardOptions {
  /// Cell count K; <= 1 delegates to the inner solver unchanged.
  int cells = 1;
  /// Partitioner seed (see PartitionOptions::seed).
  std::uint64_t seed = 0;
  /// Locality admission threshold forwarded to the partitioner.
  double balanceFactor = 1.25;
  /// Optional per-task preferred machine forwarded to the partitioner.
  const std::vector<int>* taskAffinity = nullptr;
  /// Outer price-loop iteration cap, counted in demand evaluations. The
  /// demand curves are step functions, so the loop snaps every probe to a
  /// breakpoint (secant guess, midpoint fallback) and declares exact
  /// convergence once the bracket holds no interior breakpoint — in
  /// practice ≤ 8 evaluations; 32 is a generous backstop.
  int maxPriceIterations = 32;
  /// Convergence slack as a fraction of B: the loop stops once the funded
  /// demand is within `budgetTolerance` x B below the budget (demand never
  /// exceeds B at the accepted price).
  double budgetTolerance = 0.01;
  /// Re-solve budget-bound cells with the run's leftover energy.
  bool topUp = true;
  /// Entry bound of each cell's cross-epoch ProfileCache.
  std::size_t cacheEntriesPerCell = 1 << 18;
};

/// Per-solve observability (read via lastStats after each solve).
struct ShardStats {
  int cells = 0;             ///< cells actually used (after clamping)
  int priceIterations = 0;   ///< demand-curve evaluations of the outer loop
  double finalPrice = 0.0;   ///< accepted λ (0 when the budget is generous)
  bool converged = false;    ///< funded demand within tolerance of B
  double budgetAssigned = 0.0;  ///< Σ B_c handed to the cells
  double budgetUsed = 0.0;      ///< Σ Joules the cell schedules consumed
  double topUpEnergy = 0.0;     ///< extra Joules granted by the top-up pass
  int topUpCells = 0;           ///< cells re-solved in the top-up pass
  int cancelledCells = 0;       ///< cell solves stopped by the cancel token
};

/// Runs sharded solves through an inner registry solver. Stateful across
/// solves (per-cell caches and warm-start slots persist between epochs), so
/// a coordinator must not run two solves concurrently — the serving loop's
/// at-most-one-solve-in-flight rule, same as LpWarmStartSlot.
class ShardCoordinator {
 public:
  ShardCoordinator(const Solver& inner, ShardOptions options);

  SolveOutcome solve(const Instance& inst, const SolveContext& context);

  const Solver& inner() const { return inner_; }
  const ShardOptions& options() const { return options_; }
  /// Stats of the most recent solve (zeroed at the start of each).
  const ShardStats& lastStats() const { return stats_; }

 private:
  /// Cross-epoch resources of one cell.
  struct CellState {
    std::unique_ptr<ProfileCache> cache;
    LpWarmStartSlot lpWarm;
  };

  const Solver& inner_;
  ShardOptions options_;
  std::vector<CellState> cellStates_;
  ShardStats stats_;
};

/// Solver adapter: lets every existing dispatch layer (serving loop, async
/// pipeline, fallback chains, benches) treat a sharded solve as a normal
/// Solver. The coordinator inside is mutable state, so the adapter inherits
/// its at-most-one-solve-in-flight rule.
class ShardedSolver final : public Solver {
 public:
  ShardedSolver(const Solver& inner, ShardOptions options);

  const std::string& name() const override { return name_; }
  const std::string& displayName() const override { return displayName_; }
  SolverCapabilities capabilities() const override;

  const Solver& inner() const { return coordinator_.inner(); }
  const ShardStats& lastStats() const { return coordinator_.lastStats(); }

 protected:
  SolveOutcome doSolve(const Instance& inst,
                       const SolveContext& context) const override;

 private:
  mutable ShardCoordinator coordinator_;
  std::string name_;
  std::string displayName_;
};

}  // namespace dsct::shard
