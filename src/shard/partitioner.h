// Deterministic cell partitioner (DESIGN.md §18): splits an instance's
// machines and tasks into K cells so the shard coordinator can solve them
// independently under per-cell energy budgets.
//
// Machines are spread LPT-style (largest speed first, seeded tie-break) so
// every cell gets a comparable slice of the fleet's throughput; tasks follow
// in deadline order onto the cell with the least relative load
// (assigned fmax / cell speed), optionally honouring per-task machine
// affinity when the preferred cell is not overloaded. The partition is a
// pure function of (instance, options) — same inputs, same cells, bit for
// bit — which is what makes sharded serving runs replayable.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/types.h"

namespace dsct::shard {

struct PartitionOptions {
  /// Requested cell count; clamped to [1, numMachines] so every cell owns
  /// at least one machine.
  int cells = 1;
  /// Seed for the machine tie-break hash. Machines of equal speed are
  /// ordered by a seeded hash of their index, so distinct seeds explore
  /// distinct (equally balanced) partitions deterministically.
  std::uint64_t seed = 0;
  /// Locality admission threshold: a task follows its affinity machine's
  /// cell only while that cell's relative load stays within
  /// `balanceFactor` x the least-loaded cell's relative load.
  double balanceFactor = 1.25;
  /// Optional per-task preferred machine (global index, -1 for none),
  /// indexed like the instance's tasks. Null disables locality routing.
  const std::vector<int>* taskAffinity = nullptr;
};

struct Partition {
  int cells = 0;
  std::vector<int> machineCell;   ///< machine index -> cell
  std::vector<int> taskCell;      ///< task index -> cell
  std::vector<double> cellSpeed;  ///< Σ machine speed per cell (TFLOPS)
  std::vector<double> cellFmax;   ///< Σ assigned task fmax per cell (TFLOP)

  /// Global machine indices per cell, ascending (stable sub-instance order).
  std::vector<std::vector<int>> machinesOf() const;
  /// Global task indices per cell, ascending — deadline order within the
  /// cell because the instance's tasks are deadline-sorted.
  std::vector<std::vector<int>> tasksOf() const;
};

Partition partitionInstance(const Instance& inst,
                            const PartitionOptions& options);

}  // namespace dsct::shard
