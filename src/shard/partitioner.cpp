#include "shard/partitioner.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace dsct::shard {

namespace {

/// splitmix64: a cheap stateless mixer, deterministic across platforms.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<std::vector<int>> Partition::machinesOf() const {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(cells));
  for (std::size_t r = 0; r < machineCell.size(); ++r) {
    out[static_cast<std::size_t>(machineCell[r])].push_back(
        static_cast<int>(r));
  }
  return out;
}

std::vector<std::vector<int>> Partition::tasksOf() const {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(cells));
  for (std::size_t j = 0; j < taskCell.size(); ++j) {
    out[static_cast<std::size_t>(taskCell[j])].push_back(static_cast<int>(j));
  }
  return out;
}

Partition partitionInstance(const Instance& inst,
                            const PartitionOptions& options) {
  const int m = inst.numMachines();
  const int n = inst.numTasks();
  Partition part;
  part.cells = std::clamp(options.cells, 1, std::max(1, m));
  const std::size_t k = static_cast<std::size_t>(part.cells);
  part.machineCell.assign(static_cast<std::size_t>(m), 0);
  part.taskCell.assign(static_cast<std::size_t>(n), 0);
  part.cellSpeed.assign(k, 0.0);
  part.cellFmax.assign(k, 0.0);
  if (m == 0) return part;

  // --- machines: LPT onto the cell with the least total speed ---
  // Stable order: speed descending, seeded hash then index on ties, so equal
  // fleets partition identically run to run (and differently across seeds).
  std::vector<int> order(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) order[static_cast<std::size_t>(r)] = r;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = inst.machine(a).speed;
    const double sb = inst.machine(b).speed;
    if (sa != sb) return sa > sb;
    const std::uint64_t ha =
        mix(options.seed ^ static_cast<std::uint64_t>(a) * 0x100000001b3ULL);
    const std::uint64_t hb =
        mix(options.seed ^ static_cast<std::uint64_t>(b) * 0x100000001b3ULL);
    if (ha != hb) return ha < hb;
    return a < b;
  });
  for (const int r : order) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < k; ++c) {
      if (part.cellSpeed[c] < part.cellSpeed[best]) best = c;
    }
    part.machineCell[static_cast<std::size_t>(r)] = static_cast<int>(best);
    part.cellSpeed[best] += inst.machine(r).speed;
  }

  // --- tasks: deadline order onto the least relatively loaded cell ---
  // Relative load = assigned fmax / cell speed, so fast cells absorb
  // proportionally more work and every cell's solve sees a similar ratio of
  // demand to capacity.
  const auto relLoad = [&](std::size_t c) {
    return part.cellSpeed[c] > 0.0
               ? part.cellFmax[c] / part.cellSpeed[c]
               : std::numeric_limits<double>::infinity();
  };
  for (int j = 0; j < n; ++j) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < k; ++c) {
      if (relLoad(c) < relLoad(best)) best = c;
    }
    // Locality: follow the preferred machine's cell while it stays within
    // the balance factor of the least-loaded cell. The comparison includes
    // the task being placed — comparing current loads instead would make
    // empty cells (relative load 0) reject every affinity no matter how
    // large the factor is.
    if (options.taskAffinity != nullptr &&
        static_cast<std::size_t>(j) < options.taskAffinity->size()) {
      const int pref = (*options.taskAffinity)[static_cast<std::size_t>(j)];
      if (pref >= 0 && pref < m) {
        const std::size_t prefCell = static_cast<std::size_t>(
            part.machineCell[static_cast<std::size_t>(pref)]);
        const double fmax = inst.task(j).fmax();
        const auto postLoad = [&](std::size_t c) {
          return part.cellSpeed[c] > 0.0
                     ? (part.cellFmax[c] + fmax) / part.cellSpeed[c]
                     : std::numeric_limits<double>::infinity();
        };
        if (postLoad(prefCell) <=
            options.balanceFactor * postLoad(best) + 1e-12) {
          best = prefCell;
        }
      }
    }
    part.taskCell[static_cast<std::size_t>(j)] = static_cast<int>(best);
    part.cellFmax[best] += inst.task(j).fmax();
  }
  return part;
}

}  // namespace dsct::shard
