// Dense two-phase primal simplex.
//
// Handles arbitrary variable bounds (finite/infinite/free/fixed) by
// substitution into a non-negative "tilde" space, all row senses via
// slack/surplus + artificial variables, and anti-cycling by switching from
// Dantzig pricing to Bland's rule after a pivot-count threshold.
//
// This is deliberately a tableau method: dense, simple, verifiable. It is the
// stand-in for the paper's commercial LP/MIP solver; its role in the
// reproduction is correctness at small-to-medium sizes plus honest time-limit
// behaviour at large sizes (Fig. 4, Table 1).
#pragma once

#include <span>
#include <vector>

#include "solver/model.h"
#include "util/cancel.h"

namespace dsct::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,
};

const char* toString(SolveStatus status);

struct LpOptions {
  double timeLimitSeconds = -1.0;  ///< <= 0 means unlimited
  long maxIterations = -1;         ///< <= 0 means automatic (scales with size)
  double tol = 1e-9;               ///< reduced-cost / ratio tolerance
  /// Cooperative stop token, polled alongside the time limit every 64
  /// pivots. A stop reads as kTimeLimit with `cancelled` set on the result.
  const dsct::CancelToken* cancel = nullptr;
};

struct LpResult {
  SolveStatus status = SolveStatus::kInfeasible;
  /// True when the solve stopped at a cancel-token poll (status is then
  /// kTimeLimit — the token subsumes the wall-clock limit).
  bool cancelled = false;
  double objective = 0.0;      ///< c^T x in the model's direction
  std::vector<double> x;       ///< primal values (model variable order)
  /// Shadow prices, one per model constraint: d(objective)/d(rhs_i) in the
  /// model's direction (maximisation: marginal objective gain of relaxing
  /// the row). Zero for non-binding rows (complementary slackness). Only
  /// populated on kOptimal.
  std::vector<double> duals;
  long iterations = 0;
  double solveSeconds = 0.0;
};

/// Solve the LP relaxation of `model` (integrality is ignored).
LpResult solveLp(const Model& model, const LpOptions& options = {});

/// Same, with per-variable bound overrides (used by branch-and-bound to fix
/// or tighten variables without copying the model).
LpResult solveLpWithBounds(const Model& model, std::span<const double> lower,
                           std::span<const double> upper,
                           const LpOptions& options = {});

}  // namespace dsct::lp
