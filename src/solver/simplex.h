// Linear-programming engines behind one entry point.
//
// Two interchangeable engines sit behind solveLp / solveLpWithBounds:
//
//  - kRevised (default): bounded-variable revised simplex with CSC sparse
//    column storage, a product-form (eta-file) basis inverse with periodic
//    refactorisation, Dantzig + partial pricing, and explicit lower/upper
//    variable bounds — box constraints like the relaxation's 0 ≤ z ≤ 1 are
//    handled as bounds, not rows. Supports warm starts from a saved LpBasis
//    (cross-epoch serving, branch-and-bound node inheritance).
//
//  - kDense: the original dense two-phase tableau. Kept behind this flag as
//    the differential reference for the LP test battery
//    (tests/solver_lp_differential_test.cpp); it ignores warm bases.
//
// Both engines handle arbitrary bounds (finite/infinite/free/fixed), all row
// senses, row equilibration for badly scaled models, and anti-cycling by
// switching from Dantzig pricing to Bland's rule after a pivot-count
// threshold. This layer is the stand-in for the paper's commercial LP/MIP
// solver; its role in the reproduction is correctness at small-to-medium
// sizes plus honest time-limit behaviour at large sizes (Fig. 4, Table 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "solver/model.h"
#include "util/cancel.h"

namespace dsct::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,
};

const char* toString(SolveStatus status);

enum class LpEngine {
  kRevised,  ///< sparse bounded-variable revised simplex (default)
  kDense,    ///< dense two-phase tableau (differential reference)
};

/// Per-column basis status in the revised engine's column space: the model's
/// structural variables first, then one logical (slack/surplus) column per
/// constraint row.
enum class BasisStatus : std::uint8_t {
  kAtLower = 0,  ///< nonbasic at its lower bound (also: fixed columns)
  kAtUpper = 1,  ///< nonbasic at its upper bound
  kBasic = 2,
  kFree = 3,  ///< nonbasic free column, held at zero
};

/// Snapshot of a revised-simplex basis: one status per column over
/// numVariables structural + numConstraints logical columns. Returned on
/// every optimal revised solve and accepted back through
/// LpOptions::warmBasis; restoring it re-enters phase 2 directly when the
/// basis is still primal feasible for the (possibly drifted) RHS/bounds.
struct LpBasis {
  std::vector<BasisStatus> status;
  int numRows = 0;  ///< constraint count the snapshot was taken against

  bool empty() const { return status.empty(); }
  /// Dimension check: does this snapshot fit a model with the given shape?
  bool compatible(int numVariables, int numConstraints) const {
    return numRows == numConstraints &&
           static_cast<int>(status.size()) == numVariables + numConstraints;
  }
  friend bool operator==(const LpBasis&, const LpBasis&) = default;
};

/// Work and warm-start telemetry of one (or, summed, many) LP solves.
struct LpCounters {
  long pivots = 0;        ///< basis-changing pivots, both phases
  long phase1Pivots = 0;  ///< subset of `pivots` spent restoring feasibility
  long boundFlips = 0;    ///< nonbasic bound-to-bound moves (no basis change)
  long refactorizations = 0;  ///< eta-file rebuilds (periodic + recovery)
  long warmStartsAttempted = 0;  ///< solves entered with a warm basis
  long warmStartsUsed = 0;       ///< warm basis primal feasible: phase 1 skipped
  long warmStartsRepaired = 0;   ///< warm basis installed but phase 1 still ran
  long warmStartsRejected = 0;   ///< warm basis unusable (shape/fingerprint)

  void add(const LpCounters& other) {
    pivots += other.pivots;
    phase1Pivots += other.phase1Pivots;
    boundFlips += other.boundFlips;
    refactorizations += other.refactorizations;
    warmStartsAttempted += other.warmStartsAttempted;
    warmStartsUsed += other.warmStartsUsed;
    warmStartsRepaired += other.warmStartsRepaired;
    warmStartsRejected += other.warmStartsRejected;
  }
};

struct LpOptions {
  double timeLimitSeconds = -1.0;  ///< <= 0 means unlimited
  long maxIterations = -1;         ///< <= 0 means automatic (scales with size)
  double tol = 1e-9;               ///< reduced-cost / ratio tolerance
  /// Cooperative stop token, polled alongside the time limit every 64
  /// pivots (and between columns inside a refactorisation). A stop reads as
  /// kTimeLimit with `cancelled` set on the result.
  const dsct::CancelToken* cancel = nullptr;
  /// Which engine solves the LP. The dense tableau is retained for one
  /// release as the differential reference.
  LpEngine engine = LpEngine::kRevised;
  /// Optional starting basis (revised engine only; the dense engine ignores
  /// it). Must outlive the solve. A snapshot that does not fit the model's
  /// shape is rejected (counted in LpCounters::warmStartsRejected) and the
  /// solve falls back to the cold all-logical start — a warm basis can never
  /// change the reported optimum, only the pivot path to it.
  const LpBasis* warmBasis = nullptr;
  /// Refactorise the eta file every this many pivots (revised engine);
  /// <= 0 means the built-in default (64).
  int refactorInterval = 0;
};

struct LpResult {
  SolveStatus status = SolveStatus::kInfeasible;
  /// True when the solve stopped at a cancel-token poll (status is then
  /// kTimeLimit — the token subsumes the wall-clock limit).
  bool cancelled = false;
  double objective = 0.0;      ///< c^T x in the model's direction
  std::vector<double> x;       ///< primal values (model variable order)
  /// Shadow prices, one per model constraint: d(objective)/d(rhs_i) in the
  /// model's direction (maximisation: marginal objective gain of relaxing
  /// the row). Zero for non-binding rows (complementary slackness). Only
  /// populated on kOptimal.
  std::vector<double> duals;
  long iterations = 0;
  double solveSeconds = 0.0;
  /// Final basis snapshot; populated on kOptimal by the revised engine
  /// (empty from the dense engine). Feed back via LpOptions::warmBasis.
  LpBasis basis;
  /// Pivot/refactorisation/warm-start telemetry (dense engine fills only
  /// `pivots`).
  LpCounters counters;
};

/// Solve the LP relaxation of `model` (integrality is ignored).
LpResult solveLp(const Model& model, const LpOptions& options = {});

/// Same, with per-variable bound overrides (used by branch-and-bound to fix
/// or tighten variables without copying the model).
LpResult solveLpWithBounds(const Model& model, std::span<const double> lower,
                           std::span<const double> upper,
                           const LpOptions& options = {});

}  // namespace dsct::lp
