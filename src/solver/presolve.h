// LP/MIP presolve: cheap model reductions applied before the simplex.
//
// Implemented reductions (each preserves the optimal objective):
//  * singleton rows  — a row with one variable becomes a bound;
//  * empty rows      — dropped after a consistency check;
//  * forcing rows    — a ≤ row whose minimum activity equals the rhs fixes
//                      every participating variable at its relevant bound;
//  * redundant rows  — a row whose maximum activity cannot exceed the rhs
//                      is dropped.
// Bounds are tightened in place; row reductions produce a smaller model
// plus the mapping needed to restore a full solution vector.
#pragma once

#include <optional>
#include <vector>

#include "solver/model.h"
#include "solver/simplex.h"

namespace dsct::lp {

struct PresolveResult {
  Model reduced;
  /// reducedRowOf[i] = row index in `reduced` for original row i, or -1 if
  /// the row was eliminated.
  std::vector<int> reducedRowOf;
  /// Tightened variable bounds (same variable order as the original).
  std::vector<double> lower;
  std::vector<double> upper;
  bool infeasible = false;
  int rowsEliminated = 0;
  int boundsTightened = 0;

  /// Solution vectors transfer directly: variables are never eliminated,
  /// only their bounds tightened, so x in the reduced model is x in the
  /// original.
};

PresolveResult presolve(const Model& model);

/// Convenience: presolve, solve, and report in terms of the original model.
LpResult presolveAndSolve(const Model& model, const LpOptions& options = {});

}  // namespace dsct::lp
