// Branch-and-bound mixed-integer solver on top of the simplex engine.
//
// Depth-first search with most-fractional branching, LP bounding, optional
// warm incumbent (e.g. the approximation algorithm's solution as a MIP
// start), and a wall-clock time limit — the same operating regime as the
// paper's use of a commercial MIP solver with a 60 s cut-off (Fig. 4).
#pragma once

#include <optional>
#include <vector>

#include "solver/model.h"
#include "solver/simplex.h"

namespace dsct::lp {

struct MipOptions {
  double timeLimitSeconds = -1.0;  ///< <= 0 means unlimited
  long maxNodes = -1;              ///< <= 0 means unlimited
  double integralityTol = 1e-6;
  double absGapTol = 1e-7;  ///< stop when bound − incumbent <= absGapTol
  LpOptions lp;             ///< options for node LP solves
  /// Optional feasible starting point (length = numVariables); pruning
  /// starts from its objective.
  std::optional<std::vector<double>> initialSolution;
  /// Run a rounding dive at the root (repeatedly fix the most fractional
  /// integer to its nearest value and re-solve) to seed an incumbent when
  /// no initialSolution is given. Off by default to keep the solver
  /// baseline of the reproduction unembellished.
  bool rootDive = false;
  /// Cooperative stop token, polled at every node expansion and forwarded
  /// into the node LP solves. A stop reads as kTimeLimit with `cancelled`
  /// set; the incumbent found so far is returned.
  const dsct::CancelToken* cancel = nullptr;
};

struct MipResult {
  SolveStatus status = SolveStatus::kInfeasible;
  bool timedOut = false;
  /// True when the search stopped at a cancel-token poll (in the node loop
  /// or inside a node LP) rather than its own wall-clock/node limits.
  bool cancelled = false;
  bool hasSolution = false;
  double objective = 0.0;  ///< incumbent objective (model direction)
  double bestBound = 0.0;  ///< proven bound on the optimum
  std::vector<double> x;
  long nodes = 0;
  double solveSeconds = 0.0;
  /// Summed LP telemetry over every node (and root-dive) LP solve.
  LpCounters lpCounters;
  /// Basis of the root relaxation's optimal LP (empty when the root LP did
  /// not reach optimality or the dense engine ran). Feed back through
  /// MipOptions::lp.warmBasis to warm-start a structurally identical model —
  /// e.g. the next serving epoch's instance after bound/RHS drift.
  LpBasis rootBasis;
  /// Relative gap |bound − objective| / max(1, |objective|).
  double gap() const;
};

MipResult solveMip(const Model& model, const MipOptions& options = {});

}  // namespace dsct::lp
