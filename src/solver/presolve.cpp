#include "solver/presolve.h"

#include <algorithm>
#include <cmath>

#include "solver/simplex.h"
#include "util/check.h"

namespace dsct::lp {

namespace {

constexpr double kTol = 1e-9;

/// Minimum and maximum possible activity of a row under the given bounds;
/// infinities propagate.
struct Activity {
  double min = 0.0;
  double max = 0.0;
};

Activity rowActivity(const Constraint& row, const std::vector<double>& lower,
                     const std::vector<double>& upper) {
  Activity a;
  for (const auto& [var, coeff] : row.coeffs) {
    const double lo = lower[static_cast<std::size_t>(var)];
    const double hi = upper[static_cast<std::size_t>(var)];
    if (coeff >= 0.0) {
      a.min += coeff * lo;
      a.max += coeff * hi;
    } else {
      a.min += coeff * hi;
      a.max += coeff * lo;
    }
  }
  return a;
}

}  // namespace

PresolveResult presolve(const Model& model) {
  PresolveResult out;
  const int nvars = model.numVariables();
  out.lower.resize(static_cast<std::size_t>(nvars));
  out.upper.resize(static_cast<std::size_t>(nvars));
  for (int j = 0; j < nvars; ++j) {
    out.lower[static_cast<std::size_t>(j)] = model.variable(j).lower;
    out.upper[static_cast<std::size_t>(j)] = model.variable(j).upper;
  }
  out.reducedRowOf.assign(static_cast<std::size_t>(model.numConstraints()),
                          -1);

  // Pass 1: singleton rows become bounds; iterate to a fixed point because
  // a new bound can turn other rows redundant.
  std::vector<char> eliminated(
      static_cast<std::size_t>(model.numConstraints()), 0);
  bool changed = true;
  int sweeps = 0;
  while (changed && sweeps++ < 8) {
    changed = false;
    for (int i = 0; i < model.numConstraints(); ++i) {
      if (eliminated[static_cast<std::size_t>(i)]) continue;
      const Constraint& row = model.constraint(i);
      // Count structural (non-zero coefficient) entries.
      int nz = 0;
      int var = -1;
      double coeff = 0.0;
      for (const auto& [v, c] : row.coeffs) {
        if (c != 0.0) {
          ++nz;
          var = v;
          coeff = c;
        }
      }
      if (nz == 0) {
        const bool ok =
            (row.sense == Sense::kLe && row.rhs >= -kTol) ||
            (row.sense == Sense::kGe && row.rhs <= kTol) ||
            (row.sense == Sense::kEq && std::fabs(row.rhs) <= kTol);
        if (!ok) {
          out.infeasible = true;
          return out;
        }
        eliminated[static_cast<std::size_t>(i)] = 1;
        ++out.rowsEliminated;
        changed = true;
        continue;
      }
      if (nz == 1) {
        // a·x {<=,>=,==} b  →  bound on x.
        double& lo = out.lower[static_cast<std::size_t>(var)];
        double& hi = out.upper[static_cast<std::size_t>(var)];
        const double bound = row.rhs / coeff;
        const bool upperBound = (row.sense == Sense::kLe) == (coeff > 0.0);
        if (row.sense == Sense::kEq) {
          if (bound < lo - kTol || bound > hi + kTol) {
            out.infeasible = true;
            return out;
          }
          if (lo != bound || hi != bound) ++out.boundsTightened;
          lo = hi = std::clamp(bound, lo, hi);
        } else if (upperBound) {
          if (bound < hi - kTol) {
            hi = bound;
            ++out.boundsTightened;
          }
        } else {
          if (bound > lo + kTol) {
            lo = bound;
            ++out.boundsTightened;
          }
        }
        if (lo > hi + kTol) {
          out.infeasible = true;
          return out;
        }
        eliminated[static_cast<std::size_t>(i)] = 1;
        ++out.rowsEliminated;
        changed = true;
        continue;
      }
      // Redundancy / forcing via activity bounds.
      const Activity a = rowActivity(row, out.lower, out.upper);
      if (row.sense == Sense::kLe) {
        if (a.max <= row.rhs + kTol) {
          eliminated[static_cast<std::size_t>(i)] = 1;  // redundant
          ++out.rowsEliminated;
          changed = true;
        } else if (a.min > row.rhs + kTol) {
          out.infeasible = true;
          return out;
        } else if (std::isfinite(a.min) &&
                   std::fabs(a.min - row.rhs) <= kTol) {
          // Forcing: every variable pinned at the bound achieving a.min.
          for (const auto& [v, c] : row.coeffs) {
            if (c == 0.0) continue;
            double& lo = out.lower[static_cast<std::size_t>(v)];
            double& hi = out.upper[static_cast<std::size_t>(v)];
            if (c > 0.0 && hi != lo) {
              hi = lo;
              ++out.boundsTightened;
            } else if (c < 0.0 && lo != hi) {
              lo = hi;
              ++out.boundsTightened;
            }
          }
          eliminated[static_cast<std::size_t>(i)] = 1;
          ++out.rowsEliminated;
          changed = true;
        }
      } else if (row.sense == Sense::kGe) {
        if (a.min >= row.rhs - kTol) {
          eliminated[static_cast<std::size_t>(i)] = 1;
          ++out.rowsEliminated;
          changed = true;
        } else if (a.max < row.rhs - kTol) {
          out.infeasible = true;
          return out;
        }
      } else {  // kEq
        if (a.min > row.rhs + kTol || a.max < row.rhs - kTol) {
          out.infeasible = true;
          return out;
        }
      }
    }
  }

  // Build the reduced model: tightened bounds, surviving rows.
  out.reduced.setMaximize(model.maximize());
  for (int j = 0; j < nvars; ++j) {
    const Variable& v = model.variable(j);
    out.reduced.addVariable(out.lower[static_cast<std::size_t>(j)],
                            out.upper[static_cast<std::size_t>(j)],
                            v.objective, v.type, v.name);
  }
  for (int i = 0; i < model.numConstraints(); ++i) {
    if (eliminated[static_cast<std::size_t>(i)]) continue;
    const Constraint& row = model.constraint(i);
    out.reducedRowOf[static_cast<std::size_t>(i)] =
        out.reduced.addConstraint(row.coeffs, row.sense, row.rhs, row.name);
  }
  return out;
}

LpResult presolveAndSolve(const Model& model, const LpOptions& options) {
  const PresolveResult pre = presolve(model);
  if (pre.infeasible) {
    LpResult result;
    result.status = SolveStatus::kInfeasible;
    return result;
  }
  LpResult result = solveLp(pre.reduced, options);
  if (result.status == SolveStatus::kOptimal) {
    // Map duals back to the original rows (eliminated rows price at 0 —
    // they were redundant or absorbed into bounds).
    std::vector<double> duals(
        static_cast<std::size_t>(model.numConstraints()), 0.0);
    for (int i = 0; i < model.numConstraints(); ++i) {
      const int reducedRow = pre.reducedRowOf[static_cast<std::size_t>(i)];
      if (reducedRow >= 0) {
        duals[static_cast<std::size_t>(i)] =
            result.duals[static_cast<std::size_t>(reducedRow)];
      }
    }
    result.duals = std::move(duals);
    // Objective and x are already in the original variable space.
  }
  return result;
}

}  // namespace dsct::lp
