// Sparse bounded-variable revised simplex (DESIGN.md §17).
//
// Column space: the model's n structural variables first, then one logical
// (slack/surplus) column per row, so every row reads  A·x + s = b  with the
// row sense encoded in the logical's bounds (Le: s ∈ [0,∞), Ge: s ∈ (−∞,0],
// Eq: s ∈ [0,0]). Structural columns are stored CSC after row equilibration;
// logical columns are implicit unit vectors. Variable bounds are handled
// natively: a nonbasic column sits at one of its bounds (or at zero when
// free), and a step that hits the entering column's opposite bound is a
// bound flip — no basis change, no eta.
//
// The basis inverse is a product-form eta file rebuilt by periodic
// refactorisation (re-pivoting the basic columns fewest-nonzeros-first with
// partial pivoting; a dependent column is repaired by swapping in the
// logical of an unpivoted row). Phase 1 is the composite, artificial-free
// variant: starting from any basis it minimises the total bound violation of
// the basic variables with piecewise costs (−1 below lower, +1 above upper)
// and a first-breakpoint ratio test, which is what lets a warm-started epoch
// skip phase 1 entirely whenever the saved basis is still primal feasible.
//
// After phase 2 claims optimality the engine refactorises the final basis
// and recomputes primal values and duals from scratch, so the reported
// solution is a function of the final basis alone — not of the pivot path
// that reached it. That is what makes "warm starts on" and "warm starts off"
// bit-identical whenever both land on the same optimal basis
// (tests/solver_warm_start_test.cpp pins this).
#include "solver/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.h"
#include "util/timer.h"

namespace dsct::lp::detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Primal feasibility tolerance (matches the dense engine's kFeasTol).
constexpr double kFeasTol = 1e-7;
/// Smallest |pivot| accepted when factorising a basic column.
constexpr double kFactorPivotTol = 1e-11;
/// |alpha_i| below this cannot block the ratio test.
constexpr double kRatioTol = 1e-9;
/// Eta entries below this magnitude are dropped (sparsity vs exactness).
constexpr double kEtaDropTol = 1e-12;
/// Cancel/deadline poll cadence, in iterations (and refactor columns).
constexpr int kPollStride = 64;
/// Bounded rounds of the optimality-confirmation loop (refactorise, verify,
/// resume pivoting on numerical drift).
constexpr int kConfirmRounds = 3;

/// One product-form elementary transform: the pivot column d = B⁻¹·a_q at
/// pivot row `row`, split into the pivot value and the off-pivot nonzeros.
struct Eta {
  int row = 0;
  double pivot = 1.0;
  std::vector<int> idx;
  std::vector<double> val;
};

class RevisedSimplex {
 public:
  RevisedSimplex(const Model& model, std::span<const double> lower,
                 std::span<const double> upper, const LpOptions& options)
      : model_(model), varLower_(lower), varUpper_(upper), options_(options),
        deadline_(options.timeLimitSeconds) {}

  LpResult run();

 private:
  // --- setup -------------------------------------------------------------
  void build();
  void coldStatuses();
  bool installWarm(const LpBasis& warm);

  // --- basis inverse -----------------------------------------------------
  bool refactor();                // false only when cancelled mid-rebuild
  bool refactorAndRecompute();
  void resetToLogicalBasis();
  void recomputePrimal();
  void ftran(std::vector<double>& v) const;
  /// FTRAN that tracks the nonzero support of v; `supp` must already hold
  /// v's initial support, marked in mark_ with markEpoch_.
  void ftranTracked(std::vector<double>& v, std::vector<int>& supp);
  void btran(std::vector<double>& v) const;
  void loadColumn(int j, std::vector<double>& v, std::vector<int>& supp);
  void pushEta(int pivotRow, const std::vector<double>& v,
               const std::vector<int>& supp);
  void clearScratch(std::vector<double>& v, std::vector<int>& supp);

  // --- simplex loop ------------------------------------------------------
  SolveStatus runPhase(int phase);
  void computePhaseCosts(int phase);
  int priceEntering(int phase, bool bland);
  double reducedCost(int phase, int j) const;
  double maxInfeasibility() const;
  bool dualFeasible();

  // --- results -----------------------------------------------------------
  bool pollStop();
  LpResult finish(LpResult result);
  LpResult stoppedResult(SolveStatus status);
  LpResult optimalResult();

  const Model& model_;
  std::span<const double> varLower_;
  std::span<const double> varUpper_;
  const LpOptions& options_;
  const TimeLimit deadline_;
  Stopwatch watch_;

  int n_ = 0;  ///< structural columns
  int m_ = 0;  ///< rows (= logical columns)
  int N_ = 0;  ///< n_ + m_

  // CSC storage of the scaled structural columns.
  std::vector<int> colStart_;
  std::vector<int> rowIdx_;
  std::vector<double> colVal_;

  std::vector<double> cost_;      ///< internal minimisation costs, size N
  std::vector<double> lower_;     ///< column lower bounds, size N
  std::vector<double> upper_;     ///< column upper bounds, size N
  std::vector<double> rhs_;       ///< scaled right-hand sides, size m
  std::vector<double> rowScale_;  ///< equilibration factor per row

  std::vector<BasisStatus> status_;  ///< size N
  std::vector<double> value_;        ///< primal value per column, size N
  std::vector<int> basicVar_;        ///< column basic in row i, size m

  std::vector<Eta> etas_;
  std::size_t etasAtRefactor_ = 0;  ///< eta-file length after the last rebuild

  // Scratch (sized m): pivot column, its support, BTRAN prices, basic costs.
  std::vector<double> alpha_;
  std::vector<int> alphaSupp_;
  std::vector<int> mark_;
  int markEpoch_ = 0;
  std::vector<double> y_;
  std::vector<double> cb_;

  long iterations_ = 0;
  long maxIterations_ = 0;
  long blandThreshold_ = 0;
  int refactorEvery_ = 64;
  int pricingCursor_ = 0;
  bool cancelledFlag_ = false;
  bool justRefactored_ = false;

  LpCounters counters_;
};

void RevisedSimplex::build() {
  n_ = model_.numVariables();
  m_ = model_.numConstraints();
  N_ = n_ + m_;

  lower_.assign(static_cast<std::size_t>(N_), 0.0);
  upper_.assign(static_cast<std::size_t>(N_), 0.0);
  cost_.assign(static_cast<std::size_t>(N_), 0.0);
  const double dir = model_.maximize() ? -1.0 : 1.0;
  for (int j = 0; j < n_; ++j) {
    lower_[static_cast<std::size_t>(j)] = varLower_[static_cast<std::size_t>(j)];
    upper_[static_cast<std::size_t>(j)] = varUpper_[static_cast<std::size_t>(j)];
    cost_[static_cast<std::size_t>(j)] = dir * model_.variable(j).objective;
  }
  for (int i = 0; i < m_; ++i) {
    const int s = n_ + i;
    switch (model_.constraint(i).sense) {
      case Sense::kLe:
        lower_[static_cast<std::size_t>(s)] = 0.0;
        upper_[static_cast<std::size_t>(s)] = kInf;
        break;
      case Sense::kGe:
        lower_[static_cast<std::size_t>(s)] = -kInf;
        upper_[static_cast<std::size_t>(s)] = 0.0;
        break;
      case Sense::kEq:
        lower_[static_cast<std::size_t>(s)] = 0.0;
        upper_[static_cast<std::size_t>(s)] = 0.0;
        break;
    }
  }

  // Column-major fill of the constraint matrix, merging duplicate (row, var)
  // entries by summation (the dense engine accumulates them the same way).
  std::vector<int> count(static_cast<std::size_t>(n_) + 1, 0);
  for (int i = 0; i < m_; ++i) {
    for (const auto& [var, coeff] : model_.constraint(i).coeffs) {
      if (coeff == 0.0) continue;
      ++count[static_cast<std::size_t>(var) + 1];
    }
  }
  colStart_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (int j = 0; j < n_; ++j) {
    colStart_[static_cast<std::size_t>(j) + 1] =
        colStart_[static_cast<std::size_t>(j)] +
        count[static_cast<std::size_t>(j) + 1];
  }
  const int nnz = colStart_[static_cast<std::size_t>(n_)];
  rowIdx_.assign(static_cast<std::size_t>(nnz), 0);
  colVal_.assign(static_cast<std::size_t>(nnz), 0.0);
  std::vector<int> cursor(colStart_.begin(), colStart_.end() - 1);
  for (int i = 0; i < m_; ++i) {
    for (const auto& [var, coeff] : model_.constraint(i).coeffs) {
      if (coeff == 0.0) continue;
      const int k = cursor[static_cast<std::size_t>(var)]++;
      rowIdx_[static_cast<std::size_t>(k)] = i;
      colVal_[static_cast<std::size_t>(k)] = coeff;
    }
  }
  // Per-column: sort by row, merge duplicates, drop exact zeros.
  {
    std::vector<std::pair<int, double>> entries;
    int write = 0;
    int readStart = 0;
    for (int j = 0; j < n_; ++j) {
      const int readEnd = colStart_[static_cast<std::size_t>(j) + 1];
      entries.clear();
      for (int k = readStart; k < readEnd; ++k) {
        entries.emplace_back(rowIdx_[static_cast<std::size_t>(k)],
                             colVal_[static_cast<std::size_t>(k)]);
      }
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      readStart = readEnd;
      colStart_[static_cast<std::size_t>(j)] = write;
      for (std::size_t k = 0; k < entries.size();) {
        int row = entries[k].first;
        double sum = 0.0;
        while (k < entries.size() && entries[k].first == row) {
          sum += entries[k].second;
          ++k;
        }
        if (sum == 0.0) continue;
        rowIdx_[static_cast<std::size_t>(write)] = row;
        colVal_[static_cast<std::size_t>(write)] = sum;
        ++write;
      }
    }
    colStart_[static_cast<std::size_t>(n_)] = write;
    rowIdx_.resize(static_cast<std::size_t>(write));
    colVal_.resize(static_cast<std::size_t>(write));
  }

  // Row equilibration, same policy as the dense engine: normalise the
  // largest coefficient magnitude towards 1 when it falls outside [0.25, 4];
  // duals are un-scaled on extraction.
  rowScale_.assign(static_cast<std::size_t>(m_), 1.0);
  {
    std::vector<double> maxAbs(static_cast<std::size_t>(m_), 0.0);
    for (std::size_t k = 0; k < colVal_.size(); ++k) {
      double& cur = maxAbs[static_cast<std::size_t>(rowIdx_[k])];
      cur = std::max(cur, std::fabs(colVal_[k]));
    }
    for (int i = 0; i < m_; ++i) {
      const double ma = maxAbs[static_cast<std::size_t>(i)];
      if (ma > 0.0 && (ma > 4.0 || ma < 0.25)) {
        rowScale_[static_cast<std::size_t>(i)] = 1.0 / ma;
      }
    }
    for (std::size_t k = 0; k < colVal_.size(); ++k) {
      colVal_[k] *= rowScale_[static_cast<std::size_t>(rowIdx_[k])];
    }
  }
  rhs_.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    rhs_[static_cast<std::size_t>(i)] =
        model_.constraint(i).rhs * rowScale_[static_cast<std::size_t>(i)];
  }

  status_.assign(static_cast<std::size_t>(N_), BasisStatus::kAtLower);
  value_.assign(static_cast<std::size_t>(N_), 0.0);
  basicVar_.assign(static_cast<std::size_t>(m_), -1);
  alpha_.assign(static_cast<std::size_t>(m_), 0.0);
  mark_.assign(static_cast<std::size_t>(m_), -1);
  y_.assign(static_cast<std::size_t>(m_), 0.0);
  cb_.assign(static_cast<std::size_t>(m_), 0.0);

  maxIterations_ = options_.maxIterations > 0
                       ? options_.maxIterations
                       : 200L * (m_ + N_) + 20000L;
  blandThreshold_ = std::max<long>(2000, 20L * (m_ + N_));
  refactorEvery_ = options_.refactorInterval > 0 ? options_.refactorInterval : 64;
}

void RevisedSimplex::coldStatuses() {
  for (int j = 0; j < n_; ++j) {
    const double lo = lower_[static_cast<std::size_t>(j)];
    const double hi = upper_[static_cast<std::size_t>(j)];
    status_[static_cast<std::size_t>(j)] =
        !std::isinf(lo) ? BasisStatus::kAtLower
        : !std::isinf(hi) ? BasisStatus::kAtUpper
                          : BasisStatus::kFree;
  }
  for (int i = 0; i < m_; ++i) {
    status_[static_cast<std::size_t>(n_ + i)] = BasisStatus::kBasic;
  }
}

bool RevisedSimplex::installWarm(const LpBasis& warm) {
  if (!warm.compatible(n_, m_)) return false;
  // Bounds may have drifted since the snapshot (MIP node fixings, epoch
  // drift): a nonbasic status pointing at a bound that no longer exists is
  // retargeted before installation rather than rejected.
  std::vector<BasisStatus> st(warm.status);
  int basicCount = 0;
  for (int j = 0; j < N_; ++j) {
    BasisStatus s = st[static_cast<std::size_t>(j)];
    const double lo = lower_[static_cast<std::size_t>(j)];
    const double hi = upper_[static_cast<std::size_t>(j)];
    if (s != BasisStatus::kBasic && lo == hi) {
      s = BasisStatus::kAtLower;
    } else {
      switch (s) {
        case BasisStatus::kBasic:
          ++basicCount;
          break;
        case BasisStatus::kAtLower:
          if (std::isinf(lo)) {
            s = std::isinf(hi) ? BasisStatus::kFree : BasisStatus::kAtUpper;
          }
          break;
        case BasisStatus::kAtUpper:
          if (std::isinf(hi)) {
            s = std::isinf(lo) ? BasisStatus::kFree : BasisStatus::kAtLower;
          }
          break;
        case BasisStatus::kFree:
          if (!std::isinf(lo)) {
            s = BasisStatus::kAtLower;
          } else if (!std::isinf(hi)) {
            s = BasisStatus::kAtUpper;
          }
          break;
      }
    }
    st[static_cast<std::size_t>(j)] = s;
  }
  if (basicCount != m_) return false;
  std::copy(st.begin(), st.end(), status_.begin());
  return true;
}

void RevisedSimplex::resetToLogicalBasis() {
  for (int j = 0; j < n_; ++j) {
    if (status_[static_cast<std::size_t>(j)] != BasisStatus::kBasic) continue;
    const double lo = lower_[static_cast<std::size_t>(j)];
    const double hi = upper_[static_cast<std::size_t>(j)];
    status_[static_cast<std::size_t>(j)] =
        !std::isinf(lo) ? BasisStatus::kAtLower
        : !std::isinf(hi) ? BasisStatus::kAtUpper
                          : BasisStatus::kFree;
  }
  for (int i = 0; i < m_; ++i) {
    status_[static_cast<std::size_t>(n_ + i)] = BasisStatus::kBasic;
    basicVar_[static_cast<std::size_t>(i)] = n_ + i;
  }
  etas_.clear();
  etasAtRefactor_ = 0;
}

void RevisedSimplex::loadColumn(int j, std::vector<double>& v,
                                std::vector<int>& supp) {
  ++markEpoch_;
  if (j < n_) {
    for (int k = colStart_[static_cast<std::size_t>(j)];
         k < colStart_[static_cast<std::size_t>(j) + 1]; ++k) {
      const int i = rowIdx_[static_cast<std::size_t>(k)];
      v[static_cast<std::size_t>(i)] = colVal_[static_cast<std::size_t>(k)];
      mark_[static_cast<std::size_t>(i)] = markEpoch_;
      supp.push_back(i);
    }
  } else {
    const int i = j - n_;
    v[static_cast<std::size_t>(i)] = 1.0;
    mark_[static_cast<std::size_t>(i)] = markEpoch_;
    supp.push_back(i);
  }
}

void RevisedSimplex::ftran(std::vector<double>& v) const {
  for (const Eta& e : etas_) {
    double& vr = v[static_cast<std::size_t>(e.row)];
    if (vr == 0.0) continue;
    vr /= e.pivot;
    const double f = vr;
    for (std::size_t k = 0; k < e.idx.size(); ++k) {
      v[static_cast<std::size_t>(e.idx[k])] -= e.val[k] * f;
    }
  }
}

void RevisedSimplex::ftranTracked(std::vector<double>& v,
                                  std::vector<int>& supp) {
  for (const Eta& e : etas_) {
    double& vr = v[static_cast<std::size_t>(e.row)];
    if (vr == 0.0) continue;
    vr /= e.pivot;
    const double f = vr;
    for (std::size_t k = 0; k < e.idx.size(); ++k) {
      const int i = e.idx[k];
      v[static_cast<std::size_t>(i)] -= e.val[k] * f;
      if (mark_[static_cast<std::size_t>(i)] != markEpoch_) {
        mark_[static_cast<std::size_t>(i)] = markEpoch_;
        supp.push_back(i);
      }
    }
  }
}

void RevisedSimplex::btran(std::vector<double>& v) const {
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = v[static_cast<std::size_t>(it->row)];
    for (std::size_t k = 0; k < it->idx.size(); ++k) {
      acc -= it->val[k] * v[static_cast<std::size_t>(it->idx[k])];
    }
    v[static_cast<std::size_t>(it->row)] = acc / it->pivot;
  }
}

void RevisedSimplex::pushEta(int pivotRow, const std::vector<double>& v,
                             const std::vector<int>& supp) {
  Eta e;
  e.row = pivotRow;
  e.pivot = v[static_cast<std::size_t>(pivotRow)];
  for (const int i : supp) {
    if (i == pivotRow) continue;
    const double a = v[static_cast<std::size_t>(i)];
    if (std::fabs(a) > kEtaDropTol) {
      e.idx.push_back(i);
      e.val.push_back(a);
    }
  }
  // An identity transform contributes nothing; skipping it keeps the
  // eta file empty for the all-logical basis.
  if (e.idx.empty() && e.pivot == 1.0) return;
  etas_.push_back(std::move(e));
}

void RevisedSimplex::clearScratch(std::vector<double>& v,
                                  std::vector<int>& supp) {
  for (const int i : supp) v[static_cast<std::size_t>(i)] = 0.0;
  supp.clear();
}

bool RevisedSimplex::refactor() {
  ++counters_.refactorizations;
  etas_.clear();
  std::vector<int> cols;
  cols.reserve(static_cast<std::size_t>(m_));
  for (int j = 0; j < N_; ++j) {
    if (status_[static_cast<std::size_t>(j)] == BasisStatus::kBasic) {
      cols.push_back(j);
    }
  }
  DSCT_CHECK(static_cast<int>(cols.size()) == m_);
  // Fewest-nonzeros-first keeps early etas sparse (logicals, nnz 1, go
  // first); ties break on column index for determinism.
  std::sort(cols.begin(), cols.end(), [&](int a, int b) {
    const int na = a < n_ ? colStart_[static_cast<std::size_t>(a) + 1] -
                                colStart_[static_cast<std::size_t>(a)]
                          : 1;
    const int nb = b < n_ ? colStart_[static_cast<std::size_t>(b) + 1] -
                                colStart_[static_cast<std::size_t>(b)]
                          : 1;
    return na != nb ? na < nb : a < b;
  });
  std::vector<char> pivoted(static_cast<std::size_t>(m_), 0);
  std::fill(basicVar_.begin(), basicVar_.end(), -1);
  std::vector<int> dropped;
  int processed = 0;
  for (const int c : cols) {
    if ((processed++ % kPollStride) == 0 && pollStop()) return false;
    loadColumn(c, alpha_, alphaSupp_);
    ftranTracked(alpha_, alphaSupp_);
    int p = -1;
    double best = kFactorPivotTol;
    for (const int i : alphaSupp_) {
      if (pivoted[static_cast<std::size_t>(i)]) continue;
      const double a = std::fabs(alpha_[static_cast<std::size_t>(i)]);
      if (a > best || (p >= 0 && a == best && i < p)) {
        best = a;
        p = i;
      }
    }
    if (p < 0) {
      dropped.push_back(c);
    } else {
      pushEta(p, alpha_, alphaSupp_);
      pivoted[static_cast<std::size_t>(p)] = 1;
      basicVar_[static_cast<std::size_t>(p)] = c;
    }
    clearScratch(alpha_, alphaSupp_);
  }
  if (!dropped.empty()) {
    // Basis repair: a dependent column leaves for the bound nearest its kind,
    // and each still-unpivoted row gets its own logical back. If even that
    // fails (pathological fill), fall back to the always-valid all-logical
    // basis — correctness is unaffected, the solve just restarts warmer-less.
    for (const int c : dropped) {
      const double lo = lower_[static_cast<std::size_t>(c)];
      const double hi = upper_[static_cast<std::size_t>(c)];
      status_[static_cast<std::size_t>(c)] =
          !std::isinf(lo) ? BasisStatus::kAtLower
          : !std::isinf(hi) ? BasisStatus::kAtUpper
                            : BasisStatus::kFree;
    }
    for (int p = 0; p < m_; ++p) {
      if (pivoted[static_cast<std::size_t>(p)]) continue;
      const int c2 = n_ + p;
      bool placed = false;
      if (status_[static_cast<std::size_t>(c2)] != BasisStatus::kBasic) {
        loadColumn(c2, alpha_, alphaSupp_);
        ftranTracked(alpha_, alphaSupp_);
        int pp = -1;
        double best = kFactorPivotTol;
        for (const int i : alphaSupp_) {
          if (pivoted[static_cast<std::size_t>(i)]) continue;
          const double a = std::fabs(alpha_[static_cast<std::size_t>(i)]);
          if (a > best) {
            best = a;
            pp = i;
          }
        }
        if (pp >= 0) {
          pushEta(pp, alpha_, alphaSupp_);
          pivoted[static_cast<std::size_t>(pp)] = 1;
          basicVar_[static_cast<std::size_t>(pp)] = c2;
          status_[static_cast<std::size_t>(c2)] = BasisStatus::kBasic;
          placed = true;
        }
        clearScratch(alpha_, alphaSupp_);
      }
      if (!placed) {
        resetToLogicalBasis();
        return true;
      }
    }
  }
  etasAtRefactor_ = etas_.size();
  return true;
}

void RevisedSimplex::recomputePrimal() {
  for (int j = 0; j < N_; ++j) {
    switch (status_[static_cast<std::size_t>(j)]) {
      case BasisStatus::kAtLower:
        value_[static_cast<std::size_t>(j)] = lower_[static_cast<std::size_t>(j)];
        break;
      case BasisStatus::kAtUpper:
        value_[static_cast<std::size_t>(j)] = upper_[static_cast<std::size_t>(j)];
        break;
      case BasisStatus::kFree:
        value_[static_cast<std::size_t>(j)] = 0.0;
        break;
      case BasisStatus::kBasic:
        break;
    }
  }
  std::vector<double> w(rhs_);
  for (int j = 0; j < N_; ++j) {
    if (status_[static_cast<std::size_t>(j)] == BasisStatus::kBasic) continue;
    const double vj = value_[static_cast<std::size_t>(j)];
    if (vj == 0.0) continue;
    if (j < n_) {
      for (int k = colStart_[static_cast<std::size_t>(j)];
           k < colStart_[static_cast<std::size_t>(j) + 1]; ++k) {
        w[static_cast<std::size_t>(rowIdx_[static_cast<std::size_t>(k)])] -=
            colVal_[static_cast<std::size_t>(k)] * vj;
      }
    } else {
      w[static_cast<std::size_t>(j - n_)] -= vj;
    }
  }
  ftran(w);
  for (int i = 0; i < m_; ++i) {
    value_[static_cast<std::size_t>(basicVar_[static_cast<std::size_t>(i)])] =
        w[static_cast<std::size_t>(i)];
  }
}

bool RevisedSimplex::refactorAndRecompute() {
  if (!refactor()) return false;
  recomputePrimal();
  justRefactored_ = true;
  return true;
}

double RevisedSimplex::maxInfeasibility() const {
  double worst = 0.0;
  for (int i = 0; i < m_; ++i) {
    const int b = basicVar_[static_cast<std::size_t>(i)];
    const double v = value_[static_cast<std::size_t>(b)];
    worst = std::max(worst, lower_[static_cast<std::size_t>(b)] - v);
    worst = std::max(worst, v - upper_[static_cast<std::size_t>(b)]);
  }
  return worst;
}

void RevisedSimplex::computePhaseCosts(int phase) {
  for (int i = 0; i < m_; ++i) {
    const int b = basicVar_[static_cast<std::size_t>(i)];
    if (phase == 2) {
      cb_[static_cast<std::size_t>(i)] = cost_[static_cast<std::size_t>(b)];
    } else {
      const double v = value_[static_cast<std::size_t>(b)];
      cb_[static_cast<std::size_t>(i)] =
          v < lower_[static_cast<std::size_t>(b)] - kFeasTol  ? -1.0
          : v > upper_[static_cast<std::size_t>(b)] + kFeasTol ? 1.0
                                                               : 0.0;
    }
  }
}

double RevisedSimplex::reducedCost(int phase, int j) const {
  double d = phase == 2 ? cost_[static_cast<std::size_t>(j)] : 0.0;
  if (j < n_) {
    for (int k = colStart_[static_cast<std::size_t>(j)];
         k < colStart_[static_cast<std::size_t>(j) + 1]; ++k) {
      d -= y_[static_cast<std::size_t>(rowIdx_[static_cast<std::size_t>(k)])] *
           colVal_[static_cast<std::size_t>(k)];
    }
  } else {
    d -= y_[static_cast<std::size_t>(j - n_)];
  }
  return d;
}

int RevisedSimplex::priceEntering(int phase, bool bland) {
  const double tol = options_.tol;
  const auto violation = [&](int j, double d) -> double {
    switch (status_[static_cast<std::size_t>(j)]) {
      case BasisStatus::kAtLower: return -d;
      case BasisStatus::kAtUpper: return d;
      case BasisStatus::kFree: return std::fabs(d);
      case BasisStatus::kBasic: return 0.0;
    }
    return 0.0;
  };
  if (bland) {
    // Bland's rule: lowest-index eligible column, scanned from 0.
    for (int j = 0; j < N_; ++j) {
      if (status_[static_cast<std::size_t>(j)] == BasisStatus::kBasic) continue;
      if (lower_[static_cast<std::size_t>(j)] ==
          upper_[static_cast<std::size_t>(j)]) {
        continue;
      }
      if (violation(j, reducedCost(phase, j)) > tol) return j;
    }
    return -1;
  }
  // Dantzig within rotating partial-pricing windows: scan a block of columns
  // from the cursor, take the most violated; only fall through to the next
  // block when the current one has no candidate.
  const int block = std::max(64, N_ / 8);
  int scanned = 0;
  while (scanned < N_) {
    int bestJ = -1;
    double bestMag = tol;
    for (int s = 0; s < block && scanned < N_; ++s, ++scanned) {
      const int j = pricingCursor_;
      pricingCursor_ = pricingCursor_ + 1 == N_ ? 0 : pricingCursor_ + 1;
      if (status_[static_cast<std::size_t>(j)] == BasisStatus::kBasic) continue;
      if (lower_[static_cast<std::size_t>(j)] ==
          upper_[static_cast<std::size_t>(j)]) {
        continue;
      }
      const double mag = violation(j, reducedCost(phase, j));
      if (mag > bestMag) {
        bestMag = mag;
        bestJ = j;
      }
    }
    if (bestJ >= 0) return bestJ;
  }
  return -1;
}

bool RevisedSimplex::dualFeasible() {
  computePhaseCosts(2);
  std::copy(cb_.begin(), cb_.end(), y_.begin());
  btran(y_);
  const double tol = 10.0 * options_.tol;
  for (int j = 0; j < N_; ++j) {
    if (status_[static_cast<std::size_t>(j)] == BasisStatus::kBasic) continue;
    if (lower_[static_cast<std::size_t>(j)] ==
        upper_[static_cast<std::size_t>(j)]) {
      continue;
    }
    const double d = reducedCost(2, j);
    switch (status_[static_cast<std::size_t>(j)]) {
      case BasisStatus::kAtLower:
        if (d < -tol) return false;
        break;
      case BasisStatus::kAtUpper:
        if (d > tol) return false;
        break;
      case BasisStatus::kFree:
        if (std::fabs(d) > tol) return false;
        break;
      case BasisStatus::kBasic:
        break;
    }
  }
  return true;
}

SolveStatus RevisedSimplex::runPhase(int phase) {
  for (;;) {
    if (iterations_ >= maxIterations_) return SolveStatus::kIterationLimit;
    if ((iterations_ % kPollStride) == 0 && pollStop()) {
      return SolveStatus::kTimeLimit;
    }
    if (phase == 1 && maxInfeasibility() <= kFeasTol) {
      return SolveStatus::kOptimal;  // feasible: phase 1 is done
    }
    if (etas_.size() - etasAtRefactor_ >=
        static_cast<std::size_t>(refactorEvery_)) {
      if (!refactorAndRecompute()) return SolveStatus::kTimeLimit;
      continue;  // values refreshed; re-enter with clean state
    }

    // --- pricing ---------------------------------------------------------
    computePhaseCosts(phase);
    std::copy(cb_.begin(), cb_.end(), y_.begin());
    btran(y_);
    const bool bland = iterations_ >= blandThreshold_;
    const int q = priceEntering(phase, bland);
    if (q < 0) {
      if (phase == 1) {
        // Phase-1 optimum with residual infeasibility. Confirm on a fresh
        // factorisation before declaring the model infeasible.
        if (!justRefactored_) {
          if (!refactorAndRecompute()) return SolveStatus::kTimeLimit;
          continue;
        }
        return SolveStatus::kInfeasible;
      }
      return SolveStatus::kOptimal;
    }
    const double dq = reducedCost(phase, q);
    const double dirQ =
        status_[static_cast<std::size_t>(q)] == BasisStatus::kAtLower ? 1.0
        : status_[static_cast<std::size_t>(q)] == BasisStatus::kAtUpper
            ? -1.0
            : (dq < 0.0 ? 1.0 : -1.0);

    // --- pivot column ----------------------------------------------------
    loadColumn(q, alpha_, alphaSupp_);
    ftranTracked(alpha_, alphaSupp_);

    // --- two-sided bounded ratio test ------------------------------------
    // t is the step of the entering column in direction dirQ; each basic
    // variable moves by delta_i·t with delta_i = −dirQ·alpha_i. In phase 1
    // a basic variable that is *infeasible* blocks at the bound it is
    // approaching (first breakpoint) and does not block while moving away —
    // the composite costs already price that movement.
    double bestT = kInf;
    int blockRow = -1;
    bool leaveAtLower = true;
    double blockAlpha = 0.0;
    const double qRange = upper_[static_cast<std::size_t>(q)] -
                          lower_[static_cast<std::size_t>(q)];
    const bool ownFlip = !std::isinf(qRange);
    if (ownFlip) bestT = qRange;
    for (const int i : alphaSupp_) {
      const double a = alpha_[static_cast<std::size_t>(i)];
      if (std::fabs(a) <= kRatioTol) continue;
      const int b = basicVar_[static_cast<std::size_t>(i)];
      const double v = value_[static_cast<std::size_t>(b)];
      const double lb = lower_[static_cast<std::size_t>(b)];
      const double ub = upper_[static_cast<std::size_t>(b)];
      const double delta = -dirQ * a;
      double limit = kInf;
      bool atLower = true;
      if (phase == 1 && v < lb - kFeasTol) {
        if (delta > 0.0) {
          limit = (lb - v) / delta;  // rises to its violated lower bound
          atLower = true;
        }
      } else if (phase == 1 && v > ub + kFeasTol) {
        if (delta < 0.0) {
          limit = (ub - v) / delta;  // falls to its violated upper bound
          atLower = false;
        }
      } else if (delta > 0.0) {
        if (!std::isinf(ub)) {
          limit = (ub - v) / delta;
          atLower = false;
        }
      } else {
        if (!std::isinf(lb)) {
          limit = (lb - v) / delta;
          atLower = true;
        }
      }
      if (std::isinf(limit)) continue;
      limit = std::max(0.0, limit);
      bool take = false;
      if (limit < bestT - 1e-12) {
        take = true;
      } else if (limit < bestT + 1e-12 && blockRow >= 0) {
        // Ties: Bland mode prefers the lowest leaving column index (the
        // anti-cycling guarantee); Dantzig mode the largest |alpha| for
        // numerical stability.
        if (bland) {
          take = b < basicVar_[static_cast<std::size_t>(blockRow)];
        } else {
          take = std::fabs(a) > std::fabs(blockAlpha);
        }
      } else if (limit < bestT + 1e-12 && blockRow < 0 && !ownFlip) {
        take = true;
      }
      if (take) {
        bestT = std::min(bestT, limit);
        blockRow = i;
        leaveAtLower = atLower;
        blockAlpha = a;
      }
    }
    if (std::isinf(bestT)) {
      clearScratch(alpha_, alphaSupp_);
      // No blocking event. Phase 2: a genuine unbounded ray (confirmed on a
      // fresh factorisation). Phase 1: numerically impossible — total
      // infeasibility cannot decrease forever — so treat as drift.
      if (!justRefactored_) {
        if (!refactorAndRecompute()) return SolveStatus::kTimeLimit;
        continue;
      }
      return phase == 2 ? SolveStatus::kUnbounded : SolveStatus::kInfeasible;
    }
    // An own-bound block at the same breakpoint as a basic block prefers the
    // flip (no eta, no basis change).
    const bool flip = ownFlip && qRange <= bestT + 1e-12 && blockRow < 0;

    // --- apply the step --------------------------------------------------
    const double t = flip ? qRange : bestT;
    for (const int i : alphaSupp_) {
      const double a = alpha_[static_cast<std::size_t>(i)];
      if (a == 0.0) continue;
      const int b = basicVar_[static_cast<std::size_t>(i)];
      value_[static_cast<std::size_t>(b)] += (-dirQ * a) * t;
    }
    if (flip) {
      status_[static_cast<std::size_t>(q)] =
          dirQ > 0.0 ? BasisStatus::kAtUpper : BasisStatus::kAtLower;
      value_[static_cast<std::size_t>(q)] =
          dirQ > 0.0 ? upper_[static_cast<std::size_t>(q)]
                     : lower_[static_cast<std::size_t>(q)];
      ++counters_.boundFlips;
    } else {
      const int leave = basicVar_[static_cast<std::size_t>(blockRow)];
      value_[static_cast<std::size_t>(q)] =
          value_[static_cast<std::size_t>(q)] + dirQ * t;
      // Snap the leaving variable exactly onto its bound (kills drift).
      status_[static_cast<std::size_t>(leave)] =
          leaveAtLower ? BasisStatus::kAtLower : BasisStatus::kAtUpper;
      value_[static_cast<std::size_t>(leave)] =
          leaveAtLower ? lower_[static_cast<std::size_t>(leave)]
                       : upper_[static_cast<std::size_t>(leave)];
      status_[static_cast<std::size_t>(q)] = BasisStatus::kBasic;
      basicVar_[static_cast<std::size_t>(blockRow)] = q;
      pushEta(blockRow, alpha_, alphaSupp_);
      ++counters_.pivots;
      if (phase == 1) ++counters_.phase1Pivots;
    }
    clearScratch(alpha_, alphaSupp_);
    justRefactored_ = false;
    ++iterations_;
  }
}

bool RevisedSimplex::pollStop() {
  if (dsct::stopRequested(options_.cancel)) {
    cancelledFlag_ = true;
    return true;
  }
  return deadline_.expired();
}

LpResult RevisedSimplex::finish(LpResult result) {
  result.iterations = iterations_;
  result.counters = counters_;
  result.solveSeconds = watch_.elapsedSeconds();
  return result;
}

LpResult RevisedSimplex::stoppedResult(SolveStatus status) {
  LpResult result;
  result.status = status;
  result.cancelled = cancelledFlag_;
  result.x.assign(static_cast<std::size_t>(model_.numVariables()), 0.0);
  return finish(std::move(result));
}

LpResult RevisedSimplex::optimalResult() {
  LpResult result;
  result.status = SolveStatus::kOptimal;
  result.x.resize(static_cast<std::size_t>(n_));
  for (int j = 0; j < n_; ++j) {
    double v = value_[static_cast<std::size_t>(j)];
    v = std::max(v, lower_[static_cast<std::size_t>(j)]);
    v = std::min(v, upper_[static_cast<std::size_t>(j)]);
    result.x[static_cast<std::size_t>(j)] = v;
  }
  result.objective = model_.objectiveValue(result.x);
  // Duals: y solves Bᵀy = c_B in the scaled minimisation space, so
  // d(obj)/d(b_i) in the model's direction un-scales by the row's
  // equilibration factor and flips sign under maximisation.
  computePhaseCosts(2);
  std::copy(cb_.begin(), cb_.end(), y_.begin());
  btran(y_);
  const double dirSign = model_.maximize() ? -1.0 : 1.0;
  result.duals.resize(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    result.duals[static_cast<std::size_t>(i)] =
        dirSign * y_[static_cast<std::size_t>(i)] *
        rowScale_[static_cast<std::size_t>(i)];
  }
  result.basis.status.assign(status_.begin(), status_.end());
  result.basis.numRows = m_;
  return finish(std::move(result));
}

LpResult RevisedSimplex::run() {
  for (int j = 0; j < model_.numVariables(); ++j) {
    if (varLower_[static_cast<std::size_t>(j)] >
        varUpper_[static_cast<std::size_t>(j)]) {
      return stoppedResult(SolveStatus::kInfeasible);
    }
  }
  build();

  coldStatuses();
  bool warmInstalled = false;
  if (options_.warmBasis != nullptr && !options_.warmBasis->empty()) {
    counters_.warmStartsAttempted = 1;
    if (installWarm(*options_.warmBasis)) {
      warmInstalled = true;
    } else {
      counters_.warmStartsRejected = 1;
      coldStatuses();
    }
  }
  if (!refactorAndRecompute()) return stoppedResult(SolveStatus::kTimeLimit);
  if (warmInstalled) {
    if (maxInfeasibility() <= kFeasTol) {
      ++counters_.warmStartsUsed;  // phase 1 skipped entirely
    } else {
      ++counters_.warmStartsRepaired;
    }
  }

  for (int round = 0; round < kConfirmRounds; ++round) {
    if (maxInfeasibility() > kFeasTol) {
      const SolveStatus p1 = runPhase(1);
      if (p1 == SolveStatus::kTimeLimit || p1 == SolveStatus::kIterationLimit) {
        return stoppedResult(p1);
      }
      if (maxInfeasibility() > kFeasTol) {
        return stoppedResult(SolveStatus::kInfeasible);
      }
    }
    const SolveStatus p2 = runPhase(2);
    if (p2 != SolveStatus::kOptimal) return stoppedResult(p2);
    // Optimality confirmation: rebuild the basis inverse and recompute the
    // primal point, so the answer depends only on the final basis; when the
    // refreshed point shows drift, resume pivoting instead of reporting it.
    if (!refactorAndRecompute()) return stoppedResult(SolveStatus::kTimeLimit);
    if (maxInfeasibility() <= kFeasTol && dualFeasible()) break;
  }
  return optimalResult();
}

}  // namespace

LpResult solveLpRevised(const Model& model, std::span<const double> lower,
                        std::span<const double> upper,
                        const LpOptions& options) {
  DSCT_CHECK(static_cast<int>(lower.size()) == model.numVariables());
  DSCT_CHECK(static_cast<int>(upper.size()) == model.numVariables());
  RevisedSimplex engine(model, lower, upper, options);
  return engine.run();
}

}  // namespace dsct::lp::detail
