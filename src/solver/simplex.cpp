#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "solver/revised_simplex.h"
#include "util/check.h"
#include "util/timer.h"

namespace dsct::lp {

const char* toString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration_limit";
    case SolveStatus::kTimeLimit: return "time_limit";
  }
  return "unknown";
}

namespace {

constexpr double kFeasTol = 1e-7;

/// Mapping of one model variable into the non-negative tilde space:
/// x = shift + Σ sign_c · x̃_c over the variable's columns.
struct VarMap {
  double shift = 0.0;
  // Column indices and signs; at most two entries (free-variable split).
  int col0 = -1;
  double sign0 = 1.0;
  int col1 = -1;
  double sign1 = -1.0;
};

/// The dense tableau. Row-major, each row has `cols + 1` entries, the last
/// being the RHS. A separate reduced-cost row is maintained incrementally.
class Tableau {
 public:
  Tableau(int rows, int cols)
      : rows_(rows), cols_(cols), stride_(cols + 1),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols + 1), 0.0),
        cost_(static_cast<std::size_t>(cols + 1), 0.0),
        basis_(static_cast<std::size_t>(rows), -1) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double* row(int i) { return data_.data() + static_cast<std::size_t>(i) * stride_; }
  const double* row(int i) const {
    return data_.data() + static_cast<std::size_t>(i) * stride_;
  }
  double rhs(int i) const { return row(i)[cols_]; }
  double& rhsRef(int i) { return row(i)[cols_]; }

  double* cost() { return cost_.data(); }
  const double* cost() const { return cost_.data(); }

  int basis(int i) const { return basis_[static_cast<std::size_t>(i)]; }
  void setBasis(int i, int col) { basis_[static_cast<std::size_t>(i)] = col; }

  /// Gauss-Jordan pivot on (pivotRow, pivotCol); also updates the cost row.
  void pivot(int pivotRow, int pivotCol) {
    double* prow = row(pivotRow);
    const double pivotValue = prow[pivotCol];
    DSCT_DCHECK(std::fabs(pivotValue) > 1e-13);
    const double inv = 1.0 / pivotValue;
    for (int k = 0; k <= cols_; ++k) prow[k] *= inv;
    prow[pivotCol] = 1.0;  // kill round-off on the pivot element
    for (int i = 0; i < rows_; ++i) {
      if (i == pivotRow) continue;
      double* r = row(i);
      const double factor = r[pivotCol];
      if (factor == 0.0) continue;
      for (int k = 0; k <= cols_; ++k) r[k] -= factor * prow[k];
      r[pivotCol] = 0.0;
    }
    const double cfactor = cost_[static_cast<std::size_t>(pivotCol)];
    if (cfactor != 0.0) {
      for (int k = 0; k <= cols_; ++k) {
        cost_[static_cast<std::size_t>(k)] -= cfactor * prow[k];
      }
      cost_[static_cast<std::size_t>(pivotCol)] = 0.0;
    }
    setBasis(pivotRow, pivotCol);
  }

 private:
  int rows_;
  int cols_;
  int stride_;
  std::vector<double> data_;
  std::vector<double> cost_;
  std::vector<int> basis_;
};

struct PhaseOutcome {
  SolveStatus status = SolveStatus::kOptimal;
  bool cancelled = false;
  long iterations = 0;
};

/// Run the simplex loop to optimality of the current cost row.
/// `allowed[j]` gates which columns may enter the basis.
PhaseOutcome runSimplex(Tableau& t, const std::vector<char>& allowed,
                        const LpOptions& options, const TimeLimit& deadline,
                        long maxIterations, long blandThreshold) {
  PhaseOutcome out;
  const int cols = t.cols();
  const int rows = t.rows();
  const double tol = options.tol;
  for (;;) {
    if (out.iterations >= maxIterations) {
      out.status = SolveStatus::kIterationLimit;
      return out;
    }
    if ((out.iterations & 63) == 0) {
      if (stopRequested(options.cancel)) {
        out.status = SolveStatus::kTimeLimit;
        out.cancelled = true;
        return out;
      }
      if (deadline.expired()) {
        out.status = SolveStatus::kTimeLimit;
        return out;
      }
    }
    const bool bland = out.iterations >= blandThreshold;
    // --- pricing: choose entering column ---
    int entering = -1;
    double best = -tol;
    const double* cost = t.cost();
    for (int j = 0; j < cols; ++j) {
      if (!allowed[static_cast<std::size_t>(j)]) continue;
      const double dj = cost[j];
      if (dj < best) {
        entering = j;
        if (bland) break;  // Bland: first eligible index
        best = dj;
      }
    }
    if (entering < 0) {
      out.status = SolveStatus::kOptimal;
      return out;
    }
    // --- ratio test: choose leaving row ---
    int leaving = -1;
    double bestRatio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < rows; ++i) {
      const double aij = t.row(i)[entering];
      if (aij <= tol) continue;
      const double ratio = std::max(0.0, t.rhs(i)) / aij;
      if (ratio < bestRatio - 1e-12 ||
          (ratio < bestRatio + 1e-12 && leaving >= 0 &&
           t.basis(i) < t.basis(leaving))) {
        bestRatio = ratio;
        leaving = i;
      }
    }
    if (leaving < 0) {
      out.status = SolveStatus::kUnbounded;
      return out;
    }
    t.pivot(leaving, entering);
    ++out.iterations;
  }
}

}  // namespace

LpResult solveLp(const Model& model, const LpOptions& options) {
  std::vector<double> lower(static_cast<std::size_t>(model.numVariables()));
  std::vector<double> upper(static_cast<std::size_t>(model.numVariables()));
  for (int j = 0; j < model.numVariables(); ++j) {
    lower[static_cast<std::size_t>(j)] = model.variable(j).lower;
    upper[static_cast<std::size_t>(j)] = model.variable(j).upper;
  }
  return solveLpWithBounds(model, lower, upper, options);
}

namespace {

/// The original dense two-phase tableau engine (LpEngine::kDense), retained
/// as the differential reference for the revised engine's test battery.
LpResult solveLpDense(const Model& model, std::span<const double> lower,
                      std::span<const double> upper,
                      const LpOptions& options) {
  Stopwatch watch;
  const TimeLimit deadline(options.timeLimitSeconds);
  const int nvars = model.numVariables();
  DSCT_CHECK(static_cast<int>(lower.size()) == nvars);
  DSCT_CHECK(static_cast<int>(upper.size()) == nvars);

  LpResult result;
  result.x.assign(static_cast<std::size_t>(nvars), 0.0);

  // ---- 1. Variable substitution into tilde space ----
  std::vector<VarMap> maps(static_cast<std::size_t>(nvars));
  std::vector<double> boundRange;  // finite range per ranged column
  std::vector<int> rangedCols;     // tilde columns with a finite upper bound
  int structCols = 0;
  for (int j = 0; j < nvars; ++j) {
    const double lo = lower[static_cast<std::size_t>(j)];
    const double hi = upper[static_cast<std::size_t>(j)];
    if (lo > hi) {
      result.status = SolveStatus::kInfeasible;
      result.solveSeconds = watch.elapsedSeconds();
      return result;
    }
    VarMap& vm = maps[static_cast<std::size_t>(j)];
    if (lo == hi) {
      vm.shift = lo;  // fixed: no column
    } else if (std::isinf(lo) && std::isinf(hi)) {
      vm.shift = 0.0;  // free: split x = x+ − x−
      vm.col0 = structCols++;
      vm.sign0 = 1.0;
      vm.col1 = structCols++;
      vm.sign1 = -1.0;
    } else if (std::isinf(lo)) {
      vm.shift = hi;  // x = hi − x̃
      vm.col0 = structCols++;
      vm.sign0 = -1.0;
    } else {
      vm.shift = lo;  // x = lo + x̃
      vm.col0 = structCols++;
      vm.sign0 = 1.0;
      if (!std::isinf(hi)) {
        rangedCols.push_back(vm.col0);
        boundRange.push_back(hi - lo);
      }
    }
  }

  // ---- 2. Assemble rows in tilde space ----
  struct Row {
    std::vector<std::pair<int, double>> coeffs;  // (tilde col, coeff)
    Sense sense;
    double rhs;
    int origIndex;     ///< model constraint index; −1 for bound rows
    double scale = 1;  ///< equilibration factor applied to coeffs and rhs
  };
  std::vector<Row> rows;
  rows.reserve(static_cast<std::size_t>(model.numConstraints()) +
               rangedCols.size());
  for (int ci = 0; ci < model.numConstraints(); ++ci) {
    const Constraint& c = model.constraint(ci);
    Row row;
    row.sense = c.sense;
    row.rhs = c.rhs;
    row.origIndex = ci;
    for (const auto& [var, coeff] : c.coeffs) {
      if (coeff == 0.0) continue;
      const VarMap& vm = maps[static_cast<std::size_t>(var)];
      row.rhs -= coeff * vm.shift;
      if (vm.col0 >= 0) row.coeffs.emplace_back(vm.col0, coeff * vm.sign0);
      if (vm.col1 >= 0) row.coeffs.emplace_back(vm.col1, coeff * vm.sign1);
    }
    if (row.coeffs.empty()) {
      // Constant row: check consistency and drop.
      const bool ok = (row.sense == Sense::kLe && row.rhs >= -kFeasTol) ||
                      (row.sense == Sense::kGe && row.rhs <= kFeasTol) ||
                      (row.sense == Sense::kEq && std::fabs(row.rhs) <= kFeasTol);
      if (!ok) {
        result.status = SolveStatus::kInfeasible;
        result.solveSeconds = watch.elapsedSeconds();
        return result;
      }
      continue;
    }
    // Row equilibration: normalise the largest coefficient magnitude to 1
    // so badly scaled models (TFLOP vs Joule magnitudes) stay well
    // conditioned; duals are un-scaled on extraction.
    double maxAbs = 0.0;
    for (const auto& [col, coeff] : row.coeffs) {
      maxAbs = std::max(maxAbs, std::fabs(coeff));
    }
    if (maxAbs > 0.0 && (maxAbs > 4.0 || maxAbs < 0.25)) {
      row.scale = 1.0 / maxAbs;
      for (auto& [col, coeff] : row.coeffs) coeff *= row.scale;
      row.rhs *= row.scale;
    }
    rows.push_back(std::move(row));
  }
  for (std::size_t k = 0; k < rangedCols.size(); ++k) {
    rows.push_back(Row{{{rangedCols[k], 1.0}}, Sense::kLe, boundRange[k], -1});
  }

  const int m = static_cast<int>(rows.size());

  // ---- 3. Slack / artificial layout ----
  // Column layout: [0, structCols) structural, then one slack per non-EQ row,
  // then artificials as needed.
  int numSlacks = 0;
  for (const Row& r : rows) {
    if (r.sense != Sense::kEq) ++numSlacks;
  }
  // Decide per-row slack coefficient after normalising rhs >= 0.
  struct RowMeta {
    int slackCol = -1;
    double slackCoeff = 0.0;
    bool negated = false;
    int artCol = -1;
  };
  std::vector<RowMeta> meta(static_cast<std::size_t>(m));
  {
    int slack = structCols;
    for (int i = 0; i < m; ++i) {
      Row& r = rows[static_cast<std::size_t>(i)];
      RowMeta& mt = meta[static_cast<std::size_t>(i)];
      if (r.sense != Sense::kEq) {
        mt.slackCol = slack++;
        mt.slackCoeff = (r.sense == Sense::kLe) ? 1.0 : -1.0;
      }
      if (r.rhs < 0.0) {
        mt.negated = true;
        r.rhs = -r.rhs;
        for (auto& [col, coeff] : r.coeffs) coeff = -coeff;
        mt.slackCoeff = -mt.slackCoeff;
      }
    }
  }
  int numArts = 0;
  for (int i = 0; i < m; ++i) {
    if (meta[static_cast<std::size_t>(i)].slackCoeff != 1.0) {
      meta[static_cast<std::size_t>(i)].artCol =
          structCols + numSlacks + numArts++;
    }
  }
  const int cols = structCols + numSlacks + numArts;

  // ---- 4. Fill tableau ----
  Tableau t(m, cols);
  for (int i = 0; i < m; ++i) {
    const Row& r = rows[static_cast<std::size_t>(i)];
    const RowMeta& mt = meta[static_cast<std::size_t>(i)];
    double* trow = t.row(i);
    for (const auto& [col, coeff] : r.coeffs) trow[col] += coeff;
    if (mt.slackCol >= 0) trow[mt.slackCol] = mt.slackCoeff;
    if (mt.artCol >= 0) trow[mt.artCol] = 1.0;
    trow[cols] = r.rhs;
    t.setBasis(i, mt.artCol >= 0 ? mt.artCol : mt.slackCol);
  }

  const auto isArtificial = [&](int col) {
    return col >= structCols + numSlacks;
  };

  long maxIterations = options.maxIterations;
  if (maxIterations <= 0) {
    maxIterations = 200L * (m + cols) + 20000L;
  }
  const long blandThreshold = std::max<long>(2000, 20L * (m + cols));
  long iterationsUsed = 0;

  std::vector<char> allowed(static_cast<std::size_t>(cols), 1);

  // ---- 5. Phase 1 ----
  if (numArts > 0) {
    double* cost = t.cost();
    std::fill(cost, cost + cols + 1, 0.0);
    for (int j = structCols + numSlacks; j < cols; ++j) cost[j] = 1.0;
    for (int i = 0; i < m; ++i) {
      if (!isArtificial(t.basis(i))) continue;
      const double* trow = t.row(i);
      for (int k = 0; k <= cols; ++k) cost[k] -= trow[k];
    }
    const PhaseOutcome p1 =
        runSimplex(t, allowed, options, deadline, maxIterations, blandThreshold);
    iterationsUsed += p1.iterations;
    if (p1.status != SolveStatus::kOptimal) {
      result.status = p1.status;
      result.cancelled = p1.cancelled;
      result.iterations = iterationsUsed;
      result.solveSeconds = watch.elapsedSeconds();
      return result;
    }
    double phase1Obj = 0.0;
    for (int i = 0; i < m; ++i) {
      if (isArtificial(t.basis(i))) phase1Obj += t.rhs(i);
    }
    if (phase1Obj > kFeasTol) {
      result.status = SolveStatus::kInfeasible;
      result.iterations = iterationsUsed;
      result.solveSeconds = watch.elapsedSeconds();
      return result;
    }
    // Drive basic artificials (at zero) out of the basis where possible.
    for (int i = 0; i < m; ++i) {
      if (!isArtificial(t.basis(i))) continue;
      const double* trow = t.row(i);
      int enter = -1;
      for (int j = 0; j < structCols + numSlacks; ++j) {
        if (std::fabs(trow[j]) > 1e-9) {
          enter = j;
          break;
        }
      }
      if (enter >= 0) t.pivot(i, enter);
      // Otherwise the row is redundant (all-zero in non-artificial columns);
      // it stays inert under further pivots.
    }
    for (int j = structCols + numSlacks; j < cols; ++j) {
      allowed[static_cast<std::size_t>(j)] = 0;
    }
  }

  // ---- 6. Phase 2 ----
  {
    // Tilde-space objective: minimise; maximisation negates coefficients.
    std::vector<double> ctilde(static_cast<std::size_t>(cols), 0.0);
    const double dir = model.maximize() ? -1.0 : 1.0;
    for (int j = 0; j < nvars; ++j) {
      const double cj = dir * model.variable(j).objective;
      if (cj == 0.0) continue;
      const VarMap& vm = maps[static_cast<std::size_t>(j)];
      if (vm.col0 >= 0) ctilde[static_cast<std::size_t>(vm.col0)] += cj * vm.sign0;
      if (vm.col1 >= 0) ctilde[static_cast<std::size_t>(vm.col1)] += cj * vm.sign1;
    }
    double* cost = t.cost();
    for (int k = 0; k < cols; ++k) cost[k] = (k < cols) ? ctilde[static_cast<std::size_t>(k)] : 0.0;
    cost[cols] = 0.0;
    // Reduced costs: c_j − c_B^T B^{-1} A_j.
    for (int i = 0; i < m; ++i) {
      const int b = t.basis(i);
      const double cb = (b >= 0 && b < cols) ? ctilde[static_cast<std::size_t>(b)] : 0.0;
      if (cb == 0.0) continue;
      const double* trow = t.row(i);
      for (int k = 0; k <= cols; ++k) cost[k] -= cb * trow[k];
    }
    // Basic columns must have exactly-zero reduced cost.
    for (int i = 0; i < m; ++i) cost[t.basis(i)] = 0.0;

    const PhaseOutcome p2 = runSimplex(t, allowed, options, deadline,
                                       maxIterations - iterationsUsed,
                                       blandThreshold);
    iterationsUsed += p2.iterations;
    if (p2.status != SolveStatus::kOptimal) {
      result.status = p2.status;
      result.cancelled = p2.cancelled;
      result.iterations = iterationsUsed;
      result.solveSeconds = watch.elapsedSeconds();
      return result;
    }
  }

  // ---- 7. Recover dual values (shadow prices) ----
  // For row i with basis-inverse prices ŷ = c̃_B B^{-1}: the reduced cost of
  // the row's slack column is −σ_i·ŷ_i (σ = slack coefficient) and of its
  // artificial column is −ŷ_i. Negated rows and the maximisation sign flip
  // map ŷ back to d(objective)/d(rhs) in the model's own direction.
  {
    result.duals.assign(static_cast<std::size_t>(model.numConstraints()), 0.0);
    const double dirSign = model.maximize() ? -1.0 : 1.0;
    const double* cost = t.cost();
    for (int i = 0; i < m; ++i) {
      const int orig = rows[static_cast<std::size_t>(i)].origIndex;
      if (orig < 0) continue;
      const RowMeta& mt = meta[static_cast<std::size_t>(i)];
      const double yhat = (mt.artCol >= 0)
                              ? -cost[mt.artCol]
                              : -cost[mt.slackCol] / mt.slackCoeff;
      // Un-scale: the stored rhs is scale·b, so d/d(b) = scale · d/d(rhs).
      result.duals[static_cast<std::size_t>(orig)] =
          dirSign * (mt.negated ? -1.0 : 1.0) * yhat *
          rows[static_cast<std::size_t>(i)].scale;
    }
  }

  // ---- 8. Recover primal values ----
  std::vector<double> xtilde(static_cast<std::size_t>(cols), 0.0);
  for (int i = 0; i < m; ++i) {
    const int b = t.basis(i);
    if (b >= 0) xtilde[static_cast<std::size_t>(b)] = std::max(0.0, t.rhs(i));
  }
  for (int j = 0; j < nvars; ++j) {
    const VarMap& vm = maps[static_cast<std::size_t>(j)];
    double x = vm.shift;
    if (vm.col0 >= 0) x += vm.sign0 * xtilde[static_cast<std::size_t>(vm.col0)];
    if (vm.col1 >= 0) x += vm.sign1 * xtilde[static_cast<std::size_t>(vm.col1)];
    result.x[static_cast<std::size_t>(j)] = x;
  }
  result.status = SolveStatus::kOptimal;
  result.objective = model.objectiveValue(result.x);
  result.iterations = iterationsUsed;
  result.solveSeconds = watch.elapsedSeconds();
  return result;
}

}  // namespace

LpResult solveLpWithBounds(const Model& model, std::span<const double> lower,
                           std::span<const double> upper,
                           const LpOptions& options) {
  if (options.engine == LpEngine::kDense) {
    LpResult result = solveLpDense(model, lower, upper, options);
    // The tableau engine predates LpCounters; its tableau pivots are the
    // only telemetry it has.
    result.counters.pivots = result.iterations;
    return result;
  }
  return detail::solveLpRevised(model, lower, upper, options);
}

}  // namespace dsct::lp
