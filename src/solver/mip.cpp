#include "solver/mip.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/timer.h"

namespace dsct::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double parentBound;  ///< LP bound inherited from the parent (model direction)
  int depth;
  /// Optimal basis of the parent's LP relaxation. A child differs from its
  /// parent by one bound change, so this basis is one dual step from the
  /// child's optimum — the revised engine re-enters phase 2 from it instead
  /// of re-running phase 1 at every node.
  LpBasis basis;
};

/// Index of the most fractional integer variable, or -1 if x is integral.
int mostFractional(const Model& model, const std::vector<double>& x,
                   double tol) {
  int best = -1;
  double bestDist = tol;
  for (int j = 0; j < model.numVariables(); ++j) {
    if (model.variable(j).type == VarType::kContinuous) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > bestDist) {
      // Most fractional = fractional part closest to 0.5, i.e. max distance
      // from the nearest integer.
      best = j;
      bestDist = dist;
    }
  }
  return best;
}

bool isIntegral(const Model& model, const std::vector<double>& x, double tol) {
  return mostFractional(model, x, tol) < 0;
}

/// Rounding dive: starting from the given bounds, repeatedly fix the most
/// fractional integer variable to its nearest integer and re-solve the LP.
/// Returns an integral feasible point, or nullopt when a fixing renders the
/// LP infeasible. At most (#integer variables) LP solves.
std::optional<std::vector<double>> dive(const Model& model,
                                        std::vector<double> lower,
                                        std::vector<double> upper,
                                        const MipOptions& options,
                                        const TimeLimit& deadline,
                                        LpCounters& counters) {
  LpOptions lpOptions = options.lp;
  if (lpOptions.cancel == nullptr) lpOptions.cancel = options.cancel;
  // Each fixing tightens one bound, so the previous solve's basis is the
  // natural warm start for the next.
  LpBasis carried;
  for (int guard = 0; guard <= model.numIntegerVariables(); ++guard) {
    if (deadline.expired() || dsct::stopRequested(options.cancel)) {
      return std::nullopt;
    }
    if (deadline.hasLimit()) {
      // Grant exactly what is left. The old max(0.01, remaining()) clamp
      // kept handing an expired deadline 10 ms per LP call; remaining() can
      // only be <= 0 here in the race between the expiry check above and
      // this read, in which case we stop instead of granting "unlimited"
      // (LpOptions treats non-positive limits as no limit).
      const double remaining = deadline.remaining();
      if (remaining <= 0.0) return std::nullopt;
      lpOptions.timeLimitSeconds = remaining;
    }
    lpOptions.warmBasis = carried.empty() ? options.lp.warmBasis : &carried;
    const LpResult lp = solveLpWithBounds(model, lower, upper, lpOptions);
    counters.add(lp.counters);
    if (lp.status != SolveStatus::kOptimal) return std::nullopt;
    carried = lp.basis;
    const int var = mostFractional(model, lp.x, options.integralityTol);
    if (var < 0) return lp.x;
    const double value =
        std::round(lp.x[static_cast<std::size_t>(var)]);
    lower[static_cast<std::size_t>(var)] = value;
    upper[static_cast<std::size_t>(var)] = value;
  }
  return std::nullopt;
}

}  // namespace

double MipResult::gap() const {
  if (!hasSolution) return kInf;
  return std::fabs(bestBound - objective) / std::max(1.0, std::fabs(objective));
}

MipResult solveMip(const Model& model, const MipOptions& options) {
  Stopwatch watch;
  const TimeLimit deadline(options.timeLimitSeconds);
  const bool maximize = model.maximize();
  // better(a, b): a strictly improves on b in the model direction.
  const auto better = [maximize](double a, double b) {
    return maximize ? a > b : a < b;
  };
  const double worstValue = maximize ? -kInf : kInf;

  MipResult result;
  result.bestBound = maximize ? kInf : -kInf;

  // Seed the incumbent from the caller's starting point when valid.
  if (options.initialSolution) {
    const auto& x0 = *options.initialSolution;
    DSCT_CHECK_MSG(static_cast<int>(x0.size()) == model.numVariables(),
                   "initialSolution arity mismatch");
    if (model.isFeasible(x0, 1e-6) &&
        isIntegral(model, x0, options.integralityTol)) {
      result.hasSolution = true;
      result.objective = model.objectiveValue(x0);
      result.x = x0;
    }
  }
  double incumbent = result.hasSolution ? result.objective : worstValue;

  std::vector<Node> stack;
  {
    Node root;
    root.lower.resize(static_cast<std::size_t>(model.numVariables()));
    root.upper.resize(static_cast<std::size_t>(model.numVariables()));
    for (int j = 0; j < model.numVariables(); ++j) {
      root.lower[static_cast<std::size_t>(j)] = model.variable(j).lower;
      root.upper[static_cast<std::size_t>(j)] = model.variable(j).upper;
    }
    root.parentBound = maximize ? kInf : -kInf;
    root.depth = 0;
    stack.push_back(std::move(root));
  }

  // Optional root dive to seed an incumbent.
  if (options.rootDive && !result.hasSolution) {
    const auto dived = dive(model, stack.back().lower, stack.back().upper,
                            options, deadline, result.lpCounters);
    if (dived && model.isFeasible(*dived, 1e-6)) {
      result.hasSolution = true;
      result.objective = model.objectiveValue(*dived);
      result.x = *dived;
      incumbent = result.objective;
    }
  }

  bool sawUnbounded = false;
  bool stopped = false;  // time / node limit hit

  LpOptions lpOptions = options.lp;
  if (lpOptions.cancel == nullptr) lpOptions.cancel = options.cancel;

  while (!stack.empty()) {
    if (dsct::stopRequested(options.cancel)) {
      stopped = true;
      result.timedOut = true;
      result.cancelled = true;
      break;
    }
    if (deadline.expired()) {
      stopped = true;
      result.timedOut = true;
      break;
    }
    if (options.maxNodes > 0 && result.nodes >= options.maxNodes) {
      stopped = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++result.nodes;

    // Bound pruning on the inherited parent bound.
    if (result.hasSolution &&
        !better(node.parentBound, incumbent + (maximize ? options.absGapTol
                                                        : -options.absGapTol))) {
      continue;
    }
    if (deadline.hasLimit()) {
      // Same fix as in dive(): grant the true remainder, and stop rather
      // than floor an expired deadline up to 10 ms (or pass a non-positive
      // value, which LpOptions reads as unlimited).
      const double remaining = deadline.remaining();
      if (remaining <= 0.0) {
        stopped = true;
        result.timedOut = true;
        stack.push_back(std::move(node));
        break;
      }
      lpOptions.timeLimitSeconds = remaining;
    }
    // Warm start from the parent's optimal basis; the root node falls back
    // to any caller-supplied basis (cross-epoch carry through MipOptions).
    lpOptions.warmBasis =
        node.basis.empty() ? options.lp.warmBasis : &node.basis;
    const LpResult lp =
        solveLpWithBounds(model, node.lower, node.upper, lpOptions);
    result.lpCounters.add(lp.counters);
    if (lp.status == SolveStatus::kOptimal && node.depth == 0 &&
        result.rootBasis.empty()) {
      result.rootBasis = lp.basis;
    }
    if (lp.status == SolveStatus::kInfeasible) continue;
    if (lp.status == SolveStatus::kUnbounded) {
      sawUnbounded = true;
      break;
    }
    if (lp.status == SolveStatus::kTimeLimit ||
        lp.status == SolveStatus::kIterationLimit) {
      stopped = true;
      result.timedOut = (lp.status == SolveStatus::kTimeLimit);
      result.cancelled = result.cancelled || lp.cancelled;
      // The node is unresolved; its parent bound stays open.
      stack.push_back(std::move(node));
      break;
    }
    const double bound = lp.objective;
    if (result.hasSolution && !better(bound, incumbent)) continue;

    const int branchVar = mostFractional(model, lp.x, options.integralityTol);
    if (branchVar < 0) {
      // Integral LP optimum: new incumbent.
      if (!result.hasSolution || better(bound, incumbent)) {
        result.hasSolution = true;
        result.objective = bound;
        result.x = lp.x;
        incumbent = bound;
      }
      continue;
    }

    const double v = lp.x[static_cast<std::size_t>(branchVar)];
    const double floorV = std::floor(v);
    Node down = node;
    down.upper[static_cast<std::size_t>(branchVar)] =
        std::min(down.upper[static_cast<std::size_t>(branchVar)], floorV);
    down.parentBound = bound;
    down.depth = node.depth + 1;
    down.basis = lp.basis;
    Node up = std::move(node);
    up.lower[static_cast<std::size_t>(branchVar)] =
        std::max(up.lower[static_cast<std::size_t>(branchVar)], floorV + 1.0);
    up.parentBound = bound;
    up.depth = down.depth;
    up.basis = lp.basis;
    // Explore the branch nearest the LP value first (last pushed).
    if (v - floorV >= 0.5) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }

  result.solveSeconds = watch.elapsedSeconds();
  if (sawUnbounded) {
    result.status = SolveStatus::kUnbounded;
    return result;
  }
  if (!stopped) {
    // Search exhausted: the incumbent (if any) is proven optimal.
    result.status =
        result.hasSolution ? SolveStatus::kOptimal : SolveStatus::kInfeasible;
    result.bestBound = result.hasSolution ? result.objective
                                          : (maximize ? -kInf : kInf);
    return result;
  }
  // Stopped early: the proven bound is the best over open nodes (and the
  // incumbent itself).
  double openBound = result.hasSolution ? incumbent : worstValue;
  for (const Node& n : stack) {
    if (better(n.parentBound, openBound)) openBound = n.parentBound;
  }
  result.bestBound = openBound;
  result.status = result.timedOut ? SolveStatus::kTimeLimit
                                  : SolveStatus::kIterationLimit;
  return result;
}

}  // namespace dsct::lp
