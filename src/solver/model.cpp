#include "solver/model.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.h"

namespace dsct::lp {

int Model::addVariable(double lower, double upper, double objective,
                       VarType type, std::string name) {
  DSCT_CHECK_MSG(lower <= upper,
                 "variable bounds inverted: [" << lower << ", " << upper << "]");
  DSCT_CHECK_MSG(!std::isnan(lower) && !std::isnan(upper) && !std::isnan(objective),
                 "NaN in variable definition");
  if (type == VarType::kBinary) {
    DSCT_CHECK_MSG(lower >= 0.0 && upper <= 1.0, "binary bounds must be in [0,1]");
  }
  variables_.push_back({lower, upper, objective, type, std::move(name)});
  return static_cast<int>(variables_.size()) - 1;
}

int Model::addBinary(double objective, std::string name) {
  return addVariable(0.0, 1.0, objective, VarType::kBinary, std::move(name));
}

int Model::addConstraint(std::vector<std::pair<int, double>> coeffs,
                         Sense sense, double rhs, std::string name) {
  for (const auto& [var, coeff] : coeffs) {
    DSCT_CHECK_MSG(var >= 0 && var < numVariables(),
                   "constraint references unknown variable " << var);
    DSCT_CHECK(!std::isnan(coeff));
  }
  DSCT_CHECK(!std::isnan(rhs));
  constraints_.push_back({std::move(coeffs), sense, rhs, std::move(name)});
  return static_cast<int>(constraints_.size()) - 1;
}

int Model::numIntegerVariables() const {
  return static_cast<int>(
      std::count_if(variables_.begin(), variables_.end(), [](const Variable& v) {
        return v.type != VarType::kContinuous;
      }));
}

const Variable& Model::variable(int j) const {
  DSCT_CHECK(j >= 0 && j < numVariables());
  return variables_[static_cast<std::size_t>(j)];
}

const Constraint& Model::constraint(int i) const {
  DSCT_CHECK(i >= 0 && i < numConstraints());
  return constraints_[static_cast<std::size_t>(i)];
}

double Model::objectiveValue(std::span<const double> x) const {
  DSCT_CHECK(x.size() == variables_.size());
  double value = 0.0;
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    value += variables_[j].objective * x[j];
  }
  return value;
}

double Model::maxViolation(std::span<const double> x) const {
  DSCT_CHECK(x.size() == variables_.size());
  double worst = 0.0;
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    worst = std::max(worst, variables_[j].lower - x[j]);
    worst = std::max(worst, x[j] - variables_[j].upper);
  }
  for (const Constraint& row : constraints_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : row.coeffs) {
      lhs += coeff * x[static_cast<std::size_t>(var)];
    }
    switch (row.sense) {
      case Sense::kLe:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case Sense::kGe:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case Sense::kEq:
        worst = std::max(worst, std::fabs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

bool Model::isFeasible(std::span<const double> x, double tol) const {
  return maxViolation(x) <= tol;
}

namespace {

// FNV-1a, the same construction the ProfileCache fingerprints use.
inline void hashMix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
}

inline void hashDouble(std::uint64_t& h, double v) {
  hashMix(h, std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v));
}

}  // namespace

std::uint64_t structuralFingerprint(const Model& model) {
  std::uint64_t h = 1469598103934665603ULL;
  hashMix(h, static_cast<std::uint64_t>(model.numVariables()));
  hashMix(h, static_cast<std::uint64_t>(model.numConstraints()));
  hashMix(h, model.maximize() ? 1 : 2);
  for (const Variable& v : model.variables()) hashDouble(h, v.objective);
  for (const Constraint& row : model.constraints()) {
    hashMix(h, static_cast<std::uint64_t>(row.sense) + 3);
    hashMix(h, static_cast<std::uint64_t>(row.coeffs.size()));
    for (const auto& [var, coeff] : row.coeffs) {
      hashMix(h, static_cast<std::uint64_t>(var));
      hashDouble(h, coeff);
    }
  }
  return h;
}

}  // namespace dsct::lp
