// Linear / mixed-integer model container.
//
// This is the substrate that stands in for the commercial solver (MOSEK)
// used in the paper: a plain data model consumed by the simplex (simplex.h)
// and branch-and-bound (mip.h) engines.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace dsct::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kLe, kGe, kEq };

enum class VarType { kContinuous, kBinary, kInteger };

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  VarType type = VarType::kContinuous;
  std::string name;
};

struct Constraint {
  /// Sparse row: (variable index, coefficient) pairs; indices unique.
  std::vector<std::pair<int, double>> coeffs;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

class Model {
 public:
  /// Objective direction; default is minimisation.
  void setMaximize(bool maximize) { maximize_ = maximize; }
  bool maximize() const { return maximize_; }

  int addVariable(double lower, double upper, double objective,
                  VarType type = VarType::kContinuous, std::string name = {});
  int addBinary(double objective, std::string name = {});

  /// Adds a row; coefficient variable indices must already exist.
  int addConstraint(std::vector<std::pair<int, double>> coeffs, Sense sense,
                    double rhs, std::string name = {});

  int numVariables() const { return static_cast<int>(variables_.size()); }
  int numConstraints() const { return static_cast<int>(constraints_.size()); }
  int numIntegerVariables() const;

  const Variable& variable(int j) const;
  const Constraint& constraint(int i) const;
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Objective value c^T x (direction-independent raw value).
  double objectiveValue(std::span<const double> x) const;

  /// True when x satisfies all rows and bounds within tolerance.
  bool isFeasible(std::span<const double> x, double tol = 1e-6) const;

  /// Max constraint/bound violation of x (0 when feasible).
  double maxViolation(std::span<const double> x) const;

 private:
  bool maximize_ = false;
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

/// Hash of the model's *structure*: dimensions, objective direction and
/// coefficients, row senses, and the constraint matrix (sparsity pattern and
/// coefficient values). Deliberately EXCLUDES right-hand sides and variable
/// bounds, so two models that differ only by bound/RHS drift — consecutive
/// serving epochs whose carried batch merely sees its deadlines shift —
/// fingerprint identically. That is exactly the regime where a saved LpBasis
/// remains a valid (and usually primal-feasible) warm start.
std::uint64_t structuralFingerprint(const Model& model);

}  // namespace dsct::lp
