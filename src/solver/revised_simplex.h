// Internal entry point of the sparse bounded-variable revised simplex.
//
// Callers use solveLp / solveLpWithBounds (solver/simplex.h), which dispatch
// here when LpOptions::engine == LpEngine::kRevised. The header exists so the
// dispatcher and white-box tests can name the engine directly; everything
// else about the engine (CSC storage, eta file, pricing) is file-local to
// revised_simplex.cpp. DESIGN.md §17 documents the data structures and the
// warm-start contract.
#pragma once

#include <span>

#include "solver/model.h"
#include "solver/simplex.h"

namespace dsct::lp::detail {

LpResult solveLpRevised(const Model& model, std::span<const double> lower,
                        std::span<const double> upper,
                        const LpOptions& options);

}  // namespace dsct::lp::detail
