// Per-figure experiment definitions (paper Section 6).
//
// Each runFigX/runTableX function reproduces one table or figure of the
// paper's evaluation; configs default to the paper's parameters, with a
// quick() variant for fast CI-style runs. Bench binaries print the rows;
// integration tests run the quick variants and check the qualitative shape
// (who wins, monotonicity, convergence at β = 1).
#pragma once

#include <cstdint>
#include <vector>

#include "experiments/runner.h"
#include "util/stats.h"

namespace dsct {

// ---------------------------------------------------------------- Fig. 3 --
// Optimality gap (UB − APPROX total accuracy) vs task heterogeneity μ.
struct Fig3Config {
  int numTasks = 100;
  int numMachines = 5;
  double rho = 0.35;
  double beta = 0.5;
  std::vector<double> muValues{5.0, 10.0, 15.0, 20.0};
  double thetaMin = 0.1;
  int replications = 100;
  std::uint64_t seed = 2024;

  static Fig3Config quick();
};

struct Fig3Row {
  double mu = 0.0;
  RunningStats gap;        ///< UB − SOL (total accuracy)
  RunningStats guarantee;  ///< the additive bound G for reference
};

std::vector<Fig3Row> runFig3(const Fig3Config& config,
                             ExperimentRunner& runner);

// --------------------------------------------------------------- Fig. 4 ---
// Execution time of APPROX vs the MIP solver, varying n (4a) or m (4b).
//
// Scenario note: with the loose ρ = 0.35 of Fig. 3, the MIP's LP relaxation
// is almost integral and even our simple branch-and-bound solves n = 200 in
// about a second — stronger than the paper's solver baseline. The strict
// regime below (ρ = 0.02, heterogeneous θ) makes branching genuinely hard
// and reproduces the paper's qualitative result (the solver stops scaling
// around n ≈ 30 under a 60 s limit while APPROX keeps going).
struct Fig4Config {
  // 4a: sweep numTasks with fixed numMachines; 4b: the reverse.
  std::vector<int> taskCounts{10, 20, 30, 50, 100, 200, 500};
  std::vector<int> machineCounts{2, 3, 4, 5, 6, 8, 10};
  int fixedMachines = 5;
  int fixedTasks = 50;
  double rho = 0.02;
  double beta = 0.4;
  double thetaMin = 0.1;
  double thetaMax = 4.9;
  double mipTimeLimit = 60.0;
  int replications = 10;
  std::uint64_t seed = 424242;

  static Fig4Config quick();
};

struct Fig4Row {
  int size = 0;  ///< n (4a) or m (4b)
  RunningStats approxSeconds;
  RunningStats mipSeconds;
  int mipTimeouts = 0;       ///< replications that hit the time limit
  RunningStats approxAccuracy;
  RunningStats mipAccuracy;  ///< incumbent accuracy (even when timed out)
  // FR-OPT slack-engine behaviour per APPROX solve (FrOptCounters): where
  // the refine time goes and how much of it the (task, machine) memo
  // absorbs. Printed by bench/fig4a and bench/fig4b next to the runtimes.
  RunningStats refineSeconds;   ///< wall time inside RefineProfile
  RunningStats slackQueries;    ///< deadline-slack queries per solve
  RunningStats slackHits;       ///< queries served from the memo
  RunningStats slackRebuilds;   ///< per-machine column recomputations
  // LP engine telemetry of the MIP's node LPs (lp::LpCounters summed over
  // each solve): pivot volume, eta-file rebuilds, and intra-solve basis
  // reuse (child nodes warm-started from their parent's basis).
  RunningStats lpPivots;
  RunningStats lpRefactorizations;
  RunningStats lpWarmReuse;  ///< node bases accepted (used + repaired)
};

std::vector<Fig4Row> runFig4a(const Fig4Config& config,
                              ExperimentRunner& runner);
std::vector<Fig4Row> runFig4b(const Fig4Config& config,
                              ExperimentRunner& runner);

// -------------------------------------------------------------- Table 1 ---
// DSCT-EA-FR-OPT vs the LP solved by the general-purpose simplex.
struct Table1Config {
  std::vector<int> taskCounts{100, 200, 300, 400, 500};
  int numMachines = 5;
  double rho = 0.35;
  double beta = 0.5;
  double thetaMin = 0.1;
  double thetaMax = 1.0;
  double lpTimeLimit = 120.0;
  int replications = 3;
  std::uint64_t seed = 7;

  static Table1Config quick();
};

struct Table1Row {
  int numTasks = 0;
  RunningStats frOptSeconds;
  RunningStats lpSeconds;
  int lpTimeouts = 0;
  RunningStats objectiveDiff;  ///< |FR-OPT − LP| when the LP finished
  // FR-OPT work counters (per solve), from FrOptResult::counters.
  RunningStats frEvaluations;  ///< fused profile evaluations
  RunningStats frCacheHits;    ///< memoised evaluations served
  RunningStats frDirectionLps; ///< direction-search LP solves
  // LP engine telemetry (lp::LpCounters of the simplex runs above).
  RunningStats lpPivots;           ///< simplex pivots per LP solve
  RunningStats lpRefactorizations; ///< eta-file rebuilds per LP solve
};

std::vector<Table1Row> runTable1(const Table1Config& config,
                                 ExperimentRunner& runner);

// --------------------------------------------------------------- Fig. 5 ---
// Average accuracy vs energy budget ratio β, 4 methods.
struct Fig5Config {
  int numTasks = 100;
  int numMachines = 2;
  double rho = 1.0;
  double theta = 0.1;  ///< uniform tasks
  std::vector<double> betaValues{0.1, 0.2, 0.3, 0.4, 0.5,
                                 0.6, 0.7, 0.8, 0.9, 1.0};
  int replications = 10;
  std::uint64_t seed = 99;

  static Fig5Config quick();
};

struct Fig5Row {
  double beta = 0.0;
  RunningStats approx;  ///< average accuracy per task
  RunningStats ub;
  RunningStats edfNoCompression;
  RunningStats edfLevels;
  RunningStats approxEnergy;  ///< Joules consumed by APPROX
  RunningStats edfNoEnergy;   ///< Joules consumed by EDF-NoCompression
};

std::vector<Fig5Row> runFig5(const Fig5Config& config,
                             ExperimentRunner& runner);

/// The paper's headline: the largest fraction of the *uncompressed
/// service's energy bill* that compressible scheduling saves while losing
/// at most `maxAccuracyLoss` average accuracy (paper: 70% saved at ~2%).
/// The reference bill is EDF-NoCompression's consumption at the largest β.
struct EnergyGain {
  double savedFraction = 0.0;   ///< 1 − E_approx(β*) / E_uncompressed
  double accuracyLoss = 0.0;    ///< at β*
  double betaStar = 1.0;
};
EnergyGain energyGainHeadline(const std::vector<Fig5Row>& rows,
                              double maxAccuracyLoss = 0.02);

// --------------------------------------------------------------- Fig. 6 ---
// Energy profiles of 2 heterogeneous machines vs β.
struct Fig6Config {
  int numTasks = 100;
  double rho = 0.01;
  // Machine 1: slower but more efficient; machine 2: faster, less efficient.
  double speed1 = 2.0, eff1 = 80e-3;  ///< 2 TFLOPS, 80 GFLOPS/W
  double speed2 = 5.0, eff2 = 70e-3;  ///< 5 TFLOPS, 70 GFLOPS/W
  std::vector<double> betaValues{0.1, 0.2, 0.3, 0.4, 0.5,
                                 0.6, 0.7, 0.8, 0.9, 1.0};
  bool earliestHighEfficient = false;  ///< false: Uniform Tasks (Fig. 6a)
  int replications = 5;
  std::uint64_t seed = 6;

  static Fig6Config quick();
};

struct Fig6Row {
  double beta = 0.0;
  RunningStats profile1;       ///< realised load of machine 1 (s)
  RunningStats profile2;
  RunningStats naiveProfile1;  ///< naive profile for reference
  RunningStats naiveProfile2;
  RunningStats normalized1;    ///< per-replication p1 / d_max
  RunningStats normalized2;    ///< per-replication p2 / d_max
  double dmax = 0.0;           ///< mean horizon, for plotting
};

std::vector<Fig6Row> runFig6(const Fig6Config& config,
                             ExperimentRunner& runner);

}  // namespace dsct
