#include "experiments/runner.h"

#include "util/check.h"

namespace dsct {

RunningStats ExperimentRunner::replicate(
    int reps, const std::function<double(int)>& fn) {
  DSCT_CHECK(reps >= 0);
  const std::vector<double> values = pool_.parallelMap(
      static_cast<std::size_t>(reps),
      [&fn](std::size_t i) { return fn(static_cast<int>(i)); });
  RunningStats stats;
  for (double v : values) stats.add(v);
  return stats;
}

std::vector<RunningStats> ExperimentRunner::replicateMulti(
    int reps, int metrics,
    const std::function<std::vector<double>(int)>& fn) {
  DSCT_CHECK(reps >= 0);
  DSCT_CHECK(metrics >= 1);
  const auto rows = pool_.parallelMap(
      static_cast<std::size_t>(reps),
      [&fn](std::size_t i) { return fn(static_cast<int>(i)); });
  std::vector<RunningStats> stats(static_cast<std::size_t>(metrics));
  for (const auto& row : rows) {
    DSCT_CHECK_MSG(static_cast<int>(row.size()) == metrics,
                   "replication returned wrong metric count");
    for (int k = 0; k < metrics; ++k) {
      stats[static_cast<std::size_t>(k)].add(row[static_cast<std::size_t>(k)]);
    }
  }
  return stats;
}

}  // namespace dsct
