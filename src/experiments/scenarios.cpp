#include "experiments/scenarios.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/solver_api.h"
#include "core/solver_registry.h"
#include "mipmodel/dsct_lp.h"
#include "mipmodel/dsct_mip.h"
#include "sched/energy_profile.h"
#include "solver/mip.h"
#include "solver/simplex.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace dsct {

namespace {

/// Rough memory estimate (bytes) of the working set the default (revised)
/// simplex allocates for `model`: CSC column storage plus the per-row and
/// per-column scratch vectors. Linear in nonzeros, not rows × cols — the
/// old dense-tableau guard skipped exactly the large instances the sparse
/// engine was built to reach, so the skip now only fires for models that
/// genuinely cannot fit, and the time limit handles the rest honestly.
double lpWorkingSetBytes(const lp::Model& model) {
  double nnz = 0.0;
  for (const auto& row : model.constraints()) {
    nnz += static_cast<double>(row.coeffs.size());
  }
  const double rows = model.numConstraints();
  const double cols = static_cast<double>(model.numVariables()) + rows;
  // CSC (int index + double value) for structural nonzeros and one logical
  // entry per row, ~6 column-length and ~6 row-length work vectors, and
  // eta-file headroom between refactorisations (~64 sparse columns).
  return (nnz + rows) * 12.0 + (cols + rows) * 6.0 * 8.0 + rows * 64.0 * 12.0;
}

constexpr double kMaxLpBytes = 500e6;

}  // namespace

// ------------------------------------------------------------------ Fig. 3

Fig3Config Fig3Config::quick() {
  Fig3Config c;
  c.numTasks = 30;
  c.numMachines = 3;
  c.replications = 10;
  return c;
}

std::vector<Fig3Row> runFig3(const Fig3Config& config,
                             ExperimentRunner& runner) {
  std::vector<Fig3Row> rows;
  rows.reserve(config.muValues.size());
  for (std::size_t p = 0; p < config.muValues.size(); ++p) {
    const double mu = config.muValues[p];
    const auto stats = runner.replicateMulti(
        config.replications, 2, [&, mu, p](int rep) {
          ScenarioSpec spec;
          spec.numTasks = config.numTasks;
          spec.numMachines = config.numMachines;
          spec.rho = config.rho;
          spec.beta = config.beta;
          const std::uint64_t seed = deriveSeed(
              config.seed, static_cast<std::uint64_t>(p) * 1000003u +
                               static_cast<std::uint64_t>(rep));
          const Instance inst = makeScenario(spec, config.thetaMin,
                                             config.thetaMin * mu, seed);
          const SolveOutcome res =
              SolverRegistry::instance().resolve("approx").solve(
                  inst, runner.context());
          return std::vector<double>{res.upperBound - res.totalAccuracy,
                                     res.guaranteeG};
        });
    Fig3Row row;
    row.mu = mu;
    row.gap = stats[0];
    row.guarantee = stats[1];
    rows.push_back(row);
  }
  return rows;
}

// ------------------------------------------------------------------ Fig. 4

Fig4Config Fig4Config::quick() {
  Fig4Config c;
  c.taskCounts = {5, 10, 15, 20};
  c.machineCounts = {2, 3, 4};
  c.fixedTasks = 10;
  c.fixedMachines = 3;
  c.mipTimeLimit = 2.0;
  c.replications = 2;
  return c;
}

namespace {

Fig4Row runFig4Point(const Fig4Config& config, int n, int m, int pointIndex,
                     const SolveContext& context) {
  const Solver& approxSolver = SolverRegistry::instance().resolve("approx");
  Fig4Row row;
  row.size = 0;  // caller sets
  for (int rep = 0; rep < config.replications; ++rep) {
    ScenarioSpec spec;
    spec.numTasks = n;
    spec.numMachines = m;
    spec.rho = config.rho;
    spec.beta = config.beta;
    const std::uint64_t seed = deriveSeed(
        config.seed, static_cast<std::uint64_t>(pointIndex) * 1000003u +
                         static_cast<std::uint64_t>(rep));
    const Instance inst =
        makeScenario(spec, config.thetaMin, config.thetaMax, seed);

    const SolveOutcome approx = approxSolver.solve(inst, context);
    row.approxSeconds.add(approx.wallSeconds);
    row.approxAccuracy.add(approx.totalAccuracy /
                           static_cast<double>(std::max(1, n)));
    const FrOptCounters& counters = approx.counters;
    row.refineSeconds.add(counters.refineSeconds);
    row.slackQueries.add(static_cast<double>(counters.slackQueries));
    row.slackHits.add(static_cast<double>(counters.slackHits));
    row.slackRebuilds.add(static_cast<double>(counters.slackRebuilds));

    DsctMip mip = buildMip(inst);
    if (lpWorkingSetBytes(mip.model) > kMaxLpBytes) {
      // The LP working set would not fit; the solver run is hopeless within
      // any reasonable limit — record it as a time-limit hit.
      row.mipSeconds.add(config.mipTimeLimit);
      ++row.mipTimeouts;
      continue;
    }
    lp::MipOptions options;
    options.timeLimitSeconds = config.mipTimeLimit;
    Stopwatch watch;
    const lp::MipResult res = lp::solveMip(mip.model, options);
    row.mipSeconds.add(watch.elapsedSeconds());
    if (res.status != lp::SolveStatus::kOptimal) ++row.mipTimeouts;
    row.lpPivots.add(static_cast<double>(res.lpCounters.pivots));
    row.lpRefactorizations.add(
        static_cast<double>(res.lpCounters.refactorizations));
    row.lpWarmReuse.add(static_cast<double>(res.lpCounters.warmStartsUsed +
                                            res.lpCounters.warmStartsRepaired));
    if (res.hasSolution) {
      row.mipAccuracy.add(res.objective / static_cast<double>(std::max(1, n)));
    }
  }
  return row;
}

}  // namespace

std::vector<Fig4Row> runFig4a(const Fig4Config& config,
                              ExperimentRunner& runner) {
  // Timing experiments run serially: parallel replication would contend for
  // cores and distort wall-clock measurements.
  std::vector<Fig4Row> rows;
  for (std::size_t p = 0; p < config.taskCounts.size(); ++p) {
    Fig4Row row =
        runFig4Point(config, config.taskCounts[p], config.fixedMachines,
                     static_cast<int>(p), runner.context());
    row.size = config.taskCounts[p];
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Fig4Row> runFig4b(const Fig4Config& config,
                              ExperimentRunner& runner) {
  std::vector<Fig4Row> rows;
  for (std::size_t p = 0; p < config.machineCounts.size(); ++p) {
    Fig4Row row =
        runFig4Point(config, config.fixedTasks, config.machineCounts[p],
                     1000 + static_cast<int>(p), runner.context());
    row.size = config.machineCounts[p];
    rows.push_back(std::move(row));
  }
  return rows;
}

// ----------------------------------------------------------------- Table 1

Table1Config Table1Config::quick() {
  Table1Config c;
  c.taskCounts = {10, 20, 40};
  c.replications = 2;
  c.lpTimeLimit = 30.0;
  return c;
}

std::vector<Table1Row> runTable1(const Table1Config& config,
                                 ExperimentRunner& runner) {
  const Solver& frOptSolver = SolverRegistry::instance().resolve("fr-opt");
  std::vector<Table1Row> rows;
  for (std::size_t p = 0; p < config.taskCounts.size(); ++p) {
    const int n = config.taskCounts[p];
    Table1Row row;
    row.numTasks = n;
    for (int rep = 0; rep < config.replications; ++rep) {
      ScenarioSpec spec;
      spec.numTasks = n;
      spec.numMachines = config.numMachines;
      spec.rho = config.rho;
      spec.beta = config.beta;
      const std::uint64_t seed = deriveSeed(
          config.seed, static_cast<std::uint64_t>(p) * 1000003u +
                           static_cast<std::uint64_t>(rep));
      const Instance inst =
          makeScenario(spec, config.thetaMin, config.thetaMax, seed);

      const SolveOutcome fr = frOptSolver.solve(inst, runner.context());
      row.frOptSeconds.add(fr.wallSeconds);
      row.frEvaluations.add(static_cast<double>(fr.counters.evaluations));
      row.frCacheHits.add(static_cast<double>(fr.counters.cacheHits));
      row.frDirectionLps.add(
          static_cast<double>(fr.counters.directionLpSolves));

      DsctLp lpModel = buildFractionalLp(inst);
      if (lpWorkingSetBytes(lpModel.model) > kMaxLpBytes) {
        row.lpSeconds.add(config.lpTimeLimit);
        ++row.lpTimeouts;
        continue;
      }
      lp::LpOptions options;
      options.timeLimitSeconds = config.lpTimeLimit;
      Stopwatch watch;
      const lp::LpResult lpRes = lp::solveLp(lpModel.model, options);
      row.lpSeconds.add(watch.elapsedSeconds());
      row.lpPivots.add(static_cast<double>(lpRes.counters.pivots));
      row.lpRefactorizations.add(
          static_cast<double>(lpRes.counters.refactorizations));
      if (lpRes.status == lp::SolveStatus::kOptimal) {
        row.objectiveDiff.add(std::fabs(lpRes.objective - fr.totalAccuracy));
      } else {
        ++row.lpTimeouts;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// ------------------------------------------------------------------ Fig. 5

Fig5Config Fig5Config::quick() {
  Fig5Config c;
  c.numTasks = 30;
  c.betaValues = {0.1, 0.3, 0.5, 0.7, 1.0};
  c.replications = 5;
  return c;
}

std::vector<Fig5Row> runFig5(const Fig5Config& config,
                             ExperimentRunner& runner) {
  std::vector<Fig5Row> rows;
  rows.reserve(config.betaValues.size());
  for (std::size_t p = 0; p < config.betaValues.size(); ++p) {
    const double beta = config.betaValues[p];
    const auto stats = runner.replicateMulti(
        config.replications, 6, [&, beta](int rep) {
          ScenarioSpec spec;
          spec.numTasks = config.numTasks;
          spec.numMachines = config.numMachines;
          spec.rho = config.rho;
          spec.beta = beta;
          // Fig. 5's β sweep needs a budget that binds across (0, 1); the
          // workload-energy normalisation grants exactly the deadline-only
          // optimum's energy at β = 1 (see BudgetMode and DESIGN.md).
          spec.budgetMode = BudgetMode::kWorkloadEnergy;
          // Seed depends only on the replication: every β point sees the
          // same instances (paired sweep, lower variance across the curve).
          const std::uint64_t seed =
              deriveSeed(config.seed, static_cast<std::uint64_t>(rep));
          const Instance inst =
              makeScenario(spec, config.theta, config.theta, seed);
          const double n = static_cast<double>(inst.numTasks());
          // One registry dispatch per compared policy — adding a solver to
          // the comparison is a name in this list, not a new direct call.
          std::vector<SolveOutcome> outcomes;
          for (const char* name : {"approx", "edf", "edf3"}) {
            outcomes.push_back(SolverRegistry::instance().resolve(name).solve(
                inst, runner.context()));
          }
          const SolveOutcome& approx = outcomes[0];
          const SolveOutcome& edfNo = outcomes[1];
          const SolveOutcome& edf3 = outcomes[2];
          return std::vector<double>{
              approx.totalAccuracy / n, approx.upperBound / n,
              edfNo.totalAccuracy / n, edf3.totalAccuracy / n,
              approx.energy,           edfNo.energy};
        });
    Fig5Row row;
    row.beta = beta;
    row.approx = stats[0];
    row.ub = stats[1];
    row.edfNoCompression = stats[2];
    row.edfLevels = stats[3];
    row.approxEnergy = stats[4];
    row.edfNoEnergy = stats[5];
    rows.push_back(row);
  }
  return rows;
}

EnergyGain energyGainHeadline(const std::vector<Fig5Row>& rows,
                              double maxAccuracyLoss) {
  EnergyGain gain;
  if (rows.empty()) return gain;
  // Reference: the *uncompressed* service at the largest β — its accuracy
  // is the "no compression" quality bar and its consumption is the energy
  // bill the operator pays today.
  const Fig5Row* reference = &rows.front();
  for (const Fig5Row& row : rows) {
    if (row.beta > reference->beta) reference = &row;
  }
  const double fullAccuracy = reference->edfNoCompression.mean();
  const double fullBill = reference->edfNoEnergy.mean();
  if (fullBill <= 0.0) return gain;
  for (const Fig5Row& row : rows) {
    const double loss = fullAccuracy - row.approx.mean();
    const double saved = 1.0 - row.approxEnergy.mean() / fullBill;
    if (loss <= maxAccuracyLoss && saved > gain.savedFraction) {
      gain.savedFraction = saved;
      gain.accuracyLoss = std::max(0.0, loss);
      gain.betaStar = row.beta;
    }
  }
  return gain;
}

// ------------------------------------------------------------------ Fig. 6

Fig6Config Fig6Config::quick() {
  Fig6Config c;
  c.numTasks = 40;
  c.betaValues = {0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
  c.replications = 3;
  return c;
}

std::vector<Fig6Row> runFig6(const Fig6Config& config,
                             ExperimentRunner& runner) {
  std::vector<Fig6Row> rows;
  rows.reserve(config.betaValues.size());
  for (std::size_t p = 0; p < config.betaValues.size(); ++p) {
    const double beta = config.betaValues[p];
    const auto stats = runner.replicateMulti(
        config.replications, 7, [&, beta, p](int rep) {
          const std::uint64_t seed = deriveSeed(
              config.seed, static_cast<std::uint64_t>(p) * 1000003u +
                               static_cast<std::uint64_t>(rep));
          Rng rng(seed);
          std::vector<Machine> machines{
              Machine{config.speed1, config.eff1, "machine-1"},
              Machine{config.speed2, config.eff2, "machine-2"}};
          std::vector<double> thetas =
              config.earliestHighEfficient
                  ? makeThetasEarliestHighEfficient(config.numTasks, 0.3, 4.0,
                                                    4.9, 0.1, 1.0, rng)
                  : makeThetasUniform(config.numTasks, 0.1, 4.9, rng);
          ScenarioSpec spec;
          spec.numTasks = config.numTasks;
          spec.numMachines = 2;
          spec.rho = config.rho;
          spec.beta = beta;
          const Instance inst =
              buildInstance(std::move(machines), thetas, spec, rng);
          const SolveOutcome fr =
              SolverRegistry::instance().resolve("fr-opt").solve(
                  inst, runner.context());
          const EnergyProfile naive = naiveProfile(inst);
          const double horizon = inst.maxDeadline();
          return std::vector<double>{fr.machineLoads[0],
                                     fr.machineLoads[1], naive[0], naive[1],
                                     horizon, fr.machineLoads[0] / horizon,
                                     fr.machineLoads[1] / horizon};
        });
    Fig6Row row;
    row.beta = beta;
    row.profile1 = stats[0];
    row.profile2 = stats[1];
    row.naiveProfile1 = stats[2];
    row.naiveProfile2 = stats[3];
    row.dmax = stats[4].mean();
    row.normalized1 = stats[5];
    row.normalized2 = stats[6];
    rows.push_back(row);
  }
  return rows;
}

}  // namespace dsct
