#include "experiments/report.h"

#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace dsct {

std::string markdownTable(const std::vector<std::string>& header,
                          const std::vector<std::vector<double>>& rows,
                          int precision) {
  DSCT_CHECK(!header.empty());
  std::ostringstream os;
  os << '|';
  for (const std::string& h : header) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t i = 0; i < header.size(); ++i) os << "---|";
  os << '\n';
  os << std::fixed << std::setprecision(precision);
  for (const auto& row : rows) {
    DSCT_CHECK_MSG(row.size() == header.size(), "report row arity mismatch");
    os << '|';
    for (double v : row) os << ' ' << v << " |";
    os << '\n';
  }
  return os.str();
}

std::string generateReport(const ReportConfig& config,
                           ExperimentRunner& runner) {
  std::ostringstream os;
  os << "# dsct experiment report\n\n"
     << "mode: " << (config.fullScale ? "full (paper scale)" : "quick")
     << "\n\n";

  if (config.includeFig3) {
    Fig3Config c = config.fullScale ? Fig3Config{} : Fig3Config::quick();
    const auto rows = runFig3(c, runner);
    os << "## Fig. 3 — optimality gap vs task heterogeneity\n\n";
    std::vector<std::vector<double>> data;
    for (const Fig3Row& row : rows) {
      data.push_back({row.mu, row.gap.mean(), row.gap.min(), row.gap.max(),
                      row.guarantee.mean()});
    }
    os << markdownTable({"mu", "gap mean", "gap min", "gap max", "G"}, data)
       << '\n';
  }

  if (config.includeFig4) {
    Fig4Config c = config.fullScale ? Fig4Config{} : Fig4Config::quick();
    const auto rows = runFig4a(c, runner);
    os << "## Fig. 4a — runtime vs number of tasks\n\n";
    std::vector<std::vector<double>> data;
    for (const Fig4Row& row : rows) {
      data.push_back({static_cast<double>(row.size),
                      row.approxSeconds.mean(), row.mipSeconds.mean(),
                      static_cast<double>(row.mipTimeouts)});
    }
    os << markdownTable({"n", "approx s", "mip s", "timeouts"}, data) << '\n';
  }

  if (config.includeTable1) {
    Table1Config c = config.fullScale ? Table1Config{} : Table1Config::quick();
    const auto rows = runTable1(c, runner);
    os << "## Table 1 — FR-OPT vs LP simplex\n\n";
    std::vector<std::vector<double>> data;
    for (const Table1Row& row : rows) {
      data.push_back({static_cast<double>(row.numTasks),
                      row.frOptSeconds.mean(), row.lpSeconds.mean()});
    }
    os << markdownTable({"n", "fr-opt s", "lp s"}, data) << '\n';
  }

  if (config.includeFig5) {
    Fig5Config c = config.fullScale ? Fig5Config{} : Fig5Config::quick();
    const auto rows = runFig5(c, runner);
    os << "## Fig. 5 — accuracy vs energy budget\n\n";
    std::vector<std::vector<double>> data;
    for (const Fig5Row& row : rows) {
      data.push_back({row.beta, row.approx.mean(), row.ub.mean(),
                      row.edfNoCompression.mean(), row.edfLevels.mean()});
    }
    os << markdownTable({"beta", "approx", "ub", "edf", "edf3"}, data);
    const EnergyGain gain = energyGainHeadline(rows);
    os << "\nenergy-gain headline: " << std::fixed << std::setprecision(1)
       << 100.0 * gain.savedFraction << "% saved at "
       << 100.0 * gain.accuracyLoss << "% accuracy loss (beta* = "
       << std::setprecision(2) << gain.betaStar << ")\n\n";
  }

  if (config.includeFig6) {
    for (const bool scenarioB : {false, true}) {
      Fig6Config c = config.fullScale ? Fig6Config{} : Fig6Config::quick();
      c.earliestHighEfficient = scenarioB;
      const auto rows = runFig6(c, runner);
      os << "## Fig. 6" << (scenarioB ? "b — earliest high efficient"
                                      : "a — uniform tasks")
         << "\n\n";
      std::vector<std::vector<double>> data;
      for (const Fig6Row& row : rows) {
        data.push_back({row.beta, row.profile1.mean(), row.profile2.mean(),
                        row.naiveProfile1.mean(), row.naiveProfile2.mean()});
      }
      os << markdownTable({"beta", "p1", "p2", "p1 naive", "p2 naive"}, data)
         << '\n';
    }
  }

  return os.str();
}

}  // namespace dsct
