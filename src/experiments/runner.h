// Parallel replication runner for the evaluation harness.
//
// Replications are independent (seeded via deriveSeed(master, rep)), so they
// map cleanly onto the thread pool; results are reduced into RunningStats.
// Determinism: the set of per-replication results is a pure function of the
// master seed, so aggregate statistics do not depend on thread interleaving.
#pragma once

#include <cstdint>
#include <functional>

#include "util/stats.h"
#include "util/thread_pool.h"

namespace dsct {

class ExperimentRunner {
 public:
  /// threads = 0 uses hardware concurrency.
  explicit ExperimentRunner(std::size_t threads = 0) : pool_(threads) {}

  ThreadPool& pool() { return pool_; }

  /// Run `reps` replications of fn(replicationIndex) and aggregate.
  RunningStats replicate(int reps, const std::function<double(int)>& fn);

  /// Multi-metric version: fn returns one value per metric; stats are
  /// aggregated per metric.
  std::vector<RunningStats> replicateMulti(
      int reps, int metrics,
      const std::function<std::vector<double>(int)>& fn);

 private:
  ThreadPool pool_;
};

}  // namespace dsct
