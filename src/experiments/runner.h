// Parallel replication runner for the evaluation harness.
//
// Replications are independent (seeded via deriveSeed(master, rep)), so they
// map cleanly onto the thread pool; results are reduced into RunningStats.
// Determinism: the set of per-replication results is a pure function of the
// master seed, so aggregate statistics do not depend on thread interleaving.
#pragma once

#include <cstdint>
#include <functional>

#include "core/solver_api.h"
#include "sched/profile_cache.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dsct {

class ExperimentRunner {
 public:
  /// threads = 0 uses hardware concurrency.
  explicit ExperimentRunner(std::size_t threads = 0) : pool_(threads) {
    context_.frOpt.sharedCache = &cache_;
  }

  ThreadPool& pool() { return pool_; }

  /// Shared solve context for every experiment of the run. It carries the
  /// cross-solve ProfileCache — the same configuration the serving loop runs
  /// with — so repeated solves of identical (instance, machine-state) pairs
  /// reuse earlier FR-OPT evaluations; the sharded cache is safe to read
  /// from parallel replications. Deliberately no thread pool: replications
  /// already run in parallel, and the timing figures (Fig. 4, Table 1) must
  /// measure each solve serially.
  SolveContext& context() { return context_; }
  const ProfileCache& profileCache() const { return cache_; }

  /// Run `reps` replications of fn(replicationIndex) and aggregate.
  RunningStats replicate(int reps, const std::function<double(int)>& fn);

  /// Multi-metric version: fn returns one value per metric; stats are
  /// aggregated per metric.
  std::vector<RunningStats> replicateMulti(
      int reps, int metrics,
      const std::function<std::vector<double>(int)>& fn);

 private:
  ThreadPool pool_;
  ProfileCache cache_;
  SolveContext context_;
};

}  // namespace dsct
