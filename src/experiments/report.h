// Markdown report generation: runs the (quick or full) experiment suite and
// renders one self-contained document with every figure's data — the
// machine-written companion to EXPERIMENTS.md.
#pragma once

#include <string>

#include "experiments/runner.h"
#include "experiments/scenarios.h"

namespace dsct {

struct ReportConfig {
  bool fullScale = false;  ///< paper-scale parameters instead of quick ones
  /// Individual toggles (timing sections dominate runtime at full scale).
  bool includeFig3 = true;
  bool includeFig4 = true;
  bool includeTable1 = true;
  bool includeFig5 = true;
  bool includeFig6 = true;
};

/// Render a markdown table from a header and rows of numbers.
std::string markdownTable(const std::vector<std::string>& header,
                          const std::vector<std::vector<double>>& rows,
                          int precision = 3);

/// Run the configured experiments and produce the full markdown report.
std::string generateReport(const ReportConfig& config,
                           ExperimentRunner& runner);

}  // namespace dsct
