// Umbrella header for the dsct library.
//
// Reproduction of "Scheduling Machine Learning Compressible Inference Tasks
// with Limited Energy Budget" (da Silva Barros et al., ICPP 2024).
//
// Typical use:
//   dsct::Instance inst = dsct::makeScenario(spec, thetaMin, thetaMax, seed);
//   dsct::ApproxResult result = dsct::solveApprox(inst);
//   // result.schedule        — integral task→machine schedule
//   // result.totalAccuracy   — SOL
//   // result.upperBound      — OPT of the fractional relaxation
#pragma once

#include "accuracy/exponential.h"
#include "accuracy/fit.h"
#include "accuracy/levels.h"
#include "accuracy/piecewise.h"
#include "baselines/edf_levels.h"
#include "baselines/edf_nocompress.h"
#include "baselines/levels_opt.h"
#include "core/solver_api.h"
#include "core/solver_registry.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "io/instance_io.h"
#include "mipmodel/dsct_lp.h"
#include "mipmodel/dsct_mip.h"
#include "sched/approx.h"
#include "sched/energy_profile.h"
#include "sched/fr_opt.h"
#include "sched/guarantee.h"
#include "sched/kkt.h"
#include "sched/naive_solution.h"
#include "sched/refine_profile.h"
#include "sched/render.h"
#include "sched/schedule.h"
#include "sched/single_machine.h"
#include "sched/types.h"
#include "sched/validator.h"
#include "sim/cluster.h"
#include "sim/epoch_pipeline.h"
#include "sim/faults.h"
#include "sim/renewable.h"
#include "sim/serving.h"
#include "sim/trace.h"
#include "solver/mip.h"
#include "solver/model.h"
#include "solver/presolve.h"
#include "solver/simplex.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/arrivals.h"
#include "workload/generator.h"
#include "workload/gpu_catalog.h"
#include "workload/model_catalog.h"
#include "workload/scenario.h"
