#include "util/csv.h"

#include <limits>
#include <sstream>

#include "util/check.h"

namespace dsct {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), out_(path), arity_(header.size()) {
  DSCT_CHECK(arity_ > 0);
  writeCells(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needsQuote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::writeCells(const std::vector<std::string>& cells) {
  DSCT_CHECK_MSG(cells.size() == arity_, "CSV arity mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::addRow(const std::vector<std::string>& cells) {
  writeCells(cells);
}

void CsvWriter::addRow(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double x : cells) {
    std::ostringstream os;
    // max_digits10 guarantees the double round-trips exactly; precision(12)
    // silently dropped the last ~5 bits of every value.
    os.precision(std::numeric_limits<double>::max_digits10);
    os << x;
    text.push_back(os.str());
  }
  writeCells(text);
}

}  // namespace dsct
