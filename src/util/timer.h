// Wall-clock stopwatch for timing experiments (Fig. 4, Table 1).
#pragma once

#include <chrono>

namespace dsct {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Deadline helper for solver time limits. A non-positive limit means "no
/// limit".
class TimeLimit {
 public:
  explicit TimeLimit(double seconds) : seconds_(seconds) {}

  bool expired() const {
    return seconds_ > 0.0 && watch_.elapsedSeconds() >= seconds_;
  }
  double remaining() const {
    return seconds_ <= 0.0 ? -1.0 : seconds_ - watch_.elapsedSeconds();
  }
  double limitSeconds() const { return seconds_; }

 private:
  double seconds_;
  Stopwatch watch_;
};

}  // namespace dsct
