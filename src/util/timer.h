// Wall-clock stopwatch for timing experiments (Fig. 4, Table 1).
#pragma once

#include <chrono>
#include <limits>

namespace dsct {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Deadline helper for solver time limits. A non-positive limit means "no
/// limit".
class TimeLimit {
 public:
  explicit TimeLimit(double seconds) : seconds_(seconds) {}

  bool expired() const {
    return seconds_ > 0.0 && watch_.elapsedSeconds() >= seconds_;
  }
  /// Whether a finite limit is in force.
  bool hasLimit() const { return seconds_ > 0.0; }
  /// Seconds left before the limit: +infinity when unlimited, and <= 0
  /// once an active limit has expired. (Unlimited used to be signalled by
  /// -1.0, which was indistinguishable from an expired limit's negative
  /// remainder at call sites.)
  double remaining() const {
    return seconds_ <= 0.0 ? std::numeric_limits<double>::infinity()
                           : seconds_ - watch_.elapsedSeconds();
  }
  double limitSeconds() const { return seconds_; }

 private:
  double seconds_;
  Stopwatch watch_;
};

}  // namespace dsct
