// Deterministic random-number utilities.
//
// Every stochastic component in the library takes an explicit 64-bit seed;
// replicated experiments derive per-replication seeds with SplitMix64 so that
// results are reproducible regardless of how the thread pool interleaves work.
#pragma once

#include <cstdint>
#include <random>

#include "util/check.h"

namespace dsct {

/// SplitMix64 — tiny, high-quality seed mixer (Steele et al., public domain
/// algorithm). Used to derive independent child seeds from a master seed.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derive a child seed from (master, stream). Distinct streams give
/// statistically independent generators.
inline std::uint64_t deriveSeed(std::uint64_t master, std::uint64_t stream) {
  return splitmix64(master ^ splitmix64(stream));
}

/// Thin wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    DSCT_CHECK_MSG(lo <= hi, "uniform(" << lo << ", " << hi << ")");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniformInt(int lo, int hi) {
    DSCT_CHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Exponential with given rate (mean 1/rate). Used for Poisson arrivals.
  double exponential(double rate) {
    DSCT_CHECK(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli trial.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dsct
