// Cooperative cancellation/deadline token for solver calls.
//
// A CancelToken pairs an atomic cancel flag with an optional deadline
// measured against an injectable monotonic clock. Solvers poll
// `stopRequested()` at iteration boundaries (outer rounds, node
// expansions, per-task loops) and return early with partial work instead
// of being killed; nothing here preempts a thread. The injectable clock
// is what makes wall-clock timeout behaviour testable: a fake clock
// advanced by the test turns "the solver ran past its deadline" into a
// deterministic event.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <utility>

namespace dsct {

/// Monotonic clock source, seconds since an arbitrary epoch. Must be
/// callable from multiple threads concurrently (async serving polls it
/// from the solve thread while the driver reads it from the sim thread).
using ClockFn = std::function<double()>;

/// The default wall clock: std::chrono::steady_clock, in seconds.
inline double steadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deadline + cancel flag polled cooperatively by solvers.
///
/// Three states:
///  - default-constructed: no deadline, never expires (cancel still works);
///  - `CancelToken(budget)` with budget > 0: expires `budget` seconds after
///    construction (per the supplied clock);
///  - `CancelToken(budget)` with budget <= 0: already expired — the caller
///    had no time left to grant. This is distinct from "no deadline"; use
///    the default constructor for unlimited.
class CancelToken {
 public:
  CancelToken() = default;

  explicit CancelToken(double budgetSeconds, ClockFn clock = {})
      : clock_(std::move(clock)), hasDeadline_(true) {
    const double now = clock_ ? clock_() : steadyNowSeconds();
    deadline_ = budgetSeconds > 0.0
                    ? now + budgetSeconds
                    : -std::numeric_limits<double>::infinity();
  }

  /// Flip the cancel flag. Safe from any thread; sticky.
  void requestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelRequested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool hasDeadline() const { return hasDeadline_; }

  /// True once the deadline has passed. False forever when no deadline.
  bool expired() const {
    if (!hasDeadline_) return false;
    return (clock_ ? clock_() : steadyNowSeconds()) >= deadline_;
  }

  /// The one predicate solvers poll: cancelled or past the deadline.
  bool stopRequested() const { return cancelRequested() || expired(); }

  /// Seconds until the deadline; +infinity when there is none. May be
  /// negative once expired (callers use <= 0 as "nothing left to grant").
  double remainingSeconds() const {
    if (!hasDeadline_) return std::numeric_limits<double>::infinity();
    return deadline_ - (clock_ ? clock_() : steadyNowSeconds());
  }

 private:
  ClockFn clock_;  ///< empty => steadyNowSeconds
  double deadline_ = 0.0;
  bool hasDeadline_ = false;
  std::atomic<bool> cancelled_{false};
};

/// Poll helper for optional token pointers threaded through option structs:
/// a null token never stops.
inline bool stopRequested(const CancelToken* token) {
  return token != nullptr && token->stopRequested();
}

}  // namespace dsct
