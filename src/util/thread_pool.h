// Fixed-size thread pool used to parallelise experiment replications.
//
// Design notes (Core Guidelines CP.*): tasks are plain std::function<void()>
// values moved into a mutex-protected queue; no shared mutable state escapes
// to callers, and parallelMap derives independent outputs per index so callers
// never need their own synchronisation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/check.h"

namespace dsct {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      DSCT_CHECK_MSG(!stopping_, "submit on stopped ThreadPool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// True when the calling thread is one of this pool's workers. Blocking on
  /// queued work from inside a worker would deadlock (the blocked worker is
  /// the one the queue needs), so re-entrant helpers must run inline instead.
  bool insideWorker() const { return currentPool() == this; }

  /// Apply fn(i) for i in [0, n) in parallel; returns results in index order.
  /// fn must be callable concurrently from multiple threads. Safe to call
  /// from inside one of this pool's own workers: the work then runs inline
  /// on the calling thread instead of deadlocking on the occupied queue.
  template <typename Fn>
  auto parallelMap(std::size_t n, Fn fn)
      -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
    using R = std::invoke_result_t<Fn, std::size_t>;
    std::vector<R> out;
    out.reserve(n);
    if (insideWorker()) {
      for (std::size_t i = 0; i < n; ++i) out.push_back(fn(i));
      return out;
    }
    std::vector<std::future<R>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(submit([fn, i] { return fn(i); }));
    }
    for (auto& f : futures) out.push_back(f.get());
    return out;
  }

 private:
  /// The pool owning the current thread, or nullptr off the worker threads
  /// (thread-local; defined in thread_pool.cpp).
  static const ThreadPool*& currentPool();

  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace dsct
