// Fixed-size thread pool used to parallelise experiment replications.
//
// Design notes (Core Guidelines CP.*): tasks are plain std::function<void()>
// values moved into a mutex-protected queue; no shared mutable state escapes
// to callers, and parallelMap derives independent outputs per index so callers
// never need their own synchronisation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/check.h"

namespace dsct {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      DSCT_CHECK_MSG(!stopping_, "submit on stopped ThreadPool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Apply fn(i) for i in [0, n) in parallel; returns results in index order.
  /// fn must be callable concurrently from multiple threads.
  template <typename Fn>
  auto parallelMap(std::size_t n, Fn fn)
      -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
    using R = std::invoke_result_t<Fn, std::size_t>;
    std::vector<std::future<R>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(submit([fn, i] { return fn(i); }));
    }
    std::vector<R> out;
    out.reserve(n);
    for (auto& f : futures) out.push_back(f.get());
    return out;
  }

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace dsct
