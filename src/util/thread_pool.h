// Fixed-size thread pool used to parallelise experiment replications and
// the profile-evaluation fan-outs.
//
// Design notes (Core Guidelines CP.*): tasks are plain std::function<void()>
// values moved into a mutex-protected, *bounded* queue; no shared mutable
// state escapes to callers, and parallelMap derives independent outputs per
// index so callers never need their own synchronisation.
//
// Group waits (parallelFor / parallelMap) are counter-based and
// exception-safe: every task decrements the group counter even when it
// throws, the throwing task's exception is captured into a
// std::exception_ptr (the lowest-index one wins, deterministically), and the
// waiter rethrows only after *all* tasks of the group have finished. A
// throwing task therefore can neither hang the waiter on the counter nor
// let still-running siblings outlive the caller's stack frame (they may
// reference it by capture).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/check.h"

namespace dsct {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  /// `queueCapacity` bounds the pending-task queue (0 picks a default of
  /// max(256, 16 × threads)). A full queue applies backpressure: non-worker
  /// submitters block until a slot frees, while worker-submitted tasks run
  /// inline — a worker blocked on queue space is exactly the thread the
  /// queue needs to drain, so blocking it would deadlock the pool.
  explicit ThreadPool(std::size_t threads = 0, std::size_t queueCapacity = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }
  std::size_t queueCapacity() const { return capacity_; }

  /// Enqueue a task; returns a future for its result (exceptions travel
  /// through the future). Blocks while the queue is full (runs the task
  /// inline instead when called from one of this pool's own workers).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// True when the calling thread is one of this pool's workers. Blocking on
  /// queued work from inside a worker would deadlock (the blocked worker is
  /// the one the queue needs), so re-entrant helpers must run inline instead.
  bool insideWorker() const { return currentPool() == this; }

  /// Run fn(i) for i in [0, n) on the pool and wait for every index to
  /// finish. fn must be callable concurrently from multiple threads. Safe to
  /// call from inside one of this pool's own workers (runs inline). If one
  /// or more tasks throw, the wait still completes — every task runs exactly
  /// once — and the exception thrown by the lowest index is rethrown to the
  /// caller afterwards.
  template <typename Fn>
  void parallelFor(std::size_t n, Fn fn) {
    if (n == 0) return;
    if (insideWorker()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    struct Group {
      std::mutex mutex;
      std::condition_variable done;
      std::size_t remaining;
      std::size_t errorIndex;
      std::exception_ptr error;
    };
    auto group = std::make_shared<Group>();
    group->remaining = n;
    group->errorIndex = n;
    for (std::size_t i = 0; i < n; ++i) {
      enqueue([group, fn, i] {
        std::exception_ptr err;
        try {
          fn(i);
        } catch (...) {
          err = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(group->mutex);
        if (err != nullptr && i < group->errorIndex) {
          group->errorIndex = i;
          group->error = err;
        }
        if (--group->remaining == 0) group->done.notify_all();
      });
    }
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(group->mutex);
      group->done.wait(lock, [&group] { return group->remaining == 0; });
      // Take ownership out of the group: the last worker may still be
      // releasing its Group reference after the notify, and the waiter —
      // not a worker — must perform the exception object's final release
      // (the caller reads it after rethrow).
      error = std::move(group->error);
    }
    if (error != nullptr) std::rethrow_exception(error);
  }

  /// Apply fn(i) for i in [0, n) in parallel; returns results in index
  /// order. Built on parallelFor, so it shares its re-entrancy and
  /// exception-propagation contract. The result type must be
  /// default-constructible (slots are preallocated so workers never share a
  /// growing container).
  template <typename Fn>
  auto parallelMap(std::size_t n, Fn fn)
      -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
    using R = std::invoke_result_t<Fn, std::size_t>;
    std::vector<R> out(n);
    parallelFor(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  /// The pool owning the current thread, or nullptr off the worker threads
  /// (thread-local; defined in thread_pool.cpp).
  static const ThreadPool*& currentPool();

  /// Bounded blocking push (inline execution from workers on a full queue).
  void enqueue(std::function<void()> task);

  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::size_t capacity_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;       ///< queue became non-empty / stopping
  std::condition_variable spaceCv_;  ///< queue gained a free slot
  bool stopping_ = false;
};

}  // namespace dsct
