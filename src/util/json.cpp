#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "util/check.h"

namespace dsct {

Json::Json(bool value) : kind_(Kind::kBool), bool_(value) {}
Json::Json(int value) : kind_(Kind::kNumber), number_(value) {}
Json::Json(long long value)
    : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
Json::Json(double value) : kind_(Kind::kNumber), number_(value) {}
Json::Json(const char* value) : kind_(Kind::kString), string_(value) {}
Json::Json(std::string value)
    : kind_(Kind::kString), string_(std::move(value)) {}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  DSCT_CHECK_MSG(kind_ == Kind::kObject, "Json::set on a non-object");
  for (auto& [name, member] : members_) {
    if (name == key) {
      member = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  DSCT_CHECK_MSG(kind_ == Kind::kArray, "Json::push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  // Integral values print without an exponent or trailing zeros so counters
  // stay readable; everything else round-trips at max_digits10.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, value);
  out += buf;
}

void appendIndent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::dumpTo(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: appendNumber(out, number_); break;
    case Kind::kString: appendEscaped(out, string_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        appendIndent(out, indent, depth + 1);
        items_[i].dumpTo(out, indent, depth + 1);
      }
      appendIndent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        appendIndent(out, indent, depth + 1);
        appendEscaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dumpTo(out, indent, depth + 1);
      }
      appendIndent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

bool Json::writeFile(const std::string& path, const Json& value, int indent) {
  std::ofstream out(path);
  if (!out) return false;
  out << value.dump(indent) << '\n';
  return static_cast<bool>(out);
}

}  // namespace dsct
