#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dsct {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  DSCT_CHECK_MSG(n_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderrMean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::min() const {
  DSCT_CHECK_MSG(n_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  DSCT_CHECK_MSG(n_ > 0, "max of empty sample");
  return max_;
}

RunningStats summarize(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s;
}

double percentile(std::span<const double> xs, double p) {
  DSCT_CHECK_MSG(!xs.empty(), "percentile of empty sample");
  DSCT_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v.front();
  const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

}  // namespace dsct
