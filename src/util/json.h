// Minimal JSON value + writer for machine-readable bench output (no
// external dependencies). Benches print human tables to stdout and emit a
// BENCH_<name>.json next to the executable so downstream tooling (report
// generators, CI trend tracking) can consume runs without scraping text.
//
// The value model is the usual tree: null, bool, number, string, array,
// object. Objects preserve insertion order. Numbers serialise with
// max_digits10 so a round-trip is lossless; non-finite doubles become null
// (JSON has no literal for them).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dsct {

class Json {
 public:
  Json() = default;  ///< null
  Json(bool value);
  Json(int value);
  Json(long long value);
  Json(double value);
  Json(const char* value);
  Json(std::string value);

  static Json object();
  static Json array();

  /// Object member (creates/overwrites); dies on non-objects.
  Json& set(const std::string& key, Json value);
  /// Array append; dies on non-arrays.
  Json& push(Json value);

  bool isObject() const { return kind_ == Kind::kObject; }
  bool isArray() const { return kind_ == Kind::kArray; }

  /// Serialise; `indent` spaces per level, 0 = compact single line.
  std::string dump(int indent = 2) const;

  /// dump() to `path` with a trailing newline; false on I/O failure.
  static bool writeFile(const std::string& path, const Json& value,
                        int indent = 2);

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  void dumpTo(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace dsct
