#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace dsct {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DSCT_CHECK(!header_.empty());
}

void Table::addRow(std::vector<std::string> row) {
  DSCT_CHECK_MSG(row.size() == header_.size(),
                 "row arity " << row.size() << " != header " << header_.size());
  rows_.push_back(std::move(row));
}

void Table::addRow(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double x : row) cells.push_back(formatFixed(x, precision));
  addRow(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::toString() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string formatFixed(double x, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << x;
  return os.str();
}

}  // namespace dsct
