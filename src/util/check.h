// Lightweight precondition / invariant checking.
//
// DSCT_CHECK is always on (library boundary contracts, cheap predicates).
// DSCT_DCHECK compiles out in NDEBUG builds (hot inner-loop invariants).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dsct {

/// Thrown when a DSCT_CHECK fails. Deriving from std::logic_error keeps the
/// failure catchable in tests while signalling a programming/contract error.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace dsct

#define DSCT_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::dsct::detail::checkFailed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define DSCT_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream os_;                                         \
      os_ << msg;                                                     \
      ::dsct::detail::checkFailed(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define DSCT_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define DSCT_DCHECK(expr) DSCT_CHECK(expr)
#endif
