// Streaming summary statistics (Welford) and simple sample helpers.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace dsct {

/// Online mean/variance/min/max accumulator (Welford's algorithm; numerically
/// stable for long streams).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 for n < 2.
  double stderrMean() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Build stats over a sample in one call.
RunningStats summarize(std::span<const double> xs);

/// p-th percentile (p in [0,100]) by linear interpolation on the sorted
/// sample. Copies the input; fine for experiment-sized vectors.
double percentile(std::span<const double> xs, double p);

}  // namespace dsct
