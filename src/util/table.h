// Fixed-width console table printer used by benchmark harnesses to print
// paper-style rows (Table 1, figure data series).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dsct {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void addRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void addRow(const std::vector<double>& row, int precision = 3);

  std::size_t rowCount() const { return rows_.size(); }

  /// Render with column alignment and a rule under the header.
  void print(std::ostream& os) const;
  std::string toString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for mixed-type rows).
std::string formatFixed(double x, int precision = 3);

}  // namespace dsct
