#include "util/thread_pool.h"

#include <algorithm>

namespace dsct {

ThreadPool::ThreadPool(std::size_t threads, std::size_t queueCapacity) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  capacity_ = queueCapacity == 0
                  ? std::max<std::size_t>(256, 16 * threads)
                  : std::max<std::size_t>(1, queueCapacity);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Wake submitters blocked on a full queue so they fail fast on the
  // stopped-pool check instead of sleeping forever.
  spaceCv_.notify_all();
  for (auto& w : workers_) w.join();
}

const ThreadPool*& ThreadPool::currentPool() {
  thread_local const ThreadPool* pool = nullptr;
  return pool;
}

void ThreadPool::enqueue(std::function<void()> task) {
  std::unique_lock<std::mutex> lock(mutex_);
  DSCT_CHECK_MSG(!stopping_, "submit on stopped ThreadPool");
  if (insideWorker()) {
    if (queue_.size() >= capacity_) {
      // A worker waiting for queue space deadlocks the pool (it is one of
      // the threads the full queue is waiting on), so run inline instead.
      lock.unlock();
      task();
      return;
    }
  } else {
    spaceCv_.wait(lock,
                  [this] { return stopping_ || queue_.size() < capacity_; });
    DSCT_CHECK_MSG(!stopping_, "submit on stopped ThreadPool");
  }
  queue_.push(std::move(task));
  lock.unlock();
  cv_.notify_one();
}

void ThreadPool::workerLoop() {
  currentPool() = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    spaceCv_.notify_one();
    task();
  }
}

}  // namespace dsct
