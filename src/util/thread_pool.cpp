#include "util/thread_pool.h"

#include <algorithm>

namespace dsct {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

const ThreadPool*& ThreadPool::currentPool() {
  thread_local const ThreadPool* pool = nullptr;
  return pool;
}

void ThreadPool::workerLoop() {
  currentPool() = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace dsct
