// Minimal CSV writer for experiment output (no external dependencies).
// Values containing separators/quotes/newlines are quoted per RFC 4180.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dsct {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void addRow(const std::vector<std::string>& cells);
  void addRow(const std::vector<double>& cells);

  bool ok() const { return static_cast<bool>(out_); }
  const std::string& path() const { return path_; }

  /// Quote a single cell if needed (exposed for testing).
  static std::string escape(const std::string& cell);

 private:
  void writeCells(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace dsct
