# Rewrites the LABELS property in a gtest_discover_tests-generated ctest
# file so multi-label test binaries work. CMake's gtest discovery flattens
# list-valued PROPERTIES across its expansion layers (upstream issue
# #20075; the escape parity is unwinnable from the caller), so a binary
# registered with `LABELS unit solver` ends up with label `unit` plus a
# stray `solver` property token. Run as a POST_BUILD step after the
# discovery command (same-target POST_BUILD commands run in order), this
# script replaces the flattened token run with one bracket-quoted list.
#
# Inputs (all via -D):
#   FILE   — the generated <target>[1]_tests.cmake
#   PLAIN  — the flattened token run to find, comma-separated ("unit,solver")
#   JOINED — the label list to install, comma-separated (commas avoid
#            list-splitting on the way in; converted to `;` here)
if(NOT EXISTS "${FILE}")
  return()
endif()
string(REPLACE "," " " _plain "${PLAIN}")
string(REPLACE "," ";" _joined "${JOINED}")
file(READ "${FILE}" _content)
string(REPLACE "LABELS ${_plain})" "LABELS [==[${_joined}]==])"
       _content "${_content}")
file(WRITE "${FILE}" "${_content}")
