// Quickstart: build a small DSCT-EA instance by hand, schedule it with the
// approximation algorithm, and inspect the result.
//
//   $ ./quickstart
#include <iostream>

#include "dsct/dsct.h"

int main() {
  using namespace dsct;

  // Two GPUs: a slow-but-efficient card and a fast-but-hungry one.
  std::vector<Machine> machines{
      Machine{2.0, 0.080, "efficient-gpu"},   // 2 TFLOPS, 80 GFLOPS/W → 25 W
      Machine{10.0, 0.040, "fast-gpu"},       // 10 TFLOPS, 40 GFLOPS/W → 250 W
  };

  // Four inference requests with deadlines and OFA-style accuracy curves.
  // θ is the "task efficiency": accuracy gained per TFLOP at full model size.
  std::vector<Task> tasks;
  const double thetas[] = {0.8, 0.5, 1.5, 0.3};
  const double deadlines[] = {0.8, 1.2, 2.0, 3.0};
  for (int j = 0; j < 4; ++j) {
    tasks.push_back(Task{deadlines[j],
                         makePaperAccuracy(/*amin=*/0.001, /*amax=*/0.82,
                                           thetas[j]),
                         "request-" + std::to_string(j)});
  }

  // Energy budget: 150 J for the whole batch.
  Instance inst(std::move(tasks), std::move(machines), /*energyBudget=*/150.0);

  const ApproxResult result = solveApprox(inst);

  std::cout << "DSCT-EA quickstart\n"
            << "  tasks: " << inst.numTasks()
            << ", machines: " << inst.numMachines()
            << ", budget: " << inst.energyBudget() << " J\n\n";

  Table table({"task", "machine", "start (s)", "duration (s)", "TFLOP",
               "accuracy", "deadline"});
  for (int j = 0; j < inst.numTasks(); ++j) {
    const int r = result.schedule.machineOf(j);
    table.addRow({inst.task(j).name,
                  r >= 0 ? inst.machine(r).name : "(dropped)",
                  formatFixed(result.schedule.start(j), 3),
                  formatFixed(result.schedule.duration(j), 3),
                  formatFixed(result.schedule.flops(inst, j), 2),
                  formatFixed(result.schedule.taskAccuracy(inst, j), 3),
                  formatFixed(inst.task(j).deadline, 2)});
  }
  table.print(std::cout);

  std::cout << "\n  total accuracy  : " << formatFixed(result.totalAccuracy, 4)
            << "  (upper bound " << formatFixed(result.upperBound, 4) << ")\n"
            << "  additive bound G: " << formatFixed(result.guarantee.g, 3)
            << '\n'
            << "  energy consumed : " << formatFixed(result.energy, 1)
            << " J of " << formatFixed(inst.energyBudget(), 1) << " J\n";

  // Every schedule can be checked against the model's constraints...
  const ValidationReport report = validate(inst, result.schedule);
  std::cout << "  validation      : " << report.summary() << '\n';

  // ...and executed on the discrete-event cluster simulator.
  const sim::ExecutionResult exec = sim::executeSchedule(inst, result.schedule);
  std::cout << "  simulated       : energy " << formatFixed(exec.totalEnergy, 1)
            << " J, makespan " << formatFixed(exec.makespan, 3)
            << " s, deadline misses " << exec.deadlineMisses << '\n';
  return 0;
}
