// MLaaS serving: run the online inference-serving simulator and compare
// scheduling policies under a per-epoch energy cap — the cloud-operator
// scenario that motivates the paper.
//
//   $ ./mlaas_serving
#include <iostream>

#include "dsct/dsct.h"

int main() {
  using namespace dsct;

  const std::vector<Machine> machines =
      machinesFromCatalog({"T4", "P100", "V100"});

  sim::ServingOptions options;
  options.arrivalRatePerSecond = 50.0;
  options.horizonSeconds = 8.0;
  options.epochSeconds = 0.5;
  options.relDeadlineLo = 0.6;
  options.relDeadlineHi = 2.5;
  options.energyBudgetPerEpoch = 60.0;  // Joules per 0.5 s epoch
  options.seed = 7;

  std::cout << "MLaaS serving simulation\n"
            << "  cluster : T4 + P100 + V100\n"
            << "  load    : " << options.arrivalRatePerSecond
            << " req/s for " << options.horizonSeconds << " s, epoch "
            << options.epochSeconds << " s\n"
            << "  budget  : " << options.energyBudgetPerEpoch
            << " J per epoch\n\n";

  Table table({"policy", "requests", "served", "mean accuracy",
               "deadline misses", "energy (J)", "mean latency (s)"});
  for (const sim::Policy policy :
       {sim::Policy::kApprox, sim::Policy::kEdfNoCompression,
        sim::Policy::kEdfLevels}) {
    const sim::ServingStats stats =
        sim::runServing(machines, policy, options);
    table.addRow({sim::toString(policy), std::to_string(stats.requests),
                  std::to_string(stats.served),
                  formatFixed(stats.meanAccuracy, 4),
                  std::to_string(stats.deadlineMisses),
                  formatFixed(stats.totalEnergy, 0),
                  formatFixed(stats.meanLatency, 3)});
  }
  table.print(std::cout);

  std::cout << "\nreading: under the same energy cap, compressible "
               "scheduling serves every request at a useful accuracy, while "
               "the rigid baselines drop requests (accuracy collapses to the"
               " random-guess floor) or waste budget on full-size models.\n";
  return 0;
}
