// Green datacenter: pick GPUs from the catalog and sweep the energy budget
// to build an energy/accuracy trade-off curve — the operator's view of the
// paper's headline (large energy savings for small accuracy loss).
//
//   $ ./green_datacenter
#include <iostream>

#include "dsct/dsct.h"

int main() {
  using namespace dsct;

  // A small heterogeneous pod from the embedded GPU catalog.
  std::vector<Machine> machines =
      machinesFromCatalog({"K80", "T4", "V100", "A100"});
  std::cout << "Green datacenter — pod composition:\n";
  for (const Machine& m : machines) {
    std::cout << "  " << m.name << ": " << m.speed << " TFLOPS, "
              << formatFixed(m.efficiency * 1000.0, 0) << " GFLOPS/W ("
              << formatFixed(m.power(), 0) << " W)\n";
  }

  // A batch of 80 classification requests with mixed efficiencies.
  Rng rng(2024);
  const auto thetas = makeThetasUniform(80, 0.1, 2.0, rng);
  ScenarioSpec spec;
  spec.numTasks = 80;
  spec.numMachines = static_cast<int>(machines.size());
  spec.rho = 0.5;
  spec.beta = 1.0;  // reference: unconstrained budget
  const Instance reference = buildInstance(machines, thetas, spec, rng);
  // The operator's baseline bill: what the uncompressed service consumes.
  const BaselineResult uncompressed = solveEdfNoCompression(reference);
  const double fullBudget = uncompressed.energy;
  const double fullAccuracy = uncompressed.totalAccuracy /
                              static_cast<double>(reference.numTasks());

  std::cout << "\nreference (no compression): avg accuracy "
            << formatFixed(fullAccuracy, 4) << ", energy bill "
            << formatFixed(fullBudget, 0) << " J\n\n";

  Table table({"budget %", "avg accuracy", "loss vs full", "energy used (J)",
               "tasks at >50%"});
  for (double fraction : {1.0, 0.7, 0.5, 0.3, 0.2, 0.1, 0.05}) {
    Instance inst(std::vector<Task>(reference.tasks()),
                  std::vector<Machine>(reference.machines()),
                  fullBudget * fraction);
    const ApproxResult res = solveApprox(inst);
    const double avg =
        res.totalAccuracy / static_cast<double>(inst.numTasks());
    int good = 0;
    for (int j = 0; j < inst.numTasks(); ++j) {
      if (res.schedule.taskAccuracy(inst, j) > 0.5) ++good;
    }
    table.addRow({formatFixed(100.0 * fraction, 0), formatFixed(avg, 4),
                  formatFixed(fullAccuracy - avg, 4),
                  formatFixed(res.energy, 0), std::to_string(good)});
  }
  table.print(std::cout);

  std::cout << "\nreading: compressible scheduling keeps accuracy within a "
               "couple of points of the uncompressed service while cutting "
               "the energy bill by more than half (paper: 70% saved at ~2% "
               "loss).\n";
  return 0;
}
