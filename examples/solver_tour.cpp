// Solver tour: the LP/MIP substrate is a standalone library. This example
// solves a classic diet LP, a knapsack MIP, and finally the paper's own
// DSCT-EA MIP on a small instance, warm-started with the approximation
// algorithm — the exact workflow used to reproduce Fig. 4.
//
//   $ ./solver_tour
#include <iostream>

#include "dsct/dsct.h"

int main() {
  using namespace dsct;

  // ---- 1. A diet-style LP ----
  // Minimise cost 3x + 2y subject to nutrition rows.
  lp::Model diet;
  const int x = diet.addVariable(0.0, lp::kInfinity, 3.0, lp::VarType::kContinuous, "oats");
  const int y = diet.addVariable(0.0, lp::kInfinity, 2.0, lp::VarType::kContinuous, "rice");
  diet.addConstraint({{x, 2.0}, {y, 1.0}}, lp::Sense::kGe, 8.0, "protein");
  diet.addConstraint({{x, 1.0}, {y, 3.0}}, lp::Sense::kGe, 9.0, "fiber");
  const lp::LpResult dietRes = lp::solveLp(diet);
  std::cout << "diet LP: status " << lp::toString(dietRes.status)
            << ", cost " << formatFixed(dietRes.objective, 3) << " (oats "
            << formatFixed(dietRes.x[0], 2) << ", rice "
            << formatFixed(dietRes.x[1], 2) << ")\n";

  // ---- 2. A knapsack MIP ----
  lp::Model knapsack;
  knapsack.setMaximize(true);
  const double values[] = {10, 13, 7, 4};
  const double weights[] = {3, 4, 2, 1};
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 4; ++i) {
    row.emplace_back(knapsack.addBinary(values[i]), weights[i]);
  }
  knapsack.addConstraint(row, lp::Sense::kLe, 6.0, "capacity");
  const lp::MipResult knapRes = lp::solveMip(knapsack);
  std::cout << "knapsack MIP: status " << lp::toString(knapRes.status)
            << ", value " << formatFixed(knapRes.objective, 1)
            << " in " << knapRes.nodes << " nodes\n";

  // ---- 3. The paper's MIP, warm-started by the approximation ----
  ScenarioSpec spec;
  spec.numTasks = 6;
  spec.numMachines = 2;
  spec.rho = 0.35;
  spec.beta = 0.5;
  const Instance inst = makeScenario(spec, 0.1, 1.0, 11);
  const ApproxResult approx = solveApprox(inst);

  lp::MipOptions options;
  options.timeLimitSeconds = 10.0;
  const MipSolveSummary exact = solveDsctMip(inst, options, &approx.schedule);

  std::cout << "DSCT-EA MIP (n=6, m=2):\n"
            << "  approx  SOL = " << formatFixed(approx.totalAccuracy, 5)
            << '\n'
            << "  exact   OPT = " << formatFixed(exact.totalAccuracy, 5)
            << " (status " << lp::toString(exact.result.status) << ", "
            << exact.result.nodes << " nodes, gap "
            << formatFixed(exact.result.gap(), 6) << ")\n"
            << "  UB (frac)   = " << formatFixed(approx.upperBound, 5) << '\n';
  std::cout << "ordering SOL <= OPT <= UB holds: "
            << (approx.totalAccuracy <= exact.totalAccuracy + 1e-6 &&
                        exact.totalAccuracy <= approx.upperBound + 1e-6
                    ? "yes"
                    : "no")
            << '\n';
  return 0;
}
