// Solver tour: every algorithm in the repo through one interface.
//
// The SolverRegistry (src/core/) is the single dispatch point for all of the
// paper's algorithms and baselines. This example walks it end to end: list
// the registered solvers and their capabilities, run each one on the same
// instance through a shared SolveContext, then use registry outcomes to
// check the paper's SOL <= OPT <= UB ordering.
//
//   $ ./solver_tour
#include <iostream>
#include <string>

#include "dsct/dsct.h"

int main() {
  using namespace dsct;

  SolverRegistry& registry = SolverRegistry::instance();

  // ---- 1. What is registered? ----
  // Names and aliases both resolve; capabilities say what each solver emits
  // (an integral schedule, a fractional relaxation, or both) and whether it
  // is exact and deterministic.
  std::cout << "registered solvers:\n";
  for (const Solver* solver : registry.solvers()) {
    std::string aliases;
    for (const std::string& alias : registry.aliasesOf(solver->name())) {
      if (!aliases.empty()) aliases += ", ";
      aliases += alias;
    }
    const SolverCapabilities caps = solver->capabilities();
    std::cout << "  " << solver->name() << " (" << solver->displayName()
              << ")";
    if (!aliases.empty()) std::cout << " aka " << aliases;
    std::cout << " [" << (caps.integral ? "integral" : "")
              << (caps.integral && caps.fractional ? "+" : "")
              << (caps.fractional ? "fractional" : "")
              << (caps.exact ? ", exact" : "")
              << (caps.deterministic ? "" : ", nondeterministic") << "]\n";
  }

  // ---- 2. One instance, every solver, one shared context ----
  // The context carries per-family options plus the cross-solve profile
  // cache; passing the same context to every solve is exactly what the
  // serving loop and the experiment runner do.
  ScenarioSpec spec;
  spec.numTasks = 6;
  spec.numMachines = 2;
  spec.rho = 0.35;
  spec.beta = 0.5;
  const Instance inst = makeScenario(spec, 0.1, 1.0, 11);

  ProfileCache cache;
  SolveContext context;
  context.frOpt.sharedCache = &cache;
  context.mip.timeLimitSeconds = 10.0;
  context.lp.timeLimitSeconds = 10.0;

  std::cout << "\nn=" << inst.numTasks() << ", m=" << inst.numMachines()
            << ", budget " << formatFixed(inst.energyBudget(), 3) << ":\n";
  for (const Solver* solver : registry.solvers()) {
    const SolveOutcome out = solver->solve(inst, context);
    std::cout << "  " << out.solver << ": ";
    if (!out.solved()) {
      std::cout << "no solution within limits\n";
      continue;
    }
    std::cout << "accuracy " << formatFixed(out.totalAccuracy, 5)
              << ", energy " << formatFixed(out.energy, 3) << ", "
              << out.scheduledTasks << "/" << inst.numTasks()
              << " tasks in " << formatFixed(out.wallSeconds * 1e3, 2)
              << " ms\n";
  }
  std::cout << "profile cache after the tour: " << cache.counters().hits
            << " hits / " << cache.counters().misses << " misses\n";

  // ---- 3. The paper's sandwich, via registry outcomes ----
  // approx gives SOL and the fractional upper bound UB; the warm-started
  // MIP gives OPT. All three come back on the same SolveOutcome shape.
  const SolveOutcome approx = registry.resolve("approx").solve(inst, context);
  const SolveOutcome exact =
      registry.resolve("mip-warm").solve(inst, context);
  std::cout << "\nDSCT-EA ordering on this instance:\n"
            << "  approx   SOL = " << formatFixed(approx.totalAccuracy, 5)
            << " (guarantee G = " << formatFixed(approx.guaranteeG, 4)
            << ")\n"
            << "  mip-warm OPT = " << formatFixed(exact.totalAccuracy, 5)
            << '\n'
            << "  UB (frac)    = " << formatFixed(approx.upperBound, 5)
            << '\n'
            << "ordering SOL <= OPT <= UB holds: "
            << (approx.totalAccuracy <= exact.totalAccuracy + 1e-6 &&
                        exact.totalAccuracy <= approx.upperBound + 1e-6
                    ? "yes"
                    : "no")
            << '\n';

  // Aliases resolve to the very same solver instance.
  std::cout << "alias check: &resolve(\"dsct-ea-approx\") == &resolve(\"approx\"): "
            << (&registry.resolve("dsct-ea-approx") ==
                        &registry.resolve("approx")
                    ? "yes"
                    : "no")
            << '\n';
  return 0;
}
