// Renewable-powered inference serving (the paper's future-work scenario):
// a solar-supplied cluster serves a diurnal request stream; each epoch's
// energy budget is whatever the panels deliver. Compares scheduling
// policies across the day.
//
//   $ ./renewable_serving
#include <iostream>

#include "dsct/dsct.h"

int main() {
  using namespace dsct;

  const std::vector<Machine> machines = machinesFromCatalog({"T4", "A100"});

  // One simulated "day" compressed into 12 seconds: sunrise at 20%,
  // sunset at 85%, 400 W peak panel output with 20% cloud flicker.
  const double day = 12.0;
  Rng rng(2030);
  const sim::PowerTrace solar =
      sim::PowerTrace::solarDay(400.0, day, 0.20, 0.85, 96, 0.2, rng);

  // Social-network style load: quiet nights, busy middays.
  const ArrivalProcess load = ArrivalProcess::diurnal(10.0, 90.0, day);

  sim::ServingOptions options;
  options.horizonSeconds = day;
  options.epochSeconds = 0.5;
  options.relDeadlineLo = 0.5;
  options.relDeadlineHi = 2.0;
  options.thetaLo = 0.2;
  options.thetaHi = 3.0;
  options.seed = 11;
  {
    Rng arrivalRng(options.seed);
    options.arrivalTimes = load.sample(day, arrivalRng);
  }

  std::cout << "Renewable-powered MLaaS\n"
            << "  cluster  : T4 + A100\n"
            << "  supply   : solar, 400 W peak, "
            << formatFixed(solar.energyBetween(0.0, day), 0)
            << " J over the day\n"
            << "  load     : diurnal, " << options.arrivalTimes.size()
            << " requests over " << day << " s\n\n";

  Table table({"policy", "served", "mean accuracy", "deadline misses",
               "energy used (J)"});
  for (const sim::Policy policy :
       {sim::Policy::kApprox, sim::Policy::kEdfNoCompression,
        sim::Policy::kEdfLevels}) {
    const sim::ServingStats stats =
        sim::runServing(machines, policy, options, solar);
    table.addRow({sim::toString(policy),
                  formatFixed(stats.served, 0) + "/" +
                      formatFixed(stats.requests, 0),
                  formatFixed(stats.meanAccuracy, 4),
                  formatFixed(stats.deadlineMisses, 0),
                  formatFixed(stats.totalEnergy, 0)});
  }
  table.print(std::cout);

  std::cout << "\nreading: when the panels dim, compressible scheduling "
               "degrades gracefully (smaller models, every request served); "
               "rigid baselines drop whole requests. This implements the "
               "paper's 'integration of renewable power sources' future "
               "work via per-epoch budgets from a PowerTrace.\n";
  return 0;
}
