#include "solver/simplex.h"

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "solver/model.h"
#include "util/rng.h"

namespace dsct::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, TextbookMaximisation) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → opt 36 at (2, 6).
  Model m;
  m.setMaximize(true);
  const int x = m.addVariable(0, kInfinity, 3.0);
  const int y = m.addVariable(0, kInfinity, 5.0);
  m.addConstraint({{x, 1.0}}, Sense::kLe, 4.0);
  m.addConstraint({{y, 2.0}}, Sense::kLe, 12.0);
  m.addConstraint({{x, 3.0}, {y, 2.0}}, Sense::kLe, 18.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 36.0, kTol);
  EXPECT_NEAR(res.x[0], 2.0, kTol);
  EXPECT_NEAR(res.x[1], 6.0, kTol);
}

TEST(Simplex, MinimisationWithGeRows) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 → opt at (7,3) = 23.
  Model m;
  const int x = m.addVariable(2.0, kInfinity, 2.0);
  const int y = m.addVariable(3.0, kInfinity, 3.0);
  m.addConstraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, 10.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 23.0, kTol);
  EXPECT_NEAR(res.x[0], 7.0, kTol);
  EXPECT_NEAR(res.x[1], 3.0, kTol);
}

TEST(Simplex, EqualityConstraints) {
  // max x + 2y s.t. x + y == 4, x - y == 0 → x = y = 2, obj 6.
  Model m;
  m.setMaximize(true);
  const int x = m.addVariable(0, kInfinity, 1.0);
  const int y = m.addVariable(0, kInfinity, 2.0);
  m.addConstraint({{x, 1.0}, {y, 1.0}}, Sense::kEq, 4.0);
  m.addConstraint({{x, 1.0}, {y, -1.0}}, Sense::kEq, 0.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 6.0, kTol);
  EXPECT_NEAR(res.x[0], 2.0, kTol);
  EXPECT_NEAR(res.x[1], 2.0, kTol);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.addVariable(0, kInfinity, 1.0);
  m.addConstraint({{x, 1.0}}, Sense::kLe, 1.0);
  m.addConstraint({{x, 1.0}}, Sense::kGe, 2.0);
  EXPECT_EQ(solveLp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleBounds) {
  Model m;
  m.addVariable(0.0, kInfinity, 1.0);
  std::vector<double> lower{5.0};
  std::vector<double> upper{4.0};
  EXPECT_EQ(solveLpWithBounds(m, lower, upper).status,
            SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  m.setMaximize(true);
  const int x = m.addVariable(0, kInfinity, 1.0);
  m.addConstraint({{x, -1.0}}, Sense::kLe, 0.0);  // non-binding
  EXPECT_EQ(solveLp(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, FreeVariables) {
  // min |shape|: min x + y with x free, x >= -5 via constraint, y >= 0,
  // x + y >= -2. Optimal pushes x to its implied lower region.
  Model m;
  const int x = m.addVariable(-kInfinity, kInfinity, 1.0);
  const int y = m.addVariable(0.0, kInfinity, 1.0);
  m.addConstraint({{x, 1.0}}, Sense::kGe, -5.0);
  m.addConstraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, -2.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, -2.0, kTol);
}

TEST(Simplex, UpperBoundedVariables) {
  // max x + y, x in [0, 1], y in [0, 2], x + y <= 2.5 → 2.5.
  Model m;
  m.setMaximize(true);
  const int x = m.addVariable(0.0, 1.0, 1.0);
  const int y = m.addVariable(0.0, 2.0, 1.0);
  m.addConstraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 2.5);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 2.5, kTol);
  EXPECT_LE(res.x[0], 1.0 + kTol);
  EXPECT_LE(res.x[1], 2.0 + kTol);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x with x in [-3, 7] → -3.
  Model m;
  m.addVariable(-3.0, 7.0, 1.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, -3.0, kTol);
}

TEST(Simplex, UpperBoundOnlyVariable) {
  // max x with x in (-inf, 5] → 5.
  Model m;
  m.setMaximize(true);
  m.addVariable(-kInfinity, 5.0, 1.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 5.0, kTol);
}

TEST(Simplex, FixedVariablesSubstituted) {
  // x fixed at 2 by bounds; max x + y, y <= 3 → 5.
  Model m;
  m.setMaximize(true);
  m.addVariable(2.0, 2.0, 1.0);
  const int y = m.addVariable(0.0, 3.0, 1.0);
  m.addConstraint({{y, 1.0}}, Sense::kLe, 3.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 5.0, kTol);
  EXPECT_DOUBLE_EQ(res.x[0], 2.0);
}

TEST(Simplex, ConstantRowConsistencyChecks) {
  Model m;
  const int x = m.addVariable(1.0, 1.0, 1.0);  // fixed
  // 2x <= 1 with x == 1 is a constant contradiction.
  m.addConstraint({{x, 2.0}}, Sense::kLe, 1.0);
  EXPECT_EQ(solveLp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DegenerateTiesTerminate) {
  // Beale's cycling example: Dantzig pricing with naive tie-breaking cycles
  // forever; the Bland fallback must terminate at the optimum −0.05
  // (x = (1/25, 0, 1, 0)).
  Model m;
  const int x1 = m.addVariable(0, kInfinity, -0.75);
  const int x2 = m.addVariable(0, kInfinity, 150.0);
  const int x3 = m.addVariable(0, kInfinity, -0.02);
  const int x4 = m.addVariable(0, kInfinity, 6.0);
  m.addConstraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                  Sense::kLe, 0.0);
  m.addConstraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                  Sense::kLe, 0.0);
  m.addConstraint({{x3, 1.0}}, Sense::kLe, 1.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, -0.05, 1e-8);
}

TEST(Simplex, EmptyModelIsTriviallyOptimal) {
  Model m;
  m.addVariable(0.0, kInfinity, 0.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(res.objective, 0.0);
}

TEST(Simplex, IterationLimitReported) {
  Model m;
  m.setMaximize(true);
  std::vector<int> vars;
  for (int i = 0; i < 10; ++i) vars.push_back(m.addVariable(0, 1.0, 1.0));
  for (int i = 0; i < 9; ++i) {
    m.addConstraint({{vars[i], 1.0}, {vars[i + 1], 1.0}}, Sense::kLe, 1.5);
  }
  LpOptions options;
  options.maxIterations = 1;
  const LpResult res = solveLp(m, options);
  EXPECT_EQ(res.status, SolveStatus::kIterationLimit);
}

// ---------------------------------------------------------------------
// Cross-check against brute-force vertex enumeration on random small LPs.
// ---------------------------------------------------------------------

struct DenseLp {
  int nvars;
  std::vector<std::array<double, 3>> rows;  // a·x <= b
  std::vector<double> rhs;
  std::array<double, 3> objective;
};

/// Solve k×k linear system by Gaussian elimination; false when singular.
bool solveSquare(std::vector<std::array<double, 3>> a, std::vector<double> b,
                 int k, std::array<double, 3>& out) {
  for (int col = 0; col < k; ++col) {
    int pivot = col;
    for (int row = col + 1; row < k; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < 1e-9) return false;
    std::swap(a[pivot], a[col]);
    std::swap(b[pivot], b[col]);
    for (int row = 0; row < k; ++row) {
      if (row == col) continue;
      const double f = a[row][col] / a[col][col];
      for (int c = 0; c < k; ++c) a[row][c] -= f * a[col][c];
      b[row] -= f * b[col];
    }
  }
  for (int i = 0; i < k; ++i) out[i] = b[i] / a[i][i];
  return true;
}

/// Max c·x over the polytope by enumerating all vertices (subsets of tight
/// constraints). Region is made bounded by box rows. Returns -inf if empty.
double bruteForceMax(const DenseLp& lp) {
  const int n = lp.nvars;
  const int rows = static_cast<int>(lp.rows.size());
  double best = -std::numeric_limits<double>::infinity();
  std::vector<int> pick(static_cast<std::size_t>(n));
  // Enumerate all n-subsets of rows.
  std::vector<int> idx(static_cast<std::size_t>(n));
  const auto evaluate = [&](const std::vector<int>& subset) {
    std::vector<std::array<double, 3>> a;
    std::vector<double> b;
    for (int r : subset) {
      a.push_back(lp.rows[static_cast<std::size_t>(r)]);
      b.push_back(lp.rhs[static_cast<std::size_t>(r)]);
    }
    std::array<double, 3> x{};
    if (!solveSquare(std::move(a), std::move(b), n, x)) return;
    for (int r = 0; r < rows; ++r) {
      double lhs = 0.0;
      for (int c = 0; c < n; ++c) {
        lhs += lp.rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] *
               x[static_cast<std::size_t>(c)];
      }
      if (lhs > lp.rhs[static_cast<std::size_t>(r)] + 1e-7) return;
    }
    double obj = 0.0;
    for (int c = 0; c < n; ++c) {
      obj += lp.objective[static_cast<std::size_t>(c)] *
             x[static_cast<std::size_t>(c)];
    }
    best = std::max(best, obj);
  };
  // Recursive subset enumeration.
  const std::function<void(int, int)> recurse = [&](int start, int depth) {
    if (depth == n) {
      evaluate(idx);
      return;
    }
    for (int r = start; r < rows; ++r) {
      idx[static_cast<std::size_t>(depth)] = r;
      recurse(r + 1, depth + 1);
    }
  };
  recurse(0, 0);
  return best;
}

class SimplexRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomLp, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 13u);
  const int n = rng.uniformInt(2, 3);
  const int extraRows = rng.uniformInt(1, 5);
  DenseLp lp;
  lp.nvars = n;
  // Box: x_i >= 0 (−x_i <= 0) and x_i <= U.
  for (int i = 0; i < n; ++i) {
    std::array<double, 3> lo{};
    lo[static_cast<std::size_t>(i)] = -1.0;
    lp.rows.push_back(lo);
    lp.rhs.push_back(0.0);
    std::array<double, 3> hi{};
    hi[static_cast<std::size_t>(i)] = 1.0;
    lp.rows.push_back(hi);
    lp.rhs.push_back(rng.uniform(0.5, 4.0));
  }
  for (int r = 0; r < extraRows; ++r) {
    std::array<double, 3> row{};
    for (int c = 0; c < n; ++c) {
      row[static_cast<std::size_t>(c)] = rng.uniform(-1.0, 2.0);
    }
    lp.rows.push_back(row);
    lp.rhs.push_back(rng.uniform(0.5, 5.0));
  }
  for (int c = 0; c < n; ++c) {
    lp.objective[static_cast<std::size_t>(c)] = rng.uniform(-1.0, 3.0);
  }

  Model m;
  m.setMaximize(true);
  for (int c = 0; c < n; ++c) {
    m.addVariable(0.0, kInfinity, lp.objective[static_cast<std::size_t>(c)]);
  }
  // Skip the explicit x >= 0 rows (they are variable bounds); add the rest.
  for (std::size_t r = 0; r < lp.rows.size(); ++r) {
    bool isLowerBoundRow = false;
    int nonzeros = 0;
    for (int c = 0; c < n; ++c) {
      if (lp.rows[r][static_cast<std::size_t>(c)] != 0.0) ++nonzeros;
    }
    if (nonzeros == 1 && lp.rhs[r] == 0.0) {
      for (int c = 0; c < n; ++c) {
        if (lp.rows[r][static_cast<std::size_t>(c)] == -1.0) {
          isLowerBoundRow = true;
        }
      }
    }
    if (isLowerBoundRow) continue;
    std::vector<std::pair<int, double>> coeffs;
    for (int c = 0; c < n; ++c) {
      if (lp.rows[r][static_cast<std::size_t>(c)] != 0.0) {
        coeffs.emplace_back(c, lp.rows[r][static_cast<std::size_t>(c)]);
      }
    }
    m.addConstraint(std::move(coeffs), Sense::kLe, lp.rhs[r]);
  }

  const double expected = bruteForceMax(lp);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_NEAR(res.objective, expected, 1e-5) << "seed " << GetParam();
  EXPECT_TRUE(m.isFeasible(res.x, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SimplexRandomLp, ::testing::Range(0, 40));

}  // namespace
}  // namespace dsct::lp
