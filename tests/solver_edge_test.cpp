// Solver edge cases: duplicate coefficients, zero rows, negative-rhs
// equalities, pathological bounds.
#include <gtest/gtest.h>

#include "solver/mip.h"
#include "solver/model.h"
#include "solver/simplex.h"
#include "util/check.h"

namespace dsct::lp {
namespace {

TEST(Edge, DuplicateVariableIndicesAccumulate) {
  // x + x <= 4 must behave as 2x <= 4.
  Model m;
  m.setMaximize(true);
  const int x = m.addVariable(0, kInfinity, 1.0);
  m.addConstraint({{x, 1.0}, {x, 1.0}}, Sense::kLe, 4.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 2.0, 1e-9);
}

TEST(Edge, ZeroCoefficientEntriesIgnored) {
  Model m;
  m.setMaximize(true);
  const int x = m.addVariable(0, kInfinity, 1.0);
  const int y = m.addVariable(0, 5.0, 0.0);
  m.addConstraint({{x, 1.0}, {y, 0.0}}, Sense::kLe, 3.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 3.0, 1e-9);
}

TEST(Edge, NegativeRhsEquality) {
  // x − y == −2 with x, y >= 0: minimise x + y → (0, 2).
  Model m;
  const int x = m.addVariable(0, kInfinity, 1.0);
  const int y = m.addVariable(0, kInfinity, 1.0);
  m.addConstraint({{x, 1.0}, {y, -1.0}}, Sense::kEq, -2.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 2.0, 1e-9);
  EXPECT_NEAR(res.x[0], 0.0, 1e-9);
  EXPECT_NEAR(res.x[1], 2.0, 1e-9);
}

TEST(Edge, AllVariablesFixed) {
  Model m;
  m.setMaximize(true);
  m.addVariable(2.0, 2.0, 3.0);
  m.addVariable(-1.0, -1.0, 1.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(res.x[0], 2.0);
  EXPECT_DOUBLE_EQ(res.x[1], -1.0);
}

TEST(Edge, FixedVariablesInsideConstraints) {
  // x fixed at 3 participates in a row constraining y.
  Model m;
  m.setMaximize(true);
  const int x = m.addVariable(3.0, 3.0, 0.0);
  const int y = m.addVariable(0, kInfinity, 1.0);
  m.addConstraint({{x, 2.0}, {y, 1.0}}, Sense::kLe, 10.0);  // y <= 4
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-9);
}

TEST(Edge, MaximiseNegativeObjective) {
  // max −x with x >= 1 → −1.
  Model m;
  m.setMaximize(true);
  m.addVariable(1.0, kInfinity, -1.0);
  const LpResult res = solveLp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, -1.0, 1e-9);
}

TEST(Edge, ModelValidationRejectsBadInput) {
  Model m;
  EXPECT_THROW(m.addVariable(2.0, 1.0, 0.0), CheckError);  // inverted bounds
  EXPECT_THROW(m.addVariable(0.0, 2.0, 0.0, VarType::kBinary), CheckError);
  const int x = m.addVariable(0.0, 1.0, 1.0);
  EXPECT_THROW(m.addConstraint({{x + 5, 1.0}}, Sense::kLe, 1.0), CheckError);
  EXPECT_THROW(m.variable(7), CheckError);
  EXPECT_THROW(m.constraint(0), CheckError);
}

TEST(Edge, MaxViolationMeasuresWorstBreach) {
  Model m;
  const int x = m.addVariable(0.0, 1.0, 1.0);
  m.addConstraint({{x, 1.0}}, Sense::kGe, 3.0);
  const std::vector<double> point{0.5};
  EXPECT_NEAR(m.maxViolation(point), 2.5, 1e-12);
  EXPECT_FALSE(m.isFeasible(point));
}

TEST(Edge, MipWithOnlyContinuousVariablesIsLp) {
  Model m;
  m.setMaximize(true);
  const int x = m.addVariable(0, 2.5, 2.0);
  m.addConstraint({{x, 1.0}}, Sense::kLe, 2.0);
  const MipResult res = solveMip(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-9);
  EXPECT_EQ(res.nodes, 1);
}

TEST(Edge, BinaryFixedByBoundsRespected) {
  Model m;
  m.setMaximize(true);
  const int a = m.addVariable(1.0, 1.0, 1.0, VarType::kBinary);
  const int b = m.addBinary(1.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::kLe, 1.0);
  const MipResult res = solveMip(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.x[0], 1.0, 1e-9);
  EXPECT_NEAR(res.x[1], 0.0, 1e-9);
}

}  // namespace
}  // namespace dsct::lp
