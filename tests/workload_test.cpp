#include "workload/generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/check.h"
#include "workload/gpu_catalog.h"

namespace dsct {
namespace {

TEST(GpuCatalog, NonEmptyAndWithinPaperEnvelope) {
  const auto& catalog = gpuCatalog();
  ASSERT_GE(catalog.size(), 8u);
  for (const GpuSpec& gpu : catalog) {
    EXPECT_GE(gpu.speedTflops, 1.0);
    EXPECT_LE(gpu.speedTflops, 20.0);
    EXPECT_GE(gpu.efficiencyGflopsPerWatt, 5.0);
    EXPECT_LE(gpu.efficiencyGflopsPerWatt, 60.0);
  }
}

TEST(GpuCatalog, ToMachineConvertsUnits) {
  const Machine m = gpuByName("A100").toMachine();
  EXPECT_DOUBLE_EQ(m.speed, 19.5);
  EXPECT_DOUBLE_EQ(m.efficiency, 0.060);
  EXPECT_NEAR(m.power(), 325.0, 1.0);  // realistic wattage
}

TEST(GpuCatalog, UnknownNameThrows) {
  EXPECT_THROW(gpuByName("NotAGpu"), CheckError);
}

TEST(GpuCatalog, SubsetSelection) {
  const auto machines = machinesFromCatalog({"V100", "T4"});
  ASSERT_EQ(machines.size(), 2u);
  EXPECT_EQ(machines[0].name, "V100");
  EXPECT_EQ(machines[1].name, "T4");
  EXPECT_EQ(machinesFromCatalog().size(), gpuCatalog().size());
}

TEST(GpuCatalog, EfficiencyTrendIsLinearAndPositive) {
  const LinearTrend trend = efficiencyTrend();
  EXPECT_GT(trend.slope, 0.0);  // faster GPUs are more efficient
  EXPECT_GT(trend.r2, 0.8);     // strongly linear, as in paper Fig. 1
}

TEST(Generator, UniformMachinesWithinRanges) {
  Rng rng(5);
  const auto machines = makeUniformMachines(20, rng);
  ASSERT_EQ(machines.size(), 20u);
  for (const Machine& m : machines) {
    EXPECT_GE(m.speed, GeneratorDefaults::kMinSpeed);
    EXPECT_LE(m.speed, GeneratorDefaults::kMaxSpeed);
    EXPECT_GE(m.efficiency, GeneratorDefaults::kMinEff);
    EXPECT_LE(m.efficiency, GeneratorDefaults::kMaxEff);
  }
}

TEST(Generator, ThetasUniformRange) {
  Rng rng(6);
  const auto thetas = makeThetasUniform(100, 0.1, 2.0, rng);
  for (double theta : thetas) {
    EXPECT_GE(theta, 0.1);
    EXPECT_LT(theta, 2.0);
  }
}

TEST(Generator, EarliestHighEfficientSplit) {
  Rng rng(7);
  const auto thetas =
      makeThetasEarliestHighEfficient(10, 0.3, 4.0, 4.9, 0.1, 1.0, rng);
  ASSERT_EQ(thetas.size(), 10u);
  for (int j = 0; j < 3; ++j) {
    EXPECT_GE(thetas[static_cast<std::size_t>(j)], 4.0);
  }
  for (int j = 3; j < 10; ++j) {
    EXPECT_LE(thetas[static_cast<std::size_t>(j)], 1.0);
  }
}

TEST(Generator, RhoControlsDeadlineScale) {
  ScenarioSpec tight;
  tight.numTasks = 20;
  tight.numMachines = 3;
  tight.rho = 0.01;
  ScenarioSpec loose = tight;
  loose.rho = 1.0;
  const Instance a = makeScenario(tight, 0.1, 1.0, 42);
  const Instance b = makeScenario(loose, 0.1, 1.0, 42);
  EXPECT_NEAR(b.maxDeadline() / a.maxDeadline(), 100.0, 1e-6);
}

TEST(Generator, RhoFormulaHolds) {
  ScenarioSpec spec;
  spec.numTasks = 15;
  spec.numMachines = 4;
  spec.rho = 0.35;
  const Instance inst = makeScenario(spec, 0.1, 1.0, 9);
  const double m = static_cast<double>(inst.numMachines());
  const double rho = m * m * inst.maxDeadline() /
                     (inst.totalFmax() * inst.totalSpeed());
  EXPECT_NEAR(rho, 0.35, 1e-9);
}

TEST(Generator, BetaFormulaHolds) {
  ScenarioSpec spec;
  spec.numTasks = 15;
  spec.numMachines = 4;
  spec.beta = 0.42;
  const Instance inst = makeScenario(spec, 0.1, 1.0, 10);
  const double beta =
      inst.energyBudget() / (inst.maxDeadline() * inst.totalPower());
  EXPECT_NEAR(beta, 0.42, 1e-9);
}

TEST(Generator, Deterministic) {
  ScenarioSpec spec;
  spec.numTasks = 10;
  spec.numMachines = 2;
  const Instance a = makeScenario(spec, 0.1, 1.0, 77);
  const Instance b = makeScenario(spec, 0.1, 1.0, 77);
  EXPECT_DOUBLE_EQ(a.energyBudget(), b.energyBudget());
  for (int j = 0; j < a.numTasks(); ++j) {
    EXPECT_DOUBLE_EQ(a.task(j).deadline, b.task(j).deadline);
    EXPECT_DOUBLE_EQ(a.task(j).fmax(), b.task(j).fmax());
  }
}

TEST(Generator, DeadlinesSortedWithMaxPinned) {
  ScenarioSpec spec;
  spec.numTasks = 25;
  spec.numMachines = 3;
  const Instance inst = makeScenario(spec, 0.1, 1.0, 11);
  for (int j = 0; j + 1 < inst.numTasks(); ++j) {
    EXPECT_LE(inst.task(j).deadline, inst.task(j + 1).deadline);
  }
  const double m = static_cast<double>(inst.numMachines());
  const double expectedDmax =
      spec.rho * inst.totalFmax() * inst.totalSpeed() / (m * m);
  EXPECT_NEAR(inst.maxDeadline(), expectedDmax, 1e-9);
}

TEST(Generator, TaskAccuracyMatchesPaperConstants) {
  ScenarioSpec spec;
  spec.numTasks = 5;
  spec.numMachines = 2;
  const Instance inst = makeScenario(spec, 0.1, 1.0, 12);
  for (const Task& task : inst.tasks()) {
    EXPECT_DOUBLE_EQ(task.amin(), GeneratorDefaults::kAmin);
    EXPECT_NEAR(task.amax(), GeneratorDefaults::kAmax, 1e-9);
    EXPECT_EQ(task.accuracy.numSegments(), GeneratorDefaults::kSegments);
  }
}

TEST(Generator, EmptyTaskList) {
  ScenarioSpec spec;
  spec.numTasks = 0;
  spec.numMachines = 2;
  const Instance inst = makeScenario(spec, 0.1, 1.0, 13);
  EXPECT_EQ(inst.numTasks(), 0);
  EXPECT_DOUBLE_EQ(inst.energyBudget(), 0.0);
}

}  // namespace
}  // namespace dsct
