// The shard coordinator (src/shard/coordinator.h): K = 1 bit-identity,
// outer price-loop convergence across the corpus regimes, budget safety of
// the merged schedule, and the ShardedSolver adapter surface.
#include "shard/coordinator.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/solver_registry.h"
#include "tests/test_support.h"
#include "util/thread_pool.h"

namespace dsct::shard {
namespace {

const Solver& innerSolver(const std::string& name = "approx") {
  return SolverRegistry::instance().resolve(name);
}

TEST(ShardCoordinator, SingleCellBitIdenticalToInnerSolver) {
  for (const char* name : {"approx", "fr-opt", "edf3"}) {
    SCOPED_TRACE(name);
    const Solver& inner = innerSolver(name);
    for (int caseIdx = 0; caseIdx < 6; ++caseIdx) {
      const Instance inst = testing::corpusInstance(3, caseIdx);
      const SolveContext context;
      const SolveOutcome direct = inner.solve(inst, context);

      ShardOptions options;
      options.cells = 1;
      ShardCoordinator coordinator(inner, options);
      const SolveOutcome sharded = coordinator.solve(inst, context);

      EXPECT_EQ(sharded.totalAccuracy, direct.totalAccuracy)
          << "case " << caseIdx;
      EXPECT_EQ(sharded.energy, direct.energy) << "case " << caseIdx;
      EXPECT_EQ(sharded.scheduledTasks, direct.scheduledTasks);
      EXPECT_TRUE(coordinator.lastStats().converged);
      EXPECT_EQ(coordinator.lastStats().cells, 1);
    }
  }
}

TEST(ShardCoordinator, PriceLoopConvergesAcrossCorpusRegimes) {
  const Solver& inner = innerSolver();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (int caseIdx = 0; caseIdx < 10; ++caseIdx) {
      const Instance inst = testing::corpusInstance(seed, caseIdx);
      if (inst.numMachines() < 2) continue;
      ShardOptions options;
      options.cells = 2 + caseIdx % 3;
      ShardCoordinator coordinator(inner, options);
      const SolveOutcome outcome = coordinator.solve(inst, SolveContext{});
      const ShardStats& stats = coordinator.lastStats();
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " case=" + std::to_string(caseIdx) +
                   " cells=" + std::to_string(stats.cells));
      // Breakpoint-snapping bisection either lands in the tolerance band or
      // pins the critical price exactly — it never just runs out of
      // iterations on these sizes.
      EXPECT_TRUE(stats.converged);
      EXPECT_LE(stats.priceIterations, options.maxPriceIterations);
      EXPECT_GE(stats.finalPrice, 0.0);
      // The assigned cell budgets never oversubscribe B, and the merged
      // schedule honours the global budget.
      EXPECT_LE(stats.budgetAssigned, inst.energyBudget() * (1.0 + 1e-9));
      EXPECT_LE(outcome.energy, inst.energyBudget() * (1.0 + 1e-6));
      EXPECT_TRUE(outcome.solved());
    }
  }
}

TEST(ShardCoordinator, MergedScheduleMeetsDeadlines) {
  const Solver& inner = innerSolver();
  const Instance inst = testing::randomInstance(5, 40, 8, 0.35, 0.3);
  ShardOptions options;
  options.cells = 4;
  ShardCoordinator coordinator(inner, options);
  const SolveOutcome outcome = coordinator.solve(inst, SolveContext{});
  ASSERT_TRUE(outcome.schedule.has_value());
  const IntegralSchedule& schedule = *outcome.schedule;
  for (int j = 0; j < inst.numTasks(); ++j) {
    if (schedule.machineOf(j) < 0) continue;
    EXPECT_LE(schedule.start(j) + schedule.duration(j),
              inst.task(j).deadline + 1e-9)
        << "task " << j;
  }
}

TEST(ShardCoordinator, TopUpNeverWorsensTheSolve) {
  const Solver& inner = innerSolver();
  for (int caseIdx = 0; caseIdx < 8; ++caseIdx) {
    const Instance inst = testing::corpusInstance(9, caseIdx);
    if (inst.numMachines() < 2) continue;
    ShardOptions options;
    options.cells = 2;
    ShardCoordinator withTopUp(inner, options);
    options.topUp = false;
    ShardCoordinator withoutTopUp(inner, options);
    const double topped =
        withTopUp.solve(inst, SolveContext{}).totalAccuracy;
    const double plain =
        withoutTopUp.solve(inst, SolveContext{}).totalAccuracy;
    EXPECT_GE(topped, plain - 1e-9) << "case " << caseIdx;
  }
}

TEST(ShardCoordinator, ParallelCellSolvesMatchSerial) {
  const Solver& inner = innerSolver();
  const Instance inst = testing::randomInstance(31, 60, 8, 0.35, 0.2);
  ShardOptions options;
  options.cells = 4;

  ShardCoordinator serial(inner, options);
  const SolveOutcome serialOutcome = serial.solve(inst, SolveContext{});

  ThreadPool pool;
  SolveContext pooled;
  pooled.frOpt.pool = &pool;
  ShardCoordinator parallel(inner, options);
  const SolveOutcome parallelOutcome = parallel.solve(inst, pooled);

  // The partition and per-cell budgets are pool-independent; the merged
  // objective must match bit for bit (parallelMap is index-ordered).
  EXPECT_EQ(parallelOutcome.totalAccuracy, serialOutcome.totalAccuracy);
  EXPECT_EQ(parallelOutcome.energy, serialOutcome.energy);
}

TEST(ShardCoordinator, CrossEpochCellCachesPersist) {
  const Solver& inner = innerSolver();
  const Instance inst = testing::randomInstance(41, 30, 6, 0.35, 0.25);
  ShardOptions options;
  options.cells = 3;
  ShardCoordinator coordinator(inner, options);
  const SolveOutcome first = coordinator.solve(inst, SolveContext{});
  const SolveOutcome second = coordinator.solve(inst, SolveContext{});
  // Same instance, same budgets: the second epoch replays and the per-cell
  // cross-solve ProfileCaches supply hits the first epoch had to compute
  // (crossHits counts shared-cache traffic; cacheHits is solve-local).
  EXPECT_EQ(second.totalAccuracy, first.totalAccuracy);
  EXPECT_GT(second.counters.crossHits, first.counters.crossHits);
}

TEST(ShardedSolver, AdapterSurfacesInnerIdentity) {
  const Solver& inner = innerSolver();
  ShardOptions options;
  options.cells = 2;
  const ShardedSolver solver(inner, options);
  EXPECT_EQ(solver.name(), "sharded-approx");
  EXPECT_EQ(&solver.inner(), &inner);
  EXPECT_TRUE(solver.capabilities().integral);

  const Instance inst = testing::randomInstance(51, 20, 4, 0.35, 0.3);
  const SolveOutcome outcome = solver.solve(inst, SolveContext{});
  EXPECT_TRUE(outcome.solved());
  EXPECT_EQ(outcome.solver, "sharded-approx");
  EXPECT_EQ(solver.lastStats().cells, 2);
}

TEST(ShardCoordinator, RespectsAvailabilityCapSlices) {
  // Machine 0 gets a near-zero charge: the coordinator must slice the hint
  // into the owning cell and the availability-aware inner solver must keep
  // that machine (almost) idle in the merged schedule.
  const Instance inst = testing::randomInstance(61, 24, 6, 0.35, 0.6);
  AvailabilityHints hints;
  hints.machineEnergyCaps.assign(
      static_cast<std::size_t>(inst.numMachines()), 1e9);
  hints.machineEnergyCaps[0] = 1e-6;
  SolveContext context;
  context.availability = &hints;

  ShardOptions options;
  options.cells = 3;
  ShardCoordinator coordinator(innerSolver(), options);
  const SolveOutcome outcome = coordinator.solve(inst, context);
  ASSERT_TRUE(outcome.schedule.has_value());
  const double load0 = outcome.schedule->machineLoad(0);
  EXPECT_LE(load0 * inst.machine(0).power(), 1e-5);
}

}  // namespace
}  // namespace dsct::shard
