#include <gtest/gtest.h>

#include "accuracy/levels.h"
#include "baselines/edf_levels.h"
#include "baselines/edf_nocompress.h"
#include "sched/approx.h"
#include "sched/validator.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace dsct {
namespace {

using testing::randomInstance;
using testing::tinyInstance;

TEST(EdfNoCompression, SchedulesWhatFitsUncompressed) {
  // Tiny instance, huge budget. Task 0 (2 TFLOP, d=1) fits fully on the
  // 2 TFLOPS machine. Task 1 (3 TFLOP, d=2) fits nowhere uncompressed:
  // machine 0 is busy until t=1 and needs 1.5 s more; machine 1 alone
  // needs 3 s. The no-compression baseline must drop it.
  const Instance inst = tinyInstance(1e9);
  const BaselineResult res = solveEdfNoCompression(inst);
  EXPECT_EQ(res.scheduledTasks, 1);
  EXPECT_EQ(res.droppedTasks, 1);
  EXPECT_NEAR(res.totalAccuracy, inst.task(0).amax() + inst.task(1).amin(),
              1e-9);
  EXPECT_TRUE(validate(inst, res.schedule).feasible);
}

TEST(EdfNoCompression, DropsWhenBudgetTight) {
  const Instance inst = tinyInstance(0.5);  // almost no energy
  const BaselineResult res = solveEdfNoCompression(inst);
  EXPECT_EQ(res.scheduledTasks, 0);
  EXPECT_NEAR(res.totalAccuracy, inst.totalAmin(), 1e-9);
}

TEST(EdfNoCompression, AllOrNothingPerTask) {
  const Instance inst = randomInstance(17, 10, 3, 0.2, 0.3);
  const BaselineResult res = solveEdfNoCompression(inst);
  for (int j = 0; j < inst.numTasks(); ++j) {
    const double f = res.schedule.flops(inst, j);
    const bool fully = std::abs(f - inst.task(j).fmax()) < 1e-6;
    const bool dropped = f < 1e-9;
    EXPECT_TRUE(fully || dropped) << "task " << j << " partially processed";
  }
  EXPECT_TRUE(validate(inst, res.schedule).feasible);
}

TEST(EdfLevels, UsesOnlyDiscreteLevels) {
  const Instance inst = randomInstance(18, 10, 3, 0.3, 0.5);
  const EdfLevelsOptions options;
  const BaselineResult res = solveEdfLevels(inst, options);
  for (int j = 0; j < inst.numTasks(); ++j) {
    if (res.schedule.machineOf(j) < 0) continue;
    const double f = res.schedule.flops(inst, j);
    const auto levels =
        levelsForTargets(inst.task(j).accuracy, options.accuracyTargets);
    bool matches = f < 1e-9;
    for (const CompressionLevel& level : levels) {
      if (std::abs(f - level.flops) < 1e-6) matches = true;
    }
    EXPECT_TRUE(matches) << "task " << j << " ran at off-level flops " << f;
  }
  EXPECT_TRUE(validate(inst, res.schedule).feasible);
}

TEST(EdfLevels, BeatsOrMatchesNoCompressionUnderTightBudget) {
  // With a tight budget, compression lets more tasks run: the 3-level
  // baseline should never be worse than no-compression.
  for (int trial = 0; trial < 10; ++trial) {
    const Instance inst = randomInstance(deriveSeed(400, trial), 20, 3,
                                         0.5, 0.15, 0.1, 1.0);
    const BaselineResult none = solveEdfNoCompression(inst);
    const BaselineResult three = solveEdfLevels(inst);
    EXPECT_GE(three.totalAccuracy, none.totalAccuracy - 1e-6)
        << "trial " << trial;
  }
}

TEST(Baselines, ApproxDominatesBothOnAverage) {
  // The paper's headline comparison: under a tight energy budget,
  // DSCT-EA-APPROX beats both baselines (Fig. 5's low-β regime).
  double approxSum = 0.0, noneSum = 0.0, threeSum = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    ScenarioSpec spec;
    spec.numTasks = 20;
    spec.numMachines = 2;
    spec.rho = 1.0;
    spec.beta = 0.3;
    spec.budgetMode = BudgetMode::kWorkloadEnergy;
    const Instance inst = makeScenario(spec, 0.1, 0.1, deriveSeed(500, trial));
    approxSum += solveApprox(inst).totalAccuracy;
    noneSum += solveEdfNoCompression(inst).totalAccuracy;
    threeSum += solveEdfLevels(inst).totalAccuracy;
  }
  EXPECT_GT(approxSum, noneSum);
  EXPECT_GT(approxSum, threeSum);
}

TEST(Baselines, ZeroBudget) {
  const Instance inst = randomInstance(6, 5, 2, 0.3, 0.0);
  EXPECT_EQ(solveEdfNoCompression(inst).scheduledTasks, 0);
  EXPECT_EQ(solveEdfLevels(inst).scheduledTasks, 0);
}

TEST(Baselines, EmptyInstance) {
  Instance inst({}, {Machine{1.0, 1.0, "m"}}, 1.0);
  EXPECT_EQ(solveEdfNoCompression(inst).scheduledTasks, 0);
  EXPECT_EQ(solveEdfLevels(inst).scheduledTasks, 0);
}

TEST(EdfLevels, CustomTargets) {
  const Instance inst = tinyInstance(1e9);
  EdfLevelsOptions options;
  options.accuracyTargets = {0.5};
  const BaselineResult res = solveEdfLevels(inst, options);
  EXPECT_EQ(res.scheduledTasks, 2);
  for (int j = 0; j < inst.numTasks(); ++j) {
    EXPECT_NEAR(res.schedule.taskAccuracy(inst, j), 0.5, 1e-9);
  }
}

}  // namespace
}  // namespace dsct
