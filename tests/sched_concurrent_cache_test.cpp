// Differential harness for the concurrency-safe cross-solve ProfileCache
// (the bit-identity contract): the same FR-OPT solve run serial, pooled, and
// pooled-with-concurrent-shared-cache-reads must produce bitwise-equal
// schedules, objectives, and cache contents. Plus a seeded stress test that
// oversubscribes the pool (16 workers on however few cores the host has) and
// checks the hammered cache against a serial replay.
#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sched/fr_opt.h"
#include "sched/profile_cache.h"
#include "sched/profile_evaluator.h"
#include "tests/test_support.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dsct {
namespace {

void expectBitIdentical(const FrOptResult& a, const FrOptResult& b) {
  EXPECT_EQ(a.totalAccuracy, b.totalAccuracy);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.refinedProfile, b.refinedProfile);
  EXPECT_EQ(a.naiveProfile, b.naiveProfile);
  ASSERT_EQ(a.schedule.numTasks(), b.schedule.numTasks());
  ASSERT_EQ(a.schedule.numMachines(), b.schedule.numMachines());
  for (int j = 0; j < a.schedule.numTasks(); ++j) {
    for (int r = 0; r < a.schedule.numMachines(); ++r) {
      EXPECT_EQ(a.schedule.at(j, r), b.schedule.at(j, r))
          << "t[" << j << "][" << r << "]";
    }
  }
}

TEST(ConcurrentCacheDifferential, PooledSharedCacheBitIdenticalAcrossCorpus) {
  // Three execution modes over the seeded five-regime corpus, each feeding
  // its own fresh cache: serial, pooled (serial cache access), and pooled
  // with concurrent shared-cache reads. Everything observable must match —
  // including the caches' sizes, digests, and hit/miss/invalidation
  // counters. Only the contention counter may differ (it measures lock
  // timing, not content).
  ThreadPool pool(8);
  for (int c = 0; c < 3 * testing::kCorpusRegimes; ++c) {
    SCOPED_TRACE("corpus case " + std::to_string(c));
    const Instance inst = testing::corpusInstance(77, c);

    ProfileCache serialCache;
    FrOptOptions serialOpts;
    serialOpts.sharedCache = &serialCache;
    const FrOptResult serial = solveFrOpt(inst, serialOpts);

    ProfileCache pooledCache;
    FrOptOptions pooledOpts;
    pooledOpts.sharedCache = &pooledCache;
    pooledOpts.pool = &pool;
    const FrOptResult pooled = solveFrOpt(inst, pooledOpts);

    ProfileCache parallelCache;
    FrOptOptions parallelOpts;
    parallelOpts.sharedCache = &parallelCache;
    parallelOpts.pool = &pool;
    parallelOpts.parallelCachedEval = true;
    const FrOptResult parallel = solveFrOpt(inst, parallelOpts);

    expectBitIdentical(serial, pooled);
    expectBitIdentical(serial, parallel);

    EXPECT_EQ(serialCache.size(), pooledCache.size());
    EXPECT_EQ(serialCache.size(), parallelCache.size());
    EXPECT_EQ(serialCache.contentDigest(), pooledCache.contentDigest());
    EXPECT_EQ(serialCache.contentDigest(), parallelCache.contentDigest());

    const ProfileCacheCounters sc = serialCache.counters();
    const ProfileCacheCounters pc = parallelCache.counters();
    EXPECT_EQ(sc.hits, pc.hits);
    EXPECT_EQ(sc.misses, pc.misses);
    EXPECT_EQ(sc.invalidations, pc.invalidations);
    EXPECT_EQ(parallel.counters.crossShards,
              static_cast<long long>(parallelCache.shardCount()));
  }
}

TEST(ConcurrentCacheDifferential, CrossSolveReuseUnderParallelMode) {
  // Warm re-solve through the same cache in parallel cached mode: still
  // bit-identical, but it reuses earlier answers instead of recomputing.
  ThreadPool pool(8);
  const Instance inst = testing::corpusInstance(512, 7);
  ProfileCache cache;
  FrOptOptions opts;
  opts.sharedCache = &cache;
  opts.pool = &pool;
  opts.parallelCachedEval = true;

  const FrOptResult cold = solveFrOpt(inst, opts);
  const FrOptResult warm = solveFrOpt(inst, opts);
  expectBitIdentical(cold, warm);
  EXPECT_GT(warm.counters.crossHits, 0);
  EXPECT_LT(warm.counters.evaluations, cold.counters.evaluations);
}

TEST(ConcurrentCacheDifferential, EvaluateBatchParallelModeMatchesSerial) {
  // Direct evaluator-level check, away from FR-OPT's control flow: a batch
  // with deliberate exact duplicates, evaluated serially and in parallel
  // cached mode through fresh caches, must return bitwise-equal vectors and
  // leave bitwise-equal caches — cold and warm.
  const Instance inst = testing::goldenMidSizeInstance();
  ThreadPool pool(16);
  Rng rng(313);
  std::vector<EnergyProfile> profiles;
  profiles.reserve(160);
  for (int i = 0; i < 160; ++i) {
    if (i >= 3 && i % 3 == 0) {
      profiles.push_back(profiles[static_cast<std::size_t>(i - 3)]);
    } else {
      profiles.push_back(
          EnergyProfile{rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)});
    }
  }

  ProfileCache serialCache;
  ProfileCache parallelCache;
  std::vector<double> serialCold;
  std::vector<double> parallelCold;
  {
    ProfileEvaluator serialEval(inst, &serialCache);
    serialCold = serialEval.evaluateBatch(profiles, nullptr);
    ProfileEvaluator parallelEval(inst, &parallelCache);
    parallelCold = parallelEval.evaluateBatch(profiles, &pool, true);
  }
  EXPECT_EQ(serialCold, parallelCold);
  EXPECT_EQ(serialCache.size(), parallelCache.size());
  EXPECT_EQ(serialCache.contentDigest(), parallelCache.contentDigest());

  // Warm pass through fresh evaluators (empty local memos, full shared
  // caches): identical answers again, and no new cache entries.
  const std::uint64_t digestBefore = parallelCache.contentDigest();
  ProfileEvaluator serialWarm(inst, &serialCache);
  ProfileEvaluator parallelWarm(inst, &parallelCache);
  EXPECT_EQ(serialWarm.evaluateBatch(profiles, nullptr), serialCold);
  EXPECT_EQ(parallelWarm.evaluateBatch(profiles, &pool, true), parallelCold);
  EXPECT_EQ(parallelCache.contentDigest(), digestBefore);
}

TEST(ConcurrentCacheStress, SeededOversubscribedHammerMatchesSerialReplay) {
  // 16 logical hammer tasks on whatever core count the host has (a single
  // core in CI — maximal oversubscription) mixing lookups and stores over a
  // small shared key space. Values are a pure function of the key, so every
  // hit can be checked in-flight; afterwards a serial replay of the same
  // seeded sequences must reproduce the cache contents exactly
  // (first-store-wins makes the final contents order-independent).
  constexpr int kTasks = 16;
  constexpr int kOpsPerTask = 4000;
  constexpr int kKeySpace = 97;
  const auto profileFor = [](int key) {
    return EnergyProfile{static_cast<double>(key), 0.5};
  };
  const auto valueFor = [](int key) {
    return static_cast<double>(key) * 1.25 + 0.125;
  };
  const auto fingerprintFor = [](int key) {
    return static_cast<std::uint64_t>(1000 + key);
  };

  ProfileCache hammered(1 << 20, 8);
  std::atomic<long long> lookups{0};
  {
    ThreadPool pool(16);
    pool.parallelFor(kTasks, [&](std::size_t t) {
      Rng rng(deriveSeed(909, static_cast<std::uint64_t>(t)));
      for (int op = 0; op < kOpsPerTask; ++op) {
        const int key = rng.uniformInt(0, kKeySpace - 1);
        if (rng.bernoulli(0.5)) {
          lookups.fetch_add(1, std::memory_order_relaxed);
          const auto hit = hammered.lookup(fingerprintFor(key), profileFor(key));
          if (hit.has_value()) {
            EXPECT_EQ(*hit, valueFor(key)) << "key " << key;
          }
        } else {
          hammered.store(fingerprintFor(key), profileFor(key), valueFor(key));
        }
      }
    });
  }

  // Serial replay of every task's sequence (stores only) into a
  // single-shard reference cache: same size, same content digest.
  ProfileCache reference(1 << 20, 1);
  long long replayedLookups = 0;
  for (int t = 0; t < kTasks; ++t) {
    Rng rng(deriveSeed(909, static_cast<std::uint64_t>(t)));
    for (int op = 0; op < kOpsPerTask; ++op) {
      const int key = rng.uniformInt(0, kKeySpace - 1);
      if (rng.bernoulli(0.5)) {
        ++replayedLookups;
      } else {
        reference.store(fingerprintFor(key), profileFor(key), valueFor(key));
      }
    }
  }
  EXPECT_EQ(hammered.size(), reference.size());
  EXPECT_EQ(hammered.contentDigest(), reference.contentDigest());

  const ProfileCacheCounters counters = hammered.counters();
  EXPECT_EQ(counters.hits + counters.misses, lookups.load());
  EXPECT_EQ(lookups.load(), replayedLookups);
  EXPECT_EQ(counters.invalidations, 0);  // key space far below capacity
}

}  // namespace
}  // namespace dsct
