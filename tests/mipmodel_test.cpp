#include "mipmodel/dsct_mip.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mipmodel/dsct_lp.h"
#include "sched/approx.h"
#include "sched/validator.h"
#include "solver/simplex.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace dsct {
namespace {

using testing::randomInstance;
using testing::tinyInstance;

TEST(DsctLp, ModelShape) {
  const Instance inst = tinyInstance();
  const DsctLp lpModel = buildFractionalLp(inst);
  // Vars: 2*2 t + 2 z. Rows: 2 tasks * 2 segments + 2*2 deadlines + 2 fmax
  // + 1 energy.
  EXPECT_EQ(lpModel.model.numVariables(), 6);
  EXPECT_EQ(lpModel.model.numConstraints(), 4 + 4 + 2 + 1);
  EXPECT_TRUE(lpModel.model.maximize());
}

TEST(DsctLp, ExtractFractionalRoundTrip) {
  const Instance inst = tinyInstance();
  const DsctLp lpModel = buildFractionalLp(inst);
  const lp::LpResult res = lp::solveLp(lpModel.model);
  ASSERT_EQ(res.status, lp::SolveStatus::kOptimal);
  const FractionalSchedule s = extractFractional(inst, lpModel, res.x);
  // The LP objective equals the schedule's accuracy (z_j tight at optimum).
  EXPECT_NEAR(s.totalAccuracy(inst), res.objective, 1e-7);
  EXPECT_TRUE(validate(inst, s).feasible);
}

TEST(DsctMip, ModelShape) {
  const Instance inst = tinyInstance();
  const DsctMip mip = buildMip(inst);
  EXPECT_EQ(mip.model.numVariables(), 4 + 4 + 2);
  EXPECT_EQ(mip.model.numIntegerVariables(), 4);
  // Rows: 4 acc + 4 ddl + 2 fmax + 4 link + 2 assign + 1 energy.
  EXPECT_EQ(mip.model.numConstraints(), 17);
}

TEST(DsctMip, MipStartIsFeasible) {
  const Instance inst = randomInstance(55, 6, 2);
  const ApproxResult approx = solveApprox(inst);
  const DsctMip mip = buildMip(inst);
  const std::vector<double> start = mipStart(inst, mip, approx.schedule);
  EXPECT_TRUE(mip.model.isFeasible(start, 1e-6))
      << "violation " << mip.model.maxViolation(start);
  EXPECT_NEAR(mip.model.objectiveValue(start), approx.totalAccuracy, 1e-9);
}

TEST(DsctMip, SolutionFeasibleAndAboveApprox) {
  const Instance inst = randomInstance(56, 5, 2, 0.3, 0.5);
  const ApproxResult approx = solveApprox(inst);
  lp::MipOptions options;
  options.timeLimitSeconds = 20.0;
  const MipSolveSummary summary = solveDsctMip(inst, options, &approx.schedule);
  ASSERT_TRUE(summary.result.hasSolution);
  ASSERT_TRUE(summary.schedule.has_value());
  const ValidationReport report = validate(inst, *summary.schedule);
  EXPECT_TRUE(report.feasible) << report.summary();
  // The exact solution is at least as good as the approximation.
  EXPECT_GE(summary.totalAccuracy, approx.totalAccuracy - 1e-6);
}

TEST(DsctMip, MipBelowFractionalUpperBound) {
  const Instance inst = randomInstance(57, 4, 2, 0.3, 0.4);
  lp::MipOptions options;
  options.timeLimitSeconds = 20.0;
  const MipSolveSummary summary = solveDsctMip(inst, options);
  const DsctLp lpModel = buildFractionalLp(inst);
  const lp::LpResult lpRes = lp::solveLp(lpModel.model);
  ASSERT_EQ(lpRes.status, lp::SolveStatus::kOptimal);
  if (summary.result.hasSolution) {
    EXPECT_LE(summary.totalAccuracy, lpRes.objective + 1e-6);
  }
}

// Exhaustive cross-check on tiny instances: enumerate every task→machine
// assignment, solve the resulting per-machine fractional problems via the
// LP, and compare with branch-and-bound.
class MipVsExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(MipVsExhaustive, MatchesAssignmentEnumeration) {
  const std::uint64_t seed =
      deriveSeed(2718, static_cast<std::uint64_t>(GetParam()));
  Rng rng(seed);
  const int n = rng.uniformInt(2, 4);
  const int m = rng.uniformInt(1, 2);
  const Instance inst = randomInstance(seed, n, m, rng.uniform(0.05, 0.5),
                                       rng.uniform(0.2, 0.9), 0.1, 2.0);

  // Enumerate assignments; for each, the best compression levels are the
  // solution of the LP with x fixed (still a valid LP: just drop the t_jr
  // of unassigned machines).
  double best = -1.0;
  std::vector<int> assign(static_cast<std::size_t>(n), 0);
  const long combos = static_cast<long>(std::pow(m, n));
  for (long code = 0; code < combos; ++code) {
    long c = code;
    for (int j = 0; j < n; ++j) {
      assign[static_cast<std::size_t>(j)] = static_cast<int>(c % m);
      c /= m;
    }
    DsctLp lpModel = buildFractionalLp(inst);
    // Fix t_jr = 0 for machines other than the assigned one.
    std::vector<double> lower(
        static_cast<std::size_t>(lpModel.model.numVariables()));
    std::vector<double> upper(lower.size());
    for (int v = 0; v < lpModel.model.numVariables(); ++v) {
      lower[static_cast<std::size_t>(v)] = lpModel.model.variable(v).lower;
      upper[static_cast<std::size_t>(v)] = lpModel.model.variable(v).upper;
    }
    for (int j = 0; j < n; ++j) {
      for (int r = 0; r < m; ++r) {
        if (r != assign[static_cast<std::size_t>(j)]) {
          upper[static_cast<std::size_t>(lpModel.tVar(j, r))] = 0.0;
        }
      }
    }
    const lp::LpResult res =
        lp::solveLpWithBounds(lpModel.model, lower, upper);
    if (res.status == lp::SolveStatus::kOptimal) {
      best = std::max(best, res.objective);
    }
  }
  ASSERT_GE(best, 0.0);

  lp::MipOptions options;
  options.timeLimitSeconds = 30.0;
  const MipSolveSummary summary = solveDsctMip(inst, options);
  ASSERT_EQ(summary.result.status, lp::SolveStatus::kOptimal)
      << "seed " << seed;
  EXPECT_NEAR(summary.result.objective, best, 1e-5) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(TinyInstances, MipVsExhaustive,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace dsct
