// Fault-injection layer: deterministic event streams (FaultTrace) and the
// crash/straggler-aware schedule execution.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sched/approx.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "tests/test_support.h"
#include "util/check.h"

namespace dsct {
namespace {

using testing::randomInstance;
using testing::tinyInstance;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Trace where machine 0 has the given windows and machine 1 is fault-free
/// (tinyInstance has two machines).
sim::FaultTrace oneMachineTrace(std::vector<sim::FaultInterval> down,
                                std::vector<sim::FaultInterval> slow = {},
                                double slowFactor = 1.0) {
  return sim::FaultTrace({std::move(down), {}}, {std::move(slow), {}},
                         slowFactor, {}, {}, 2);
}

// ---------------------------------------------------------- FaultTrace ---

TEST(FaultTrace, DisabledIsTransparent) {
  const sim::FaultTrace trace;
  EXPECT_FALSE(trace.enabled());
  EXPECT_TRUE(trace.aliveAt(0, 0.0));
  EXPECT_TRUE(trace.aliveAt(5, 123.0));
  EXPECT_EQ(trace.nextCrashAt(0, 0.0), kInf);
  EXPECT_DOUBLE_EQ(trace.effectiveSeconds(3, 1.0, 4.0), 3.0);
  EXPECT_DOUBLE_EQ(trace.budgetFactor(7), 1.0);
  EXPECT_FALSE(trace.policyFailureInjected(0));
}

TEST(FaultTrace, AliveAndNextCrashFollowIntervals) {
  const auto trace = oneMachineTrace({{2.0, 3.0}, {5.0, 6.5}});
  EXPECT_TRUE(trace.aliveAt(0, 0.0));
  EXPECT_TRUE(trace.aliveAt(0, 1.999));
  EXPECT_FALSE(trace.aliveAt(0, 2.0));
  EXPECT_FALSE(trace.aliveAt(0, 2.999));
  EXPECT_TRUE(trace.aliveAt(0, 3.0));  // half-open [start, end)
  EXPECT_FALSE(trace.aliveAt(0, 6.0));
  EXPECT_TRUE(trace.aliveAt(0, 100.0));
  EXPECT_DOUBLE_EQ(trace.nextCrashAt(0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(trace.nextCrashAt(0, 2.5), 2.5);  // already down
  EXPECT_DOUBLE_EQ(trace.nextCrashAt(0, 3.0), 5.0);
  EXPECT_EQ(trace.nextCrashAt(0, 6.5), kInf);
}

TEST(FaultTrace, EffectiveSecondsScalesStragglerOverlap) {
  const auto trace = oneMachineTrace({}, {{1.0, 3.0}}, 0.25);
  // No overlap.
  EXPECT_DOUBLE_EQ(trace.effectiveSeconds(0, 3.0, 5.0), 2.0);
  // Fully inside the window: 1 s at factor 0.25.
  EXPECT_DOUBLE_EQ(trace.effectiveSeconds(0, 1.5, 2.5), 0.25);
  // Partial overlap [0.5, 1.5]: 0.5 normal + 0.5 slowed.
  EXPECT_DOUBLE_EQ(trace.effectiveSeconds(0, 0.5, 1.5), 0.5 + 0.5 * 0.25);
}

TEST(FaultTrace, GeneratedTraceIsDeterministicAndClipped) {
  sim::FaultOptions opt;
  opt.enabled = true;
  opt.seed = 99;
  opt.mtbfSeconds = 3.0;
  opt.mttrSeconds = 1.0;
  opt.slowdownMtbfSeconds = 2.0;
  opt.slowdownMeanSeconds = 0.5;
  opt.slowdownFactor = 0.5;
  opt.budgetShockProbability = 0.4;
  opt.budgetShockFactor = 0.3;
  const auto a = sim::FaultTrace::generate(3, 50.0, 20, opt);
  const auto b = sim::FaultTrace::generate(3, 50.0, 20, opt);
  EXPECT_EQ(a.numMachines(), 3);
  int shocked = 0;
  for (long long e = 0; e < 20; ++e) {
    EXPECT_DOUBLE_EQ(a.budgetFactor(e), b.budgetFactor(e));
    EXPECT_TRUE(a.budgetFactor(e) == 1.0 || a.budgetFactor(e) == 0.3);
    if (a.budgetFactor(e) == 0.3) ++shocked;
  }
  EXPECT_GT(shocked, 0);
  for (int r = 0; r < 3; ++r) {
    ASSERT_EQ(a.downtime(r).size(), b.downtime(r).size());
    EXPECT_FALSE(a.downtime(r).empty());  // MTBF 3 over 50 s: crashes happen
    double prevEnd = 0.0;
    for (const auto& w : a.downtime(r)) {
      EXPECT_GE(w.start, prevEnd);
      EXPECT_LE(w.end, 50.0);
      prevEnd = w.end;
    }
  }
  // Different machines get independent streams.
  EXPECT_NE(a.downtime(0).front().start, a.downtime(1).front().start);
}

TEST(FaultTrace, RejectsUnsortedIntervalsAndBadFactor) {
  EXPECT_THROW(oneMachineTrace({{3.0, 2.0}}), CheckError);
  EXPECT_THROW(oneMachineTrace({{2.0, 4.0}, {3.0, 5.0}}), CheckError);
  EXPECT_THROW(sim::FaultTrace({{}}, {{}}, 0.0, {}, {}, 2), CheckError);
  EXPECT_THROW(sim::FaultTrace({{}}, {{}}, 1.5, {}, {}, 2), CheckError);
}

TEST(FaultTrace, GenerateValidatesEachOptionFieldLoudly) {
  // Every degenerate field is rejected at trace-sampling time, one
  // regression per field (the pre-validation driver silently sampled an
  // empty or nonsensical trace instead).
  sim::FaultOptions good;
  good.enabled = true;
  good.mtbfSeconds = 3.0;
  good.mttrSeconds = 1.0;
  const auto generate = [](const sim::FaultOptions& o) {
    return sim::FaultTrace::generate(2, 10.0, 20, o);
  };
  EXPECT_NO_THROW(generate(good));
  {
    auto o = good;
    o.mtbfSeconds = -1.0;
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = good;
    o.mttrSeconds = -0.5;
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = good;
    o.mttrSeconds = 0.0;  // crashes enabled → repair time must be positive
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = good;
    o.slowdownMtbfSeconds = -2.0;
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = good;
    o.slowdownMeanSeconds = -1.0;
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = good;
    o.slowdownMtbfSeconds = 2.0;
    o.slowdownMeanSeconds = 0.0;  // stragglers enabled → mean must be > 0
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = good;
    o.slowdownFactor = 0.0;  // validated even with stragglers disabled
    EXPECT_THROW(generate(o), CheckError);
    o.slowdownFactor = 1.5;
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = good;
    o.budgetShockProbability = -0.1;
    EXPECT_THROW(generate(o), CheckError);
    o.budgetShockProbability = 1.1;
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = good;
    o.budgetShockFactor = -0.3;
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = good;
    o.maxRetries = -1;
    EXPECT_THROW(generate(o), CheckError);
  }
}

TEST(FaultTrace, InjectedPolicyFailures) {
  const sim::FaultTrace trace({{}}, {{}}, 1.0, {}, {7, 2}, 1);
  EXPECT_TRUE(trace.policyFailureInjected(2));
  EXPECT_TRUE(trace.policyFailureInjected(7));
  EXPECT_FALSE(trace.policyFailureInjected(3));
}

// --------------------------------------------------- faulty execution ----

TEST(FaultExecution, InactiveContextMatchesPlainExecution) {
  const Instance inst = randomInstance(77, 10, 3);
  const IntegralSchedule s = solveApprox(inst).schedule;
  const auto plain = sim::executeSchedule(inst, s);
  const auto viaCtx =
      sim::executeSchedule(inst, s, sim::CommModel{}, sim::FaultContext{});
  EXPECT_DOUBLE_EQ(plain.totalEnergy, viaCtx.totalEnergy);
  EXPECT_DOUBLE_EQ(plain.totalAccuracy, viaCtx.totalAccuracy);
  EXPECT_EQ(plain.deadlineMisses, viaCtx.deadlineMisses);
  EXPECT_EQ(viaCtx.interruptions, 0);
}

TEST(FaultExecution, CrashCutsRunningTaskAndDropsRest) {
  const Instance inst = tinyInstance(1e9);
  // Machine 0 (2 TFLOPS, 40 W): task 0 runs [0, 0.3), task 1 runs [0.3, 0.7).
  const IntegralSchedule s = IntegralSchedule::build(inst, {0, 0}, {0.3, 0.4});
  const auto trace = oneMachineTrace({{0.5, 2.0}});
  sim::FaultContext ctx;
  ctx.trace = &trace;
  const auto exec = sim::executeSchedule(inst, s, sim::CommModel{}, ctx);
  // Task 0 completed before the crash.
  EXPECT_FALSE(exec.executions[0].interrupted);
  EXPECT_NEAR(exec.executions[0].flops, 0.6, 1e-12);
  // Task 1 cut at t = 0.5 after 0.2 s of work.
  EXPECT_TRUE(exec.executions[1].interrupted);
  EXPECT_TRUE(exec.executions[1].executed);
  EXPECT_NEAR(exec.executions[1].finish, 0.5, 1e-12);
  EXPECT_NEAR(exec.executions[1].flops, 0.4, 1e-12);
  EXPECT_EQ(exec.interruptions, 1);
  // Energy covers only the 0.5 s actually run.
  EXPECT_NEAR(exec.totalEnergy, 0.5 * inst.machine(0).power(), 1e-9);
}

TEST(FaultExecution, CrashBeforeStartLeavesTaskUnexecuted) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s = IntegralSchedule::build(inst, {0, 0}, {0.3, 0.4});
  const auto trace = oneMachineTrace({{0.1, 5.0}});
  sim::FaultContext ctx;
  ctx.trace = &trace;
  const auto exec = sim::executeSchedule(inst, s, sim::CommModel{}, ctx);
  // Task 0 cut mid-flight at 0.1; task 1 never starts.
  EXPECT_TRUE(exec.executions[0].interrupted);
  EXPECT_NEAR(exec.executions[0].flops, 0.2, 1e-12);
  EXPECT_TRUE(exec.executions[1].interrupted);
  EXPECT_FALSE(exec.executions[1].executed);
  EXPECT_DOUBLE_EQ(exec.executions[1].flops, 0.0);
  // Floor accuracy is retained for the never-started task.
  EXPECT_DOUBLE_EQ(exec.executions[1].accuracy,
                   inst.task(1).accuracy.value(0.0));
  EXPECT_EQ(exec.interruptions, 2);
}

TEST(FaultExecution, MachineDownAtOffsetExecutesNothing) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s = IntegralSchedule::build(inst, {0, 0}, {0.3, 0.4});
  const auto trace = oneMachineTrace({{10.0, 20.0}});
  sim::FaultContext ctx;
  ctx.trace = &trace;
  ctx.timeOffset = 12.0;  // epoch starts inside the downtime window
  const auto exec = sim::executeSchedule(inst, s, sim::CommModel{}, ctx);
  EXPECT_EQ(exec.interruptions, 2);
  EXPECT_DOUBLE_EQ(exec.totalEnergy, 0.0);
  EXPECT_FALSE(exec.executions[0].executed);
  EXPECT_FALSE(exec.executions[1].executed);
}

TEST(FaultExecution, StragglerShrinksFlopsNotOccupancy) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s = IntegralSchedule::build(inst, {0, -1}, {0.4, 0.0});
  // Slowdown covers [0.2, 0.6) at factor 0.5; task runs [0, 0.4).
  const auto trace = oneMachineTrace({}, {{0.2, 0.6}}, 0.5);
  sim::FaultContext ctx;
  ctx.trace = &trace;
  const auto exec = sim::executeSchedule(inst, s, sim::CommModel{}, ctx);
  // Effective seconds: 0.2 + 0.2·0.5 = 0.3 → 0.6 TFLOP at 2 TFLOPS.
  EXPECT_NEAR(exec.executions[0].flops, 0.6, 1e-12);
  EXPECT_FALSE(exec.executions[0].interrupted);
  EXPECT_NEAR(exec.executions[0].finish, 0.4, 1e-12);  // slot unchanged
  // Full slot is billed.
  EXPECT_NEAR(exec.totalEnergy, 0.4 * inst.machine(0).power(), 1e-9);
}

TEST(FaultExecution, MachineMapRedirectsTraceLookups) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s = IntegralSchedule::build(inst, {0, 0}, {0.3, 0.4});
  // Trace machine 0 crashes immediately, trace machine 1 never does. With
  // the swapped map, instance machine 0 follows trace machine 1 and
  // survives (instance machine 1 runs nothing here anyway).
  const sim::FaultTrace trace({{{0.0, 9.0}}, {}}, {{}, {}}, 1.0, {}, {}, 2);
  sim::FaultContext ctx;
  ctx.trace = &trace;
  ctx.machineMap = {1, 0};
  const auto exec = sim::executeSchedule(inst, s, sim::CommModel{}, ctx);
  EXPECT_EQ(exec.interruptions, 0);
  EXPECT_TRUE(exec.executions[0].executed);
  EXPECT_TRUE(exec.executions[1].executed);
}

}  // namespace
}  // namespace dsct
