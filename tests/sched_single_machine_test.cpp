#include "sched/single_machine.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "mipmodel/dsct_lp.h"
#include "solver/simplex.h"
#include "tests/test_support.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace dsct {
namespace {

using testing::twoSegment;

TEST(SegmentJobs, FlattensAccuracyFunctions) {
  const std::vector<Task> tasks{Task{1.0, twoSegment(0.0, 0.8, 2.0), ""}};
  const auto segs = makeSegmentJobs(tasks);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].task, 0);
  EXPECT_EQ(segs[0].position, 0);
  EXPECT_DOUBLE_EQ(segs[0].slope, 0.6);  // 0.75*0.8 over half the range
  EXPECT_DOUBLE_EQ(segs[0].flops, 1.0);
  EXPECT_DOUBLE_EQ(segs[1].slope, 0.2);
}

TEST(SingleMachine, OneTaskFullyProcessedWhenTimeAllows) {
  const std::vector<Task> tasks{Task{10.0, twoSegment(0.0, 0.8, 2.0), ""}};
  const auto t = scheduleSingleMachine(tasks, 1.0);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t[0], 2.0);  // fmax / speed
}

TEST(SingleMachine, DeadlineCapsProcessing) {
  const std::vector<Task> tasks{Task{0.5, twoSegment(0.0, 0.8, 2.0), ""}};
  const auto t = scheduleSingleMachine(tasks, 1.0);
  EXPECT_DOUBLE_EQ(t[0], 0.5);
}

TEST(SingleMachine, SpeedScalesTime) {
  const std::vector<Task> tasks{Task{10.0, twoSegment(0.0, 0.8, 2.0), ""}};
  const auto t = scheduleSingleMachine(tasks, 4.0);
  EXPECT_DOUBLE_EQ(t[0], 0.5);
}

TEST(SingleMachine, PrioritisesSteeperTask) {
  // Two tasks share deadline 1.0; task 1 is steeper, so it should receive
  // the time.
  const std::vector<Task> tasks{
      Task{1.0, PiecewiseLinearAccuracy::linear(0.0, 0.2, 2.0), "shallow"},
      Task{1.0, PiecewiseLinearAccuracy::linear(0.0, 0.8, 2.0), "steep"},
  };
  const auto t = scheduleSingleMachine(tasks, 1.0);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[1], 1.0);
}

TEST(SingleMachine, LaterDeadlineAddsSlack) {
  // Task 0 (steep, d=1) fills [0,1]; task 1 (shallow, d=3) still gets 2s.
  const std::vector<Task> tasks{
      Task{1.0, PiecewiseLinearAccuracy::linear(0.0, 0.8, 2.0), "steep"},
      Task{3.0, PiecewiseLinearAccuracy::linear(0.0, 0.2, 2.0), "shallow"},
  };
  const auto t = scheduleSingleMachine(tasks, 1.0);
  EXPECT_DOUBLE_EQ(t[0], 1.0);
  EXPECT_DOUBLE_EQ(t[1], 2.0);
}

TEST(SingleMachine, EarlierTaskConstrainedByOwnDeadline) {
  // Steep task has the *later* deadline; shallow early task can only use
  // what the steep one leaves before its own deadline... here the steep
  // task (d=2) is scheduled first by slope; the shallow task (d=1) then
  // fits into the remaining prefix room.
  const std::vector<Task> tasks{
      Task{1.0, PiecewiseLinearAccuracy::linear(0.0, 0.2, 5.0), "shallow"},
      Task{2.0, PiecewiseLinearAccuracy::linear(0.0, 0.8, 1.0), "steep"},
  };
  const auto t = scheduleSingleMachine(tasks, 1.0);
  // Steep needs 1s anywhere before d=2. Shallow can then use up to
  // min(d_0 - t_0, d_1 - t_0 - t_1) = min(1 - t_0, 1) of its prefix.
  EXPECT_DOUBLE_EQ(t[1], 1.0);
  EXPECT_DOUBLE_EQ(t[0], 1.0);
}

TEST(SingleMachine, ZeroDeadlinesGiveZeroTimes) {
  const std::vector<Task> tasks{
      Task{0.0, twoSegment(), "a"},
      Task{0.0, twoSegment(), "b"},
  };
  const auto t = scheduleSingleMachine(tasks, 1.0);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[1], 0.0);
}

TEST(SingleMachine, EmptyInput) {
  const std::vector<Task> tasks;
  EXPECT_TRUE(scheduleSingleMachine(tasks, 1.0).empty());
}

TEST(SingleMachine, RejectsBadArguments) {
  const std::vector<Task> tasks{Task{1.0, twoSegment(), ""}};
  EXPECT_THROW(scheduleSingleMachine(tasks, 0.0), CheckError);
  std::vector<double> unsorted{2.0, 1.0};
  EXPECT_THROW(
      scheduleSingleMachine(unsorted, 1.0, std::vector<SegmentJob>{}),
      CheckError);
  std::vector<double> ok{1.0};
  EXPECT_THROW(scheduleSingleMachine(
                   ok, 1.0, std::vector<SegmentJob>{{7, 0, 0.1, 1.0}}),
               CheckError);
}

TEST(SingleMachine, PrefixConstraintsHold) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.uniformInt(1, 12);
    std::vector<Task> tasks;
    double d = 0.0;
    for (int j = 0; j < n; ++j) {
      d += rng.uniform(0.0, 1.0);
      tasks.push_back(Task{d, twoSegment(0.0, rng.uniform(0.3, 0.9),
                                         rng.uniform(0.5, 4.0)),
                           ""});
    }
    const auto t = scheduleSingleMachine(tasks, rng.uniform(0.5, 3.0));
    double prefix = 0.0;
    for (int j = 0; j < n; ++j) {
      prefix += t[static_cast<std::size_t>(j)];
      EXPECT_LE(prefix, tasks[static_cast<std::size_t>(j)].deadline + 1e-9);
    }
  }
}

// The load-bearing test: Algorithm 1 must match the LP optimum on random
// single-machine instances (energy budget disabled).
class SingleMachineVsLp : public ::testing::TestWithParam<int> {};

TEST_P(SingleMachineVsLp, MatchesLpOptimum) {
  const std::uint64_t seed =
      deriveSeed(777, static_cast<std::uint64_t>(GetParam()));
  Rng rng(seed);
  const int n = rng.uniformInt(2, 10);
  std::vector<Task> tasks;
  double d = 0.0;
  for (int j = 0; j < n; ++j) {
    d += rng.uniform(0.05, 1.0);
    tasks.push_back(Task{
        d, makePaperAccuracy(0.001, 0.82, rng.uniform(0.2, 3.0), 4), ""});
  }
  const double speed = rng.uniform(0.5, 4.0);
  std::vector<Machine> machines{Machine{speed, 1.0, "solo"}};
  // Huge budget: energy constraint inactive, matching Algorithm 1's scope.
  Instance inst(tasks, machines, 1e12);

  const auto t = scheduleSingleMachine(inst.tasks(), speed);
  double accuracy = 0.0;
  for (int j = 0; j < n; ++j) {
    accuracy += inst.task(j).accuracy.value(speed * t[static_cast<std::size_t>(j)]);
  }

  const DsctLp lpModel = buildFractionalLp(inst);
  const lp::LpResult lpRes = lp::solveLp(lpModel.model);
  ASSERT_EQ(lpRes.status, lp::SolveStatus::kOptimal) << "seed " << seed;
  EXPECT_NEAR(accuracy, lpRes.objective, 1e-6) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SingleMachineVsLp,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace dsct
