// Parameterised property sweeps over the accuracy-model family used by
// every experiment (TEST_P per DESIGN.md testing strategy).
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "accuracy/exponential.h"
#include "accuracy/fit.h"
#include "accuracy/piecewise.h"

namespace dsct {
namespace {

class PaperAccuracySweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(PaperAccuracySweep, StructuralInvariants) {
  const auto& [theta, segments] = GetParam();
  const auto acc = makePaperAccuracy(0.001, 0.82, theta, segments);

  // Fixed endpoints.
  EXPECT_DOUBLE_EQ(acc.amin(), 0.001);
  EXPECT_NEAR(acc.amax(), 0.82, 1e-9);
  EXPECT_EQ(acc.numSegments(), segments);

  // Monotone non-decreasing, concave, in-range.
  double prev = -1.0;
  for (double f = 0.0; f <= acc.fmax(); f += acc.fmax() / 53.0) {
    const double a = acc.value(f);
    EXPECT_GE(a, prev - 1e-12);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
    // gain (right slope) never exceeds loss (left slope): concavity.
    EXPECT_LE(acc.marginalGain(f), acc.marginalLoss(f) + 1e-12);
    prev = a;
  }

  // Slopes strictly ordered for the geometric fit of an exponential.
  for (int k = 0; k + 1 < acc.numSegments(); ++k) {
    EXPECT_GT(acc.slope(k), acc.slope(k + 1));
  }

  // The fitted first-segment slope tracks θ within the chord factor.
  EXPECT_GT(acc.theta(), 0.4 * theta);
  EXPECT_LT(acc.theta(), 1.2 * theta);

  // inverse is a right-inverse of value across the whole range.
  for (double a = acc.amin(); a <= acc.amax();
       a += (acc.amax() - acc.amin()) / 11.0) {
    EXPECT_NEAR(acc.value(acc.inverse(a)), a, 1e-9);
  }
}

TEST_P(PaperAccuracySweep, FmaxScalesInverselyWithTheta) {
  const auto& [theta, segments] = GetParam();
  const auto one = makePaperAccuracy(0.001, 0.82, theta, segments);
  const auto twice = makePaperAccuracy(0.001, 0.82, 2.0 * theta, segments);
  EXPECT_NEAR(one.fmax() / twice.fmax(), 2.0, 1e-9);
}

TEST_P(PaperAccuracySweep, SuffixChainsConsistently) {
  const auto& [theta, segments] = GetParam();
  const auto acc = makePaperAccuracy(0.001, 0.82, theta, segments);
  // suffix(a).suffix(b) == suffix(a + b).
  const double a = 0.2 * acc.fmax();
  const double b = 0.3 * acc.fmax();
  const auto chained = acc.suffix(a).suffix(b);
  const auto direct = acc.suffix(a + b);
  EXPECT_NEAR(chained.fmax(), direct.fmax(), 1e-9);
  for (double f = 0.0; f <= chained.fmax(); f += chained.fmax() / 13.0) {
    EXPECT_NEAR(chained.value(f), direct.value(f), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThetaBySegments, PaperAccuracySweep,
    ::testing::Combine(::testing::Values(0.1, 0.5, 1.0, 2.4, 4.9),
                       ::testing::Values(2, 5, 9)));

class ExponentialSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialSweep, FitErrorShrinksWithMoreSegments) {
  const double theta = GetParam();
  const ExponentialAccuracyModel model(0.001, 0.82, theta);
  const double fmax = model.flopsForCoverage(0.01);
  double prevError = 1e9;
  for (int segments : {2, 4, 8, 16}) {
    const auto fit = fitInterpolate(
        model, makeBreakpoints(fmax, segments, BreakpointSpacing::kGeometric));
    double worst = 0.0;
    for (double f = 0.0; f <= fmax; f += fmax / 101.0) {
      worst = std::max(worst, std::fabs(fit.value(f) - model.value(f)));
    }
    EXPECT_LT(worst, prevError + 1e-12) << "segments " << segments;
    prevError = worst;
  }
  // The affine endpoint rescale (fit forced through a_max at f_max) adds a
  // systematic ~eps·range ≈ 0.008 on top of the chord error.
  EXPECT_LT(prevError, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ExponentialSweep,
                         ::testing::Values(0.1, 0.7, 2.0, 4.9));

}  // namespace
}  // namespace dsct
