// Residual accuracy functions and backlog carry-over in the serving driver.
#include <gtest/gtest.h>

#include "accuracy/fit.h"
#include "accuracy/piecewise.h"
#include "sim/renewable.h"
#include "sim/serving.h"
#include "util/check.h"
#include "workload/gpu_catalog.h"

namespace dsct {
namespace {

PiecewiseLinearAccuracy sample() {
  return PiecewiseLinearAccuracy::fromPoints({0.0, 1.0, 2.0, 4.0},
                                             {0.1, 0.5, 0.7, 0.9});
}

TEST(Suffix, MidSegment) {
  const auto f = sample();
  const auto s = f.suffix(0.5);
  EXPECT_DOUBLE_EQ(s.amin(), f.value(0.5));
  EXPECT_DOUBLE_EQ(s.amax(), f.amax());
  EXPECT_DOUBLE_EQ(s.fmax(), 3.5);
  EXPECT_EQ(s.numSegments(), 3);
  // suffix(fDone)(x) == f(fDone + x) everywhere.
  for (double x = 0.0; x <= 3.5; x += 0.17) {
    EXPECT_NEAR(s.value(x), f.value(0.5 + x), 1e-12) << "x=" << x;
  }
}

TEST(Suffix, AtBreakpointDropsSegment) {
  const auto f = sample();
  const auto s = f.suffix(1.0);
  EXPECT_EQ(s.numSegments(), 2);
  EXPECT_DOUBLE_EQ(s.amin(), 0.5);
  EXPECT_DOUBLE_EQ(s.theta(), 0.2);
}

TEST(Suffix, ZeroIsIdentity) {
  const auto f = sample();
  const auto s = f.suffix(0.0);
  EXPECT_TRUE(s == f);
}

TEST(Suffix, PreservesConcavityOnGeneratedCurves) {
  const auto f = makePaperAccuracy(0.001, 0.82, 0.7);
  for (double frac : {0.1, 0.33, 0.5, 0.9, 0.99}) {
    const auto s = f.suffix(frac * f.fmax());
    // Construction validates concavity; spot-check continuity.
    EXPECT_NEAR(s.value(0.0), f.value(frac * f.fmax()), 1e-12);
    EXPECT_NEAR(s.amax(), f.amax(), 1e-12);
  }
}

TEST(Suffix, RejectsFullyProcessed) {
  const auto f = sample();
  EXPECT_THROW(f.suffix(4.0), CheckError);
  EXPECT_THROW(f.suffix(5.0), CheckError);
}

TEST(Suffix, NegativeClampsToZero) {
  const auto f = sample();
  EXPECT_TRUE(f.suffix(-1.0) == f);
}

TEST(BacklogServing, CarryOverNeverHurtsAndUsuallyHelps) {
  // Long relative deadlines + small per-epoch budget: one epoch cannot
  // finish a request, so carrying the investment forward must help.
  const auto machines = machinesFromCatalog({"T4"});
  sim::ServingOptions options;
  options.arrivalRatePerSecond = 6.0;
  options.horizonSeconds = 6.0;
  options.epochSeconds = 0.5;
  options.relDeadlineLo = 2.0;
  options.relDeadlineHi = 4.0;
  options.energyBudgetPerEpoch = 15.0;
  options.thetaLo = 0.1;
  options.thetaHi = 0.5;  // expensive tasks
  options.seed = 17;
  options.carryBacklog = false;
  const auto oneShot =
      sim::runServing(machines, sim::Policy::kApprox, options);
  options.carryBacklog = true;
  const auto carried =
      sim::runServing(machines, sim::Policy::kApprox, options);
  EXPECT_EQ(oneShot.requests, carried.requests);
  EXPECT_GT(carried.meanAccuracy, oneShot.meanAccuracy);
}

TEST(BacklogServing, RequestCountsConserved) {
  const auto machines = machinesFromCatalog({"T4", "V100"});
  sim::ServingOptions options;
  options.arrivalRatePerSecond = 25.0;
  options.horizonSeconds = 3.0;
  options.epochSeconds = 0.25;
  options.relDeadlineLo = 0.3;
  options.relDeadlineHi = 3.0;
  options.energyBudgetPerEpoch = 30.0;
  options.seed = 23;
  options.carryBacklog = true;
  const auto stats =
      sim::runServing(machines, sim::Policy::kApprox, options);
  // Every arrival inside the horizon is finalized exactly once.
  EXPECT_GT(stats.requests, 0);
  EXPECT_LE(stats.served, stats.requests);
  EXPECT_GE(stats.meanAccuracy, 0.0);
  EXPECT_LE(stats.meanAccuracy, 1.0);
}

TEST(BacklogServing, DeterministicWithSeed) {
  const auto machines = machinesFromCatalog({"P100"});
  sim::ServingOptions options;
  options.horizonSeconds = 2.0;
  options.carryBacklog = true;
  options.seed = 31;
  const auto a = sim::runServing(machines, sim::Policy::kEdfLevels, options);
  const auto b = sim::runServing(machines, sim::Policy::kEdfLevels, options);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.meanAccuracy, b.meanAccuracy);
}

/// Every externally observable field of two runs must match exactly —
/// the cross-solve ProfileCache may only change how much work a run does,
/// never what it computes.
void expectBitIdentical(const sim::ServingStats& a,
                        const sim::ServingStats& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
  EXPECT_EQ(a.meanAccuracy, b.meanAccuracy);  // bitwise, not NEAR
  EXPECT_EQ(a.totalEnergy, b.totalEnergy);
  EXPECT_EQ(a.meanLatency, b.meanLatency);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.interruptions, b.interruptions);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.policyFailures, b.policyFailures);
  EXPECT_EQ(a.validatorRejections, b.validatorRejections);
  EXPECT_EQ(a.budgetShockEpochs, b.budgetShockEpochs);
  EXPECT_EQ(a.noMachineEpochs, b.noMachineEpochs);
  EXPECT_EQ(a.incidents, b.incidents);
}

TEST(CrossEpochCache, BitIdenticalWithAndWithoutCache) {
  // Cache-enabled serving must reproduce cache-disabled serving bit for bit;
  // only the ProfileCache traffic counters may differ. Backlog carry-over is
  // on so consecutive epochs actually resemble each other — the regime the
  // cache exists for.
  const auto machines = machinesFromCatalog({"T4", "V100"});
  sim::ServingOptions options;
  options.arrivalRatePerSecond = 15.0;
  options.horizonSeconds = 4.0;
  options.epochSeconds = 0.5;
  options.relDeadlineLo = 1.0;
  options.relDeadlineHi = 3.0;
  options.energyBudgetPerEpoch = 25.0;
  options.seed = 41;
  options.carryBacklog = true;
  options.crossSolveCache = true;
  const auto cached = sim::runServing(machines, sim::Policy::kApprox, options);
  options.crossSolveCache = false;
  const auto fresh = sim::runServing(machines, sim::Policy::kApprox, options);
  expectBitIdentical(cached, fresh);
  // The cache must actually be in play on the enabled run and absent on the
  // disabled one.
  EXPECT_GT(cached.profileCacheMisses, 0);
  EXPECT_EQ(fresh.profileCacheHits, 0);
  EXPECT_EQ(fresh.profileCacheMisses, 0);
  EXPECT_EQ(fresh.profileCacheInvalidations, 0);
}

TEST(CrossEpochCache, BitIdenticalUnderFaultTraces) {
  // Crashes change the alive-machine set, budget shocks change the epoch
  // budget — both alter the instance fingerprint, so the cache must never
  // serve a stale answer across them. Mirrors the fault mix pinned by
  // serving_faults_test.
  const auto machines = machinesFromCatalog({"T4", "V100", "P100"});
  sim::ServingOptions options;
  options.arrivalRatePerSecond = 12.0;
  options.horizonSeconds = 5.0;
  options.epochSeconds = 0.5;
  options.relDeadlineLo = 0.5;
  options.relDeadlineHi = 2.5;
  options.energyBudgetPerEpoch = 40.0;
  options.seed = 43;
  options.carryBacklog = true;
  options.faults.enabled = true;
  options.faults.seed = 99;
  options.faults.mtbfSeconds = 2.0;
  options.faults.mttrSeconds = 1.0;
  options.faults.budgetShockProbability = 0.5;
  options.faults.budgetShockFactor = 0.3;
  options.faults.maxRetries = 2;
  options.faults.injectPolicyFailureEpochs = {3};
  options.crossSolveCache = true;
  const auto cached = sim::runServing(machines, sim::Policy::kApprox, options);
  options.crossSolveCache = false;
  const auto fresh = sim::runServing(machines, sim::Policy::kApprox, options);
  expectBitIdentical(cached, fresh);
  EXPECT_GT(cached.profileCacheMisses, 0);
  EXPECT_EQ(fresh.profileCacheMisses, 0);
}

TEST(CrossEpochCache, BitIdenticalWithParallelCachedEval) {
  // Running the epoch solver's batch evaluations on an oversubscribed
  // worker pool with concurrent shared-cache reads must reproduce the
  // single-threaded run bit for bit — including the cache traffic counters;
  // only contention (a lock-timing measurement) may differ.
  const auto machines = machinesFromCatalog({"T4", "V100"});
  sim::ServingOptions options;
  options.arrivalRatePerSecond = 15.0;
  options.horizonSeconds = 4.0;
  options.epochSeconds = 0.5;
  options.relDeadlineLo = 1.0;
  options.relDeadlineHi = 3.0;
  options.energyBudgetPerEpoch = 25.0;
  options.seed = 41;
  options.carryBacklog = true;
  options.crossSolveCache = true;
  options.parallelCachedEval = true;
  options.solverThreads = 8;
  const auto parallel =
      sim::runServing(machines, sim::Policy::kApprox, options);
  options.parallelCachedEval = false;
  const auto serial = sim::runServing(machines, sim::Policy::kApprox, options);
  expectBitIdentical(parallel, serial);
  EXPECT_EQ(parallel.profileCacheHits, serial.profileCacheHits);
  EXPECT_EQ(parallel.profileCacheMisses, serial.profileCacheMisses);
  EXPECT_EQ(parallel.profileCacheInvalidations,
            serial.profileCacheInvalidations);
  EXPECT_GT(parallel.profileCacheShards, 0);
}

TEST(CrossEpochCache, CountersZeroForNonApproxPolicies) {
  // The cache rides the FR-OPT evaluator; EDF policies never touch it even
  // with the option left on.
  const auto machines = machinesFromCatalog({"T4"});
  sim::ServingOptions options;
  options.horizonSeconds = 2.0;
  options.seed = 47;
  options.crossSolveCache = true;
  const auto stats =
      sim::runServing(machines, sim::Policy::kEdfLevels, options);
  EXPECT_EQ(stats.profileCacheHits, 0);
  EXPECT_EQ(stats.profileCacheMisses, 0);
  EXPECT_EQ(stats.profileCacheInvalidations, 0);
}

TEST(BacklogServing, WorksWithRenewableSupply) {
  const auto machines = machinesFromCatalog({"T4"});
  sim::ServingOptions options;
  options.arrivalRatePerSecond = 10.0;
  options.horizonSeconds = 4.0;
  options.epochSeconds = 0.5;
  options.relDeadlineLo = 1.5;
  options.relDeadlineHi = 3.0;
  options.carryBacklog = true;
  options.seed = 37;
  const sim::PowerTrace supply({0.0, 2.0}, {0.0, 120.0});
  const auto stats =
      sim::runServing(machines, sim::Policy::kApprox, options, supply);
  // Requests arriving in the dark can still be served after power returns.
  EXPECT_GT(stats.served, 0);
  EXPECT_LE(stats.totalEnergy, supply.energyBetween(0.0, 4.0) + 1e-6);
}

}  // namespace
}  // namespace dsct
