// Parser and materialisation battery for the scenario DSL
// (workload/scenario.h): a negative-path test per malformed construct —
// every diagnostic must name the offending line — a validation regression
// test per field, round-trip determinism pins, and golden equivalence
// between a parsed file and the equivalent programmatic configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"
#include "workload/arrivals.h"
#include "workload/gpu_catalog.h"
#include "workload/scenario.h"

namespace dsct {
namespace {

// Minimal valid scaffolding: the parser requires at least one machine class
// and one task class, so malformed-snippet tests splice into this frame.
constexpr const char* kValidText = R"(
scenario {
  name: frame
  seed: 5
}
machine class {
  name: pool
  gpus: T4
}
task class {
  name: web
  arrival: poisson 18
}
serving {
  horizon: 4
  epoch: 0.5
  budget: 40
}
)";

/// Assert that parsing fails with a ScenarioError whose message carries
/// `file:line:` and contains `needle`, and whose line() matches.
void expectError(const std::string& text, int line,
                 const std::string& needle) {
  try {
    parseScenario(text, "test.dsct");
    FAIL() << "expected ScenarioError (" << needle << ") for:\n" << text;
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    const std::string what = e.what();
    EXPECT_NE(what.find("test.dsct:" + std::to_string(line) + ":"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

TEST(ScenarioParser, ParsesTheFullGrammar) {
  const Scenario sc = parseScenario(R"(
# A comment-only line.
scenario {
  name: everything
  seed: 77
}
machine class {
  name: catalog
  gpus: T4, V100
  count: 2
}
machine class
{
  name: random   # brace on its own line above
  count: 3
  speed: 4 12
  efficiency: 10 40
  seed: 9
}
sla class {
  name: gold
  tightness: 0.6
  miss penalty: 4
}
task class {
  name: web
  arrival: diurnal 4 30 12
  theta: 0.2 3.5
  deadline: 0.4 1.5
  sla: gold
  start: 1
  end: 9
  seed: 11
}
task class {
  name: burst
  arrival: flash-crowd 6 5 4 2
}
serving {
  horizon: 10
  epoch: 0.5
  budget: 45
  policy: edf3
  fallback: edf, approx
  backlog: on
  load factor: 8
  departures: 4 1.5
  battery: 60 20 0.8
  avail seed: 3
}
)");
  EXPECT_EQ(sc.name, "everything");
  EXPECT_EQ(sc.seed, 77u);
  ASSERT_EQ(sc.machineClasses.size(), 2u);
  EXPECT_EQ(sc.machineClasses[0].gpus,
            (std::vector<std::string>{"T4", "V100"}));
  EXPECT_EQ(sc.machineClasses[0].count, 2);
  EXPECT_EQ(sc.machineClasses[1].count, 3);
  EXPECT_DOUBLE_EQ(sc.machineClasses[1].speedLoTflops, 4.0);
  EXPECT_DOUBLE_EQ(sc.machineClasses[1].speedHiTflops, 12.0);
  EXPECT_EQ(sc.machineClasses[1].seed, 9u);
  ASSERT_EQ(sc.slaTiers.size(), 1u);
  EXPECT_DOUBLE_EQ(sc.slaTiers[0].deadlineTightness, 0.6);
  EXPECT_DOUBLE_EQ(sc.slaTiers[0].missPenalty, 4.0);
  ASSERT_EQ(sc.taskClasses.size(), 2u);
  const TaskClass& web = sc.taskClasses[0];
  EXPECT_EQ(web.arrival.kind, ArrivalProcess::Kind::kDiurnal);
  EXPECT_DOUBLE_EQ(web.arrival.rate, 4.0);
  EXPECT_DOUBLE_EQ(web.arrival.peakRate, 30.0);
  EXPECT_DOUBLE_EQ(web.thetaLo, 0.2);
  EXPECT_EQ(web.sla, "gold");
  EXPECT_DOUBLE_EQ(web.startSeconds, 1.0);
  EXPECT_DOUBLE_EQ(web.endSeconds, 9.0);
  EXPECT_EQ(sc.taskClasses[1].arrival.kind,
            ArrivalProcess::Kind::kFlashCrowd);
  EXPECT_DOUBLE_EQ(sc.serving.horizonSeconds, 10.0);
  EXPECT_EQ(sc.serving.policy, "edf3");
  EXPECT_EQ(sc.serving.fallback, (std::vector<std::string>{"edf", "approx"}));
  EXPECT_TRUE(sc.serving.carryBacklog);
  EXPECT_DOUBLE_EQ(sc.serving.admissionLoadFactor, 8.0);
  EXPECT_TRUE(sc.serving.availabilityEnabled);
  EXPECT_DOUBLE_EQ(sc.serving.departMtbfSeconds, 4.0);
  EXPECT_DOUBLE_EQ(sc.serving.batteryCapacityJoules, 60.0);
  EXPECT_DOUBLE_EQ(sc.serving.batteryInitialFraction, 0.8);
  EXPECT_EQ(sc.serving.availSeed, 3u);
}

// --- Negative paths: one test per malformed construct ----------------------

TEST(ScenarioParserErrors, EmptyFile) {
  expectError("", 1, "empty");
  expectError("# only a comment\n\n", 1, "empty");
}

TEST(ScenarioParserErrors, UnknownBlock) {
  expectError("cluster {\n}\n", 1, "unknown block 'cluster'");
}

TEST(ScenarioParserErrors, UnknownKeyInEachBlock) {
  expectError("machine class {\n  bogus: 1\n}\n", 2,
              "unknown key 'bogus' in machine class");
  expectError("task class {\n  name: t\n  bogus: 1\n}\n", 3,
              "unknown key 'bogus' in task class");
  expectError("sla class {\n  name: s\n  bogus: 1\n}\n", 3,
              "unknown key 'bogus' in sla class");
  expectError("serving {\n  bogus: 1\n}\n", 2,
              "unknown key 'bogus' in serving block");
  expectError("scenario {\n  bogus: 1\n}\n", 2,
              "unknown key 'bogus' in scenario block");
}

TEST(ScenarioParserErrors, MissingOpeningBrace) {
  expectError("machine class\n  name: pool\n}\n", 1, "missing its opening");
}

TEST(ScenarioParserErrors, UnclosedBlockNamesTheOpeningLine) {
  expectError("machine class {\n  name: pool\n", 1, "never closed");
}

TEST(ScenarioParserErrors, StrayClosingBrace) {
  expectError("}\n", 1, "unbalanced '}'");
  expectError("machine class {\n  name: p\n  gpus: T4\n}\n}\n", 5,
              "unbalanced '}'");
}

TEST(ScenarioParserErrors, NestedBrace) {
  expectError("machine class {\n{\n}\n}\n", 2, "unexpected '{'");
}

TEST(ScenarioParserErrors, MissingColon) {
  expectError("machine class {\n  name pool\n}\n", 2, "expected 'key: value'");
}

TEST(ScenarioParserErrors, EmptyValue) {
  expectError("machine class {\n  name:\n}\n", 2, "empty value for 'name'");
}

TEST(ScenarioParserErrors, NonNumericValue) {
  expectError("task class {\n  name: t\n  arrival: poisson fast\n}\n", 3,
              "non-numeric value 'fast'");
  expectError("machine class {\n  name: p\n  count: two\n}\n", 3,
              "non-numeric value 'two' for 'count'");
  expectError("serving {\n  horizon: 4x\n}\n", 2, "non-numeric value '4x'");
  expectError("scenario {\n  seed: -3\n}\n", 2, "non-negative integer");
}

TEST(ScenarioParserErrors, DuplicateNamesPointAtBothLines) {
  expectError(
      "machine class {\n  name: pool\n  gpus: T4\n}\nmachine class {\n"
      "  name: pool\n  gpus: T4\n}\n",
      5, "duplicate machine class name 'pool' (first declared at line 1)");
  expectError(
      "task class {\n  name: web\n}\ntask class {\n  name: web\n}\n", 4,
      "duplicate task class name 'web' (first declared at line 1)");
  expectError(
      "sla class {\n  name: gold\n}\nsla class {\n  name: gold\n}\n", 4,
      "duplicate sla class name 'gold' (first declared at line 1)");
  expectError("serving {\n}\nserving {\n}\n", 3,
              "duplicate serving block (first declared at line 1)");
  expectError("scenario {\n}\nscenario {\n}\n", 3,
              "duplicate scenario block (first declared at line 1)");
}

TEST(ScenarioParserErrors, UnknownGpu) {
  expectError("machine class {\n  name: p\n  gpus: T4, H9000\n}\n", 3,
              "unknown GPU 'H9000'");
}

TEST(ScenarioParserErrors, GpusMixedWithRandomRanges) {
  expectError("machine class {\n  name: p\n  gpus: T4\n  speed: 4 12\n}\n",
              1, "mixes 'gpus' with 'speed'/'efficiency'");
}

TEST(ScenarioParserErrors, MissingClassName) {
  expectError("machine class {\n  gpus: T4\n}\n", 1,
              "machine class needs a 'name'");
  expectError("task class {\n  arrival: poisson 2\n}\n", 1,
              "task class needs a 'name'");
  expectError("sla class {\n  tightness: 0.5\n}\n", 1,
              "sla class needs a 'name'");
}

TEST(ScenarioParserErrors, UnknownArrivalProcess) {
  expectError("task class {\n  name: t\n  arrival: weibull 3\n}\n", 3,
              "unknown arrival process 'weibull'");
}

TEST(ScenarioParserErrors, ArrivalArityMismatch) {
  expectError("task class {\n  name: t\n  arrival: poisson 2 3\n}\n", 3,
              "'poisson' arrival takes 1 argument (rate), got 2");
  expectError("task class {\n  name: t\n  arrival: mmpp 2 3\n}\n", 3,
              "'mmpp' arrival takes 4 arguments");
}

TEST(ScenarioParserErrors, UnknownSlaReference) {
  expectError(
      "machine class {\n  name: p\n  gpus: T4\n}\n"
      "task class {\n  name: web\n  arrival: poisson 2\n  sla: gold\n}\n",
      5, "references unknown sla class 'gold'");
}

TEST(ScenarioParserErrors, MissingMachineOrTaskClass) {
  expectError("task class {\n  name: t\n}\n", 1,
              "declares no machine class");
  expectError("machine class {\n  name: p\n  gpus: T4\n}\n", 1,
              "declares no task class");
}

TEST(ScenarioParserErrors, EndBeforeStart) {
  expectError(
      "task class {\n  name: t\n  start: 5\n  end: 2\n}\n", 4,
      "end <= start");
}

// --- Field validation: one regression test per field ------------------------

TEST(ScenarioFieldValidation, PoissonRateMustBePositive) {
  expectError("task class {\n  name: t\n  arrival: poisson 0\n}\n", 3,
              "rate must be positive");
  expectError("task class {\n  name: t\n  arrival: poisson -2\n}\n", 3,
              "rate must be positive");
}

TEST(ScenarioFieldValidation, DiurnalRates) {
  expectError("task class {\n  name: t\n  arrival: diurnal 10 4 12\n}\n", 3,
              "peak rate must be positive and >= the base rate");
  expectError("task class {\n  name: t\n  arrival: diurnal 4 10 0\n}\n", 3,
              "period must be positive");
}

TEST(ScenarioFieldValidation, MmppRatesAndDwells) {
  expectError("task class {\n  name: t\n  arrival: mmpp 0 4 1 1\n}\n", 3,
              "low rate must be positive");
  expectError("task class {\n  name: t\n  arrival: mmpp 5 4 1 1\n}\n", 3,
              "high rate must be >= the low rate");
  expectError("task class {\n  name: t\n  arrival: mmpp 2 4 0 1\n}\n", 3,
              "dwell times must be positive");
}

TEST(ScenarioFieldValidation, FlashCrowdFields) {
  expectError("task class {\n  name: t\n  arrival: flash-crowd 0 5 4 2\n}\n",
              3, "base rate must be positive");
  expectError(
      "task class {\n  name: t\n  arrival: flash-crowd 6 0.5 4 2\n}\n", 3,
      "burst factor must be >= 1");
  expectError(
      "task class {\n  name: t\n  arrival: flash-crowd 6 5 -1 2\n}\n", 3,
      "burst start must be non-negative");
  expectError("task class {\n  name: t\n  arrival: flash-crowd 6 5 4 0\n}\n",
              3, "decay must be positive");
}

TEST(ScenarioFieldValidation, SlaTightnessMustBePositive) {
  expectError("sla class {\n  name: s\n  tightness: 0\n}\n", 3,
              "'tightness' must be positive");
}

TEST(ScenarioFieldValidation, SlaPenaltyMustBeNonNegative) {
  expectError("sla class {\n  name: s\n  miss penalty: -1\n}\n", 3,
              "'miss penalty' must be non-negative");
}

TEST(ScenarioFieldValidation, ThetaAndDeadlineRanges) {
  expectError("task class {\n  name: t\n  theta: 0 2\n}\n", 3,
              "'theta' must be positive");
  expectError("task class {\n  name: t\n  theta: 3 2\n}\n", 3,
              "range is descending");
  expectError("task class {\n  name: t\n  deadline: -0.5\n}\n", 3,
              "'deadline' must be positive");
}

TEST(ScenarioFieldValidation, CountMustBePositiveInteger) {
  expectError("machine class {\n  name: p\n  count: 0\n}\n", 3,
              "positive integer");
  expectError("machine class {\n  name: p\n  count: 2.5\n}\n", 3,
              "positive integer");
}

TEST(ScenarioFieldValidation, ServingFields) {
  expectError("serving {\n  horizon: 0\n}\n", 2, "'horizon' must be positive");
  expectError("serving {\n  epoch: -1\n}\n", 2, "'epoch' must be positive");
  expectError("serving {\n  budget: -5\n}\n", 2,
              "'budget' must be non-negative");
  expectError("serving {\n  load factor: -1\n}\n", 2,
              "'load factor' must be non-negative");
  expectError("serving {\n  backlog: maybe\n}\n", 2, "must be on/off");
}

TEST(ScenarioFieldValidation, AvailabilityFields) {
  expectError("serving {\n  departures: 4\n}\n", 2,
              "'departures' takes 2 numbers");
  expectError("serving {\n  departures: -1 1\n}\n", 2,
              "mtbf must be non-negative");
  expectError("serving {\n  departures: 4 0\n}\n", 2,
              "mean absence must be positive");
  expectError("serving {\n  battery: 60\n}\n", 2, "'battery' takes");
  expectError("serving {\n  battery: -1 10\n}\n", 2,
              "capacity must be non-negative");
  expectError("serving {\n  battery: 60 10 1.5\n}\n", 2,
              "initial fraction must be in [0, 1]");
}

// --- Round-trip determinism -------------------------------------------------

TEST(ScenarioDeterminism, ParseTwiceIsIdentical) {
  const Scenario a = parseScenario(kValidText);
  const Scenario b = parseScenario(kValidText);
  EXPECT_EQ(a, b);
}

TEST(ScenarioDeterminism, MaterialiseTwiceIsBitIdentical) {
  const Scenario sc = parseScenario(kValidText);
  const std::vector<sim::RequestSpec> ra = materializeRequests(sc);
  const std::vector<sim::RequestSpec> rb = materializeRequests(sc);
  ASSERT_FALSE(ra.empty());
  EXPECT_EQ(ra, rb);  // exact double equality — bit-identical replay

  const std::vector<Machine> ma = materializeMachines(sc);
  const std::vector<Machine> mb = materializeMachines(sc);
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t i = 0; i < ma.size(); ++i) {
    EXPECT_EQ(ma[i].name, mb[i].name);
    EXPECT_EQ(ma[i].speed, mb[i].speed);
    EXPECT_EQ(ma[i].efficiency, mb[i].efficiency);
  }
}

TEST(ScenarioDeterminism, MasterSeedChangesTheTrace) {
  Scenario sc = parseScenario(kValidText);
  const std::vector<sim::RequestSpec> ra = materializeRequests(sc);
  sc.seed = 999;
  const std::vector<sim::RequestSpec> rb = materializeRequests(sc);
  EXPECT_NE(ra, rb);
}

TEST(ScenarioDeterminism, ExplicitClassSeedPinsTheClassStream) {
  // With an explicit per-class seed, changing the master seed must NOT move
  // that class's draws.
  const char* text =
      "machine class {\n  name: p\n  gpus: T4\n}\n"
      "task class {\n  name: t\n  arrival: poisson 18\n  seed: 11\n}\n"
      "serving {\n  horizon: 4\n}\n";
  Scenario sc = parseScenario(text);
  const std::vector<sim::RequestSpec> ra = materializeRequests(sc);
  sc.seed = 999;
  EXPECT_EQ(ra, materializeRequests(sc));
}

// --- Golden equivalence: parsed file vs programmatic configuration ----------

TEST(ScenarioGolden, ParsedFileMatchesProgrammaticScenario) {
  const char* text = R"(
scenario {
  name: golden
  seed: 21
}
machine class {
  name: pool
  gpus: T4, V100
  count: 2
}
sla class {
  name: gold
  tightness: 0.6
  miss penalty: 4
}
task class {
  name: web
  arrival: poisson 18
  theta: 0.2 3.5
  deadline: 0.4 1.5
  sla: gold
}
serving {
  horizon: 6
  epoch: 0.5
  budget: 40
  policy: edf3
}
)";
  // The same scenario assembled in code, field by field.
  Scenario prog;
  prog.name = "golden";
  prog.seed = 21;
  MachineClass mc;
  mc.name = "pool";
  mc.gpus = {"T4", "V100"};
  mc.count = 2;
  mc.line = 6;  // header lines differ only in provenance
  prog.machineClasses.push_back(mc);
  SlaTier gold;
  gold.name = "gold";
  gold.deadlineTightness = 0.6;
  gold.missPenalty = 4.0;
  gold.line = 11;
  prog.slaTiers.push_back(gold);
  TaskClass tc;
  tc.name = "web";
  tc.arrival.kind = ArrivalProcess::Kind::kPoisson;
  tc.arrival.rate = 18.0;
  tc.thetaLo = 0.2;
  tc.thetaHi = 3.5;
  tc.relDeadlineLo = 0.4;
  tc.relDeadlineHi = 1.5;
  tc.sla = "gold";
  tc.line = 16;
  prog.taskClasses.push_back(tc);
  prog.serving.horizonSeconds = 6.0;
  prog.serving.epochSeconds = 0.5;
  prog.serving.energyBudgetPerEpoch = 40.0;
  prog.serving.policy = "edf3";
  prog.serving.line = 23;

  const Scenario parsed = parseScenario(text);
  EXPECT_EQ(parsed, prog);

  // Materialisation of both must be bit-identical.
  EXPECT_EQ(materializeRequests(parsed), materializeRequests(prog));
}

TEST(ScenarioGolden, TraceMatchesHandRolledSampler) {
  // Replicate materializeRequests by hand for a single poisson class with an
  // explicit seed: arrivals first (one contiguous draw chain), then
  // deadline×tightness and θ per request.
  const char* text =
      "machine class {\n  name: p\n  gpus: T4\n}\n"
      "sla class {\n  name: gold\n  tightness: 0.6\n  miss penalty: 4\n}\n"
      "task class {\n  name: t\n  arrival: poisson 18\n  theta: 0.2 3.5\n"
      "  deadline: 0.4 1.5\n  sla: gold\n  seed: 11\n}\n"
      "serving {\n  horizon: 6\n}\n";
  const Scenario sc = parseScenario(text);
  const std::vector<sim::RequestSpec> got = materializeRequests(sc);

  Rng rng(11);
  const std::vector<double> times =
      ArrivalProcess::poisson(18.0).sample(6.0, rng);
  ASSERT_EQ(got.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(got[i].arrival, times[i]);
    EXPECT_EQ(got[i].relDeadline, rng.uniform(0.4, 1.5) * 0.6);
    EXPECT_EQ(got[i].theta, rng.uniform(0.2, 3.5));
    EXPECT_EQ(got[i].missPenalty, 4.0);
  }
}

// --- Materialisation surface -------------------------------------------------

TEST(ScenarioMaterialise, CatalogClassExpandsCountTimesGpus) {
  const Scenario sc = parseScenario(
      "machine class {\n  name: pool\n  gpus: T4, V100\n  count: 3\n}\n"
      "task class {\n  name: t\n  arrival: poisson 5\n}\n");
  const std::vector<Machine> machines = materializeMachines(sc);
  ASSERT_EQ(machines.size(), 6u);
  EXPECT_EQ(machines[0].name, "pool-T4-0");
  EXPECT_EQ(machines[1].name, "pool-V100-0");
  EXPECT_EQ(machines[0].speed, gpuByName("T4").toMachine().speed);
}

TEST(ScenarioMaterialise, RandomClassDrawsWithinRanges) {
  const Scenario sc = parseScenario(
      "machine class {\n  name: r\n  count: 20\n  speed: 4 12\n"
      "  efficiency: 10 40\n  seed: 3\n}\n"
      "task class {\n  name: t\n  arrival: poisson 5\n}\n");
  const std::vector<Machine> machines = materializeMachines(sc);
  ASSERT_EQ(machines.size(), 20u);
  for (const Machine& m : machines) {
    EXPECT_GE(m.speed, 4.0);
    EXPECT_LE(m.speed, 12.0);
    // efficiency is stored in TFLOP/J = GFLOPS/W × 1e-3
    EXPECT_GE(m.efficiency, 10.0 * 1e-3);
    EXPECT_LE(m.efficiency, 40.0 * 1e-3);
  }
}

TEST(ScenarioMaterialise, RequestsAreSortedAndWindowed) {
  const Scenario sc = parseScenario(
      "machine class {\n  name: p\n  gpus: T4\n}\n"
      "task class {\n  name: a\n  arrival: poisson 10\n  start: 2\n"
      "  end: 4\n}\n"
      "task class {\n  name: b\n  arrival: poisson 10\n}\n"
      "serving {\n  horizon: 6\n}\n");
  const std::vector<sim::RequestSpec> reqs = materializeRequests(sc);
  ASSERT_FALSE(reqs.empty());
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_LE(reqs[i - 1].arrival, reqs[i].arrival);
  }
  for (const sim::RequestSpec& r : reqs) {
    EXPECT_GE(r.arrival, 0.0);
    EXPECT_LT(r.arrival, 6.0);
  }
}

TEST(ScenarioMaterialise, ServingOptionsCarryTheBlock) {
  const Scenario sc = parseScenario(
      "machine class {\n  name: p\n  gpus: T4\n}\n"
      "task class {\n  name: t\n  arrival: poisson 18\n}\n"
      "serving {\n  horizon: 4\n  epoch: 0.25\n  budget: 33\n"
      "  backlog: on\n  load factor: 7\n  fallback: edf\n"
      "  departures: 4 1.5\n  battery: 60 20 0.8\n  avail seed: 9\n}\n");
  const sim::ServingOptions o = makeServingOptions(sc);
  EXPECT_DOUBLE_EQ(o.horizonSeconds, 4.0);
  EXPECT_DOUBLE_EQ(o.epochSeconds, 0.25);
  EXPECT_DOUBLE_EQ(o.energyBudgetPerEpoch, 33.0);
  EXPECT_TRUE(o.carryBacklog);
  EXPECT_DOUBLE_EQ(o.admissionLoadFactor, 7.0);
  EXPECT_EQ(o.fallbackChain, std::vector<std::string>{"edf"});
  EXPECT_FALSE(o.requestTrace.empty());
  EXPECT_TRUE(o.availability.enabled);
  EXPECT_DOUBLE_EQ(o.availability.departMtbfSeconds, 4.0);
  EXPECT_DOUBLE_EQ(o.availability.departMeanSeconds, 1.5);
  EXPECT_DOUBLE_EQ(o.availability.batteryCapacityJoules, 60.0);
  EXPECT_DOUBLE_EQ(o.availability.batteryInitialFraction, 0.8);
  EXPECT_DOUBLE_EQ(o.availability.rechargeWatts, 20.0);
  EXPECT_EQ(o.availability.seed, 9u);
}

TEST(ScenarioMaterialise, EmptyTraceIsRejectedLoudly) {
  // Rates are valid but the arrival window is empty of draws in expectation:
  // a 1e-6 s horizon with rate 1 almost surely materialises nothing, and the
  // driver would silently substitute its internal Poisson stream.
  const Scenario sc = parseScenario(
      "machine class {\n  name: p\n  gpus: T4\n}\n"
      "task class {\n  name: t\n  arrival: poisson 1\n}\n"
      "serving {\n  horizon: 0.000001\n}\n");
  EXPECT_THROW(makeServingOptions(sc), CheckError);
}

TEST(ScenarioMaterialise, InstanceSnapshotsTheWholeRun) {
  const Scenario sc = parseScenario(
      "machine class {\n  name: p\n  gpus: T4, V100\n}\n"
      "sla class {\n  name: gold\n  tightness: 0.6\n}\n"
      "task class {\n  name: t\n  arrival: poisson 18\n  sla: gold\n}\n"
      "serving {\n  horizon: 4\n  epoch: 0.5\n  budget: 30\n}\n");
  const Instance inst = materializeInstance(sc);
  const std::vector<sim::RequestSpec> reqs = materializeRequests(sc);
  EXPECT_EQ(static_cast<std::size_t>(inst.numTasks()), reqs.size());
  EXPECT_EQ(inst.numMachines(), 2);
  // budget = per-epoch budget × ceil(horizon / epoch) = 30 × 8
  EXPECT_DOUBLE_EQ(inst.energyBudget(), 240.0);
  // Instance sorts tasks by deadline.
  for (int i = 1; i < inst.numTasks(); ++i) {
    EXPECT_LE(inst.tasks()[i - 1].deadline, inst.tasks()[i].deadline);
  }
}

TEST(ScenarioMaterialise, FindSlaResolvesOrReturnsNull) {
  const Scenario sc = parseScenario(
      "machine class {\n  name: p\n  gpus: T4\n}\n"
      "sla class {\n  name: gold\n  tightness: 0.5\n}\n"
      "task class {\n  name: t\n  arrival: poisson 5\n  sla: gold\n}\n");
  ASSERT_NE(sc.findSla("gold"), nullptr);
  EXPECT_DOUBLE_EQ(sc.findSla("gold")->deadlineTightness, 0.5);
  EXPECT_EQ(sc.findSla("silver"), nullptr);
  EXPECT_EQ(sc.findSla(""), nullptr);
}

TEST(ScenarioLoadFile, MissingFileNamesThePath) {
  try {
    loadScenarioFile("/nonexistent/nowhere.dsct");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/nowhere.dsct"),
              std::string::npos);
  }
}

// --- New arrival processes (workload/arrivals.h) -----------------------------

TEST(ArrivalProcesses, MmppIsDeterministicAndWithinHorizon) {
  const ArrivalProcess p = ArrivalProcess::mmpp(2.0, 40.0, 2.0, 1.0);
  EXPECT_EQ(p.kind(), ArrivalProcess::Kind::kMmpp);
  Rng r1(7), r2(7);
  const std::vector<double> a = p.sample(50.0, r1);
  EXPECT_EQ(a, p.sample(50.0, r2));
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], 0.0);
    EXPECT_LT(a[i], 50.0);
    if (i > 0) EXPECT_GE(a[i], a[i - 1]);
  }
  // Stationary mean rate (2·2 + 40·1) / 3 = 44/3 ≈ 14.67; the empirical
  // rate over a long horizon should land in the same ballpark.
  EXPECT_NEAR(p.rateAt(0.0), 44.0 / 3.0, 1e-12);
  Rng r3(11);
  const double n = static_cast<double>(p.sample(400.0, r3).size());
  EXPECT_NEAR(n / 400.0, 44.0 / 3.0, 4.0);
}

TEST(ArrivalProcesses, FlashCrowdSpikesAfterStart) {
  const ArrivalProcess p = ArrivalProcess::flashCrowd(5.0, 8.0, 10.0, 3.0);
  EXPECT_EQ(p.kind(), ArrivalProcess::Kind::kFlashCrowd);
  EXPECT_DOUBLE_EQ(p.rateAt(0.0), 5.0);   // before the burst
  EXPECT_DOUBLE_EQ(p.rateAt(10.0), 40.0); // at the spike
  EXPECT_GT(p.rateAt(11.0), 5.0);
  EXPECT_LT(p.rateAt(11.0), 40.0);
  Rng rng(5);
  const std::vector<double> a = p.sample(20.0, rng);
  int before = 0, after = 0;
  for (const double t : a) (t < 10.0 ? before : after)++;
  // Equal-length windows; the burst side must dominate clearly.
  EXPECT_GT(after, before);
}

TEST(ArrivalProcesses, FactoriesValidateLoudly) {
  EXPECT_THROW(ArrivalProcess::mmpp(0.0, 4.0, 1.0, 1.0), CheckError);
  EXPECT_THROW(ArrivalProcess::mmpp(5.0, 4.0, 1.0, 1.0), CheckError);
  EXPECT_THROW(ArrivalProcess::mmpp(2.0, 4.0, 0.0, 1.0), CheckError);
  EXPECT_THROW(ArrivalProcess::flashCrowd(0.0, 2.0, 1.0, 1.0), CheckError);
  EXPECT_THROW(ArrivalProcess::flashCrowd(5.0, 0.5, 1.0, 1.0), CheckError);
  EXPECT_THROW(ArrivalProcess::flashCrowd(5.0, 2.0, -1.0, 1.0), CheckError);
  EXPECT_THROW(ArrivalProcess::flashCrowd(5.0, 2.0, 1.0, 0.0), CheckError);
}

}  // namespace
}  // namespace dsct
