// Fault-tolerant serving: regression-pinned default path, deterministic
// fault replay, crash/shock recovery, fallback chain, admission control.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/faults.h"
#include "sim/renewable.h"
#include "sim/serving.h"
#include "util/check.h"
#include "workload/gpu_catalog.h"

namespace dsct {
namespace {

sim::ServingOptions referenceOptions() {
  sim::ServingOptions o;
  o.arrivalRatePerSecond = 18.0;
  o.horizonSeconds = 5.0;
  o.epochSeconds = 0.5;
  o.relDeadlineLo = 0.4;
  o.relDeadlineHi = 2.5;
  o.energyBudgetPerEpoch = 40.0;
  o.seed = 20240807;
  return o;
}

void expectStatsEqual(const sim::ServingStats& a, const sim::ServingStats& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_DOUBLE_EQ(a.meanAccuracy, b.meanAccuracy);
  EXPECT_DOUBLE_EQ(a.totalEnergy, b.totalEnergy);
  EXPECT_DOUBLE_EQ(a.meanLatency, b.meanLatency);
  EXPECT_EQ(a.interruptions, b.interruptions);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.policyFailures, b.policyFailures);
  EXPECT_EQ(a.validatorRejections, b.validatorRejections);
  EXPECT_EQ(a.budgetShockEpochs, b.budgetShockEpochs);
  EXPECT_EQ(a.noMachineEpochs, b.noMachineEpochs);
  EXPECT_EQ(a.incidents, b.incidents);
}

// The pinned values below were captured from the pre-fault driver (commit
// f247675) with the exact options of referenceOptions(); they guard the
// acceptance criterion that the faults-disabled path stays bit-identical.

TEST(ServingGolden, DefaultPathOneShotBitIdentical) {
  const auto machines = machinesFromCatalog({"T4", "V100"});
  const auto s =
      sim::runServing(machines, sim::Policy::kApprox, referenceOptions());
  EXPECT_EQ(s.requests, 99);
  EXPECT_EQ(s.served, 77);
  EXPECT_EQ(s.deadlineMisses, 0);
  EXPECT_EQ(s.epochs, 10);
  EXPECT_DOUBLE_EQ(s.meanAccuracy, 0.32768861033259078);
  EXPECT_DOUBLE_EQ(s.totalEnergy, 399.99999999999994);
  EXPECT_DOUBLE_EQ(s.meanLatency, 0.33759255283732392);
  EXPECT_EQ(s.interruptions, 0);
  EXPECT_EQ(s.fallbacks, 0);
  EXPECT_TRUE(s.incidents.empty());
}

TEST(ServingGolden, DefaultPathBacklogBitIdentical) {
  const auto machines = machinesFromCatalog({"T4", "V100"});
  auto options = referenceOptions();
  options.carryBacklog = true;
  const auto s = sim::runServing(machines, sim::Policy::kApprox, options);
  EXPECT_EQ(s.requests, 99);
  EXPECT_EQ(s.served, 75);
  EXPECT_DOUBLE_EQ(s.meanAccuracy, 0.33395318251464207);
  EXPECT_DOUBLE_EQ(s.totalEnergy, 399.99999999999994);
  EXPECT_DOUBLE_EQ(s.meanLatency, 0.43272136877206679);
}

TEST(ServingGolden, DefaultPathEdfLevelsBitIdentical) {
  const auto machines = machinesFromCatalog({"T4", "V100"});
  const auto s =
      sim::runServing(machines, sim::Policy::kEdfLevels, referenceOptions());
  EXPECT_EQ(s.served, 31);
  EXPECT_DOUBLE_EQ(s.meanAccuracy, 0.15260606060606044);
  EXPECT_DOUBLE_EQ(s.totalEnergy, 387.78426112463819);
  EXPECT_DOUBLE_EQ(s.meanLatency, 0.30709088392940115);
}

TEST(ServingGolden, DefaultPathRenewableBitIdentical) {
  const auto machines = machinesFromCatalog({"T4", "V100"});
  const auto options = referenceOptions();
  const sim::PowerTrace supply({0.0, 2.0}, {30.0, 140.0});
  const auto s =
      sim::runServing(machines, sim::Policy::kApprox, options, supply);
  EXPECT_EQ(s.served, 75);
  EXPECT_DOUBLE_EQ(s.meanAccuracy, 0.34670914302531713);
  EXPECT_DOUBLE_EQ(s.totalEnergy, 479.99999999999994);
  EXPECT_DOUBLE_EQ(s.meanLatency, 0.36691141180828091);
}

TEST(ServingGolden, AvailabilityDefaultsPreserveGoldenPin) {
  // availability.enabled defaults to false; even with every other
  // availability knob set, the disabled layer must not perturb the pinned
  // default path by a single bit (no RNG draws, no machine filtering).
  const auto machines = machinesFromCatalog({"T4", "V100"});
  auto options = referenceOptions();
  options.availability.seed = 777;
  options.availability.departMtbfSeconds = 0.5;
  options.availability.departMeanSeconds = 2.0;
  options.availability.batteryCapacityJoules = 5.0;
  options.availability.rechargeWatts = 1.0;
  ASSERT_FALSE(options.availability.enabled);
  const auto s = sim::runServing(machines, sim::Policy::kApprox, options);
  EXPECT_EQ(s.requests, 99);
  EXPECT_EQ(s.served, 77);
  EXPECT_DOUBLE_EQ(s.meanAccuracy, 0.32768861033259078);
  EXPECT_DOUBLE_EQ(s.totalEnergy, 399.99999999999994);
  EXPECT_DOUBLE_EQ(s.meanLatency, 0.33759255283732392);
  EXPECT_EQ(s.machineDepartures, 0);
  EXPECT_EQ(s.batteryExhaustions, 0);
  EXPECT_EQ(s.batteryCappedEpochs, 0);
  EXPECT_TRUE(s.incidents.empty());
}

// ------------------------------------------------------------ satellites --

TEST(ServingOptionsCheck, ExplicitTraceDoesNotRequirePositiveRate) {
  const auto machines = machinesFromCatalog({"T4"});
  sim::ServingOptions options = referenceOptions();
  options.arrivalTimes = {0.1, 0.4, 1.2, 2.7};
  options.arrivalRatePerSecond = 0.0;  // unused and must not be rejected
  const auto s = sim::runServing(machines, sim::Policy::kApprox, options);
  EXPECT_EQ(s.requests, 4);
  // Without a trace, a non-positive rate is still an error.
  options.arrivalTimes.clear();
  EXPECT_THROW(sim::runServing(machines, sim::Policy::kApprox, options),
               CheckError);
}

// ------------------------------------------------------- fault injection --

sim::ServingOptions faultyOptions() {
  sim::ServingOptions o = referenceOptions();
  o.carryBacklog = true;
  o.faults.enabled = true;
  o.faults.seed = 99;
  o.faults.mtbfSeconds = 2.0;
  o.faults.mttrSeconds = 1.0;
  o.faults.slowdownMtbfSeconds = 3.0;
  o.faults.slowdownMeanSeconds = 0.8;
  o.faults.slowdownFactor = 0.5;
  o.faults.budgetShockProbability = 0.5;
  o.faults.budgetShockFactor = 0.3;
  o.faults.maxRetries = 2;
  o.faults.injectPolicyFailureEpochs = {3};
  return o;
}

TEST(FaultServing, DeterministicReplayBitIdentical) {
  const auto machines = machinesFromCatalog({"T4", "V100", "P100"});
  const auto options = faultyOptions();
  const auto a = sim::runServing(machines, sim::Policy::kApprox, options);
  const auto b = sim::runServing(machines, sim::Policy::kApprox, options);
  expectStatsEqual(a, b);
}

TEST(FaultServing, CrashShockAndInjectedFailureRecover) {
  const auto machines = machinesFromCatalog({"T4", "V100", "P100"});
  const auto options = faultyOptions();
  const auto s = sim::runServing(machines, sim::Policy::kApprox, options);
  // The run completes (no throw) and every arrival is finalized once.
  EXPECT_EQ(s.requests, 99);
  // The injected epoch-3 failure engaged the kEdfLevels fallback.
  EXPECT_GE(s.policyFailures, 1);
  EXPECT_GE(s.fallbacks, 1);
  // MTBF 2 s over a 5 s horizon on 3 machines: crashes interrupt work...
  EXPECT_GT(s.interruptions, 0);
  // ...and interrupted requests re-enter later batches.
  EXPECT_GT(s.retries, 0);
  // Budget shocks hit with probability 0.5 over 10 epochs.
  EXPECT_GT(s.budgetShockEpochs, 0);
  // Every schedule passed the per-epoch validator gate.
  EXPECT_EQ(s.validatorRejections, 0);
  // The incident log names each counted event.
  EXPECT_GE(static_cast<int>(s.incidents.size()),
            s.policyFailures + s.fallbacks + s.budgetShockEpochs);
  // Delivered accuracy degrades but the service still serves.
  EXPECT_GT(s.served, 0);
  EXPECT_GT(s.meanAccuracy, 0.0);
  const auto clean =
      sim::runServing(machines, sim::Policy::kApprox, [] {
        auto o = faultyOptions();
        o.faults = sim::FaultOptions{};
        return o;
      }());
  EXPECT_LT(s.meanAccuracy, clean.meanAccuracy);
}

TEST(FaultServing, ZeroRateFaultTraceMatchesDisabled) {
  // faults.enabled with every fault process switched off must not perturb
  // the run: same arrivals, same schedules, same stats.
  const auto machines = machinesFromCatalog({"T4", "V100"});
  auto options = referenceOptions();
  options.carryBacklog = true;
  const auto off = sim::runServing(machines, sim::Policy::kApprox, options);
  options.faults.enabled = true;  // all rates stay zero
  const auto on = sim::runServing(machines, sim::Policy::kApprox, options);
  expectStatsEqual(off, on);
}

TEST(FaultServing, AllMachinesDownEpochsAreCounted) {
  const auto machines = machinesFromCatalog({"T4"});
  auto options = referenceOptions();
  options.faults.enabled = true;
  options.faults.seed = 7;
  options.faults.mtbfSeconds = 0.7;  // one machine, crashing constantly
  options.faults.mttrSeconds = 2.0;
  const auto s = sim::runServing(machines, sim::Policy::kApprox, options);
  EXPECT_GT(s.noMachineEpochs, 0);
  EXPECT_EQ(s.requests, 99);
}

TEST(FaultServing, RetryBudgetBoundsReadmissions) {
  const auto machines = machinesFromCatalog({"T4", "V100"});
  auto options = faultyOptions();
  options.faults.injectPolicyFailureEpochs.clear();
  options.faults.budgetShockProbability = 0.0;
  options.relDeadlineLo = 3.0;  // long deadlines: retries not time-limited
  options.relDeadlineHi = 5.0;
  options.faults.maxRetries = 0;  // interrupted once → abandoned
  options.carryBacklog = false;
  const auto s = sim::runServing(machines, sim::Policy::kApprox, options);
  EXPECT_GT(s.interruptions, 0);
  EXPECT_EQ(s.retries, 0);
  EXPECT_GT(s.abandoned, 0);

  options.faults.maxRetries = 3;
  const auto relaxed = sim::runServing(machines, sim::Policy::kApprox, options);
  EXPECT_GT(relaxed.retries, 0);
}

TEST(FaultServing, InjectedFailureOnEdfLevelsFallsBackToEmptyEpoch) {
  // When the primary policy IS the fallback policy, an injected failure
  // leaves only the empty schedule: the epoch serves nothing but the run
  // still completes and counts the incident.
  const auto machines = machinesFromCatalog({"T4"});
  auto options = referenceOptions();
  options.faults.enabled = true;
  options.faults.injectPolicyFailureEpochs = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto s = sim::runServing(machines, sim::Policy::kEdfLevels, options);
  EXPECT_EQ(s.served, 0);
  EXPECT_EQ(s.policyFailures, s.epochs);
  EXPECT_EQ(s.fallbacks, s.epochs);
  bool sawEmpty = false;
  for (const auto& inc : s.incidents) {
    if (inc.kind == sim::IncidentKind::kEmptySchedule) sawEmpty = true;
  }
  EXPECT_TRUE(sawEmpty);
}

TEST(FaultServing, AdmissionControlShedsLowestHeadroom) {
  const auto machines = machinesFromCatalog({"T4"});
  auto options = referenceOptions();
  options.arrivalRatePerSecond = 40.0;
  options.validateEpochs = true;  // engage the guarded path without faults
  options.admissionLoadFactor = 3.0;  // ≤ 3 requests per epoch on 1 machine
  const auto s = sim::runServing(machines, sim::Policy::kApprox, options);
  options.admissionLoadFactor = 0.0;
  const auto unshed = sim::runServing(machines, sim::Policy::kApprox, options);
  EXPECT_GT(s.shed, 0);
  // Shed requests are still finalized exactly once: same arrival stream,
  // same request count.
  EXPECT_EQ(s.requests, unshed.requests);
  bool sawShed = false;
  for (const auto& inc : s.incidents) {
    if (inc.kind == sim::IncidentKind::kAdmissionShed) {
      sawShed = true;
      EXPECT_GT(inc.value, 0.0);
    }
  }
  EXPECT_TRUE(sawShed);
}

TEST(FaultServing, ValidatedEpochsMatchUnguardedRun) {
  // validateEpochs only gates infeasible schedules; with a well-behaved
  // policy the guarded run must reproduce the unguarded stats exactly.
  const auto machines = machinesFromCatalog({"T4", "V100"});
  auto options = referenceOptions();
  const auto plain = sim::runServing(machines, sim::Policy::kApprox, options);
  options.validateEpochs = true;
  const auto gated = sim::runServing(machines, sim::Policy::kApprox, options);
  expectStatsEqual(plain, gated);
}

// -------------------------------------------------------- fallback chain --

TEST(FallbackChain, StringPolicyOverloadMatchesEnum) {
  // The registry-name overload is the same driver: enum and string spellings
  // of every legacy policy must agree bit for bit, faulty or not.
  const auto machines = machinesFromCatalog({"T4", "V100"});
  const std::pair<sim::Policy, const char*> policies[] = {
      {sim::Policy::kApprox, "approx"},
      {sim::Policy::kEdfNoCompression, "edf"},
      {sim::Policy::kEdfLevels, "edf3"},
  };
  for (const auto& [policy, name] : policies) {
    EXPECT_STREQ(sim::policyName(policy), name);
    expectStatsEqual(
        sim::runServing(machines, policy, referenceOptions()),
        sim::runServing(machines, std::string(name), referenceOptions()));
    expectStatsEqual(
        sim::runServing(machines, policy, faultyOptions()),
        sim::runServing(machines, std::string(name), faultyOptions()));
  }
}

TEST(FallbackChain, ExplicitDefaultChainBitIdenticalToDefault) {
  // Spelling out the default single-entry chain changes nothing: the
  // refactor's configurable chain reproduces the historical hardcoded
  // EDF-3-levels demotion exactly.
  const auto machines = machinesFromCatalog({"T4", "V100", "P100"});
  auto explicitChain = faultyOptions();
  explicitChain.fallbackChain = {"edf3"};
  expectStatsEqual(
      sim::runServing(machines, sim::Policy::kApprox, faultyOptions()),
      sim::runServing(machines, sim::Policy::kApprox, explicitChain));
}

TEST(FallbackChain, TwoEntryChainIncidentOrderPinned) {
  // Primary and first fallback are both fault-injected (injectFailureDepth
  // = 2), so each injected epoch must walk: approx fails (depth 0) → edf
  // fails (depth 1) → edf3 serves → fallback engaged. The second fallback's
  // schedules are what a single-entry {"edf3"} chain with primary-only
  // injection produces, so the served workload is bit-identical to that run
  // even though the incident log is longer.
  const auto machines = machinesFromCatalog({"T4", "V100"});
  const std::vector<long long> injected = {2, 5};

  auto deep = referenceOptions();
  deep.faults.enabled = true;
  deep.faults.injectPolicyFailureEpochs = injected;
  deep.faults.injectFailureDepth = 2;
  deep.fallbackChain = {"edf", "edf3"};
  const auto a = sim::runServing(machines, std::string("approx"), deep);

  auto shallow = referenceOptions();
  shallow.faults.enabled = true;
  shallow.faults.injectPolicyFailureEpochs = injected;
  const auto b = sim::runServing(machines, std::string("approx"), shallow);

  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.served, b.served);
  EXPECT_DOUBLE_EQ(a.meanAccuracy, b.meanAccuracy);
  EXPECT_DOUBLE_EQ(a.totalEnergy, b.totalEnergy);
  EXPECT_DOUBLE_EQ(a.meanLatency, b.meanLatency);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  // ...but the deep run logged one extra failed attempt per injected epoch.
  EXPECT_EQ(b.policyFailures, static_cast<int>(injected.size()));
  EXPECT_EQ(a.policyFailures, 2 * static_cast<int>(injected.size()));

  for (long long epoch : injected) {
    std::vector<sim::EpochIncident> atEpoch;
    for (const auto& inc : a.incidents) {
      if (inc.epoch == epoch) atEpoch.push_back(inc);
    }
    SCOPED_TRACE("epoch " + std::to_string(epoch));
    ASSERT_EQ(atEpoch.size(), 3u);
    EXPECT_EQ(atEpoch[0].kind, sim::IncidentKind::kPolicyFailure);
    EXPECT_EQ(atEpoch[0].value, 0.0);  // the primary policy
    EXPECT_EQ(atEpoch[1].kind, sim::IncidentKind::kPolicyFailure);
    EXPECT_EQ(atEpoch[1].value, 1.0);  // first fallback attempt
    EXPECT_EQ(atEpoch[2].kind, sim::IncidentKind::kFallbackEngaged);
  }
}

TEST(FallbackChain, ExhaustedChainServesEmptyEpoch) {
  // Injection depth covering the whole chain leaves only the empty
  // schedule; the epoch serves nothing but the run completes.
  const auto machines = machinesFromCatalog({"T4"});
  auto options = referenceOptions();
  options.faults.enabled = true;
  options.faults.injectPolicyFailureEpochs = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  options.faults.injectFailureDepth = 3;
  options.fallbackChain = {"edf", "edf3"};
  const auto s = sim::runServing(machines, std::string("approx"), options);
  EXPECT_EQ(s.served, 0);
  EXPECT_EQ(s.policyFailures, 3 * s.epochs);
  int empty = 0;
  for (const auto& inc : s.incidents) {
    if (inc.kind == sim::IncidentKind::kEmptySchedule) ++empty;
  }
  EXPECT_EQ(empty, s.epochs);
}

TEST(FallbackChain, InvalidChainEntriesFailLoudly) {
  const auto machines = machinesFromCatalog({"T4"});
  auto options = referenceOptions();
  options.faults.enabled = true;
  options.fallbackChain = {"no-such-solver"};
  EXPECT_THROW(sim::runServing(machines, sim::Policy::kApprox, options),
               CheckError);
  // Fractional-only solvers cannot serve epochs.
  options.fallbackChain = {"fr-opt"};
  EXPECT_THROW(sim::runServing(machines, sim::Policy::kApprox, options),
               CheckError);
  options.fallbackChain = {"edf3"};
  EXPECT_THROW(
      sim::runServing(machines, std::string("fr-opt"), options),
      CheckError);
}

TEST(FallbackChain, RegistryPolicyBeyondLegacyEnumServes) {
  // The registry unlocks serving policies with no Policy enum value.
  const auto machines = machinesFromCatalog({"T4", "V100"});
  const auto s = sim::runServing(machines, std::string("levels-opt"),
                                 referenceOptions());
  EXPECT_EQ(s.requests, 99);
  EXPECT_GT(s.served, 0);
  EXPECT_GT(s.meanAccuracy, 0.0);
}

TEST(FaultServing, WorksWithRenewableSupply) {
  const auto machines = machinesFromCatalog({"T4", "V100"});
  auto options = faultyOptions();
  const sim::PowerTrace supply({0.0, 2.0}, {40.0, 160.0});
  const auto a = sim::runServing(machines, sim::Policy::kApprox, options, supply);
  const auto b = sim::runServing(machines, sim::Policy::kApprox, options, supply);
  EXPECT_EQ(a.requests, 99);
  expectStatsEqual(a, b);
}

}  // namespace
}  // namespace dsct
