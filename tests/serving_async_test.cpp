// Cooperative cancellation and the async double-buffered serving pipeline:
// async-off stays bit-identical to the synchronous driver, a deadline-missing
// primary is cancelled mid-solve (not discarded post hoc), fallbacks receive
// the remaining epoch budget, and the incident log records timeouts with
// their attempt depth and elapsed seconds.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "accuracy/fit.h"
#include "baselines/edf_nocompress.h"
#include "core/solver_api.h"
#include "core/solver_registry.h"
#include "sched/schedule.h"
#include "sim/serving.h"
#include "util/cancel.h"
#include "workload/gpu_catalog.h"

namespace dsct {
namespace {

// Shared fake clock, advanced only by the test solvers below. Atomic so the
// async pipeline thread and the driver can read it concurrently; all steps
// are multiples of 1/64 s, so every elapsed-time comparison is exact in
// binary floating point.
std::atomic<double> g_clock{0.0};

double fakeClock() { return g_clock.load(std::memory_order_relaxed); }

void advanceClock(double dt) {
  double cur = g_clock.load(std::memory_order_relaxed);
  while (!g_clock.compare_exchange_weak(cur, cur + dt,
                                        std::memory_order_relaxed)) {
  }
}

IntegralSchedule emptySchedule(const Instance& inst) {
  return IntegralSchedule::build(
      inst, std::vector<int>(static_cast<std::size_t>(inst.numTasks()), -1),
      std::vector<double>(static_cast<std::size_t>(inst.numTasks()), 0.0));
}

// Test-only solvers, registered once per process:
//  - test-sleepy: burns fake-clock time in 1/64 s slices until its token
//    expires, then returns kCancelled — a deterministic stand-in for a solve
//    that misses the epoch deadline. Without a token it returns an empty
//    schedule immediately.
//  - test-burn-throw: burns 1/32 s of fake-clock time, then throws — a
//    primary that fails after consuming half of a 1/16 s epoch budget.
void registerTestSolvers() {
  static const bool once = [] {
    SolverCapabilities caps;
    caps.integral = true;
    SolverRegistry::instance().add(makeSolver(
        "test-sleepy", "Sleepy (runs until cancelled)", caps,
        [](const Instance& inst, const SolveContext& ctx) {
          SolveOutcome out;
          for (int i = 0; i < 100000 && ctx.cancel != nullptr; ++i) {
            advanceClock(1.0 / 64.0);
            if (ctx.cancel->stopRequested()) {
              out.status = OutcomeStatus::kCancelled;
              return out;  // cancelled mid-solve: no schedule to return
            }
          }
          out.schedule = emptySchedule(inst);
          return out;
        }));
    SolverRegistry::instance().add(makeSolver(
        "test-burn-throw", "Burns half the budget, then throws", caps,
        [](const Instance&, const SolveContext&) -> SolveOutcome {
          advanceClock(1.0 / 32.0);
          throw std::runtime_error("injected solver failure");
        }));
    return true;
  }();
  (void)once;
}

sim::ServingOptions baseOptions() {
  sim::ServingOptions o;
  o.arrivalRatePerSecond = 18.0;
  o.horizonSeconds = 5.0;
  o.epochSeconds = 0.5;
  o.relDeadlineLo = 0.4;
  o.relDeadlineHi = 2.5;
  o.energyBudgetPerEpoch = 40.0;
  o.seed = 20240807;
  return o;
}

void expectStatsEqual(const sim::ServingStats& a, const sim::ServingStats& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_DOUBLE_EQ(a.meanAccuracy, b.meanAccuracy);
  EXPECT_DOUBLE_EQ(a.totalEnergy, b.totalEnergy);
  EXPECT_DOUBLE_EQ(a.meanLatency, b.meanLatency);
  EXPECT_EQ(a.interruptions, b.interruptions);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.policyFailures, b.policyFailures);
  EXPECT_EQ(a.policyTimeouts, b.policyTimeouts);
  EXPECT_EQ(a.validatorRejections, b.validatorRejections);
  EXPECT_EQ(a.budgetShockEpochs, b.budgetShockEpochs);
  EXPECT_EQ(a.noMachineEpochs, b.noMachineEpochs);
  EXPECT_EQ(a.incidents, b.incidents);
  EXPECT_EQ(a.profileCacheHits, b.profileCacheHits);
  EXPECT_EQ(a.profileCacheMisses, b.profileCacheMisses);
  EXPECT_EQ(a.profileCacheInvalidations, b.profileCacheInvalidations);
}

Instance tinyInstance() {
  std::vector<Task> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.push_back(Task{1.0 + 0.25 * i,
                         makePaperAccuracy(1e-3, 0.82, 0.5 + 0.3 * i, 5),
                         "t" + std::to_string(i)});
  }
  return Instance(std::move(tasks), machinesFromCatalog({"T4", "V100"}), 20.0);
}

// Every registered solver polls the token cooperatively: a pre-expired
// deadline makes each of them return kCancelled instead of completing a
// solve whose result would be discarded.
TEST(Cancellation, AllRegisteredSolversObserveExpiredToken) {
  double now = 0.0;
  const CancelToken expired(0.0, [&now]() { return now; });
  SolveContext ctx;
  ctx.cancel = &expired;
  const Instance inst = tinyInstance();
  for (const std::string name : {"approx", "fr-opt", "edf", "edf3",
                                 "levels-opt", "fr-lp", "mip-warm",
                                 "mip-cold"}) {
    const SolveOutcome out =
        SolverRegistry::instance().resolve(name).solve(inst, ctx);
    EXPECT_TRUE(out.cancelled()) << name;
    EXPECT_EQ(out.status, OutcomeStatus::kCancelled) << name;
  }
}

TEST(Cancellation, ExplicitOptionTokenWinsOverContext) {
  // A token passed via the option structs directly keeps working when the
  // context carries none (the registry only injects context.cancel into a
  // null option slot).
  CancelToken token;
  token.requestCancel();
  const Instance inst = tinyInstance();
  const auto res = solveEdfNoCompression(inst, &token);
  EXPECT_TRUE(res.cancelled);
}

// Async serving with no solve budget is bit-identical to the synchronous
// driver on the default (overlap-eligible) path: same requests, energy,
// accuracy, and an empty incident log — only asyncEpochs differs.
TEST(AsyncServing, DefaultPathMatchesSync) {
  const auto machines = machinesFromCatalog({"T4", "V100"});
  const auto sync = sim::runServing(machines, std::string("approx"),
                                    baseOptions());
  auto asyncOptions = baseOptions();
  asyncOptions.asyncServing = true;
  const auto async =
      sim::runServing(machines, std::string("approx"), asyncOptions);
  expectStatsEqual(sync, async);
  EXPECT_EQ(sync.asyncEpochs, 0);
  EXPECT_EQ(async.asyncEpochs, async.epochs);
}

// Backlog carry-over suppresses the execution/solve overlap (execution
// feeds the next batch) but solves still run on the pipeline thread; the
// results stay bit-identical.
TEST(AsyncServing, BacklogPathMatchesSync) {
  const auto machines = machinesFromCatalog({"T4", "V100"});
  auto options = baseOptions();
  options.carryBacklog = true;
  const auto sync = sim::runServing(machines, std::string("approx"), options);
  options.asyncServing = true;
  const auto async = sim::runServing(machines, std::string("approx"), options);
  expectStatsEqual(sync, async);
  EXPECT_EQ(async.asyncEpochs, async.epochs);
}

// Guarded mode (validator on every epoch) with overlap enabled: the chain
// machinery and the double buffer compose without changing results.
TEST(AsyncServing, GuardedValidatedPathMatchesSync) {
  const auto machines = machinesFromCatalog({"T4", "V100"});
  auto options = baseOptions();
  options.validateEpochs = true;
  const auto sync = sim::runServing(machines, std::string("edf3"), options);
  options.asyncServing = true;
  const auto async = sim::runServing(machines, std::string("edf3"), options);
  expectStatsEqual(sync, async);
  EXPECT_EQ(async.asyncEpochs, async.epochs);
}

// The acceptance scenario: a primary that would miss the epoch deadline is
// cancelled mid-solve by its token (it observes the token and returns
// kCancelled — the solve is not completed and then discarded), the epoch is
// served by the fallback, and the incident log records the timeout with its
// elapsed seconds and attempt depth.
void runTimeoutFallbackScenario(bool asyncServing) {
  registerTestSolvers();
  g_clock.store(0.0);
  const auto machines = machinesFromCatalog({"T4", "V100"});
  auto options = baseOptions();
  options.horizonSeconds = 2.0;
  options.clock = fakeClock;
  options.epochTimeLimitSeconds = 1.0 / 16.0;  // 4 sleepy slices, exact
  options.asyncServing = asyncServing;
  const auto s =
      sim::runServing(machines, std::string("test-sleepy"), options);

  ASSERT_GT(s.epochs, 0);
  // Every epoch: the primary blew the budget and edf3 served the epoch.
  EXPECT_EQ(s.policyTimeouts, s.epochs);
  EXPECT_EQ(s.policyFailures, s.epochs);
  EXPECT_EQ(s.fallbacks, s.epochs);
  EXPECT_GT(s.served, 0);  // the fallback actually served requests
  EXPECT_EQ(s.asyncEpochs, asyncServing ? s.epochs : 0);
  ASSERT_EQ(s.incidents.size(), static_cast<std::size_t>(2 * s.epochs));
  for (int e = 0; e < s.epochs; ++e) {
    const sim::EpochIncident& timeout =
        s.incidents[static_cast<std::size_t>(2 * e)];
    EXPECT_EQ(timeout.kind, sim::IncidentKind::kPolicyTimeout);
    // Payload is the attempt's elapsed solve seconds (the documented
    // semantics — historically misdocumented as "0 otherwise"): the sleepy
    // solver observed its token after exactly the granted 1/16 s.
    EXPECT_DOUBLE_EQ(timeout.value, 1.0 / 16.0);
    EXPECT_EQ(timeout.depth, 0);  // the primary attempt
    const sim::EpochIncident& engaged =
        s.incidents[static_cast<std::size_t>(2 * e + 1)];
    EXPECT_EQ(engaged.kind, sim::IncidentKind::kFallbackEngaged);
    EXPECT_DOUBLE_EQ(engaged.value, 0.0);
    EXPECT_EQ(engaged.depth, 0);
  }
}

TEST(AsyncServing, TimeoutFallsBackWithinEpochBudgetSync) {
  runTimeoutFallbackScenario(false);
}

TEST(AsyncServing, TimeoutFallsBackWithinEpochBudgetAsync) {
  runTimeoutFallbackScenario(true);
}

// Fallback attempts receive the *remaining* epoch budget: after the primary
// burns half of the 1/16 s budget and throws, the first fallback gets a
// token with only the remaining 1/32 s — it is cancelled after exactly that
// long (recorded at depth 1) — and the final fallback, with the budget
// blown, runs unguarded and serves the epoch.
TEST(AsyncServing, FallbacksReceiveRemainingBudget) {
  registerTestSolvers();
  g_clock.store(0.0);
  const auto machines = machinesFromCatalog({"T4", "V100"});
  auto options = baseOptions();
  options.horizonSeconds = 1.0;
  options.clock = fakeClock;
  options.epochTimeLimitSeconds = 1.0 / 16.0;
  options.fallbackChain = {"test-sleepy", "edf3"};
  const auto s =
      sim::runServing(machines, std::string("test-burn-throw"), options);

  ASSERT_GT(s.epochs, 0);
  EXPECT_EQ(s.policyFailures, s.epochs);   // the throwing primary, depth 0
  EXPECT_EQ(s.policyTimeouts, s.epochs);   // the budget-limited fallback
  EXPECT_EQ(s.fallbacks, s.epochs);
  EXPECT_GT(s.served, 0);
  ASSERT_EQ(s.incidents.size(), static_cast<std::size_t>(3 * s.epochs));
  for (int e = 0; e < s.epochs; ++e) {
    const auto* inc = &s.incidents[static_cast<std::size_t>(3 * e)];
    EXPECT_EQ(inc[0].kind, sim::IncidentKind::kPolicyFailure);
    EXPECT_DOUBLE_EQ(inc[0].value, 0.0);  // exception path, primary only
    EXPECT_EQ(inc[1].kind, sim::IncidentKind::kPolicyTimeout);
    EXPECT_DOUBLE_EQ(inc[1].value, 1.0 / 32.0);  // the remaining budget
    EXPECT_EQ(inc[1].depth, 1);                  // first fallback attempt
    EXPECT_EQ(inc[2].kind, sim::IncidentKind::kFallbackEngaged);
  }
}

}  // namespace
}  // namespace dsct
