// Sharded serving (ServingOptions::shards): the coordinator wired through
// the serving loop, its stats and incidents, and the scenario DSL keys.
#include <string>

#include <gtest/gtest.h>

#include "sim/serving.h"
#include "workload/gpu_catalog.h"
#include "workload/scenario.h"

namespace dsct {
namespace {

sim::ServingOptions baseOptions() {
  sim::ServingOptions options;
  options.arrivalRatePerSecond = 8.0;
  options.horizonSeconds = 4.0;
  options.epochSeconds = 0.5;
  options.energyBudgetPerEpoch = 30.0;
  options.relDeadlineLo = 0.5;
  options.relDeadlineHi = 2.0;
  options.thetaLo = 0.1;
  options.thetaHi = 1.0;
  options.seed = 23;
  options.carryBacklog = true;
  return options;
}

std::vector<Machine> fleet() {
  return machinesFromCatalog({"T4", "V100", "A100", "T4"});
}

TEST(ServingShard, ShardsZeroAndOneMatchUnsharded) {
  const auto machines = fleet();
  const sim::ServingStats plain =
      sim::runServing(machines, std::string("approx"), baseOptions());
  for (const int shards : {0, 1}) {
    sim::ServingOptions options = baseOptions();
    options.shards = shards;
    const sim::ServingStats sharded =
        sim::runServing(machines, std::string("approx"), options);
    EXPECT_EQ(sharded.meanAccuracy, plain.meanAccuracy) << shards;
    EXPECT_EQ(sharded.totalEnergy, plain.totalEnergy) << shards;
    EXPECT_EQ(sharded.served, plain.served) << shards;
    EXPECT_EQ(sharded.deadlineMisses, plain.deadlineMisses) << shards;
  }
}

TEST(ServingShard, ShardedRunReportsCoordinatorStats) {
  sim::ServingOptions options = baseOptions();
  options.shards = 2;
  options.shardSeed = 5;
  const sim::ServingStats stats =
      sim::runServing(fleet(), std::string("approx"), options);
  EXPECT_GT(stats.served, 0);
  EXPECT_GT(stats.shardedEpochs, 0);
  EXPECT_EQ(stats.shardedEpochs, stats.epochs);
  EXPECT_GE(stats.shardPriceIterations, stats.shardedEpochs);
  EXPECT_GE(stats.shardTopUpEnergy, 0.0);
  EXPECT_EQ(stats.shardPriceDivergences, 0);
}

TEST(ServingShard, ShardedRunIsReplayable) {
  sim::ServingOptions options = baseOptions();
  options.shards = 3;
  const sim::ServingStats a =
      sim::runServing(fleet(), std::string("approx"), options);
  const sim::ServingStats b =
      sim::runServing(fleet(), std::string("approx"), options);
  EXPECT_EQ(a.meanAccuracy, b.meanAccuracy);
  EXPECT_EQ(a.totalEnergy, b.totalEnergy);
  EXPECT_EQ(a.shardPriceIterations, b.shardPriceIterations);
  EXPECT_EQ(a.shardTopUpEnergy, b.shardTopUpEnergy);
}

TEST(ServingShard, FallbacksStayUnsharded) {
  // A sharded primary with a fallback chain: fallback attempts resolve the
  // raw registry solvers, so a fallback solve must not be double-counted in
  // the shard stats (only primary solves are).
  sim::ServingOptions options = baseOptions();
  options.shards = 2;
  options.fallbackChain = {"edf3", "edf"};
  const sim::ServingStats stats =
      sim::runServing(fleet(), std::string("approx"), options);
  EXPECT_GT(stats.served, 0);
  EXPECT_LE(stats.shardedEpochs, stats.epochs);
}

TEST(ServingShard, ScenarioKeysParseAndMaterialize) {
  const char* text = R"(
scenario {
  name: sharded
  seed: 3
}
machine class {
  name: pool
  gpus: T4, V100
  count: 2
}
task class {
  name: web
  arrival: poisson 10
  theta: 0.1 1.0
  deadline: 0.5 2.0
}
serving {
  horizon: 4
  epoch: 0.5
  budget: 25
  policy: approx
  shards: 3
  shard seed: 77
}
)";
  const Scenario sc = parseScenario(text, "sharded.dsct");
  EXPECT_EQ(sc.serving.shards, 3);
  EXPECT_EQ(sc.serving.shardSeed, 77u);
  const sim::ServingOptions options = makeServingOptions(sc);
  EXPECT_EQ(options.shards, 3);
  EXPECT_EQ(options.shardSeed, 77u);

  const sim::ServingStats stats = sim::runServing(
      materializeMachines(sc), sc.serving.policy, options);
  EXPECT_GT(stats.shardedEpochs, 0);
}

TEST(ServingShard, ScenarioRejectsMalformedShards) {
  const char* text = R"(
machine class {
  name: pool
  gpus: T4
}
task class {
  name: web
  arrival: poisson 5
}
serving {
  shards: -2
}
)";
  EXPECT_THROW(parseScenario(text, "bad.dsct"), ScenarioError);
}

TEST(ServingShard, ShardedAvailabilityRunStaysSafe) {
  // Shards + per-machine batteries: cell-sliced caps keep the aware solver
  // from over-assigning any battery.
  sim::ServingOptions options = baseOptions();
  options.shards = 2;
  options.availability.enabled = true;
  options.availability.batteryCapacityJoules = 15.0;
  options.availability.rechargeWatts = 5.0;
  options.availability.seed = 11;
  const sim::ServingStats stats =
      sim::runServing(fleet(), std::string("approx"), options);
  EXPECT_GT(stats.served, 0);
  EXPECT_EQ(stats.batteryExhaustions, 0);
}

}  // namespace
}  // namespace dsct
