#include <gtest/gtest.h>

#include "sched/energy_profile.h"
#include "sched/schedule.h"
#include "sched/types.h"
#include "sched/validator.h"
#include "tests/test_support.h"
#include "util/check.h"

namespace dsct {
namespace {

using testing::tinyInstance;
using testing::twoSegment;

TEST(Machine, PowerIsSpeedOverEfficiency) {
  const Machine m{10.0, 0.05, "gpu"};
  EXPECT_DOUBLE_EQ(m.power(), 200.0);  // 10 TFLOPS / 0.05 TFLOP/J = 200 W
}

TEST(Instance, SortsTasksByDeadline) {
  std::vector<Task> tasks{
      Task{3.0, twoSegment(), "late"},
      Task{1.0, twoSegment(), "early"},
      Task{2.0, twoSegment(), "mid"},
  };
  Instance inst(std::move(tasks), {Machine{1.0, 0.01, "m"}}, 10.0);
  EXPECT_EQ(inst.task(0).name, "early");
  EXPECT_EQ(inst.task(1).name, "mid");
  EXPECT_EQ(inst.task(2).name, "late");
  EXPECT_DOUBLE_EQ(inst.maxDeadline(), 3.0);
}

TEST(Instance, Aggregates) {
  const Instance inst = tinyInstance(42.0);
  EXPECT_EQ(inst.numTasks(), 2);
  EXPECT_EQ(inst.numMachines(), 2);
  EXPECT_DOUBLE_EQ(inst.totalFmax(), 5.0);
  EXPECT_DOUBLE_EQ(inst.totalSpeed(), 3.0);
  EXPECT_DOUBLE_EQ(inst.totalPower(), 2.0 / 0.05 + 1.0 / 0.08);
  EXPECT_DOUBLE_EQ(inst.energyBudget(), 42.0);
  EXPECT_DOUBLE_EQ(inst.totalAmax(), 1.7);
  EXPECT_DOUBLE_EQ(inst.totalAmin(), 0.0);
}

TEST(Instance, MachinesByEfficiencyDesc) {
  const Instance inst = tinyInstance();
  const auto order = inst.machinesByEfficiencyDesc();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // 0.08 > 0.05
  EXPECT_EQ(order[1], 0);
}

TEST(Instance, RejectsInvalidInputs) {
  EXPECT_THROW(Instance({}, {}, 1.0), CheckError);  // no machines
  EXPECT_THROW(Instance({}, {Machine{0.0, 1.0, ""}}, 1.0), CheckError);
  EXPECT_THROW(Instance({}, {Machine{1.0, -1.0, ""}}, 1.0), CheckError);
  EXPECT_THROW(Instance({}, {Machine{1.0, 1.0, ""}}, -1.0), CheckError);
  EXPECT_THROW(
      Instance({Task{-1.0, twoSegment(), ""}}, {Machine{1.0, 1.0, ""}}, 1.0),
      CheckError);
}

TEST(FractionalSchedule, MetricsAndLoads) {
  const Instance inst = tinyInstance(1e9);
  FractionalSchedule s(2, 2);
  s.set(0, 0, 0.5);  // 1 TFLOP on m0 (speed 2)
  s.set(0, 1, 0.5);  // 0.5 TFLOP on m1 (speed 1)
  s.set(1, 1, 1.0);  // 1 TFLOP on m1
  EXPECT_DOUBLE_EQ(s.flops(inst, 0), 1.5);
  EXPECT_DOUBLE_EQ(s.flops(inst, 1), 1.0);
  EXPECT_DOUBLE_EQ(s.machineLoad(0), 0.5);
  EXPECT_DOUBLE_EQ(s.machineLoad(1), 1.5);
  EXPECT_DOUBLE_EQ(s.prefixTime(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(s.prefixTime(1, 1), 1.5);
  // Energy: 0.5 s * 40 W + 1.5 s * 12.5 W.
  EXPECT_DOUBLE_EQ(s.energy(inst), 0.5 * 40.0 + 1.5 * 12.5);
  // Accuracy from the two-segment functions.
  EXPECT_DOUBLE_EQ(s.taskAccuracy(inst, 0),
                   inst.task(0).accuracy.value(1.5));
  EXPECT_DOUBLE_EQ(s.totalError(inst), 2.0 - s.totalAccuracy(inst));
}

TEST(FractionalSchedule, RejectsNegativeTime) {
  FractionalSchedule s(1, 1);
  EXPECT_THROW(s.set(0, 0, -0.5), CheckError);
  s.set(0, 0, 1.0);
  s.add(0, 0, 0.25);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 1.25);
}

TEST(IntegralSchedule, BuildStacksPerMachine) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s =
      IntegralSchedule::build(inst, {0, 0}, {0.25, 0.5});
  EXPECT_EQ(s.machineOf(0), 0);
  EXPECT_EQ(s.machineOf(1), 0);
  EXPECT_DOUBLE_EQ(s.start(0), 0.0);
  EXPECT_DOUBLE_EQ(s.start(1), 0.25);
  ASSERT_EQ(s.timeline(0).size(), 2u);
  EXPECT_TRUE(s.timeline(1).empty());
  EXPECT_DOUBLE_EQ(s.machineLoad(0), 0.75);
  EXPECT_EQ(s.numScheduled(), 2);
}

TEST(IntegralSchedule, UnscheduledTasksKeepFloorAccuracy) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s = IntegralSchedule::build(inst, {-1, 1}, {9.9, 1.0});
  EXPECT_EQ(s.machineOf(0), -1);
  EXPECT_DOUBLE_EQ(s.duration(0), 0.0);  // duration zeroed for unscheduled
  EXPECT_DOUBLE_EQ(s.flops(inst, 0), 0.0);
  EXPECT_DOUBLE_EQ(s.taskAccuracy(inst, 0), inst.task(0).amin());
  EXPECT_EQ(s.numScheduled(), 1);
}

TEST(IntegralSchedule, ToFractionalPreservesMetrics) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s = IntegralSchedule::build(inst, {1, 0}, {0.5, 1.0});
  const FractionalSchedule f = s.toFractional(inst);
  EXPECT_DOUBLE_EQ(f.totalAccuracy(inst), s.totalAccuracy(inst));
  EXPECT_DOUBLE_EQ(f.energy(inst), s.energy(inst));
}

TEST(Validator, AcceptsFeasible) {
  const Instance inst = tinyInstance(1e9);
  FractionalSchedule s(2, 2);
  s.set(0, 0, 0.5);
  s.set(1, 0, 1.0);
  EXPECT_TRUE(validate(inst, s).feasible);
}

TEST(Validator, CatchesDeadlineViolation) {
  const Instance inst = tinyInstance(1e9);
  FractionalSchedule s(2, 2);
  s.set(0, 0, 1.5);  // d_0 = 1.0
  const ValidationReport report = validate(inst, s);
  EXPECT_FALSE(report.feasible);
  EXPECT_GT(report.maxDeadlineViolation, 0.4);
}

TEST(Validator, CatchesPrefixViolation) {
  const Instance inst = tinyInstance(1e9);
  FractionalSchedule s(2, 2);
  s.set(0, 0, 0.9);
  s.set(1, 0, 1.5);  // prefix 2.4 > d_1 = 2.0
  EXPECT_FALSE(validate(inst, s).feasible);
}

TEST(Validator, CatchesEnergyViolation) {
  const Instance inst = tinyInstance(1.0);  // 1 J budget
  FractionalSchedule s(2, 2);
  s.set(0, 0, 0.5);  // 0.5 s * 40 W = 20 J
  const ValidationReport report = validate(inst, s);
  EXPECT_FALSE(report.feasible);
  EXPECT_NEAR(report.energyExcess, 19.0, 1e-9);
}

TEST(Validator, CatchesFlopsViolation) {
  const Instance inst = tinyInstance(1e9);
  FractionalSchedule s(2, 2);
  // Task 1 (deadline 2): 2s * 2 TFLOPS = 4 > fmax = 3.
  s.set(1, 0, 2.0);
  const ValidationReport report = validate(inst, s);
  EXPECT_FALSE(report.feasible);
  EXPECT_NEAR(report.maxFlopsExcess, 1.0, 1e-9);
  EXPECT_NE(report.summary().find("fmax"), std::string::npos);
}

TEST(Validator, IntegralOrderingChecked) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s = IntegralSchedule::build(inst, {0, 0}, {0.3, 0.4});
  EXPECT_TRUE(validate(inst, s).feasible);
}

TEST(EnergyProfile, NaiveFillsEfficientFirst) {
  const Instance inst = tinyInstance(30.0);
  // Machine 1 (12.5 W, most efficient) gets d_max = 2 s → 25 J; remaining
  // 5 J go to machine 0 (40 W) → 0.125 s.
  const EnergyProfile p = naiveProfile(inst);
  EXPECT_DOUBLE_EQ(p[1], 2.0);
  EXPECT_NEAR(p[0], 5.0 / 40.0, 1e-12);
  EXPECT_NEAR(profileEnergy(inst, p), 30.0, 1e-9);
}

TEST(EnergyProfile, LargeBudgetCapsAtHorizon) {
  const Instance inst = tinyInstance(1e9);
  const EnergyProfile p = naiveProfile(inst);
  EXPECT_DOUBLE_EQ(p[0], 2.0);
  EXPECT_DOUBLE_EQ(p[1], 2.0);
}

TEST(EnergyProfile, ZeroBudgetGivesZeroProfile) {
  const Instance inst = tinyInstance(0.0);
  const EnergyProfile p = naiveProfile(inst);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(EnergyProfile, CustomHorizon) {
  const Instance inst = tinyInstance(1e9);
  const EnergyProfile p = naiveProfile(inst, 0.5);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

}  // namespace
}  // namespace dsct
