// Serving-loop integration for the scenario DSL: request-trace replay pins,
// SLA miss-penalty accounting, and trace validation at the driver boundary.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/serving.h"
#include "util/check.h"
#include "workload/gpu_catalog.h"
#include "workload/scenario.h"

namespace dsct {
namespace {

std::vector<sim::RequestSpec> tightTrace(double penalty) {
  // Deadlines far too tight for the tiny budget below — every request that
  // executes still misses, deterministically.
  std::vector<sim::RequestSpec> trace;
  for (int i = 0; i < 12; ++i) {
    sim::RequestSpec r;
    r.arrival = 0.1 * i;
    r.relDeadline = 0.05;
    r.theta = 2.0;
    r.missPenalty = penalty;
    trace.push_back(r);
  }
  return trace;
}

sim::ServingOptions traceOptions(std::vector<sim::RequestSpec> trace) {
  sim::ServingOptions o;
  o.requestTrace = std::move(trace);
  o.horizonSeconds = 2.0;
  o.epochSeconds = 0.5;
  o.energyBudgetPerEpoch = 0.5;
  return o;
}

TEST(ServingScenario, TraceReplaysBitIdentically) {
  const auto machines = machinesFromCatalog({"T4", "V100"});
  const sim::ServingOptions options = traceOptions(tightTrace(1.0));
  const sim::ServingStats a = sim::runServing(machines, "approx", options);
  const sim::ServingStats b = sim::runServing(machines, "approx", options);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
  EXPECT_EQ(a.missPenalty, b.missPenalty);
  EXPECT_EQ(a.meanAccuracy, b.meanAccuracy);
  EXPECT_EQ(a.totalEnergy, b.totalEnergy);
  EXPECT_EQ(a.meanLatency, b.meanLatency);
}

TEST(ServingScenario, TraceIgnoresTheWorkloadSeed) {
  // A full trace replaces every workload draw, so the driver seed must not
  // move the results.
  const auto machines = machinesFromCatalog({"T4", "V100"});
  sim::ServingOptions options = traceOptions(tightTrace(1.0));
  options.seed = 1;
  const sim::ServingStats a = sim::runServing(machines, "approx", options);
  options.seed = 424242;
  const sim::ServingStats b = sim::runServing(machines, "approx", options);
  EXPECT_EQ(a.meanAccuracy, b.meanAccuracy);
  EXPECT_EQ(a.totalEnergy, b.totalEnergy);
  EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
}

TEST(ServingScenario, UnitPenaltyEqualsMissCount) {
  const auto machines = machinesFromCatalog({"T4"});
  const sim::ServingStats s =
      sim::runServing(machines, "edf3", traceOptions(tightTrace(1.0)));
  ASSERT_GT(s.deadlineMisses, 0);
  EXPECT_DOUBLE_EQ(s.missPenalty, static_cast<double>(s.deadlineMisses));
}

TEST(ServingScenario, PenaltyScalesWithTheWeight) {
  const auto machines = machinesFromCatalog({"T4"});
  const sim::ServingStats unit =
      sim::runServing(machines, "edf3", traceOptions(tightTrace(1.0)));
  const sim::ServingStats weighted =
      sim::runServing(machines, "edf3", traceOptions(tightTrace(3.0)));
  // Same trace geometry, tripled weight: identical misses, tripled penalty.
  ASSERT_GT(unit.deadlineMisses, 0);
  EXPECT_EQ(weighted.deadlineMisses, unit.deadlineMisses);
  EXPECT_DOUBLE_EQ(weighted.missPenalty, 3.0 * unit.missPenalty);
}

TEST(ServingScenario, ZeroWeightSilencesThePenalty) {
  const auto machines = machinesFromCatalog({"T4"});
  const sim::ServingStats s =
      sim::runServing(machines, "edf3", traceOptions(tightTrace(0.0)));
  ASSERT_GT(s.deadlineMisses, 0);
  EXPECT_DOUBLE_EQ(s.missPenalty, 0.0);
}

TEST(ServingScenario, NoTraceKeepsLegacyAccounting) {
  // The legacy generator path never counts dropped requests as misses and
  // assigns weight 1 everywhere, so the new counter must track the old one
  // exactly (both stay 0 here even though every request is dropped).
  const auto machines = machinesFromCatalog({"T4"});
  sim::ServingOptions o;
  o.horizonSeconds = 3.0;
  o.epochSeconds = 0.5;
  o.energyBudgetPerEpoch = 0.0;  // nothing can execute
  o.relDeadlineLo = 0.05;
  o.relDeadlineHi = 0.2;
  o.seed = 9;
  const sim::ServingStats s = sim::runServing(machines, "edf3", o);
  EXPECT_GT(s.requests, 0);
  EXPECT_EQ(s.served, 0);
  EXPECT_EQ(s.deadlineMisses, 0);
  EXPECT_DOUBLE_EQ(s.missPenalty, 0.0);
}

TEST(ServingScenario, TraceValidation) {
  const auto machines = machinesFromCatalog({"T4"});
  const auto run = [&](std::vector<sim::RequestSpec> trace) {
    sim::runServing(machines, "edf3", traceOptions(std::move(trace)));
  };
  // Descending arrivals.
  {
    auto trace = tightTrace(1.0);
    std::swap(trace.front().arrival, trace.back().arrival);
    EXPECT_THROW(run(std::move(trace)), CheckError);
  }
  // Non-positive relative deadline / theta, negative penalty.
  {
    auto trace = tightTrace(1.0);
    trace[3].relDeadline = 0.0;
    EXPECT_THROW(run(std::move(trace)), CheckError);
  }
  {
    auto trace = tightTrace(1.0);
    trace[3].theta = -1.0;
    EXPECT_THROW(run(std::move(trace)), CheckError);
  }
  {
    auto trace = tightTrace(1.0);
    trace[3].missPenalty = -0.5;
    EXPECT_THROW(run(std::move(trace)), CheckError);
  }
  // Mutually exclusive with explicit arrivalTimes.
  {
    sim::ServingOptions o = traceOptions(tightTrace(1.0));
    o.arrivalTimes = {0.1, 0.2};
    EXPECT_THROW(sim::runServing(machines, "edf3", o), CheckError);
  }
}

TEST(ServingScenario, ScenarioRunReplaysBitIdentically) {
  // End-to-end: materialise a parsed scenario and serve it twice — the
  // acceptance pin behind `dsct_cli serve --scenario ... --seed 7`.
  const Scenario sc = parseScenario(
      "scenario {\n  seed: 7\n}\n"
      "machine class {\n  name: p\n  gpus: T4, V100\n}\n"
      "sla class {\n  name: gold\n  tightness: 0.6\n  miss penalty: 4\n}\n"
      "task class {\n  name: web\n  arrival: diurnal 4 30 12\n"
      "  sla: gold\n}\n"
      "serving {\n  horizon: 3\n  epoch: 0.5\n  budget: 10\n"
      "  backlog: on\n}\n");
  const std::vector<Machine> machines = materializeMachines(sc);
  const sim::ServingOptions options = makeServingOptions(sc);
  const sim::ServingStats a = sim::runServing(machines, "approx", options);
  const sim::ServingStats b = sim::runServing(machines, "approx", options);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.meanAccuracy, b.meanAccuracy);
  EXPECT_EQ(a.totalEnergy, b.totalEnergy);
  EXPECT_EQ(a.meanLatency, b.meanLatency);
  EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
  EXPECT_EQ(a.missPenalty, b.missPenalty);
  // The gold tier weights every miss by 4.
  if (a.deadlineMisses > 0) {
    EXPECT_DOUBLE_EQ(a.missPenalty, 4.0 * a.deadlineMisses);
  }
}

}  // namespace
}  // namespace dsct
