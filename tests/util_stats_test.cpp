#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/check.h"

namespace dsct {
namespace {

TEST(RunningStats, EmptyIsEmpty) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), CheckError);
  EXPECT_THROW(s.min(), CheckError);
  EXPECT_THROW(s.max(), CheckError);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderrMean(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(s.stderrMean(), std::sqrt(2.5 / 5.0), 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    const double x = 0.37 * i * i - 2.0 * i;
    (i < 4 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, NumericallyStableOnOffsetData) {
  // Large offset + small variance: the naive sum-of-squares formula fails
  // here; Welford must not.
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.2502502502, 1e-6);
}

TEST(Summarize, SpanOverload) {
  const std::vector<double> xs{2.0, 4.0, 6.0};
  const RunningStats s = summarize(xs);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST(Percentile, Endpoints) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Percentile, SingleElementAndErrors) {
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 33.0), 7.0);
  const std::vector<double> none;
  EXPECT_THROW(percentile(none, 50.0), CheckError);
  EXPECT_THROW(percentile(one, -1.0), CheckError);
  EXPECT_THROW(percentile(one, 101.0), CheckError);
}

}  // namespace
}  // namespace dsct
