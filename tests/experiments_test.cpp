// Experiment harness configuration and helper coverage.
#include <gtest/gtest.h>

#include "experiments/runner.h"
#include "experiments/scenarios.h"
#include "util/rng.h"

namespace dsct {
namespace {

TEST(Configs, QuickVariantsAreSmallerThanPaperScale) {
  const Fig3Config fig3;
  EXPECT_LT(Fig3Config::quick().numTasks, fig3.numTasks);
  EXPECT_LT(Fig3Config::quick().replications, fig3.replications);

  const Fig4Config fig4;
  EXPECT_LT(Fig4Config::quick().mipTimeLimit, fig4.mipTimeLimit);
  EXPECT_LT(Fig4Config::quick().taskCounts.back(), fig4.taskCounts.back());

  const Table1Config table1;
  EXPECT_LT(Table1Config::quick().taskCounts.back(),
            table1.taskCounts.back());

  const Fig5Config fig5;
  EXPECT_LE(Fig5Config::quick().replications, fig5.replications);

  const Fig6Config fig6;
  EXPECT_LE(Fig6Config::quick().replications, fig6.replications);
}

TEST(Configs, PaperDefaultsMatchSection6) {
  const Fig3Config fig3;
  EXPECT_EQ(fig3.numTasks, 100);
  EXPECT_EQ(fig3.numMachines, 5);
  EXPECT_DOUBLE_EQ(fig3.rho, 0.35);
  EXPECT_DOUBLE_EQ(fig3.beta, 0.5);
  EXPECT_DOUBLE_EQ(fig3.thetaMin, 0.1);

  const Fig5Config fig5;
  EXPECT_EQ(fig5.numTasks, 100);
  EXPECT_EQ(fig5.numMachines, 2);
  EXPECT_DOUBLE_EQ(fig5.rho, 1.0);
  EXPECT_DOUBLE_EQ(fig5.theta, 0.1);

  const Fig6Config fig6;
  EXPECT_DOUBLE_EQ(fig6.rho, 0.01);
  EXPECT_DOUBLE_EQ(fig6.speed1, 2.0);
  EXPECT_DOUBLE_EQ(fig6.eff1, 80e-3);
  EXPECT_DOUBLE_EQ(fig6.speed2, 5.0);
  EXPECT_DOUBLE_EQ(fig6.eff2, 70e-3);

  const Table1Config table1;
  EXPECT_EQ(table1.numMachines, 5);
  EXPECT_EQ(table1.taskCounts.front(), 100);
  EXPECT_EQ(table1.taskCounts.back(), 500);
}

TEST(EnergyGain, PicksBestRowWithinLossBound) {
  Fig5Row cheapButBad;
  cheapButBad.beta = 0.2;
  cheapButBad.approx.add(0.50);
  cheapButBad.approxEnergy.add(20.0);
  cheapButBad.edfNoCompression.add(0.30);
  cheapButBad.edfNoEnergy.add(90.0);

  Fig5Row sweetSpot;
  sweetSpot.beta = 0.6;
  sweetSpot.approx.add(0.79);
  sweetSpot.approxEnergy.add(60.0);
  sweetSpot.edfNoCompression.add(0.60);
  sweetSpot.edfNoEnergy.add(95.0);

  Fig5Row reference;
  reference.beta = 1.0;
  reference.approx.add(0.82);
  reference.approxEnergy.add(100.0);
  reference.edfNoCompression.add(0.80);
  reference.edfNoEnergy.add(100.0);

  const EnergyGain gain =
      energyGainHeadline({cheapButBad, sweetSpot, reference}, 0.02);
  // cheapButBad loses 0.30 (> 2%): excluded. sweetSpot loses 0.01 and
  // saves 40%; the reference row saves 0%.
  EXPECT_DOUBLE_EQ(gain.betaStar, 0.6);
  EXPECT_NEAR(gain.savedFraction, 0.40, 1e-12);
  EXPECT_NEAR(gain.accuracyLoss, 0.01, 1e-12);
}

TEST(EnergyGain, NoRowWithinBound) {
  Fig5Row lossy;
  lossy.beta = 0.5;
  lossy.approx.add(0.10);
  lossy.approxEnergy.add(10.0);
  lossy.edfNoCompression.add(0.80);
  lossy.edfNoEnergy.add(100.0);
  const EnergyGain gain = energyGainHeadline({lossy}, 0.02);
  // Only the reference row itself qualifies (loss 0.7 > 0.02 for saving).
  EXPECT_DOUBLE_EQ(gain.savedFraction, 0.0);
}

TEST(RunnerTest, SeedIndependentOfThreadCount) {
  // Deterministic reduction: same per-replication values regardless of
  // pool size (results are a pure function of the replication index).
  const auto fn = [](int rep) {
    return static_cast<double>(splitmix64(static_cast<std::uint64_t>(rep)) %
                               1000);
  };
  ExperimentRunner one(1);
  ExperimentRunner four(4);
  const RunningStats a = one.replicate(50, fn);
  const RunningStats b = four.replicate(50, fn);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
}

}  // namespace
}  // namespace dsct
