// Renewable power traces and the communication-energy extension
// (the paper's two future-work items, Section 7).
#include <gtest/gtest.h>

#include "sched/approx.h"
#include "sim/cluster.h"
#include "sim/renewable.h"
#include "sim/serving.h"
#include "tests/test_support.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/gpu_catalog.h"

namespace dsct {
namespace {

using testing::randomInstance;
using testing::tinyInstance;

// ------------------------------------------------------------- renewable --

TEST(PowerTrace, ConstantTrace) {
  const auto trace = sim::PowerTrace::constant(100.0);
  EXPECT_DOUBLE_EQ(trace.powerAt(0.0), 100.0);
  EXPECT_DOUBLE_EQ(trace.powerAt(1e6), 100.0);
  EXPECT_DOUBLE_EQ(trace.powerAt(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(trace.energyBetween(2.0, 5.0), 300.0);
}

TEST(PowerTrace, PiecewiseEnergyIntegral) {
  const sim::PowerTrace trace({0.0, 10.0, 20.0}, {50.0, 100.0, 0.0});
  EXPECT_DOUBLE_EQ(trace.powerAt(5.0), 50.0);
  EXPECT_DOUBLE_EQ(trace.powerAt(10.0), 100.0);
  EXPECT_DOUBLE_EQ(trace.powerAt(25.0), 0.0);
  EXPECT_DOUBLE_EQ(trace.energyBetween(0.0, 20.0), 1500.0);
  EXPECT_DOUBLE_EQ(trace.energyBetween(5.0, 15.0), 250.0 + 500.0);
  EXPECT_DOUBLE_EQ(trace.energyBetween(20.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(trace.energyBetween(3.0, 3.0), 0.0);
}

TEST(PowerTrace, ValidatesInput) {
  EXPECT_THROW(sim::PowerTrace({}, {}), CheckError);
  EXPECT_THROW(sim::PowerTrace({1.0}, {5.0}), CheckError);  // must start at 0
  EXPECT_THROW(sim::PowerTrace({0.0, 0.0}, {1.0, 2.0}), CheckError);
  EXPECT_THROW(sim::PowerTrace({0.0}, {-1.0}), CheckError);
  const sim::PowerTrace ok({0.0}, {1.0});
  EXPECT_THROW(ok.energyBetween(5.0, 1.0), CheckError);
}

TEST(PowerTrace, SolarDayShape) {
  Rng rng(4);
  const auto trace =
      sim::PowerTrace::solarDay(1000.0, 86400.0, 0.25, 0.75, 96, 0.0, rng);
  // Night is dark.
  EXPECT_DOUBLE_EQ(trace.powerAt(0.0), 0.0);
  EXPECT_DOUBLE_EQ(trace.powerAt(86000.0), 0.0);
  // Noon is near peak (sampled, so slightly below).
  EXPECT_GT(trace.powerAt(43200.0), 950.0);
  EXPECT_LE(trace.peakPower(), 1000.0 + 1e-9);
  // Morning ramps up.
  EXPECT_LT(trace.powerAt(23000.0), trace.powerAt(40000.0));
}

TEST(PowerTrace, SolarNoiseStaysNonNegative) {
  Rng rng(9);
  const auto trace =
      sim::PowerTrace::solarDay(500.0, 1000.0, 0.2, 0.8, 64, 0.5, rng);
  for (double t = 0.0; t < 1000.0; t += 7.3) {
    EXPECT_GE(trace.powerAt(t), 0.0);
  }
}

TEST(RenewableServing, BudgetFollowsSupply) {
  const auto machines = machinesFromCatalog({"T4"});
  sim::ServingOptions options;
  options.arrivalRatePerSecond = 20.0;
  options.horizonSeconds = 4.0;
  options.epochSeconds = 1.0;
  options.seed = 5;
  // Power only in the second half of the horizon.
  const sim::PowerTrace supply({0.0, 2.0}, {0.0, 200.0});
  const sim::ServingStats stats =
      sim::runServing(machines, sim::Policy::kApprox, options, supply);
  EXPECT_GT(stats.requests, 0);
  // Total energy cannot exceed what the supply provided.
  EXPECT_LE(stats.totalEnergy,
            supply.energyBetween(0.0, options.horizonSeconds) + 1e-6);
  // Some requests are served once power arrives.
  EXPECT_GT(stats.served, 0);
}

TEST(RenewableServing, ZeroSupplyServesNothing) {
  const auto machines = machinesFromCatalog({"T4"});
  sim::ServingOptions options;
  options.horizonSeconds = 2.0;
  options.seed = 6;
  const sim::ServingStats stats = sim::runServing(
      machines, sim::Policy::kApprox, options, sim::PowerTrace::constant(0.0));
  EXPECT_EQ(stats.served, 0);
  EXPECT_DOUBLE_EQ(stats.totalEnergy, 0.0);
}

TEST(RenewableServing, MoreSunMoreAccuracy) {
  const auto machines = machinesFromCatalog({"T4", "V100"});
  sim::ServingOptions options;
  options.arrivalRatePerSecond = 40.0;
  options.horizonSeconds = 4.0;
  options.epochSeconds = 0.5;
  options.seed = 7;
  Rng rng(1);
  const auto dim =
      sim::PowerTrace::solarDay(30.0, 4.0, 0.0, 1.0, 32, 0.0, rng);
  const auto bright =
      sim::PowerTrace::solarDay(300.0, 4.0, 0.0, 1.0, 32, 0.0, rng);
  const auto dimStats =
      sim::runServing(machines, sim::Policy::kApprox, options, dim);
  const auto brightStats =
      sim::runServing(machines, sim::Policy::kApprox, options, bright);
  EXPECT_GT(brightStats.meanAccuracy, dimStats.meanAccuracy);
}

// ------------------------------------------------------- communication ---

TEST(CommModel, TransferMath) {
  sim::CommModel comm;
  comm.taskBytes = {1e6, 0.0};
  comm.joulesPerByte = 2e-6;
  comm.bytesPerSecond = 1e7;
  EXPECT_DOUBLE_EQ(comm.transferSeconds(0), 0.1);
  EXPECT_DOUBLE_EQ(comm.transferJoules(0), 2.0);
  EXPECT_DOUBLE_EQ(comm.transferSeconds(1), 0.0);
  const sim::CommModel empty;
  EXPECT_DOUBLE_EQ(empty.transferSeconds(5), 0.0);
  EXPECT_DOUBLE_EQ(empty.transferJoules(5), 0.0);
}

TEST(CommExecution, ZeroBytesMatchesPlainExecution) {
  const Instance inst = randomInstance(41, 8, 2);
  const IntegralSchedule s = solveApprox(inst).schedule;
  const auto plain = sim::executeSchedule(inst, s);
  sim::CommModel comm;
  comm.taskBytes.assign(static_cast<std::size_t>(inst.numTasks()), 0.0);
  const auto withComm = sim::executeSchedule(inst, s, comm);
  EXPECT_DOUBLE_EQ(plain.totalEnergy, withComm.totalEnergy);
  EXPECT_DOUBLE_EQ(plain.totalAccuracy, withComm.totalAccuracy);
  EXPECT_EQ(plain.deadlineMisses, withComm.deadlineMisses);
}

TEST(CommExecution, TransfersShiftStartsAndAddEnergy) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s = IntegralSchedule::build(inst, {0, 0}, {0.3, 0.4});
  sim::CommModel comm;
  comm.taskBytes = {1e6, 2e6};
  comm.joulesPerByte = 1e-6;   // 1 J and 2 J
  comm.bytesPerSecond = 1e7;   // 0.1 s and 0.2 s transfers
  const auto exec = sim::executeSchedule(inst, s, comm);
  // Task 0: transfer [0, 0.1), runs [0.1, 0.4).
  EXPECT_NEAR(exec.executions[0].start, 0.1, 1e-12);
  EXPECT_NEAR(exec.executions[0].finish, 0.4, 1e-12);
  // Task 1: transfer [0.4, 0.6), runs [0.6, 1.0).
  EXPECT_NEAR(exec.executions[1].start, 0.6, 1e-12);
  EXPECT_NEAR(exec.executions[1].finish, 1.0, 1e-12);
  // Energy = compute (0.7 s * 40 W) + transfers (3 J).
  EXPECT_NEAR(exec.totalEnergy, 0.7 * 40.0 + 3.0, 1e-9);
}

TEST(CommExecution, TransfersCanCauseDeadlineMisses) {
  const Instance inst = tinyInstance(1e9);
  // Feasible without comm: task 0 runs [0, 0.95] against d = 1.0.
  const IntegralSchedule s =
      IntegralSchedule::build(inst, {0, -1}, {0.95, 0.0});
  EXPECT_EQ(sim::executeSchedule(inst, s).deadlineMisses, 0);
  sim::CommModel comm;
  comm.taskBytes = {1e6, 0.0};
  comm.bytesPerSecond = 1e7;  // 0.1 s transfer → finish 1.05 > 1.0
  EXPECT_EQ(sim::executeSchedule(inst, s, comm).deadlineMisses, 1);
}

TEST(CommAwareInstance, ShrinksBudgetAndDeadlines) {
  const Instance inst = tinyInstance(100.0);
  sim::CommModel comm;
  comm.taskBytes = {1e6, 1e6};
  comm.joulesPerByte = 10e-6;  // 10 J each
  comm.bytesPerSecond = 1e7;   // 0.1 s each
  const Instance aware = sim::commAwareInstance(inst, comm);
  EXPECT_DOUBLE_EQ(aware.energyBudget(), 80.0);
  EXPECT_DOUBLE_EQ(aware.task(0).deadline, 0.9);
  EXPECT_DOUBLE_EQ(aware.task(1).deadline, 1.9);
}

TEST(CommAwareInstance, SchedulesStayFeasibleUnderComm) {
  // Property: a schedule computed on the comm-aware instance, executed with
  // communication, never misses deadlines or exceeds the original budget.
  for (int trial = 0; trial < 8; ++trial) {
    const Instance inst =
        randomInstance(deriveSeed(4242, trial), 10, 3, 0.3, 0.5);
    Rng rng(deriveSeed(777, trial));
    sim::CommModel comm;
    comm.joulesPerByte = 5e-8;
    comm.bytesPerSecond = 1e9;
    for (int j = 0; j < inst.numTasks(); ++j) {
      comm.taskBytes.push_back(rng.uniform(0.0, 5e7));
    }
    const Instance aware = sim::commAwareInstance(inst, comm);
    const IntegralSchedule s = solveApprox(aware).schedule;
    const auto exec = sim::executeSchedule(inst, s, comm);
    EXPECT_LE(exec.totalEnergy, inst.energyBudget() + 1e-6)
        << "trial " << trial;
    // Transfers are serialised, so a task can start later than the analytic
    // model assumed only by the sum of *earlier* transfers — which the
    // conservative transform does not cover per machine. Misses are still
    // impossible here because every deadline was shrunk by the task's own
    // transfer and queueing is absorbed by the EDF stacking slack...
    // assert what the transform guarantees: the budget.
    EXPECT_GE(exec.totalAccuracy, 0.0);
  }
}

TEST(CommAwareInstance, TransferBeyondDeadlineClampsAndStarvesTask) {
  // A task whose input transfer alone exceeds its deadline must keep a tiny
  // positive deadline (Instance rejects non-positive ones) and receive zero
  // work end-to-end: the scheduler starves it and the simulator agrees.
  const Instance inst = tinyInstance(1e9);
  sim::CommModel comm;
  // Task 0 (d = 1.0 s): 2 s transfer — hopeless. Task 1 (d = 2.0 s): free.
  comm.taskBytes = {2e7, 0.0};
  comm.joulesPerByte = 1e-7;
  comm.bytesPerSecond = 1e7;
  const Instance aware = sim::commAwareInstance(inst, comm);
  EXPECT_GT(aware.task(0).deadline, 0.0);
  EXPECT_LE(aware.task(0).deadline, 1e-9);
  EXPECT_DOUBLE_EQ(aware.task(1).deadline, 2.0);
  const IntegralSchedule s = solveApprox(aware).schedule;
  // Schedule side: the clamped task gets no FLOPs.
  EXPECT_DOUBLE_EQ(s.flops(aware, 0), 0.0);
  EXPECT_GT(s.flops(aware, 1), 0.0);
  // Simulator side agrees end-to-end: executed with comm accounting, the
  // starved task contributes zero work and floor accuracy, and nothing
  // violates a deadline.
  const auto exec = sim::executeSchedule(inst, s, comm);
  EXPECT_DOUBLE_EQ(exec.executions[0].flops, 0.0);
  EXPECT_DOUBLE_EQ(exec.executions[0].accuracy,
                   inst.task(0).accuracy.value(0.0));
  EXPECT_EQ(exec.deadlineMisses, 0);
  EXPECT_GT(exec.executions[1].flops, 0.0);
}

TEST(CommAwareInstance, BudgetNeverNegative) {
  const Instance inst = tinyInstance(1.0);
  sim::CommModel comm;
  comm.taskBytes = {1e9, 1e9};
  comm.joulesPerByte = 1.0;  // absurdly expensive network
  comm.bytesPerSecond = 1e9;
  const Instance aware = sim::commAwareInstance(inst, comm);
  EXPECT_DOUBLE_EQ(aware.energyBudget(), 0.0);
  EXPECT_GT(aware.task(0).deadline, 0.0);
}

}  // namespace
}  // namespace dsct
