// Shared fixtures and builders for the dsct test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "accuracy/fit.h"
#include "accuracy/piecewise.h"
#include "sched/types.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace dsct::testing {

/// A simple 2-segment concave accuracy function reaching `amax` at `fmax`.
inline PiecewiseLinearAccuracy twoSegment(double amin = 0.0,
                                          double amax = 0.8,
                                          double fmax = 2.0) {
  const double mid = amin + 0.75 * (amax - amin);
  return PiecewiseLinearAccuracy::fromPoints({0.0, fmax / 2.0, fmax},
                                             {amin, mid, amax});
}

/// Deterministic random instance via the paper's scenario generator.
inline Instance randomInstance(std::uint64_t seed, int n = 8, int m = 3,
                               double rho = 0.35, double beta = 0.5,
                               double thetaMin = 0.1, double thetaMax = 1.0) {
  ScenarioSpec spec;
  spec.numTasks = n;
  spec.numMachines = m;
  spec.rho = rho;
  spec.beta = beta;
  return makeScenario(spec, thetaMin, thetaMax, seed);
}

/// Tiny hand-built instance: 2 tasks, 2 machines, generous budget.
inline Instance tinyInstance(double budget = 1e9) {
  std::vector<Task> tasks{
      Task{1.0, twoSegment(0.0, 0.8, 2.0), "t0"},
      Task{2.0, twoSegment(0.0, 0.9, 3.0), "t1"},
  };
  std::vector<Machine> machines{
      Machine{2.0, 0.05, "m0"},
      Machine{1.0, 0.08, "m1"},
  };
  return Instance(std::move(tasks), std::move(machines), budget);
}

}  // namespace dsct::testing
