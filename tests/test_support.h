// Shared fixtures and builders for the dsct test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "accuracy/fit.h"
#include "accuracy/piecewise.h"
#include "sched/types.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace dsct::testing {

/// A simple 2-segment concave accuracy function reaching `amax` at `fmax`.
inline PiecewiseLinearAccuracy twoSegment(double amin = 0.0,
                                          double amax = 0.8,
                                          double fmax = 2.0) {
  const double mid = amin + 0.75 * (amax - amin);
  return PiecewiseLinearAccuracy::fromPoints({0.0, fmax / 2.0, fmax},
                                             {amin, mid, amax});
}

/// Deterministic random instance via the paper's scenario generator.
inline Instance randomInstance(std::uint64_t seed, int n = 8, int m = 3,
                               double rho = 0.35, double beta = 0.5,
                               double thetaMin = 0.1, double thetaMax = 1.0) {
  ScenarioSpec spec;
  spec.numTasks = n;
  spec.numMachines = m;
  spec.rho = rho;
  spec.beta = beta;
  return makeScenario(spec, thetaMin, thetaMax, seed);
}

/// Tiny hand-built instance: 2 tasks, 2 machines, generous budget.
inline Instance tinyInstance(double budget = 1e9) {
  std::vector<Task> tasks{
      Task{1.0, twoSegment(0.0, 0.8, 2.0), "t0"},
      Task{2.0, twoSegment(0.0, 0.9, 3.0), "t1"},
  };
  std::vector<Machine> machines{
      Machine{2.0, 0.05, "m0"},
      Machine{1.0, 0.08, "m1"},
  };
  return Instance(std::move(tasks), std::move(machines), budget);
}

// --- Shared seeded corpus ---------------------------------------------------
// One instance family for the differential (sched_slack_cache_test), property
// (sched_pair_search_test), and golden tests, cycling through the regimes
// that have historically broken things: loose and tight budgets, strict
// deadlines with heterogeneous θ, the zero-slope/hopeless-task degeneracies
// from the fault PR, and horizon-bound profiles (the energy-leak regression).

inline constexpr int kCorpusRegimes = 5;

/// Deterministic corpus member. `caseIdx` picks the regime
/// (caseIdx % kCorpusRegimes) and scales the size; `seed` varies the draw.
inline Instance corpusInstance(std::uint64_t seed, int caseIdx) {
  Rng rng(deriveSeed(seed, static_cast<std::uint64_t>(caseIdx) * 7919u + 13u));
  const int regime = caseIdx % kCorpusRegimes;
  const int n = 3 + (caseIdx * 5) % 38;
  const int m = 1 + caseIdx % 5;
  switch (regime) {
    case 0:  // small-to-mid, generous budget: refinement mostly idles
      return randomInstance(deriveSeed(seed, 101), n, m, 0.35, 0.8, 0.1, 1.0);
    case 1:  // tight budget: every Joule contested, long transfer chains
      return randomInstance(deriveSeed(seed, 202), n, m, 0.10, 0.08, 0.1, 2.0);
    case 2:  // strict deadlines + heterogeneous θ (the Fig. 4 hard regime)
      return randomInstance(deriveSeed(seed, 303), n, m, 0.02, 0.4, 0.1, 4.9);
    case 3: {  // degenerate: flat (zero-slope, hopeless) tasks mixed in
      std::vector<Task> tasks;
      double deadline = 0.0;
      for (int j = 0; j < n; ++j) {
        deadline += rng.uniform(0.05, 0.6);
        if (j % 3 == 0) {
          // A comm-flattened hopeless task: constant accuracy, zero slope
          // end to end (the shape commAwareInstance emits when the transfer
          // alone exceeds the deadline).
          const double level = rng.uniform(0.0, 0.4);
          tasks.push_back(Task{deadline,
                               PiecewiseLinearAccuracy::linear(
                                   level, level, rng.uniform(0.5, 2.0)),
                               "flat"});
        } else {
          tasks.push_back(Task{deadline,
                               makePaperAccuracy(1e-3, 0.82,
                                                 rng.uniform(0.2, 2.0), 4),
                               "task"});
        }
      }
      std::vector<Machine> machines = makeUniformMachines(m, rng);
      const double budget =
          rng.uniform(0.05, 0.9) * deadline *
          Instance(tasks, machines, 1.0).totalPower();
      return Instance(std::move(tasks), std::move(machines), budget);
    }
    default: {  // horizon-bound: tiny recipient headroom at the horizon
      const double horizon = 10.0;
      std::vector<Task> tasks;
      for (int j = 0; j < std::max(1, n / 8); ++j) {
        const double kink = rng.uniform(10.0, 20.0);
        const double top = kink + rng.uniform(2.0, 6.0);
        const double atKink = rng.uniform(0.6, 0.9);
        // Concavity: the post-kink slope is a strict fraction of the
        // pre-kink slope.
        const double atTop =
            std::min(0.995, atKink + rng.uniform(0.2, 0.8) *
                                         (atKink / kink) * (top - kink));
        tasks.push_back(Task{horizon - rng.uniform(0.0, 0.5),
                             PiecewiseLinearAccuracy::fromPoints(
                                 {0.0, kink, top}, {0.0, atKink, atTop}),
                             "hb"});
      }
      std::vector<Machine> machines{Machine{1.0, 0.05, "r0"},
                                    Machine{1.0, 0.04, "r1"}};
      // Budget just below what both machines consume when horizon-full, so
      // the optimum pins one machine at the horizon (the regime where the
      // uncapped pair search used to destroy energy).
      const double full = horizon * (1.0 / 0.05 + 1.0 / 0.04);
      return Instance(std::move(tasks), std::move(machines),
                      rng.uniform(0.85, 0.999) * full);
    }
  }
}

/// The corpus member the FR-OPT golden-value pin runs on: mid-size, tight
/// budget, multi-machine (tests/sched_slack_cache_test.cpp).
inline Instance goldenMidSizeInstance() {
  // The Fig. 6b shape (earliest deadlines on the efficient machine, tight
  // ρ) — the regime where the naive profile is provably suboptimal, so the
  // pin exercises RefineProfile's transfers, not just its slack queries.
  Rng rng(987654321u);
  std::vector<Machine> machines{Machine{2.0, 80e-3, "m1"},
                                Machine{5.0, 70e-3, "m2"}};
  const auto thetas =
      makeThetasEarliestHighEfficient(60, 0.3, 4.0, 4.9, 0.1, 1.0, rng);
  ScenarioSpec spec;
  spec.numTasks = 60;
  spec.numMachines = 2;
  spec.rho = 0.01;
  spec.beta = 0.2;
  return buildInstance(std::move(machines), thetas, spec, rng);
}

}  // namespace dsct::testing
