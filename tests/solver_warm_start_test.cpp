// Cross-epoch LP warm starts: the contract is that a warm basis changes the
// pivot path, never the answer.
//
// Layers pinned here, bottom up:
//
//  - engine: re-solving a perturbed-RHS model from the previous optimal
//    basis matches the cold solve's objective, and a budget *increase*
//    (previous basis stays primal feasible) skips phase 1 entirely
//    (warmStartsUsed, zero phase-1 pivots);
//  - fingerprint: structuralFingerprint is invariant under budget/deadline
//    (RHS/bound) drift and sensitive to real structural change;
//  - registry ("fr-lp"): an LpWarmStartSlot carried across an epoch
//    sequence produces outcomes identical to slot-less solves, with the
//    used/rejected counters pinning when the basis actually engaged;
//  - MIP ("mip-warm" path): solveDsctMip's root-basis carry, including the
//    stale-fingerprint rejection;
//  - serving loop: a replayed trace with structurally identical epochs is
//    bit-identical with ServingOptions::lpWarmStarts on vs off, and the on
//    run proves the carry engaged (lpWarmStartsUsed > 0).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/solver_api.h"
#include "core/solver_registry.h"
#include "mipmodel/dsct_lp.h"
#include "mipmodel/dsct_mip.h"
#include "sim/serving.h"
#include "solver/model.h"
#include "solver/simplex.h"
#include "tests/test_support.h"

namespace dsct {
namespace {

using lp::LpBasis;
using lp::LpOptions;
using lp::LpResult;
using lp::SolveStatus;

/// The same instance with a different energy budget — pure RHS drift in the
/// fractional LP (the "energy" row), zero structural change.
Instance withBudget(const Instance& inst, double budget) {
  return Instance(inst.tasks(), inst.machines(), budget);
}

// ---- Engine level --------------------------------------------------------

TEST(WarmStart, WarmEqualsColdAcrossBudgetSweep) {
  // A 4-epoch budget sequence per corpus instance: each epoch re-solves
  // from the previous epoch's basis and must land on the cold objective.
  for (int caseIdx = 0; caseIdx < 5; ++caseIdx) {
    const Instance base = testing::corpusInstance(11, caseIdx);
    LpBasis carried;
    for (const double factor : {1.0, 0.8, 1.25, 0.6}) {
      SCOPED_TRACE("case=" + std::to_string(caseIdx) +
                   " factor=" + std::to_string(factor));
      const Instance inst =
          withBudget(base, base.energyBudget() * factor);
      const DsctLp lp = buildFractionalLp(inst);
      const LpResult cold = lp::solveLp(lp.model);
      ASSERT_EQ(cold.status, SolveStatus::kOptimal);
      EXPECT_EQ(cold.counters.warmStartsAttempted, 0);

      LpOptions warmOptions;
      warmOptions.warmBasis = &carried;
      const LpResult warm = lp::solveLp(lp.model, warmOptions);
      ASSERT_EQ(warm.status, SolveStatus::kOptimal);
      const double scale = std::max(1.0, std::abs(cold.objective));
      EXPECT_NEAR(warm.objective, cold.objective, 1e-9 * scale);
      if (!carried.empty()) {
        EXPECT_EQ(warm.counters.warmStartsAttempted, 1);
        EXPECT_EQ(warm.counters.warmStartsUsed +
                      warm.counters.warmStartsRepaired,
                  1);
        EXPECT_EQ(warm.counters.warmStartsRejected, 0);
      }
      carried = warm.basis;
    }
  }
}

TEST(WarmStart, BudgetIncreaseSkipsPhaseOne) {
  // Relaxing the only drifted row keeps the old basis primal feasible: the
  // warm solve must classify as "used" and spend no phase-1 pivots.
  const Instance base = testing::corpusInstance(3, 1);
  const LpResult first = lp::solveLp(buildFractionalLp(base).model);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);

  const Instance relaxed = withBudget(base, base.energyBudget() * 1.5);
  LpOptions options;
  options.warmBasis = &first.basis;
  const LpResult warm = lp::solveLp(buildFractionalLp(relaxed).model, options);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_EQ(warm.counters.warmStartsUsed, 1);
  EXPECT_EQ(warm.counters.warmStartsRepaired, 0);
  EXPECT_EQ(warm.counters.phase1Pivots, 0);

  const LpResult cold = lp::solveLp(buildFractionalLp(relaxed).model);
  const double scale = std::max(1.0, std::abs(cold.objective));
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9 * scale);
}

TEST(WarmStart, IncompatibleShapeRejectedAtEngine) {
  const LpResult small =
      lp::solveLp(buildFractionalLp(testing::corpusInstance(5, 0)).model);
  ASSERT_EQ(small.status, SolveStatus::kOptimal);

  const DsctLp big = buildFractionalLp(testing::corpusInstance(5, 1));
  LpOptions options;
  options.warmBasis = &small.basis;  // wrong shape for `big`
  const LpResult warm = lp::solveLp(big.model, options);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_EQ(warm.counters.warmStartsAttempted, 1);
  EXPECT_EQ(warm.counters.warmStartsRejected, 1);
  EXPECT_EQ(warm.counters.warmStartsUsed, 0);
  EXPECT_EQ(warm.counters.warmStartsRepaired, 0);

  const LpResult cold = lp::solveLp(big.model);
  const double scale = std::max(1.0, std::abs(cold.objective));
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9 * scale);
}

// ---- Fingerprint ---------------------------------------------------------

TEST(WarmStart, FingerprintInvariantUnderRhsAndBoundDrift) {
  const Instance base = testing::corpusInstance(7, 2);
  const std::uint64_t fp =
      lp::structuralFingerprint(buildFractionalLp(base).model);
  EXPECT_NE(fp, 0u);

  // Budget drift: the energy row's RHS only.
  EXPECT_EQ(lp::structuralFingerprint(
                buildFractionalLp(withBudget(base, base.energyBudget() * 0.5))
                    .model),
            fp);

  // Deadline drift (order preserved): ddl-row RHS and t_jr upper bounds.
  std::vector<Task> shifted = base.tasks();
  for (Task& task : shifted) task.deadline *= 1.1;
  EXPECT_EQ(lp::structuralFingerprint(
                buildFractionalLp(
                    Instance(shifted, base.machines(), base.energyBudget()))
                    .model),
            fp);
}

TEST(WarmStart, FingerprintSensitiveToStructure) {
  const Instance base = testing::corpusInstance(7, 2);
  const std::uint64_t fp =
      lp::structuralFingerprint(buildFractionalLp(base).model);

  // Different batch size → different dimensions.
  EXPECT_NE(lp::structuralFingerprint(
                buildFractionalLp(testing::corpusInstance(7, 3)).model),
            fp);

  // Same dimensions, one machine speed changed → coefficient drift.
  std::vector<Machine> machines = base.machines();
  machines[0].speed *= 1.01;
  EXPECT_NE(lp::structuralFingerprint(
                buildFractionalLp(
                    Instance(base.tasks(), machines, base.energyBudget()))
                    .model),
            fp);
}

// ---- Registry: the fr-lp solver and its LpWarmStartSlot ------------------

TEST(WarmStart, FrLpSlotCarriesAcrossEpochsWithoutChangingResults) {
  const Solver& frLp = SolverRegistry::instance().resolve("fr-lp");
  ASSERT_TRUE(frLp.capabilities().usesLpWarmStart);

  const Instance base = testing::corpusInstance(13, 1);
  const std::vector<double> factors = {1.0, 0.85, 1.3, 0.7, 0.95};

  LpWarmStartSlot slot;
  SolveContext warmCtx;
  warmCtx.lpWarm = &slot;
  SolveContext coldCtx;  // no slot: every epoch solves cold

  long usedOrRepaired = 0;
  for (std::size_t epoch = 0; epoch < factors.size(); ++epoch) {
    SCOPED_TRACE("epoch=" + std::to_string(epoch));
    const Instance inst = withBudget(base, base.energyBudget() * factors[epoch]);
    const SolveOutcome warm = frLp.solve(inst, warmCtx);
    const SolveOutcome cold = frLp.solve(inst, coldCtx);

    // The slot may only change the pivot path, never the outcome.
    EXPECT_DOUBLE_EQ(warm.totalAccuracy, cold.totalAccuracy);
    EXPECT_DOUBLE_EQ(warm.energy, cold.energy);
    EXPECT_DOUBLE_EQ(warm.upperBound, cold.upperBound);
    EXPECT_EQ(cold.lpCounters.warmStartsAttempted, 0);
    if (epoch > 0) {
      EXPECT_EQ(warm.lpCounters.warmStartsAttempted, 1);
      EXPECT_EQ(warm.lpCounters.warmStartsRejected, 0);
    }
    usedOrRepaired += warm.lpCounters.warmStartsUsed +
                      warm.lpCounters.warmStartsRepaired;
    EXPECT_FALSE(slot.basis.empty());  // refilled after every optimal solve
  }
  // The carry must actually engage across the sequence, not silently reject.
  EXPECT_EQ(usedOrRepaired, static_cast<long>(factors.size()) - 1);
}

TEST(WarmStart, FrLpSlotRejectsStructuralDrift) {
  const Solver& frLp = SolverRegistry::instance().resolve("fr-lp");
  LpWarmStartSlot slot;
  SolveContext ctx;
  ctx.lpWarm = &slot;

  const SolveOutcome first = frLp.solve(testing::corpusInstance(13, 0), ctx);
  ASSERT_TRUE(first.solved());
  ASSERT_FALSE(slot.basis.empty());

  // A different batch (different n) must fall back to a cold solve and say
  // so in the counters — and match the slot-less outcome exactly.
  const Instance other = testing::corpusInstance(13, 2);
  const SolveOutcome warm = frLp.solve(other, ctx);
  EXPECT_EQ(warm.lpCounters.warmStartsAttempted, 1);
  EXPECT_EQ(warm.lpCounters.warmStartsRejected, 1);
  EXPECT_EQ(warm.lpCounters.warmStartsUsed, 0);

  SolveContext coldCtx;
  const SolveOutcome cold = frLp.solve(other, coldCtx);
  EXPECT_DOUBLE_EQ(warm.totalAccuracy, cold.totalAccuracy);
  EXPECT_DOUBLE_EQ(warm.upperBound, cold.upperBound);
}

// ---- MIP: root-basis carry through solveDsctMip --------------------------

TEST(WarmStart, MipRootBasisCarry) {
  const Instance base = testing::corpusInstance(17, 0);
  lp::MipOptions options;

  const MipSolveSummary first = solveDsctMip(base, options);
  ASSERT_FALSE(first.result.rootBasis.empty());
  ASSERT_NE(first.lpStructure, 0u);

  const Instance drifted = withBudget(base, base.energyBudget() * 0.8);
  const MipSolveSummary cold = solveDsctMip(drifted, options);
  const MipSolveSummary warm =
      solveDsctMip(drifted, options, nullptr, &first.result.rootBasis,
                   first.lpStructure);

  EXPECT_DOUBLE_EQ(warm.totalAccuracy, cold.totalAccuracy);
  EXPECT_DOUBLE_EQ(warm.result.bestBound, cold.result.bestBound);
  EXPECT_GE(warm.result.lpCounters.warmStartsUsed +
                warm.result.lpCounters.warmStartsRepaired,
            1);
  EXPECT_EQ(cold.result.lpCounters.warmStartsAttempted, 0);
}

TEST(WarmStart, MipRootBasisStaleFingerprintRejected) {
  const Instance base = testing::corpusInstance(17, 0);
  lp::MipOptions options;
  const MipSolveSummary first = solveDsctMip(base, options);
  ASSERT_FALSE(first.result.rootBasis.empty());

  // Wrong fingerprint: the basis must not be consulted at all.
  const MipSolveSummary stale =
      solveDsctMip(base, options, nullptr, &first.result.rootBasis,
                   first.lpStructure ^ 0xdeadbeefULL);
  EXPECT_GE(stale.result.lpCounters.warmStartsAttempted, 1);
  EXPECT_GE(stale.result.lpCounters.warmStartsRejected, 1);
  EXPECT_EQ(stale.result.lpCounters.warmStartsUsed, 0);
  EXPECT_DOUBLE_EQ(stale.totalAccuracy, first.totalAccuracy);
}

// ---- Serving loop: replayed trace, warm starts on vs off -----------------

/// A trace whose epochs carry structurally identical batches (same size,
/// same θ multiset, same within-epoch deadline order), so the cross-epoch
/// fingerprint matches and the warm-start slot actually engages.
sim::ServingOptions replayOptions(bool lpWarmStarts) {
  sim::ServingOptions options;
  options.horizonSeconds = 4.0;
  options.epochSeconds = 1.0;
  options.energyBudgetPerEpoch = 60.0;
  options.lpWarmStarts = lpWarmStarts;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const double start = static_cast<double>(epoch);
    options.requestTrace.push_back({start + 0.10, 0.55, 0.73, 1.0});
    options.requestTrace.push_back({start + 0.20, 0.70, 1.31, 1.0});
    options.requestTrace.push_back({start + 0.30, 0.85, 2.57, 1.0});
  }
  return options;
}

TEST(WarmStart, ServingReplayBitIdenticalWarmOnVsOff) {
  const std::vector<Machine> machines = {{1.0, 0.8, "a"}, {1.6, 0.5, "b"}};

  const sim::ServingStats on =
      sim::runServing(machines, "mip-warm", replayOptions(true));
  const sim::ServingStats off =
      sim::runServing(machines, "mip-warm", replayOptions(false));

  // Identical service: the slot changed pivot work only.
  EXPECT_EQ(on.requests, off.requests);
  EXPECT_EQ(on.served, off.served);
  EXPECT_EQ(on.deadlineMisses, off.deadlineMisses);
  EXPECT_DOUBLE_EQ(on.meanAccuracy, off.meanAccuracy);
  EXPECT_DOUBLE_EQ(on.totalEnergy, off.totalEnergy);
  EXPECT_DOUBLE_EQ(on.meanLatency, off.meanLatency);
  EXPECT_EQ(on.epochs, off.epochs);

  // Node-level basis inheritance inside each MIP solve (children warm from
  // their parent's basis) counts into used/repaired in BOTH runs, so those
  // are nonzero even with the cross-epoch slot off. Rejections can only
  // come from cross-epoch fingerprint drift: none without a slot, and with
  // one exactly the first loaded epoch rejects (the epoch-0 batch is empty
  // — its arrivals land after the boundary — so the slot's first snapshot
  // has the trivial empty-batch structure).
  EXPECT_EQ(off.lpWarmStartsRejected, 0);
  EXPECT_EQ(on.lpWarmStartsRejected, 1);
  EXPECT_GT(off.lpPivots, 0);

  // The slot adds root-LP warm starts on top of the node-level ones: the
  // structurally identical later epochs must actually reuse the carried
  // basis (not merely attempt and reject it).
  EXPECT_GT(on.lpWarmStartsUsed + on.lpWarmStartsRepaired,
            off.lpWarmStartsUsed + off.lpWarmStartsRepaired);
}

}  // namespace
}  // namespace dsct
