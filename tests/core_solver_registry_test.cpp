// Conformance suite for the unified solver registry (src/core/).
//
// Every registered solver must: resolve by name and by alias, produce
// validator-clean schedules that respect the energy budget, repeat
// bit-identically when its capabilities claim determinism, and — for the
// paper's algorithms — match the direct solveApprox/solveFrOpt calls bit for
// bit (the registry is a dispatch layer, never a numeric one).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/solver_api.h"
#include "core/solver_registry.h"
#include "sched/approx.h"
#include "sched/fr_opt.h"
#include "sched/profile_cache.h"
#include "sched/validator.h"
#include "tests/test_support.h"
#include "util/check.h"

namespace dsct {
namespace {

using testing::corpusInstance;

constexpr std::uint64_t kSeed = 20240807u;

/// Cases each solver runs over: exact solvers branch-and-bound over the full
/// model, so they stay on the two smallest corpus members (n = 3 and n = 8)
/// to keep the suite in the fast lane.
std::vector<int> corpusCasesFor(const Solver& solver) {
  if (solver.capabilities().exact) return {0, 1};
  return {0, 1, 2, 3, 4, 5, 6, 7};
}

SolveContext limitedContext() {
  SolveContext context;
  context.mip.timeLimitSeconds = 2.0;
  context.lp.timeLimitSeconds = 10.0;
  return context;
}

void expectSameIntegral(const IntegralSchedule& a, const IntegralSchedule& b,
                        const Instance& inst) {
  for (int j = 0; j < inst.numTasks(); ++j) {
    EXPECT_EQ(a.machineOf(j), b.machineOf(j)) << "task " << j;
    EXPECT_EQ(a.duration(j), b.duration(j)) << "task " << j;
  }
}

TEST(SolverRegistry, AllAlgorithmsResolveByNameAndAlias) {
  const std::vector<std::pair<std::string, std::string>> nameAndAlias = {
      {"approx", "dsct-ea-approx"}, {"fr-opt", "fropt"},
      {"edf", "edf-nocompress"},    {"edf3", "edf-levels"},
      {"levels-opt", "edf3-opt"},   {"mip-warm", "mip"},
      {"fr-lp", "frlp"},
  };
  for (const auto& [name, alias] : nameAndAlias) {
    const Solver& byName = SolverRegistry::instance().resolve(name);
    EXPECT_EQ(byName.name(), name);
    // Aliases are pure synonyms: same registered instance, not a copy.
    EXPECT_EQ(&SolverRegistry::instance().resolve(alias), &byName) << alias;
  }
  // mip-cold has no alias but must still be registered.
  EXPECT_EQ(SolverRegistry::instance().resolve("mip-cold").name(), "mip-cold");
  EXPECT_GE(SolverRegistry::instance().solvers().size(), 8u);
}

TEST(SolverRegistry, UnknownNameFailsLoudlyWithKnownNamesListed) {
  EXPECT_EQ(SolverRegistry::instance().find("no-such-solver"), nullptr);
  try {
    SolverRegistry::instance().resolve("no-such-solver");
    FAIL() << "resolve() must throw for unknown names";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-solver"), std::string::npos);
    EXPECT_NE(what.find("approx"), std::string::npos)
        << "error should list the registered names: " << what;
  }
}

TEST(SolverRegistry, OutcomesAreValidatorCleanAndWithinBudget) {
  const SolveContext context = limitedContext();
  for (const Solver* solver : SolverRegistry::instance().solvers()) {
    for (int caseIdx : corpusCasesFor(*solver)) {
      const Instance inst = corpusInstance(kSeed, caseIdx);
      const SolveOutcome outcome = solver->solve(inst, context);
      SCOPED_TRACE(solver->name() + " case " + std::to_string(caseIdx));
      EXPECT_EQ(outcome.solver, solver->name());
      EXPECT_GE(outcome.wallSeconds, 0.0);
      if (!outcome.solved()) {
        // Only a time-limited exact solver may come back empty-handed.
        EXPECT_TRUE(solver->capabilities().exact);
        continue;
      }
      const double budgetCap =
          inst.energyBudget() * (1.0 + 1e-9) + 1e-9;
      EXPECT_LE(outcome.energy, budgetCap);
      EXPECT_EQ(outcome.scheduledTasks + outcome.droppedTasks,
                inst.numTasks());
      EXPECT_EQ(static_cast<int>(outcome.machineLoads.size()),
                inst.numMachines());
      if (solver->capabilities().integral) {
        ASSERT_TRUE(outcome.schedule.has_value());
        EXPECT_TRUE(validate(inst, *outcome.schedule).feasible);
      }
      if (solver->capabilities().fractional &&
          outcome.fractional.has_value()) {
        EXPECT_LE(outcome.fractional->energy(inst), budgetCap);
      }
    }
  }
}

TEST(SolverRegistry, DeterministicSolversRepeatBitIdentically) {
  const SolveContext context = limitedContext();
  for (const Solver* solver : SolverRegistry::instance().solvers()) {
    if (!solver->capabilities().deterministic) continue;
    for (int caseIdx : corpusCasesFor(*solver)) {
      const Instance inst = corpusInstance(kSeed, caseIdx);
      const SolveOutcome a = solver->solve(inst, context);
      const SolveOutcome b = solver->solve(inst, context);
      SCOPED_TRACE(solver->name() + " case " + std::to_string(caseIdx));
      EXPECT_EQ(a.totalAccuracy, b.totalAccuracy);
      EXPECT_EQ(a.energy, b.energy);
      EXPECT_EQ(a.upperBound, b.upperBound);
      EXPECT_EQ(a.scheduledTasks, b.scheduledTasks);
      ASSERT_EQ(a.schedule.has_value(), b.schedule.has_value());
      if (a.schedule.has_value()) {
        expectSameIntegral(*a.schedule, *b.schedule, inst);
      }
      ASSERT_EQ(a.machineLoads.size(), b.machineLoads.size());
      for (std::size_t r = 0; r < a.machineLoads.size(); ++r) {
        EXPECT_EQ(a.machineLoads[r], b.machineLoads[r]);
      }
    }
  }
}

TEST(SolverRegistry, ApproxOutcomeBitIdenticalToDirectCall) {
  for (int caseIdx : {0, 1, 2, 3, 4, 5, 6, 7}) {
    const Instance inst = corpusInstance(kSeed, caseIdx);
    const ApproxResult direct = solveApprox(inst);
    const SolveOutcome outcome =
        SolverRegistry::instance().resolve("approx").solve(inst,
                                                           SolveContext{});
    SCOPED_TRACE("case " + std::to_string(caseIdx));
    EXPECT_EQ(outcome.totalAccuracy, direct.totalAccuracy);
    EXPECT_EQ(outcome.energy, direct.energy);
    EXPECT_EQ(outcome.upperBound, direct.upperBound);
    EXPECT_EQ(outcome.guaranteeG, direct.guarantee.g);
    ASSERT_TRUE(outcome.schedule.has_value());
    expectSameIntegral(*outcome.schedule, direct.schedule, inst);
  }
}

TEST(SolverRegistry, FrOptOutcomeBitIdenticalToDirectCall) {
  for (int caseIdx : {0, 1, 2, 3, 4, 5, 6, 7}) {
    const Instance inst = corpusInstance(kSeed, caseIdx);
    const FrOptResult direct = solveFrOpt(inst);
    const SolveOutcome outcome =
        SolverRegistry::instance().resolve("fr-opt").solve(inst,
                                                           SolveContext{});
    SCOPED_TRACE("case " + std::to_string(caseIdx));
    EXPECT_EQ(outcome.totalAccuracy, direct.totalAccuracy);
    EXPECT_EQ(outcome.upperBound, direct.totalAccuracy);
    ASSERT_EQ(outcome.machineLoads.size(), direct.refinedProfile.size());
    for (std::size_t r = 0; r < outcome.machineLoads.size(); ++r) {
      EXPECT_EQ(outcome.machineLoads[r], direct.refinedProfile[r]);
    }
    EXPECT_EQ(outcome.counters.evaluations, direct.counters.evaluations);
    EXPECT_EQ(outcome.counters.directionLpSolves,
              direct.counters.directionLpSolves);
    ASSERT_TRUE(outcome.fractional.has_value());
    EXPECT_FALSE(outcome.schedule.has_value());
  }
}

TEST(SolverRegistry, SharedCacheContextIsNumericallyInvisible) {
  // The cross-solve ProfileCache changes the work, never the answer: cold
  // context, cache-attached cold solve, and cache-attached warm re-solve
  // must agree bit for bit (same invariant the serving loop relies on).
  ProfileCache cache;
  SolveContext cached;
  cached.frOpt.sharedCache = &cache;
  const Solver& approx = SolverRegistry::instance().resolve("approx");
  for (int caseIdx : {0, 2, 4, 6}) {
    const Instance inst = corpusInstance(kSeed, caseIdx);
    const SolveOutcome cold = approx.solve(inst, SolveContext{});
    const SolveOutcome first = approx.solve(inst, cached);
    const SolveOutcome warm = approx.solve(inst, cached);
    SCOPED_TRACE("case " + std::to_string(caseIdx));
    for (const SolveOutcome* other : {&first, &warm}) {
      EXPECT_EQ(cold.totalAccuracy, other->totalAccuracy);
      EXPECT_EQ(cold.energy, other->energy);
      EXPECT_EQ(cold.upperBound, other->upperBound);
      ASSERT_TRUE(other->schedule.has_value());
      expectSameIntegral(*cold.schedule, *other->schedule, inst);
    }
  }
  // The warm pass actually hit the cache (the context was not ignored).
  EXPECT_GT(cache.counters().hits, 0);
}

TEST(SolverRegistry, CapabilitiesDescribeOutputs) {
  const SolveContext context = limitedContext();
  for (const Solver* solver : SolverRegistry::instance().solvers()) {
    const SolverCapabilities caps = solver->capabilities();
    EXPECT_TRUE(caps.integral || caps.fractional) << solver->name();
    const Instance inst = corpusInstance(kSeed, 1);
    const SolveOutcome outcome = solver->solve(inst, context);
    if (!outcome.solved()) continue;
    if (outcome.schedule.has_value()) EXPECT_TRUE(caps.integral);
    if (outcome.fractional.has_value()) EXPECT_TRUE(caps.fractional);
  }
}

}  // namespace
}  // namespace dsct
