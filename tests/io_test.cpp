#include "io/instance_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "sched/approx.h"
#include "sched/validator.h"
#include "tests/test_support.h"
#include "util/check.h"
#include "util/rng.h"

namespace dsct {
namespace {

using testing::randomInstance;
using testing::tinyInstance;

void expectSameInstance(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.numTasks(), b.numTasks());
  ASSERT_EQ(a.numMachines(), b.numMachines());
  EXPECT_DOUBLE_EQ(a.energyBudget(), b.energyBudget());
  for (int r = 0; r < a.numMachines(); ++r) {
    EXPECT_DOUBLE_EQ(a.machine(r).speed, b.machine(r).speed);
    EXPECT_DOUBLE_EQ(a.machine(r).efficiency, b.machine(r).efficiency);
    EXPECT_EQ(a.machine(r).name, b.machine(r).name);
  }
  for (int j = 0; j < a.numTasks(); ++j) {
    EXPECT_DOUBLE_EQ(a.task(j).deadline, b.task(j).deadline);
    EXPECT_EQ(a.task(j).name, b.task(j).name);
    EXPECT_TRUE(a.task(j).accuracy == b.task(j).accuracy);
  }
}

TEST(InstanceIo, RoundTripTiny) {
  const Instance inst = tinyInstance(37.5);
  std::stringstream buffer;
  io::writeInstance(buffer, inst);
  const Instance back = io::readInstance(buffer);
  expectSameInstance(inst, back);
}

TEST(InstanceIo, RoundTripRandomGenerated) {
  for (int trial = 0; trial < 5; ++trial) {
    const Instance inst = randomInstance(deriveSeed(900, trial), 12, 4);
    std::stringstream buffer;
    io::writeInstance(buffer, inst);
    const Instance back = io::readInstance(buffer);
    expectSameInstance(inst, back);
  }
}

TEST(InstanceIo, RoundTripFiles) {
  const std::string path = ::testing::TempDir() + "/dsct_inst.txt";
  const Instance inst = randomInstance(3, 6, 2);
  io::writeInstanceFile(path, inst);
  expectSameInstance(inst, io::readInstanceFile(path));
}

TEST(InstanceIo, NamesWithSpacesSurvive) {
  std::vector<Task> tasks{
      Task{1.0, testing::twoSegment(), "my little task"}};
  std::vector<Machine> machines{Machine{1.0, 0.01, "RTX A2000 12GB"}};
  const Instance inst(std::move(tasks), std::move(machines), 5.0);
  std::stringstream buffer;
  io::writeInstance(buffer, inst);
  const Instance back = io::readInstance(buffer);
  EXPECT_EQ(back.task(0).name, "my little task");
  EXPECT_EQ(back.machine(0).name, "RTX A2000 12GB");
}

TEST(InstanceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "dsct-instance v1\n"
      "# a comment\n"
      "\n"
      "budget 10.0   # trailing comment\n"
      "machine m0 2.0 0.05\n"
      "task t0 1.5 2 0 0.1 3 0.9\n");
  const Instance inst = io::readInstance(in);
  EXPECT_EQ(inst.numTasks(), 1);
  EXPECT_DOUBLE_EQ(inst.energyBudget(), 10.0);
  EXPECT_DOUBLE_EQ(inst.task(0).fmax(), 3.0);
}

TEST(InstanceIo, RejectsMalformedInput) {
  const auto expectReject = [](const std::string& text) {
    std::stringstream in(text);
    EXPECT_THROW(io::readInstance(in), CheckError) << text;
  };
  expectReject("not-a-header\nbudget 1\n");
  expectReject("dsct-instance v2\nbudget 1\n");
  expectReject("dsct-instance v1\nmachine m0 1.0 0.01\n");  // no budget
  expectReject("dsct-instance v1\nbudget 1\nmachine m0 1.0\n");
  expectReject("dsct-instance v1\nbudget 1\nmachine m0 1.0 0.01\n"
               "task t0 1.0 2 0 0.1\n");  // too few coordinates
  expectReject("dsct-instance v1\nbudget abc\nmachine m0 1.0 0.01\n");
  expectReject("dsct-instance v1\nbudget 1\nfrobnicate x\n");
  expectReject("dsct-instance v1\nbudget 1\nmachine m0 1.0 0.01\n"
               "task t0 1.0 2 0 0.9 3 0.1\n");  // decreasing accuracy
}

TEST(InstanceIo, GarbageInputsThrowCleanly) {
  // Deterministic pseudo-random byte soup: the reader must throw CheckError
  // (never crash or accept) on every sample.
  Rng rng(20202);
  for (int trial = 0; trial < 50; ++trial) {
    std::string soup = "dsct-instance v1\n";
    const int lines = rng.uniformInt(1, 6);
    for (int l = 0; l < lines; ++l) {
      const int len = rng.uniformInt(1, 40);
      for (int i = 0; i < len; ++i) {
        soup += static_cast<char>(rng.uniformInt(32, 126));
      }
      soup += '\n';
    }
    std::stringstream in(soup);
    try {
      const Instance inst = io::readInstance(in);
      // Accepting is fine only if the soup happened to be vacuous (no
      // budget line would already throw, so this is unreachable unless a
      // line formed a valid directive set — astronomically unlikely but
      // not an error per se).
      SUCCEED();
    } catch (const CheckError&) {
      SUCCEED();
    } catch (...) {
      FAIL() << "non-CheckError escape on trial " << trial << ": " << soup;
    }
  }
}

TEST(ScheduleIo, RoundTrip) {
  const Instance inst = randomInstance(5, 8, 3);
  const IntegralSchedule schedule = solveApprox(inst).schedule;
  std::stringstream buffer;
  io::writeSchedule(buffer, schedule);
  const IntegralSchedule back = io::readSchedule(buffer, inst);
  ASSERT_EQ(back.numTasks(), schedule.numTasks());
  for (int j = 0; j < schedule.numTasks(); ++j) {
    EXPECT_EQ(back.machineOf(j), schedule.machineOf(j));
    EXPECT_DOUBLE_EQ(back.duration(j), schedule.duration(j));
    EXPECT_DOUBLE_EQ(back.start(j), schedule.start(j));
  }
  EXPECT_DOUBLE_EQ(back.totalAccuracy(inst), schedule.totalAccuracy(inst));
}

TEST(ScheduleIo, RejectsBadIndices) {
  const Instance inst = tinyInstance();
  std::stringstream bad1("dsct-schedule v1\nassign 7 0 1.0\n");
  EXPECT_THROW(io::readSchedule(bad1, inst), CheckError);
  std::stringstream bad2("dsct-schedule v1\nassign 0 9 1.0\n");
  EXPECT_THROW(io::readSchedule(bad2, inst), CheckError);
  std::stringstream bad3("dsct-schedule v1\nassign 0 0\n");
  EXPECT_THROW(io::readSchedule(bad3, inst), CheckError);
}

TEST(ScheduleIo, FullPipelineThroughFiles) {
  // Solve, persist, reload, validate: the tool workflow.
  const std::string dir = ::testing::TempDir();
  const Instance inst = randomInstance(11, 10, 3);
  io::writeInstanceFile(dir + "/pipeline_inst.txt", inst);
  const Instance loaded = io::readInstanceFile(dir + "/pipeline_inst.txt");
  const ApproxResult res = solveApprox(loaded);
  io::writeScheduleFile(dir + "/pipeline_sched.txt", res.schedule);
  const IntegralSchedule back =
      io::readScheduleFile(dir + "/pipeline_sched.txt", loaded);
  EXPECT_TRUE(validate(loaded, back).feasible);
  EXPECT_NEAR(back.totalAccuracy(loaded), res.totalAccuracy, 1e-12);
}

}  // namespace
}  // namespace dsct
