// Regression tests for the pairwise profile search (fr_opt.cpp).
//
// The pre-fix search probed transfer sizes up to the donor's *entire* energy
// while clamping the recipient at the horizon: a probe past the recipient's
// headroom deducted the full delta from the donor but credited only part of
// it, silently destroying energy. Because the quick screen sampled at
// available/2, available/64 and available — all far past the headroom on
// horizon-bound instances — whole improving directions were dismissed. The
// fixed search caps the interval at min(donor energy, recipient headroom),
// so every probed profile conserves energy exactly.
#include <cmath>

#include <gtest/gtest.h>

#include "sched/fr_opt.h"
#include "sched/naive_solution.h"
#include "sched/profile_evaluator.h"
#include "sched/types.h"
#include "tests/test_support.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dsct {
namespace {

using testing::randomInstance;

/// One task at the horizon (d = 10 s) whose accuracy curve kinks at
/// 17.9 TFLOP (slope 0.05 before, 0.025 after), on an efficient machine r0
/// (P = 20 W) and an inefficient machine r1 (P = 25 W). With loads
/// (9.95 s, 8 s) the only improving move sends energy from r1 to the
/// nearly-full r0, whose headroom is (10 − 9.95) · 20 W = 1 J — while r1
/// holds 8 · 25 = 200 J. The move gains (1/20 − 1/25) · σ_R per Joule.
Instance horizonBoundInstance() {
  std::vector<Task> tasks;
  tasks.push_back(Task{10.0,
                       PiecewiseLinearAccuracy::fromPoints(
                           {0.0, 17.9, 21.9}, {0.0, 0.895, 0.995}),
                       "t0"});
  std::vector<Machine> machines{Machine{1.0, 0.05, "r0"},
                                Machine{1.0, 0.04, "r1"}};
  return Instance(std::move(tasks), std::move(machines), 399.0);
}

TEST(PairSearch, FindsMoveTheUncappedScreenDismisses) {
  const Instance inst = horizonBoundInstance();
  const ProfileEvaluator evaluator(inst);
  const EnergyProfile loads{9.95, 8.0};
  const double base = evaluator.evaluate(loads);
  EXPECT_NEAR(base, 0.89625, 1e-12);

  // Why the pre-fix screen failed here: probing this direction at the old
  // uncapped sizes (available = 200 J → probes at 100, 3.125 and 200 J)
  // clamps the recipient at the horizon and destroys the excess energy, so
  // every probed value sits *below* the base and the direction is skipped.
  const double horizon = inst.maxDeadline();
  const auto leakyValueAt = [&](double delta) {
    EnergyProfile profile = loads;
    profile[1] -= delta / inst.machine(1).power();
    profile[0] = std::min(horizon, profile[0] + delta / inst.machine(0).power());
    return evaluator.evaluate(profile);
  };
  const double available = loads[1] * inst.machine(1).power();
  EXPECT_NEAR(available, 200.0, 1e-12);
  EXPECT_LT(leakyValueAt(available / 2.0), base);
  EXPECT_LT(leakyValueAt(available / 64.0), base);
  EXPECT_LT(leakyValueAt(available), base);

  // The capped search probes only energy-conserving sizes and finds the
  // 1-Joule move: work grows by (1/20 − 1/25) TFLOP/J · 1 J = 0.01 TFLOP
  // past the kink, so accuracy rises by 0.01 · 0.025 = 0.00025.
  const std::optional<PairMove> move =
      bestPairMove(inst, evaluator, loads, base);
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->from, 1);
  EXPECT_EQ(move->to, 0);
  EXPECT_NEAR(move->delta, 1.0, 1e-6);
  EXPECT_NEAR(move->accuracy, 0.8965, 1e-9);
  // Exact conservation: the donor loses delta/P_from seconds, the recipient
  // gains delta/P_to seconds, and no probe ever clamps.
  EXPECT_NEAR(profileEnergy(inst, move->profile),
              profileEnergy(inst, loads), 1e-9);
  EXPECT_LE(move->profile[0], horizon + 1e-12);
}

TEST(PairSearch, MovesConserveEnergyAndNeverDecreaseAccuracy) {
  for (int trial = 0; trial < 8; ++trial) {
    const Instance inst = randomInstance(deriveSeed(8080, trial), 10, 3,
                                         0.3, 0.5, 0.1, 2.0);
    const ProfileEvaluator evaluator(inst);
    const NaiveSolution naive = computeNaiveSolution(inst);
    EnergyProfile loads = naive.schedule.machineLoads();
    double base = evaluator.evaluate(loads);
    // Follow the move chain a few steps; every accepted move must conserve
    // energy and strictly improve.
    for (int step = 0; step < 4; ++step) {
      const std::optional<PairMove> move =
          bestPairMove(inst, evaluator, loads, base);
      if (!move.has_value()) break;
      EXPECT_NEAR(profileEnergy(inst, move->profile),
                  profileEnergy(inst, loads),
                  1e-9 * std::max(1.0, profileEnergy(inst, loads)))
          << "trial " << trial << " step " << step;
      EXPECT_GT(move->accuracy, base) << "trial " << trial;
      for (int r = 0; r < inst.numMachines(); ++r) {
        EXPECT_GE(move->profile[static_cast<std::size_t>(r)], -1e-9);
        EXPECT_LE(move->profile[static_cast<std::size_t>(r)],
                  inst.maxDeadline() + 1e-9);
      }
      loads = move->profile;
      base = move->accuracy;
    }
  }
}

TEST(PairProbeProperty, EveryProbedProfileConservesEnergyAndHeadroom) {
  // Property test via the PairProbeHook: not just *accepted* moves — every
  // profile the search ever evaluates (quick-screen probes, ternary-search
  // probes, the final move profile) must conserve energy exactly and stay
  // inside [0, horizon] on every machine. This is the invariant whose
  // violation caused the energy-leak regression this suite pins.
  long long probes = 0;
  for (int c = 0; c < 3 * testing::kCorpusRegimes; ++c) {
    const Instance inst = testing::corpusInstance(
        deriveSeed(515151u, static_cast<std::uint64_t>(c)), c);
    if (inst.numMachines() < 2) continue;  // no pair directions to probe
    const ProfileEvaluator evaluator(inst);
    const NaiveSolution naive = computeNaiveSolution(inst);
    EnergyProfile loads = naive.schedule.machineLoads();
    double base = evaluator.evaluate(loads);
    const double horizon = inst.maxDeadline();
    for (int step = 0; step < 3; ++step) {
      const double baseEnergy = profileEnergy(inst, loads);
      const PairProbeHook hook = [&](int from, int to, double delta,
                                     const EnergyProfile& probe) {
        ++probes;
        ASSERT_GE(from, 0);
        ASSERT_LT(from, inst.numMachines());
        ASSERT_GE(to, 0);
        ASSERT_LT(to, inst.numMachines());
        EXPECT_NE(from, to);
        EXPECT_GE(delta, 0.0);
        // Exact conservation: the donor loses delta/P_from seconds, the
        // recipient gains delta/P_to — the probe never clamps.
        EXPECT_NEAR(profileEnergy(inst, probe), baseEnergy,
                    1e-9 * std::max(1.0, baseEnergy))
            << "case " << c << " step " << step << " dir " << from << "->"
            << to << " delta " << delta;
        // Recipient headroom: no probe pushes any machine past the horizon
        // or below zero.
        for (int r = 0; r < inst.numMachines(); ++r) {
          EXPECT_GE(probe[static_cast<std::size_t>(r)], -1e-12)
              << "case " << c << " machine " << r;
          EXPECT_LE(probe[static_cast<std::size_t>(r)], horizon + 1e-12)
              << "case " << c << " machine " << r;
        }
      };
      const std::optional<PairMove> move =
          bestPairMove(inst, evaluator, loads, base, nullptr, &hook);
      if (!move.has_value()) break;
      loads = move->profile;
      base = move->accuracy;
    }
  }
  // The corpus (horizon-bound regime included) must actually drive probes,
  // or the property is vacuously true.
  EXPECT_GT(probes, 0);
}

TEST(PairSearch, ParallelMatchesSerialBitwise) {
  const Instance inst = horizonBoundInstance();
  const ProfileEvaluator evaluator(inst);
  const EnergyProfile loads{9.95, 8.0};
  const double base = evaluator.evaluate(loads);

  const std::optional<PairMove> serial =
      bestPairMove(inst, evaluator, loads, base);
  ThreadPool pool(3);
  const std::optional<PairMove> parallel =
      bestPairMove(inst, evaluator, loads, base, &pool);
  ASSERT_EQ(serial.has_value(), parallel.has_value());
  ASSERT_TRUE(serial.has_value());
  EXPECT_EQ(serial->from, parallel->from);
  EXPECT_EQ(serial->to, parallel->to);
  EXPECT_EQ(serial->delta, parallel->delta);        // bit-identical
  EXPECT_EQ(serial->accuracy, parallel->accuracy);  // bit-identical
  ASSERT_EQ(serial->profile.size(), parallel->profile.size());
  for (std::size_t r = 0; r < serial->profile.size(); ++r) {
    EXPECT_EQ(serial->profile[r], parallel->profile[r]);
  }
}

}  // namespace
}  // namespace dsct
