#include "sched/render.h"

#include <gtest/gtest.h>

#include "sched/approx.h"
#include "tests/test_support.h"
#include "util/check.h"

namespace dsct {
namespace {

using testing::randomInstance;
using testing::tinyInstance;

TEST(RenderGantt, ShowsMachinesAndTasks) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s = IntegralSchedule::build(inst, {0, 1}, {0.5, 1.0});
  const std::string out = renderGantt(inst, s);
  EXPECT_NE(out.find("m0"), std::string::npos);
  EXPECT_NE(out.find("m1"), std::string::npos);
  // Task ids appear in the lanes.
  EXPECT_NE(out.find('0'), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);
  // Accuracy summary appended by default.
  EXPECT_NE(out.find("tasks:"), std::string::npos);
}

TEST(RenderGantt, WidthRespected) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s = IntegralSchedule::build(inst, {0, 0}, {0.5, 0.5});
  RenderOptions options;
  options.width = 30;
  options.showAccuracy = false;
  const std::string out = renderGantt(inst, s, options);
  // Each machine line: 14 name + " |" + width + "|\n".
  const std::size_t firstLine = out.find('\n');
  ASSERT_NE(firstLine, std::string::npos);
  EXPECT_EQ(firstLine, 14u + 2u + 30u + 1u);
  EXPECT_EQ(out.find("tasks:"), std::string::npos);
}

TEST(RenderGantt, EmptyScheduleStillRenders) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s = IntegralSchedule::build(inst, {-1, -1}, {0, 0});
  const std::string out = renderGantt(inst, s);
  EXPECT_NE(out.find("m0"), std::string::npos);
}

TEST(RenderGantt, RejectsSillyWidth) {
  const Instance inst = tinyInstance(1e9);
  const IntegralSchedule s = IntegralSchedule::build(inst, {-1, -1}, {0, 0});
  RenderOptions options;
  options.width = 2;
  EXPECT_THROW(renderGantt(inst, s, options), CheckError);
}

TEST(RenderGantt, HandlesRealSchedules) {
  const Instance inst = randomInstance(8, 12, 3);
  const ApproxResult res = solveApprox(inst);
  const std::string out = renderGantt(inst, res.schedule);
  EXPECT_GT(out.size(), 100u);
}

}  // namespace
}  // namespace dsct
