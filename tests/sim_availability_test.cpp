// Availability layer: deterministic departure traces, whole-epoch
// granularity, loud option validation, and the battery store.
#include <gtest/gtest.h>

#include <vector>

#include "sim/availability.h"
#include "util/check.h"

namespace dsct {
namespace {

sim::AvailabilityOptions departingOptions() {
  sim::AvailabilityOptions o;
  o.enabled = true;
  o.seed = 4242;
  o.departMtbfSeconds = 2.0;
  o.departMeanSeconds = 1.5;
  return o;
}

// ---------------------------------------------------- AvailabilityTrace ---

TEST(AvailabilityTrace, DisabledIsTransparent) {
  const sim::AvailabilityTrace trace;
  EXPECT_FALSE(trace.enabled());
  EXPECT_FALSE(trace.batteryActive());
  EXPECT_TRUE(trace.presentInEpoch(0, 0));
  EXPECT_TRUE(trace.presentInEpoch(17, 123));
  EXPECT_EQ(trace.absentCount(5), 0);
}

TEST(AvailabilityTrace, GenerateIsDeterministicAndSeedSensitive) {
  const auto options = departingOptions();
  const auto a = sim::AvailabilityTrace::generate(4, 20.0, 40, 0.5, options);
  const auto b = sim::AvailabilityTrace::generate(4, 20.0, 40, 0.5, options);
  EXPECT_EQ(a, b);  // pure function of (options, machines, horizon)
  EXPECT_TRUE(a.enabled());
  EXPECT_EQ(a.numMachines(), 4);
  EXPECT_EQ(a.numEpochs(), 40);
  // MTBF 2 s over 20 s on 4 machines: departures definitely happen.
  int absences = 0;
  for (long long e = 0; e < 40; ++e) absences += a.absentCount(e);
  EXPECT_GT(absences, 0);
  // A different seed reshuffles the schedule.
  auto reseeded = options;
  reseeded.seed = 4243;
  const auto c = sim::AvailabilityTrace::generate(4, 20.0, 40, 0.5, reseeded);
  EXPECT_NE(a, c);
}

TEST(AvailabilityTrace, ZeroMtbfDisablesDepartures) {
  auto options = departingOptions();
  options.departMtbfSeconds = 0.0;
  const auto trace = sim::AvailabilityTrace::generate(3, 10.0, 20, 0.5, options);
  EXPECT_TRUE(trace.enabled());
  for (long long e = 0; e < 20; ++e) {
    EXPECT_EQ(trace.absentCount(e), 0);
  }
}

TEST(AvailabilityTrace, ExplicitTraceHasWholeEpochGranularity) {
  // Machine 0 departs for epochs 1–2, machine 1 never leaves.
  const sim::AvailabilityTrace trace(
      {{false, true, true, false}, {false, false, false, false}},
      departingOptions());
  EXPECT_EQ(trace.numMachines(), 2);
  EXPECT_EQ(trace.numEpochs(), 4);
  EXPECT_TRUE(trace.presentInEpoch(0, 0));
  EXPECT_FALSE(trace.presentInEpoch(0, 1));
  EXPECT_FALSE(trace.presentInEpoch(0, 2));
  EXPECT_TRUE(trace.presentInEpoch(0, 3));  // the machine returns
  EXPECT_TRUE(trace.presentInEpoch(1, 1));
  EXPECT_EQ(trace.absentCount(1), 1);
  EXPECT_EQ(trace.absentCount(3), 0);
  // Epochs beyond the trace treat every machine as present.
  EXPECT_TRUE(trace.presentInEpoch(0, 99));
  EXPECT_EQ(trace.absentCount(99), 0);
}

TEST(AvailabilityTrace, ExplicitTraceRejectsRaggedEpochs) {
  EXPECT_THROW(sim::AvailabilityTrace(
                   {{false, true}, {false}}, departingOptions()),
               CheckError);
}

TEST(AvailabilityTrace, OptionValidationRejectsEachBadField) {
  const auto generate = [](const sim::AvailabilityOptions& o) {
    return sim::AvailabilityTrace::generate(2, 10.0, 20, 0.5, o);
  };
  {
    auto o = departingOptions();
    o.departMtbfSeconds = -1.0;
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = departingOptions();
    o.departMeanSeconds = 0.0;  // departures enabled → mean must be positive
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = departingOptions();
    o.batteryCapacityJoules = -5.0;
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = departingOptions();
    o.batteryCapacityJoules = 10.0;
    o.batteryInitialFraction = 1.5;
    EXPECT_THROW(generate(o), CheckError);
    o.batteryInitialFraction = -0.1;
    EXPECT_THROW(generate(o), CheckError);
  }
  {
    auto o = departingOptions();
    o.rechargeWatts = -2.0;
    EXPECT_THROW(generate(o), CheckError);
  }
}

// --------------------------------------------------------- BatteryModel ---

TEST(BatteryModel, InactiveByDefault) {
  const sim::BatteryModel battery;
  EXPECT_FALSE(battery.active());
}

TEST(BatteryModel, DrainClampsAtZeroAndRechargeAtCapacity) {
  sim::AvailabilityOptions o;
  o.enabled = true;
  o.batteryCapacityJoules = 10.0;
  o.batteryInitialFraction = 0.5;
  o.rechargeWatts = 2.0;
  sim::BatteryModel battery(2, o);
  ASSERT_TRUE(battery.active());
  EXPECT_DOUBLE_EQ(battery.capacityJoules(), 10.0);
  EXPECT_DOUBLE_EQ(battery.charge(0), 5.0);
  EXPECT_DOUBLE_EQ(battery.charge(1), 5.0);

  battery.drain(0, 3.0);
  EXPECT_DOUBLE_EQ(battery.charge(0), 2.0);
  EXPECT_DOUBLE_EQ(battery.charge(1), 5.0);  // per-machine stores
  battery.drain(0, 100.0);                   // over-drain clamps at empty
  EXPECT_DOUBLE_EQ(battery.charge(0), 0.0);

  battery.recharge(1.0);  // +2 J each
  EXPECT_DOUBLE_EQ(battery.charge(0), 2.0);
  EXPECT_DOUBLE_EQ(battery.charge(1), 7.0);
  battery.recharge(100.0);  // clamped at capacity
  EXPECT_DOUBLE_EQ(battery.charge(0), 10.0);
  EXPECT_DOUBLE_EQ(battery.charge(1), 10.0);
}

TEST(BatteryModel, ZeroRechargeRateIsExactNoOp) {
  sim::AvailabilityOptions o;
  o.enabled = true;
  o.batteryCapacityJoules = 8.0;
  sim::BatteryModel battery(1, o);
  battery.drain(0, 3.0);
  battery.recharge(10.0);
  EXPECT_DOUBLE_EQ(battery.charge(0), 5.0);
}

}  // namespace
}  // namespace dsct
