#include "experiments/report.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace dsct {
namespace {

TEST(MarkdownTable, RendersHeaderSeparatorAndRows) {
  const std::string table =
      markdownTable({"a", "b"}, {{1.0, 2.5}, {3.0, 4.25}}, 2);
  EXPECT_NE(table.find("| a | b |"), std::string::npos);
  EXPECT_NE(table.find("|---|---|"), std::string::npos);
  EXPECT_NE(table.find("| 1.00 | 2.50 |"), std::string::npos);
  EXPECT_NE(table.find("| 3.00 | 4.25 |"), std::string::npos);
}

TEST(MarkdownTable, RejectsArityMismatch) {
  EXPECT_THROW(markdownTable({"a"}, {{1.0, 2.0}}), CheckError);
}

TEST(GenerateReport, SectionsToggle) {
  ExperimentRunner runner;
  ReportConfig config;
  config.includeFig3 = false;
  config.includeFig4 = false;
  config.includeTable1 = false;
  config.includeFig5 = true;
  config.includeFig6 = false;
  const std::string report = generateReport(config, runner);
  EXPECT_EQ(report.find("Fig. 3"), std::string::npos);
  EXPECT_EQ(report.find("Fig. 4a"), std::string::npos);
  EXPECT_EQ(report.find("Table 1"), std::string::npos);
  EXPECT_NE(report.find("Fig. 5"), std::string::npos);
  EXPECT_NE(report.find("energy-gain headline"), std::string::npos);
}

TEST(GenerateReport, Fig6SectionsBothScenarios) {
  ExperimentRunner runner;
  ReportConfig config;
  config.includeFig3 = false;
  config.includeFig4 = false;
  config.includeTable1 = false;
  config.includeFig5 = false;
  config.includeFig6 = true;
  const std::string report = generateReport(config, runner);
  EXPECT_NE(report.find("Fig. 6a"), std::string::npos);
  EXPECT_NE(report.find("Fig. 6b"), std::string::npos);
}

}  // namespace
}  // namespace dsct
