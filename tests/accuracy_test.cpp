#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "accuracy/exponential.h"
#include "accuracy/fit.h"
#include "accuracy/levels.h"
#include "accuracy/piecewise.h"
#include "util/check.h"

namespace dsct {
namespace {

PiecewiseLinearAccuracy sample() {
  // Slopes 0.4, 0.2, 0.1 over [0,1], [1,2], [2,4].
  return PiecewiseLinearAccuracy::fromPoints({0.0, 1.0, 2.0, 4.0},
                                             {0.1, 0.5, 0.7, 0.9});
}

TEST(Piecewise, BasicAccessors) {
  const auto f = sample();
  EXPECT_EQ(f.numSegments(), 3);
  EXPECT_DOUBLE_EQ(f.fmax(), 4.0);
  EXPECT_DOUBLE_EQ(f.amin(), 0.1);
  EXPECT_DOUBLE_EQ(f.amax(), 0.9);
  EXPECT_DOUBLE_EQ(f.slope(0), 0.4);
  EXPECT_DOUBLE_EQ(f.slope(2), 0.1);
  EXPECT_DOUBLE_EQ(f.theta(), 0.4);
}

TEST(Piecewise, ValueInterpolatesAndClamps) {
  const auto f = sample();
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.1);
  EXPECT_DOUBLE_EQ(f.value(0.5), 0.3);
  EXPECT_DOUBLE_EQ(f.value(1.0), 0.5);
  EXPECT_DOUBLE_EQ(f.value(3.0), 0.8);
  EXPECT_DOUBLE_EQ(f.value(4.0), 0.9);
  EXPECT_DOUBLE_EQ(f.value(-1.0), 0.1);   // clamp below
  EXPECT_DOUBLE_EQ(f.value(100.0), 0.9);  // clamp above
}

TEST(Piecewise, SegmentOf) {
  const auto f = sample();
  EXPECT_EQ(f.segmentOf(0.0), 0);
  EXPECT_EQ(f.segmentOf(0.99), 0);
  EXPECT_EQ(f.segmentOf(1.0), 1);
  EXPECT_EQ(f.segmentOf(3.9), 2);
  EXPECT_EQ(f.segmentOf(4.0), 2);
  EXPECT_EQ(f.segmentOf(99.0), 2);
}

TEST(Piecewise, MarginalGainAndLossAtBreakpoints) {
  const auto f = sample();
  // Interior of a segment: gain == loss == slope.
  EXPECT_DOUBLE_EQ(f.marginalGain(0.5), 0.4);
  EXPECT_DOUBLE_EQ(f.marginalLoss(0.5), 0.4);
  // At a breakpoint: gain is the right slope, loss the left slope.
  EXPECT_DOUBLE_EQ(f.marginalGain(1.0), 0.2);
  EXPECT_DOUBLE_EQ(f.marginalLoss(1.0), 0.4);
  // At the ends.
  EXPECT_DOUBLE_EQ(f.marginalGain(0.0), 0.4);
  EXPECT_DOUBLE_EQ(f.marginalGain(4.0), 0.0);
  EXPECT_DOUBLE_EQ(f.marginalLoss(4.0), 0.1);
}

TEST(Piecewise, InverseRoundTrips) {
  const auto f = sample();
  for (double a : {0.1, 0.3, 0.5, 0.6, 0.7, 0.85, 0.9}) {
    const double flops = f.inverse(a);
    EXPECT_NEAR(f.value(flops), a, 1e-12) << "a=" << a;
  }
  EXPECT_DOUBLE_EQ(f.inverse(0.1), 0.0);
  EXPECT_DOUBLE_EQ(f.inverse(0.9), 4.0);
  EXPECT_THROW(f.inverse(0.95), CheckError);
}

TEST(Piecewise, SegmentView) {
  const auto f = sample();
  const AccuracySegment seg = f.segment(1);
  EXPECT_DOUBLE_EQ(seg.slope, 0.2);
  EXPECT_DOUBLE_EQ(seg.fLo, 1.0);
  EXPECT_DOUBLE_EQ(seg.fHi, 2.0);
  EXPECT_DOUBLE_EQ(seg.flops(), 1.0);
}

TEST(Piecewise, RejectsNonConcave) {
  EXPECT_THROW(PiecewiseLinearAccuracy::fromPoints({0.0, 1.0, 2.0},
                                                   {0.0, 0.1, 0.5}),
               CheckError);
}

TEST(Piecewise, RejectsDecreasingValues) {
  EXPECT_THROW(
      PiecewiseLinearAccuracy::fromPoints({0.0, 1.0}, {0.5, 0.2}),
      CheckError);
}

TEST(Piecewise, RejectsBadBreakpoints) {
  EXPECT_THROW(
      PiecewiseLinearAccuracy::fromPoints({0.5, 1.0}, {0.0, 0.2}),
      CheckError);
  EXPECT_THROW(
      PiecewiseLinearAccuracy::fromPoints({0.0, 0.0}, {0.0, 0.2}),
      CheckError);
  EXPECT_THROW(PiecewiseLinearAccuracy::fromPoints({0.0}, {0.0}), CheckError);
}

TEST(Piecewise, RejectsOutOfRangeAccuracy) {
  EXPECT_THROW(
      PiecewiseLinearAccuracy::fromPoints({0.0, 1.0}, {0.0, 1.5}),
      CheckError);
}

TEST(Piecewise, LinearFactory) {
  const auto f = PiecewiseLinearAccuracy::linear(0.1, 0.9, 2.0);
  EXPECT_EQ(f.numSegments(), 1);
  EXPECT_DOUBLE_EQ(f.value(1.0), 0.5);
}

TEST(Exponential, MatchesClosedForm) {
  const ExponentialAccuracyModel model(0.001, 0.82, 0.1);
  EXPECT_DOUBLE_EQ(model.value(0.0), 0.001);
  EXPECT_NEAR(model.derivative(0.0), 0.1, 1e-12);
  // Monotone increasing, concave.
  double prev = model.value(0.0);
  double prevSlope = model.derivative(0.0);
  for (double f = 0.5; f < 40.0; f += 0.5) {
    EXPECT_GT(model.value(f), prev);
    EXPECT_LT(model.derivative(f), prevSlope);
    prev = model.value(f);
    prevSlope = model.derivative(f);
  }
}

TEST(Exponential, CoverageInversion) {
  const ExponentialAccuracyModel model(0.001, 0.82, 0.5);
  const double f = model.flopsForCoverage(0.01);
  EXPECT_NEAR(model.value(f), 0.82 - 0.01 * (0.82 - 0.001), 1e-12);
  EXPECT_THROW(model.flopsForCoverage(0.0), CheckError);
}

TEST(Exponential, RejectsBadParameters) {
  EXPECT_THROW(ExponentialAccuracyModel(0.5, 0.4, 0.1), CheckError);
  EXPECT_THROW(ExponentialAccuracyModel(0.0, 0.8, -1.0), CheckError);
  EXPECT_THROW(ExponentialAccuracyModel(-0.1, 0.8, 0.1), CheckError);
}

TEST(Breakpoints, UniformSpacing) {
  const auto bp = makeBreakpoints(10.0, 5, BreakpointSpacing::kUniform);
  ASSERT_EQ(bp.size(), 6u);
  EXPECT_DOUBLE_EQ(bp.front(), 0.0);
  EXPECT_DOUBLE_EQ(bp.back(), 10.0);
  EXPECT_DOUBLE_EQ(bp[1], 2.0);
}

TEST(Breakpoints, GeometricSpacingIsDenserNearZero) {
  const auto bp = makeBreakpoints(10.0, 4, BreakpointSpacing::kGeometric);
  ASSERT_EQ(bp.size(), 5u);
  EXPECT_DOUBLE_EQ(bp.front(), 0.0);
  EXPECT_DOUBLE_EQ(bp.back(), 10.0);
  for (std::size_t k = 0; k + 2 < bp.size(); ++k) {
    EXPECT_LT(bp[k + 1] - bp[k], bp[k + 2] - bp[k + 1]);
  }
}

TEST(FitInterpolate, EndpointsExactAndConcave) {
  const ExponentialAccuracyModel model(0.001, 0.82, 0.1);
  const double fmax = model.flopsForCoverage(0.01);
  const auto fit = fitInterpolate(
      model, makeBreakpoints(fmax, 5, BreakpointSpacing::kGeometric));
  EXPECT_DOUBLE_EQ(fit.amin(), 0.001);
  EXPECT_NEAR(fit.amax(), 0.82, 1e-12);
  EXPECT_EQ(fit.numSegments(), 5);
  // Construction validates concavity; also check the fit tracks the model.
  for (double f = 0.0; f <= fmax; f += fmax / 37.0) {
    EXPECT_NEAR(fit.value(f), model.value(f), 0.05);
  }
}

TEST(FitLeastSquares, ApproximatesSmoothConcaveFunction) {
  const ExponentialAccuracyModel model(0.0, 0.8, 0.4);
  const double fmax = model.flopsForCoverage(0.02);
  const auto fit = fitLeastSquares(
      [&](double f) { return model.value(f); },
      makeBreakpoints(fmax, 6, BreakpointSpacing::kGeometric));
  for (double f = 0.0; f <= fmax; f += fmax / 23.0) {
    EXPECT_NEAR(fit.value(f), model.value(f), 0.04);
  }
}

TEST(MakePaperAccuracy, MatchesPaperParameters) {
  const auto acc = makePaperAccuracy(0.001, 0.82, 0.1);
  EXPECT_EQ(acc.numSegments(), 5);
  EXPECT_DOUBLE_EQ(acc.amin(), 0.001);
  EXPECT_NEAR(acc.amax(), 0.82, 1e-9);
  EXPECT_GT(acc.fmax(), 0.0);
  // The first-segment slope tracks θ (the interpolated chord is slightly
  // shallower than the true derivative at 0).
  EXPECT_GT(acc.theta(), 0.05);
  EXPECT_LT(acc.theta(), 0.12);
}

TEST(MakePaperAccuracy, HigherThetaMeansSmallerFmax) {
  const auto slow = makePaperAccuracy(0.001, 0.82, 0.1);
  const auto fast = makePaperAccuracy(0.001, 0.82, 1.0);
  EXPECT_GT(slow.fmax(), fast.fmax());
  EXPECT_NEAR(slow.fmax() / fast.fmax(), 10.0, 1e-6);
}

TEST(Isotonic, ProjectsToNonIncreasing) {
  const std::vector<double> ys{3.0, 1.0, 2.0, 0.5};
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0};
  const auto out = isotonicNonIncreasing(ys, w);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    EXPECT_GE(out[i], out[i + 1] - 1e-12);
  }
  // Pool of (1.0, 2.0) should average to 1.5.
  EXPECT_DOUBLE_EQ(out[1], 1.5);
  EXPECT_DOUBLE_EQ(out[2], 1.5);
}

TEST(Isotonic, AlreadySortedUnchanged) {
  const std::vector<double> ys{3.0, 2.0, 1.0};
  const std::vector<double> w{1.0, 2.0, 3.0};
  EXPECT_EQ(isotonicNonIncreasing(ys, w), ys);
}

TEST(Isotonic, WeightsMatter) {
  const std::vector<double> ys{1.0, 3.0};
  const std::vector<double> w{3.0, 1.0};
  const auto out = isotonicNonIncreasing(ys, w);
  EXPECT_DOUBLE_EQ(out[0], 1.5);  // (1*3 + 3*1) / 4
  EXPECT_DOUBLE_EQ(out[1], 1.5);
}

TEST(Levels, ForTargetsSortedAndClamped) {
  const auto acc = PiecewiseLinearAccuracy::fromPoints({0.0, 1.0, 2.0, 4.0},
                                                       {0.1, 0.5, 0.7, 0.9});
  const auto levels = levelsForTargets(acc, {0.95, 0.5, 0.3});
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_LT(levels[0].flops, levels[1].flops);
  EXPECT_LT(levels[1].flops, levels[2].flops);
  EXPECT_DOUBLE_EQ(levels[0].accuracy, 0.3);
  EXPECT_DOUBLE_EQ(levels[1].accuracy, 0.5);
  EXPECT_DOUBLE_EQ(levels[2].accuracy, 0.9);  // clamped to amax
  EXPECT_DOUBLE_EQ(levels[2].flops, 4.0);
}

TEST(Levels, DeduplicatesAfterClamping) {
  const auto acc = PiecewiseLinearAccuracy::linear(0.0, 0.5, 1.0);
  const auto levels = levelsForTargets(acc, {0.6, 0.9});
  EXPECT_EQ(levels.size(), 1u);  // both clamp to amax
}

TEST(Levels, PaperThreeLevels) {
  const auto acc = makePaperAccuracy(0.001, 0.82, 0.5);
  const auto levels = paperThreeLevels(acc);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_NEAR(levels[0].accuracy, 0.27, 1e-9);
  EXPECT_NEAR(levels[1].accuracy, 0.55, 1e-9);
  EXPECT_NEAR(levels[2].accuracy, 0.82, 1e-9);
}

}  // namespace
}  // namespace dsct
