// Model catalog and arrival processes.
#include <gtest/gtest.h>

#include "sim/serving.h"
#include "util/check.h"
#include "workload/arrivals.h"
#include "workload/gpu_catalog.h"
#include "workload/model_catalog.h"

namespace dsct {
namespace {

TEST(ModelCatalog, EntriesWellFormedAndOrdered) {
  const auto& catalog = modelCatalog();
  ASSERT_GE(catalog.size(), 4u);
  double prevTflop = 0.0;
  for (const ModelSpec& spec : catalog) {
    EXPECT_GT(spec.fullTflop, prevTflop);  // ordered by compute
    prevTflop = spec.fullTflop;
    EXPECT_GT(spec.amax, spec.amin);
    EXPECT_LE(spec.amax, 1.0);
    EXPECT_GT(spec.theta(), 0.0);
  }
}

TEST(ModelCatalog, PaperModelPresent) {
  const ModelSpec& ofa = modelByName("ofa-resnet");
  EXPECT_NEAR(ofa.amax, 0.82, 1e-12);
  EXPECT_NEAR(ofa.amin, 1e-3, 1e-12);
}

TEST(ModelCatalog, UnknownModelThrows) {
  EXPECT_THROW(modelByName("gpt-17"), CheckError);
}

TEST(ModelCatalog, ToTaskHitsSpecifiedShape) {
  const ModelSpec& spec = modelByName("resnet-50");
  const Task task = spec.toTask(2.5, "req");
  EXPECT_DOUBLE_EQ(task.deadline, 2.5);
  EXPECT_EQ(task.name, "req");
  EXPECT_NEAR(task.amax(), spec.amax, 1e-9);
  // The accuracy curve tops out at the model's full compute cost.
  EXPECT_NEAR(task.fmax(), spec.fullTflop, 1e-9);
  // Bigger models yield steeper-per-TFLOP... no: *shallower* θ (same
  // accuracy range spread over more compute).
  EXPECT_LT(modelByName("vit-base").theta(),
            modelByName("mobilenet-v3").theta());
}

TEST(Arrivals, PoissonRateIsConstant) {
  const ArrivalProcess p = ArrivalProcess::poisson(5.0);
  EXPECT_DOUBLE_EQ(p.rateAt(0.0), 5.0);
  EXPECT_DOUBLE_EQ(p.rateAt(123.0), 5.0);
}

TEST(Arrivals, PoissonSampleCountMatchesRate) {
  const ArrivalProcess p = ArrivalProcess::poisson(50.0);
  Rng rng(8);
  const auto arrivals = p.sample(100.0, rng);
  // ~5000 expected; 4σ ≈ 280.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 5000.0, 300.0);
  for (std::size_t i = 0; i + 1 < arrivals.size(); ++i) {
    EXPECT_LT(arrivals[i], arrivals[i + 1]);
  }
}

TEST(Arrivals, DiurnalRateOscillates) {
  const ArrivalProcess p = ArrivalProcess::diurnal(10.0, 100.0, 86400.0);
  EXPECT_NEAR(p.rateAt(0.0), 10.0, 1e-9);           // midnight: base
  EXPECT_NEAR(p.rateAt(43200.0), 100.0, 1e-9);      // noon: peak
  EXPECT_NEAR(p.rateAt(86400.0), 10.0, 1e-9);       // wraps
  EXPECT_GT(p.rateAt(21600.0), 10.0);
  EXPECT_LT(p.rateAt(21600.0), 100.0);
}

TEST(Arrivals, DiurnalSamplesFollowTheRate) {
  const ArrivalProcess p = ArrivalProcess::diurnal(1.0, 200.0, 100.0);
  Rng rng(21);
  const auto arrivals = p.sample(100.0, rng);
  // Count arrivals near the trough [0, 20) vs near the peak [40, 60).
  int trough = 0, peak = 0;
  for (double t : arrivals) {
    if (t < 20.0) ++trough;
    if (t >= 40.0 && t < 60.0) ++peak;
  }
  EXPECT_GT(peak, 3 * trough);
}

TEST(Arrivals, ValidatesParameters) {
  EXPECT_THROW(ArrivalProcess::poisson(0.0), CheckError);
  EXPECT_THROW(ArrivalProcess::diurnal(5.0, 4.0, 10.0), CheckError);
  EXPECT_THROW(ArrivalProcess::diurnal(0.0, 1.0, 0.0), CheckError);
}

TEST(Arrivals, EmptyHorizon) {
  const ArrivalProcess p = ArrivalProcess::poisson(10.0);
  Rng rng(1);
  EXPECT_TRUE(p.sample(0.0, rng).empty());
}

TEST(Arrivals, FeedsServingDriver) {
  const ArrivalProcess p = ArrivalProcess::diurnal(5.0, 80.0, 4.0);
  Rng rng(33);
  sim::ServingOptions options;
  options.arrivalTimes = p.sample(4.0, rng);
  options.horizonSeconds = 4.0;
  options.epochSeconds = 0.5;
  options.energyBudgetPerEpoch = 40.0;
  const auto machines = machinesFromCatalog({"T4"});
  const auto stats =
      sim::runServing(machines, sim::Policy::kApprox, options);
  EXPECT_EQ(stats.requests, static_cast<int>(options.arrivalTimes.size()));
}

TEST(Arrivals, ServingRejectsUnsortedTimes) {
  sim::ServingOptions options;
  options.arrivalTimes = {1.0, 0.5};
  options.horizonSeconds = 2.0;
  const auto machines = machinesFromCatalog({"T4"});
  EXPECT_THROW(sim::runServing(machines, sim::Policy::kApprox, options),
               CheckError);
}

}  // namespace
}  // namespace dsct
