// Dedicated tests for RefineProfile (Algorithm 3) and solveForProfile (the
// generalised Algorithm 2 core).
#include "sched/refine_profile.h"

#include <gtest/gtest.h>

#include "sched/fr_opt.h"
#include "sched/naive_solution.h"
#include "sched/validator.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace dsct {
namespace {

using testing::randomInstance;
using testing::twoSegment;

TEST(SolveForProfile, RespectsProfileCaps) {
  Rng rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    const Instance inst = randomInstance(deriveSeed(71, trial), 10, 3,
                                         rng.uniform(0.05, 0.8), 0.9);
    EnergyProfile profile;
    for (int r = 0; r < inst.numMachines(); ++r) {
      profile.push_back(rng.uniform(0.0, inst.maxDeadline()));
    }
    const FractionalSchedule s = solveForProfile(inst, profile);
    for (int r = 0; r < inst.numMachines(); ++r) {
      EXPECT_LE(s.machineLoad(r), profile[static_cast<std::size_t>(r)] + 1e-9)
          << "machine " << r << " trial " << trial;
    }
    // Deadlines always hold regardless of the profile.
    for (int r = 0; r < inst.numMachines(); ++r) {
      double prefix = 0.0;
      for (int j = 0; j < inst.numTasks(); ++j) {
        prefix += s.at(j, r);
        EXPECT_LE(prefix, inst.task(j).deadline + 1e-9);
      }
    }
  }
}

TEST(SolveForProfile, MonotoneInProfile) {
  // Growing any machine's cap can only improve total accuracy.
  Rng rng(78);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance inst =
        randomInstance(deriveSeed(72, trial), 8, 2, 0.1, 0.9);
    EnergyProfile small;
    for (int r = 0; r < inst.numMachines(); ++r) {
      small.push_back(rng.uniform(0.0, 0.5 * inst.maxDeadline()));
    }
    EnergyProfile large = small;
    const int grow = rng.uniformInt(0, inst.numMachines() - 1);
    large[static_cast<std::size_t>(grow)] = inst.maxDeadline();
    EXPECT_GE(solveForProfile(inst, large).totalAccuracy(inst),
              solveForProfile(inst, small).totalAccuracy(inst) - 1e-9)
        << "trial " << trial;
  }
}

TEST(SolveForProfile, ZeroProfileGivesFloor) {
  const Instance inst = randomInstance(3, 6, 3);
  const EnergyProfile zeros(static_cast<std::size_t>(inst.numMachines()), 0.0);
  const FractionalSchedule s = solveForProfile(inst, zeros);
  EXPECT_NEAR(s.totalAccuracy(inst), inst.totalAmin(), 1e-12);
}

TEST(SolveForProfile, FullProfileMatchesDeadlineOnlyOptimum) {
  // Profile == horizon on every machine removes the energy constraint.
  const Instance inst = randomInstance(4, 8, 3, 0.2, 1.0);
  const EnergyProfile full(static_cast<std::size_t>(inst.numMachines()),
                           inst.maxDeadline());
  const double capAcc = solveForProfile(inst, full).totalAccuracy(inst);
  // Compare with FR-OPT on a copy with unlimited budget.
  Instance unconstrained(inst.tasks(), inst.machines(), 1e15);
  const double freeAcc = solveFrOpt(unconstrained).totalAccuracy;
  EXPECT_NEAR(capAcc, freeAcc, 1e-6);
}

TEST(RefineProfile, EnergyConservedExactly) {
  for (int trial = 0; trial < 10; ++trial) {
    const Instance inst = randomInstance(deriveSeed(73, trial), 12, 3,
                                         0.05, 0.4, 0.1, 4.9);
    NaiveSolution naive = computeNaiveSolution(inst);
    const double before = naive.schedule.energy(inst);
    refineProfile(inst, naive.schedule);
    const double after = naive.schedule.energy(inst);
    // Transfers conserve energy to numerical precision.
    EXPECT_NEAR(after, before, 1e-6 * std::max(1.0, before))
        << "trial " << trial;
  }
}

TEST(RefineProfile, NoTransfersWhenAlreadyOptimal) {
  // A generous instance where the naive solution is already optimal: every
  // task fully processed.
  std::vector<Task> tasks{Task{10.0, twoSegment(0.0, 0.8, 1.0), "t"}};
  std::vector<Machine> machines{Machine{1.0, 1.0, "m"}};
  Instance inst(std::move(tasks), std::move(machines), 1e9);
  NaiveSolution naive = computeNaiveSolution(inst);
  const RefineStats stats = refineProfile(inst, naive.schedule);
  EXPECT_EQ(stats.transfers, 0);
}

TEST(RefineProfile, MovesWorkTowardEfficientMachine) {
  // Two machines, same speed, very different efficiency; single task with
  // slack. Start from a hand-built schedule on the inefficient machine;
  // refinement must shift it to the efficient one (ψ ordering).
  std::vector<Task> tasks{Task{2.0, twoSegment(0.0, 0.8, 4.0), "t"}};
  std::vector<Machine> machines{
      Machine{1.0, 0.10, "efficient"},
      Machine{1.0, 0.01, "wasteful"},
  };
  Instance inst(std::move(tasks), std::move(machines), 30.0);
  FractionalSchedule s(1, 2);
  s.set(0, 1, 0.3);  // 0.3 s on the wasteful machine: 30 J, budget exhausted
  const double before = s.totalAccuracy(inst);
  refineProfile(inst, s);
  EXPECT_GT(s.totalAccuracy(inst), before);
  EXPECT_GT(s.at(0, 0), 0.0);  // moved to the efficient machine
  EXPECT_LT(s.energy(inst), 30.0 + 1e-9);
}

TEST(RefineProfile, RoundsBounded) {
  const Instance inst = randomInstance(99, 20, 4, 0.02, 0.3, 0.1, 4.9);
  NaiveSolution naive = computeNaiveSolution(inst);
  RefineOptions options;
  options.maxRounds = 3;
  const RefineStats stats = refineProfile(inst, naive.schedule, options);
  EXPECT_LE(stats.rounds, 3);
}

}  // namespace
}  // namespace dsct
