// Smoke loop over the shipped scenario zoo (scenarios/*.dsct): every file
// must parse, materialise, and — horizon-clamped so the battery stays fast —
// serve end-to-end under its own policy. The million-task stress file is
// additionally pinned to materialise its full ~1M-request trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/serving.h"
#include "workload/scenario.h"

namespace dsct {
namespace {

std::vector<std::filesystem::path> zooFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(DSCT_SCENARIO_DIR)) {
    if (entry.path().extension() == ".dsct") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ScenarioZoo, ShipsTheSixNamedWorkloads) {
  std::vector<std::string> names;
  for (const auto& path : zooFiles()) names.push_back(path.stem().string());
  const std::vector<std::string> expected{"diurnal",       "flash_crowd",
                                          "million_tasks", "mixed_sla",
                                          "steady_web",    "volunteer_fleet"};
  EXPECT_EQ(names, expected);
}

TEST(ScenarioZoo, EveryFileParsesAndMaterialises) {
  for (const auto& path : zooFiles()) {
    SCOPED_TRACE(path.string());
    const Scenario sc = loadScenarioFile(path.string());
    EXPECT_FALSE(sc.name.empty());
    EXPECT_FALSE(materializeMachines(sc).empty());
    EXPECT_FALSE(materializeRequests(sc).empty());
    const Instance inst = materializeInstance(sc);
    EXPECT_GT(inst.numTasks(), 0);
    EXPECT_GT(inst.energyBudget(), 0.0);
  }
}

TEST(ScenarioZoo, EveryFileServesEndToEnd) {
  for (const auto& path : zooFiles()) {
    SCOPED_TRACE(path.string());
    Scenario sc = loadScenarioFile(path.string());
    // Clamp BEFORE materialisation (exactly what serve --horizon does) so
    // the stress file serves a short prefix instead of its full 200 s.
    sc.serving.horizonSeconds = std::min(sc.serving.horizonSeconds, 2.0);
    const std::vector<Machine> machines = materializeMachines(sc);
    const sim::ServingOptions options = makeServingOptions(sc);
    const sim::ServingStats stats =
        sim::runServing(machines, sc.serving.policy, options);
    EXPECT_EQ(static_cast<std::size_t>(stats.requests),
              options.requestTrace.size());
    EXPECT_GT(stats.epochs, 0);
    EXPECT_GE(stats.missPenalty, 0.0);
  }
}

TEST(ScenarioZoo, MillionTaskStressMaterialisesFullTrace) {
  const Scenario sc = loadScenarioFile(std::string(DSCT_SCENARIO_DIR) +
                                       "/million_tasks.dsct");
  EXPECT_DOUBLE_EQ(sc.serving.horizonSeconds, 200.0);
  const std::vector<sim::RequestSpec> trace = materializeRequests(sc);
  // 5000 req/s × 200 s — a Poisson count within ±1% of one million.
  EXPECT_GT(trace.size(), 990'000u);
  EXPECT_LT(trace.size(), 1'010'000u);
  EXPECT_TRUE(std::is_sorted(
      trace.begin(), trace.end(),
      [](const sim::RequestSpec& a, const sim::RequestSpec& b) {
        return a.arrival < b.arrival;
      }));
}

TEST(ScenarioZoo, MixedSlaWeightsDivergeFromRawMisses) {
  // The mixed-SLA scenario's tiers carry non-unit penalties, so whenever a
  // run misses deadlines the weighted penalty must differ from the raw
  // count. Squeeze the budget to force misses.
  Scenario sc = loadScenarioFile(std::string(DSCT_SCENARIO_DIR) +
                                 "/mixed_sla.dsct");
  sc.serving.horizonSeconds = 4.0;
  sc.serving.energyBudgetPerEpoch = 0.05;
  const sim::ServingOptions options = makeServingOptions(sc);
  const sim::ServingStats stats = sim::runServing(
      materializeMachines(sc), sc.serving.policy, options);
  ASSERT_GT(stats.deadlineMisses, 0);
  EXPECT_NE(stats.missPenalty, static_cast<double>(stats.deadlineMisses));
}

}  // namespace
}  // namespace dsct
